(** The passes shared by every compile flow.  Each is a registered
    {!Pass.t} over {!State.t}; flows (POM auto, the baselines, manual
    schedules) prepend their own transform passes and share this tail.

    All schedule application and report synthesis goes through
    {!Memo.global}, so a design point evaluated anywhere in the process
    (e.g. by the DSE search) is never re-synthesized by these passes. *)

(** Re-export of {!State.structural_directives}: the specification's
    [after]/[fuse] structure at level >= 1. *)
val structural_directives : Pom_dsl.Func.t -> Pom_dsl.Schedule.t list

(** Record a degraded pass failure on the state: a warning diagnostic with
    the typed error's code/pass/context, plus a trace line. *)
val record_failure : State.t -> Pom_resilience.Error.t -> State.t

(** [guard p] is {!Pass.guarded} with {!record_failure} as the diagnostic
    hook — the standard wrapping for every pass over {!State.t}. *)
val guard : ?required:bool -> State.t Pass.t -> State.t Pass.t

(** Append the specification's structural fusion directives. *)
val structural : unit -> State.t Pass.t

(** Append every directive recorded on the function itself (the manual
    schedule; [auto_DSE] markers are inert under application). *)
val user_schedule : unit -> State.t Pass.t

(** Apply the accumulated directives, producing the polyhedral program
    (memoized). *)
val schedule_apply : unit -> State.t Pass.t

(** Check the current program against the structural reference with the
    polyhedral dependence checker; the verdict is appended to the trace and
    the violation count stored in [legality_violations]. *)
val legality_check : unit -> State.t Pass.t

(** Run {!Pom_analysis.Lint} on the scheduled program: recurrence-II vs
    requested [pipeline_ii], serializing unrolls, bank conflicts, dead and
    malformed directives.  Diagnostics accumulate in [diags]. *)
val lint_pragmas : unit -> State.t Pass.t

(** Run {!Pom_analysis.Verify_ir} on the affine IR (and the polyhedral
    out-of-bounds analysis on the program).  Diagnostics accumulate in
    [diags]. *)
val verify_ir : unit -> State.t Pass.t

(** Synthesize the virtual HLS report for the current design point
    (memoized: a hit when the DSE already evaluated it). *)
val synthesize : unit -> State.t Pass.t

(** Lower the polyhedral program to the annotated affine dialect. *)
val affine_lower : unit -> State.t Pass.t

(** Guard merging / hoisting / tautology elision on the affine level. *)
val affine_simplify : unit -> State.t Pass.t

(** Emit HLS C from the simplified affine program. *)
val emit_hls_c : unit -> State.t Pass.t

(** The shared tail: synthesize, lower, simplify, verify-ir, emit. *)
val tail : unit -> State.t Pass.t list
