(** A process-global registry of pass metadata.  Every pass created with
    {!Pass.v} registers its name and description here, so tooling (the
    [--dump-after] validator, the CLI's pass listing, DESIGN.md generation)
    can enumerate the passes that exist without holding the pass values,
    which are polymorphic in the state they transform. *)

(** [register ~name ~descr] records a pass.  Re-registering the same name
    is idempotent (the first description wins). *)
val register : name:string -> descr:string -> unit

val mem : string -> bool

(** All registered passes, sorted by name. *)
val all : unit -> (string * string) list
