type info = { name : string; descr : string }

type 's t = { info : info; run : 's -> 's }

let v ~name ~descr run =
  Registry.register ~name ~descr;
  { info = { name; descr }; run }

(* Wrap a pass in the resilience guard.  The wrapped pass:
   - is a fault-injection site named ["pass:<name>"];
   - maps any failure (including a budget timeout) to a typed
     {!Pom_resilience.Error.t} carrying the pass name;
   - under [--on-error degrade], a non-[required] pass records the failure
     as a diagnostic via [diag] and passes the state through unchanged
     (the pass is skipped); a [required] pass always re-raises the typed
     error, as does everything when the policy is [Abort].
   [Fault.Killed] (simulated process death) is never absorbed. *)
let guarded ?(required = false) ~diag p =
  let module R = Pom_resilience in
  let run st =
    try
      R.Fault.point ("pass:" ^ p.info.name);
      p.run st
    with
    | R.Fault.Killed _ as e -> raise e
    | e ->
        let err = R.Error.of_exn ~code:"POM300" ~pass:p.info.name e in
        if required || not (R.Policy.degrading ()) then
          raise (R.Error.Error err)
        else diag st err
  in
  { info = p.info; run }

type record = {
  pass : string;
  wall_s : float;
  cpu_s : float;
  stats : Stats.t option;
  dump : string option;
  verdict : string option;
}

type 's instruments = {
  stats : ('s -> Stats.t) option;
  dump : ('s -> string) option;
  dump_after : string list;
  verify : ('s -> string) option;
  verify_each : bool;
}

let observe_nothing =
  {
    stats = None;
    dump = None;
    dump_after = [];
    verify = None;
    verify_each = false;
  }

let wants_dump instruments name =
  List.mem name instruments.dump_after || instruments.dump_after = [ "all" ]

let run ?(instruments = observe_nothing) passes state =
  let records = ref [] in
  let final =
    List.fold_left
      (fun st pass ->
        let wall0 = Unix.gettimeofday () and cpu0 = Sys.time () in
        let st' = pass.run st in
        let wall_s = Unix.gettimeofday () -. wall0
        and cpu_s = Sys.time () -. cpu0 in
        let apply hook = Option.map (fun f -> f st') hook in
        let record =
          {
            pass = pass.info.name;
            wall_s;
            cpu_s;
            stats = apply instruments.stats;
            dump =
              (if wants_dump instruments pass.info.name then
                 apply instruments.dump
               else None);
            verdict =
              (if instruments.verify_each then apply instruments.verify
               else None);
          }
        in
        records := record :: !records;
        st')
      state passes
  in
  (final, List.rev !records)

let pp_record ppf r =
  Format.fprintf ppf "%-24s %8.3f ms wall %8.3f ms cpu" r.pass
    (r.wall_s *. 1000.0) (r.cpu_s *. 1000.0);
  Option.iter (fun s -> Format.fprintf ppf "  [%a]" Stats.pp s) r.stats;
  Option.iter (fun v -> Format.fprintf ppf "  verify: %s" v) r.verdict
