open Pom_polyir

type t = {
  stmts : int;
  constraints : int;
  loops : int;
  ops : int;
  directives : int;
}

let zero = { stmts = 0; constraints = 0; loops = 0; ops = 0; directives = 0 }

let of_prog (prog : Prog.t) =
  let stmts = List.length prog.Prog.stmts in
  let constraints =
    List.fold_left
      (fun acc (s : Stmt_poly.t) ->
        acc + List.length (Pom_poly.Basic_set.constraints s.Stmt_poly.domain))
      0 prog.Prog.stmts
  in
  let loops =
    List.fold_left
      (fun acc (s : Stmt_poly.t) ->
        acc + List.length (Stmt_poly.loop_order s))
      0 prog.Prog.stmts
  in
  { zero with stmts; constraints; loops }

let with_affine (f : Pom_affine.Ir.func) t =
  let loops, ops = Pom_affine.Ir.counts f.Pom_affine.Ir.body in
  { t with loops; ops }

let pp ppf t =
  Format.fprintf ppf "%d stmts, %d constraints, %d loops, %d ops, %d directives"
    t.stmts t.constraints t.loops t.ops t.directives
