(* Pass metadata is registered from module initializers and from parallel
   DSE prefetch workers (pass construction is lazy), so the table is
   mutex-guarded. *)
let table : (string, string) Hashtbl.t = Hashtbl.create 32

let lock = Mutex.create ()

let register ~name ~descr =
  Mutex.lock lock;
  if not (Hashtbl.mem table name) then Hashtbl.add table name descr;
  Mutex.unlock lock

let mem name =
  Mutex.lock lock;
  let found = Hashtbl.mem table name in
  Mutex.unlock lock;
  found

let all () =
  Mutex.lock lock;
  let entries = Hashtbl.fold (fun n d acc -> (n, d) :: acc) table [] in
  Mutex.unlock lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) entries
