let table : (string, string) Hashtbl.t = Hashtbl.create 32

let register ~name ~descr =
  if not (Hashtbl.mem table name) then Hashtbl.add table name descr

let mem name = Hashtbl.mem table name

let all () =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun n d acc -> (n, d) :: acc) table [])
