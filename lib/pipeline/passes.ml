open Pom_dsl

let structural_directives = State.structural_directives

let prog_exn (st : State.t) what =
  match st.State.prog with
  | Some p -> p
  | None -> invalid_arg (what ^ ": no polyhedral program in the state")

(* The [diag] hook for {!Pass.guarded} over {!State.t}: a degraded pass
   failure becomes a warning diagnostic (the compile continued) plus a trace
   line, carrying the typed error's code and context. *)
let record_failure (st : State.t) (err : Pom_resilience.Error.t) =
  let loc =
    (match err.Pom_resilience.Error.pass with Some p -> [ p ] | None -> [])
    @ err.Pom_resilience.Error.context
  in
  let d =
    Pom_analysis.Diagnostic.warning ~code:err.Pom_resilience.Error.code ~loc
      ~note:"pass skipped under --on-error degrade"
      err.Pom_resilience.Error.message
  in
  {
    st with
    State.diags = st.State.diags @ [ d ];
    trace =
      st.State.trace
      @ [
          Printf.sprintf "degraded: %s (%s)"
            (Option.value ~default:"?" err.Pom_resilience.Error.pass)
            err.Pom_resilience.Error.code;
        ];
  }

let guard ?required p = Pass.guarded ?required ~diag:record_failure p

let structural () =
  Pass.v ~name:"structural-directives"
    ~descr:"append the specification's after/fuse structure"
    (fun (st : State.t) ->
      {
        st with
        State.directives =
          st.State.directives @ structural_directives st.State.func;
      })

let user_schedule () =
  Pass.v ~name:"user-schedule"
    ~descr:"append the function's own scheduling primitives"
    (fun (st : State.t) ->
      {
        st with
        State.directives = st.State.directives @ Func.directives st.State.func;
      })

let schedule_apply () =
  Pass.v ~name:"schedule-apply"
    ~descr:"apply the accumulated directives to the polyhedral IR (memoized)"
    (fun (st : State.t) ->
      {
        st with
        State.prog =
          Some (Memo.schedule Memo.global st.State.func st.State.directives);
      })

let legality_check () =
  Pass.v ~name:"legality-check"
    ~descr:"prove the schedule preserves every dependence of the spec"
    (fun (st : State.t) ->
      match st.State.prog with
      | None ->
          {
            st with
            State.trace = st.State.trace @ [ "legality: no polyhedral IR yet" ];
          }
      | Some prog -> (
          match
            Pom_polyir.Legality.violations ~original:(State.reference st)
              ~transformed:prog
          with
          | vs ->
              let verdict =
                match vs with
                | [] -> "legal"
                | vs ->
                    Printf.sprintf "%d reversed dependences" (List.length vs)
              in
              {
                st with
                State.legality_violations = List.length vs;
                trace = st.State.trace @ [ "legality: " ^ verdict ];
              }
          | exception (Pom_resilience.Budget.Budget_exceeded { site; reason }
                       as e) ->
              (* Degradation policy: an unproven schedule is an illegal
                 schedule.  Under [degrade] the timeout conservatively
                 rejects the transform (counted as a violation, POM302
                 diagnostic); under [abort] it propagates to the guard. *)
              if not (Pom_resilience.Policy.degrading ()) then raise e
              else
                let d =
                  Pom_analysis.Diagnostic.warning ~code:"POM302"
                    ~loc:[ "legality-check"; site ]
                    ~note:
                      "raise --deadline or simplify the schedule to complete \
                       the proof"
                    (Printf.sprintf
                       "legality proof timed out (%s); schedule conservatively \
                        rejected"
                       reason)
                in
                {
                  st with
                  State.legality_violations = 1;
                  diags = st.State.diags @ [ d ];
                  trace =
                    st.State.trace
                    @ [ "legality: timed out -> conservatively rejected" ];
                }))

let lint_pragmas () =
  Pass.v ~name:"lint-pragmas"
    ~descr:"dependence-aware lint of the requested HLS directives"
    (fun (st : State.t) ->
      let ds = Pom_analysis.Lint.lint (prog_exn st "lint-pragmas") in
      {
        st with
        State.diags = st.State.diags @ ds;
        trace = st.State.trace @ [ "lint: " ^ Pom_analysis.Diagnostic.summary ds ];
      })

let verify_ir () =
  Pass.v ~name:"verify-ir"
    ~descr:"verify the affine IR and prove every access stays in bounds"
    (fun (st : State.t) ->
      let prog = prog_exn st "verify-ir" in
      let ds = Pom_analysis.Verify_ir.verify ?affine:st.State.affine prog in
      {
        st with
        State.diags = st.State.diags @ ds;
        trace =
          st.State.trace @ [ "verify-ir: " ^ Pom_analysis.Diagnostic.summary ds ];
      })

let synthesize () =
  Pass.v ~name:"hls-synthesize"
    ~descr:"virtual HLS synthesis of the current design point (memoized)"
    (fun (st : State.t) ->
      let prog, report =
        Memo.synthesize Memo.global ~composition:st.State.composition
          ~latency_mode:st.State.latency_mode ~device:st.State.device
          ~directives:st.State.directives st.State.func (fun () ->
            match st.State.prog with
            | Some p -> p
            | None -> Memo.schedule Memo.global st.State.func st.State.directives)
      in
      { st with State.prog = Some prog; report = Some report })

let affine_lower () =
  Pass.v ~name:"affine-lower"
    ~descr:"lower the polyhedral AST to the annotated affine dialect"
    (fun (st : State.t) ->
      {
        st with
        State.affine =
          Some (Pom_affine.Lower.lower (prog_exn st "affine-lower"));
      })

let affine_simplify () =
  Pass.v ~name:"affine-simplify"
    ~descr:"merge, hoist, and elide guards on the affine level"
    (fun (st : State.t) ->
      match st.State.affine with
      | Some f -> { st with State.affine = Some (Pom_affine.Passes.simplify f) }
      | None -> invalid_arg "affine-simplify: no affine IR in the state")

let emit_hls_c () =
  Pass.v ~name:"emit-hls-c"
    ~descr:"emit HLS C with pragmas from the simplified affine program"
    (fun (st : State.t) ->
      match st.State.affine with
      | Some f -> { st with State.hls_c = Some (Pom_emit.Emit.hls_c f) }
      | None -> invalid_arg "emit-hls-c: no affine IR in the state")

let tail () =
  [
    synthesize ();
    affine_lower ();
    affine_simplify ();
    verify_ir ();
    emit_hls_c ();
  ]
