open Pom_dsl

(* Open extension point: flows built on top of the pipeline (e.g. the DSE
   engine) thread their own intermediate results through the state without
   this library depending on their types. *)
type ext = ..

type t = {
  device : Pom_hls.Device.t;
  composition : Pom_hls.Resource.composition;
  latency_mode : Pom_hls.Report.latency_mode;
  func : Func.t;
  directives : Schedule.t list;
  prog : Pom_polyir.Prog.t option;
  report : Pom_hls.Report.t option;
  affine : Pom_affine.Ir.func option;
  hls_c : string option;
  dse_time_s : float;
  dse_cpu_s : float;
  tile_vectors : (string * int list) list;
  diags : Pom_analysis.Diagnostic.t list;
  legality_violations : int;
  trace : string list;
  ext : ext list;
}

let add_ext e t = { t with ext = e :: t.ext }

let find_ext f t = List.find_map f t.ext

let init ?(composition = Pom_hls.Resource.Reuse) ?(latency_mode = `Sequential)
    ~device func =
  {
    device;
    composition;
    latency_mode;
    func;
    directives = [];
    prog = None;
    report = None;
    affine = None;
    hls_c = None;
    dse_time_s = 0.0;
    dse_cpu_s = 0.0;
    tile_vectors = [];
    diags = [];
    legality_violations = 0;
    trace = [];
    ext = [];
  }

let stats t =
  let base =
    match t.prog with
    | Some prog -> Stats.of_prog prog
    | None -> Stats.zero
  in
  let base = { base with Stats.directives = List.length t.directives } in
  match t.affine with
  | Some f -> Stats.with_affine f base
  | None -> base

let dump t =
  match (t.hls_c, t.affine, t.prog) with
  | Some c, _, _ -> c
  | None, Some f, _ -> Pom_emit.Emit_mlir.mlir f
  | None, None, Some prog -> Format.asprintf "%a" Pom_polyir.Prog.pp prog
  | None, None, None -> "(no IR constructed yet)"

(* The specification's own fusion structure ([after]/[fuse] at level >= 1)
   is part of the reference semantics, not a transformation under test. *)
let structural_directives func =
  List.filter
    (fun d ->
      match (d : Schedule.t) with
      | Schedule.After { level; _ } | Schedule.Fuse { level; _ } -> level >= 1
      | _ -> false)
    (Func.directives func)

let reference t =
  Pom_polyir.Prog.apply_all
    (Pom_polyir.Prog.of_func_unscheduled t.func)
    (structural_directives t.func)

let verify ?(simulate = false) t =
  match t.prog with
  | None -> "no polyhedral IR yet"
  | Some prog ->
      let legality =
        match
          Pom_polyir.Legality.violations ~original:(reference t)
            ~transformed:prog
        with
        | [] -> "legal"
        | vs -> Printf.sprintf "%d reversed dependences" (List.length vs)
      in
      if simulate then
        Printf.sprintf "%s, divergence %g" legality
          (Pom_sim.Interp.divergence t.func prog)
      else legality

let instruments ?(dump_after = []) ?(verify_each = false) ?(simulate = false)
    () =
  {
    Pass.stats = Some stats;
    dump = Some dump;
    dump_after;
    verify = Some (fun t -> verify ~simulate t);
    verify_each;
  }
