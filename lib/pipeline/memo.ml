open Pom_dsl
open Pom_hls

type counters = {
  mutable schedule_hits : int;
  mutable schedule_misses : int;
  mutable report_hits : int;
  mutable report_misses : int;
}

(* A table entry is either a settled value or a claim by the domain that is
   computing it.  Claims are what keep the counters deterministic under
   parallel DSE evaluation: when several domains race on one key, exactly one
   counts a miss and computes; the rest block on [changed] and count hits, so
   a batch of candidate evaluations costs one miss per distinct design point
   regardless of scheduling. *)
type 'v slot = Done of 'v | Inflight

type t = {
  schedules : (string, Pom_polyir.Prog.t slot) Hashtbl.t;
  reports : (string, (Pom_polyir.Prog.t * Report.t) slot) Hashtbl.t;
  max_entries : int;
  lock : Mutex.t;
  changed : Condition.t; (* a slot settled, was abandoned, or a table reset *)
  c : counters;
}

let create ?(max_entries = 4096) () =
  {
    schedules = Hashtbl.create 256;
    reports = Hashtbl.create 256;
    max_entries;
    lock = Mutex.create ();
    changed = Condition.create ();
    c =
      {
        schedule_hits = 0;
        schedule_misses = 0;
        report_hits = 0;
        report_misses = 0;
      };
  }

let global = create ()

let snapshot t =
  Mutex.lock t.lock;
  let c =
    {
      schedule_hits = t.c.schedule_hits;
      schedule_misses = t.c.schedule_misses;
      report_hits = t.c.report_hits;
      report_misses = t.c.report_misses;
    }
  in
  Mutex.unlock t.lock;
  c

let counters = snapshot

let clear t =
  Mutex.lock t.lock;
  Hashtbl.reset t.schedules;
  Hashtbl.reset t.reports;
  Condition.broadcast t.changed;
  Mutex.unlock t.lock

(* The function fingerprint covers everything directive application and
   synthesis can observe: iterator extents, array shapes and types, and the
   statement bodies (two same-named workloads at different problem sizes or
   data types must not collide). *)
let func_key func =
  let b = Buffer.create 256 in
  Buffer.add_string b (Func.name func);
  List.iter
    (fun (c : Compute.t) ->
      Buffer.add_char b '|';
      Buffer.add_string b (Format.asprintf "%a" Compute.pp c);
      List.iter
        (fun (v : Var.t) ->
          Buffer.add_string b
            (Printf.sprintf ";%s:%d:%d" v.Var.name v.Var.lb v.Var.ub))
        c.Compute.iters)
    (Func.computes func);
  List.iter
    (fun (p : Placeholder.t) ->
      Buffer.add_string b
        (Printf.sprintf "|%s[%s]%s" p.Placeholder.name
           (String.concat "," (List.map string_of_int p.Placeholder.shape))
           (Dtype.c_name p.Placeholder.dtype)))
    (Func.placeholders func);
  Buffer.contents b

let directives_key directives =
  String.concat ";" (List.map (Format.asprintf "%a" Schedule.pp) directives)

let device_key (d : Device.t) =
  Printf.sprintf "%s:%d:%d:%d:%d:%g" d.Device.name d.Device.dsp d.Device.lut
    d.Device.ff d.Device.bram_bits d.Device.clock_mhz

(* Past [max_entries] a table is dropped wholesale: long benchmark sweeps
   would otherwise retain every design point ever evaluated.  Only settled
   entries count — in-flight claims are transient and must not trigger (or
   survive in a meaningful way) a reset; a claim dropped by a reset is
   re-established when its computation lands. *)
let guard_capacity t table =
  let settled =
    Hashtbl.fold
      (fun _ s n -> match s with Done _ -> n + 1 | Inflight -> n)
      table 0
  in
  if settled > t.max_entries then Hashtbl.reset table

(* [memoize t table key ~hit ~miss compute]: hit on a settled slot (waiting
   out another domain's claim counts as a hit — the value is shared, not
   recomputed); otherwise claim, count a miss, and compute with the lock
   released.  An abandoned claim (compute raised) is withdrawn so waiters
   retry instead of hanging. *)
let memoize t table key ~hit ~miss compute =
  Mutex.lock t.lock;
  let rec settle () =
    match Hashtbl.find_opt table key with
    | Some (Done v) ->
        hit t.c;
        Mutex.unlock t.lock;
        v
    | Some Inflight ->
        Condition.wait t.changed t.lock;
        settle ()
    | None -> (
        miss t.c;
        Hashtbl.replace table key Inflight;
        Mutex.unlock t.lock;
        match compute () with
        | v ->
            Mutex.lock t.lock;
            guard_capacity t table;
            Hashtbl.replace table key (Done v);
            Condition.broadcast t.changed;
            Mutex.unlock t.lock;
            v
        | exception e ->
            Mutex.lock t.lock;
            (match Hashtbl.find_opt table key with
            | Some Inflight -> Hashtbl.remove table key
            | _ -> ());
            Condition.broadcast t.changed;
            Mutex.unlock t.lock;
            raise e)
  in
  settle ()

let schedule t func directives =
  let key = func_key func ^ "##" ^ directives_key directives in
  memoize t t.schedules key
    ~hit:(fun c -> c.schedule_hits <- c.schedule_hits + 1)
    ~miss:(fun c -> c.schedule_misses <- c.schedule_misses + 1)
    (fun () ->
      Pom_polyir.Prog.apply_all
        (Pom_polyir.Prog.of_func_unscheduled func)
        directives)

let synthesize t ?(composition = Resource.Reuse) ?(latency_mode = `Sequential)
    ~device ~directives func make_prog =
  let key =
    String.concat "##"
      [
        func_key func;
        directives_key directives;
        device_key device;
        (match composition with
        | Resource.Reuse -> "reuse"
        | Resource.Dataflow -> "dataflow");
        (match latency_mode with
        | `Sequential -> "sequential"
        | `Dataflow -> "dataflow");
      ]
  in
  memoize t t.reports key
    ~hit:(fun c -> c.report_hits <- c.report_hits + 1)
    ~miss:(fun c -> c.report_misses <- c.report_misses + 1)
    (fun () ->
      let prog = make_prog () in
      let report = Report.synthesize ~composition ~latency_mode ~device prog in
      (prog, report))
