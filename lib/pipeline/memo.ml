open Pom_dsl
open Pom_hls

type counters = {
  mutable schedule_hits : int;
  mutable schedule_misses : int;
  mutable report_hits : int;
  mutable report_misses : int;
  mutable plan_hits : int;
  mutable plan_misses : int;
}

(* One candidate's realization plan: everything between the shared schedule
   skeleton and report synthesis.  Caching it is what makes a speculatively
   warmed design point a *guaranteed* hit for the sequential replay — the
   replay recovers the full directive list (including the partition plan,
   which otherwise requires applying the hardware directives just to compute
   the report key) and the scheduled pre-partition program by lookup, so a
   warm point costs two table reads and zero polyhedral work. *)
type plan = {
  plan_directives : Pom_dsl.Schedule.t list;  (* base @ hw @ parts *)
  plan_parts : Pom_dsl.Schedule.t list;
  plan_prog_hw : Pom_polyir.Prog.t;  (* scheduled, pre-partition *)
}

(* A table entry is either a settled value or a claim by the domain that is
   computing it, stamped with the claim time.  Claims are what keep the
   counters deterministic under parallel DSE evaluation: when several domains
   race on one key, exactly one counts a miss and computes; the rest poll
   until the slot settles and count hits, so a batch of candidate evaluations
   costs one miss per distinct design point regardless of scheduling.

   The timestamp is the liveness escape hatch: a claim whose owner died
   without withdrawing it (a worker domain torn down mid-compute) would
   otherwise park every future requester forever.  A waiter that has watched
   a claim sit unchanged for [reclaim_after] seconds presumes the owner dead,
   takes the claim over, and recomputes — one extra miss, no hang. *)
type 'v slot = Done of 'v | Inflight of float (* claimed at *)

type t = {
  schedules : (string, Pom_polyir.Prog.t slot) Hashtbl.t;
  reports : (string, (Pom_polyir.Prog.t * Report.t) slot) Hashtbl.t;
  plans : (string, plan slot) Hashtbl.t;
  max_entries : int;
  reclaim_after : float;
  lock : Mutex.t;
  mutable report_observer :
    (key:string -> Pom_polyir.Prog.t * Report.t -> unit) option;
  c : counters;
}

let create ?(max_entries = 4096) ?(reclaim_after = 30.0) () =
  {
    schedules = Hashtbl.create 256;
    reports = Hashtbl.create 256;
    plans = Hashtbl.create 256;
    max_entries;
    reclaim_after;
    lock = Mutex.create ();
    report_observer = None;
    c =
      {
        schedule_hits = 0;
        schedule_misses = 0;
        report_hits = 0;
        report_misses = 0;
        plan_hits = 0;
        plan_misses = 0;
      };
  }

let global = create ()

let snapshot t =
  Mutex.lock t.lock;
  let c =
    {
      schedule_hits = t.c.schedule_hits;
      schedule_misses = t.c.schedule_misses;
      report_hits = t.c.report_hits;
      report_misses = t.c.report_misses;
      plan_hits = t.c.plan_hits;
      plan_misses = t.c.plan_misses;
    }
  in
  Mutex.unlock t.lock;
  c

let counters = snapshot

let clear t =
  Mutex.lock t.lock;
  Hashtbl.reset t.schedules;
  Hashtbl.reset t.reports;
  Hashtbl.reset t.plans;
  Mutex.unlock t.lock

let set_report_observer t obs =
  Mutex.lock t.lock;
  t.report_observer <- obs;
  Mutex.unlock t.lock

(* The function fingerprint covers everything directive application and
   synthesis can observe: iterator extents, array shapes and types, and the
   statement bodies (two same-named workloads at different problem sizes or
   data types must not collide). *)
let func_key func =
  let b = Buffer.create 256 in
  Buffer.add_string b (Func.name func);
  List.iter
    (fun (c : Compute.t) ->
      Buffer.add_char b '|';
      Buffer.add_string b (Format.asprintf "%a" Compute.pp c);
      List.iter
        (fun (v : Var.t) ->
          Buffer.add_string b
            (Printf.sprintf ";%s:%d:%d" v.Var.name v.Var.lb v.Var.ub))
        c.Compute.iters)
    (Func.computes func);
  List.iter
    (fun (p : Placeholder.t) ->
      Buffer.add_string b
        (Printf.sprintf "|%s[%s]%s" p.Placeholder.name
           (String.concat "," (List.map string_of_int p.Placeholder.shape))
           (Dtype.c_name p.Placeholder.dtype)))
    (Func.placeholders func);
  Buffer.contents b

let directives_key directives =
  String.concat ";" (List.map (Format.asprintf "%a" Schedule.pp) directives)

let device_key (d : Device.t) =
  Printf.sprintf "%s:%d:%d:%d:%d:%g" d.Device.name d.Device.dsp d.Device.lut
    d.Device.ff d.Device.bram_bits d.Device.clock_mhz

(* Past [max_entries] a table is dropped wholesale: long benchmark sweeps
   would otherwise retain every design point ever evaluated.  Only settled
   entries count — in-flight claims are transient and must not trigger (or
   survive in a meaningful way) a reset; a claim dropped by a reset is
   re-established when its computation lands. *)
let guard_capacity t table =
  let settled =
    Hashtbl.fold
      (fun _ s n -> match s with Done _ -> n + 1 | Inflight _ -> n)
      table 0
  in
  if settled > t.max_entries then Hashtbl.reset table

(* [memoize t table key ~hit ~miss compute]: hit on a settled slot (waiting
   out another domain's claim counts as a hit — the value is shared, not
   recomputed); otherwise claim, count a miss, and compute with the lock
   released.  An abandoned claim (compute raised) is withdrawn so waiters
   retry instead of hanging; a claim whose owner died before withdrawing is
   reclaimed by the first waiter to watch it exceed [reclaim_after].
   Waiters poll (there is no timed [Condition.wait]): the 1 ms cadence is
   invisible next to a synthesis, and each round re-checks the ambient
   budget so a deadline cannot be spent parked on someone else's claim. *)
let memoize t table key ~hit ~miss compute =
  let claim () = Hashtbl.replace table key (Inflight (Unix.gettimeofday ())) in
  let rec settle () =
    match Hashtbl.find_opt table key with
    | Some (Done v) ->
        hit t.c;
        Mutex.unlock t.lock;
        v
    | Some (Inflight claimed_at)
      when Unix.gettimeofday () -. claimed_at > t.reclaim_after ->
        (* owner presumed dead: take the claim over and recompute *)
        miss t.c;
        claim ();
        compute_and_settle ()
    | Some (Inflight _) ->
        Mutex.unlock t.lock;
        Pom_resilience.Budget.check "memo:wait";
        Unix.sleepf 0.001;
        Mutex.lock t.lock;
        settle ()
    | None ->
        miss t.c;
        claim ();
        compute_and_settle ()
  and compute_and_settle () =
    Mutex.unlock t.lock;
    match compute () with
    | v ->
        Mutex.lock t.lock;
        guard_capacity t table;
        Hashtbl.replace table key (Done v);
        Mutex.unlock t.lock;
        v
    | exception e ->
        (* withdraw the claim so waiters retry instead of waiting out the
           reclaim window; the fault site simulates the claimant dying
           before it could ([poll] never raises) *)
        if not (Pom_resilience.Fault.poll "memo:withdraw-skip") then begin
          Mutex.lock t.lock;
          (match Hashtbl.find_opt table key with
          | Some (Inflight _) -> Hashtbl.remove table key
          | _ -> ());
          Mutex.unlock t.lock
        end;
        raise e
  in
  Mutex.lock t.lock;
  settle ()

let schedule t func directives =
  Pom_resilience.Budget.check "memo:schedule";
  let key = func_key func ^ "##" ^ directives_key directives in
  memoize t t.schedules key
    ~hit:(fun c -> c.schedule_hits <- c.schedule_hits + 1)
    ~miss:(fun c -> c.schedule_misses <- c.schedule_misses + 1)
    (fun () ->
      Pom_polyir.Prog.apply_all
        (Pom_polyir.Prog.of_func_unscheduled func)
        directives)

(* The plan key covers exactly what the plan computation reads: the
   function, the base-directive prefix, the hardware directives, and the
   bank cap the partition planner runs under.  Device/composition are
   absent on purpose — the plan is pre-synthesis. *)
let plan_key ~base ~hw ~bank_cap func =
  String.concat "##"
    [
      func_key func;
      directives_key base;
      directives_key hw;
      (match bank_cap with None -> "-" | Some n -> string_of_int n);
    ]

let plan t ~key compute =
  Pom_resilience.Budget.check "memo:plan";
  memoize t t.plans key
    ~hit:(fun c -> c.plan_hits <- c.plan_hits + 1)
    ~miss:(fun c -> c.plan_misses <- c.plan_misses + 1)
    compute

(* Merge a worker-computed plan, mirroring {!absorb_report} (minus the
   observer: plans are never journaled — they are cheap to recompute next
   to a synthesis and the journal schema stays report-only). *)
let absorb_plan t ~key value =
  Mutex.lock t.lock;
  (match Hashtbl.find_opt t.plans key with
  | Some (Done _) -> ()
  | _ ->
      t.c.plan_misses <- t.c.plan_misses + 1;
      guard_capacity t t.plans;
      Hashtbl.replace t.plans key (Done value));
  Mutex.unlock t.lock

let report_key ~composition ~latency_mode ~device ~directives func =
  String.concat "##"
    [
      func_key func;
      directives_key directives;
      device_key device;
      (match composition with
      | Resource.Reuse -> "reuse"
      | Resource.Dataflow -> "dataflow");
      (match latency_mode with
      | `Sequential -> "sequential"
      | `Dataflow -> "dataflow");
    ]

let synthesize t ?(composition = Resource.Reuse) ?(latency_mode = `Sequential)
    ~device ~directives func make_prog =
  Pom_resilience.Budget.check "memo:synthesize";
  let key = report_key ~composition ~latency_mode ~device ~directives func in
  memoize t t.reports key
    ~hit:(fun c -> c.report_hits <- c.report_hits + 1)
    ~miss:(fun c -> c.report_misses <- c.report_misses + 1)
    (fun () ->
      let prog = make_prog () in
      let report = Report.synthesize ~composition ~latency_mode ~device prog in
      (* genuine evaluations only: replayed (restored) design points never
         re-fire the observer, so a resumed journal does not re-journal *)
      (match t.report_observer with
      | Some obs -> obs ~key (prog, report)
      | None -> ());
      (prog, report))

(* Checkpoint replay: seed a settled report without touching the counters or
   the observer — a restored point must behave exactly like a warm cache
   entry, so a resumed search replays into hits and reproduces the
   uninterrupted search's decisions. *)
let restore_report t ~key value =
  Mutex.lock t.lock;
  (match Hashtbl.find_opt t.reports key with
  | Some (Done _) -> ()
  | _ -> Hashtbl.replace t.reports key (Done value));
  Mutex.unlock t.lock

(* Merge an externally computed report (a worker process's reply): counts a
   miss and fires the observer exactly as if this process had computed it —
   so procs-mode prefetch journals its points and keeps the hit/miss
   deltas deterministic — but a key already settled (or raced to Done by a
   domain) is left alone without a count or a re-journal. *)
let absorb_report t ~key value =
  Mutex.lock t.lock;
  let fresh =
    match Hashtbl.find_opt t.reports key with
    | Some (Done _) -> false
    | _ ->
        t.c.report_misses <- t.c.report_misses + 1;
        guard_capacity t t.reports;
        Hashtbl.replace t.reports key (Done value);
        true
  in
  let obs = t.report_observer in
  Mutex.unlock t.lock;
  if fresh then match obs with Some f -> f ~key value | None -> ()

(* The journal's record payload: the wire-encoded design point.  The codec
   pair is the schema {!Pom_resilience.Checkpoint.version} covers. *)
let journal_value = Pom_wire.Wire.pair Pom_polyir.Wirec.prog Pom_hls.Wirec.report

(* The full journal protocol for one search: replay the intact records into
   the report memo, journal every genuinely computed point while [f] runs,
   and unhook/close no matter how [f] exits (in particular on a simulated
   kill — the journal's flushed prefix is exactly what resume replays).
   A record that no longer decodes is dropped as a cache miss (POM308) and
   counted in the trace notes: the journal is a cache of recomputable
   work, so losing a record costs a recomputation, never correctness. *)
let with_journal t path f =
  match path with
  | None -> f []
  | Some path -> (
      match Pom_resilience.Checkpoint.load path with
      | exception Sys_error m ->
          f
            [
              Printf.sprintf
                "checkpoint: %s unreadable (%s); continuing without a journal \
                 (POM306)"
                path m;
            ]
      | j, records, load_notes ->
          let replayed = ref 0 in
          let dropped = ref 0 in
          List.iter
            (fun (key, data) ->
              match Pom_wire.Wire.of_string journal_value data with
              | Ok v ->
                  restore_report t ~key v;
                  incr replayed
              | Error _ -> incr dropped)
            records;
          set_report_observer t
            (Some
               (fun ~key value ->
                 Pom_resilience.Checkpoint.append j ~key
                   ~data:(Pom_wire.Wire.to_string journal_value value)));
          let notes =
            load_notes
            @ (if !replayed > 0 then
                 [
                   Printf.sprintf
                     "checkpoint: replayed %d design points from %s" !replayed
                     path;
                 ]
               else
                 [
                   Printf.sprintf "checkpoint: journaling design points to %s"
                     path;
                 ])
            @
            if !dropped > 0 then
              [
                Printf.sprintf
                  "checkpoint: dropped %d undecodable design points (POM308)"
                  !dropped;
              ]
            else []
          in
          Fun.protect
            ~finally:(fun () ->
              set_report_observer t None;
              Pom_resilience.Checkpoint.close j)
            (fun () -> f notes))
