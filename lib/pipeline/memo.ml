open Pom_dsl
open Pom_hls

type counters = {
  mutable schedule_hits : int;
  mutable schedule_misses : int;
  mutable report_hits : int;
  mutable report_misses : int;
}

type t = {
  schedules : (string, Pom_polyir.Prog.t) Hashtbl.t;
  reports : (string, Pom_polyir.Prog.t * Report.t) Hashtbl.t;
  max_entries : int;
  c : counters;
}

let create ?(max_entries = 4096) () =
  {
    schedules = Hashtbl.create 256;
    reports = Hashtbl.create 256;
    max_entries;
    c =
      {
        schedule_hits = 0;
        schedule_misses = 0;
        report_hits = 0;
        report_misses = 0;
      };
  }

let global = create ()

let counters t = t.c

let snapshot t =
  {
    schedule_hits = t.c.schedule_hits;
    schedule_misses = t.c.schedule_misses;
    report_hits = t.c.report_hits;
    report_misses = t.c.report_misses;
  }

let clear t =
  Hashtbl.reset t.schedules;
  Hashtbl.reset t.reports

(* The function fingerprint covers everything directive application and
   synthesis can observe: iterator extents, array shapes and types, and the
   statement bodies (two same-named workloads at different problem sizes or
   data types must not collide). *)
let func_key func =
  let b = Buffer.create 256 in
  Buffer.add_string b (Func.name func);
  List.iter
    (fun (c : Compute.t) ->
      Buffer.add_char b '|';
      Buffer.add_string b (Format.asprintf "%a" Compute.pp c);
      List.iter
        (fun (v : Var.t) ->
          Buffer.add_string b
            (Printf.sprintf ";%s:%d:%d" v.Var.name v.Var.lb v.Var.ub))
        c.Compute.iters)
    (Func.computes func);
  List.iter
    (fun (p : Placeholder.t) ->
      Buffer.add_string b
        (Printf.sprintf "|%s[%s]%s" p.Placeholder.name
           (String.concat "," (List.map string_of_int p.Placeholder.shape))
           (Dtype.c_name p.Placeholder.dtype)))
    (Func.placeholders func);
  Buffer.contents b

let directives_key directives =
  String.concat ";" (List.map (Format.asprintf "%a" Schedule.pp) directives)

let device_key (d : Device.t) =
  Printf.sprintf "%s:%d:%d:%d:%d:%g" d.Device.name d.Device.dsp d.Device.lut
    d.Device.ff d.Device.bram_bits d.Device.clock_mhz

(* Past [max_entries] a table is dropped wholesale: long benchmark sweeps
   would otherwise retain every design point ever evaluated. *)
let guard_capacity t table =
  if Hashtbl.length table > t.max_entries then Hashtbl.reset table

let schedule t func directives =
  let key = func_key func ^ "##" ^ directives_key directives in
  match Hashtbl.find_opt t.schedules key with
  | Some prog ->
      t.c.schedule_hits <- t.c.schedule_hits + 1;
      prog
  | None ->
      t.c.schedule_misses <- t.c.schedule_misses + 1;
      let prog =
        Pom_polyir.Prog.apply_all
          (Pom_polyir.Prog.of_func_unscheduled func)
          directives
      in
      guard_capacity t t.schedules;
      Hashtbl.replace t.schedules key prog;
      prog

let synthesize t ?(composition = Resource.Reuse) ?(latency_mode = `Sequential)
    ~device ~directives func make_prog =
  let key =
    String.concat "##"
      [
        func_key func;
        directives_key directives;
        device_key device;
        (match composition with
        | Resource.Reuse -> "reuse"
        | Resource.Dataflow -> "dataflow");
        (match latency_mode with
        | `Sequential -> "sequential"
        | `Dataflow -> "dataflow");
      ]
  in
  match Hashtbl.find_opt t.reports key with
  | Some cached ->
      t.c.report_hits <- t.c.report_hits + 1;
      cached
  | None ->
      t.c.report_misses <- t.c.report_misses + 1;
      let prog = make_prog () in
      let report = Report.synthesize ~composition ~latency_mode ~device prog in
      guard_capacity t t.reports;
      Hashtbl.replace t.reports key (prog, report);
      (prog, report)
