(** IR statistics collected after each pass: enough to see at a glance how
    a pass changed the program (statement, constraint, loop, and op counts),
    in the spirit of MLIR's [-pass-statistics]. *)

type t = {
  stmts : int;  (** polyhedral statements *)
  constraints : int;  (** affine constraints over all statement domains *)
  loops : int;
      (** loop dimensions: schedule depth summed over statements, or affine
          [For] nodes once the program is lowered *)
  ops : int;  (** statement ops in the affine body (0 before lowering) *)
  directives : int;  (** scheduling directives applied so far *)
}

val zero : t

(** Statistics of a polyhedral-IR program. *)
val of_prog : Pom_polyir.Prog.t -> t

(** Refine [of_prog] statistics with affine-level loop/op counts. *)
val with_affine : Pom_affine.Ir.func -> t -> t

val pp : Format.formatter -> t -> unit
