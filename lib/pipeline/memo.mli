(** Memoization of the two expensive polyhedral evaluations the DSE hot
    path repeats: directive application (building a scheduled {!Pom_polyir.Prog.t}
    from a function and a directive list) and virtual HLS report synthesis.

    Entries are keyed by a structural fingerprint of the function plus the
    printed directive list (and, for reports, the device and composition
    mode), so two requests with the same key are guaranteed to describe the
    same design point.  Stage 2 of the DSE asks for the same base-directive
    prefix on every candidate evaluation and re-asks for the final design
    point after the search; both become cache hits, which the engine reports
    in its trace. *)

open Pom_dsl

(** Hit/miss counters, cumulative over the cache's lifetime. *)
type counters = {
  mutable schedule_hits : int;
  mutable schedule_misses : int;
  mutable report_hits : int;
  mutable report_misses : int;
  mutable plan_hits : int;
  mutable plan_misses : int;
}

(** One candidate's realization plan — the work between the shared schedule
    skeleton and report synthesis: the full directive list (base, hardware,
    and the derived partition plan) plus the scheduled pre-partition
    program.  Caching it makes a speculatively warmed design point a
    guaranteed hit for the sequential replay: recovering the report key no
    longer requires re-applying the hardware directives. *)
type plan = {
  plan_directives : Schedule.t list;  (** base @ hw @ parts *)
  plan_parts : Schedule.t list;
  plan_prog_hw : Pom_polyir.Prog.t;  (** scheduled, pre-partition *)
}

type t

(** [max_entries] (default 4096) bounds each table: exceeding it on insert
    drops that table wholesale, so long benchmark sweeps do not retain
    every design point ever evaluated.

    [reclaim_after] (default 30 s) is how long a waiter watches another
    domain's in-flight claim before presuming its owner dead and taking the
    claim over (recomputing, one extra miss).  The default is far above any
    single evaluation; tests shrink it to exercise the reclaim path. *)
val create : ?max_entries:int -> ?reclaim_after:float -> unit -> t

(** The process-wide cache used by default: sharing it across the DSE
    engine, the baselines, and the pipeline's synthesis pass is what lets a
    re-synthesis of an already-evaluated design point (e.g. the final DSE
    winner, or a [--trace] re-run) cost a lookup instead of a synthesis. *)
val global : t

val counters : t -> counters

(** A snapshot copy (for before/after deltas). *)
val snapshot : t -> counters

(** [schedule cache func directives] is
    [List.fold_left Prog.apply (Prog.of_func_unscheduled func) directives],
    cached. *)
val schedule : t -> Func.t -> Schedule.t list -> Pom_polyir.Prog.t

(** [synthesize cache ~device ~directives func make_prog] returns the
    scheduled program and its synthesis report for one design point,
    building both with [make_prog] and {!Pom_hls.Report.synthesize} only on
    a cache miss. *)
val synthesize :
  t ->
  ?composition:Pom_hls.Resource.composition ->
  ?latency_mode:Pom_hls.Report.latency_mode ->
  device:Pom_hls.Device.t ->
  directives:Schedule.t list ->
  Func.t ->
  (unit -> Pom_polyir.Prog.t) ->
  Pom_polyir.Prog.t * Pom_hls.Report.t

val clear : t -> unit

(** {1 Key fingerprints}

    The structural fingerprints the memo tables key on, exported so
    other caches (the compile server's cross-request response cache)
    can key on exactly the same identity the memo uses.  [func_key]
    deliberately excludes the function's attached directives — callers
    caching whole compiles must mix in {!directives_key} of
    [Func.directives] themselves. *)

val func_key : Func.t -> string
val directives_key : Schedule.t list -> string
val device_key : Pom_hls.Device.t -> string

(** The plan-memo key for one candidate: function, base prefix, hardware
    directives, and the partition planner's bank cap. *)
val plan_key :
  base:Schedule.t list ->
  hw:Schedule.t list ->
  bank_cap:int option ->
  Func.t ->
  string

(** [plan cache ~key compute] memoizes one realization plan with the same
    claim/settle discipline as the other tables (concurrent requesters of
    one key cost a single miss). *)
val plan : t -> key:string -> (unit -> plan) -> plan

(** Merge a plan computed outside this process (a worker's reply): counts a
    plan miss when fresh, silent no-op when [key] is already settled.
    Plans are never journaled. *)
val absorb_plan : t -> key:string -> plan -> unit

(** The report-memo key for one design point — the key the checkpoint
    journal records, stable across processes (a structural fingerprint, no
    addresses or hashes of mutable state). *)
val report_key :
  composition:Pom_hls.Resource.composition ->
  latency_mode:Pom_hls.Report.latency_mode ->
  device:Pom_hls.Device.t ->
  directives:Schedule.t list ->
  Func.t ->
  string

(** Observe every genuinely computed report ([None] unhooks): fires on
    misses only, with the lock released, after the value settles.  The DSE
    checkpoint appends each observed design point to its journal; replayed
    points enter through {!restore_report} and never re-fire it. *)
val set_report_observer :
  t -> (key:string -> Pom_polyir.Prog.t * Pom_hls.Report.t -> unit) option -> unit

(** Seed a settled report under [key] without counting a hit or a miss and
    without firing the observer — checkpoint replay, making a resumed
    search behave as if its cache were warm.  A key already settled is left
    alone. *)
val restore_report :
  t -> key:string -> Pom_polyir.Prog.t * Pom_hls.Report.t -> unit

(** Merge a design point computed outside this process (a worker's reply):
    counts a report miss and fires the observer exactly like a local
    computation — procs-mode prefetch journals through this — but is a
    silent no-op when [key] is already settled. *)
val absorb_report :
  t -> key:string -> Pom_polyir.Prog.t * Pom_hls.Report.t -> unit

(** [with_journal t (Some path) f]: open the checkpoint journal at [path],
    replay its intact design points into the report memo, journal every
    genuinely computed point while [f] runs, and unhook/close however [f]
    exits.  [f] receives trace notes (how many points were replayed, or
    that the journal was unreadable and dropped — POM306).
    [with_journal t None f] is [f []]. *)
val with_journal : t -> string option -> (string list -> 'a) -> 'a
