(** The end-to-end compile state threaded through {!Pass.run}: one record
    holding the function, the target device, the directives accumulated by
    the flow's transform passes, and each IR level as it is produced
    (polyhedral program → synthesis report → annotated affine → HLS C).
    Passes fill the slots left-to-right; instrumentation reads whichever
    levels exist. *)

open Pom_dsl

(** Open extension point for flow-private intermediate results: a flow
    declares its own [State.ext += ...] constructor and threads values
    through {!t.ext} between its passes (e.g. the DSE engine hands stage 1's
    output to the stage 2 pass this way), without this library depending on
    the flow's types. *)
type ext = ..

type t = {
  device : Pom_hls.Device.t;
  composition : Pom_hls.Resource.composition;
  latency_mode : Pom_hls.Report.latency_mode;
  func : Func.t;
  directives : Schedule.t list;  (** accumulated, in application order *)
  prog : Pom_polyir.Prog.t option;
  report : Pom_hls.Report.t option;
  affine : Pom_affine.Ir.func option;
  hls_c : string option;
  dse_time_s : float;  (** wall-clock DSE time (0 for non-searching flows) *)
  dse_cpu_s : float;  (** CPU DSE time *)
  tile_vectors : (string * int list) list;
  diags : Pom_analysis.Diagnostic.t list;
      (** analyzer output accumulated by the verify/lint passes, in order *)
  legality_violations : int;
      (** reversed dependences counted by the legality-check pass *)
  trace : string list;  (** decision/verification log, in order *)
  ext : ext list;  (** flow-private extensions, most recent first *)
}

(** Prepend an extension value. *)
val add_ext : ext -> t -> t

(** First extension value recognized by [f], most recent first. *)
val find_ext : (ext -> 'a option) -> t -> 'a option

val init :
  ?composition:Pom_hls.Resource.composition ->
  ?latency_mode:Pom_hls.Report.latency_mode ->
  device:Pom_hls.Device.t ->
  Func.t ->
  t

(** Statistics of the most-lowered IR present. *)
val stats : t -> Stats.t

(** Textual dump of the most-lowered IR present (HLS C, else textual MLIR
    of the affine level, else the polyhedral program). *)
val dump : t -> string

(** The specification's own fusion structure ([after]/[fuse] at level >= 1):
    part of the reference semantics, not a transformation under test. *)
val structural_directives : Func.t -> Schedule.t list

(** The structural reference program legality is checked against: the
    unscheduled lowering plus the specification's own fusion structure. *)
val reference : t -> Pom_polyir.Prog.t

(** Post-pass verification verdict: polyhedral legality against
    {!reference}, plus functional-simulator divergence when [simulate] is
    set (expensive — only sensible on small problem sizes). *)
val verify : ?simulate:bool -> t -> string

(** Pass-manager hooks observing this state: statistics and dumps are wired
    to {!stats} and {!dump}; [dump_after] and [verify_each]/[simulate] come
    from the caller (the CLI's [--dump-after] and [--verify-each]). *)
val instruments :
  ?dump_after:string list ->
  ?verify_each:bool ->
  ?simulate:bool ->
  unit ->
  t Pass.instruments
