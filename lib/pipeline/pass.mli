(** A named compiler pass and an instrumented pass manager, in the style of
    MLIR's pass manager: every lowering/transform step of the compile flow is
    a registered pass, and running a pipeline yields one {!record} per pass
    with wall-clock and CPU timing, IR statistics, the optional IR dump
    requested with [--dump-after], and the optional post-pass verification
    verdict requested with [--verify-each].

    Passes are polymorphic in the state they transform, so the same manager
    drives the end-to-end compile state ({!State.t}), the DSE engine, and
    unit tests over toy states. *)

type info = { name : string; descr : string }

type 's t = { info : info; run : 's -> 's }

(** [v ~name ~descr f] creates a pass and registers its metadata in
    {!Registry}. *)
val v : name:string -> descr:string -> ('s -> 's) -> 's t

(** [guarded ~diag p] wraps [p] in the resilience guard: the wrapped pass
    is a fault-injection site ["pass:<name>"], and any failure — including
    a {!Pom_resilience.Budget.Budget_exceeded} deadline — becomes a typed
    {!Pom_resilience.Error.t} naming the pass.  When the ambient
    {!Pom_resilience.Policy} is [Degrade] and the pass is not [required]
    (default), the failure is recorded as a diagnostic through
    [diag state err] (which should return the state with the diagnostic
    attached) and the pipeline continues from the unmodified state;
    otherwise the typed error is raised for the driver's exit-code
    contract.  [Fault.Killed] always propagates — it simulates the process
    dying at that point. *)
val guarded :
  ?required:bool -> diag:('s -> Pom_resilience.Error.t -> 's) -> 's t -> 's t

(** What one pass did, measured by the manager. *)
type record = {
  pass : string;
  wall_s : float;  (** wall-clock seconds ([Unix.gettimeofday]) *)
  cpu_s : float;  (** CPU seconds ([Sys.time]) *)
  stats : Stats.t option;  (** post-pass IR statistics, when hooked *)
  dump : string option;  (** post-pass IR text, when requested *)
  verdict : string option;  (** post-pass verification, when requested *)
}

(** Observation hooks for a pipeline run.  [stats] is collected after every
    pass; [dump] fires only for passes named in [dump_after] (or all passes
    when the list is [["all"]]); [verify] fires after every pass when
    [verify_each] is set. *)
type 's instruments = {
  stats : ('s -> Stats.t) option;
  dump : ('s -> string) option;
  dump_after : string list;
  verify : ('s -> string) option;
  verify_each : bool;
}

(** No hooks: timing only. *)
val observe_nothing : 's instruments

(** Run the passes in order, threading the state through; returns the final
    state and one record per pass, in execution order. *)
val run : ?instruments:'s instruments -> 's t list -> 's -> 's * record list

(** One [--timing] table line: pass name, wall/CPU milliseconds, statistics,
    and the verification verdict when present. *)
val pp_record : Format.formatter -> record -> unit
