open Pom_dsl

type edge_kind = Raw | War | Waw

type edge = { src : string; dst : string; array : string; kind : edge_kind }

type node = { compute : Compute.t; fine : Finegrain.t }

type t = { nodes : node list; edges : edge list }

let build func =
  let computes = Func.computes func in
  (* per-statement fine-grained dependence analysis is independent across
     statements — fan it out (order-preserving; sequential at --jobs 1) *)
  let nodes =
    Pom_par.Par.map
      (fun c -> { compute = c; fine = Finegrain.analyze c })
      computes
  in
  let rec pairs = function
    | [] -> []
    | c :: rest -> List.map (fun c' -> (c, c')) rest @ pairs rest
  in
  let edges =
    List.concat_map
      (fun ((c1 : Compute.t), (c2 : Compute.t)) ->
        let w1 = Compute.array_written c1 and w2 = Compute.array_written c2 in
        let raw =
          if List.mem w1 (Compute.arrays_read c2) then
            [ { src = c1.name; dst = c2.name; array = w1; kind = Raw } ]
          else []
        in
        let war =
          if List.mem w2 (Compute.arrays_read c1) then
            [ { src = c1.name; dst = c2.name; array = w2; kind = War } ]
          else []
        in
        let waw =
          if w1 = w2 then
            [ { src = c1.name; dst = c2.name; array = w1; kind = Waw } ]
          else []
        in
        raw @ war @ waw)
      (pairs computes)
  in
  { nodes; edges }

let nodes t = t.nodes

let node t name =
  match
    List.find_opt (fun n -> n.compute.Compute.name = name) t.nodes
  with
  | Some n -> n
  | None -> invalid_arg ("Graph.node: unknown compute " ^ name)

let edges t = t.edges

let successors t name =
  List.filter_map
    (fun e -> if e.kind = Raw && e.src = name then Some e.dst else None)
    t.edges
  |> List.sort_uniq String.compare

let predecessors t name =
  List.filter_map
    (fun e -> if e.kind = Raw && e.dst = name then Some e.src else None)
    t.edges
  |> List.sort_uniq String.compare

let order t = List.map (fun n -> n.compute.Compute.name) t.nodes

let data_paths t =
  let sources =
    List.filter (fun n -> predecessors t n = []) (order t)
  in
  let rec extend path name =
    match successors t name with
    | [] -> [ List.rev (name :: path) ]
    | succs -> List.concat_map (extend (name :: path)) succs
  in
  List.concat_map (extend []) sources

let pp_kind ppf = function
  | Raw -> Format.pp_print_string ppf "RAW"
  | War -> Format.pp_print_string ppf "WAR"
  | Waw -> Format.pp_print_string ppf "WAW"

let pp ppf t =
  Format.fprintf ppf "@[<v>nodes: %s@,%a@]"
    (String.concat ", " (order t))
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf e ->
         Format.fprintf ppf "%s -%a(%s)-> %s" e.src pp_kind e.kind e.array
           e.dst))
    t.edges
