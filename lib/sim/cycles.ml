open Pom_poly
open Pom_dsl
open Pom_polyir

type bounds = {
  group : int;
  stmts : string list;
  instances : int;
  serial_bound : int;
  port_bound : int;
  chain_bound : int;
}

(* Mirror of {!Pom_hls.Summary.transformed_accesses}, kept local so the
   simulator stays independent of the QoR model it refutes. *)
let transformed_accesses (s : Stmt_poly.t) =
  let remap (a : Dep.access) =
    {
      a with
      Dep.indices = List.map (Linexpr.subst_all s.Stmt_poly.index_map) a.indices;
    }
  in
  ( remap (Compute.write_access s.Stmt_poly.compute),
    List.map remap (Compute.read_accesses s.Stmt_poly.compute) )

(* Domain re-tupled to schedule order, so enumerated coordinates line up
   with the loop nest the backend would emit. *)
let ordered_domain (s : Stmt_poly.t) =
  Basic_set.make
    (Sched.dims s.Stmt_poly.sched)
    (Basic_set.constraints s.Stmt_poly.domain)

type instance = {
  coords : int list;  (** schedule order *)
  serial : int list;  (** coords with unrolled dims collapsed *)
  written : (string * int list) list;
  read : (string * int list) list;
}

let enumerate_stmt ~cap (s : Stmt_poly.t) =
  let dims = Sched.dims s.Stmt_poly.sched in
  match Feasible.enumerate ~limit:(cap + 1) (ordered_domain s) with
  | exception Invalid_argument _ -> None
  | points when List.length points > cap -> None
  | points ->
      let unroll d =
        match List.assoc_opt d s.Stmt_poly.hw.Stmt_poly.unrolls with
        | Some f when f > 1 -> f
        | _ -> 1
      in
      (* Pipelining a level fully unrolls every level beneath it (Vitis
         semantics): those dimensions stop contributing serial steps. *)
      let pipeline_level =
        match s.Stmt_poly.hw.Stmt_poly.pipeline with
        | None -> None
        | Some (d, _) ->
            let rec find k = function
              | [] -> None
              | d' :: _ when String.equal d d' -> Some k
              | _ :: rest -> find (k + 1) rest
            in
            find 0 dims
      in
      let inside_pipeline k =
        match pipeline_level with Some l -> k > l | None -> false
      in
      (* Normalize each dimension to its observed minimum before collapsing
         by the unroll factor: hardware groups consecutive iterations from
         the loop's lower bound, so an unnormalized v/f could split one
         parallel batch into two serial steps and overstate the bound. *)
      let mins =
        match points with
        | [] -> List.map (fun _ -> 0) dims
        | p0 :: rest ->
            List.fold_left (fun acc p -> List.map2 min acc p) p0 rest
      in
      let factors = List.map unroll dims in
      let write, reads = transformed_accesses s in
      let eval_access env (a : Dep.access) =
        (a.Dep.array, List.map (Linexpr.eval env) a.Dep.indices)
      in
      let instance coords =
        let env d =
          let rec find ds vs =
            match (ds, vs) with
            | d' :: _, v :: _ when String.equal d d' -> v
            | _ :: ds, _ :: vs -> find ds vs
            | _ -> raise Not_found
          in
          find dims coords
        in
        let serial =
          List.mapi
            (fun k (v, (m, f)) -> if inside_pipeline k then 0 else (v - m) / f)
            (List.combine coords (List.combine mins factors))
        in
        {
          coords;
          serial;
          written = [ eval_access env write ];
          read = List.map (eval_access env) reads;
        }
      in
      Some (List.map instance points)

(* ---- serial bound ------------------------------------------------------ *)

(* Distinct serial steps: every step costs at least one cycle even under
   pipelining (any achieved II is >= 1). *)
let serial_bound instances =
  let seen = Hashtbl.create 64 in
  List.iter (fun i -> Hashtbl.replace seen i.serial ()) instances;
  Hashtbl.length seen

(* ---- port bound -------------------------------------------------------- *)

(* Distinct elements the group must move through each bank's (at most) two
   ports.  Distinct — not per-instance — so perfect reuse/broadcast is
   conceded to the model; the bound is taken as the *min* over a cyclic and
   a block interpretation of the declared banking, so it stays sound
   whichever convention the model implements. *)

type mapping = Map_cyclic | Map_block

let bank_of ~mapping ~factors ~extents idx =
  let rec go fs es is acc =
    match (fs, es, is) with
    | [], _, _ | _, [], _ | _, _, [] -> acc
    | f :: fs, e :: es, i :: is ->
        let b =
          if f <= 1 then 0
          else
            match mapping with
            | Map_cyclic -> ((i mod f) + f) mod f
            | Map_block ->
                let chunk = max 1 ((e + f - 1) / f) in
                min (f - 1) (max 0 i / chunk)
        in
        go fs es is ((acc * f) + b)
  in
  go factors extents idx 0

let port_bound (prog : Prog.t) group_instances =
  let module SS = Set.Make (struct
    type t = string * int list

    let compare = compare
  end) in
  let reads, writes =
    List.fold_left
      (fun (r, w) i ->
        ( List.fold_left (fun r a -> SS.add a r) r i.read,
          List.fold_left (fun w a -> SS.add a w) w i.written ))
      (SS.empty, SS.empty) group_instances
  in
  (* Per-array observed index-space extents (for the block interpretation). *)
  let extents : (string, int array) Hashtbl.t = Hashtbl.create 8 in
  let observe (array, idx) =
    match Hashtbl.find_opt extents array with
    | None -> Hashtbl.replace extents array (Array.of_list (List.map (fun i -> i + 1) idx))
    | Some e ->
        List.iteri (fun k i -> if k < Array.length e then e.(k) <- max e.(k) (i + 1)) idx
  in
  SS.iter observe reads;
  SS.iter observe writes;
  let factors_of array =
    match List.assoc_opt array prog.Prog.partitions with
    | Some (fs, _) -> fs
    | None -> []
  in
  let bound_under mapping =
    let per_bank : (string * int, int) Hashtbl.t = Hashtbl.create 32 in
    let charge (array, idx) =
      let fs = factors_of array in
      let es =
        match Hashtbl.find_opt extents array with
        | Some e -> Array.to_list e
        | None -> List.map (fun _ -> 1) fs
      in
      (* pad/truncate factors to the index arity *)
      let rec fit fs idx =
        match (fs, idx) with
        | _, [] -> []
        | [], _ :: idx -> 1 :: fit [] idx
        | f :: fs, _ :: idx -> f :: fit fs idx
      in
      let fs = fit fs idx in
      let es =
        let rec fit es idx =
          match (es, idx) with
          | _, [] -> []
          | [], _ :: idx -> 1 :: fit [] idx
          | e :: es, _ :: idx -> e :: fit es idx
        in
        fit es idx
      in
      let b = bank_of ~mapping ~factors:fs ~extents:es idx in
      let key = (array, b) in
      Hashtbl.replace per_bank key (1 + Option.value ~default:0 (Hashtbl.find_opt per_bank key))
    in
    SS.iter charge reads;
    SS.iter charge writes;
    Hashtbl.fold (fun _ ops acc -> max acc ((ops + 1) / 2)) per_bank 0
  in
  min (bound_under Map_cyclic) (bound_under Map_block)

(* ---- chain bound ------------------------------------------------------- *)

(* Longest same-element dependence chain (RAW/WAR/WAW) through one
   statement's instances, walked in lexicographic (schedule) order; edges
   between instances of the same serial step are skipped — those are
   parallel unroll copies.  One cycle per link is the floor; the model may
   legitimately do better only through transforms the backend cannot see,
   so violations are advisory (precision), not refutations. *)
let chain_bound_stmt instances =
  let last_write : (string * int list, int list * int) Hashtbl.t =
    Hashtbl.create 64
  in
  let last_access : (string * int list, int list * int) Hashtbl.t =
    Hashtbl.create 64
  in
  let longest = ref 0 in
  List.iter
    (fun i ->
      let pred tbl el =
        match Hashtbl.find_opt tbl el with
        | Some (serial, depth) when serial <> i.serial -> depth
        | _ -> 0
      in
      let depth =
        1
        + List.fold_left
            (fun acc el -> max acc (pred last_write el))
            (List.fold_left
               (fun acc el -> max acc (pred last_access el))
               0 i.written)
            (i.read @ i.written)
      in
      List.iter
        (fun el ->
          Hashtbl.replace last_write el (i.serial, depth);
          Hashtbl.replace last_access el (i.serial, depth))
        i.written;
      List.iter
        (fun el ->
          match Hashtbl.find_opt last_access el with
          | Some (_, d) when d >= depth -> ()
          | _ -> Hashtbl.replace last_access el (i.serial, depth))
        i.read;
      if depth > !longest then longest := depth)
    instances;
  !longest

(* ---- driver ------------------------------------------------------------ *)

let default_cap = 4096

let of_prog ?(cap = default_cap) (prog : Prog.t) =
  let stmts =
    List.map
      (fun (s : Stmt_poly.t) -> (Sched.const_at s.Stmt_poly.sched 0, s))
      prog.Prog.stmts
  in
  let groups =
    List.sort_uniq compare (List.map fst stmts)
  in
  let enumerated =
    List.map (fun (g, s) -> (g, s, enumerate_stmt ~cap s)) stmts
  in
  if List.exists (fun (_, _, e) -> e = None) enumerated then None
  else
    Some
      (List.map
         (fun g ->
           let members =
             List.filter_map
               (fun (g', s, e) ->
                 if g' = g then Some (s, Option.get e) else None)
               enumerated
           in
           let all = List.concat_map snd members in
           {
             group = g;
             stmts =
               List.map (fun ((s : Stmt_poly.t), _) -> Stmt_poly.name s) members;
             instances = List.length all;
             (* fused statements may run in parallel: a group is only
                pinned down by its widest member *)
             serial_bound =
               List.fold_left
                 (fun acc (_, is) -> max acc (serial_bound is))
                 0 members;
             port_bound = port_bound prog all;
             chain_bound =
               List.fold_left
                 (fun acc (_, is) -> max acc (chain_bound_stmt is))
                 0 members;
           })
         groups)

let pp ppf b =
  Format.fprintf ppf
    "@[group %d (%s): %d instances, serial >= %d, ports >= %d, chain >= %d@]"
    b.group
    (String.concat ", " b.stmts)
    b.instances b.serial_bound b.port_bound b.chain_bound
