(** Operational cycle-count lower bounds, computed by brute-force
    enumeration of statement instances — the ground truth the QoR model's
    group latencies are refuted against.

    For each fusion group (statements sharing the leading scalar schedule
    constant) three bounds are derived from first principles, each sound
    for {e any} schedule the backend could emit for the scheduled program:

    - {b serial}: the number of distinct serial steps — instance
      coordinates with unrolled dimensions collapsed by their factor.
      Every step costs at least one cycle (any achieved II is >= 1).
    - {b port}: distinct array elements the group reads plus distinct
      elements it writes, mapped to banks under the program's partition
      directives, at most two port operations per bank per cycle.  Taken
      as the minimum over a cyclic and a block interpretation of the
      banking so it stays sound whichever convention the model uses, and
      conceding perfect reuse (each element charged once).
    - {b chain}: the longest same-element dependence chain (RAW/WAR/WAW)
      through a single statement's instances, one cycle per link, edges
      within one serial step skipped (parallel unroll copies).  This one
      assumes the model doesn't rewrite the reduction structure, so
      violations are advisory rather than refutations.

    A model group latency below the serial or port bound is a genuine QoR
    bug; below the chain bound is a precision concern. *)

type bounds = {
  group : int;  (** leading scalar schedule constant (fusion group) *)
  stmts : string list;  (** member statement names *)
  instances : int;  (** enumerated instances across members *)
  serial_bound : int;
  port_bound : int;
  chain_bound : int;
}

val default_cap : int

(** [of_prog ?cap prog] enumerates every statement's iteration domain (in
    schedule order) and derives per-group bounds; [None] when any
    statement exceeds [cap] instances (default {!default_cap}) or has an
    unbounded domain — callers should skip, not fail. *)
val of_prog : ?cap:int -> Pom_polyir.Prog.t -> bounds list option

val pp : Format.formatter -> bounds -> unit
