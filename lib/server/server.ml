module Budget = Pom_resilience.Budget
module Checkpoint = Pom_resilience.Checkpoint
module Memo = Pom_pipeline.Memo

let default_max_queue = 16

(* One queued compile.  The connection thread that decoded the request
   owns the socket and the response write; the executor owns the compute.
   They meet on [resp] (under [m]) and on [cancelled], which the
   connection thread sets when it sees the client hang up — the
   executor's per-request budget polls it, so a disconnect aborts the
   compile at the next cooperative checkpoint. *)
type job = {
  req : Protocol.request;
  cancelled : bool Atomic.t;
  m : Mutex.t;
  mutable resp : Protocol.response option;
  (* completion doorbell: the executor writes one byte after settling
     [resp], so the connection thread's select wakes immediately instead
     of on its next disconnect-poll tick.  The connection thread owns
     both ends; [notify_closed] (under [m]) keeps the executor from
     writing into a recycled descriptor after the owner gave up. *)
  notify_r : Unix.file_descr;
  notify_w : Unix.file_descr;
  mutable notify_closed : bool;
}

let settle (job : job) resp =
  Mutex.lock job.m;
  job.resp <- Some resp;
  if not job.notify_closed then
    (try ignore (Unix.write job.notify_w (Bytes.make 1 '!') 0 1)
     with Unix.Unix_error _ -> ());
  Mutex.unlock job.m

type t = {
  socket_path : string;
  listen_fd : Unix.file_descr;
  max_queue : int;
  max_payload : int;
  jobs : int;
  stop : bool Atomic.t;
  (* admission queue *)
  qm : Mutex.t;
  qc : Condition.t;
  queue : job Queue.t;
  mutable queue_closed : bool;
  (* cross-request response cache + counters, under [sm] *)
  sm : Mutex.t;
  cache : (string, Protocol.result) Hashtbl.t;
  (* durable mirror of [cache]: every insert is appended (key,
     wire-encoded result) so a restarted daemon warm-starts from disk.
     [journaled] counts entries known durable; cache size minus it is
     the journal lag the health probe reports. *)
  journal : Checkpoint.t option;
  mutable journaled : int;
  mutable requests : int;
  mutable succeeded : int;
  mutable failed : int;
  mutable rejected : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable executor_respawns : int;
  executor_live : bool Atomic.t;
  started_at : float;
  live_conns : int Atomic.t;
  mutable accept_thread : Thread.t option;
  mutable exec_thread : Thread.t option;
}

let zero_memo =
  {
    Protocol.schedule_hits = 0;
    schedule_misses = 0;
    report_hits = 0;
    report_misses = 0;
    plan_hits = 0;
    plan_misses = 0;
  }

let stats t =
  Mutex.lock t.sm;
  let s =
    {
      Protocol.requests = t.requests;
      succeeded = t.succeeded;
      failed = t.failed;
      rejected = t.rejected;
      cache_hits = t.cache_hits;
      cache_misses = t.cache_misses;
      cache_entries = Hashtbl.length t.cache;
      queue_depth =
        (Mutex.lock t.qm;
         let d = Queue.length t.queue in
         Mutex.unlock t.qm;
         d);
      uptime_s = Unix.gettimeofday () -. t.started_at;
    }
  in
  Mutex.unlock t.sm;
  s

(* -------- executor -------- *)

let memo_delta (before : Memo.counters) (after : Memo.counters) =
  {
    Protocol.schedule_hits = after.Memo.schedule_hits - before.Memo.schedule_hits;
    schedule_misses = after.Memo.schedule_misses - before.Memo.schedule_misses;
    report_hits = after.Memo.report_hits - before.Memo.report_hits;
    report_misses = after.Memo.report_misses - before.Memo.report_misses;
    plan_hits = after.Memo.plan_hits - before.Memo.plan_hits;
    plan_misses = after.Memo.plan_misses - before.Memo.plan_misses;
  }

(* First write wins, mirrored to the journal when one is configured.  A
   failed append (disk full, journal on a dead mount) costs durability,
   not the request: the in-memory cache still serves, and the health
   probe reports the growing lag.  Caller holds [sm]. *)
let cache_insert t key result =
  if not (Hashtbl.mem t.cache key) then begin
    Hashtbl.replace t.cache key result;
    match t.journal with
    | None -> ()
    | Some j -> (
        try
          Checkpoint.append j ~key
            ~data:(Pom_wire.Wire.to_string Protocol.result_codec result);
          t.journaled <- t.journaled + 1
        with _ -> ())
  end

let health t =
  Mutex.lock t.sm;
  let entries = Hashtbl.length t.cache in
  let journaled = t.journaled in
  let respawns = t.executor_respawns in
  let has_journal = t.journal <> None in
  Mutex.unlock t.sm;
  {
    Protocol.h_uptime_s = Unix.gettimeofday () -. t.started_at;
    h_queue_depth =
      (Mutex.lock t.qm;
       let d = Queue.length t.queue in
       Mutex.unlock t.qm;
       d);
    h_executor_live = Atomic.get t.executor_live;
    h_executor_respawns = respawns;
    h_cache_entries = entries;
    h_journal_lag =
      (if has_journal then Some (max 0 (entries - journaled)) else None);
  }

let execute t (job : job) =
  let req = job.req in
  let key = Protocol.cache_key req in
  let t0 = Unix.gettimeofday () in
  let cached =
    if not req.Protocol.use_cache then None
    else begin
      Mutex.lock t.sm;
      let v = Hashtbl.find_opt t.cache key in
      (match v with
      | Some _ -> t.cache_hits <- t.cache_hits + 1
      | None -> t.cache_misses <- t.cache_misses + 1);
      Mutex.unlock t.sm;
      v
    end
  in
  let resp =
    match cached with
    | Some result ->
        Mutex.lock t.sm;
        t.succeeded <- t.succeeded + 1;
        Mutex.unlock t.sm;
        {
          Protocol.r_id = req.Protocol.id;
          served = Protocol.Cached;
          memo = zero_memo;
          wall_s = Unix.gettimeofday () -. t0;
          outcome = Stdlib.Ok result;
        }
    | None -> (
        let before = Memo.snapshot Memo.global in
        match
          (* the request's deadline and the disconnect poll become the
             ambient budget for this compile only; [Pom.compile] is not
             given a deadline of its own, so it runs under this one *)
          Budget.with_budget ?deadline_s:req.Protocol.deadline_s
            ~cancel:(fun () -> Atomic.get job.cancelled)
            (fun () ->
              Pom.compile ~device:req.Protocol.device
                ~framework:req.Protocol.framework ~dnn:req.Protocol.dnn
                ~jobs:t.jobs req.Protocol.func)
        with
        | c ->
            let result = Protocol.result_of_compiled c in
            Mutex.lock t.sm;
            t.succeeded <- t.succeeded + 1;
            (* only successful compiles enter the cache (a deadline-shaped
               failure must not poison future requests), and the first
               write wins: a cache-bypassing recompile reproduces the
               design but not the stopwatch fields, and cached responses
               must stay bit-stable across it *)
            cache_insert t key result;
            Mutex.unlock t.sm;
            {
              Protocol.r_id = req.Protocol.id;
              served = Protocol.Computed;
              memo = memo_delta before (Memo.snapshot Memo.global);
              wall_s = Unix.gettimeofday () -. t0;
              outcome = Stdlib.Ok result;
            }
        | exception e ->
            Mutex.lock t.sm;
            t.failed <- t.failed + 1;
            Mutex.unlock t.sm;
            {
              Protocol.r_id = req.Protocol.id;
              served = Protocol.Computed;
              memo = memo_delta before (Memo.snapshot Memo.global);
              wall_s = Unix.gettimeofday () -. t0;
              outcome = Stdlib.Error (Protocol.error_of_exn e);
            })
  in
  settle job resp

let next_job t =
  Mutex.lock t.qm;
  let rec wait () =
    if not (Queue.is_empty t.queue) then begin
      let j = Queue.pop t.queue in
      Mutex.unlock t.qm;
      Some j
    end
    else if t.queue_closed then begin
      Mutex.unlock t.qm;
      None
    end
    else begin
      Condition.wait t.qc t.qm;
      wait ()
    end
  in
  wait ()

let run_job t (job : job) =
  if Atomic.get job.cancelled then begin
    (* client gone before we started: account it, skip the work *)
    Mutex.lock t.sm;
    t.failed <- t.failed + 1;
    Mutex.unlock t.sm;
    settle job
      {
        Protocol.r_id = job.req.Protocol.id;
        served = Protocol.Computed;
        memo = zero_memo;
        wall_s = 0.0;
        outcome =
          Stdlib.Error
            {
              Protocol.code = "POM301";
              message = "client disconnected before compile started";
              context = [];
            };
      }
  end
  else begin
    (* deterministic chaos site: an "executor bug" striking between jobs —
       exactly the class of exception [execute]'s own typed-error mapping
       cannot absorb *)
    Pom_resilience.Fault.point "server:executor";
    execute t job
  end

(* The executor is supervised: [execute] maps everything a compile can
   throw onto a typed error response, so an exception escaping here is an
   executor bug — under the old blanket [try ... with _ -> ()] it was
   swallowed with the client left waiting on a job that would never
   settle.  Now it is logged, charged to the in-flight request alone as a
   typed POM312, and the loop respawns for the next job; the daemon stays
   up and the health probe reports the respawn count. *)
let executor t () =
  let rec next () =
    match next_job t with
    | None -> Atomic.set t.executor_live false
    | Some job ->
        (match run_job t job with
        | () -> ()
        | exception e ->
            Mutex.lock t.sm;
            t.failed <- t.failed + 1;
            t.executor_respawns <- t.executor_respawns + 1;
            Mutex.unlock t.sm;
            Printf.eprintf
              "pom_compile --serve: executor crashed (%s); respawning \
               (POM312)\n\
               %!"
              (Printexc.to_string e);
            settle job
              {
                Protocol.r_id = job.req.Protocol.id;
                served = Protocol.Computed;
                memo = zero_memo;
                wall_s = 0.0;
                outcome =
                  Stdlib.Error
                    {
                      Protocol.code = "POM312";
                      message =
                        "server executor crashed mid-request and was \
                         respawned; only this request failed: "
                        ^ Printexc.to_string e;
                      context = [];
                    };
              });
        next ()
  in
  next ()

(* -------- connections -------- *)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let send_response fd msg =
  (* SIGPIPE is ignored process-wide; a dead peer surfaces as EPIPE,
     which we swallow — the response is undeliverable, nothing else *)
  let oc = Unix.out_channel_of_descr fd in
  try Protocol.write_server_msg oc msg
  with Sys_error _ | Unix.Unix_error _ -> ()

let error_response ~id code message =
  {
    Protocol.r_id = id;
    served = Protocol.Computed;
    memo = zero_memo;
    wall_s = 0.0;
    outcome = Stdlib.Error { Protocol.code; message; context = [] };
  }

(* Park until the executor settles [job], watching the socket so a client
   that hangs up cancels the compile instead of wasting the server's
   time.  The doorbell pipe makes completion wake the select immediately
   (a cache hit answers in microseconds, not a poll tick); a readable
   socket returning zero bytes is a hangup; actual stray bytes from a
   confused client are drained and ignored. *)
let await_response fd (job : job) =
  let buf = Bytes.create 64 in
  let rec go () =
    Mutex.lock job.m;
    let resp = job.resp in
    Mutex.unlock job.m;
    match resp with
    | Some r -> Some r
    | None ->
        (match Unix.select [ fd; job.notify_r ] [] [] 1.0 with
        | ready, _, _ when List.mem fd ready -> (
            match Unix.recv fd buf 0 (Bytes.length buf) [] with
            | 0 -> Atomic.set job.cancelled true
            | _ -> ()
            | exception Unix.Unix_error _ -> Atomic.set job.cancelled true)
        | _ -> ()
        | exception Unix.Unix_error _ -> Atomic.set job.cancelled true);
        if Atomic.get job.cancelled then None else go ()
  in
  let r = go () in
  Mutex.lock job.m;
  job.notify_closed <- true;
  Mutex.unlock job.m;
  close_quietly job.notify_r;
  close_quietly job.notify_w;
  r

let enqueue t job =
  Mutex.lock t.qm;
  let admitted =
    if t.queue_closed then `Closed
    else if Queue.length t.queue >= t.max_queue then `Full
    else begin
      Queue.push job t.queue;
      Condition.signal t.qc;
      `Admitted
    end
  in
  Mutex.unlock t.qm;
  admitted

let handle_connection t fd =
  let finally () =
    close_quietly fd;
    Atomic.decr t.live_conns
  in
  Fun.protect ~finally @@ fun () ->
  (* a silent client must not pin this thread forever *)
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0
   with Unix.Unix_error _ -> ());
  let ic = Unix.in_channel_of_descr fd in
  match Protocol.read_client_msg ~max_payload:t.max_payload ic with
  | Protocol.Stats -> send_response fd (Protocol.Server_stats (stats t))
  | Protocol.Ping -> send_response fd (Protocol.Health (health t))
  | Protocol.Shutdown ->
      Atomic.set t.stop true;
      send_response fd (Protocol.Server_stats (stats t))
  | Protocol.Compile req -> (
      Mutex.lock t.sm;
      t.requests <- t.requests + 1;
      Mutex.unlock t.sm;
      let notify_r, notify_w = Unix.pipe ~cloexec:true () in
      let job =
        {
          req;
          cancelled = Atomic.make false;
          m = Mutex.create ();
          resp = None;
          notify_r;
          notify_w;
          notify_closed = false;
        }
      in
      match enqueue t job with
      | `Full | `Closed ->
          close_quietly notify_r;
          close_quietly notify_w;
          Mutex.lock t.sm;
          t.rejected <- t.rejected + 1;
          Mutex.unlock t.sm;
          send_response fd
            (Protocol.Response
               (error_response ~id:req.Protocol.id "POM310"
                  "server overloaded: admission queue full"))
      | `Admitted -> (
          match await_response fd job with
          | Some resp -> send_response fd (Protocol.Response resp)
          | None -> (* client hung up; nothing to deliver *) ()))
  | exception End_of_file -> ()
  | exception Pom_wire.Wire.Corrupt { detail; _ } ->
      send_response fd
        (Protocol.Response
           (error_response ~id:0 "POM308" ("corrupt request: " ^ detail)))
  | exception Pom_wire.Wire.Version_mismatch { expected; got; _ } ->
      send_response fd
        (Protocol.Response
           (error_response ~id:0 "POM309"
              (Printf.sprintf "protocol version %d (expected %d)" got expected)))
  | exception (Sys_error _ | Unix.Unix_error _) ->
      (* read timeout or transport error: drop the connection *) ()

(* -------- accept loop / lifecycle -------- *)

let acceptor t () =
  let rec loop () =
    if Atomic.get t.stop then ()
    else begin
      (match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | [ _ ], _, _ -> (
          match Unix.accept ~cloexec:true t.listen_fd with
          | fd, _ ->
              Atomic.incr t.live_conns;
              ignore (Thread.create (fun () -> handle_connection t fd) ())
          | exception Unix.Unix_error _ -> ())
      | _ -> ()
      | exception Unix.Unix_error _ -> ());
      loop ()
    end
  in
  loop ();
  (* stop: no new connections, drain the queue, wake the executor *)
  close_quietly t.listen_fd;
  (try Unix.unlink t.socket_path with Unix.Unix_error _ -> ());
  Mutex.lock t.qm;
  t.queue_closed <- true;
  Condition.broadcast t.qc;
  Mutex.unlock t.qm

(* Stale-socket recovery: a daemon killed with SIGKILL leaves its socket
   file behind, and blindly unlinking it would silently kill a healthy
   daemon's endpoint when two [--serve]s race.  So probe first: only a
   socket file nobody answers on is stale and safe to remove.  A live
   listener raises EADDRINUSE here (the caller reports "already
   running"), and a path that is not a socket at all is never touched —
   bind fails on it with its own error instead. *)
let remove_stale_socket socket =
  match (Unix.lstat socket).Unix.st_kind with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | Unix.S_SOCK -> (
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let verdict =
        match Unix.connect fd (Unix.ADDR_UNIX socket) with
        | () -> `Live
        | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> `Stale
        | exception Unix.Unix_error (Unix.ENOENT, _, _) -> `Stale
        | exception Unix.Unix_error _ ->
            (* permissions, interrupt, ...: cannot prove it dead *)
            `Live
      in
      close_quietly fd;
      match verdict with
      | `Live ->
          raise (Unix.Unix_error (Unix.EADDRINUSE, "bind", socket))
      | `Stale -> ( try Unix.unlink socket with Unix.Unix_error _ -> ()))
  | _ -> (* a regular file or directory is the user's, not ours *) ()

let start ?(max_queue = default_max_queue)
    ?(max_payload = Protocol.default_max_request_payload) ?(jobs = 1)
    ?cache_journal ~socket () =
  (* a client closing mid-write must surface as EPIPE, not kill us *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  remove_stale_socket socket;
  let journal, warm, journal_notes =
    match cache_journal with
    | None -> (None, [], [])
    | Some path ->
        let j, records, notes =
          Checkpoint.load ~kind:Protocol.cache_journal_kind
            ~version:Protocol.version path
        in
        let warm, dropped =
          List.fold_left
            (fun (warm, dropped) (key, data) ->
              match
                Pom_wire.Wire.of_string Protocol.result_codec data
              with
              | Ok result -> ((key, result) :: warm, dropped)
              | Error _ -> (warm, dropped + 1))
            ([], 0) records
        in
        let notes =
          if dropped = 0 then notes
          else
            notes
            @ [
                Printf.sprintf
                  "cache journal: dropped %d undecodable record(s) (POM308)"
                  dropped;
              ]
        in
        (Some j, List.rev warm, notes)
  in
  List.iter
    (fun n -> Printf.eprintf "pom_compile --serve: %s\n%!" n)
    journal_notes;
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX socket);
     Unix.listen listen_fd 64
   with e ->
     close_quietly listen_fd;
     Option.iter Checkpoint.close journal;
     raise e);
  let cache = Hashtbl.create 64 in
  (* warm-start: replay the journaled responses, first write wins (the
     cache's own insert discipline, applied to the disk replay too) *)
  let journaled = ref 0 in
  List.iter
    (fun (key, result) ->
      if not (Hashtbl.mem cache key) then begin
        Hashtbl.replace cache key result;
        incr journaled
      end)
    warm;
  let t =
    {
      socket_path = socket;
      listen_fd;
      max_queue;
      max_payload;
      jobs;
      stop = Atomic.make false;
      qm = Mutex.create ();
      qc = Condition.create ();
      queue = Queue.create ();
      queue_closed = false;
      sm = Mutex.create ();
      cache;
      journal;
      journaled = !journaled;
      requests = 0;
      succeeded = 0;
      failed = 0;
      rejected = 0;
      cache_hits = 0;
      cache_misses = 0;
      executor_respawns = 0;
      executor_live = Atomic.make true;
      started_at = Unix.gettimeofday ();
      live_conns = Atomic.make 0;
      accept_thread = None;
      exec_thread = None;
    }
  in
  t.accept_thread <- Some (Thread.create (acceptor t) ());
  t.exec_thread <- Some (Thread.create (executor t) ());
  t

let request_stop t = Atomic.set t.stop true

let join t =
  Option.iter Thread.join t.accept_thread;
  Option.iter Thread.join t.exec_thread;
  (* give in-flight connection threads a moment to flush their final
     response writes; they hold no server state, so a straggler past the
     grace window is abandoned, not a leak that blocks shutdown *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Atomic.get t.live_conns > 0 && Unix.gettimeofday () < deadline do
    Thread.yield ();
    Unix.sleepf 0.01
  done;
  (* fsync + close: a cleanly stopped daemon's cache survives a machine
     crash; an unclean death still keeps every flushed record *)
  Option.iter Checkpoint.close t.journal

let run ?max_queue ?max_payload ?jobs ?cache_journal ~socket () =
  match start ?max_queue ?max_payload ?jobs ?cache_journal ~socket () with
  | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "pom_compile --serve: cannot bind %s: %s\n" socket
        (Unix.error_message e);
      1
  | t ->
      let stop_on_signal _ = request_stop t in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_on_signal);
      Sys.set_signal Sys.sigint (Sys.Signal_handle stop_on_signal);
      join t;
      0
