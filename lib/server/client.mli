(** Client side of the compile-server protocol: connect to the Unix
    socket, send one framed request, read the one framed response.

    All entry points raise [Unix.Unix_error] when the server is not
    listening, {!Pom_wire.Wire.Corrupt} / {!Pom_wire.Wire.Version_mismatch}
    on a malformed or incompatible response, and [End_of_file] when the
    server closes without answering (e.g. killed mid-compile). *)

(** [compile ~socket request] returns the server's response — which may
    itself carry a typed [Error] outcome (POM301 deadline, POM310
    overload, ...); transport-level failures raise. *)
val compile : socket:string -> Protocol.request -> Protocol.response

(** As {!compile}, but transport-level failures (connection refused,
    socket vanished, server died mid-exchange, torn frame) are retried
    under the {!Pom_resilience.Retry} policy — capped exponential
    backoff, deterministic seeded jitter, bounded by the request's own
    [deadline_s] when set.  Typed error {e responses} are never
    retried: they answer the request.  When every attempt fails, the
    last transport exception is re-raised — callers then degrade (the
    CLI falls back to a local in-process compile). *)
val compile_retry :
  ?policy:Pom_resilience.Retry.policy ->
  ?on_retry:(attempt:int -> delay_s:float -> exn -> unit) ->
  socket:string ->
  Protocol.request ->
  Protocol.response

(** Liveness probe: answered from the connection thread, never queued
    behind a compile. *)
val ping : socket:string -> Protocol.health

(** Server counters (requests, cache hits, queue depth, uptime). *)
val stats : socket:string -> Protocol.server_stats

(** Ask the server to stop; returns its final counters. *)
val shutdown : socket:string -> Protocol.server_stats

(** Convenience constructor with the common defaults: [use_cache = true],
    [dnn = false], device [xc7z020], no deadline. *)
val request :
  ?id:int ->
  ?device:Pom_hls.Device.t ->
  ?framework:Pom.framework ->
  ?dnn:bool ->
  ?deadline_s:float ->
  ?use_cache:bool ->
  ?client:string ->
  Pom_dsl.Func.t ->
  Protocol.request
