let with_connection ~socket f =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket);
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      f ic oc)

let roundtrip ~socket msg =
  with_connection ~socket (fun ic oc ->
      Protocol.write_client_msg oc msg;
      Protocol.read_server_msg ic)

let unexpected () =
  raise
    (Pom_wire.Wire.Corrupt
       { what = "pom-response"; detail = "response kind does not match request" })

let compile ~socket req =
  match roundtrip ~socket (Protocol.Compile req) with
  | Protocol.Response r -> r
  | Protocol.Server_stats _ | Protocol.Health _ -> unexpected ()

let stats ~socket =
  match roundtrip ~socket Protocol.Stats with
  | Protocol.Server_stats s -> s
  | Protocol.Response _ | Protocol.Health _ -> unexpected ()

let shutdown ~socket =
  match roundtrip ~socket Protocol.Shutdown with
  | Protocol.Server_stats s -> s
  | Protocol.Response _ | Protocol.Health _ -> unexpected ()

let ping ~socket =
  match roundtrip ~socket Protocol.Ping with
  | Protocol.Health h -> h
  | Protocol.Response _ | Protocol.Server_stats _ -> unexpected ()

(* What a retry may safely chase: the daemon restarting (connection
   refused / socket gone / reset) or dying mid-exchange (EOF, torn
   frame).  A typed error response is NOT retriable — it answers the
   request — and a version mismatch will not improve on attempt two. *)
let transient = function
  | Unix.Unix_error
      ( ( Unix.ECONNREFUSED | Unix.ENOENT | Unix.ECONNRESET | Unix.EPIPE
        | Unix.ETIMEDOUT ),
        _,
        _ )
  | End_of_file
  | Pom_wire.Wire.Corrupt _
  | Sys_error _ ->
      true
  | _ -> false

let compile_retry ?(policy = Pom_resilience.Retry.default) ?on_retry ~socket
    req =
  Pom_resilience.Retry.run ~policy ?deadline_s:req.Protocol.deadline_s
    ?on_retry ~retry_on:transient (fun () ->
      compile ~socket req)

let request ?(id = 0) ?(device = Pom_hls.Device.xc7z020)
    ?(framework = `Pom_manual) ?(dnn = false) ?deadline_s ?(use_cache = true)
    ?(client = "pom") func =
  {
    Protocol.id;
    func;
    device;
    framework;
    dnn;
    deadline_s;
    use_cache;
    client;
  }
