module Wire = Pom_wire.Wire
module Frame = Pom_wire.Frame

let request_kind = "pom-request"
let response_kind = "pom-response"
let version = 1

(* A request is a DSL function plus a few scalars — kilobytes.  Cap well
   below the framing default so a hostile length field on the listening
   socket is rejected before any allocation. *)
let default_max_request_payload = 8 * 1024 * 1024

type request = {
  id : int;
  func : Pom_dsl.Func.t;
  device : Pom_hls.Device.t;
  framework : Pom.framework;
  dnn : bool;
  deadline_s : float option;
  use_cache : bool;
  client : string;
}

type result = {
  report : Pom_hls.Report.t;
  hls_c : string;
  speedup : float;
  dse_time_s : float;
  baseline_latency : int;
  legality_violations : int;
  tile_vectors : (string * int list) list;
  trace : string list;
}

type error = { code : string; message : string; context : string list }
type served = Computed | Cached

type memo_stats = {
  schedule_hits : int;
  schedule_misses : int;
  report_hits : int;
  report_misses : int;
  plan_hits : int;
  plan_misses : int;
}

type response = {
  r_id : int;
  served : served;
  memo : memo_stats;
  wall_s : float;
  outcome : (result, error) Stdlib.result;
}

type server_stats = {
  requests : int;
  succeeded : int;
  failed : int;
  rejected : int;
  cache_hits : int;
  cache_misses : int;
  cache_entries : int;
  queue_depth : int;
  uptime_s : float;
}

type health = {
  h_uptime_s : float;
  h_queue_depth : int;
  h_executor_live : bool;
  h_executor_respawns : int;
  h_cache_entries : int;
  h_journal_lag : int option;
}

type client_msg = Compile of request | Stats | Shutdown | Ping

type server_msg =
  | Response of response
  | Server_stats of server_stats
  | Health of health

(* -------- codecs -------- *)

let framework_codec : Pom.framework Wire.t =
  Wire.enum "framework"
    [
      ("baseline", `Baseline);
      ("pluto", `Pluto);
      ("polsca", `Polsca);
      ("scalehls", `Scalehls);
      ("pom-manual", `Pom_manual);
      ("pom-auto", `Pom_auto);
    ]

let request_codec : request Wire.t =
  Wire.record8 "request"
    (Wire.field "id" Wire.int (fun r -> r.id))
    (Wire.field "func" Pom_dsl.Wirec.func (fun r -> r.func))
    (Wire.field "device" Pom_hls.Wirec.device (fun r -> r.device))
    (Wire.field "framework" framework_codec (fun r -> r.framework))
    (Wire.field "dnn" Wire.bool (fun r -> r.dnn))
    (Wire.field "deadline_s" (Wire.option Wire.float) (fun r -> r.deadline_s))
    (Wire.field "use_cache" Wire.bool (fun r -> r.use_cache))
    (Wire.field "client" Wire.string (fun r -> r.client))
    (fun id func device framework dnn deadline_s use_cache client ->
      { id; func; device; framework; dnn; deadline_s; use_cache; client })

let result_codec : result Wire.t =
  Wire.record8 "result"
    (Wire.field "report" Pom_hls.Wirec.report (fun r -> r.report))
    (Wire.field "hls_c" Wire.string (fun r -> r.hls_c))
    (Wire.field "speedup" Wire.float (fun r -> r.speedup))
    (Wire.field "dse_time_s" Wire.float (fun r -> r.dse_time_s))
    (Wire.field "baseline_latency" Wire.int (fun r -> r.baseline_latency))
    (Wire.field "legality_violations" Wire.int (fun r -> r.legality_violations))
    (Wire.field "tile_vectors"
       (Wire.list (Wire.pair Wire.string (Wire.list Wire.int)))
       (fun r -> r.tile_vectors))
    (Wire.field "trace" (Wire.list Wire.string) (fun r -> r.trace))
    (fun report hls_c speedup dse_time_s baseline_latency legality_violations
         tile_vectors trace ->
      {
        report;
        hls_c;
        speedup;
        dse_time_s;
        baseline_latency;
        legality_violations;
        tile_vectors;
        trace;
      })

let error_codec : error Wire.t =
  Wire.record3 "error"
    (Wire.field "code" Wire.string (fun e -> e.code))
    (Wire.field "message" Wire.string (fun e -> e.message))
    (Wire.field "context" (Wire.list Wire.string) (fun e -> e.context))
    (fun code message context -> { code; message; context })

let served_codec : served Wire.t =
  Wire.enum "served" [ ("computed", Computed); ("cached", Cached) ]

let memo_stats_codec : memo_stats Wire.t =
  Wire.record6 "memo_stats"
    (Wire.field "schedule_hits" Wire.int (fun m -> m.schedule_hits))
    (Wire.field "schedule_misses" Wire.int (fun m -> m.schedule_misses))
    (Wire.field "report_hits" Wire.int (fun m -> m.report_hits))
    (Wire.field "report_misses" Wire.int (fun m -> m.report_misses))
    (Wire.field "plan_hits" Wire.int (fun m -> m.plan_hits))
    (Wire.field "plan_misses" Wire.int (fun m -> m.plan_misses))
    (fun schedule_hits schedule_misses report_hits report_misses plan_hits
         plan_misses ->
      {
        schedule_hits;
        schedule_misses;
        report_hits;
        report_misses;
        plan_hits;
        plan_misses;
      })

let outcome_codec : (result, error) Stdlib.result Wire.t =
  Wire.union "outcome"
    [
      Wire.case 0 "ok" result_codec
        (fun r -> Stdlib.Ok r)
        (function Stdlib.Ok r -> Some r | _ -> None);
      Wire.case 1 "error" error_codec
        (fun e -> Stdlib.Error e)
        (function Stdlib.Error e -> Some e | _ -> None);
    ]

let response_codec : response Wire.t =
  Wire.record5 "response"
    (Wire.field "id" Wire.int (fun r -> r.r_id))
    (Wire.field "served" served_codec (fun r -> r.served))
    (Wire.field "memo" memo_stats_codec (fun r -> r.memo))
    (Wire.field "wall_s" Wire.float (fun r -> r.wall_s))
    (Wire.field "outcome" outcome_codec (fun r -> r.outcome))
    (fun r_id served memo wall_s outcome ->
      { r_id; served; memo; wall_s; outcome })

let server_stats_codec : server_stats Wire.t =
  Wire.record9 "server_stats"
    (Wire.field "requests" Wire.int (fun s -> s.requests))
    (Wire.field "succeeded" Wire.int (fun s -> s.succeeded))
    (Wire.field "failed" Wire.int (fun s -> s.failed))
    (Wire.field "rejected" Wire.int (fun s -> s.rejected))
    (Wire.field "cache_hits" Wire.int (fun s -> s.cache_hits))
    (Wire.field "cache_misses" Wire.int (fun s -> s.cache_misses))
    (Wire.field "cache_entries" Wire.int (fun s -> s.cache_entries))
    (Wire.field "queue_depth" Wire.int (fun s -> s.queue_depth))
    (Wire.field "uptime_s" Wire.float (fun s -> s.uptime_s))
    (fun requests succeeded failed rejected cache_hits cache_misses
         cache_entries queue_depth uptime_s ->
      {
        requests;
        succeeded;
        failed;
        rejected;
        cache_hits;
        cache_misses;
        cache_entries;
        queue_depth;
        uptime_s;
      })

let health_codec : health Wire.t =
  Wire.record6 "health"
    (Wire.field "uptime_s" Wire.float (fun h -> h.h_uptime_s))
    (Wire.field "queue_depth" Wire.int (fun h -> h.h_queue_depth))
    (Wire.field "executor_live" Wire.bool (fun h -> h.h_executor_live))
    (Wire.field "executor_respawns" Wire.int (fun h -> h.h_executor_respawns))
    (Wire.field "cache_entries" Wire.int (fun h -> h.h_cache_entries))
    (Wire.field "journal_lag" (Wire.option Wire.int) (fun h -> h.h_journal_lag))
    (fun h_uptime_s h_queue_depth h_executor_live h_executor_respawns
         h_cache_entries h_journal_lag ->
      {
        h_uptime_s;
        h_queue_depth;
        h_executor_live;
        h_executor_respawns;
        h_cache_entries;
        h_journal_lag;
      })

(* -------- cache key -------- *)

let framework_tag = function
  | `Baseline -> "baseline"
  | `Pluto -> "pluto"
  | `Polsca -> "polsca"
  | `Scalehls -> "scalehls"
  | `Pom_manual -> "pom-manual"
  | `Pom_auto -> "pom-auto"

(* The memo's [func_key] deliberately excludes the function's attached
   directives (the memo keys pass them separately); a whole-compile cache
   must mix them back in, or two schedules of one function would collide. *)
let cache_key r =
  let module Memo = Pom_pipeline.Memo in
  Digest.string
    (String.concat "\x00"
       [
         Memo.func_key r.func;
         Memo.directives_key (Pom_dsl.Func.directives r.func);
         Memo.device_key r.device;
         framework_tag r.framework;
         string_of_bool r.dnn;
       ])

(* -------- record tags -------- *)

let tag_compile = 1
let tag_stats = 2
let tag_shutdown = 3
let tag_ping = 4
let tag_response = 1
let tag_server_stats = 2
let tag_health = 3

(* The durable response cache is a {!Pom_resilience.Checkpoint} journal
   with its own stream kind, so a DSE journal handed to [--cache-journal]
   (or vice versa) is restarted empty instead of misread. *)
let cache_journal_kind = "pom-cache-journal"

(* -------- channel IO -------- *)

let write_client_msg oc msg =
  Frame.output_header oc { Frame.kind = request_kind; version };
  (match msg with
  | Compile r ->
      Frame.output_record oc ~tag:tag_compile
        (Wire.to_string request_codec r)
  | Stats -> Frame.output_record oc ~tag:tag_stats (Wire.to_string Wire.unit ())
  | Shutdown ->
      Frame.output_record oc ~tag:tag_shutdown (Wire.to_string Wire.unit ())
  | Ping -> Frame.output_record oc ~tag:tag_ping (Wire.to_string Wire.unit ()));
  flush oc

let corrupt what detail = raise (Wire.Corrupt { what; detail })

let check_header ~what ~kind h =
  if h.Frame.kind <> kind then
    corrupt what (Printf.sprintf "stream kind %S is not %S" h.Frame.kind kind);
  if h.Frame.version <> version then
    raise
      (Wire.Version_mismatch { what; expected = version; got = h.Frame.version })

let read_client_msg ?(max_payload = default_max_request_payload) ic =
  let what = "pom-request" in
  let h = Frame.input_header ~what ic in
  check_header ~what ~kind:request_kind h;
  match Frame.input_record ~max_payload ~what ic with
  | None -> raise End_of_file
  | Some (tag, payload) ->
      if tag = tag_compile then
        Compile (Wire.of_string_exn request_codec payload)
      else if tag = tag_stats then Stats
      else if tag = tag_shutdown then Shutdown
      else if tag = tag_ping then Ping
      else corrupt what (Printf.sprintf "unknown request tag %d" tag)

let write_server_msg oc msg =
  Frame.output_header oc { Frame.kind = response_kind; version };
  (match msg with
  | Response r ->
      Frame.output_record oc ~tag:tag_response
        (Wire.to_string response_codec r)
  | Server_stats s ->
      Frame.output_record oc ~tag:tag_server_stats
        (Wire.to_string server_stats_codec s)
  | Health h ->
      Frame.output_record oc ~tag:tag_health (Wire.to_string health_codec h));
  flush oc

let read_server_msg ic =
  let what = "pom-response" in
  let h = Frame.input_header ~what ic in
  check_header ~what ~kind:response_kind h;
  match Frame.input_record ~what ic with
  | None -> raise End_of_file
  | Some (tag, payload) ->
      if tag = tag_response then
        Response (Wire.of_string_exn response_codec payload)
      else if tag = tag_server_stats then
        Server_stats (Wire.of_string_exn server_stats_codec payload)
      else if tag = tag_health then
        Health (Wire.of_string_exn health_codec payload)
      else corrupt what (Printf.sprintf "unknown response tag %d" tag)

(* Shared by the server's executor and the CLI's local-fallback path, so
   a design compiled locally after retries exhaust is, field for field,
   the result the server would have sent. *)
let result_of_compiled (c : Pom.compiled) =
  {
    report = c.Pom.report;
    hls_c = c.Pom.hls_c;
    speedup = Pom.speedup c;
    dse_time_s = c.Pom.dse_time_s;
    baseline_latency = c.Pom.baseline_latency;
    legality_violations = c.Pom.legality_violations;
    tile_vectors = c.Pom.tile_vectors;
    trace = c.Pom.trace;
  }

let error_of_exn e =
  let t = Pom_resilience.Error.of_exn ~code:"POM300" e in
  {
    code = t.Pom_resilience.Error.code;
    message = t.Pom_resilience.Error.message;
    context = t.Pom_resilience.Error.context;
  }
