(** The persistent compile server (POM-as-a-service).

    One process owns the warm state a cold [pom_compile] rebuilds from
    scratch every run: the {!Pom_pipeline.Memo} schedule/report/plan
    tables and a cross-request response cache keyed by
    {!Protocol.cache_key}.  Clients connect over a Unix-domain socket,
    send one framed {!Protocol.request}, and receive one framed
    {!Protocol.response}.

    Concurrency model: connection handling is threaded (decode, queue,
    watch for client disconnect, write the response), but compiles are
    serialized on a single executor thread.  This is deliberate — the
    cooperative {!Pom_resilience.Budget} is an ambient process-wide
    token, so two concurrent compiles with different deadlines would
    clash; one executor gives every request its own budget (the
    request's [deadline_s] plus a cancel poll wired to the client's
    connection) while the {!Pom.compile] call itself still fans out
    across worker domains via [jobs].

    Admission control: a bounded FIFO queue (default {!default_max_queue}).
    A request arriving with the queue full is answered immediately with a
    typed POM310 error response, never silently dropped.

    Degradation contract: a malformed or oversized request record is
    answered with POM308, a framing/schema version gap with POM309, a
    blown per-request budget with POM301 — the connection that carried
    the bad input closes and the server keeps serving.  A client that
    disconnects mid-compile trips the request's budget at the next
    cooperative checkpoint and costs nothing further.

    Self-healing: the executor thread is supervised — an exception that
    escapes the typed-error mapping (an executor bug, or the
    [server:executor] fault site in tests) is logged, charged to the
    in-flight request alone as a typed POM312 response, and the
    executor respawns for the next job.  With [cache_journal], every
    response-cache insert is also appended to an on-disk
    {!Pom_resilience.Checkpoint} journal (stream kind
    {!Protocol.cache_journal_kind}, torn tails truncated on reopen), so
    a restarted daemon warm-starts and serves previously compiled
    requests as bit-identical cache hits.  The {!Protocol.Ping} probe
    answers with {!Protocol.health} — uptime, queue depth, executor
    liveness and respawn count, and the journal's durability lag —
    without queueing behind a compile. *)

type t

val default_max_queue : int

(** [start ~socket ()] binds the Unix-domain socket, spawns the accept
    loop and the executor thread, and returns a handle.  [max_queue]
    bounds the admission queue; [max_payload] caps a request record
    ({!Protocol.default_max_request_payload}); [jobs] is the
    worker-domain budget each compile fans out to (default [1]:
    deterministic and friendly to test hosts); [cache_journal] names
    the durable response-cache journal file (created if absent,
    replayed if present — see the module doc).

    Stale-socket recovery: an existing socket file is connect-probed
    first.  Only a socket nobody answers on is unlinked; a live daemon
    raises [Unix.Unix_error (EADDRINUSE, _, _)], and a path that is
    not a socket is left untouched (bind then fails on it).

    No signal handlers are installed (SIGPIPE excepted, which is
    ignored process-wide — a client closing mid-write must never kill
    the server); {!run} layers signal-driven shutdown on top for the
    daemon entry point. *)
val start :
  ?max_queue:int ->
  ?max_payload:int ->
  ?jobs:int ->
  ?cache_journal:string ->
  socket:string ->
  unit ->
  t

(** Request a stop (idempotent, non-blocking): the accept loop exits,
    queued requests are drained and answered, the executor joins. *)
val request_stop : t -> unit

(** Wait for the server to finish shutting down and release the socket.
    Implies nothing about {e why} it stopped (signal, {!request_stop},
    or a client's shutdown request). *)
val join : t -> unit

val stats : t -> Protocol.server_stats

(** The liveness snapshot a {!Protocol.Ping} is answered with. *)
val health : t -> Protocol.health

(** [run ~socket ()] is the daemon entry point: {!start}, install
    SIGTERM/SIGINT handlers that trigger a clean stop, block until
    shutdown, and return the process exit code (0 on a clean stop, 1
    when the socket cannot be bound or is owned by a live daemon). *)
val run :
  ?max_queue:int ->
  ?max_payload:int ->
  ?jobs:int ->
  ?cache_journal:string ->
  socket:string ->
  unit ->
  int
