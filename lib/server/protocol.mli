(** The compile-server wire protocol.

    A connection carries exactly one exchange over the {!Pom_wire.Frame}
    stream format: the client writes a [pom-request] header and one
    request record, the server writes a [pom-response] header and one
    response record, and the connection closes.  Both sides check the
    header's kind and schema version; a mismatch is a typed
    POM308/POM309 response (server side) or exception (client side),
    never a crash.

    Record tags on the request stream:
    - [1] — compile: a full {!request} (function with its attached
      directives, device, framework, deadline, cache preference);
    - [2] — stats: empty payload, answered with {!server_stats};
    - [3] — shutdown: empty payload, answered with {!server_stats}
      after the stop flag is set;
    - [4] — ping: empty payload, answered with {!health} (response tag
      [3]) — the liveness probe never touches the compile queue.

    Unknown request tags are answered with a POM308 error response
    (forward compatibility belongs to the framing layer, but a server
    must answer {e something} to a one-shot connection). *)

(** Frame kinds and the protocol schema version (bump on incompatible
    payload changes). *)

val request_kind : string
val response_kind : string
val version : int

(** The default cap on a request record's payload: requests are small
    (a DSL function, not an artifact), so the server rejects anything
    larger before allocating. *)
val default_max_request_payload : int

type request = {
  id : int;  (** echoed back in the response *)
  func : Pom_dsl.Func.t;  (** carries its attached directives *)
  device : Pom_hls.Device.t;
  framework : Pom.framework;
  dnn : bool;
  deadline_s : float option;  (** per-request budget on the server *)
  use_cache : bool;
      (** [false] bypasses the cross-request response cache (the memo
          stays warm): measurement and bit-identity checks use this *)
  client : string;  (** free-form label for the server log *)
}

(** The compile artifact subset that crosses the wire. *)
type result = {
  report : Pom_hls.Report.t;
  hls_c : string;
  speedup : float;
  dse_time_s : float;
  baseline_latency : int;
  legality_violations : int;
  tile_vectors : (string * int list) list;
  trace : string list;
}

type error = { code : string; message : string; context : string list }

(** How the response was produced: computed on this request (fresh or
    via warm memo tables), or served verbatim from the cross-request
    response cache. *)
type served = Computed | Cached

(** Memo-counter deltas attributable to this request (all zero for a
    [Cached] response). *)
type memo_stats = {
  schedule_hits : int;
  schedule_misses : int;
  report_hits : int;
  report_misses : int;
  plan_hits : int;
  plan_misses : int;
}

type response = {
  r_id : int;
  served : served;
  memo : memo_stats;
  wall_s : float;  (** server-side wall clock for this request *)
  outcome : (result, error) Stdlib.result;
}

type server_stats = {
  requests : int;
  succeeded : int;
  failed : int;
  rejected : int;  (** POM310 admission rejections *)
  cache_hits : int;
  cache_misses : int;
  cache_entries : int;
  queue_depth : int;
  uptime_s : float;
}

(** The answer to a ping: enough to decide "is this daemon healthy"
    without queueing behind a compile.  [h_journal_lag] is [Some n]
    when response-cache journaling is on, with [n] the cached responses
    not yet durable on disk (0 = fully journaled); [None] means
    journaling is disabled. *)
type health = {
  h_uptime_s : float;
  h_queue_depth : int;
  h_executor_live : bool;
  h_executor_respawns : int;
  h_cache_entries : int;
  h_journal_lag : int option;
}

type client_msg = Compile of request | Stats | Shutdown | Ping

type server_msg =
  | Response of response
  | Server_stats of server_stats
  | Health of health

(** Codecs (exported for fuzzing and round-trip tests). *)

val request_codec : request Pom_wire.Wire.t
val response_codec : response Pom_wire.Wire.t
val server_stats_codec : server_stats Pom_wire.Wire.t
val result_codec : result Pom_wire.Wire.t
val health_codec : health Pom_wire.Wire.t

(** Stream kind of the server's durable response-cache journal (a
    {!Pom_resilience.Checkpoint} with [key = cache_key], [data] a
    wire-encoded {!result}); distinct from the DSE journal's kind so
    the two can never be confused. *)
val cache_journal_kind : string

(** Project the compile artifact onto the wire subset — used by the
    server's executor {e and} the client's local-fallback path, so both
    produce field-identical results. *)
val result_of_compiled : Pom.compiled -> result

(** The cross-request cache key of a compile request: a digest over the
    function fingerprint, its attached directives, the device, the
    framework, and the DNN flag — exactly the inputs that determine the
    compiled artifact.  Deliberately excludes [id], [deadline_s],
    [use_cache], and [client]. *)
val cache_key : request -> string

(** {1 Channel IO}

    Writers flush.  Readers raise {!Pom_wire.Wire.Corrupt} on torn or
    corrupt input, {!Pom_wire.Wire.Version_mismatch} on a framing or
    schema version gap, and [End_of_file] on a cleanly closed empty
    stream. *)

val write_client_msg : out_channel -> client_msg -> unit
val read_client_msg : ?max_payload:int -> in_channel -> client_msg
val write_server_msg : out_channel -> server_msg -> unit
val read_server_msg : in_channel -> server_msg

(** Build the typed POM3xx payload for an exception the compile raised
    ([Budget_exceeded] maps to POM301, wire corruption to POM308, ...). *)
val error_of_exn : exn -> error
