let magic = "POMW"
let format_version = 1

type header = { kind : string; version : int }

(* Cap a record's payload well below anything the pipeline produces so a
   corrupt length cannot make a reader allocate gigabytes. *)
let max_payload = 256 * 1024 * 1024

let add_record buf ~tag payload =
  if tag < 0 then invalid_arg "Frame.add_record: negative tag";
  if String.length payload > max_payload then
    invalid_arg "Frame.add_record: payload too large";
  let body = Buffer.create (String.length payload + 10) in
  Wire.write_uvarint body tag;
  Wire.write_uvarint body (String.length payload);
  Buffer.add_string body payload;
  let body = Buffer.contents body in
  Buffer.add_string buf body;
  let crc = Crc32.string body in
  Buffer.add_char buf (Char.chr (crc land 0xff));
  Buffer.add_char buf (Char.chr ((crc lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((crc lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((crc lsr 24) land 0xff))

let header_to_string h =
  let b = Buffer.create 32 in
  Buffer.add_string b magic;
  Buffer.add_char b (Char.chr format_version);
  Wire.encode Wire.string b h.kind;
  Wire.write_uvarint b h.version;
  Buffer.contents b

let output_header oc h = output_string oc (header_to_string h)

let output_record oc ~tag payload =
  let b = Buffer.create (String.length payload + 16) in
  add_record b ~tag payload;
  output_string oc (Buffer.contents b)

let corrupt what fmt =
  Printf.ksprintf (fun detail -> raise (Wire.Corrupt { what; detail })) fmt

let input_header ~what ic =
  let read_exactly n =
    try really_input_string ic n
    with End_of_file -> corrupt what "truncated header"
  in
  let m = read_exactly (String.length magic) in
  if m <> magic then corrupt what "bad magic %S" m;
  let fv = Char.code (read_exactly 1).[0] in
  if fv <> format_version then
    raise
      (Wire.Version_mismatch { what; expected = format_version; got = fv });
  (* kind: varint length + bytes; schema version: varint *)
  let read_uvarint () =
    let rec go acc shift =
      if shift > 63 then corrupt what "header varint too long";
      let b = try input_byte ic with End_of_file -> corrupt what "truncated header" in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go acc (shift + 7)
    in
    go 0 0
  in
  let klen = read_uvarint () in
  if klen < 0 || klen > 4096 then corrupt what "unreasonable kind length %d" klen;
  let kind = read_exactly klen in
  let version = read_uvarint () in
  { kind; version }

(* Record reads accumulate the exact bytes of tag+len as they stream in,
   so the CRC covers what was actually on the wire (no re-encoding). *)
let input_record ?(max_payload = max_payload) ~what ic =
  match input_byte ic with
  | exception End_of_file -> None
  | b0 ->
      let torn () = corrupt what "torn record" in
      let raw = Buffer.create 16 in
      let next_byte () =
        match input_byte ic with
        | exception End_of_file -> torn ()
        | b ->
            Buffer.add_char raw (Char.chr b);
            b
      in
      Buffer.add_char raw (Char.chr b0);
      let read_uvarint first =
        let rec go acc shift first =
          if shift > 63 then corrupt what "record varint too long";
          let b = match first with Some b -> b | None -> next_byte () in
          let acc = acc lor ((b land 0x7f) lsl shift) in
          if b land 0x80 = 0 then acc else go acc (shift + 7) None
        in
        go 0 0 first
      in
      let tag = read_uvarint (Some b0) in
      let len = read_uvarint None in
      if len < 0 || len > max_payload then
        corrupt what "unreasonable record length %d" len;
      let payload =
        try really_input_string ic len with End_of_file -> torn ()
      in
      let stored_crc =
        let b i =
          match input_byte ic with
          | exception End_of_file -> torn ()
          | v -> v lsl (8 * i)
        in
        let c0 = b 0 in
        let c1 = b 1 in
        let c2 = b 2 in
        let c3 = b 3 in
        c0 lor c1 lor c2 lor c3
      in
      let crc =
        Crc32.update (Crc32.string (Buffer.contents raw)) payload 0
          (String.length payload)
      in
      if crc <> stored_crc then
        corrupt what "CRC mismatch on record tag %d (stored %08x, computed %08x)"
          tag stored_crc crc;
      Some (tag, payload)
