exception Corrupt of { what : string; detail : string }

exception
  Version_mismatch of { what : string; expected : int; got : int }

let () =
  Printexc.register_printer (function
    | Corrupt { what; detail } ->
        Some (Printf.sprintf "Wire.Corrupt(%s: %s)" what detail)
    | Version_mismatch { what; expected; got } ->
        Some
          (Printf.sprintf "Wire.Version_mismatch(%s: expected %d, got %d)"
             what expected got)
    | _ -> None)

let corrupt what fmt =
  Printf.ksprintf (fun detail -> raise (Corrupt { what; detail })) fmt

(* A bounded cursor over an immutable byte buffer.  [limit] caps the
   readable region so nested length prefixes can never reach past the
   bytes that actually arrived. *)
type reader = { data : string; mutable pos : int; limit : int }

let reader ?(pos = 0) ?limit data =
  let limit = match limit with Some l -> l | None -> String.length data in
  if pos < 0 || limit > String.length data || pos > limit then
    invalid_arg "Wire.reader";
  { data; pos; limit }

let reader_pos r = r.pos

let read_byte ~what r =
  if r.pos >= r.limit then corrupt what "truncated (wanted 1 byte at %d)" r.pos
  else begin
    let b = Char.code r.data.[r.pos] in
    r.pos <- r.pos + 1;
    b
  end

let read_bytes ~what r n =
  if n < 0 then corrupt what "negative length %d" n;
  if r.limit - r.pos < n then
    corrupt what "truncated (wanted %d bytes at %d, have %d)" n r.pos
      (r.limit - r.pos);
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

(* LEB128 on the raw bit pattern: [lsr] terminates for negative inputs
   too, so the full native-int range round-trips in at most 9 groups. *)
let rec write_uvarint b n =
  if n >= 0 && n < 0x80 then Buffer.add_char b (Char.chr n)
  else begin
    Buffer.add_char b (Char.chr (0x80 lor (n land 0x7f)));
    write_uvarint b (n lsr 7)
  end

let read_uvarint ~what r =
  let rec go acc shift =
    if shift > 63 then corrupt what "varint longer than 9 bytes";
    let b = read_byte ~what r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go acc (shift + 7)
  in
  go 0 0

let zigzag n = (n lsl 1) lxor (n asr (Sys.int_size - 1))
let unzigzag u = (u lsr 1) lxor (- (u land 1))

type 'a t = {
  cid : string;
  enc : Buffer.t -> 'a -> unit;
  dec : reader -> 'a;
  cpp : Format.formatter -> 'a -> unit;
}

let id c = c.cid
let pp c = c.cpp
let with_pp cpp c = { c with cpp }
let encode c = c.enc

let to_string c v =
  let b = Buffer.create 64 in
  c.enc b v;
  Buffer.contents b

let of_string_exn c s =
  let r = reader s in
  let v =
    try c.dec r with
    | Corrupt _ as e -> raise e
    | Invalid_argument m | Failure m ->
        corrupt c.cid "rejected while rebuilding: %s" m
    | Stack_overflow -> corrupt c.cid "nesting too deep"
  in
  if r.pos <> r.limit then
    corrupt c.cid "%d trailing bytes after value" (r.limit - r.pos);
  v

let of_string c s =
  match of_string_exn c s with v -> Ok v | exception e -> Error e

(* --- primitives --- *)

let unit =
  {
    cid = "unit";
    enc = (fun _ () -> ());
    dec = (fun _ -> ());
    cpp = (fun ppf () -> Format.pp_print_string ppf "()");
  }

let bool =
  {
    cid = "bool";
    enc = (fun b v -> Buffer.add_char b (if v then '\001' else '\000'));
    dec =
      (fun r ->
        match read_byte ~what:"bool" r with
        | 0 -> false
        | 1 -> true
        | n -> corrupt "bool" "byte %d is not a bool" n);
    cpp = Format.pp_print_bool;
  }

let int =
  {
    cid = "int";
    enc = (fun b v -> write_uvarint b (zigzag v));
    dec = (fun r -> unzigzag (read_uvarint ~what:"int" r));
    cpp = Format.pp_print_int;
  }

let float =
  {
    cid = "float";
    enc =
      (fun b v -> Buffer.add_int64_le b (Int64.bits_of_float v));
    dec =
      (fun r ->
        let s = read_bytes ~what:"float" r 8 in
        Int64.float_of_bits (String.get_int64_le s 0));
    cpp = (fun ppf v -> Format.fprintf ppf "%h" v);
  }

let string =
  {
    cid = "string";
    enc =
      (fun b v ->
        write_uvarint b (String.length v);
        Buffer.add_string b v);
    dec =
      (fun r ->
        let n = read_uvarint ~what:"string" r in
        read_bytes ~what:"string" r n);
    cpp = (fun ppf v -> Format.fprintf ppf "%S" v);
  }

(* --- combinators --- *)

let option c =
  {
    cid = c.cid ^ " option";
    enc =
      (fun b -> function
        | None -> Buffer.add_char b '\000'
        | Some v ->
            Buffer.add_char b '\001';
            c.enc b v);
    dec =
      (fun r ->
        match read_byte ~what:(c.cid ^ " option") r with
        | 0 -> None
        | 1 -> Some (c.dec r)
        | n -> corrupt (c.cid ^ " option") "byte %d is not an option tag" n);
    cpp =
      (fun ppf -> function
        | None -> Format.pp_print_string ppf "None"
        | Some v -> Format.fprintf ppf "Some %a" c.cpp v);
  }

let list c =
  let what = c.cid ^ " list" in
  {
    cid = what;
    enc =
      (fun b vs ->
        write_uvarint b (List.length vs);
        List.iter (c.enc b) vs);
    dec =
      (fun r ->
        let n = read_uvarint ~what r in
        (* every element takes >= 1 byte, so a fuzzed length beyond the
           remaining bytes is rejected before any allocation *)
        if n < 0 || n > r.limit - r.pos then
          corrupt what "length %d exceeds %d remaining bytes" n
            (r.limit - r.pos);
        List.init n (fun _ -> c.dec r));
    cpp =
      (fun ppf vs ->
        Format.fprintf ppf "[@[<hv>%a@]]"
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
             c.cpp)
          vs);
  }

let pair ca cb =
  {
    cid = Printf.sprintf "(%s * %s)" ca.cid cb.cid;
    enc =
      (fun b (x, y) ->
        ca.enc b x;
        cb.enc b y);
    dec =
      (fun r ->
        let x = ca.dec r in
        let y = cb.dec r in
        (x, y));
    cpp =
      (fun ppf (x, y) -> Format.fprintf ppf "(%a, %a)" ca.cpp x cb.cpp y);
  }

let triple ca cb cc =
  {
    cid = Printf.sprintf "(%s * %s * %s)" ca.cid cb.cid cc.cid;
    enc =
      (fun b (x, y, z) ->
        ca.enc b x;
        cb.enc b y;
        cc.enc b z);
    dec =
      (fun r ->
        let x = ca.dec r in
        let y = cb.dec r in
        let z = cc.dec r in
        (x, y, z));
    cpp =
      (fun ppf (x, y, z) ->
        Format.fprintf ppf "(%a, %a, %a)" ca.cpp x cb.cpp y cc.cpp z);
  }

let conv cid proj inj c =
  {
    cid;
    enc = (fun b v -> c.enc b (proj v));
    dec = (fun r -> inj (c.dec r));
    cpp = (fun ppf v -> c.cpp ppf (proj v));
  }

(* --- records --- *)

type ('r, 'a) field = {
  fname : string;
  fcodec : 'a t;
  fget : 'r -> 'a;
}

let field fname fcodec fget = { fname; fcodec; fget }

let pp_fields cid fields ppf v =
  Format.fprintf ppf "%s {@[<hv>" cid;
  List.iteri
    (fun i f ->
      if i > 0 then Format.fprintf ppf ";@ ";
      f ppf v)
    fields;
  Format.fprintf ppf "@]}"

let pp_field f ppf v = Format.fprintf ppf "%s = %a" f.fname f.fcodec.cpp (f.fget v)

let record2 cid f1 f2 make =
  {
    cid;
    enc =
      (fun b v ->
        f1.fcodec.enc b (f1.fget v);
        f2.fcodec.enc b (f2.fget v));
    dec =
      (fun r ->
        let a = f1.fcodec.dec r in
        let b = f2.fcodec.dec r in
        make a b);
    cpp = pp_fields cid [ pp_field f1; pp_field f2 ];
  }

let record3 cid f1 f2 f3 make =
  {
    cid;
    enc =
      (fun b v ->
        f1.fcodec.enc b (f1.fget v);
        f2.fcodec.enc b (f2.fget v);
        f3.fcodec.enc b (f3.fget v));
    dec =
      (fun r ->
        let a = f1.fcodec.dec r in
        let b = f2.fcodec.dec r in
        let c = f3.fcodec.dec r in
        make a b c);
    cpp = pp_fields cid [ pp_field f1; pp_field f2; pp_field f3 ];
  }

let record4 cid f1 f2 f3 f4 make =
  {
    cid;
    enc =
      (fun b v ->
        f1.fcodec.enc b (f1.fget v);
        f2.fcodec.enc b (f2.fget v);
        f3.fcodec.enc b (f3.fget v);
        f4.fcodec.enc b (f4.fget v));
    dec =
      (fun r ->
        let a = f1.fcodec.dec r in
        let b = f2.fcodec.dec r in
        let c = f3.fcodec.dec r in
        let d = f4.fcodec.dec r in
        make a b c d);
    cpp = pp_fields cid [ pp_field f1; pp_field f2; pp_field f3; pp_field f4 ];
  }

let record5 cid f1 f2 f3 f4 f5 make =
  {
    cid;
    enc =
      (fun b v ->
        f1.fcodec.enc b (f1.fget v);
        f2.fcodec.enc b (f2.fget v);
        f3.fcodec.enc b (f3.fget v);
        f4.fcodec.enc b (f4.fget v);
        f5.fcodec.enc b (f5.fget v));
    dec =
      (fun r ->
        let a = f1.fcodec.dec r in
        let b = f2.fcodec.dec r in
        let c = f3.fcodec.dec r in
        let d = f4.fcodec.dec r in
        let e = f5.fcodec.dec r in
        make a b c d e);
    cpp =
      pp_fields cid
        [ pp_field f1; pp_field f2; pp_field f3; pp_field f4; pp_field f5 ];
  }

let record6 cid f1 f2 f3 f4 f5 f6 make =
  {
    cid;
    enc =
      (fun b v ->
        f1.fcodec.enc b (f1.fget v);
        f2.fcodec.enc b (f2.fget v);
        f3.fcodec.enc b (f3.fget v);
        f4.fcodec.enc b (f4.fget v);
        f5.fcodec.enc b (f5.fget v);
        f6.fcodec.enc b (f6.fget v));
    dec =
      (fun r ->
        let a = f1.fcodec.dec r in
        let b = f2.fcodec.dec r in
        let c = f3.fcodec.dec r in
        let d = f4.fcodec.dec r in
        let e = f5.fcodec.dec r in
        let f = f6.fcodec.dec r in
        make a b c d e f);
    cpp =
      pp_fields cid
        [
          pp_field f1; pp_field f2; pp_field f3; pp_field f4; pp_field f5;
          pp_field f6;
        ];
  }

let record8 cid f1 f2 f3 f4 f5 f6 f7 f8 make =
  {
    cid;
    enc =
      (fun b v ->
        f1.fcodec.enc b (f1.fget v);
        f2.fcodec.enc b (f2.fget v);
        f3.fcodec.enc b (f3.fget v);
        f4.fcodec.enc b (f4.fget v);
        f5.fcodec.enc b (f5.fget v);
        f6.fcodec.enc b (f6.fget v);
        f7.fcodec.enc b (f7.fget v);
        f8.fcodec.enc b (f8.fget v));
    dec =
      (fun r ->
        let a = f1.fcodec.dec r in
        let b = f2.fcodec.dec r in
        let c = f3.fcodec.dec r in
        let d = f4.fcodec.dec r in
        let e = f5.fcodec.dec r in
        let f = f6.fcodec.dec r in
        let g = f7.fcodec.dec r in
        let h = f8.fcodec.dec r in
        make a b c d e f g h);
    cpp =
      pp_fields cid
        [
          pp_field f1; pp_field f2; pp_field f3; pp_field f4; pp_field f5;
          pp_field f6; pp_field f7; pp_field f8;
        ];
  }

let record9 cid f1 f2 f3 f4 f5 f6 f7 f8 f9 make =
  {
    cid;
    enc =
      (fun b v ->
        f1.fcodec.enc b (f1.fget v);
        f2.fcodec.enc b (f2.fget v);
        f3.fcodec.enc b (f3.fget v);
        f4.fcodec.enc b (f4.fget v);
        f5.fcodec.enc b (f5.fget v);
        f6.fcodec.enc b (f6.fget v);
        f7.fcodec.enc b (f7.fget v);
        f8.fcodec.enc b (f8.fget v);
        f9.fcodec.enc b (f9.fget v));
    dec =
      (fun r ->
        let a = f1.fcodec.dec r in
        let b = f2.fcodec.dec r in
        let c = f3.fcodec.dec r in
        let d = f4.fcodec.dec r in
        let e = f5.fcodec.dec r in
        let f = f6.fcodec.dec r in
        let g = f7.fcodec.dec r in
        let h = f8.fcodec.dec r in
        let i = f9.fcodec.dec r in
        make a b c d e f g h i);
    cpp =
      pp_fields cid
        [
          pp_field f1; pp_field f2; pp_field f3; pp_field f4; pp_field f5;
          pp_field f6; pp_field f7; pp_field f8; pp_field f9;
        ];
  }

(* --- variants --- *)

type 'a case =
  | Case : {
      tag : int;
      cname : string;
      codec : 'b t;
      inj : 'b -> 'a;
      proj : 'a -> 'b option;
    }
      -> 'a case

let case tag cname codec inj proj =
  if tag < 0 then invalid_arg "Wire.case: negative tag";
  Case { tag; cname; codec; inj; proj }

let union cid cases =
  let tags = List.map (fun (Case c) -> c.tag) cases in
  if List.length (List.sort_uniq compare tags) <> List.length tags then
    invalid_arg (Printf.sprintf "Wire.union %s: duplicate tags" cid);
  let find_value v =
    let rec go = function
      | [] ->
          invalid_arg
            (Printf.sprintf "Wire.union %s: value matches no case" cid)
      | Case c :: rest -> (
          match c.proj v with
          | Some payload -> (c.tag, fun b -> c.codec.enc b payload)
          | None -> go rest)
    in
    go cases
  in
  {
    cid;
    enc =
      (fun b v ->
        let tag, put = find_value v in
        write_uvarint b tag;
        put b);
    dec =
      (fun r ->
        let tag = read_uvarint ~what:cid r in
        match
          List.find_opt (fun (Case c) -> c.tag = tag) cases
        with
        | Some (Case c) -> c.inj (c.codec.dec r)
        | None -> corrupt cid "unknown constructor tag %d" tag);
    cpp =
      (fun ppf v ->
        let rec go = function
          | [] -> Format.pp_print_string ppf "<?>"
          | Case c :: rest -> (
              match c.proj v with
              | Some payload ->
                  if c.codec.cid = "unit" then
                    Format.pp_print_string ppf c.cname
                  else
                    Format.fprintf ppf "%s %a" c.cname c.codec.cpp payload
              | None -> go rest)
        in
        go cases);
  }

let enum cid variants =
  union cid
    (List.mapi
       (fun i (vname, v) ->
         case i vname unit (fun () -> v) (fun x -> if x = v then Some () else None))
       variants)

let fix cid f =
  let rec self =
    {
      cid;
      enc = (fun b v -> (Lazy.force body).enc b v);
      dec = (fun r -> (Lazy.force body).dec r);
      cpp = (fun ppf v -> (Lazy.force body).cpp ppf v);
    }
  and body = lazy (f self) in
  self
