(** Stream framing for wire-encoded records.

    Every persistent file and worker pipe carries one framed stream:

    {v
    +------+----+-------------------+----------------+
    | POMW | fv | kind (string)     | schema version |   header
    +------+----+-------------------+----------------+
    | tag | len | payload (len bytes)       | CRC-32 |   record, repeated
    +-----+-----+---------------------------+--------+
    v}

    [fv] is the single-byte framing format version ({!format_version});
    the header's [kind] names the stream (["pom-dse-journal"],
    ["pom-dse-worker"], ...) and its schema [version] covers the record
    payload codecs.  Each record is a varint [tag], a varint byte
    [len], the payload, and a CRC-32 over the encoded tag+len+payload.

    Readers skip records with tags they do not understand (forward
    compatibility: newer writers may add record types) and detect
    truncation and bit flips via the CRC — a torn tail reads as a clean
    end with {!input_record} raising {!Wire.Corrupt}, which journal
    loaders turn into truncate-and-resume, never a crash. *)

val magic : string

val format_version : int

type header = { kind : string; version : int }

(** {1 Channel IO} *)

val output_header : out_channel -> header -> unit

(** Raises {!Wire.Corrupt} on bad magic or a torn header,
    {!Wire.Version_mismatch} when the framing format byte differs. The
    caller checks [kind]/[version] against its expectations. *)
val input_header : what:string -> in_channel -> header

val output_record : out_channel -> tag:int -> string -> unit

(** [None] at a clean end of stream (EOF at a record boundary); raises
    {!Wire.Corrupt} on a torn record or CRC mismatch.  [max_payload]
    (default {!max_payload}) tightens the length sanity cap — servers
    reading requests from untrusted peers pass a small bound so a
    hostile length field is rejected before any allocation. *)
val input_record :
  ?max_payload:int -> what:string -> in_channel -> (int * string) option

(** The default record payload cap (256 MiB). *)
val max_payload : int

(** {1 Buffer IO (for fixtures and fuzzing)} *)

val add_record : Buffer.t -> tag:int -> string -> unit
val header_to_string : header -> string
