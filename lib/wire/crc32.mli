(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected, table-driven).

    Used by {!Frame} to checksum every framed record so a torn or
    bit-flipped journal entry is detected instead of decoded into
    garbage.  Values fit in a non-negative OCaml [int] (32 bits). *)

(** CRC of a whole string. *)
val string : string -> int

(** [update crc s pos len] extends [crc] with [len] bytes of [s] starting
    at [pos].  [string s = update 0 s 0 (String.length s)]. *)
val update : int -> string -> int -> int -> int
