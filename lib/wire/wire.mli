(** Self-describing binary codecs built from combinators.

    A ['a t] couples an encoder, a strict decoder, and a pretty-printer
    for one OCaml type, derived from a single declarative description
    (primitives composed with [list]/[option]/[record]/[union]/...).
    Every persistent artifact and every byte of worker IPC in the
    pipeline goes through these codecs instead of [Marshal], so on-disk
    data survives compiler upgrades and corrupt input surfaces as a
    typed error, never a segfault or an unchecked cast.

    Encoding conventions:
    - ints are LEB128 varints, zigzag-mapped so small negative values
      stay short;
    - floats are their IEEE-754 bits, 8 bytes little-endian (exact
      round-trip, no printf detour);
    - strings, lists and arrays are length-prefixed;
    - union constructors are tagged with small ints that are part of
      the format: reorder cases and you break the format, append cases
      and old data still decodes.

    Decoding is strict: [of_string] consumes the whole buffer, bounds
    every length against the bytes actually remaining (so fuzzed
    lengths cannot allocate unbounded memory), and turns any failure —
    including [Invalid_argument] raised by smart constructors while
    rebuilding values — into [Error Corrupt_data].  Framing, magic
    numbers and versioning live one layer up in {!Frame}. *)

(** Raised (and returned, see {!of_string}) when bytes cannot be decoded
    as the described type: truncation, trailing garbage, an unknown
    union tag, or a smart constructor rejecting the rebuilt value. *)
exception Corrupt of { what : string; detail : string }

(** Raised by {!Frame} when a stream's format or schema version does not
    match what the reader expects. *)
exception
  Version_mismatch of { what : string; expected : int; got : int }

type 'a t

(** The short name the codec was declared with (used in error messages). *)
val id : 'a t -> string

(** Replace the derived printer with the domain type's own. *)
val with_pp : (Format.formatter -> 'a -> unit) -> 'a t -> 'a t

val pp : 'a t -> Format.formatter -> 'a -> unit

(** {1 Encoding / decoding} *)

val to_string : 'a t -> 'a -> string

(** Strict decode of a whole buffer.  All failures come back as
    [Error (Corrupt _)]; never raises. *)
val of_string : 'a t -> string -> ('a, exn) result

(** Like {!of_string} but raises {!Corrupt}. *)
val of_string_exn : 'a t -> string -> 'a

(** Append [v]'s encoding to [buf] (for building composite payloads). *)
val encode : 'a t -> Buffer.t -> 'a -> unit

(** {1 Primitives} *)

val unit : unit t
val bool : bool t

(** Zigzag LEB128; any native [int] round-trips. *)
val int : int t

(** IEEE-754 bits; NaNs and signed zeros round-trip exactly. *)
val float : float t

val string : string t

(** {1 Combinators} *)

val option : 'a t -> 'a option t
val list : 'a t -> 'a list t
val pair : 'a t -> 'b t -> ('a * 'b) t
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t

(** [conv name proj inj c] encodes ['b] through its projection to ['a].
    [inj] may validate and raise [Invalid_argument]/[Failure]; decode
    reports that as corrupt data. *)
val conv : string -> ('b -> 'a) -> ('a -> 'b) -> 'a t -> 'b t

(** {1 Records}

    [record<N> name f1 .. fN make] encodes the fields in order and
    rebuilds with [make]; the field names only feed the printer. *)

type ('r, 'a) field

val field : string -> 'a t -> ('r -> 'a) -> ('r, 'a) field

val record2 :
  string -> ('r, 'a) field -> ('r, 'b) field -> ('a -> 'b -> 'r) -> 'r t

val record3 :
  string ->
  ('r, 'a) field ->
  ('r, 'b) field ->
  ('r, 'c) field ->
  ('a -> 'b -> 'c -> 'r) ->
  'r t

val record4 :
  string ->
  ('r, 'a) field ->
  ('r, 'b) field ->
  ('r, 'c) field ->
  ('r, 'd) field ->
  ('a -> 'b -> 'c -> 'd -> 'r) ->
  'r t

val record5 :
  string ->
  ('r, 'a) field ->
  ('r, 'b) field ->
  ('r, 'c) field ->
  ('r, 'd) field ->
  ('r, 'e) field ->
  ('a -> 'b -> 'c -> 'd -> 'e -> 'r) ->
  'r t

val record6 :
  string ->
  ('r, 'a) field ->
  ('r, 'b) field ->
  ('r, 'c) field ->
  ('r, 'd) field ->
  ('r, 'e) field ->
  ('r, 'f) field ->
  ('a -> 'b -> 'c -> 'd -> 'e -> 'f -> 'r) ->
  'r t

val record8 :
  string ->
  ('r, 'a) field ->
  ('r, 'b) field ->
  ('r, 'c) field ->
  ('r, 'd) field ->
  ('r, 'e) field ->
  ('r, 'f) field ->
  ('r, 'g) field ->
  ('r, 'h) field ->
  ('a -> 'b -> 'c -> 'd -> 'e -> 'f -> 'g -> 'h -> 'r) ->
  'r t

val record9 :
  string ->
  ('r, 'a) field ->
  ('r, 'b) field ->
  ('r, 'c) field ->
  ('r, 'd) field ->
  ('r, 'e) field ->
  ('r, 'f) field ->
  ('r, 'g) field ->
  ('r, 'h) field ->
  ('r, 'i) field ->
  ('a -> 'b -> 'c -> 'd -> 'e -> 'f -> 'g -> 'h -> 'i -> 'r) ->
  'r t

(** {1 Variants} *)

type 'a case

(** [case tag name codec inj proj]: one constructor of a union.  [tag]
    is the on-the-wire discriminant and must be unique within the
    union; [proj] returns [Some payload] when the value matches this
    case. *)
val case : int -> string -> 'b t -> ('b -> 'a) -> ('a -> 'b option) -> 'a case

(** Tagged union.  Raises [Invalid_argument] at construction on
    duplicate tags; decoding an unknown tag is corrupt data at this
    layer (forward-compatible skipping happens at the {!Frame} record
    layer, not inside a value). *)
val union : string -> 'a case list -> 'a t

(** Nullary-constructor union: tags are list positions. *)
val enum : string -> (string * 'a) list -> 'a t

(** Recursive types: [fix (fun self -> ...)]. *)
val fix : string -> ('a t -> 'a t) -> 'a t

(** {1 Low-level varints (shared with {!Frame})} *)

val write_uvarint : Buffer.t -> int -> unit

type reader

val reader : ?pos:int -> ?limit:int -> string -> reader
val read_uvarint : what:string -> reader -> int
val reader_pos : reader -> int
