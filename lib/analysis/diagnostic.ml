type severity = Error | Warning | Hint

let severity_rank = function Error -> 0 | Warning -> 1 | Hint -> 2

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Hint -> "hint"

type t = {
  code : string;
  severity : severity;
  loc : string list;
  message : string;
  note : string option;
}

let v ~code ~severity ~loc ?note message =
  { code; severity; loc; message; note }

let error ~code ~loc ?note message = v ~code ~severity:Error ~loc ?note message

let warning ~code ~loc ?note message =
  v ~code ~severity:Warning ~loc ?note message

let hint ~code ~loc ?note message = v ~code ~severity:Hint ~loc ?note message

let compare a b =
  match Int.compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 -> (
      match String.compare a.code b.code with
      | 0 -> Stdlib.compare (a.loc, a.message) (b.loc, b.message)
      | c -> c)
  | c -> c

let sort ds = List.sort compare ds

let filter_severity ~min ds =
  List.filter (fun d -> severity_rank d.severity <= severity_rank min) ds

let errors ds = List.filter (fun d -> d.severity = Error) ds

let warnings ds = List.filter (fun d -> d.severity = Warning) ds

let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let promote_warnings ds =
  List.map
    (fun d -> if d.severity = Warning then { d with severity = Error } else d)
    ds

let summary ds =
  let count sev = List.length (List.filter (fun d -> d.severity = sev) ds) in
  let part n singular =
    if n = 0 then None
    else Some (Printf.sprintf "%d %s%s" n singular (if n = 1 then "" else "s"))
  in
  match
    List.filter_map
      (fun (sev, name) -> part (count sev) name)
      [ (Error, "error"); (Warning, "warning"); (Hint, "hint") ]
  with
  | [] -> "clean"
  | parts -> String.concat ", " parts

let pp ppf d =
  Format.fprintf ppf "%s %s [%s]: %s" d.code (severity_name d.severity)
    (String.concat "/" d.loc)
    d.message;
  match d.note with
  | Some n -> Format.fprintf ppf "@,  fix: %s" n
  | None -> ()

let pp_list ppf ds =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp)
    ds

let to_string d = Format.asprintf "@[<v>%a@]" pp d
