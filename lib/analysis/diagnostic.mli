(** Structured compiler diagnostics for the static-analysis layer.

    Every verifier and linter finding is a coded, located, severity-tagged
    value rather than a bare string, so the pipeline can filter them
    ([--Werror] promotion, error-only gating), the CLI can render them
    uniformly, and tests can assert on codes instead of message text.

    Code ranges: [POM1xx] IR well-formedness (verifier), [POM2xx] HLS
    directive lint, [POM3xx] resilience (budgets, degradation — see
    {!Pom_resilience.Error}), [POM4xx] refutation counterexamples
    ([POM401] polyhedral oracle mismatch, [POM402] legality soundness,
    [POM403] accepted-schedule crash, [POM404] degradation contract,
    [POM405] precision-miss hint). *)

type severity = Error | Warning | Hint

(** Numerically ordered: [Error] is the most severe. *)
val severity_rank : severity -> int

val severity_name : severity -> string

type t = {
  code : string;  (** stable identifier, e.g. ["POM201"] *)
  severity : severity;
  loc : string list;
      (** IR location path, outermost first, e.g.
          [["gemm"; "s"; "loop k"]] *)
  message : string;
  note : string option;  (** optional fix-it suggestion *)
}

val v :
  code:string -> severity:severity -> loc:string list -> ?note:string ->
  string -> t

val error : code:string -> loc:string list -> ?note:string -> string -> t

val warning : code:string -> loc:string list -> ?note:string -> string -> t

val hint : code:string -> loc:string list -> ?note:string -> string -> t

(** Severity (most severe first), then code, then location. *)
val compare : t -> t -> int

val sort : t list -> t list

(** Only diagnostics at least as severe as [min] ([Hint] keeps all). *)
val filter_severity : min:severity -> t list -> t list

val errors : t list -> t list

val warnings : t list -> t list

val has_errors : t list -> bool

(** [--Werror]: every warning becomes an error (hints are untouched). *)
val promote_warnings : t list -> t list

(** ["2 errors, 1 warning, 3 hints"] with zero counts elided; ["clean"]
    when the list is empty. *)
val summary : t list -> string

val pp : Format.formatter -> t -> unit

val pp_list : Format.formatter -> t list -> unit

val to_string : t -> string
