open Pom_poly
open Pom_dsl
open Pom_affine

let rec index_vars = function
  | Expr.Ix_var v -> [ v ]
  | Expr.Ix_const _ -> []
  | Expr.Ix_add (a, b) | Expr.Ix_sub (a, b) -> index_vars a @ index_vars b
  | Expr.Ix_mul (_, ix) -> index_vars ix

(* ---- structural checks on the affine dialect ---- *)

let check_access ~loc ~scope acc (p : Placeholder.t) ixs =
  let acc =
    if List.length ixs <> Placeholder.rank p then
      Diagnostic.error ~code:"POM103" ~loc:(loc @ [ "array " ^ p.name ])
        ~note:
          (Printf.sprintf "declare %s with %d dimensions or fix the access"
             p.name (List.length ixs))
        (Printf.sprintf "access %s with %d indices but the array has rank %d"
           p.name (List.length ixs) (Placeholder.rank p))
      :: acc
    else acc
  in
  List.fold_left
    (fun acc v ->
      if List.mem v scope then acc
      else
        Diagnostic.error ~code:"POM101" ~loc:(loc @ [ "array " ^ p.name ])
          ~note:"every index variable must be bound by an enclosing affine.for"
          (Printf.sprintf "index of %s reads undefined iterator %s" p.name v)
        :: acc)
    acc
    (List.concat_map index_vars ixs)

let check_bound_dims ~loc ~scope which acc (b : Ast.bound) =
  List.fold_left
    (fun acc d ->
      if List.mem d scope then acc
      else
        Diagnostic.error ~code:"POM101" ~loc
          (Printf.sprintf "%s bound reads undefined iterator %s" which d)
        :: acc)
    acc
    (Linexpr.dims b.Ast.expr)

let rec check_node ~loc ~scope acc = function
  | Ir.For { iter; lbs; ubs; body; _ } ->
      let loc' = loc @ [ "loop " ^ iter ] in
      let acc =
        if List.mem iter scope then
          Diagnostic.warning ~code:"POM102" ~loc:loc'
            ~note:"rename the inner loop iterator"
            (Printf.sprintf "loop shadows enclosing iterator %s" iter)
          :: acc
        else acc
      in
      let acc =
        List.fold_left (check_bound_dims ~loc:loc' ~scope "lower") acc lbs
      in
      let acc =
        List.fold_left (check_bound_dims ~loc:loc' ~scope "upper") acc ubs
      in
      let acc =
        match (lbs, ubs) with
        | [ lb ], [ ub ] -> (
            match (Ir.const_bound lb, Ir.const_bound ub) with
            | Some l, Some u when l > u ->
                Diagnostic.warning ~code:"POM104" ~loc:loc'
                  ~note:"remove the loop or fix its bounds"
                  (Printf.sprintf
                     "degenerate bounds: lower %d exceeds upper %d, the body \
                      never executes"
                     l u)
                :: acc
            | _ -> acc)
        | _ -> acc
      in
      List.fold_left (check_node ~loc:loc' ~scope:(iter :: scope)) acc body
  | Ir.If (guards, body) ->
      let acc =
        List.fold_left
          (fun acc g ->
            List.fold_left
              (fun acc d ->
                if List.mem d scope then acc
                else
                  Diagnostic.error ~code:"POM101" ~loc:(loc @ [ "if" ])
                    (Printf.sprintf "guard reads undefined iterator %s" d)
                  :: acc)
              acc (Constr.dims g))
          acc guards
      in
      List.fold_left (check_node ~loc:(loc @ [ "if" ]) ~scope) acc body
  | Ir.Op s ->
      let loc' = loc @ [ s.Ir.compute_name ] in
      let dest_p, dest_ixs = s.Ir.dest in
      let acc = check_access ~loc:loc' ~scope acc dest_p dest_ixs in
      List.fold_left
        (fun acc (p, ixs) -> check_access ~loc:loc' ~scope acc p ixs)
        acc
        (Expr.loads s.Ir.rhs)

let check_arrays ~loc acc arrays =
  let seen = Hashtbl.create 8 in
  List.fold_left
    (fun acc (a : Ir.array_info) ->
      let p = a.Ir.placeholder in
      let loc' = loc @ [ "array " ^ p.Placeholder.name ] in
      let acc =
        if Hashtbl.mem seen p.Placeholder.name then
          Diagnostic.error ~code:"POM105" ~loc:loc'
            ~note:"merge the entries; partition state must be unambiguous"
            "duplicate array_info entry"
          :: acc
        else begin
          Hashtbl.add seen p.Placeholder.name ();
          acc
        end
      in
      let acc =
        if List.length a.Ir.partition <> Placeholder.rank p then
          Diagnostic.error ~code:"POM106" ~loc:loc'
            (Printf.sprintf
               "partition vector has %d factors for a rank-%d array"
               (List.length a.Ir.partition) (Placeholder.rank p))
          :: acc
        else acc
      in
      List.fold_left
        (fun acc f ->
          if f <= 0 then
            Diagnostic.error ~code:"POM106" ~loc:loc'
              (Printf.sprintf "non-positive partition factor %d" f)
            :: acc
          else acc)
        acc a.Ir.partition)
    acc arrays

let verify_func (f : Ir.func) =
  let loc = [ f.Ir.name ] in
  let acc = check_arrays ~loc [] f.Ir.arrays in
  let acc = List.fold_left (check_node ~loc ~scope:[]) acc f.Ir.body in
  Diagnostic.sort acc

(* ---- polyhedral out-of-bounds analysis ---- *)

(* The access footprint escaping the array box along dimension [k] is the
   domain intersected with [idx_k < 0] or [idx_k > extent_k - 1]; a
   non-empty intersection is a concrete iteration that addresses outside
   the array. *)
let bounds_of_access ~loc ~domain (p : Placeholder.t) (a : Dep.access) =
  List.concat
    (List.mapi
       (fun k idx ->
         let extent = List.nth p.Placeholder.shape k in
         let escape name c =
           let set = Basic_set.add_constraint c domain in
           if Feasible.is_empty set then []
           else
             [
               Diagnostic.error ~code:"POM110"
                 ~loc:(loc @ [ Printf.sprintf "array %s dim %d" p.name k ])
                 ~note:
                   (Printf.sprintf "array extent is %d; witness set %s" extent
                      (Basic_set.to_string (Basic_set.simplify set)))
                 (Printf.sprintf "access index %s can run %s the array bound"
                    (Linexpr.to_string idx) name);
             ]
         in
         escape "below" (Constr.le idx (Linexpr.const (-1)))
         @ escape "past"
             (Constr.ge idx (Linexpr.const extent)))
       a.Dep.indices)

let verify_bounds (prog : Pom_polyir.Prog.t) =
  let placeholders = Func.placeholders prog.Pom_polyir.Prog.func in
  let fname = Func.name prog.Pom_polyir.Prog.func in
  (* every (statement, access) pair is an independent emptiness proof —
     flatten them into one task list and fan out across domains; the final
     Diagnostic.sort keeps the report order independent of scheduling *)
  let tasks =
    List.concat_map
      (fun (s : Pom_polyir.Stmt_poly.t) ->
        let name = Pom_polyir.Stmt_poly.name s in
        let loc = [ fname; name ] in
        let domain = s.Pom_polyir.Stmt_poly.domain in
        let write, reads = Pom_hls.Summary.transformed_accesses s in
        List.map (fun a -> (loc, domain, a)) (write :: reads))
      prog.Pom_polyir.Prog.stmts
  in
  let diags =
    List.concat
      (Pom_par.Par.map
         (fun (loc, domain, (a : Dep.access)) ->
           match
             List.find_opt
               (fun (p : Placeholder.t) -> p.name = a.Dep.array)
               placeholders
           with
           | None -> []
           | Some p when List.length a.Dep.indices <> Placeholder.rank p ->
               (* rank errors are POM103's job on the affine level; the
                  box check is meaningless here *)
               []
           | Some p -> (
               try bounds_of_access ~loc ~domain p a
               with Invalid_argument m ->
                 [
                   Diagnostic.error ~code:"POM111" ~loc
                     (Printf.sprintf
                        "bounds analysis failed on an access to %s: %s"
                        a.Dep.array m);
                 ]))
         tasks)
  in
  Diagnostic.sort diags

let verify ?affine prog =
  let affine =
    match affine with Some f -> f | None -> Lower.lower prog
  in
  Diagnostic.sort (verify_func affine @ verify_bounds prog)
