(** Static well-formedness verification of the annotated affine dialect and
    a polyhedral out-of-bounds analysis of the scheduled program — the
    "ensuring the correctness of the code" layer (Section V-B) extended
    from schedule legality to the IR itself.

    Codes emitted:
    - [POM101] (error): an index or loop bound reads an iterator not bound
      by any enclosing loop.
    - [POM102] (warning): a loop shadows an enclosing iterator of the same
      name.
    - [POM103] (error): an access has a different rank than the array it
      addresses.
    - [POM104] (warning): constant loop bounds with [lb > ub] — the loop
      body is unreachable.
    - [POM105] (error): duplicate [array_info] entries for one array.
    - [POM106] (error): [array_info] partition vector malformed (rank
      mismatch or non-positive factor).
    - [POM110] (error): an access footprint provably escapes the array
      extent (the access polyhedron intersected with the complement of the
      array box is non-empty).
    - [POM111] (error): the polyhedral bounds analysis itself failed on an
      access (malformed index space). *)

(** Structural checks on a lowered affine function. *)
val verify_func : Pom_affine.Ir.func -> Diagnostic.t list

(** Polyhedral out-of-bounds analysis: every (transformed) access of every
    statement, each array dimension checked against [0 <= idx < extent]
    via {!Pom_poly.Feasible} emptiness. *)
val verify_bounds : Pom_polyir.Prog.t -> Diagnostic.t list

(** Both layers.  When [affine] is omitted it is obtained by lowering
    [prog] (so the check always sees the IR that would be emitted). *)
val verify :
  ?affine:Pom_affine.Ir.func -> Pom_polyir.Prog.t -> Diagnostic.t list
