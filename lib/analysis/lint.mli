(** Dependence-aware lint of the HLS directives carried by a scheduled
    polyhedral program: every check compares a requested pragma against the
    loop-carried dependence structure (re-analyzed in the transformed
    iteration space) or against the port arithmetic of the partitioning —
    the silent QoR sinks ScaleHLS/Phism-style flows hit in practice.

    Codes emitted:
    - [POM200] (error): the lint itself could not analyze the program.
    - [POM201] (warning): requested [pipeline_ii] below the minimum
      recurrence II forced by a loop-carried dependence at the pipelined
      level.
    - [POM202] (warning): a partial unroll of a dependence-carrying level —
      the copies serialize into a chain instead of running in parallel.
      (A full unroll is exempt: the loop dissolves into a dependence chain
      the QoR model prices, the standard reduction idiom.)
    - [POM203] (warning): concurrent port demand of the unrolled body
      exceeds what the array partitioning can serve (2 ports per bank) —
      a bank conflict that inflates the achieved II.
    - [POM204] (hint): a dead partition — no unrolled access varies along
      the partitioned dimension, so the extra banks serve no concurrency.
    - [POM205] (warning): a non-dividing factor (unroll vs trip count,
      partition vs array extent) leaving remainder iterations or uneven
      banks.
    - [POM206] (warning): conflicting directives — pipeline and unroll
      requested on the same loop.
    - [POM207] (error): malformed partition directive (unknown array, rank
      mismatch, non-positive factor). *)

val lint : Pom_polyir.Prog.t -> Diagnostic.t list

(** [stmt name -> materialized parallel copies] under the current
    directives, counting only unrolls on dependence-free levels (see
    {!Pom_hls.Latency.effective_unroll}). *)
val effective_parallelism : Pom_polyir.Prog.t -> (string * int) list

(** The latency-determining hardware structure of a scheduled program:
    per statement (sorted by name), the loop nest as
    [(dim, extent, unroll, pipelined, target_ii)] per level.  Two programs
    with equal signatures (under the same schedule prefix) describe the
    same design point to the QoR model. *)
type hw_signature = (string * (string * int * int * bool * int) list) list

val hw_signature : Pom_polyir.Prog.t -> hw_signature

(** The DSE pre-pruning oracle: does [prog] change any statement's
    hardware signature relative to [before]?  Factor clamping (per-level
    caps, extent saturation) makes distinct parallelism requests collapse
    onto the same realization; such a candidate is the incumbent under
    another name — identical latency and resources — so the search can
    drop it before paying for synthesis. *)
val gains_parallelism : before:hw_signature -> Pom_polyir.Prog.t -> bool
