open Pom_dsl
open Pom_polyir
open Pom_hls

(* ---- per-statement pragma checks against the dependence structure ---- *)

let carried_at deps level =
  List.find_map (fun dep -> List.assoc_opt level dep) deps

let lint_pipeline ~loc (p : Summary.t) =
  match Summary.pipeline_level p with
  | None -> []
  | Some level ->
      let loop = List.nth p.Summary.loops (level - 1) in
      let mii = Latency.recurrence_mii ~level p in
      if loop.Summary.target_ii < mii then
        [
          Diagnostic.warning ~code:"POM201"
            ~loc:(loc @ [ "loop " ^ loop.Summary.dim ])
            ~note:
              (Printf.sprintf
                 "request pipeline_ii >= %d, or transform the recurrence away \
                  (interchange/skew) before pipelining this level"
                 mii)
            (Printf.sprintf
               "pipeline_ii %d is unachievable: a loop-carried dependence \
                forces II >= %d"
               loop.Summary.target_ii mii);
        ]
      else []

let lint_unrolls ~loc (p : Summary.t) =
  List.concat
    (List.mapi
       (fun i (l : Summary.loop) ->
         let level = i + 1 in
         if l.Summary.unroll <= 1 then []
         else
           let serial =
             (* a FULL unroll of a carried level is the standard reduction
                idiom — the loop dissolves into a dependence chain inside
                the enclosing pipeline body, and the QoR model prices that
                chain (see Latency.rec_mii).  Only a partial unroll leaves
                the loop standing with serialized copies. *)
             match
               if l.Summary.unroll >= l.Summary.extent then None
               else carried_at p.Summary.deps level
             with
             | Some dist ->
                 [
                   Diagnostic.warning ~code:"POM202"
                     ~loc:(loc @ [ "loop " ^ l.Summary.dim ])
                     ~note:
                       "unroll a dependence-free level instead; these copies \
                        execute as a serial chain"
                     (Printf.sprintf
                        "unroll %d serializes: the level carries a dependence \
                         of distance %d"
                        l.Summary.unroll dist);
                 ]
             | None -> []
           in
           let remainder =
             if l.Summary.extent mod l.Summary.unroll <> 0 then
               [
                 Diagnostic.warning ~code:"POM205"
                   ~loc:(loc @ [ "loop " ^ l.Summary.dim ])
                   ~note:"pick a factor dividing the trip count"
                   (Printf.sprintf
                      "unroll %d does not divide trip count %d: remainder \
                       iterations serialize"
                      l.Summary.unroll l.Summary.extent);
               ]
             else []
           in
           let conflict =
             if l.Summary.pipelined then
               [
                 Diagnostic.warning ~code:"POM206"
                   ~loc:(loc @ [ "loop " ^ l.Summary.dim ])
                   ~note:"full unrolling dissolves the loop a pipeline needs"
                   "conflicting directives: pipeline and unroll on the same \
                    loop";
               ]
             else []
           in
           serial @ remainder @ conflict)
       p.Summary.loops)

(* ---- bank-conflict check: port demand of the unrolled body vs banks ---- *)

(* Mirrors the access model of {!Pom_hls.Latency.res_mii}: an access
   contributes one port operation per unrolled copy it actually varies
   with, and a partition factor multiplies the reachable banks only along
   dimensions the index varies on.  Each bank is dual-ported. *)
let lint_ports ~loc ~partitions (p : Summary.t) =
  let unroll_of dim =
    match
      List.find_opt (fun (l : Summary.loop) -> l.Summary.dim = dim)
        p.Summary.loops
    with
    | Some l -> l.Summary.unroll
    | None -> 1
  in
  let unrolled_dims =
    List.filter_map
      (fun (l : Summary.loop) ->
        if l.Summary.unroll > 1 then Some l.Summary.dim else None)
      p.Summary.loops
  in
  let seen = Hashtbl.create 4 in
  List.concat_map
    (fun (array, per_dim) ->
      let ops =
        List.fold_left
          (fun acc d -> acc * unroll_of d)
          1
          (List.sort_uniq String.compare
             (List.filter
                (fun d -> List.mem d unrolled_dims)
                (List.concat per_dim)))
      in
      let factors = partitions array in
      let banks =
        List.fold_left
          (fun acc (k, f) ->
            let varies =
              match List.nth_opt per_dim k with
              | Some dims -> List.exists (fun d -> List.mem d unrolled_dims) dims
              | None -> false
            in
            if f > 1 && varies then acc * f else acc)
          1
          (List.mapi (fun k f -> (k, f)) factors)
      in
      if ops > 2 * banks && not (Hashtbl.mem seen array) then begin
        Hashtbl.add seen array ();
        [
          Diagnostic.warning ~code:"POM203"
            ~loc:(loc @ [ "array " ^ array ])
            ~note:
              (Printf.sprintf
                 "partition %s along the unrolled dimensions (need >= %d \
                  banks for II=1)"
                 array
                 ((ops + 1) / 2))
            (Printf.sprintf
               "%d concurrent accesses from the unrolled body, but the \
                partitioning serves %d ports (%d banks x 2)"
               ops (2 * banks) banks);
        ]
      end
      else [])
    p.Summary.access_dims

(* ---- array-level directive checks ---- *)

let lint_partitions (prog : Prog.t) profiles =
  let fname = Func.name prog.Prog.func in
  let placeholders = Func.placeholders prog.Prog.func in
  List.concat_map
    (fun (array, (factors, _kind)) ->
      let loc = [ fname; "array " ^ array ] in
      match
        List.find_opt
          (fun (p : Placeholder.t) -> p.Placeholder.name = array)
          placeholders
      with
      | None ->
          [
            Diagnostic.error ~code:"POM207" ~loc
              ~note:"remove the directive or fix the array name"
              "partition directive names an array no compute accesses";
          ]
      | Some p when List.length factors <> Placeholder.rank p ->
          [
            Diagnostic.error ~code:"POM207" ~loc
              (Printf.sprintf
                 "partition has %d factors for a rank-%d array"
                 (List.length factors) (Placeholder.rank p));
          ]
      | Some p ->
          List.concat
            (List.mapi
               (fun k f ->
                 let extent = List.nth p.Placeholder.shape k in
                 if f <= 0 then
                   [
                     Diagnostic.error ~code:"POM207" ~loc
                       (Printf.sprintf "non-positive partition factor %d" f);
                   ]
                 else if f > 1 && extent mod f <> 0 then
                   [
                     Diagnostic.warning ~code:"POM205" ~loc
                       ~note:"pick a factor dividing the array extent"
                       (Printf.sprintf
                          "partition factor %d does not divide extent %d: \
                           banks are uneven"
                          f extent);
                   ]
                 else if f > 1 then
                   (* dead-partition check: some unrolled access must vary
                      along dimension [k] for the banks to add ports *)
                   let fed =
                     List.exists
                       (fun (prof : Summary.t) ->
                         let unrolled =
                           List.filter_map
                             (fun (l : Summary.loop) ->
                               if l.Summary.unroll > 1 then
                                 Some l.Summary.dim
                               else None)
                             prof.Summary.loops
                         in
                         List.exists
                           (fun (a, per_dim) ->
                             a = array
                             &&
                             match List.nth_opt per_dim k with
                             | Some dims ->
                                 List.exists
                                   (fun d -> List.mem d unrolled)
                                   dims
                             | None -> false)
                           prof.Summary.access_dims)
                       profiles
                   in
                   if fed then []
                   else
                     [
                       Diagnostic.hint ~code:"POM204" ~loc
                         ~note:
                           "no unrolled access varies along this dimension; \
                            the banks add hardware but no concurrency"
                         (Printf.sprintf "partition factor %d on dim %d is \
                                          dead" f k);
                     ]
                 else [])
               factors))
    prog.Prog.partitions

let lint_profiles prog =
  let fname = Func.name prog.Prog.func in
  let partitions = Report.partition_fn prog in
  let profiles = Summary.profile_all prog in
  let per_stmt =
    List.concat_map
      (fun (p : Summary.t) ->
        let loc = [ fname; Stmt_poly.name p.Summary.stmt ] in
        lint_pipeline ~loc p @ lint_unrolls ~loc p
        @ lint_ports ~loc ~partitions p)
      profiles
  in
  per_stmt @ lint_partitions prog profiles

let lint prog =
  match lint_profiles prog with
  | ds -> Diagnostic.sort ds
  | exception Invalid_argument m ->
      [
        Diagnostic.error ~code:"POM200"
          ~loc:[ Func.name prog.Prog.func ]
          (Printf.sprintf "lint could not analyze the program: %s" m);
      ]

(* ---- the DSE pre-pruning oracle ---- *)

let effective_parallelism prog =
  List.map
    (fun (p : Summary.t) ->
      (Stmt_poly.name p.Summary.stmt, Latency.effective_unroll p))
    (Summary.profile_all prog)

type hw_signature = (string * (string * int * int * bool * int) list) list

let hw_signature prog : hw_signature =
  List.sort compare
    (List.map
       (fun (p : Summary.t) ->
         ( Stmt_poly.name p.Summary.stmt,
           List.map
             (fun (l : Summary.loop) ->
               ( l.Summary.dim,
                 l.Summary.extent,
                 l.Summary.unroll,
                 l.Summary.pipelined,
                 l.Summary.target_ii ))
             p.Summary.loops ))
       (Summary.profile_all prog))

let gains_parallelism ~before prog = hw_signature prog <> before
