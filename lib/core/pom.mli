(** POM — an end-to-end optimizing framework for FPGA accelerator
    generation, reproducing Zhang et al., HPCA 2024.

    This is the public facade: write an algorithm in the DSL
    ({!Dsl.Func}, {!Dsl.Compute}), pick a schedule (manual primitives or
    {!compile} with [`Pom_auto]), and get back a synthesis report from the
    virtual HLS back-end plus generated HLS C.

    {[
      let f = Pom.Workloads.Polybench.gemm 1024 in
      let c = Pom.compile ~framework:`Pom_auto f in
      print_string c.Pom.hls_c;
      Format.printf "%a@." Pom.Hls.Report.pp c.Pom.report
    ]}

    Every flow is an instrumented pass pipeline ({!Pipeline.Pass}): each
    step is a registered pass, and {!compile} returns one timing/statistics
    record per pass. *)

(** Re-exported subsystem entry points. *)

(** The parallel-execution budget: {!Par.set_jobs}/{!Par.with_jobs} set the
    process-wide worker-domain count used by the searching flows and the
    polyhedral analyses ([1] = fully sequential). *)
module Par = Pom_par.Par

module Poly = Pom_poly
module Dsl = Pom_dsl
module Depgraph = Pom_depgraph
module Polyir = Pom_polyir
module Affine = Pom_affine
module Emit = Pom_emit
module Sim = Pom_sim
module Hls = Pom_hls
module Dse = Pom_dse
module Baselines = Pom_baselines
module Workloads = Pom_workloads
module Cfront = Pom_cfront
module Pipeline = Pom_pipeline
module Analysis = Pom_analysis

(** Deadlines, typed failures, graceful degradation, DSE checkpointing,
    and deterministic fault injection ({!Resilience.Budget},
    {!Resilience.Policy}, {!Resilience.Error}, {!Resilience.Checkpoint},
    {!Resilience.Fault}). *)
module Resilience = Pom_resilience

(** Property-based refutation of the trust anchors: differential oracles
    for polyhedral projection, legality-vs-execution, and the degradation
    contract, with shrinking and a replayable counterexample corpus
    ({!Refute.Gen}, {!Refute.Oracle}, {!Refute.Engine},
    {!Refute.Corpus}). *)
module Refute = Pom_refute

(** Which optimization flow to run. *)
type framework =
  [ `Baseline  (** the input program, unoptimized *)
  | `Pluto  (** locality tiling, CPU-oriented (no pragmas) *)
  | `Polsca  (** Pluto schedule + pipelining, no partitioning *)
  | `Scalehls  (** single-IR interchange + greedy DSE, dataflow resources *)
  | `Pom_manual  (** apply the function's own scheduling primitives *)
  | `Pom_auto  (** the two-stage DSE engine ([f.auto_DSE()]) *) ]

type compiled = {
  framework : framework;
  prog : Pom_polyir.Prog.t;
  report : Pom_hls.Report.t;
  hls_c : string;  (** generated HLS C *)
  dse_time_s : float;  (** wall-clock search time; 0 for non-searching flows *)
  dse_cpu_s : float;  (** CPU search time ([Sys.time]) *)
  tile_vectors : (string * int list) list;  (** empty for non-DSE flows *)
  baseline_latency : int;
  passes : Pom_pipeline.Pass.record list;
      (** one instrumentation record per executed pass, in order *)
  diags : Pom_analysis.Diagnostic.t list;
      (** analyzer diagnostics from the verify-ir and lint-pragmas passes *)
  legality_violations : int;
      (** reversed dependences found by the legality-check pass *)
  trace : string list;
      (** decision log: DSE search trace, memo summary, legality verdicts *)
}

(** Compile a DSL function end-to-end through the selected flow.  [dnn]
    switches the ScaleHLS baseline to its dataflow composition; POM always
    reuses resources across loops.

    [dump_after] names passes whose post-pass IR should be captured in the
    matching {!Pipeline.Pass.record} ([["all"]] captures every pass);
    [verify_each] re-checks polyhedral legality after every pass, and
    [simulate] additionally runs the functional simulator (small problem
    sizes only).

    [jobs] (default {!Par.jobs}) sets the worker-domain budget of the
    searching flows ([`Scalehls], [`Pom_auto]); the compiled design is
    identical across job counts, and [jobs = 1] reproduces the sequential
    search bit-for-bit.

    Resilience controls: [deadline_s]/[max_ticks] install a cooperative
    {!Resilience.Budget} for the whole compile — the polyhedral kernels,
    legality proof, and both DSE searches check it and raise
    [Budget_exceeded] when it runs out.  [on_error] selects what a failed
    or timed-out pass does: [Abort] (the default) re-raises the typed
    {!Resilience.Error.Error}; [Degrade] records a POM3xx diagnostic and
    applies each pass's documented fallback (assume the dependence, reject
    the transform, keep the DSE incumbent) — passes that produce the final
    artifact always abort.  [checkpoint] journals every evaluated DSE
    design point to the named file so a killed search can resume and
    reproduce the identical final design. *)
val compile :
  ?device:Pom_hls.Device.t ->
  ?framework:framework ->
  ?dnn:bool ->
  ?dump_after:string list ->
  ?verify_each:bool ->
  ?simulate:bool ->
  ?jobs:int ->
  ?deadline_s:float ->
  ?max_ticks:int ->
  ?on_error:Pom_resilience.Policy.t ->
  ?checkpoint:string ->
  Pom_dsl.Func.t ->
  compiled

val speedup : compiled -> float

(** The annotated affine-dialect IR as textual MLIR (the Fig. 9 (d)
    artifact), with HLS information as [hls.*] attributes. *)
val mlir : compiled -> string

(** Check a compiled schedule against the specification on small inputs
    with the functional simulator; returns the max elementwise
    divergence. *)
val validate : Pom_dsl.Func.t -> compiled -> float

(** Prove the compiled schedule legal against the specification with the
    polyhedral dependence checker (no execution, any problem size);
    returns the reversed dependences ([[]] = legal). *)
val check_legality :
  Pom_dsl.Func.t -> compiled -> Pom_polyir.Legality.violation list
