module Par = Pom_par.Par
module Poly = Pom_poly
module Dsl = Pom_dsl
module Depgraph = Pom_depgraph
module Polyir = Pom_polyir
module Affine = Pom_affine
module Emit = Pom_emit
module Sim = Pom_sim
module Hls = Pom_hls
module Dse = Pom_dse
module Baselines = Pom_baselines
module Workloads = Pom_workloads
module Cfront = Pom_cfront
module Pipeline = Pom_pipeline
module Analysis = Pom_analysis
module Resilience = Pom_resilience
module Refute = Pom_refute

open Pom_pipeline

type framework =
  [ `Baseline | `Pluto | `Polsca | `Scalehls | `Pom_manual | `Pom_auto ]

type compiled = {
  framework : framework;
  prog : Pom_polyir.Prog.t;
  report : Pom_hls.Report.t;
  hls_c : string;
  dse_time_s : float;
  dse_cpu_s : float;
  tile_vectors : (string * int list) list;
  baseline_latency : int;
  passes : Pass.record list;
  diags : Pom_analysis.Diagnostic.t list;
  legality_violations : int;
  trace : string list;
}

(* The head of each flow: everything up to (but excluding) the shared
   synthesize/lower/simplify/emit tail.  Searching flows (`Scalehls,
   `Pom_auto) fill the program slot themselves; the others accumulate
   directives and apply them with the shared schedule-apply pass. *)
let head_passes ?jobs ?checkpoint framework =
  match framework with
  | `Baseline -> [ Passes.structural (); Passes.schedule_apply () ]
  | `Pluto -> Baselines.Pluto.passes () @ [ Passes.schedule_apply () ]
  | `Polsca -> Baselines.Polsca.passes () @ [ Passes.schedule_apply () ]
  | `Scalehls -> Baselines.Scalehls.passes ?jobs ?checkpoint ()
  | `Pom_manual -> [ Passes.user_schedule (); Passes.schedule_apply () ]
  | `Pom_auto -> Dse.Engine.passes ?jobs ?checkpoint ()

(* The degradation contract, per pass.  A required pass produces the
   artifact the compile exists to deliver — skipping it cannot yield a
   usable result, so its failure always aborts with the typed error.
   Everything else (directive accumulation, legality/lint/verify analyses)
   degrades to a POM3xx warning diagnostic under [--on-error degrade]. *)
let required_passes =
  [
    "schedule-apply";
    "hls-synthesize";
    "affine-lower";
    "affine-simplify";
    "emit-hls-c";
    "stage1-transform";
    "stage2-search";
    "scalehls-greedy-dse";
  ]

let guard_pipeline ps =
  List.map
    (fun (p : State.t Pass.t) ->
      Passes.guard ~required:(List.mem p.Pass.info.Pass.name required_passes) p)
    ps

let compile ?(device = Pom_hls.Device.xc7z020) ?(framework = `Pom_auto)
    ?(dnn = false) ?(dump_after = []) ?(verify_each = false)
    ?(simulate = false) ?jobs ?deadline_s ?max_ticks
    ?(on_error = Pom_resilience.Policy.Abort) ?checkpoint func =
  Pom_resilience.Policy.with_policy on_error @@ fun () ->
  Pom_resilience.Budget.with_budget ?deadline_s ?max_ticks @@ fun () ->
  let baseline_latency = Pom_hls.Report.baseline_latency func in
  let composition, latency_mode =
    match framework with
    | `Scalehls ->
        (Pom_hls.Resource.Dataflow, if dnn then `Dataflow else `Sequential)
    | `Baseline | `Pluto | `Polsca | `Pom_manual | `Pom_auto ->
        (Pom_hls.Resource.Reuse, `Sequential)
  in
  let pipeline =
    guard_pipeline
      (head_passes ?jobs ?checkpoint framework
      @ [ Passes.legality_check (); Passes.lint_pragmas () ]
      @ Passes.tail ())
  in
  let instruments = State.instruments ~dump_after ~verify_each ~simulate () in
  let st, records =
    Pass.run ~instruments pipeline
      (State.init ~composition ~latency_mode ~device func)
  in
  let prog =
    match st.State.prog with Some p -> p | None -> assert false
  in
  let report =
    match st.State.report with Some r -> r | None -> assert false
  in
  let hls_c =
    match st.State.hls_c with Some c -> c | None -> assert false
  in
  {
    framework;
    prog;
    report;
    hls_c;
    dse_time_s = st.State.dse_time_s;
    dse_cpu_s = st.State.dse_cpu_s;
    tile_vectors = st.State.tile_vectors;
    baseline_latency;
    passes = records;
    diags = st.State.diags;
    legality_violations = st.State.legality_violations;
    trace = st.State.trace;
  }

let mlir c =
  Pom_emit.Emit_mlir.mlir
    (Pom_affine.Passes.simplify (Pom_affine.Lower.lower c.prog))

let speedup c =
  Pom_hls.Report.speedup ~baseline:c.baseline_latency c.report

let validate func c = Pom_sim.Interp.divergence func c.prog

let check_legality func c =
  let original =
    Pom_polyir.Prog.apply_all
      (Pom_polyir.Prog.of_func_unscheduled func)
      (Pom_baselines.Butil.structural_directives func)
  in
  Pom_polyir.Legality.violations ~original ~transformed:c.prog
