type token = Ident of string | Int of int | Float of float | Punct of string | Eof

type located = { tok : token; line : int; col : int }

exception Lex_error of { line : int; col : int; message : string }

(* line/col of a byte offset, 1-based — error path only, so a plain scan *)
let pos_of src off =
  let line = ref 1 and bol = ref 0 in
  for k = 0 to min off (String.length src) - 1 do
    if src.[k] = '\n' then begin
      incr line;
      bol := k + 1
    end
  done;
  (!line, off - !bol + 1)

let err src off fmt =
  Format.kasprintf
    (fun message ->
      let line, col = pos_of src off in
      raise (Lex_error { line; col; message }))
    fmt

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

(* two-character operators first, then single characters *)
let two_char_puncts = [ "++"; "--"; "+="; "-="; "*="; "/="; "<="; ">="; "==" ]

let one_char_puncts = "(){}[];,=<>+-*/%"

(* One forward walk attaching line/col to each (token, start offset) pair:
   the offsets come out of [tokenize] in increasing order, so the newline
   scan never rewinds. *)
let locate src pairs =
  let line = ref 1 and bol = ref 0 and k = ref 0 in
  List.map
    (fun (tok, off) ->
      while !k < off do
        if src.[!k] = '\n' then begin
          incr line;
          bol := !k + 1
        end;
        incr k
      done;
      { tok; line = !line; col = off - !bol + 1 })
    pairs

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let emit tok start = toks := (tok, start) :: !toks in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '#' then begin
      (* preprocessor line: skip to end of line *)
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '/' && peek 1 = Some '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      let start = !i in
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i + 1 < n do
        if src.[!i] = '*' && src.[!i + 1] = '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then err src start "unterminated comment"
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      emit (Ident (String.sub src start (!i - start))) start
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do incr i done;
      let is_float = ref false in
      if !i < n && src.[!i] = '.' then begin
        is_float := true;
        incr i;
        while !i < n && is_digit src.[!i] do incr i done
      end;
      if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
        is_float := true;
        incr i;
        if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
        while !i < n && is_digit src.[!i] do incr i done
      end;
      let text = String.sub src start (!i - start) in
      (* float suffix *)
      if !i < n && (src.[!i] = 'f' || src.[!i] = 'F') then begin
        is_float := true;
        incr i
      end;
      if !is_float then emit (Float (float_of_string text)) start
      else emit (Int (int_of_string text)) start
    end
    else begin
      let two =
        if !i + 1 < n then Some (String.sub src !i 2) else None
      in
      match two with
      | Some t when List.mem t two_char_puncts ->
          emit (Punct t) !i;
          i := !i + 2
      | _ ->
          if String.contains one_char_puncts c then begin
            emit (Punct (String.make 1 c)) !i;
            incr i
          end
          else err src !i "unexpected character %c" c
    end
  done;
  locate src (List.rev ((Eof, n) :: !toks))

let pp_token ppf = function
  | Ident s -> Format.fprintf ppf "identifier %s" s
  | Int k -> Format.fprintf ppf "integer %d" k
  | Float f -> Format.fprintf ppf "float %g" f
  | Punct p -> Format.fprintf ppf "'%s'" p
  | Eof -> Format.pp_print_string ppf "end of input"

let token_text = function
  | Ident s -> s
  | Int k -> string_of_int k
  | Float f -> Printf.sprintf "%g" f
  | Punct p -> p
  | Eof -> "<eof>"
