open Pom_poly
open Pom_dsl

exception
  Parse_error of { line : int; col : int; token : string; message : string }

type state = { mutable toks : Lexer.located list }

let eof = { Lexer.tok = Lexer.Eof; line = 0; col = 0 }

let peek_located st = match st.toks with t :: _ -> t | [] -> eof

let peek st = (peek_located st).Lexer.tok

(* Every parse error is positioned at the token the parser is looking at,
   and quotes it — the driver renders the source line with a caret. *)
let err st fmt =
  Format.kasprintf
    (fun message ->
      let l = peek_located st in
      raise
        (Parse_error
           {
             line = l.Lexer.line;
             col = l.Lexer.col;
             token = Lexer.token_text l.Lexer.tok;
             message;
           }))
    fmt

let advance st =
  match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let expect_punct st p =
  match peek st with
  | Lexer.Punct q when q = p -> advance st
  | t -> err st "expected '%s', found %a" p Lexer.pp_token t

let expect_ident st =
  match peek st with
  | Lexer.Ident s ->
      advance st;
      s
  | t -> err st "expected identifier, found %a" Lexer.pp_token t

let expect_keyword st kw =
  match peek st with
  | Lexer.Ident s when s = kw -> advance st
  | t -> err st "expected '%s', found %a" kw Lexer.pp_token t

let expect_int st =
  match peek st with
  | Lexer.Int k ->
      advance st;
      k
  | t -> err st "expected integer, found %a" Lexer.pp_token t

let dtype_of_ctype st = function
  | "float" -> Dtype.p_float32
  | "double" -> Dtype.p_float64
  | "int" | "int32_t" -> Dtype.p_int32
  | "int8_t" -> Dtype.p_int8
  | "int16_t" -> Dtype.p_int16
  | "int64_t" -> Dtype.p_int64
  | "uint8_t" -> Dtype.p_uint8
  | "uint16_t" -> Dtype.p_uint16
  | "uint32_t" -> Dtype.p_uint32
  | "uint64_t" -> Dtype.p_uint64
  | t -> err st "unsupported element type %s" t

(* ---- affine index / bound expressions over the live iterators ---- *)

type env = {
  arrays : (string * Placeholder.t) list;
  (* innermost first: (var, hull-inclusive-range, loop id) *)
  loops : (Var.t * int) list;
}

let is_live_iter env name =
  List.exists (fun ((v : Var.t), _) -> v.Var.name = name) env.loops

let rec parse_affine st env = parse_affine_sum st env

and parse_affine_sum st env =
  let lhs = ref (parse_affine_term st env) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Lexer.Punct "+" ->
        advance st;
        lhs := Linexpr.add !lhs (parse_affine_term st env)
    | Lexer.Punct "-" ->
        advance st;
        lhs := Linexpr.sub !lhs (parse_affine_term st env)
    | _ -> continue_ := false
  done;
  !lhs

and parse_affine_term st env =
  let lhs = ref (parse_affine_atom st env) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Lexer.Punct "*" ->
        advance st;
        let rhs = parse_affine_atom st env in
        if Linexpr.is_const !lhs then lhs := Linexpr.scale (Linexpr.const_of !lhs) rhs
        else if Linexpr.is_const rhs then lhs := Linexpr.scale (Linexpr.const_of rhs) !lhs
        else err st "non-affine index: product of two iterators"
    | _ -> continue_ := false
  done;
  !lhs

and parse_affine_atom st env =
  match peek st with
  | Lexer.Int k ->
      advance st;
      Linexpr.const k
  | Lexer.Punct "-" ->
      advance st;
      Linexpr.neg (parse_affine_atom st env)
  | Lexer.Punct "(" ->
      advance st;
      let e = parse_affine st env in
      expect_punct st ")";
      e
  | Lexer.Ident name when is_live_iter env name ->
      advance st;
      Linexpr.var name
  | Lexer.Ident name -> err st "unknown iterator %s in affine expression" name
  | t -> err st "unexpected %a in affine expression" Lexer.pp_token t

(* conservative hull of an affine expression given the iterators' hulls *)
let hull_range env e =
  let base = Linexpr.const_of e in
  List.fold_left
    (fun (lo, hi) ((v : Var.t), _) ->
      let c = Linexpr.coeff e v.Var.name in
      if c = 0 then (lo, hi)
      else
        let a = c * v.Var.lb and b = c * (v.Var.ub - 1) in
        (lo + min a b, hi + max a b))
    (base, base) env.loops

let linexpr_to_index e =
  let terms =
    List.map
      (fun d ->
        let c = Linexpr.coeff e d in
        if c = 1 then Expr.Ix_var d else Expr.Ix_mul (c, Expr.Ix_var d))
      (Linexpr.dims e)
  in
  let k = Linexpr.const_of e in
  match terms with
  | [] -> Expr.Ix_const k
  | t :: rest ->
      let sum = List.fold_left (fun a b -> Expr.Ix_add (a, b)) t rest in
      if k = 0 then sum else Expr.Ix_add (sum, Expr.Ix_const k)

(* ---- value expressions ---- *)

let find_array st env name =
  match List.assoc_opt name env.arrays with
  | Some p -> p
  | None -> err st "unknown array %s" name

let parse_access st env name =
  let p = find_array st env name in
  let indices = ref [] in
  while peek st = Lexer.Punct "[" do
    advance st;
    indices := parse_affine st env :: !indices;
    expect_punct st "]"
  done;
  let indices = List.rev_map linexpr_to_index !indices in
  if List.length indices <> Placeholder.rank p then
    err st "array %s has rank %d, got %d indices" name (Placeholder.rank p)
      (List.length indices);
  (p, indices)

let rec parse_expr st env = parse_expr_sum st env

and parse_expr_sum st env =
  let lhs = ref (parse_expr_term st env) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Lexer.Punct "+" ->
        advance st;
        lhs := Expr.Bin (Expr.Add, !lhs, parse_expr_term st env)
    | Lexer.Punct "-" ->
        advance st;
        lhs := Expr.Bin (Expr.Sub, !lhs, parse_expr_term st env)
    | _ -> continue_ := false
  done;
  !lhs

and parse_expr_term st env =
  let lhs = ref (parse_expr_atom st env) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Lexer.Punct "*" ->
        advance st;
        lhs := Expr.Bin (Expr.Mul, !lhs, parse_expr_atom st env)
    | Lexer.Punct "/" ->
        advance st;
        lhs := Expr.Bin (Expr.Div, !lhs, parse_expr_atom st env)
    | _ -> continue_ := false
  done;
  !lhs

and parse_expr_atom st env =
  match peek st with
  | Lexer.Float f ->
      advance st;
      Expr.Fconst f
  | Lexer.Int k ->
      advance st;
      Expr.Fconst (float_of_int k)
  | Lexer.Punct "-" ->
      advance st;
      Expr.Neg (parse_expr_atom st env)
  | Lexer.Punct "(" ->
      advance st;
      let e = parse_expr st env in
      expect_punct st ")";
      e
  | Lexer.Ident fn when fn = "fminf" || fn = "fmaxf" || fn = "fmin" || fn = "fmax" ->
      advance st;
      expect_punct st "(";
      let a = parse_expr st env in
      expect_punct st ",";
      let b = parse_expr st env in
      expect_punct st ")";
      let op = if fn = "fminf" || fn = "fmin" then Expr.Min else Expr.Max in
      Expr.Bin (op, a, b)
  | Lexer.Ident name when List.mem_assoc name env.arrays ->
      advance st;
      let p, indices = parse_access st env name in
      Expr.Load (p, indices)
  | Lexer.Ident name when is_live_iter env name ->
      err st "iterator %s used as a value (only affine indices are supported)"
        name
  | t -> err st "unexpected %a in expression" Lexer.pp_token t

(* ---- statements ---- *)

type accum = {
  func : Func.t;
  mutable counter : int;
  (* previous statement's loop-id stack (outermost first), for fusion *)
  mutable prev : (string * int list) option;
  mutable next_loop_id : int;
}

let rec parse_stmt st env acc (conds : Expr.cond list) =
  match peek st with
  | Lexer.Punct "{" ->
      advance st;
      while peek st <> Lexer.Punct "}" do
        parse_stmt st env acc conds
      done;
      advance st
  | Lexer.Ident "for" -> parse_for st env acc conds
  | Lexer.Ident _ -> parse_assign st env acc conds
  | t -> err st "expected a statement, found %a" Lexer.pp_token t

and parse_for st env acc conds =
  expect_keyword st "for";
  expect_punct st "(";
  expect_keyword st "int";
  let var_name = expect_ident st in
  if is_live_iter env var_name then
    err st "iterator %s shadows an outer loop" var_name;
  expect_punct st "=";
  let lb_expr = parse_affine st env in
  expect_punct st ";";
  let v2 = expect_ident st in
  if v2 <> var_name then err st "loop condition must test %s" var_name;
  let strict =
    match peek st with
    | Lexer.Punct "<" ->
        advance st;
        true
    | Lexer.Punct "<=" ->
        advance st;
        false
    | t -> err st "expected '<' or '<=', found %a" Lexer.pp_token t
  in
  let ub_expr = parse_affine st env in
  let ub_expr =
    if strict then ub_expr else Linexpr.add ub_expr (Linexpr.const 1)
  in
  expect_punct st ";";
  (match peek st with
  | Lexer.Ident v3 when v3 = var_name -> (
      advance st;
      match peek st with
      | Lexer.Punct "++" -> advance st
      | Lexer.Punct "+=" ->
          advance st;
          if expect_int st <> 1 then err st "only unit stride is supported"
      | t -> err st "expected '++', found %a" Lexer.pp_token t)
  | Lexer.Punct "++" ->
      advance st;
      let v3 = expect_ident st in
      if v3 <> var_name then err st "increment must update %s" var_name
  | t -> err st "expected increment of %s, found %a" var_name Lexer.pp_token t);
  expect_punct st ")";
  (* hull + residual conditions *)
  let lb_hull, _ = hull_range env lb_expr in
  let _, ub_hull = hull_range env ub_expr in
  if lb_hull >= ub_hull then err st "loop on %s has an empty hull" var_name;
  let var = Var.make var_name lb_hull ub_hull in
  let new_conds =
    (if Linexpr.is_const lb_expr then []
     else [ Expr.Cge (Expr.ix_name var_name, linexpr_to_index lb_expr) ])
    @
    if Linexpr.is_const ub_expr then []
    else [ Expr.Clt (Expr.ix_name var_name, linexpr_to_index ub_expr) ]
  in
  let id = acc.next_loop_id in
  acc.next_loop_id <- id + 1;
  let env' = { env with loops = (var, id) :: env.loops } in
  parse_stmt st env' acc (conds @ new_conds)

and parse_assign st env acc conds =
  let name = expect_ident st in
  let p, indices = parse_access st env name in
  let op =
    match peek st with
    | Lexer.Punct "=" ->
        advance st;
        `Set
    | Lexer.Punct "+=" ->
        advance st;
        `Add
    | Lexer.Punct "-=" ->
        advance st;
        `Sub
    | Lexer.Punct "*=" ->
        advance st;
        `Mul
    | t -> err st "expected assignment operator, found %a" Lexer.pp_token t
  in
  let rhs = parse_expr st env in
  expect_punct st ";";
  let body =
    match op with
    | `Set -> rhs
    | `Add -> Expr.Bin (Expr.Add, Expr.Load (p, indices), rhs)
    | `Sub -> Expr.Bin (Expr.Sub, Expr.Load (p, indices), rhs)
    | `Mul -> Expr.Bin (Expr.Mul, Expr.Load (p, indices), rhs)
  in
  register_with_conds acc env conds ~dest:(p, indices) ~body

and register_with_conds acc env conds ~dest ~body =
  let name = Printf.sprintf "s%d" acc.counter in
  acc.counter <- acc.counter + 1;
  let loops_outermost_first = List.rev env.loops in
  let iters = List.map fst loops_outermost_first in
  let ids = List.map snd loops_outermost_first in
  ignore
    (Func.compute acc.func name ~iters ~where:conds ~body ~dest ());
  (match acc.prev with
  | Some (anchor, prev_ids) ->
      let rec common a b =
        match (a, b) with
        | x :: a', y :: b' when x = y -> 1 + common a' b'
        | _ -> 0
      in
      let level = common prev_ids ids in
      if level >= 1 then
        Func.schedule acc.func (Schedule.after name ~anchor ~level)
  | None -> ());
  acc.prev <- Some (name, ids)

(* ---- top level ---- *)

let parse_param st =
  let ctype = expect_ident st in
  let dt = dtype_of_ctype st ctype in
  let name = expect_ident st in
  let shape = ref [] in
  while peek st = Lexer.Punct "[" do
    advance st;
    shape := expect_int st :: !shape;
    expect_punct st "]"
  done;
  if !shape = [] then err st "parameter %s must be an array" name;
  Placeholder.make name (List.rev !shape) dt

let parse_func src =
  let st = { toks = Lexer.tokenize src } in
  expect_keyword st "void";
  let fname = expect_ident st in
  expect_punct st "(";
  let arrays = ref [] in
  let rec params () =
    let p = parse_param st in
    arrays := (p.Placeholder.name, p) :: !arrays;
    match peek st with
    | Lexer.Punct "," ->
        advance st;
        params ()
    | _ -> ()
  in
  if peek st <> Lexer.Punct ")" then params ();
  expect_punct st ")";
  let func = Func.create fname in
  let acc = { func; counter = 0; prev = None; next_loop_id = 0 } in
  let env = { arrays = List.rev !arrays; loops = [] } in
  expect_punct st "{";
  while peek st <> Lexer.Punct "}" do
    parse_stmt st env acc []
  done;
  advance st;
  (match peek st with
  | Lexer.Eof -> ()
  | t -> err st "trailing input: %a" Lexer.pp_token t);
  if Func.computes func = [] then err st "kernel %s has no statements" fname;
  func

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  parse_func src
