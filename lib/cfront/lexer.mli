(** Tokenizer for the HLS C kernel subset accepted by {!Parse}. *)

type token =
  | Ident of string
  | Int of int
  | Float of float
  | Punct of string  (** one of the recognized operators/delimiters *)
  | Eof

(** A token with its 1-based source position (the position of its first
    character; [Eof] carries the position one past the end). *)
type located = { tok : token; line : int; col : int }

exception Lex_error of { line : int; col : int; message : string }

(** Tokenize a whole source string.  Line ([//]) and block ([/* */])
    comments and [#pragma]/[#include] lines are skipped.  Lexical errors
    raise {!Lex_error} carrying the offending position. *)
val tokenize : string -> located list

val pp_token : Format.formatter -> token -> unit

(** The raw source text of a token (["<eof>"] for [Eof]) — what a
    diagnostic quotes as "the offending token". *)
val token_text : token -> string
