(** A front-end for the HLS C kernel subset — the input format of the
    ScaleHLS flow the paper compares against ("it receives C code", Section
    II-C).  Parsing produces an ordinary DSL {!Pom_dsl.Func.t}, so C
    kernels flow through every framework, the DSE, the simulator, and the
    legality checker unchanged.

    Accepted subset (one translation unit, one kernel):

    {v
    void kernel(float A[32][32], float x[32], int32_t y[32]) {
      for (int i = 0; i < 32; i++)
        for (int j = i + 1; j <= 31; j++) {
          A[i][j] += A[j][i] * 2.0f;
          x[i] = x[i] + A[i][j];
        }
    }
    v}

    - parameters: arrays of [float], [double], or sized integer types;
    - statements: [for] loops over fresh [int] iterators with affine
      bounds ([<] or [<=], [++]/[+= 1] increment) and assignments
      ([=], [+=], [-=], [*=]) from arithmetic over array accesses and
      literals ([fminf]/[fmaxf] map to min/max);
    - array indices and loop bounds must be affine in the iterators;
      non-constant bounds become [where] conditions on a constant hull
      (triangular loops work);
    - statements sharing enclosing loops are fused with [after], exactly
      reproducing the source interleaving. *)

(** A structured parse error: the 1-based position of the token the parser
    was looking at, its source text, and what was expected — enough for the
    driver to print the offending source line with a caret. *)
exception
  Parse_error of { line : int; col : int; token : string; message : string }

val parse_func : string -> Pom_dsl.Func.t

(** Parse the contents of a file. *)
val parse_file : string -> Pom_dsl.Func.t
