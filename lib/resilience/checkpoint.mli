(** A crash-safe append-only journal of keyed records.

    The DSE searches journal every design point they evaluate ([key] = the
    report-memo key, [data] = the marshalled evaluation); a process killed
    mid-search loses at most the record being written.  On reopen, the
    journal replays every intact record and truncates a torn tail (the
    partial record a crash can leave), so resuming appends from a
    consistent prefix.

    The file starts with a versioned magic header; a file with the wrong
    header (corrupt, or a different format) is restarted empty rather than
    trusted — the journal is a cache of recomputable work, so dropping it
    degrades to recomputation, never to a wrong result. *)

type t

(** [load path] opens (creating if needed) the journal and returns it with
    the intact records, oldest first.  A torn trailing record is truncated
    away; an unrecognized header restarts the file empty. *)
val load : string -> t * (string * string) list

(** Append one record and flush it to the OS.  Thread-safe. *)
val append : t -> key:string -> data:string -> unit

val path : t -> string

val close : t -> unit
