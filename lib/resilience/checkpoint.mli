(** A crash-safe append-only journal of keyed records.

    The DSE searches journal every design point they evaluate ([key] = the
    report-memo key, [data] = the wire-encoded evaluation); a process
    killed mid-search loses at most the record being written.  On reopen,
    the journal replays every intact record and truncates a torn tail (the
    partial record a crash can leave), so resuming appends from a
    consistent prefix.

    The file is a {!Pom_wire.Frame} stream: magic + framing version, a
    [kind]/[schema version] header, then CRC-checked tag/length records.
    A file with the wrong magic or kind, or a different schema version, is
    restarted empty rather than trusted (surfaced as a POM309-worded
    note); a record with a CRC mismatch ends the intact prefix exactly
    like a torn tail (POM306/POM308 territory).  Records with unknown
    tags are skipped but preserved — a newer writer's extra record types
    do not invalidate the journal.  The journal is a cache of
    recomputable work, so every degradation path drops data and
    recomputes, never crashes and never yields a wrong result. *)

type t

(** The default stream kind written in the header (the DSE journal);
    other keyed journals (the compile server's response-cache journal,
    kind ["pom-cache-journal"]) pass their own [kind] to {!load} and
    inherit the identical truncation/restart contract. *)
val kind : string

(** The schema version of the record payload codecs.  Bump when the
    journal payload encoding changes incompatibly. *)
val version : int

(** [load path] opens (creating if needed) the journal and returns it
    with the intact records, oldest first, plus human-readable notes
    describing any degradation applied (torn tail truncated, version
    mismatch restart, corrupt record cut).  An empty note list means the
    file was pristine.

    Durability contract: every {!append} flushes to the OS, so a
    *process* crash loses at most the record being written; {!close}
    additionally fsyncs, so a cleanly closed journal survives a
    *machine* crash too.  With [fsync_each] (default false) every
    append fsyncs before returning — full machine-crash durability per
    acknowledged record, at a heavy per-append cost.

    [kind]/[version] override the stream identity (default: the DSE
    journal's); a file carrying any other kind or version is restarted
    empty, so two journal flavours can never be confused for each
    other. *)
val load :
  ?fsync_each:bool ->
  ?kind:string ->
  ?version:int ->
  string ->
  t * (string * string) list * string list

(** Append one record and flush it to the OS (and fsync it, when the
    journal was loaded with [fsync_each]).  Thread-safe. *)
val append : t -> key:string -> data:string -> unit

val path : t -> string

val close : t -> unit
