(** Cooperative deadlines and work budgets.

    A budget is an ambient, process-wide token carrying an optional
    wall-clock deadline and an optional work-tick cap.  Hot loops that can
    blow up (Fourier–Motzkin projection, integer-point enumeration,
    legality pair checking, QoR synthesis) call {!check} or {!tick} at
    their natural unit of work; when the budget is exhausted the call
    raises {!Budget_exceeded}, a typed exception the guard layer
    ({!Pom_pipeline.Pass.guarded}, the DSE searches) turns into a
    diagnostic or a clean abort.

    The token lives in an [Atomic], so pool worker domains observe the
    budget installed by the submitting domain without any plumbing: a
    deadline set before a parallel legality check bounds every worker's
    share of the work too. *)

exception
  Budget_exceeded of {
    site : string;  (** the checkpoint that noticed, e.g. ["poly:fm-projection"] *)
    reason : string;  (** human-readable cause: deadline or tick cap *)
  }

(** Install an ambient budget: [deadline_s] seconds of wall clock from now
    and/or at most [max_ticks] work ticks and/or an external [cancel]
    poll (e.g. "has this request's client disconnected?"), checked at
    every budget checkpoint — when it returns true the work aborts with
    {!Budget_exceeded} exactly like an expired deadline.  The poll runs
    on hot paths: it must be cheap (an [Atomic.get], not a syscall).
    Replaces any current budget.  With no bound given this clears the
    budget. *)
val install :
  ?deadline_s:float -> ?max_ticks:int -> ?cancel:(unit -> bool) -> unit -> unit

(** Remove the ambient budget: all checks become no-ops. *)
val clear : unit -> unit

(** Whether a budget is currently installed. *)
val active : unit -> bool

(** Run [f] under a budget, restoring the previous budget afterwards (also
    on exceptions).  With no bound given, [f] runs under the budget
    already in force. *)
val with_budget :
  ?deadline_s:float ->
  ?max_ticks:int ->
  ?cancel:(unit -> bool) ->
  (unit -> 'a) ->
  'a

(** Work ticks consumed under the current budget (0 when none). *)
val ticks : unit -> int

(** [check site] raises {!Budget_exceeded} when the deadline has passed or
    the tick cap is spent; cheap no-op without an installed budget. *)
val check : string -> unit

(** [tick ?cost site] consumes [cost] (default 1) work ticks, then
    {!check}s.  Cost should approximate the unit of work guarded (e.g. the
    number of constraints an FM combination materializes). *)
val tick : ?cost:int -> string -> unit
