type t = {
  code : string;
  pass : string option;
  context : string list;
  message : string;
}

exception Error of t

let make ~code ?pass ?(context = []) message = { code; pass; context; message }

let raise_ ~code ?pass ?context message =
  raise (Error (make ~code ?pass ?context message))

let with_context frame f =
  try f ()
  with Error e -> raise (Error { e with context = frame :: e.context })

let of_exn ~code ?pass = function
  | Budget.Budget_exceeded { site; reason } ->
      make ~code:"POM301" ?pass ~context:[ site ]
        (Printf.sprintf "budget exceeded: %s" reason)
  | Error e -> { e with pass = (match e.pass with Some _ as p -> p | None -> pass) }
  | Fault.Injected site ->
      make ~code ?pass ~context:[ site ] "injected failure"
  | Pom_wire.Wire.Corrupt { what; detail } ->
      make ~code:"POM308" ?pass ~context:[ what ]
        (Printf.sprintf "corrupt wire data: %s" detail)
  | Pom_wire.Wire.Version_mismatch { what; expected; got } ->
      make ~code:"POM309" ?pass ~context:[ what ]
        (Printf.sprintf "wire format version mismatch: expected %d, got %d"
           expected got)
  | Failure m -> make ~code ?pass m
  | exn -> make ~code ?pass (Printexc.to_string exn)

let pp ppf e =
  Format.fprintf ppf "%s error [%s]: %s" e.code
    (String.concat "/"
       ((match e.pass with Some p -> [ p ] | None -> []) @ e.context))
    e.message

let to_string e = Format.asprintf "%a" pp e
