type t = Abort | Degrade

(* Atomic for the same reason as {!Budget.current}: pool worker domains
   must apply the policy the submitting domain selected. *)
let current : t Atomic.t = Atomic.make Abort

let get () = Atomic.get current

let set p = Atomic.set current p

let degrading () = Atomic.get current = Degrade

let with_policy p f =
  let saved = Atomic.get current in
  Atomic.set current p;
  Fun.protect ~finally:(fun () -> Atomic.set current saved) f

let to_string = function Abort -> "abort" | Degrade -> "degrade"

let of_string = function
  | "abort" -> Ok Abort
  | "degrade" -> Ok Degrade
  | s -> Error (Printf.sprintf "unknown error policy %S (abort|degrade)" s)
