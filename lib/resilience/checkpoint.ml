module Wire = Pom_wire.Wire
module Frame = Pom_wire.Frame

type t = {
  path : string;
  oc : out_channel;
  lock : Mutex.t;
  fsync_each : bool;
}

(* Push the channel's buffered bytes through the OS down to the device.
   [flush] alone only reaches the kernel's page cache: a machine crash (as
   opposed to a process crash) can still lose acknowledged records.  A
   failed fsync is ignored — some filesystems (pipes, certain tmpfs
   setups) reject it, and the journal's contract degrades to flush-level
   durability there rather than failing the append. *)
let fsync_channel oc =
  flush oc;
  try Unix.fsync (Unix.descr_of_out_channel oc)
  with Unix.Unix_error _ | Sys_error _ -> ()

let default_kind = "pom-dse-journal"
let kind = default_kind
let version = 2
let record_tag = 1
let record_codec = Wire.pair Wire.string Wire.string

(* Read every intact record; returns them with the byte offset one past
   the last intact record (so a torn or corrupt tail can be truncated
   away) and notes describing anything dropped on the way. *)
let read_records ic =
  let records = ref [] in
  let notes = ref [] in
  let good = ref (pos_in ic) in
  let rec go () =
    match Frame.input_record ~what:"checkpoint" ic with
    | None -> ()
    | Some (tag, payload) when tag = record_tag -> (
        match Wire.of_string record_codec payload with
        | Ok kv ->
            records := kv :: !records;
            good := pos_in ic;
            go ()
        | Error _ ->
            (* CRC-intact but undecodable: written by a buggy or newer
               same-version writer.  Cut here like a torn tail. *)
            notes :=
              "checkpoint: undecodable record ends the intact prefix \
               (POM308)" :: !notes)
    | Some _ ->
        (* unknown record tag from a newer writer: skip, keep *)
        good := pos_in ic;
        go ()
  in
  (try go () with Wire.Corrupt _ -> ());
  (List.rev !records, !good, List.rev !notes)

type verdict =
  | Intact of (string * string) list * int * string list
  | Restart of string option  (* note, when an old file is discarded *)

let examine ~kind ~version path =
  if not (Sys.file_exists path) then Restart None
  else begin
    let ic = open_in_bin path in
    let verdict =
      match Frame.input_header ~what:"checkpoint" ic with
      | exception Wire.Corrupt _ ->
          Restart (Some "checkpoint: unrecognized journal header; restarting empty (POM306)")
      | exception Wire.Version_mismatch { expected; got; _ } ->
          Restart
            (Some
               (Printf.sprintf
                  "checkpoint: journal framing version %d (expected %d); restarting empty (POM309)"
                  got expected))
      | h when h.Frame.kind <> kind ->
          Restart
            (Some
               (Printf.sprintf
                  "checkpoint: stream kind %S is not %S; restarting empty (POM306)"
                  h.Frame.kind kind))
      | h when h.Frame.version <> version ->
          Restart
            (Some
               (Printf.sprintf
                  "checkpoint: journal schema version %d (expected %d); restarting empty (POM309)"
                  h.Frame.version version))
      | _ ->
          let records, good, notes = read_records ic in
          Intact (records, good, notes)
    in
    close_in ic;
    verdict
  end

let load ?(fsync_each = false) ?(kind = default_kind) ?(version = version) path
    =
  let records, notes =
    match examine ~kind ~version path with
    | Intact (records, good, notes) ->
        let size = (Unix.stat path).Unix.st_size in
        let notes =
          if good < size then begin
            (* torn tail from a crash mid-append: cut back to the intact
               prefix *)
            Unix.truncate path good;
            notes
            @ [
                Printf.sprintf
                  "checkpoint: truncated %d-byte torn tail (POM306)"
                  (size - good);
              ]
          end
          else notes
        in
        (records, notes)
    | Restart note ->
        let oc = open_out_bin path in
        Frame.output_header oc { Frame.kind; version };
        close_out oc;
        ([], Option.to_list note)
  in
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  ({ path; oc; lock = Mutex.create (); fsync_each }, records, notes)

let append t ~key ~data =
  Mutex.lock t.lock;
  Frame.output_record t.oc ~tag:record_tag
    (Wire.to_string record_codec (key, data));
  flush t.oc;
  if t.fsync_each then fsync_channel t.oc;
  Mutex.unlock t.lock

let path t = t.path

let close t =
  Mutex.lock t.lock;
  (* fsync before close: acknowledged records survive a machine crash
     from here on (per-append durability is opt-in via [fsync_each]) *)
  (try fsync_channel t.oc with Sys_error _ -> ());
  (try close_out t.oc with Sys_error _ -> ());
  Mutex.unlock t.lock
