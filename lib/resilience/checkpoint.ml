type t = { path : string; oc : out_channel; lock : Mutex.t }

let magic = "POMJRNL1\n"

(* Read every intact record; returns them with the byte offset one past the
   last intact record, so a torn tail can be truncated away. *)
let read_records ic =
  let records = ref [] in
  let good = ref (pos_in ic) in
  (try
     while true do
       let (key, data) : string * string = Marshal.from_channel ic in
       records := (key, data) :: !records;
       good := pos_in ic
     done
   with End_of_file | Failure _ -> ());
  (List.rev !records, !good)

let load path =
  let records, tail_ok =
    if Sys.file_exists path then begin
      let ic = open_in_bin path in
      let header = really_input_string ic (min (String.length magic) (in_channel_length ic)) in
      if header <> magic then begin
        close_in ic;
        ([], None)  (* unrecognized: restart empty *)
      end
      else begin
        let records, good = read_records ic in
        close_in ic;
        (records, Some good)
      end
    end
    else ([], None)
  in
  (match tail_ok with
  | Some good ->
      (* torn tail from a crash mid-append: cut back to the intact prefix *)
      if good < (Unix.stat path).Unix.st_size then Unix.truncate path good
  | None ->
      let oc = open_out_bin path in
      output_string oc magic;
      close_out oc);
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  ({ path; oc; lock = Mutex.create () }, records)

let append t ~key ~data =
  Mutex.lock t.lock;
  Marshal.to_channel t.oc (key, data) [];
  flush t.oc;
  Mutex.unlock t.lock

let path t = t.path

let close t =
  Mutex.lock t.lock;
  (try close_out t.oc with Sys_error _ -> ());
  Mutex.unlock t.lock
