(** Capped exponential backoff with deterministic seeded jitter.

    The client side of the self-healing story: a transient transport
    failure (daemon restarting, socket mid-handover, worker respawning)
    deserves a bounded number of delayed re-attempts, not an immediate
    hard failure — and a {e deterministic} schedule, so tests and the
    chaos harness replay the exact same timing decisions from a seed.

    Jitter is a pure hash of [(seed, attempt)]: two clients with
    different seeds desynchronize their retry storms, while one client
    re-run with the same seed sleeps the identical sequence.  The
    schedule is deadline-aware: when the remaining wall-clock budget
    cannot cover the next sleep, the last failure is re-raised
    immediately rather than overshooting the deadline. *)

type policy = {
  retries : int;  (** re-attempts after the first try (total tries = retries + 1) *)
  base_s : float;  (** backoff before the first retry, pre-jitter *)
  factor : float;  (** multiplier per further retry (2.0 = doubling) *)
  max_s : float;  (** cap on any single pre-jitter backoff *)
  seed : int;  (** jitter seed; same seed → same schedule *)
}

(** 3 retries, 0.1 s base, doubling, 2 s cap, seed 0. *)
val default : policy

(** [backoff_s policy ~attempt] is the sleep before retry [attempt]
    (1-based): [min max_s (base_s *. factor^(attempt-1))] scaled by a
    deterministic jitter factor in [0.5, 1.0] drawn from
    [(seed, attempt)].  Pure — no clock, no global state. *)
val backoff_s : policy -> attempt:int -> float

(** [run ~retry_on f] calls [f ()]; when it raises [e] with
    [retry_on e = true] and retries remain, sleeps the deterministic
    backoff and tries again.  Exceptions [retry_on] rejects propagate
    immediately.  [deadline_s] bounds the {e total} wall clock across
    every attempt and sleep: a retry whose backoff does not fit in the
    remaining budget is abandoned and the last failure re-raised, so
    [run] never outlives the deadline by more than [f]'s own final
    attempt.  [on_retry] (for trace lines) observes each scheduled
    retry before its sleep. *)
val run :
  ?policy:policy ->
  ?deadline_s:float ->
  ?on_retry:(attempt:int -> delay_s:float -> exn -> unit) ->
  retry_on:(exn -> bool) ->
  (unit -> 'a) ->
  'a
