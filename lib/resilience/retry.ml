type policy = {
  retries : int;
  base_s : float;
  factor : float;
  max_s : float;
  seed : int;
}

let default = { retries = 3; base_s = 0.1; factor = 2.0; max_s = 2.0; seed = 0 }

(* splitmix-style avalanche of (seed, attempt) onto 16 bits; enough
   entropy to decorrelate clients, cheap enough to be obviously pure *)
let jitter_u16 seed attempt =
  let x = (seed * 0x9E3779B9) lxor (attempt * 0x85EBCA6B) in
  let x = (x lxor (x lsr 15)) * 0x2C1B3C6D in
  let x = (x lxor (x lsr 12)) * 0x297A2D39 in
  (x lxor (x lsr 15)) land 0xFFFF

let backoff_s p ~attempt =
  let attempt = max 1 attempt in
  let raw = p.base_s *. (p.factor ** float_of_int (attempt - 1)) in
  let capped = Float.min p.max_s raw in
  let j = float_of_int (jitter_u16 p.seed attempt) /. 65535.0 in
  capped *. (0.5 +. (0.5 *. j))

let run ?(policy = default) ?deadline_s ?on_retry ~retry_on f =
  let deadline =
    Option.map (fun d -> Unix.gettimeofday () +. d) deadline_s
  in
  let rec go attempt =
    try f ()
    with e when retry_on e && attempt <= policy.retries ->
      let delay = backoff_s policy ~attempt in
      let fits =
        match deadline with
        | None -> true
        | Some t -> Unix.gettimeofday () +. delay < t
      in
      if not fits then raise e;
      (match on_retry with
      | Some k -> k ~attempt ~delay_s:delay e
      | None -> ());
      Unix.sleepf delay;
      go (attempt + 1)
  in
  go 1
