exception Injected of string

exception Killed of string

type kind = Fail | Timeout | Kill

type arm = { kind : kind; at : int; mutable visits : int }

(* armed sites; the mutex covers both the table and the visit counters *)
let table : (string, arm) Hashtbl.t = Hashtbl.create 8

let lock = Mutex.create ()

let armed = Atomic.make false

let reset () =
  Mutex.lock lock;
  Hashtbl.reset table;
  Atomic.set armed false;
  Mutex.unlock lock

let kind_of_string = function
  | "fail" -> Fail
  | "timeout" -> Timeout
  | "kill" -> Kill
  | k ->
      invalid_arg
        (Printf.sprintf "Fault.configure: unknown kind %S (fail|timeout|kill)" k)

let parse_term term =
  match String.split_on_char '=' term with
  | [ site; rhs ] when site <> "" -> (
      match String.split_on_char '@' rhs with
      | [ kind ] -> (site, { kind = kind_of_string kind; at = 1; visits = 0 })
      | [ kind; n ] -> (
          match int_of_string_opt n with
          | Some at when at >= 1 ->
              (site, { kind = kind_of_string kind; at; visits = 0 })
          | _ ->
              invalid_arg
                (Printf.sprintf "Fault.configure: bad visit count %S" n))
      | _ -> invalid_arg ("Fault.configure: cannot parse term " ^ term))
  | _ -> invalid_arg ("Fault.configure: cannot parse term " ^ term)

let configure spec =
  let terms =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (( <> ) "")
  in
  let parsed = List.map parse_term terms in
  Mutex.lock lock;
  Hashtbl.reset table;
  List.iter (fun (site, arm) -> Hashtbl.replace table site arm) parsed;
  Atomic.set armed (parsed <> []);
  Mutex.unlock lock

let configure_from_env () =
  match Sys.getenv_opt "POM_FAULTS" with
  | Some spec when String.trim spec <> "" -> configure spec
  | _ -> ()

let enabled () = Atomic.get armed

(* returns the kind to fire, if this visit triggers *)
let visit site =
  if not (Atomic.get armed) then None
  else begin
    Mutex.lock lock;
    let fire =
      match Hashtbl.find_opt table site with
      | Some arm ->
          arm.visits <- arm.visits + 1;
          if arm.visits = arm.at then Some arm.kind else None
      | None -> None
    in
    Mutex.unlock lock;
    fire
  end

let point site =
  match visit site with
  | None -> ()
  | Some Fail -> raise (Injected site)
  | Some Timeout ->
      raise
        (Budget.Budget_exceeded { site; reason = "injected timeout" })
  | Some Kill -> raise (Killed site)

let poll site = visit site <> None
