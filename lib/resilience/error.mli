(** Typed compile failures: the structured replacement for bare [failwith]
    on the core compile paths.

    Every resilience-layer abort carries a stable POM3xx code, the pass
    that was running (when known), a context trace (innermost first), and
    a message — so the driver can print one uniform diagnostic and honor
    the exit-code contract, and tests can assert on codes instead of
    message text.

    Code range [POM3xx] (resilience):
    - [POM300] pass failed (unexpected exception)
    - [POM301] budget exceeded (deadline or work cap)
    - [POM302] legality proof timed out — schedule conservatively rejected
    - [POM303] dependence proof timed out — dependence assumed
    - [POM304] DSE candidate evaluation failed — candidate skipped
    - [POM305] pool worker died — task failed with this typed error
    - [POM306] checkpoint journal unreadable — search restarted fresh
    - [POM307] front-end parse error
    - [POM308] corrupt wire data — artifact dropped (cache miss), never trusted
    - [POM309] wire format version mismatch — artifact from another
      format generation, discarded cleanly
    - [POM310] compile server overloaded — request rejected at admission
      (bounded queue full), never silently dropped *)

type t = {
  code : string;  (** stable identifier, e.g. ["POM301"] *)
  pass : string option;  (** the pass running when the failure surfaced *)
  context : string list;  (** innermost first *)
  message : string;
}

exception Error of t

val make : code:string -> ?pass:string -> ?context:string list -> string -> t

(** [raise_ ~code msg] raises {!Error}. *)
val raise_ : code:string -> ?pass:string -> ?context:string list -> string -> 'a

(** Re-raise [Error] with [frame] prepended to the context trace; any other
    exception passes through untouched. *)
val with_context : string -> (unit -> 'a) -> 'a

(** Build a typed error from an arbitrary exception.  A {!Budget.Budget_exceeded}
    maps to [POM301], a {!Pom_wire.Wire.Corrupt} to [POM308], a
    {!Pom_wire.Wire.Version_mismatch} to [POM309] (each keeping its site
    in the context); anything else keeps the given [code]. *)
val of_exn : code:string -> ?pass:string -> exn -> t

val pp : Format.formatter -> t -> unit

val to_string : t -> string
