(** Deterministic fault injection at named sites.

    Production code marks its failure-interesting points with
    [Fault.point "site"] (passes, memo fills, pool tasks, DSE
    evaluations); tests and the [--inject]/[POM_FAULTS] knobs arm a spec,
    and the Nth visit to an armed site fires the configured fault.  With
    nothing armed every point is a single atomic load, so the hooks stay
    in release builds.

    Spec syntax: comma-separated [site=kind@n] terms, [@n] defaulting to 1
    (the first visit).  Kinds:
    - [fail]: raise {!Injected} — an ordinary failure the guard layer
      degrades or aborts on;
    - [timeout]: raise {!Budget.Budget_exceeded} — indistinguishable from
      a genuine deadline, exercising the timeout fallbacks;
    - [kill]: raise {!Killed} — simulates the process dying at that point;
      guards re-raise it, so it unwinds everything (used by the
      checkpoint kill-and-resume test).

    Example: ["pass:hls-synthesize=fail@1,dse:evaluate=kill@5"]. *)

exception Injected of string

exception Killed of string

(** Arm a spec (replacing any previous one).  Raises [Invalid_argument] on
    a malformed spec. *)
val configure : string -> unit

(** Arm from the [POM_FAULTS] environment variable when set. *)
val configure_from_env : unit -> unit

(** Disarm everything and forget visit counts. *)
val reset : unit -> unit

(** Whether any site is armed. *)
val enabled : unit -> bool

(** Visit [site]; fires the armed fault when this is the configured visit. *)
val point : string -> unit

(** Like {!point} but never raises: returns [true] when the fault fires.
    For sites where unwinding is wrong (e.g. simulating a skipped cleanup). *)
val poll : string -> bool
