(** The ambient error-handling policy, selected by [--on-error].

    [Abort] (the default) turns any guarded failure into a typed
    {!Error.Error} that unwinds to the driver and its exit-code contract.
    [Degrade] lets each guard apply its conservative fallback instead:
    a skippable pass failure becomes a POM3xx diagnostic, a timed-out
    dependence proof assumes the dependence, a timed-out legality proof
    rejects the transform, and a failed DSE candidate evaluation is
    skipped. *)

type t = Abort | Degrade

val get : unit -> t

val set : t -> unit

(** Whether the current policy is [Degrade]. *)
val degrading : unit -> bool

(** Run [f] under [policy], restoring the previous policy afterwards. *)
val with_policy : t -> (unit -> 'a) -> 'a

val to_string : t -> string

val of_string : string -> (t, string) result
