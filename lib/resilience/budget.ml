exception Budget_exceeded of { site : string; reason : string }

type t = {
  deadline : float option;  (* absolute Unix.gettimeofday seconds *)
  max_ticks : int option;
  ticks : int Atomic.t;
}

(* The ambient budget.  An [Atomic] rather than DLS: pool worker domains
   must observe the budget the submitting domain installed, so a deadline
   covers speculative DSE evaluation and parallel legality checking without
   threading a token through every call. *)
let current : t option Atomic.t = Atomic.make None

let install ?deadline_s ?max_ticks () =
  match (deadline_s, max_ticks) with
  | None, None -> Atomic.set current None
  | _ ->
      Atomic.set current
        (Some
           {
             deadline =
               Option.map (fun s -> Unix.gettimeofday () +. s) deadline_s;
             max_ticks;
             ticks = Atomic.make 0;
           })

let clear () = Atomic.set current None

let active () = Atomic.get current <> None

let with_budget ?deadline_s ?max_ticks f =
  match (deadline_s, max_ticks) with
  | None, None -> f ()
  | _ ->
      let saved = Atomic.get current in
      install ?deadline_s ?max_ticks ();
      Fun.protect ~finally:(fun () -> Atomic.set current saved) f

let ticks () =
  match Atomic.get current with
  | None -> 0
  | Some b -> Atomic.get b.ticks

let exceeded site reason = raise (Budget_exceeded { site; reason })

let check_budget b site =
  (match b.deadline with
  | Some d ->
      let now = Unix.gettimeofday () in
      if now > d then
        exceeded site (Printf.sprintf "deadline passed %.3f s ago" (now -. d))
  | None -> ());
  match b.max_ticks with
  | Some m ->
      let n = Atomic.get b.ticks in
      if n > m then
        exceeded site (Printf.sprintf "work budget spent (%d ticks > %d)" n m)
  | None -> ()

let check site =
  match Atomic.get current with
  | None -> ()
  | Some b -> check_budget b site

let tick ?(cost = 1) site =
  match Atomic.get current with
  | None -> ()
  | Some b ->
      ignore (Atomic.fetch_and_add b.ticks (max 1 cost));
      check_budget b site
