exception Budget_exceeded of { site : string; reason : string }

type t = {
  deadline : float option;  (* absolute Unix.gettimeofday seconds *)
  max_ticks : int option;
  ticks : int Atomic.t;
  cancel : (unit -> bool) option;
      (* external cancellation (e.g. a compile server noticing its client
         disconnected): polled on every budget check, so cancellation
         propagates through the same cooperative checkpoints a deadline
         does *)
}

(* The ambient budget.  An [Atomic] rather than DLS: pool worker domains
   must observe the budget the submitting domain installed, so a deadline
   covers speculative DSE evaluation and parallel legality checking without
   threading a token through every call. *)
let current : t option Atomic.t = Atomic.make None

let install ?deadline_s ?max_ticks ?cancel () =
  match (deadline_s, max_ticks, cancel) with
  | None, None, None -> Atomic.set current None
  | _ ->
      Atomic.set current
        (Some
           {
             deadline =
               Option.map (fun s -> Unix.gettimeofday () +. s) deadline_s;
             max_ticks;
             ticks = Atomic.make 0;
             cancel;
           })

let clear () = Atomic.set current None

let active () = Atomic.get current <> None

let with_budget ?deadline_s ?max_ticks ?cancel f =
  match (deadline_s, max_ticks, cancel) with
  | None, None, None -> f ()
  | _ ->
      let saved = Atomic.get current in
      install ?deadline_s ?max_ticks ?cancel ();
      Fun.protect ~finally:(fun () -> Atomic.set current saved) f

let ticks () =
  match Atomic.get current with
  | None -> 0
  | Some b -> Atomic.get b.ticks

let exceeded site reason = raise (Budget_exceeded { site; reason })

let check_budget b site =
  (match b.cancel with
  | Some poll ->
      (* a cancel poll that itself raises must not mask the real state:
         treat an exception as "not cancelled" and let the other bounds
         decide *)
      if (try poll () with _ -> false) then
        exceeded site "request cancelled"
  | None -> ());
  (match b.deadline with
  | Some d ->
      let now = Unix.gettimeofday () in
      if now > d then
        exceeded site (Printf.sprintf "deadline passed %.3f s ago" (now -. d))
  | None -> ());
  match b.max_ticks with
  | Some m ->
      let n = Atomic.get b.ticks in
      if n > m then
        exceeded site (Printf.sprintf "work budget spent (%d ticks > %d)" n m)
  | None -> ()

let check site =
  match Atomic.get current with
  | None -> ()
  | Some b -> check_budget b site

let tick ?(cost = 1) site =
  match Atomic.get current with
  | None -> ()
  | Some b ->
      ignore (Atomic.fetch_and_add b.ticks (max 1 cost));
      check_budget b site
