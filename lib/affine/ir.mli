(** The annotated affine dialect (Section V-C): explicit loop structure
    (lowered from the polyhedral AST) with HLS pragma information carried as
    attributes on loops and arrays — the last IR before HLS C emission. *)

open Pom_dsl

(** HLS attributes attached to a loop. *)
type attrs = {
  pipeline_ii : int option;  (** target initiation interval *)
  unroll_factor : int option;
}

val no_attrs : attrs

(** A statement: destination access and right-hand side, with all indices
    rewritten over the AST loop iterators. *)
type stmt = {
  compute_name : string;
  dest : Placeholder.t * Expr.index list;
  rhs : Expr.t;
}

type node =
  | For of {
      iter : string;
      lbs : Pom_poly.Ast.bound list;
      ubs : Pom_poly.Ast.bound list;
      attrs : attrs;
      body : node list;
    }
  | If of Pom_poly.Constr.t list * node list
  | Op of stmt

(** Array-level HLS information: partition factors per dimension and
    partition kind. *)
type array_info = {
  placeholder : Placeholder.t;
  partition : int list;
  partition_kind : Schedule.partition_kind;
}

type func = { name : string; arrays : array_info list; body : node list }

(** The constant value of a bound with unit coefficient, when its
    expression is constant. *)
val const_bound : Pom_poly.Ast.bound -> int option

(** Constant trip count of a loop when both bounds are single constants. *)
val const_extent : node -> int option

(** All statements in emission order. *)
val stmts : node list -> stmt list

(** [(loops, ops)]: the number of [For] nodes and of statement [Op]s in a
    body, counted recursively (pass-statistics instrumentation). *)
val counts : node list -> int * int

val pp_node : Format.formatter -> node -> unit

val pp_func : Format.formatter -> func -> unit
