open Pom_poly
open Pom_dsl

type attrs = { pipeline_ii : int option; unroll_factor : int option }

let no_attrs = { pipeline_ii = None; unroll_factor = None }

type stmt = {
  compute_name : string;
  dest : Placeholder.t * Expr.index list;
  rhs : Expr.t;
}

type node =
  | For of {
      iter : string;
      lbs : Ast.bound list;
      ubs : Ast.bound list;
      attrs : attrs;
      body : node list;
    }
  | If of Constr.t list * node list
  | Op of stmt

type array_info = {
  placeholder : Placeholder.t;
  partition : int list;
  partition_kind : Schedule.partition_kind;
}

type func = { name : string; arrays : array_info list; body : node list }

let const_bound (b : Ast.bound) =
  if b.coef = 1 && Linexpr.is_const b.expr then Some (Linexpr.const_of b.expr)
  else None

let const_extent = function
  | For { lbs = [ lb ]; ubs = [ ub ]; _ } -> (
      match (const_bound lb, const_bound ub) with
      | Some l, Some u -> Some (u - l + 1)
      | _ -> None)
  | For _ | If _ | Op _ -> None

let rec stmts_of_node = function
  | For { body; _ } | If (_, body) -> stmts body
  | Op s -> [ s ]

and stmts nodes = List.concat_map stmts_of_node nodes

let counts nodes =
  let rec go (loops, ops) = function
    | For { body; _ } -> List.fold_left go (loops + 1, ops) body
    | If (_, body) -> List.fold_left go (loops, ops) body
    | Op _ -> (loops, ops + 1)
  in
  List.fold_left go (0, 0) nodes

let pp_attrs ppf a =
  (match a.pipeline_ii with
  | Some ii -> Format.fprintf ppf " {pipeline II=%d}" ii
  | None -> ());
  match a.unroll_factor with
  | Some f -> Format.fprintf ppf " {unroll %d}" f
  | None -> ()

let pp_bounds pp_one combiner ppf = function
  | [ b ] -> pp_one ppf b
  | bs ->
      Format.fprintf ppf "%s(%a)" combiner
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           pp_one)
        bs

let pp_lb ppf (b : Ast.bound) =
  if b.coef = 1 then Linexpr.pp ppf b.expr
  else Format.fprintf ppf "ceil((%a)/%d)" Linexpr.pp b.expr b.coef

let pp_ub ppf (b : Ast.bound) =
  if b.coef = 1 then Linexpr.pp ppf b.expr
  else Format.fprintf ppf "floor((%a)/%d)" Linexpr.pp b.expr b.coef

let rec pp_node ppf = function
  | For { iter; lbs; ubs; attrs; body } ->
      Format.fprintf ppf "@[<v 2>affine.for %s = %a to %a%a {@,%a@]@,}" iter
        (pp_bounds pp_lb "max") lbs (pp_bounds pp_ub "min") ubs pp_attrs attrs
        pp_body body
  | If (guards, body) ->
      Format.fprintf ppf "@[<v 2>affine.if (%a) {@,%a@]@,}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " and ")
           Constr.pp)
        guards pp_body body
  | Op s ->
      let p, ixs = s.dest in
      Format.fprintf ppf "%s(%a) = %a  // %s" p.Placeholder.name
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           Expr.pp_index)
        ixs Expr.pp s.rhs s.compute_name

and pp_body ppf body =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_node ppf body

let pp_func ppf f =
  Format.fprintf ppf "@[<v 2>func @%s {@,%a@]@,}" f.name pp_body f.body
