module W = Pom_wire.Wire

let dtype =
  W.with_pp Dtype.pp
  @@ W.enum "dtype"
       [
         ("I8", Dtype.I8); ("I16", Dtype.I16); ("I32", Dtype.I32);
         ("I64", Dtype.I64); ("U8", Dtype.U8); ("U16", Dtype.U16);
         ("U32", Dtype.U32); ("U64", Dtype.U64); ("F32", Dtype.F32);
         ("F64", Dtype.F64);
       ]

let var =
  W.with_pp Var.pp
  @@ W.record3 "var"
       (W.field "name" W.string (fun (v : Var.t) -> v.name))
       (W.field "lb" W.int (fun (v : Var.t) -> v.lb))
       (W.field "ub" W.int (fun (v : Var.t) -> v.ub))
       Var.make

let placeholder =
  W.with_pp Placeholder.pp
  @@ W.record3 "placeholder"
       (W.field "name" W.string (fun (p : Placeholder.t) -> p.name))
       (W.field "shape" (W.list W.int) (fun (p : Placeholder.t) -> p.shape))
       (W.field "dtype" dtype (fun (p : Placeholder.t) -> p.dtype))
       Placeholder.make

let index =
  W.with_pp Expr.pp_index
  @@ W.fix "index" (fun index ->
         W.union "index"
           [
             W.case 0 "Ix_var" W.string
               (fun s -> Expr.Ix_var s)
               (function Expr.Ix_var s -> Some s | _ -> None);
             W.case 1 "Ix_const" W.int
               (fun k -> Expr.Ix_const k)
               (function Expr.Ix_const k -> Some k | _ -> None);
             W.case 2 "Ix_add" (W.pair index index)
               (fun (a, b) -> Expr.Ix_add (a, b))
               (function Expr.Ix_add (a, b) -> Some (a, b) | _ -> None);
             W.case 3 "Ix_sub" (W.pair index index)
               (fun (a, b) -> Expr.Ix_sub (a, b))
               (function Expr.Ix_sub (a, b) -> Some (a, b) | _ -> None);
             W.case 4 "Ix_mul" (W.pair W.int index)
               (fun (k, i) -> Expr.Ix_mul (k, i))
               (function Expr.Ix_mul (k, i) -> Some (k, i) | _ -> None);
           ])

let cond =
  let ixpair = W.pair index index in
  W.union "cond"
    [
      W.case 0 "Cge" ixpair
        (fun (a, b) -> Expr.Cge (a, b))
        (function Expr.Cge (a, b) -> Some (a, b) | _ -> None);
      W.case 1 "Cle" ixpair
        (fun (a, b) -> Expr.Cle (a, b))
        (function Expr.Cle (a, b) -> Some (a, b) | _ -> None);
      W.case 2 "Cgt" ixpair
        (fun (a, b) -> Expr.Cgt (a, b))
        (function Expr.Cgt (a, b) -> Some (a, b) | _ -> None);
      W.case 3 "Clt" ixpair
        (fun (a, b) -> Expr.Clt (a, b))
        (function Expr.Clt (a, b) -> Some (a, b) | _ -> None);
      W.case 4 "Ceq" ixpair
        (fun (a, b) -> Expr.Ceq (a, b))
        (function Expr.Ceq (a, b) -> Some (a, b) | _ -> None);
    ]

let binop =
  W.enum "binop"
    [
      ("Add", Expr.Add); ("Sub", Expr.Sub); ("Mul", Expr.Mul);
      ("Div", Expr.Div); ("Min", Expr.Min); ("Max", Expr.Max);
    ]

let expr =
  W.with_pp Expr.pp
  @@ W.fix "expr" (fun expr ->
         W.union "expr"
           [
             W.case 0 "Load"
               (W.pair placeholder (W.list index))
               (fun (p, ixs) -> Expr.Load (p, ixs))
               (function Expr.Load (p, ixs) -> Some (p, ixs) | _ -> None);
             W.case 1 "Fconst" W.float
               (fun f -> Expr.Fconst f)
               (function Expr.Fconst f -> Some f | _ -> None);
             W.case 2 "Bin"
               (W.triple binop expr expr)
               (fun (op, a, b) -> Expr.Bin (op, a, b))
               (function Expr.Bin (op, a, b) -> Some (op, a, b) | _ -> None);
             W.case 3 "Neg" expr
               (fun e -> Expr.Neg e)
               (function Expr.Neg e -> Some e | _ -> None);
           ])

let compute =
  W.with_pp Compute.pp
  @@ W.record5 "compute"
       (W.field "name" W.string (fun (c : Compute.t) -> c.name))
       (W.field "iters" (W.list var) (fun (c : Compute.t) -> c.iters))
       (W.field "where" (W.list cond) (fun (c : Compute.t) -> c.where))
       (W.field "body" expr (fun (c : Compute.t) -> c.body))
       (W.field "dest"
          (W.pair placeholder (W.list index))
          (fun (c : Compute.t) -> c.dest))
       (fun name iters where body dest ->
         Compute.make name ~iters ~where ~body ~dest ())

let partition_kind =
  W.enum "partition_kind"
    [
      ("Cyclic", Schedule.Cyclic); ("Block", Schedule.Block);
      ("Complete", Schedule.Complete);
    ]

let schedule =
  let open Schedule in
  W.with_pp Schedule.pp
  @@ W.union "schedule"
       [
         W.case 0 "Interchange"
           (W.triple W.string W.string W.string)
           (fun (compute, d1, d2) -> Interchange { compute; d1; d2 })
           (function
             | Interchange { compute; d1; d2 } -> Some (compute, d1, d2)
             | _ -> None);
         W.case 1 "Split"
           (W.record5 "split"
              (W.field "compute" W.string (fun (c, _, _, _, _) -> c))
              (W.field "dim" W.string (fun (_, d, _, _, _) -> d))
              (W.field "factor" W.int (fun (_, _, f, _, _) -> f))
              (W.field "outer" W.string (fun (_, _, _, o, _) -> o))
              (W.field "inner" W.string (fun (_, _, _, _, i) -> i))
              (fun c d f o i -> (c, d, f, o, i)))
           (fun (compute, dim, factor, outer, inner) ->
             Split { compute; dim; factor; outer; inner })
           (function
             | Split { compute; dim; factor; outer; inner } ->
                 Some (compute, dim, factor, outer, inner)
             | _ -> None);
         W.case 2 "Tile"
           (W.record9 "tile"
              (W.field "compute" W.string (fun ((c, _, _), _, _, _) -> c))
              (W.field "d1" W.string (fun ((_, d1, _), _, _, _) -> d1))
              (W.field "d2" W.string (fun ((_, _, d2), _, _, _) -> d2))
              (W.field "f1" W.int (fun (_, (f1, _), _, _) -> f1))
              (W.field "f2" W.int (fun (_, (_, f2), _, _) -> f2))
              (W.field "o1" W.string (fun (_, _, (o1, _), _) -> o1))
              (W.field "o2" W.string (fun (_, _, (_, o2), _) -> o2))
              (W.field "i1" W.string (fun (_, _, _, (i1, _)) -> i1))
              (W.field "i2" W.string (fun (_, _, _, (_, i2)) -> i2))
              (fun c d1 d2 f1 f2 o1 o2 i1 i2 ->
                ((c, d1, d2), (f1, f2), (o1, o2), (i1, i2))))
           (fun ((compute, d1, d2), (f1, f2), (o1, o2), (i1, i2)) ->
             Tile { compute; d1; d2; f1; f2; o1; o2; i1; i2 })
           (function
             | Tile { compute; d1; d2; f1; f2; o1; o2; i1; i2 } ->
                 Some ((compute, d1, d2), (f1, f2), (o1, o2), (i1, i2))
             | _ -> None);
         W.case 3 "Skew"
           (W.record6 "skew"
              (W.field "compute" W.string (fun (c, _, _, _, _, _) -> c))
              (W.field "dims" (W.pair W.string W.string)
                 (fun (_, ds, _, _, _, _) -> ds))
              (W.field "f1" W.int (fun (_, _, f1, _, _, _) -> f1))
              (W.field "f2" W.int (fun (_, _, _, f2, _, _) -> f2))
              (W.field "n1" W.string (fun (_, _, _, _, n1, _) -> n1))
              (W.field "n2" W.string (fun (_, _, _, _, _, n2) -> n2))
              (fun c ds f1 f2 n1 n2 -> (c, ds, f1, f2, n1, n2)))
           (fun (compute, (d1, d2), f1, f2, n1, n2) ->
             Skew { compute; d1; d2; f1; f2; n1; n2 })
           (function
             | Skew { compute; d1; d2; f1; f2; n1; n2 } ->
                 Some (compute, (d1, d2), f1, f2, n1, n2)
             | _ -> None);
         W.case 4 "After"
           (W.triple W.string W.string W.int)
           (fun (compute, anchor, level) -> After { compute; anchor; level })
           (function
             | After { compute; anchor; level } -> Some (compute, anchor, level)
             | _ -> None);
         W.case 5 "Fuse"
           (W.triple W.string W.string W.int)
           (fun (c1, c2, level) -> Fuse { c1; c2; level })
           (function Fuse { c1; c2; level } -> Some (c1, c2, level) | _ -> None);
         W.case 6 "Reverse"
           (W.triple W.string W.string W.string)
           (fun (compute, dim, new_dim) -> Reverse { compute; dim; new_dim })
           (function
             | Reverse { compute; dim; new_dim } -> Some (compute, dim, new_dim)
             | _ -> None);
         W.case 7 "Pipeline"
           (W.triple W.string W.string W.int)
           (fun (compute, dim, ii) -> Pipeline { compute; dim; ii })
           (function
             | Pipeline { compute; dim; ii } -> Some (compute, dim, ii)
             | _ -> None);
         W.case 8 "Unroll"
           (W.triple W.string W.string W.int)
           (fun (compute, dim, factor) -> Unroll { compute; dim; factor })
           (function
             | Unroll { compute; dim; factor } -> Some (compute, dim, factor)
             | _ -> None);
         W.case 9 "Partition"
           (W.triple W.string (W.list W.int) partition_kind)
           (fun (array, factors, kind) -> Partition { array; factors; kind })
           (function
             | Partition { array; factors; kind } -> Some (array, factors, kind)
             | _ -> None);
         W.case 10 "Auto_dse" W.unit
           (fun () -> Auto_dse)
           (function Auto_dse -> Some () | _ -> None);
       ]

let func =
  W.with_pp Func.pp
  @@ W.conv "func"
       (fun f -> (Func.name f, Func.computes f, Func.directives f))
       (fun (name, computes, directives) ->
         let f = Func.create name in
         List.iter (Func.add_compute f) computes;
         List.iter (Func.schedule f) directives;
         f)
       (W.triple W.string (W.list compute) (W.list schedule))
