(** Wire codecs for the DSL layer: data types, iterators, placeholders,
    expressions, computes, schedule directives, and whole functions.

    The [func] codec rebuilds through the public builder API
    ({!Func.create}/{!Func.add_compute}/{!Func.schedule}), so a decoded
    function re-runs the same registration checks as one written by
    hand — corrupt input that violates them surfaces as a typed
    {!Pom_wire.Wire.Corrupt}, not as a malformed value. *)

val dtype : Dtype.t Pom_wire.Wire.t
val var : Var.t Pom_wire.Wire.t
val placeholder : Placeholder.t Pom_wire.Wire.t
val index : Expr.index Pom_wire.Wire.t
val cond : Expr.cond Pom_wire.Wire.t
val expr : Expr.t Pom_wire.Wire.t
val compute : Compute.t Pom_wire.Wire.t
val partition_kind : Schedule.partition_kind Pom_wire.Wire.t
val schedule : Schedule.t Pom_wire.Wire.t
val func : Func.t Pom_wire.Wire.t
