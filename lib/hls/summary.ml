open Pom_poly
open Pom_dsl
open Pom_polyir

type loop = {
  dim : string;
  extent : int;
  unroll : int;
  pipelined : bool;
  target_ii : int;
}

type dep = (int * int) list

type t = {
  stmt : Stmt_poly.t;
  loops : loop list;
  total_points : int;
  body : Opchar.body;
  deps : dep list;
  group : int;
  access_dims : (string * string list list) list;
  rectangular : bool;
}

let transformed_accesses (s : Stmt_poly.t) =
  let remap (a : Dep.access) =
    {
      a with
      Dep.indices = List.map (Linexpr.subst_all s.Stmt_poly.index_map) a.indices;
    }
  in
  ( remap (Compute.write_access s.Stmt_poly.compute),
    List.map remap (Compute.read_accesses s.Stmt_poly.compute) )

(* Domain with the dimension tuple reordered to schedule order, so that
   Dep.analyze's lexicographic levels coincide with loop levels. *)
let ordered_domain (s : Stmt_poly.t) =
  Basic_set.make (Sched.dims s.Stmt_poly.sched)
    (Basic_set.constraints s.Stmt_poly.domain)

(* Dependence analysis dominates profiling cost and depends only on the
   domain, schedule, and index map — not the hardware attributes the DSE
   mutates between trials — so it memoizes well across a search.  Parallel
   candidate evaluation synthesizes on worker domains, so the cache is
   mutex-guarded; the analysis itself runs outside the lock (racing domains
   may compute the same entry twice — the results are equal, last write
   wins). *)
let dep_cache : (string, dep list) Hashtbl.t = Hashtbl.create 256

let dep_cache_lock = Mutex.create ()

let dep_cache_hits = ref 0

let dep_cache_misses = ref 0

(* (hits, misses) since process start; reads under the lock so the pair is
   consistent even while worker domains are analyzing *)
let dep_cache_stats () =
  Mutex.lock dep_cache_lock;
  let s = (!dep_cache_hits, !dep_cache_misses) in
  Mutex.unlock dep_cache_lock;
  s

let analyze_deps_uncached (s : Stmt_poly.t) =
  let domain = ordered_domain s in
  let write, reads = transformed_accesses s in
  List.concat_map
    (fun read ->
      match Dep.analyze ~domain ~source:write ~sink:read with
      | Some d ->
          [
            List.filter_map
              (fun (ld : Dep.level_dep) ->
                match (List.nth ld.Dep.distance (ld.Dep.level - 1)).Dep.dmin with
                | Some dist -> Some (ld.Dep.level, dist)
                | None -> None)
              d.Dep.carried;
          ]
      | None -> [])
    reads

let analyze_deps (s : Stmt_poly.t) =
  let key = Format.asprintf "%a" Stmt_poly.pp { s with Stmt_poly.hw = Stmt_poly.no_hw } in
  Mutex.lock dep_cache_lock;
  let cached = Hashtbl.find_opt dep_cache key in
  (match cached with
  | Some _ -> incr dep_cache_hits
  | None -> incr dep_cache_misses);
  Mutex.unlock dep_cache_lock;
  match cached with
  | Some deps -> deps
  | None ->
      let deps = analyze_deps_uncached s in
      Mutex.lock dep_cache_lock;
      if Hashtbl.length dep_cache > 20_000 then Hashtbl.reset dep_cache;
      Hashtbl.replace dep_cache key deps;
      Mutex.unlock dep_cache_lock;
      deps

let of_stmt _prog (s : Stmt_poly.t) =
  let order = Sched.dims s.Stmt_poly.sched in
  let loops =
    List.map
      (fun dim ->
        let lb, ub = Basic_set.const_range dim s.Stmt_poly.domain in
        let extent =
          match (lb, ub) with
          | Some l, Some u -> u - l + 1
          | _ ->
              invalid_arg
                (Printf.sprintf "Summary: unbounded dimension %s in %s" dim
                   (Stmt_poly.name s))
        in
        let unroll =
          match List.assoc_opt dim s.Stmt_poly.hw.Stmt_poly.unrolls with
          | Some f -> min f extent
          | None -> 1
        in
        let pipelined, target_ii =
          match s.Stmt_poly.hw.Stmt_poly.pipeline with
          | Some (d, ii) when d = dim -> (true, ii)
          | _ -> (false, 1)
        in
        { dim; extent; unroll; pipelined; target_ii })
      order
  in
  let write, reads = transformed_accesses s in
  let access_dims =
    List.map
      (fun (a : Dep.access) ->
        (a.Dep.array, List.map Linexpr.dims a.Dep.indices))
      (write :: reads)
  in
  let total_points = Compute.trip_count s.Stmt_poly.compute in
  let rectangular =
    total_points = List.fold_left (fun a l -> a * l.extent) 1 loops
  in
  {
    stmt = s;
    loops;
    total_points;
    body = Opchar.analyze_body s.Stmt_poly.compute;
    deps = analyze_deps s;
    group = Sched.const_at s.Stmt_poly.sched 0;
    access_dims;
    rectangular;
  }

let profile_all prog =
  List.map (of_stmt prog) prog.Prog.stmts

let pipeline_level t =
  let rec go k = function
    | [] -> None
    | l :: rest -> if l.pipelined then Some k else go (k + 1) rest
  in
  go 1 t.loops

let pp ppf t =
  Format.fprintf ppf "@[<v 2>%s (group %d, %d points):@,%a@,deps: %s@]"
    (Stmt_poly.name t.stmt) t.group t.total_points
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf l ->
         Format.fprintf ppf "%s extent=%d unroll=%d%s" l.dim l.extent l.unroll
           (if l.pipelined then Printf.sprintf " pipeline(II=%d)" l.target_ii
            else "")))
    t.loops
    (String.concat "; "
       (List.map
          (fun d ->
            String.concat ","
              (List.map (fun (l, dist) -> Printf.sprintf "L%d:%d" l dist) d))
          t.deps))
