type group_eval = {
  group : int;
  pipelined : bool;
  achieved_ii : int;
  latency : int;
  depth : int;
  phys_copies : (string * int) list;
}

let cdiv a b = (a + b - 1) / b

let stmt_name (p : Summary.t) = Pom_polyir.Stmt_poly.name p.Summary.stmt

(* Loop-control overhead per sequential iteration grows with nest depth. *)
let seq_iter_cost (p : Summary.t) =
  p.Summary.body.Opchar.crit_path + (2 * List.length p.Summary.loops)

(* Unrolling a level whose dimension carries a dependence yields a serial
   chain, not parallel copies. *)
let effective_unroll (p : Summary.t) =
  List.fold_left
    (fun acc (k, (l : Summary.loop)) ->
      let carried =
        List.exists (List.exists (fun (lvl, _) -> lvl = k)) p.Summary.deps
      in
      if carried then acc else acc * l.Summary.unroll)
    1
    (List.mapi (fun i l -> (i + 1, l)) p.Summary.loops)

let sequential_stmt_latency (p : Summary.t) =
  let u = max 1 (effective_unroll p) in
  cdiv p.Summary.total_points u * seq_iter_cost p

let sequential_latency profiles =
  List.fold_left (fun acc p -> acc + sequential_stmt_latency p) 0 profiles

(* Per-statement quantities relative to the group's pipeline level [p]. *)
type pipe_view = {
  profile : Summary.t;
  level : int;  (* the group's pipeline level *)
  outer_trips : int;  (* product of extents strictly outside level p *)
  pipe_trips : int;  (* extent of level p *)
  body_points : int;  (* domain points per level-p iteration *)
  unrolled : int;  (* parallel copies inside the body *)
  serial : int;  (* body_points / unrolled, issued serially *)
}

let view_of ~level (p : Summary.t) =
  let loops = p.Summary.loops in
  let outer_trips =
    List.fold_left ( * ) 1
      (List.filteri (fun i _ -> i + 1 < level) loops
      |> List.map (fun l -> l.Summary.extent))
  in
  let pipe_trips = (List.nth loops (level - 1)).Summary.extent in
  let body_points =
    max 1 (p.Summary.total_points / max 1 (outer_trips * pipe_trips))
  in
  let unrolled =
    List.fold_left ( * ) 1
      (List.filteri (fun i _ -> i + 1 > level) loops
      |> List.map (fun l -> l.Summary.unroll))
  in
  let unrolled = max 1 (min unrolled body_points) in
  { profile = p; level; outer_trips; pipe_trips; body_points; unrolled;
    serial = cdiv body_points unrolled }

let arith_latency = Opchar.chain_arith_latency

(* Recurrence-limited II for one statement.

   A dependence carried at the pipeline level with distance d forces
   II >= chain/d, where the chain threads through any unrolled copies along
   inner dimensions the dependence also traverses.

   A dependence carried only at an inner level that is not fully unrolled
   serializes the body: the chain of e/u dependent links (each through u
   unrolled copies) must complete within one initiation interval. *)
let rec_mii ~level v =
  let p = v.profile in
  let arith = arith_latency p.Summary.body in
  let mem = Opchar.load.Opchar.latency + Opchar.store.Opchar.latency in
  List.fold_left
    (fun acc dep ->
      match List.assoc_opt level dep with
      | Some dist ->
          let chained_copies =
            List.fold_left
              (fun c (lvl, d) ->
                if lvl > level then
                  let l = List.nth p.Summary.loops (lvl - 1) in
                  c * max 1 (l.Summary.unroll / max 1 d)
                else c)
              1 dep
          in
          max acc (cdiv (mem + (arith * chained_copies)) dist)
      | None ->
          let serial_chain =
            List.fold_left
              (fun c (lvl, d) ->
                if lvl > level then
                  let l = List.nth p.Summary.loops (lvl - 1) in
                  if l.Summary.unroll < l.Summary.extent then
                    c * max 1 (l.Summary.extent / max 1 d)
                  else c
                else c)
              1 dep
          in
          if serial_chain > 1 then max acc (mem + (arith * serial_chain))
          else acc)
    1 p.Summary.deps

let recurrence_mii ~level p = rec_mii ~level (view_of ~level p)

(* Port pressure: each access instance generates one port operation per
   distinct address reached within a level-p iteration — the product of the
   inner extents of the dimensions its index actually reads (accesses not
   indexed by an inner dimension are broadcast).  Partitioning an array
   dimension multiplies the banks reachable only for accesses whose index
   varies along that dimension within the body; the per-array demand is the
   sum of each access's bank-normalized operations, served by dual ports. *)
let res_mii ~partitions views =
  let demand = Hashtbl.create 8 in
  List.iter
    (fun v ->
      let loops = v.profile.Summary.loops in
      let inner_extent dim =
        let rec go k = function
          | [] -> None
          | (l : Summary.loop) :: rest ->
              if l.Summary.dim = dim then Some (k, l.Summary.extent)
              else go (k + 1) rest
        in
        go 1 loops
      in
      let varies dims =
        List.exists
          (fun d ->
            match inner_extent d with Some (k, _) -> k > v.level | None -> false)
          dims
      in
      List.iter
        (fun (array, per_dim) ->
          let n =
            let all_dims = List.sort_uniq String.compare (List.concat per_dim) in
            List.fold_left
              (fun acc d ->
                match inner_extent d with
                | Some (k, e) when k > v.level -> acc * e
                | _ -> acc)
              1 all_dims
          in
          let factors = partitions array in
          let banks =
            List.fold_left
              (fun acc (k, f) ->
                if f > 1 && varies (List.nth per_dim k) then acc * f else acc)
              1
              (List.mapi (fun k f -> (k, f)) factors)
          in
          let cost = float_of_int n /. float_of_int (max 1 banks) in
          Hashtbl.replace demand array
            (cost +. Option.value ~default:0.0 (Hashtbl.find_opt demand array)))
        v.profile.Summary.access_dims)
    views;
  Hashtbl.fold
    (fun _ cost acc -> max acc (int_of_float (Float.ceil (cost /. 2.0))))
    demand 1

(* Statements sharing the leading scalar constant are one fusion group, but
   they overlap in one pipeline only when their schedules agree on every
   scalar position before the pipelined level; statements sequenced by an
   inner scalar (e.g. the two ping-pong sweeps inside a shared time loop)
   run as consecutive pipelines whose latencies add. *)
let copipeline_key (p : Summary.t) =
  let level =
    match Summary.pipeline_level p with
    | Some l -> l
    | None -> List.length p.Summary.loops + 1
  in
  let sched = p.Summary.stmt.Pom_polyir.Stmt_poly.sched in
  (level, List.init level (fun k -> Pom_poly.Sched.const_at sched k))

let eval_subgroup ~partitions profiles =
  let group =
    match profiles with
    | p :: _ -> p.Summary.group
    | [] -> invalid_arg "Latency.eval_group: empty group"
  in
  let levels = List.filter_map Summary.pipeline_level profiles in
  match levels with
  | [] ->
      let latency = sequential_latency profiles in
      {
        group;
        pipelined = false;
        achieved_ii = 1;
        latency;
        depth = 0;
        phys_copies =
          List.map
            (fun p ->
              (stmt_name p,
               List.fold_left (fun a l -> a * l.Summary.unroll) 1 p.Summary.loops))
            profiles;
      }
  | _ ->
      let level = List.fold_left min max_int levels in
      let views = List.map (view_of ~level) profiles in
      let target =
        List.fold_left
          (fun acc p ->
            match Summary.pipeline_level p with
            | Some l when l = level ->
                max acc (List.nth p.Summary.loops (l - 1)).Summary.target_ii
            | _ -> acc)
          1 profiles
      in
      let rec_bound =
        List.fold_left (fun acc v -> max acc (rec_mii ~level v)) 1 views
      in
      let serial_bound =
        List.fold_left (fun acc v -> max acc v.serial) 1 views
      in
      let ii =
        List.fold_left max 1
          [ target; rec_bound; serial_bound; res_mii ~partitions views ]
      in
      let depth =
        4
        + List.fold_left
            (fun acc p -> max acc p.Summary.body.Opchar.crit_path)
            0 profiles
      in
      let outer = List.fold_left (fun acc v -> max acc v.outer_trips) 1 views in
      let pipe_trips =
        List.fold_left (fun acc v -> max acc v.pipe_trips) 1 views
      in
      (* Perfect rectangular nests are flattened into a single pipeline
         (one fill/drain); non-rectangular (skewed) nests refill per outer
         iteration. *)
      let flattenable =
        List.for_all (fun v -> v.profile.Summary.rectangular) views
      in
      let latency =
        if flattenable then depth + ((outer * pipe_trips) - 1) * ii + 2
        else (outer * (depth + ((pipe_trips - 1) * ii))) + (2 * outer)
      in
      {
        group;
        pipelined = true;
        achieved_ii = ii;
        latency;
        depth;
        phys_copies =
          List.map
            (fun v -> (stmt_name v.profile, max 1 (cdiv v.body_points ii)))
            views;
      }

let eval_group ~partitions profiles =
  let keys =
    List.sort_uniq compare (List.map copipeline_key profiles)
  in
  let subs =
    List.map
      (fun key ->
        eval_subgroup ~partitions
          (List.filter (fun p -> copipeline_key p = key) profiles))
      keys
  in
  match subs with
  | [ one ] -> one
  | _ ->
      {
        group =
          (match profiles with
          | p :: _ -> p.Summary.group
          | [] -> invalid_arg "Latency.eval_group: empty group");
        pipelined = List.exists (fun e -> e.pipelined) subs;
        achieved_ii = List.fold_left (fun a e -> max a e.achieved_ii) 1 subs;
        latency = List.fold_left (fun a e -> a + e.latency) 0 subs;
        depth = List.fold_left (fun a e -> max a e.depth) 0 subs;
        phys_copies = List.concat_map (fun e -> e.phys_copies) subs;
      }

let eval_program ~partitions profiles =
  let groups =
    List.sort_uniq Int.compare (List.map (fun p -> p.Summary.group) profiles)
  in
  let evals =
    List.map
      (fun g ->
        eval_group ~partitions
          (List.filter (fun p -> p.Summary.group = g) profiles))
      groups
  in
  (evals, List.fold_left (fun acc e -> acc + e.latency) 0 evals)
