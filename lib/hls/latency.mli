(** The latency half of the virtual HLS synthesizer: achieved initiation
    intervals and cycle counts per fusion group.

    II = max(target, RecMII, ResMII, serial-issue bound) where RecMII stems
    from loop-carried dependences at the pipelined level (with unrolled
    accumulation chains lengthening the recurrence), ResMII from memory-port
    pressure (2 ports per array bank, banks = array-partition product), and
    the serial bound from inner iterations left neither unrolled nor
    flattened. *)

type group_eval = {
  group : int;
  pipelined : bool;
  achieved_ii : int;  (** 1 when not pipelined *)
  latency : int;
  depth : int;
  (* statement name -> physical operator copies after II sharing *)
  phys_copies : (string * int) list;
}

(** [eval_group ~partitions profiles] evaluates one fusion group (all
    profiles share the leading scalar constant).  [partitions] maps an
    array name to its per-dimension partition factors ([[]] or all-ones if
    unpartitioned). *)
val eval_group : partitions:(string -> int list) -> Summary.t list -> group_eval

(** Evaluate every group of a program; returns the groups in execution
    order and the total (summed) latency. *)
val eval_program :
  partitions:(string -> int list) -> Summary.t list -> group_eval list * int

(** Latency of the untransformed, unannotated program (the paper's
    "original C code without any optimization" baseline). *)
val sequential_latency : Summary.t list -> int

(** Materialized parallel copies of one statement: the product of its
    unroll factors over the levels that do not carry a dependence (unrolled
    copies along a dependence-carrying level form a serial chain, not
    parallelism).  This is the quantity the static analyzer's profitability
    oracle compares between DSE candidates. *)
val effective_unroll : Summary.t -> int

(** Recurrence-limited minimum II of one statement when pipelined at
    [level] (1-based, outermost first): the dependence-chain bound the
    achieved II can never beat, independent of partitioning.  [1] when no
    dependence constrains the level. *)
val recurrence_mii : level:int -> Summary.t -> int
