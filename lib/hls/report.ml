open Pom_polyir

type t = {
  latency : int;
  group_latencies : (int * int) list;
  iis : (int * int) list;
  usage : Resource.usage;
  power : float;
  feasible : bool;
  parallelism : float;
  unroll_products : (string * int) list;
}

let partition_fn (prog : Prog.t) array =
  match List.assoc_opt array prog.Prog.partitions with
  | Some (factors, _) -> factors
  | None -> []

type latency_mode = [ `Sequential | `Dataflow ]

(* Process-wide count of full (cold) syntheses, so callers layering a memo
   on top of [synthesize] can check that a cache hit really skipped the
   model evaluation. *)
let synth_counter = Atomic.make 0

let synth_count () = Atomic.get synth_counter

let synthesize ?(composition = Resource.Reuse) ?(latency_mode = `Sequential)
    ~device prog =
  Atomic.incr synth_counter;
  let profiles = Summary.profile_all prog in
  let partitions = partition_fn prog in
  let evals, latency = Latency.eval_program ~partitions profiles in
  let latency =
    match latency_mode with
    | `Sequential -> latency
    | `Dataflow ->
        (* a task pipeline improves throughput, not single-input latency:
           stages still run one after another on one input, and unmatched
           producer/consumer paces add stalls (Section VII-E) *)
        latency * 5 / 4
  in
  let usage = Resource.of_program ~device ~composition ~partitions profiles evals in
  let iis =
    List.filter_map
      (fun (e : Latency.group_eval) ->
        if e.Latency.pipelined then Some (e.Latency.group, e.Latency.achieved_ii)
        else None)
      evals
  in
  let unroll_products =
    List.map
      (fun (p : Summary.t) ->
        ( Stmt_poly.name p.Summary.stmt,
          List.fold_left (fun a l -> a * l.Summary.unroll) 1 p.Summary.loops ))
      profiles
  in
  let parallelism =
    List.fold_left
      (fun acc (p : Summary.t) ->
        let name = Stmt_poly.name p.Summary.stmt in
        let u = List.assoc name unroll_products in
        let ii =
          match
            List.find_opt
              (fun (e : Latency.group_eval) -> e.Latency.group = p.Summary.group)
              evals
          with
          | Some e -> e.Latency.achieved_ii
          | None -> 1
        in
        Float.max acc (float_of_int u /. float_of_int ii))
      0.0 profiles
  in
  {
    latency;
    group_latencies =
      List.map
        (fun (e : Latency.group_eval) -> (e.Latency.group, e.Latency.latency))
        evals;
    iis;
    usage;
    power = Resource.power usage;
    feasible = Resource.fits device usage;
    parallelism;
    unroll_products;
  }

let baseline_latency func =
  let prog = Prog.of_func_unscheduled func in
  Latency.sequential_latency (Summary.profile_all prog)

let speedup ~baseline t = float_of_int baseline /. float_of_int t.latency

let latency_ms (d : Device.t) t =
  float_of_int t.latency /. (d.Device.clock_mhz *. 1000.0)

let util pct total = 100.0 *. float_of_int pct /. float_of_int total

let util_dsp (d : Device.t) t = util t.usage.Resource.dsp d.Device.dsp

let util_lut (d : Device.t) t = util t.usage.Resource.lut d.Device.lut

let util_ff (d : Device.t) t = util t.usage.Resource.ff d.Device.ff

let pp ppf t =
  Format.fprintf ppf
    "latency %d cycles, II [%s], %a, %.3f W, parallelism %.1f%s" t.latency
    (String.concat "; "
       (List.map (fun (g, ii) -> Printf.sprintf "g%d:%d" g ii) t.iis))
    Resource.pp t.usage t.power t.parallelism
    (if t.feasible then "" else " (INFEASIBLE)")
