(** Per-statement synthesis profile extracted from the polyhedral IR: loop
    structure in schedule order, unroll/pipeline attributes, body
    characterization, and loop-carried dependences re-analyzed in the
    transformed iteration space (so the model sees exactly what the
    generated loop nest exposes). *)

open Pom_polyir

type loop = {
  dim : string;
  extent : int;  (** bounding trip count of this level *)
  unroll : int;  (** materialized unroll copies (1 = none) *)
  pipelined : bool;
  target_ii : int;
}

(** One loop-carried dependence: for each schedule level that carries it
    (1-based, outermost first), the minimal carried distance. *)
type dep = (int * int) list

type t = {
  stmt : Stmt_poly.t;
  loops : loop list;  (** schedule order, outermost first *)
  total_points : int;  (** exact |domain| (transform-invariant) *)
  body : Opchar.body;
  deps : dep list;
  group : int;  (** leading scalar schedule constant (fusion group) *)
  access_dims : (string * string list list) list;
      (** one entry per memory access instance (loads and the store):
          array name and, per array dimension, the schedule dimensions that
          index depends on — accesses not indexed by an unrolled dimension
          are broadcast and cost one port operation, not one per copy, and
          partitioning an array dimension only multiplies the banks
          reachable by accesses that actually vary along it *)
  rectangular : bool;
      (** the domain is a full box (loop nest perfectly flattenable) *)
}

val of_stmt : Prog.t -> Stmt_poly.t -> t

val profile_all : Prog.t -> t list

(** 1-based pipeline level, if any. *)
val pipeline_level : t -> int option

(** Transformed accesses of a statement: the write access and the read
    accesses with indices over the current (scheduled) dimensions. *)
val transformed_accesses :
  Stmt_poly.t -> Pom_poly.Dep.access * Pom_poly.Dep.access list

(** Dependence-analysis memo counters since process start as
    [(hits, misses)] — the cache is keyed on the hardware-stripped
    statement, so a DSE search that revisits a schedule skeleton with
    different hardware attributes should hit almost always. *)
val dep_cache_stats : unit -> int * int

val pp : Format.formatter -> t -> unit
