(** Wire codecs for the virtual-synthesizer layer: devices, resource
    usage, composition/latency modes, and synthesis reports. *)

val device : Device.t Pom_wire.Wire.t
val usage : Resource.usage Pom_wire.Wire.t
val composition : Resource.composition Pom_wire.Wire.t
val latency_mode : Report.latency_mode Pom_wire.Wire.t
val report : Report.t Pom_wire.Wire.t
