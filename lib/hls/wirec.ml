module W = Pom_wire.Wire

let device =
  W.with_pp Device.pp
  @@ W.record6 "device"
       (W.field "name" W.string (fun (d : Device.t) -> d.name))
       (W.field "dsp" W.int (fun (d : Device.t) -> d.dsp))
       (W.field "lut" W.int (fun (d : Device.t) -> d.lut))
       (W.field "ff" W.int (fun (d : Device.t) -> d.ff))
       (W.field "bram_bits" W.int (fun (d : Device.t) -> d.bram_bits))
       (W.field "clock_mhz" W.float (fun (d : Device.t) -> d.clock_mhz))
       (fun name dsp lut ff bram_bits clock_mhz ->
         { Device.name; dsp; lut; ff; bram_bits; clock_mhz })

let usage =
  W.with_pp Resource.pp
  @@ W.record4 "usage"
       (W.field "dsp" W.int (fun (u : Resource.usage) -> u.dsp))
       (W.field "lut" W.int (fun (u : Resource.usage) -> u.lut))
       (W.field "ff" W.int (fun (u : Resource.usage) -> u.ff))
       (W.field "bram" W.int (fun (u : Resource.usage) -> u.bram))
       (fun dsp lut ff bram -> { Resource.dsp; lut; ff; bram })

let composition =
  W.enum "composition"
    [ ("Reuse", Resource.Reuse); ("Dataflow", Resource.Dataflow) ]

let latency_mode =
  W.enum "latency_mode"
    [ ("Sequential", `Sequential); ("Dataflow", `Dataflow) ]

let report =
  W.with_pp Report.pp
  @@ W.record8 "report"
       (W.field "latency" W.int (fun (r : Report.t) -> r.latency))
       (W.field "group_latencies"
          (W.list (W.pair W.int W.int))
          (fun (r : Report.t) -> r.group_latencies))
       (W.field "iis"
          (W.list (W.pair W.int W.int))
          (fun (r : Report.t) -> r.iis))
       (W.field "usage" usage (fun (r : Report.t) -> r.usage))
       (W.field "power" W.float (fun (r : Report.t) -> r.power))
       (W.field "feasible" W.bool (fun (r : Report.t) -> r.feasible))
       (W.field "parallelism" W.float (fun (r : Report.t) -> r.parallelism))
       (W.field "unroll_products"
          (W.list (W.pair W.string W.int))
          (fun (r : Report.t) -> r.unroll_products))
       (fun latency group_latencies iis usage power feasible parallelism
            unroll_products ->
         {
           Report.latency; group_latencies; iis; usage; power; feasible;
           parallelism; unroll_products;
         })
