(** The virtual Vitis front door: synthesize a scheduled program into the
    figures a Vitis HLS synthesis + Vivado implementation report would
    give — latency, achieved II, resource usage and utilization, power —
    plus the paper's derived parallelism metric (tile-size product divided
    by achieved II). *)

type t = {
  latency : int;  (** total cycles *)
  group_latencies : (int * int) list;  (** (group id, cycles) *)
  iis : (int * int) list;  (** (group id, achieved II) for pipelined groups *)
  usage : Resource.usage;
  power : float;
  feasible : bool;  (** fits the device *)
  parallelism : float;
  unroll_products : (string * int) list;  (** statement -> unrolled copies *)
}

(** How group latencies compose: [`Sequential] sums them (loops execute one
    after another); [`Dataflow] overlaps them in a task pipeline whose
    throughput is set by the slowest stage, with a stall factor for
    unmatched producer/consumer paces (Fig. 13's ScaleHLS mode). *)
type latency_mode = [ `Sequential | `Dataflow ]

(** Per-dimension partition factors of an array in a scheduled program. *)
val partition_fn : Pom_polyir.Prog.t -> string -> int list

val synthesize :
  ?composition:Resource.composition ->
  ?latency_mode:latency_mode ->
  device:Device.t ->
  Pom_polyir.Prog.t ->
  t

(** Process-wide number of {!synthesize} calls so far: a memo layered on
    top of synthesis can assert a cache hit left this unchanged. *)
val synth_count : unit -> int

(** Cycles of the original unoptimized program (schedule directives
    stripped): the denominator-free baseline of every speedup in the
    paper. *)
val baseline_latency : Pom_dsl.Func.t -> int

val speedup : baseline:int -> t -> float

(** Wall-clock latency in milliseconds at the device's target clock. *)
val latency_ms : Device.t -> t -> float

val util_dsp : Device.t -> t -> float

val util_lut : Device.t -> t -> float

val util_ff : Device.t -> t -> float

val pp : Format.formatter -> t -> unit
