module W = Pom_wire.Wire
module Pw = Pom_poly.Wirec
module Dw = Pom_dsl.Wirec

let hw =
  W.record2 "hw"
    (W.field "pipeline"
       (W.option (W.pair W.string W.int))
       (fun (h : Stmt_poly.hw) -> h.pipeline))
    (W.field "unrolls"
       (W.list (W.pair W.string W.int))
       (fun (h : Stmt_poly.hw) -> h.unrolls))
    (fun pipeline unrolls -> { Stmt_poly.pipeline; unrolls })

let stmt_poly =
  W.with_pp Stmt_poly.pp
  @@ W.record5 "stmt_poly"
       (W.field "compute" Dw.compute (fun (s : Stmt_poly.t) -> s.compute))
       (W.field "domain" Pw.basic_set (fun (s : Stmt_poly.t) -> s.domain))
       (W.field "index_map"
          (W.list (W.pair W.string Pw.linexpr))
          (fun (s : Stmt_poly.t) -> s.index_map))
       (W.field "sched" Pw.sched (fun (s : Stmt_poly.t) -> s.sched))
       (W.field "hw" hw (fun (s : Stmt_poly.t) -> s.hw))
       (fun compute domain index_map sched hw ->
         { Stmt_poly.compute; domain; index_map; sched; hw })

let prog =
  W.with_pp Prog.pp
  @@ W.record3 "prog"
       (W.field "func" Dw.func (fun (p : Prog.t) -> p.func))
       (W.field "stmts" (W.list stmt_poly) (fun (p : Prog.t) -> p.stmts))
       (W.field "partitions"
          (W.list (W.pair W.string (W.pair (W.list W.int) Dw.partition_kind)))
          (fun (p : Prog.t) -> p.partitions))
       (fun func stmts partitions -> { Prog.func; stmts; partitions })
