(** A whole function at the polyhedral IR level: its statements (with
    domains, schedules, index maps, hardware attributes) plus the array
    partition directives that apply function-wide.  Construction lowers the
    dependence-graph IR / DSL function into this form and applies the
    user-specified scheduling primitives in order (Fig. 9 (c)). *)

open Pom_dsl

type t = {
  func : Func.t;
  stmts : Stmt_poly.t list;  (** program order *)
  partitions : (string * (int list * Schedule.partition_kind)) list;
}

(** Lower a DSL function: initial domains/schedules in program order, then
    apply every recorded directive ([Auto_dse] is left to the DSE engine). *)
val of_func : Func.t -> t

(** Initial lowering without applying any directive (the DSE engine starts
    from here). *)
val of_func_unscheduled : Func.t -> t

(** Apply one more directive. *)
val apply : t -> Schedule.t -> t

(** Apply a directive list left to right. *)
val apply_all : t -> Schedule.t list -> t

val stmt : t -> string -> Stmt_poly.t

(** Replace a statement (by name). *)
val with_stmt : t -> Stmt_poly.t -> t

(** Partition factors for an array ([[1; 1; ...]] when unpartitioned). *)
val partition_of : t -> Placeholder.t -> int list

(** Generate the polyhedral AST for all statements (Fig. 9 (c) step 3). *)
val to_ast : t -> Pom_poly.Ast.t list

val pp : Format.formatter -> t -> unit
