open Pom_poly
open Pom_dsl

type t = {
  func : Func.t;
  stmts : Stmt_poly.t list;
  partitions : (string * (int list * Schedule.partition_kind)) list;
}

let of_func_unscheduled func =
  {
    func;
    stmts =
      List.mapi
        (fun k c -> Stmt_poly.of_compute ~position:k c)
        (Func.computes func);
    partitions = [];
  }

let apply t directive =
  match (directive : Schedule.t) with
  | Schedule.Partition { array; factors; kind } ->
      {
        t with
        partitions =
          (array, (factors, kind)) :: List.remove_assoc array t.partitions;
      }
  | Schedule.Auto_dse -> t
  | _ -> { t with stmts = Transform.apply_directive t.stmts directive }

let apply_all t directives = List.fold_left apply t directives

let of_func func = apply_all (of_func_unscheduled func) (Func.directives func)

let stmt t name =
  match
    List.find_opt (fun s -> Stmt_poly.name s = name) t.stmts
  with
  | Some s -> s
  | None -> invalid_arg ("Prog.stmt: no statement " ^ name)

let with_stmt t (s : Stmt_poly.t) =
  {
    t with
    stmts =
      List.map
        (fun s' -> if Stmt_poly.name s' = Stmt_poly.name s then s else s')
        t.stmts;
  }

let partition_of t (p : Placeholder.t) =
  match List.assoc_opt p.Placeholder.name t.partitions with
  | Some (factors, _) ->
      if List.length factors = Placeholder.rank p then factors
      else
        invalid_arg
          (Printf.sprintf "Prog.partition_of: %s rank mismatch" p.name)
  | None -> List.map (fun _ -> 1) p.Placeholder.shape

let to_ast t =
  Ast_build.build
    (List.map
       (fun (s : Stmt_poly.t) ->
         { Ast_build.name = Stmt_poly.name s; domain = s.domain; sched = s.sched })
       t.stmts)

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Stmt_poly.pp)
    t.stmts
