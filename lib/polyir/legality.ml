open Pom_poly
open Pom_dsl

type violation = {
  src_stmt : string;
  dst_stmt : string;
  array : string;
  kind : [ `Raw | `War | `Waw ];
}

(* Per-statement data for the check, everything expressed over the
   transformed dimensions renamed with [tag]. *)
type inst = {
  name : string;
  constrs : Constr.t list;  (* domain constraints, renamed *)
  dims : string list;  (* renamed dims *)
  orig_time : Dep2.time_item list;
  new_time : Dep2.time_item list;
  write : Dep.access;
  reads : Dep.access list;
}

let rename_expr tag e =
  List.fold_left (fun e d -> Linexpr.rename_dim d (tag ^ d) e) e
    (Linexpr.dims e)

let rename_access tag (a : Dep.access) =
  { a with Dep.indices = List.map (rename_expr tag) a.Dep.indices }

let transformed_access (s : Stmt_poly.t) (a : Dep.access) =
  { a with Dep.indices = List.map (Linexpr.subst_all s.Stmt_poly.index_map) a.Dep.indices }

let inst_of tag (orig : Stmt_poly.t) (s : Stmt_poly.t) =
  let constrs =
    List.map
      (fun c ->
        let e = rename_expr tag (Constr.expr c) in
        match c with Constr.Eq _ -> Constr.Eq e | Constr.Ge _ -> Constr.Ge e)
      (Basic_set.constraints s.Stmt_poly.domain)
  in
  let time_of sched index_map =
    List.map
      (function
        | Sched.Const c -> Dep2.C c
        | Sched.Dim d ->
            let e =
              match List.assoc_opt d index_map with
              | Some e -> e
              | None -> Linexpr.var d
            in
            Dep2.V (rename_expr tag e))
      (Sched.items sched)
  in
  let compute = s.Stmt_poly.compute in
  {
    name = Stmt_poly.name s;
    constrs;
    dims = List.map (( ^ ) tag) (Basic_set.dims s.Stmt_poly.domain);
    (* the original schedule reads the original iterators, recovered from
       the transformed dims through the index map *)
    orig_time = time_of orig.Stmt_poly.sched s.Stmt_poly.index_map;
    new_time = time_of s.Stmt_poly.sched [];
    write = rename_access tag (transformed_access s (Compute.write_access compute));
    reads =
      List.map
        (fun a -> rename_access tag (transformed_access s a))
        (Compute.read_accesses compute);
  }

(* flip set: same element, originally a-first, transformed b-first *)
let flip_exists a b (acc_a : Dep.access) (acc_b : Dep.access) =
  acc_a.Dep.array = acc_b.Dep.array
  && List.length acc_a.Dep.indices = List.length acc_b.Dep.indices
  &&
  let dims = a.dims @ b.dims in
  let same_element =
    List.map2 Constr.eq acc_a.Dep.indices acc_b.Dep.indices
  in
  let base = a.constrs @ b.constrs @ same_element in
  let oa, ob = Dep2.align a.orig_time b.orig_time in
  let na, nb = Dep2.align a.new_time b.new_time in
  let orig_branches = Dep2.order_branches oa ob in
  let new_branches = Dep2.order_branches nb na in
  List.exists
    (fun ob_cs ->
      List.exists
        (fun nb_cs ->
          not (Feasible.is_empty (Basic_set.make dims (base @ ob_cs @ nb_cs))))
        new_branches)
    orig_branches

let compare_violation (a : violation) b = compare a b

let violations ~original ~transformed =
  let insts tag prog_t =
    List.map
      (fun (s : Stmt_poly.t) ->
        let orig = Prog.stmt original (Stmt_poly.name s) in
        inst_of tag orig s)
      prog_t.Prog.stmts
  in
  let as_a = insts "a$" transformed and as_b = insts "b$" transformed in
  (* each statement pair is an independent family of emptiness proofs: fan
     the pairs out across domains (order is irrelevant — the result is
     sorted and deduplicated either way) *)
  let pairs = List.concat_map (fun a -> List.map (fun b -> (a, b)) as_b) as_a in
  List.sort_uniq compare_violation
  @@ List.concat
  @@ Pom_par.Par.map
       (fun (a, b) ->
         (* cooperative deadline check between pairs: a legality run on a
            big statement set stops at a pair boundary, and the guard layer
            maps the timeout to "reject the transform" (POM302) *)
         Pom_resilience.Budget.check "legality:pair";
         Pom_resilience.Fault.point "legality:pair";
         let accesses =
           List.map (fun r -> (a.write, r, `Raw)) b.reads
           @ List.map (fun r -> (r, b.write, `War)) a.reads
           @ [ (a.write, b.write, `Waw) ]
         in
         List.filter_map
           (fun (acc_a, acc_b, kind) ->
             if flip_exists a b acc_a acc_b then
               Some
                 {
                   src_stmt = a.name;
                   dst_stmt = b.name;
                   array = acc_a.Dep.array;
                   kind;
                 }
             else None)
           accesses)
       pairs

let is_legal ~original ~transformed =
  violations ~original ~transformed = []

let pp_violation ppf v =
  Format.fprintf ppf "%s dependence %s -> %s on %s reversed"
    (match v.kind with `Raw -> "RAW" | `War -> "WAR" | `Waw -> "WAW")
    v.src_stmt v.dst_stmt v.array
