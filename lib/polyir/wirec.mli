(** Wire codecs for the polyhedral IR: hardware attributes, statements,
    and whole scheduled programs.  A journaled [Prog.t] round-trips with
    identical domains, schedules, index maps and partitions, so a
    replayed design point is the design point that was evaluated. *)

val hw : Stmt_poly.hw Pom_wire.Wire.t
val stmt_poly : Stmt_poly.t Pom_wire.Wire.t
val prog : Prog.t Pom_wire.Wire.t
