type access = { array : string; indices : Linexpr.t list }

let access array indices = { array; indices }

type direction = Lt | Eq | Gt | Star

type entry = { dmin : int option; dmax : int option }

type level_dep = { level : int; distance : entry list }

type t = { carried : level_dep list; direction : direction list }

let src_dim d = "s$" ^ d

let snk_dim d = "t$" ^ d

(* The conflict set at [level]: src and snk in the domain, same array
   element, equal at outer levels, snk strictly after src at [level]. *)
let conflict_at_level ~domain ~source ~sink level =
  let ds = Basic_set.dims domain in
  let n = List.length ds in
  assert (1 <= level && level <= n);
  let all = List.map src_dim ds @ List.map snk_dim ds in
  let rename tag e =
    List.fold_left (fun e d -> Linexpr.rename_dim d (tag d) e) e
      (Linexpr.dims e)
  in
  let domain_constrs tag =
    List.map
      (fun c ->
        match c with
        | Constr.Eq e -> Constr.Eq (rename tag e)
        | Constr.Ge e -> Constr.Ge (rename tag e))
      (Basic_set.constraints domain)
  in
  let same_element =
    List.map2
      (fun i j -> Constr.eq (rename src_dim i) (rename snk_dim j))
      source.indices sink.indices
  in
  let order =
    List.concat
      (List.mapi
         (fun k d ->
           let s = Linexpr.var (src_dim d) and t = Linexpr.var (snk_dim d) in
           if k + 1 < level then [ Constr.eq s t ]
           else if k + 1 = level then [ Constr.lt s t ]
           else [])
         ds)
  in
  Basic_set.make all
    (domain_constrs src_dim @ domain_constrs snk_dim @ same_element @ order)

let distance_entries ~ds conflict =
  List.map
    (fun d ->
      let diff =
        Linexpr.sub (Linexpr.var (snk_dim d)) (Linexpr.var (src_dim d))
      in
      { dmin = Feasible.min_of diff conflict; dmax = Feasible.max_of diff conflict })
    ds

let analyze ~domain ~source ~sink =
  if source.array <> sink.array then None
  else if List.length source.indices <> List.length sink.indices then
    invalid_arg "Dep.analyze: access rank mismatch"
  else
    let ds = Basic_set.dims domain in
    let n = List.length ds in
    (* each level's conflict polyhedron is independent of the others, so the
       emptiness tests and distance extractions fan out across domains
       (sequential under --jobs 1 or when already inside a pool task) *)
    let carried =
      Pom_par.Par.filter_map
        (fun level ->
          let conflict = conflict_at_level ~domain ~source ~sink level in
          try
            if Feasible.is_empty conflict then None
            else Some { level; distance = distance_entries ~ds conflict }
          with Pom_resilience.Budget.Budget_exceeded _ as e ->
            (* Degradation policy: a dependence test that ran out of budget
               must err conservative — assume the dependence exists, with
               unknown ([None]/[None] -> [Star]) distances at this level.
               Every transform that would need the distance is then rejected
               as unsafe, which loses performance but never correctness. *)
            if Pom_resilience.Policy.degrading () then
              Some
                {
                  level;
                  distance = List.map (fun _ -> { dmin = None; dmax = None }) ds;
                }
            else raise e)
        (List.init n (fun k -> k + 1))
    in
    if carried = [] then None
    else
      let direction =
        List.mapi
          (fun k _ ->
            (* summarize across carrying levels *)
            let mins =
              List.filter_map (fun ld -> (List.nth ld.distance k).dmin) carried
            and maxs =
              List.filter_map (fun ld -> (List.nth ld.distance k).dmax) carried
            in
            match (mins, maxs) with
            | [], _ | _, [] -> Star
            | _ ->
                let dmin = List.fold_left min max_int mins
                and dmax = List.fold_left max min_int maxs in
                if List.length mins < List.length carried then Star
                else if dmin >= 1 then Lt
                else if dmax <= -1 then Gt
                else if dmin = 0 && dmax = 0 then Eq
                else Star)
          ds
      in
      Some { carried; direction }

let outermost_level t =
  match t.carried with
  | { level; _ } :: _ -> level
  | [] -> invalid_arg "Dep.outermost_level: empty dependence"

let innermost_level t =
  match List.rev t.carried with
  | { level; _ } :: _ -> level
  | [] -> invalid_arg "Dep.innermost_level: empty dependence"

let min_distance_at t level =
  List.find_map
    (fun ld ->
      if ld.level = level then (List.nth ld.distance (level - 1)).dmin
      else None)
    t.carried

let constant_distance t =
  match t.carried with
  | [ ld ] ->
      let entries =
        List.map
          (fun e ->
            match (e.dmin, e.dmax) with
            | Some a, Some b when a = b -> Some a
            | _ -> None)
          ld.distance
      in
      if List.for_all Option.is_some entries then
        Some (List.map Option.get entries)
      else None
  | _ -> None

let min_distance_vector t =
  match t.carried with
  | [] -> []
  | ld :: _ -> List.map (fun e -> e.dmin) ld.distance

let pp_direction ppf = function
  | Lt -> Format.pp_print_string ppf "<"
  | Eq -> Format.pp_print_string ppf "="
  | Gt -> Format.pp_print_string ppf ">"
  | Star -> Format.pp_print_string ppf "*"

let pp ppf t =
  Format.fprintf ppf "direction (%a), carried at levels [%s]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       pp_direction)
    t.direction
    (String.concat ", "
       (List.map (fun ld -> string_of_int ld.level) t.carried))
