let default_limit = 100_000

(* Substitute a constant value for a dimension, dropping the dimension. *)
let fix_dim = Basic_set.fix_dim

(* FM elimination of [d] is integer-exact when every lower/upper bound pair
   has a unit coefficient on at least one side. *)
let elimination_exact d s =
  match
    List.find_opt
      (fun c -> Constr.is_eq c && abs (Linexpr.coeff (Constr.expr c) d) = 1)
      (Basic_set.constraints s)
  with
  | Some _ -> true
  | None ->
      let lowers, uppers, _ = Basic_set.bounds_of d s in
      List.for_all
        (fun (cl, _) -> List.for_all (fun (cu, _) -> cl = 1 || cu = 1) uppers)
        lowers

let rec rational_empty s exact =
  let s = Basic_set.simplify s in
  if Basic_set.is_obviously_empty s then `Empty
  else
    match Basic_set.dims s with
    | [] -> if exact then `Nonempty else `Maybe
    | d :: _ ->
        let exact = exact && elimination_exact d s in
        rational_empty (Basic_set.project_out d s) exact

let range_with_window d s =
  let lb, ub = Basic_set.const_range d s in
  let lb = match lb with Some v -> v | None -> -1000 in
  let ub = match ub with Some v -> v | None -> 1000 in
  (lb, ub)

let rec first_point s =
  match Basic_set.dims s with
  | [] -> if Basic_set.is_obviously_empty s then None else Some []
  | d :: _ ->
      let lb, ub = range_with_window d s in
      let rec try_value v =
        if v > ub then None
        else begin
          Pom_resilience.Budget.tick "poly:enumerate";
          let s' = fix_dim d v s in
          if Basic_set.is_obviously_empty s' then try_value (v + 1)
          else
            match first_point s' with
            | Some rest -> Some (v :: rest)
            | None -> try_value (v + 1)
        end
      in
      try_value lb

let is_empty s =
  match rational_empty s true with
  | `Empty -> true
  | `Nonempty -> false
  | `Maybe -> first_point s = None

let sample s = first_point s

let fold_points ?(limit = default_limit) f init s =
  let count = ref 0 in
  let rec go prefix s acc =
    match Basic_set.dims s with
    | [] ->
        if Basic_set.is_obviously_empty s then acc
        else begin
          incr count;
          if !count > limit then
            invalid_arg "Feasible: enumeration limit exceeded";
          Pom_resilience.Budget.tick "poly:enumerate";
          f acc (List.rev prefix)
        end
    | d :: _ -> (
        match Basic_set.const_range d s with
        | Some lb, Some ub ->
            let rec loop v acc =
              if v > ub then acc
              else
                let s' = fix_dim d v s in
                let acc =
                  if Basic_set.is_obviously_empty s' then acc
                  else go (v :: prefix) s' acc
                in
                loop (v + 1) acc
            in
            loop lb acc
        | _ ->
            invalid_arg
              (Printf.sprintf "Feasible: dimension %s is unbounded" d))
  in
  go [] s init

let enumerate ?limit s =
  List.rev (fold_points ?limit (fun acc p -> p :: acc) [] s)

let count ?limit s = fold_points ?limit (fun acc _ -> acc + 1) 0 s

let with_objective e s k =
  let obj = "__obj" in
  if List.mem obj (Basic_set.dims s) then
    invalid_arg "Feasible: reserved dimension __obj in use";
  let dims = Basic_set.dims s @ [ obj ] in
  let lifted =
    Basic_set.make dims
      (Constr.eq (Linexpr.var obj) e :: Basic_set.constraints s)
  in
  k obj (Basic_set.project_onto [ obj ] lifted)

let min_of e s =
  if is_empty s then None
  else
    with_objective e s (fun obj projected ->
        fst (Basic_set.const_range obj projected))

let max_of e s =
  if is_empty s then None
  else
    with_objective e s (fun obj projected ->
        snd (Basic_set.const_range obj projected))
