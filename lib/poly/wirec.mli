(** Wire codecs ({!Pom_wire.Wire}) for the polyhedral layer's types.

    One declarative description per type.  These define the on-disk
    format of memo journals: an incompatible edit here must come with a
    {!Pom_resilience.Checkpoint.version} bump. *)

val linexpr : Linexpr.t Pom_wire.Wire.t
val constr : Constr.t Pom_wire.Wire.t
val basic_set : Basic_set.t Pom_wire.Wire.t
val sched : Sched.t Pom_wire.Wire.t
