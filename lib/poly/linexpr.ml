module Smap = Map.Make (String)

type t = { coeffs : int Smap.t; const : int }

(* Hash-consing: every expression leaving a constructor is interned, so
   structurally equal terms share one physical value and [equal]/[compare]
   get an [==] fast path.  The polyhedral layer churns through millions of
   small expressions (every constraint row of every domain and schedule),
   most of them duplicates of a few thousand shapes. *)
module Key = struct
  type nonrec t = t

  let equal a b =
    a.const = b.const && Smap.equal Int.equal a.coeffs b.coeffs

  let hash e =
    Smap.fold
      (fun d c acc -> (acc * 31) + Hashtbl.hash (d, c))
      e.coeffs
      (Hashtbl.hash e.const)
end

module Tbl = Hashtbl.Make (Key)

(* One intern table per domain: interning is pure bookkeeping, so sharding it
   keeps the constructors lock-free under parallel DSE evaluation.  Two
   domains may hold distinct physical copies of the same expression — [==] is
   only ever a fast path, [equal]/[compare] fall back to structure. *)
let table_key = Domain.DLS.new_key (fun () -> Tbl.create 4096)

(* Capacity guard: a table only ever grows, so cap it and start over rather
   than retaining every expression the domain has seen. *)
let max_interned = 100_000

let intern e =
  let table = Domain.DLS.get table_key in
  match Tbl.find_opt table e with
  | Some canonical -> canonical
  | None ->
      if Tbl.length table >= max_interned then Tbl.reset table;
      Tbl.add table e e;
      e

let interned_terms () = Tbl.length (Domain.DLS.get table_key)

let normalize e =
  intern { e with coeffs = Smap.filter (fun _ c -> c <> 0) e.coeffs }

let zero = intern { coeffs = Smap.empty; const = 0 }

let const k = intern { coeffs = Smap.empty; const = k }

let term c d =
  normalize { coeffs = Smap.singleton d c; const = 0 }

let var d = term 1 d

let add a b =
  normalize
    {
      coeffs = Smap.union (fun _ x y -> Some (x + y)) a.coeffs b.coeffs;
      const = a.const + b.const;
    }

let neg a =
  intern { coeffs = Smap.map (fun c -> -c) a.coeffs; const = -a.const }

let sub a b = add a (neg b)

let scale k a =
  if k = 0 then zero
  else intern { coeffs = Smap.map (fun c -> k * c) a.coeffs; const = k * a.const }

let coeff e d = match Smap.find_opt d e.coeffs with Some c -> c | None -> 0

let const_of e = e.const

let dims e = Smap.bindings e.coeffs |> List.map fst

let is_const e = Smap.is_empty e.coeffs

let subst d e' e =
  let c = coeff e d in
  if c = 0 then e
  else
    let without = { e with coeffs = Smap.remove d e.coeffs } in
    add without (scale c e')

let subst_all bindings e =
  let bound, rest =
    List.fold_left
      (fun (bound, rest) (d, repl) ->
        let c = coeff e d in
        if c = 0 then (bound, rest) else (add bound (scale c repl), d :: rest))
      (zero, []) bindings
  in
  let remaining =
    { e with coeffs = List.fold_left (fun m d -> Smap.remove d m) e.coeffs rest }
  in
  add remaining bound

let rename_dim old_name new_name e =
  if old_name = new_name then e else subst old_name (var new_name) e

let eval env e =
  Smap.fold (fun d c acc -> acc + (c * env d)) e.coeffs e.const

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let content e = Smap.fold (fun _ c acc -> gcd c acc) e.coeffs 0

let div_exact k e =
  if k = 0 then invalid_arg "Linexpr.div_exact: zero divisor";
  let div x =
    if x mod k <> 0 then invalid_arg "Linexpr.div_exact: not divisible"
    else x / k
  in
  intern { coeffs = Smap.map div e.coeffs; const = div e.const }

let compare a b =
  if a == b then 0
  else
    let c = Smap.compare Int.compare a.coeffs b.coeffs in
    if c <> 0 then c else Int.compare a.const b.const

let equal a b = a == b || compare a b = 0

let pp ppf e =
  let terms = Smap.bindings e.coeffs in
  if terms = [] then Format.fprintf ppf "%d" e.const
  else begin
    List.iteri
      (fun i (d, c) ->
        if i = 0 then
          if c = 1 then Format.fprintf ppf "%s" d
          else if c = -1 then Format.fprintf ppf "-%s" d
          else Format.fprintf ppf "%d%s" c d
        else if c = 1 then Format.fprintf ppf " + %s" d
        else if c = -1 then Format.fprintf ppf " - %s" d
        else if c > 0 then Format.fprintf ppf " + %d%s" c d
        else Format.fprintf ppf " - %d%s" (-c) d)
      terms;
    if e.const > 0 then Format.fprintf ppf " + %d" e.const
    else if e.const < 0 then Format.fprintf ppf " - %d" (-e.const)
  end

let to_string e = Format.asprintf "%a" pp e
