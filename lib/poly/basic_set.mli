(** A basic integer set: a conjunction of affine constraints over an ordered
    tuple of named dimensions — the analogue of [isl_basic_set].

    Iteration domains of loop nests are basic sets; all POM loop
    transformations are computed as substitutions and projections on them. *)

type t

(** [make dims constrs] builds a set over the ordered dimension tuple [dims].
    Constraints may only mention listed dimensions; violations raise
    [Invalid_argument].  Duplicate dimension names raise too. *)
val make : string list -> Constr.t list -> t

(** The unconstrained set over the given dimensions. *)
val universe : string list -> t

val dims : t -> string list

val n_dims : t -> int

val constraints : t -> Constr.t list

val add_constraint : Constr.t -> t -> t

val add_constraints : Constr.t list -> t -> t

(** Intersection; both sets must have the same dimension tuple. *)
val intersect : t -> t -> t

(** [rename_dim old_name new_name s]: [new_name] must not already occur. *)
val rename_dim : string -> string -> t -> t

(** [change_space new_dims bindings s] re-indexes the set: the result ranges
    over [new_dims], and every old dimension [d] of [s] is replaced by
    [bindings d], an expression over [new_dims].  Extra constraints can be
    supplied to relate the new dimensions (e.g. strip-mining remainders).
    This is the preimage of [s] under the affine map [bindings]. *)
val change_space :
  new_dims:string list ->
  bindings:(string * Linexpr.t) list ->
  ?extra:Constr.t list ->
  t ->
  t

(** [fix_dim d v s] substitutes the constant [v] for dimension [d] and drops
    [d] from the tuple.  Equivalent to [change_space] with a constant
    binding, but without re-validating every constraint — this is the
    per-value step of {!Feasible}'s point enumeration.  Returns [s] unchanged
    when [d] is not a dimension of [s]. *)
val fix_dim : string -> int -> t -> t

(** [project_out d s] eliminates dimension [d] by Fourier–Motzkin: the result
    is the (rational) shadow over the remaining dimensions.  Exact over the
    integers whenever [d]'s bounding coefficients include 1 (true for the
    sets POM manipulates after equality normalization); otherwise it is an
    overapproximation.

    FM combination is quadratic per elimination: a projection that would
    materialize more intermediate constraints than the current
    {!projection_cap} raises {!Pom_resilience.Budget.Budget_exceeded}
    instead of spinning, and every combination step also ticks the ambient
    {!Pom_resilience.Budget}, so a deadline bounds chained projections. *)
val project_out : string -> t -> t

(** The library-level blowup guard on one FM elimination: the maximum
    number of combined constraints {!project_out} may materialize before
    compaction.  Defaults to a value far above anything a well-formed
    kernel produces; lower it to make pathological projections fail fast
    as a typed [Budget_exceeded]. *)
val projection_cap : unit -> int

val default_projection_cap : int

(** Set the cap ([max 1]). *)
val set_projection_cap : int -> unit

(** Run [f] under a temporary cap, restoring the previous one after. *)
val with_projection_cap : int -> (unit -> 'a) -> 'a

(** [project_onto keep s] eliminates all dimensions not in [keep], preserving
    the relative order of [keep] as in [s] (names in [keep] but not in [s]
    are ignored). *)
val project_onto : string list -> t -> t

(** Membership test under a total assignment of the dimensions. *)
val mem : (string -> int) -> t -> bool

(** Syntactic check for an obviously empty set: a contradictory constant
    constraint after normalization, or a single variable whose constant
    lower bound exceeds its constant upper bound (read directly off the
    single-variable constraints, no elimination).  Complete emptiness is in
    {!Feasible}. *)
val is_obviously_empty : t -> bool

(** Compact the constraint system: normalize (detecting constant
    contradictions), drop tautologies and duplicates, and prune pairwise
    redundancies — of two inequalities bounding the same gradient only the
    tighter survives, and inequalities decided by an equality are removed
    (or turned into a contradiction).  Memoized: re-simplifying an
    already-compact set is O(1), and {!project_out} returns compact sets. *)
val simplify : t -> t

(** [bounds_of d s] splits the constraints of [s] into lower bounds on [d]
    (pairs [(c, e)] meaning [c*d >= e] with [c > 0]), upper bounds
    ([c*d <= e] with [c > 0]), and the constraints not mentioning [d].
    Equalities contribute one bound to each side. *)
val bounds_of :
  string ->
  t ->
  (int * Linexpr.t) list * (int * Linexpr.t) list * Constr.t list

(** [const_range d s] returns constant bounds [(lb, ub)] for [d] obtained by
    projecting out all other dimensions; [None] on either side when
    unbounded. *)
val const_range : string -> t -> int option * int option

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
