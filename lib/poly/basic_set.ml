(* [simplified] memoizes {!simplify}: it records that [constrs] is already
   in compact form (normalized, sorted, deduplicated, redundancy-pruned).
   Constraint lists are immutable, so the flag is monotone — it never has to
   be cleared, only left [false] by constructors that may break the form. *)
type t = { dims : string list; constrs : Constr.t list; mutable simplified : bool }

let check_dims dims =
  let sorted = List.sort String.compare dims in
  let rec dup = function
    | a :: (b :: _ as rest) -> if a = b then Some a else dup rest
    | _ -> None
  in
  match dup sorted with
  | Some d -> invalid_arg ("Basic_set: duplicate dimension " ^ d)
  | None -> ()

let check_constr dims c =
  List.iter
    (fun d ->
      if not (List.mem d dims) then
        invalid_arg
          (Printf.sprintf "Basic_set: constraint %s mentions unknown dim %s"
             (Constr.to_string c) d))
    (Constr.dims c)

let make dims constrs =
  check_dims dims;
  List.iter (check_constr dims) constrs;
  { dims; constrs; simplified = false }

let universe dims =
  check_dims dims;
  { dims; constrs = []; simplified = true }

let dims s = s.dims

let n_dims s = List.length s.dims

let constraints s = s.constrs

let add_constraint c s =
  check_constr s.dims c;
  { s with constrs = c :: s.constrs; simplified = false }

let add_constraints cs s = List.fold_left (fun s c -> add_constraint c s) s cs

let intersect a b =
  if a.dims <> b.dims then
    invalid_arg "Basic_set.intersect: dimension tuples differ";
  { a with constrs = a.constrs @ b.constrs; simplified = false }

let rename_dim old_name new_name s =
  if old_name = new_name then s
  else begin
    if List.mem new_name s.dims then
      invalid_arg ("Basic_set.rename_dim: " ^ new_name ^ " already present");
    {
      dims = List.map (fun d -> if d = old_name then new_name else d) s.dims;
      constrs = List.map (Constr.rename_dim old_name new_name) s.constrs;
      (* renaming can reorder the sort (constraints sort by dimension
         name), so the compact form is not preserved *)
      simplified = false;
    }
  end

let change_space ~new_dims ~bindings ?(extra = []) s =
  check_dims new_dims;
  let constrs = List.map (Constr.subst_all bindings) s.constrs in
  let result = { dims = new_dims; constrs = constrs @ extra; simplified = false } in
  List.iter (check_constr new_dims) result.constrs;
  result

(* The expression minus its constant part: two constraints with the same
   gradient bound the same hyperplane direction. *)
let gradient e = Linexpr.sub e (Linexpr.const (Linexpr.const_of e))

(* Compact form: normalize every constraint (dropping tautologies, turning
   violated constant constraints into the canonical contradiction [-1 >= 0]),
   sort and deduplicate, then prune pairwise-redundant inequalities.
   [Constr.compare] sorts all equalities first, then inequalities by
   (gradient, constant) — so a run of inequalities sharing a gradient starts
   with the smallest constant, which is the tightest bound ([g + k >= 0] is
   [g >= -k]); the rest of the run is implied and dropped.  An inequality
   whose gradient (or its negation) is fixed by an equality is decided by
   it: implied or contradictory.  This is what keeps Fourier–Motzkin
   projection bounded — the lower×upper combination step mass-produces
   exactly such duplicates and dominated bounds. *)
let compact constrs =
  let constrs =
    List.filter_map
      (fun c ->
        match Constr.normalize c with
        | None -> Some (Constr.Ge (Linexpr.const (-1)))
        | Some c when Constr.is_tautology c -> None
        | Some c -> Some c)
      constrs
  in
  let constrs = List.sort_uniq Constr.compare constrs in
  let eqs = List.filter Constr.is_eq constrs in
  (* the constant value an equality assigns to gradient [g], if any *)
  let eq_value g =
    List.find_map
      (fun c ->
        let e = Constr.expr c in
        let ge = gradient e in
        if Linexpr.equal ge g then Some (-Linexpr.const_of e)
        else if Linexpr.equal ge (Linexpr.neg g) then Some (Linexpr.const_of e)
        else None)
      eqs
  in
  let rec prune prev_grad acc = function
    | [] -> List.rev acc
    | (Constr.Eq _ as c) :: rest -> prune prev_grad (c :: acc) rest
    | (Constr.Ge e as c) :: rest -> (
        let g = gradient e in
        match prev_grad with
        | Some pg when Linexpr.equal pg g -> prune prev_grad acc rest
        | _ -> (
            match eq_value g with
            | Some v ->
                if v + Linexpr.const_of e >= 0 then prune (Some g) acc rest
                else
                  prune (Some g) (Constr.Ge (Linexpr.const (-1)) :: acc) rest
            | None -> prune (Some g) (c :: acc) rest))
  in
  prune None [] constrs

(* FM blowup guard: one elimination may not materialize more combined
   constraints than this before compaction.  The default sits far above
   anything a well-formed kernel produces; lowering it turns pathological
   projections into a typed [Budget_exceeded] instead of a quadratic spin.
   An [Atomic] so DSE worker domains see a test/CLI override. *)
let default_projection_cap = 20_000

let cap = Atomic.make default_projection_cap

let projection_cap () = Atomic.get cap

let set_projection_cap n = Atomic.set cap (max 1 n)

let with_projection_cap n f =
  let prev = Atomic.get cap in
  set_projection_cap n;
  Fun.protect ~finally:(fun () -> Atomic.set cap prev) f

let fm_site = "poly:fm-projection"

(* Replay the budget semantics of one elimination, cached or not: the cap
   check and tick sequence must be indistinguishable between a cold
   projection and a cache hit, so deadline/work-capped runs degrade at the
   same point either way. *)
let charge_budget d = function
  | Projcache.Unit_eq -> Pom_resilience.Budget.tick fm_site
  | Projcache.Fm { n_low; n_up; n_rest } ->
      let materialized = (n_low * n_up) + n_rest in
      if materialized > Atomic.get cap then
        raise
          (Pom_resilience.Budget.Budget_exceeded
             {
               site = fm_site;
               reason =
                 Printf.sprintf
                   "eliminating %s would combine %d lower x %d upper \
                    bounds into %d constraints (cap %d)"
                   d n_low n_up materialized (Atomic.get cap);
             });
      (* the combination work is proportional to what it materializes *)
      Pom_resilience.Budget.tick ~cost:(max 1 (n_low * n_up)) fm_site

(* Lift constraint [i]: replace its constant by the parameter dimension
   [Projcache.param_dim i], keeping the gradient.  The elimination is then
   computed symbolically over (dims + parameters); substituting the
   constants back and compacting yields exactly the concrete projection,
   because {!compact} re-normalizes every constraint (normalization is
   idempotent, a violated constant maps to the canonical contradiction, and
   tautologies are dropped either way) and every structural decision of the
   algorithm — unit-equality choice, lower/upper/rest split, the cap
   check — depends only on the coefficients, never the constants. *)
let lift i c =
  let e = Constr.expr c in
  let e' =
    Linexpr.add
      (Linexpr.sub e (Linexpr.const (Linexpr.const_of e)))
      (Linexpr.var (Projcache.param_dim i))
  in
  match c with Constr.Eq _ -> Constr.Eq e' | Constr.Ge _ -> Constr.Ge e'

(* Eliminate equalities on [d] first when one has coefficient +-1: exact
   integer substitution.  Otherwise pairwise FM combination.  Either way the
   template body is the *raw* symbolic constraint list — lifted expressions
   always mention a parameter, so no tautology can be detected (or dropped)
   before instantiation; the final {!compact} makes the same drops the
   un-lifted algorithm made inline. *)
let template_of d remaining_dims constrs =
  let lifted = List.mapi lift constrs in
  let unit_eq =
    List.find_opt
      (fun c -> Constr.is_eq c && abs (Linexpr.coeff (Constr.expr c) d) = 1)
      lifted
  in
  match unit_eq with
  | Some c ->
      let t_path = Projcache.Unit_eq in
      charge_budget d t_path;
      (* c*d + rest = 0 with c = +-1, so d = -rest/c *)
      let e = Constr.expr c in
      let cd = Linexpr.coeff e d in
      let rest = Linexpr.sub e (Linexpr.term cd d) in
      let repl = Linexpr.scale (-cd) rest in
      let body =
        List.filter_map
          (fun c' -> if c' == c then None else Some (Constr.subst d repl c'))
          lifted
      in
      { Projcache.t_dims = remaining_dims; body; t_path }
  | None ->
      (* Split into lower bounds (c*d >= e, c>0), upper bounds (c*d <= e,
         c>0), and independent constraints; equalities contribute both. *)
      let lowers = ref [] and uppers = ref [] and rest = ref [] in
      List.iter
        (fun c ->
          let e = Constr.expr c in
          let cd = Linexpr.coeff e d in
          if cd = 0 then rest := c :: !rest
          else
            let others = Linexpr.sub e (Linexpr.term cd d) in
            match c with
            | Constr.Ge _ ->
                if cd > 0 then
                  (* cd*d + others >= 0: cd*d >= -others *)
                  lowers := (cd, Linexpr.neg others) :: !lowers
                else uppers := (-cd, others) :: !uppers
            | Constr.Eq _ ->
                if cd > 0 then begin
                  lowers := (cd, Linexpr.neg others) :: !lowers;
                  uppers := (cd, Linexpr.neg others) :: !uppers
                end
                else begin
                  lowers := (-cd, others) :: !lowers;
                  uppers := (-cd, others) :: !uppers
                end)
        lifted;
      let n_low = List.length !lowers and n_up = List.length !uppers in
      let t_path =
        Projcache.Fm { n_low; n_up; n_rest = List.length !rest }
      in
      (* cap check and tick happen before the combination is materialized,
         exactly as the un-lifted algorithm ordered them *)
      charge_budget d t_path;
      let combined =
        List.concat_map
          (fun (cl, el) ->
            List.map
              (fun (cu, eu) ->
                (* cl*d >= el and cu*d <= eu imply cl*eu - cu*el >= 0 *)
                Constr.Ge
                  (Linexpr.sub (Linexpr.scale cl eu) (Linexpr.scale cu el)))
              !uppers)
          !lowers
      in
      { Projcache.t_dims = remaining_dims; body = combined @ !rest; t_path }

let project_out d s =
  if not (List.mem d s.dims) then s
  else begin
    (* injection hook for the degradation refuter: a fault armed here must
       degrade exactly like a genuine projection blow-up, and it fires per
       call whether or not the cache hits — visit counts are preserved *)
    Pom_resilience.Fault.point fm_site;
    let remaining_dims = List.filter (fun x -> x <> d) s.dims in
    let cacheable =
      Projcache.enabled () && not (List.exists Projcache.is_param_dim s.dims)
    in
    let finish (p : Projcache.projection) =
      { dims = p.Projcache.p_dims; constrs = p.Projcache.p_constrs; simplified = true }
    in
    let exact_key =
      if cacheable then Some (Projcache.exact_key d s.dims s.constrs)
      else None
    in
    match Option.bind exact_key Projcache.find_exact with
    | Some p ->
        charge_budget d p.Projcache.p_path;
        finish p
    | None ->
        let tpl =
          match
            if cacheable then
              Projcache.find_param (Projcache.param_key d s.dims s.constrs)
            else None
          with
          | Some tpl ->
              charge_budget d tpl.Projcache.t_path;
              tpl
          | None ->
              (* charges its own budget, and raises *before* combining when
                 over the cap — nothing is cached in that case, so a later
                 call under a raised cap recomputes and succeeds *)
              let tpl = template_of d remaining_dims s.constrs in
              if cacheable then
                Projcache.store_param
                  (Projcache.param_key d s.dims s.constrs)
                  tpl;
              tpl
        in
        let bindings =
          List.mapi
            (fun i c ->
              ( Projcache.param_dim i,
                Linexpr.const (Linexpr.const_of (Constr.expr c)) ))
            s.constrs
        in
        let p =
          {
            Projcache.p_dims = tpl.Projcache.t_dims;
            p_constrs =
              compact (List.map (Constr.subst_all bindings) tpl.Projcache.body);
            p_path = tpl.Projcache.t_path;
          }
        in
        (match exact_key with
        | Some k -> Projcache.store_exact k p
        | None -> ());
        finish p
  end

let project_onto keep s =
  let to_drop = List.filter (fun d -> not (List.mem d keep)) s.dims in
  List.fold_left (fun s d -> project_out d s) s to_drop

let mem env s = List.for_all (Constr.sat env) s.constrs

let simplify s =
  if s.simplified then s
  else
    let constrs = compact s.constrs in
    if List.equal Constr.equal constrs s.constrs then begin
      (* already compact: remember so (hot in the emptiness recursion, which
         re-simplifies the set at every elimination step) and keep the
         physical value *)
      s.simplified <- true;
      s
    end
    else { s with constrs; simplified = true }

(* Substitute a constant for one dimension and drop it: the per-value step
   of Feasible's point enumeration.  Unlike [change_space] this skips
   re-validating every constraint against the new dimension tuple — the
   tuple only shrinks and no new names can appear. *)
let fix_dim d v s =
  if not (List.mem d s.dims) then s
  else
    let repl = Linexpr.const v in
    let constrs =
      List.filter_map
        (fun c ->
          if Linexpr.coeff (Constr.expr c) d = 0 then Some c
          else
            let c' = Constr.subst d repl c in
            if Constr.is_tautology c' then None else Some c')
        s.constrs
    in
    { dims = List.filter (fun x -> x <> d) s.dims; constrs; simplified = false }

let bounds_of d s =
  let lowers = ref [] and uppers = ref [] and rest = ref [] in
  List.iter
    (fun c ->
      let e = Constr.expr c in
      let cd = Linexpr.coeff e d in
      if cd = 0 then rest := c :: !rest
      else
        let others = Linexpr.sub e (Linexpr.term cd d) in
        match c with
        | Constr.Ge _ ->
            if cd > 0 then lowers := (cd, Linexpr.neg others) :: !lowers
            else uppers := (-cd, others) :: !uppers
        | Constr.Eq _ ->
            let bound =
              if cd > 0 then (cd, Linexpr.neg others) else (-cd, others)
            in
            lowers := bound :: !lowers;
            uppers := bound :: !uppers)
    s.constrs;
  (List.rev !lowers, List.rev !uppers, List.rev !rest)

(* ceil/floor of integer division *)
let cdiv a b =
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) = (b < 0) then q + 1 else q

let fdiv a b =
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

let is_obviously_empty s =
  let s = simplify s in
  List.exists Constr.is_contradiction s.constrs
  || (* a single variable boxed into a constant [lb > ub] window, read off
        the single-variable constraints without any elimination *)
  List.exists
    (fun d ->
      let lowers, uppers, _ = bounds_of d s in
      let const_bound fold div bounds =
        List.fold_left
          (fun acc (c, e) ->
            if Linexpr.is_const e then
              let v = div (Linexpr.const_of e) c in
              match acc with None -> Some v | Some a -> Some (fold a v)
            else acc)
          None bounds
      in
      match (const_bound max cdiv lowers, const_bound min fdiv uppers) with
      | Some lb, Some ub -> lb > ub
      | _ -> false)
    s.dims

let const_range d s =
  let projected = project_onto [ d ] s in
  let lowers, uppers, _ = bounds_of d projected in
  let lb =
    List.fold_left
      (fun acc (c, e) ->
        if Linexpr.is_const e then
          let v = cdiv (Linexpr.const_of e) c in
          match acc with None -> Some v | Some a -> Some (max a v)
        else acc)
      None lowers
  in
  let ub =
    List.fold_left
      (fun acc (c, e) ->
        if Linexpr.is_const e then
          let v = fdiv (Linexpr.const_of e) c in
          match acc with None -> Some v | Some a -> Some (min a v)
        else acc)
      None uppers
  in
  (lb, ub)

let equal a b =
  a.dims = b.dims
  && List.sort Constr.compare a.constrs = List.sort Constr.compare b.constrs

let pp ppf s =
  Format.fprintf ppf "{ [%s] : %a }"
    (String.concat ", " s.dims)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " and ")
       Constr.pp)
    s.constrs

let to_string s = Format.asprintf "%a" pp s
