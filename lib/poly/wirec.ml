module W = Pom_wire.Wire

let linexpr =
  W.with_pp Linexpr.pp
  @@ W.conv "linexpr"
       (fun e ->
         (List.map (fun d -> (d, Linexpr.coeff e d)) (Linexpr.dims e),
          Linexpr.const_of e))
       (fun (terms, k) ->
         List.fold_left
           (fun acc (d, c) -> Linexpr.add acc (Linexpr.term c d))
           (Linexpr.const k) terms)
       (W.pair (W.list (W.pair W.string W.int)) W.int)

let constr =
  W.with_pp Constr.pp
  @@ W.union "constr"
       [
         W.case 0 "Eq" linexpr
           (fun e -> Constr.Eq e)
           (function Constr.Eq e -> Some e | Constr.Ge _ -> None);
         W.case 1 "Ge" linexpr
           (fun e -> Constr.Ge e)
           (function Constr.Ge e -> Some e | Constr.Eq _ -> None);
       ]

let basic_set =
  W.with_pp Basic_set.pp
  @@ W.conv "basic_set"
       (fun s -> (Basic_set.dims s, Basic_set.constraints s))
       (fun (dims, cs) -> Basic_set.make dims cs)
       (W.pair (W.list W.string) (W.list constr))

let sched_item =
  W.union "sched_item"
    [
      W.case 0 "Const" W.int
        (fun k -> Sched.Const k)
        (function Sched.Const k -> Some k | Sched.Dim _ -> None);
      W.case 1 "Dim" W.string
        (fun d -> Sched.Dim d)
        (function Sched.Dim d -> Some d | Sched.Const _ -> None);
    ]

let sched =
  W.with_pp Sched.pp @@ W.conv "sched" Sched.items Sched.of_items (W.list sched_item)
