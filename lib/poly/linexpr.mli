(** Integer affine (linear + constant) expressions over named dimensions.

    A value represents [sum_i c_i * d_i + k] where each [d_i] is a dimension
    name, [c_i] an integer coefficient, and [k] the constant term.  This is
    the atom from which constraints, sets, maps, and schedules are built,
    mirroring the role of [isl_aff] in the Integer Set Library.

    Values are hash-consed: constructors intern their result, so
    structurally equal expressions are physically shared and
    {!equal}/{!compare} short-circuit on physical equality. *)

type t

val zero : t

val const : int -> t

(** [var d] is the expression [1 * d]. *)
val var : string -> t

(** [term c d] is the expression [c * d]. *)
val term : int -> string -> t

val add : t -> t -> t

val sub : t -> t -> t

val neg : t -> t

(** [scale k e] multiplies every coefficient and the constant by [k]. *)
val scale : int -> t -> t

(** [coeff e d] is the coefficient of dimension [d] (0 when absent). *)
val coeff : t -> string -> int

val const_of : t -> int

(** Dimensions with a non-zero coefficient, sorted by name. *)
val dims : t -> string list

(** [is_const e] holds when no dimension has a non-zero coefficient. *)
val is_const : t -> bool

(** [subst d e' e] replaces dimension [d] with expression [e'] in [e]. *)
val subst : string -> t -> t -> t

(** [subst_all bindings e] applies all bindings simultaneously (not
    sequentially): occurrences of bound dims in the replacement expressions
    are not themselves rewritten. *)
val subst_all : (string * t) list -> t -> t

(** [rename_dim old_name new_name e] renames a dimension. *)
val rename_dim : string -> string -> t -> t

(** [eval env e] evaluates under a total assignment; raises [Not_found] if a
    dimension with non-zero coefficient is missing from [env]. *)
val eval : (string -> int) -> t -> int

(** GCD of all coefficients (not the constant); 0 for constant expressions. *)
val content : t -> int

(** Divide all coefficients and the constant by [k]; raises
    [Invalid_argument] when not exactly divisible. *)
val div_exact : int -> t -> t

val equal : t -> t -> bool

val compare : t -> t -> int

(** Number of distinct expressions currently interned (observability for
    the hash-consing table; resets when the capacity guard trips). *)
val interned_terms : unit -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string
