(** Keyed projection cache: concurrent storage for incremental
    Fourier–Motzkin elimination (see {!Basic_set.project_out}, which owns
    the algorithm and the budget semantics).

    Two levels: an {e exact} level keyed on the full constraint system, and
    a {e parametric} level keyed with every constant abstracted away, whose
    value is the raw symbolic combination (template) to be re-instantiated
    per candidate.  Neighboring tile sizes in a DSE ladder differ only in
    tile-bound constants, so they share templates. *)

(** How the projection was computed — replayed on hits so budget ticks and
    the blowup-cap check behave identically to a cold run. *)
type path = Unit_eq | Fm of { n_low : int; n_up : int; n_rest : int }

type projection = {
  p_dims : string list;
  p_constrs : Constr.t list;
  p_path : path;
}

(** [body] is the raw (un-compacted) symbolic constraint list over the
    remaining dimensions plus parameter dimensions [param_dim i], one per
    input constraint; instantiation substitutes the input constants and
    compacts. *)
type template = { t_dims : string list; body : Constr.t list; t_path : path }

type stats = {
  exact_hits : int;
  exact_misses : int;
  param_hits : int;
  param_misses : int;
}

(** The parameter dimension standing for input constraint [i]'s constant. *)
val param_dim : int -> string

(** Whether a dimension name is a cache parameter — sets mentioning one
    bypass the cache to avoid capture. *)
val is_param_dim : string -> bool

val exact_key : string -> string list -> Constr.t list -> string

val param_key : string -> string list -> Constr.t list -> string

(** Lookups count hits/misses; all access is mutex-protected and safe from
    any domain (cached values are immutable and shared). *)
val find_exact : string -> projection option

val store_exact : string -> projection -> unit

val find_param : string -> template option

val store_param : string -> template -> unit

val enabled : unit -> bool

val set_enabled : bool -> unit

(** Run [f] with the cache toggled, restoring the previous state after —
    the bit-identity tests compare cached against uncached projections. *)
val with_enabled : bool -> (unit -> 'a) -> 'a

val stats : unit -> stats

(** Overall fraction of projections served from either level. *)
val hit_rate : stats -> float

(** Drop both tables and zero the counters. *)
val reset : unit -> unit
