(* Keyed projection cache: the storage half of incremental Fourier–Motzkin.

   DSE evaluates ladders of neighboring design points whose iteration
   domains differ only in tile-bound *constants* — the constraint gradients,
   dimension tuples and elimination structure are identical from candidate
   to candidate, so every FM projection the dependence analysis performs is
   re-derivable from one symbolic computation.  Two levels of reuse:

   - the *exact* level keys a projection on the full constraint system
     (constants included) and returns the previously computed result — this
     is what fires inside one candidate's emptiness recursion, where the
     same shrinking systems are projected over and over;

   - the *parametric* level keys on the constraint system with every
     constant abstracted to a parameter dimension and stores the raw
     symbolic combination (the template); a hit substitutes the candidate's
     constants and re-compacts, skipping the bound split and the pairwise
     combination arithmetic.  This is the cross-tile-size reuse: project
     once, substitute per candidate.

   The cache stores *structure* only — {!Basic_set} owns the algorithm and
   replays the cap check and budget ticks identically on hits, so cached
   and cold runs are indistinguishable to the resilience layer. *)

type path = Unit_eq | Fm of { n_low : int; n_up : int; n_rest : int }

type projection = {
  p_dims : string list;
  p_constrs : Constr.t list;
  p_path : path;
}

type template = { t_dims : string list; body : Constr.t list; t_path : path }

type stats = {
  exact_hits : int;
  exact_misses : int;
  param_hits : int;
  param_misses : int;
}

(* Parameter dimensions use a prefix no frontend produces ("π$"); sets that
   already mention it (a projection of a template, conceivably) bypass the
   cache entirely rather than risk capture. *)
let param_prefix = "\207\128$"

let param_dim i = param_prefix ^ string_of_int i

let is_param_dim d =
  String.length d >= 3 && String.sub d 0 3 = param_prefix

let lock = Mutex.create ()
let exact : (string, projection) Hashtbl.t = Hashtbl.create 1024
let templates : (string, template) Hashtbl.t = Hashtbl.create 256
let c_exact_hits = ref 0
let c_exact_misses = ref 0
let c_param_hits = ref 0
let c_param_misses = ref 0
let enabled_flag = Atomic.make true

let enabled () = Atomic.get enabled_flag

let set_enabled b = Atomic.set enabled_flag b

let with_enabled b f =
  let saved = enabled () in
  set_enabled b;
  Fun.protect ~finally:(fun () -> set_enabled saved) f

(* Wholesale reset past the cap, like the memo's capacity guard: a long
   benchmark sweep must not retain every projection it ever computed. *)
let max_exact = 32_768
let max_templates = 8_192

let add_expr b ~with_const e =
  List.iter
    (fun d ->
      Buffer.add_string b d;
      Buffer.add_char b '*';
      Buffer.add_string b (string_of_int (Linexpr.coeff e d));
      Buffer.add_char b '+')
    (Linexpr.dims e);
  if with_const then Buffer.add_string b (string_of_int (Linexpr.const_of e))

let key ~with_const d dims constrs =
  let b = Buffer.create 256 in
  Buffer.add_string b d;
  Buffer.add_char b '\000';
  List.iter
    (fun x ->
      Buffer.add_string b x;
      Buffer.add_char b ',')
    dims;
  Buffer.add_char b '\000';
  List.iter
    (fun c ->
      Buffer.add_char b (match c with Constr.Eq _ -> '=' | Constr.Ge _ -> '>');
      add_expr b ~with_const (Constr.expr c);
      Buffer.add_char b '|')
    constrs;
  Buffer.contents b

let exact_key d dims constrs = key ~with_const:true d dims constrs

let param_key d dims constrs = key ~with_const:false d dims constrs

let find_exact k =
  Mutex.lock lock;
  let r = Hashtbl.find_opt exact k in
  (match r with
  | Some _ -> incr c_exact_hits
  | None -> incr c_exact_misses);
  Mutex.unlock lock;
  r

let store_exact k p =
  Mutex.lock lock;
  if Hashtbl.length exact >= max_exact then Hashtbl.reset exact;
  Hashtbl.replace exact k p;
  Mutex.unlock lock

let find_param k =
  Mutex.lock lock;
  let r = Hashtbl.find_opt templates k in
  (match r with
  | Some _ -> incr c_param_hits
  | None -> incr c_param_misses);
  Mutex.unlock lock;
  r

let store_param k t =
  Mutex.lock lock;
  if Hashtbl.length templates >= max_templates then Hashtbl.reset templates;
  Hashtbl.replace templates k t;
  Mutex.unlock lock

let stats () =
  Mutex.lock lock;
  let s =
    {
      exact_hits = !c_exact_hits;
      exact_misses = !c_exact_misses;
      param_hits = !c_param_hits;
      param_misses = !c_param_misses;
    }
  in
  Mutex.unlock lock;
  s

(* Every cacheable projection does an exact lookup first, so exact_hits +
   exact_misses is the call count; a parametric hit on the fallthrough still
   skips the combination arithmetic, so it counts as a hit. *)
let hit_rate s =
  let total = s.exact_hits + s.exact_misses in
  if total = 0 then 0.0
  else float_of_int (s.exact_hits + s.param_hits) /. float_of_int total

let reset () =
  Mutex.lock lock;
  Hashtbl.reset exact;
  Hashtbl.reset templates;
  c_exact_hits := 0;
  c_exact_misses := 0;
  c_param_hits := 0;
  c_param_misses := 0;
  Mutex.unlock lock
