open Pom_dsl
open Pom_pipeline

type result = {
  directives : Schedule.t list;
  prog : Pom_polyir.Prog.t;
  report : Pom_hls.Report.t;
}

(* The expert's hand schedule (Table IV), appended as a single pass. *)
let schedule_pass () =
  Pass.v ~name:"manual-bicg-schedule"
    ~descr:"expert's hand-written BICG schedule (Table IV)"
    (fun (st : State.t) ->
      let u = 24 in
      let directives =
        [
          (* distribute: drop the fused nest, keep the two loops sequential *)
          (* interchange the q statement so its reduction moves outward *)
          Schedule.interchange "s_q" "i" "j";
          (* each loop: strip-mine the parallel dimension, pipeline, unroll *)
          Schedule.split "s_s" "j" u "j_o" "j_i";
          Schedule.pipeline "s_s" "j_o" 1;
          Schedule.unroll "s_s" "j_i" u;
          Schedule.split "s_q" "i" u "i_o" "i_i";
          Schedule.pipeline "s_q" "i_o" 1;
          Schedule.unroll "s_q" "i_i" u;
          (* the expert under-partitions the shared matrix (banks are costly),
             accepting II = 2 on each loop *)
          Schedule.partition "A" [ 8; 8 ] Schedule.Cyclic;
          Schedule.partition "s" [ 8 ] Schedule.Cyclic;
          Schedule.partition "q" [ 8 ] Schedule.Cyclic;
        ]
      in
      { st with State.directives = st.State.directives @ directives })

let passes () = [ schedule_pass () ]

let bicg ?(device = Pom_hls.Device.xc7z020) n =
  let func = Pom_workloads.Polybench.bicg n in
  let st, _records =
    Pass.run
      (passes () @ [ Passes.schedule_apply (); Passes.synthesize () ])
      (State.init ~device func)
  in
  let directives, prog, report = Butil.extract st in
  { directives; prog; report }
