open Pom_dsl

let realize_order compute current desired =
  let cur = Array.of_list current in
  let swaps = ref [] in
  List.iteri
    (fun i want ->
      if cur.(i) <> want then begin
        let j = ref i in
        Array.iteri (fun k d -> if d = want then j := k) cur;
        swaps := Schedule.interchange compute cur.(i) want :: !swaps;
        let tmp = cur.(i) in
        cur.(i) <- cur.(!j);
        cur.(!j) <- tmp
      end)
    desired;
  List.rev !swaps

let locality_tiling ?(tile = 32) ?(exclude = []) func =
  let per_compute =
    List.map
      (fun (c : Compute.t) ->
        let name = c.Compute.name in
        let tiled =
          if List.mem name exclude then []
          else
            List.filter
              (fun (v : Var.t) -> Var.extent v >= 2 * tile)
              c.Compute.iters
        in
        let splits =
          List.map
            (fun (v : Var.t) ->
              Schedule.split name v.Var.name tile (v.Var.name ^ "_T")
                (v.Var.name ^ "_t"))
            tiled
        in
        (* order after splits: each tiled dim becomes (d_T, d_t) in place *)
        let after_splits =
          List.concat_map
            (fun (v : Var.t) ->
              if List.memq v tiled then [ v.Var.name ^ "_T"; v.Var.name ^ "_t" ]
              else [ v.Var.name ])
            c.Compute.iters
        in
        let desired =
          List.filter_map
            (fun (v : Var.t) ->
              if List.memq v tiled then Some (v.Var.name ^ "_T") else None)
            c.Compute.iters
          @ List.map
              (fun (v : Var.t) ->
                if List.memq v tiled then v.Var.name ^ "_t" else v.Var.name)
              c.Compute.iters
        in
        (splits @ realize_order name after_splits desired, (name, desired)))
      (Func.computes func)
  in
  (List.concat_map fst per_compute, List.map snd per_compute)

let fused_computes func =
  List.sort_uniq String.compare
    (List.concat_map
       (fun d ->
         match (d : Schedule.t) with
         | Schedule.After { compute; anchor; level } when level >= 1 ->
             [ compute; anchor ]
         | Schedule.Fuse { c1; c2; level } when level >= 1 -> [ c1; c2 ]
         | _ -> [])
       (Func.directives func))

let structural_directives = Pom_pipeline.Passes.structural_directives

let schedule func directives =
  Pom_pipeline.Memo.schedule Pom_pipeline.Memo.global func directives

let locality_tiling_pass ?tile ~exclude_fused () =
  Pom_pipeline.Pass.v ~name:"pluto-locality-tiling"
    ~descr:"Pluto-style cache tiling of large loop dimensions"
    (fun (st : Pom_pipeline.State.t) ->
      let func = st.Pom_pipeline.State.func in
      let exclude = if exclude_fused then fused_computes func else [] in
      let tiling, _ = locality_tiling ?tile ~exclude func in
      {
        st with
        Pom_pipeline.State.directives =
          st.Pom_pipeline.State.directives @ tiling;
      })

let extract (st : Pom_pipeline.State.t) =
  match (st.Pom_pipeline.State.prog, st.Pom_pipeline.State.report) with
  | Some prog, Some report ->
      (st.Pom_pipeline.State.directives, prog, report)
  | _ -> invalid_arg "Butil.extract: pipeline left no program or report"
