(** The hand-optimized BICG design of Table IV: an expert's restructuring
    (distribute, interchange the conflicted statement, pipeline and unroll
    each loop separately with matching partitions) — good, but it neither
    re-fuses the two loops nor balances the bank budget, so it lands behind
    the DSE design while spending more operators. *)

open Pom_dsl

type result = {
  directives : Schedule.t list;
  prog : Pom_polyir.Prog.t;
  report : Pom_hls.Report.t;
}

(** The hand schedule as a single registered pass, for embedding in a
    larger pipeline. *)
val passes : unit -> Pom_pipeline.State.t Pom_pipeline.Pass.t list

(** [bicg n] builds the kernel and applies the manual schedule. *)
val bicg : ?device:Pom_hls.Device.t -> int -> result
