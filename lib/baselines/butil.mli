(** Shared helpers for the reimplemented comparator frameworks. *)

open Pom_dsl

(** Interchange directives turning loop order [current] into [desired]. *)
val realize_order : string -> string list -> string list -> Schedule.t list

(** Pluto-style locality tiling: strip-mine every dimension whose extent
    reaches [2 * tile] and hoist the tile loops outward, per compute.
    Returns the directives and, per compute, the resulting loop order. *)
val locality_tiling :
  ?tile:int ->
  ?exclude:string list ->
  Func.t ->
  Schedule.t list * (string * string list) list

(** Computes named in any structural fusion directive. *)
val fused_computes : Func.t -> string list

(** The user's structural fusion directives (to be preserved verbatim). *)
val structural_directives : Func.t -> Schedule.t list

(** Apply directives to the unscheduled program (memoized through
    {!Pom_pipeline.Memo.global}). *)
val schedule : Func.t -> Schedule.t list -> Pom_polyir.Prog.t

(** The locality tiling as a registered pipeline pass, appending its
    directives to the state ([exclude_fused] skips computes named in
    structural fusion directives, whose nests must stay aligned). *)
val locality_tiling_pass :
  ?tile:int ->
  exclude_fused:bool ->
  unit ->
  Pom_pipeline.State.t Pom_pipeline.Pass.t

(** Final (directives, program, report) of a finished pipeline state;
    raises when a flow left either IR slot empty. *)
val extract :
  Pom_pipeline.State.t ->
  Schedule.t list * Pom_polyir.Prog.t * Pom_hls.Report.t
