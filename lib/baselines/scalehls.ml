open Pom_dsl
open Pom_polyir
open Pom_hls
open Pom_dse
open Pom_pipeline

type result = {
  directives : Schedule.t list;
  prog : Prog.t;
  report : Report.t;
  dse_time_s : float;
  tile_vectors : (string * int list) list;
  evaluations : int;
  pruned : int;
}

(* Interchange-only transformation stage: fused nests receive a single
   permutation (the first statement that asks for one wins), so the other
   statements may be left with tight dependences. *)
let interchange_stage func =
  let graph = Pom_depgraph.Graph.build func in
  let reorder_of (node : Pom_depgraph.Graph.node) =
    match Pom_depgraph.Hints.suggest node.Pom_depgraph.Graph.fine with
    | Pom_depgraph.Hints.Reorder order -> Some order
    | Pom_depgraph.Hints.Keep | Pom_depgraph.Hints.Skew_hint _
    | Pom_depgraph.Hints.Tight _ ->
        None
  in
  let fused = Butil.fused_computes func in
  let fused_order =
    List.find_map
      (fun n ->
        if List.mem n.Pom_depgraph.Graph.compute.Compute.name fused then
          reorder_of n
        else None)
      (Pom_depgraph.Graph.nodes graph)
  in
  List.concat_map
    (fun (node : Pom_depgraph.Graph.node) ->
      let c = node.Pom_depgraph.Graph.compute in
      let current = Compute.iter_names c in
      let desired =
        if List.mem c.Compute.name fused then fused_order
        else reorder_of node
      in
      match desired with
      | Some order when List.sort compare order = List.sort compare current ->
          Butil.realize_order c.Compute.name current order
      | Some _ | None -> [])
    (Pom_depgraph.Graph.nodes graph)

let interchange_pass () =
  Pass.v ~name:"scalehls-interchange"
    ~descr:"single-IR loop-order permutation (no distribution, no skew)"
    (fun (st : State.t) ->
      {
        st with
        State.directives =
          st.State.directives @ interchange_stage st.State.func;
      })

(* Denser factor ladder than POM's doubling: more trials, longer DSE. *)
let ladder = [ 2; 3; 4; 6; 8; 12; 16; 24; 32; 48; 64 ]

type unit_state = {
  id : int;
  members : (string * string list * int list) list;
  mutable par : int;
  mutable realization : Stage2.realization list;
}

let member_info (s : Stmt_poly.t) =
  let order = Stmt_poly.loop_order s in
  let extents =
    List.map
      (fun dim ->
        match Pom_poly.Basic_set.const_range dim s.Stmt_poly.domain with
        | Some lb, Some ub -> ub - lb + 1
        | _ -> invalid_arg "Scalehls: unbounded loop")
      order
  in
  (Stmt_poly.name s, order, extents)

let realize_unit u =
  u.realization <-
    List.map
      (fun (c, order, extents) -> Stage2.realize c order extents u.par)
      u.members

(* The plan (hardware application + partition derivation) is shared with
   {!Stage2.realization_plan} — same memo, same key — so a ladder rung the
   POM search already planned, or one a worker shipped back, costs a
   lookup here. *)
let evaluate_realized ~cache ~device ~composition ~latency_mode func base
    realizations =
  let hw =
    List.concat_map
      (fun rs -> List.concat_map (fun r -> r.Stage2.hw_directives) rs)
      realizations
  in
  let plan = Stage2.realization_plan ~cache func base hw in
  let prog, report =
    Memo.synthesize cache ~composition ~latency_mode ~device
      ~directives:plan.Memo.plan_directives func (fun () ->
        List.fold_left Prog.apply plan.Memo.plan_prog_hw plan.Memo.plan_parts)
  in
  (prog, plan.Memo.plan_directives, report)

let evaluate ~cache ~device ~composition ~latency_mode func base units =
  evaluate_realized ~cache ~device ~composition ~latency_mode func base
    (List.map (fun u -> u.realization) units)

(* Per-unit operator usage — the quantity ScaleHLS's per-loop budget check
   sees (global banking overhead is not in it).  Each check re-profiles the
   program, so it counts as a QoR evaluation. *)
let unit_usage ?count prog u =
  (match count with Some c -> incr c | None -> ());
  let profiles = Summary.profile_all prog in
  let mine =
    List.filter (fun p -> p.Summary.group = u.id) profiles
  in
  let partitions = Report.partition_fn prog in
  let eval = Latency.eval_group ~partitions mine in
  Resource.group_usage mine eval

let usage_fits (budget : Resource.usage) (u : Resource.usage) =
  u.Resource.dsp <= budget.Resource.dsp
  && u.Resource.lut <= budget.Resource.lut
  && u.Resource.ff <= budget.Resource.ff

let usage_sub (a : Resource.usage) (b : Resource.usage) =
  {
    Resource.dsp = a.Resource.dsp - b.Resource.dsp;
    lut = a.Resource.lut - b.Resource.lut;
    ff = a.Resource.ff - b.Resource.ff;
    bram = a.Resource.bram - b.Resource.bram;
  }

let greedy_pass ?(cache = Memo.global) ?jobs ?chunk ?checkpoint
    ?(on_result = fun _ -> ()) () =
  let jobs =
    match jobs with Some j -> max 1 j | None -> Pom_par.Par.jobs ()
  in
  let chunk =
    match chunk with Some c -> max 1 c | None -> Pom_par.Par.chunk ()
  in
  Pass.v ~name:"scalehls-greedy-dse"
    ~descr:"greedy program-order factor-ladder DSE under a dataflow budget"
    (fun (st : State.t) ->
      (* same journal protocol as {!Pom_dse.Stage2.run}: replay intact
         records into the report memo, journal every synthesized rung, and
         let the sequential greedy walk replay a resumed run into hits *)
      Memo.with_journal cache checkpoint @@ fun _journal_notes ->
      let wall0 = Unix.gettimeofday () and cpu0 = Sys.time () in
      let func = st.State.func and device = st.State.device in
      let composition = st.State.composition
      and latency_mode = st.State.latency_mode in
      let base = st.State.directives in
      let prog_base = Memo.schedule cache func base in
      let huge =
        List.exists
          (fun (c : Compute.t) ->
            List.exists
              (fun (v : Var.t) -> Var.extent v >= 8192)
              c.Compute.iters)
          (Func.computes func)
      in
      let units =
        let ids =
          List.sort_uniq Int.compare
            (List.map
               (fun (s : Stmt_poly.t) ->
                 Pom_poly.Sched.const_at s.Stmt_poly.sched 0)
               prog_base.Prog.stmts)
        in
        List.map
          (fun id ->
            let members =
              List.filter_map
                (fun (s : Stmt_poly.t) ->
                  if Pom_poly.Sched.const_at s.Stmt_poly.sched 0 = id then
                    Some (member_info s)
                  else None)
                prog_base.Prog.stmts
            in
            let u = { id; members; par = 1; realization = [] } in
            realize_unit u;
            u)
          ids
      in
      let evaluations = ref 0 in
      let pruned = ref 0 in
      let eval () =
        incr evaluations;
        (* the per-evaluation fault site shared with Stage2 *)
        Pom_resilience.Fault.point "dse:evaluate";
        evaluate ~cache ~device ~composition ~latency_mode func base units
      in
      let stopped = ref false in
      let candidate_prog () =
        let hw =
          List.concat_map
            (fun u ->
              List.concat_map (fun r -> r.Stage2.hw_directives) u.realization)
            units
        in
        (Stage2.realization_plan ~cache func base hw).Memo.plan_prog_hw
      in
      let current = ref (eval ()) in
      let budget =
        ref
          {
            Resource.dsp = device.Device.dsp;
            lut = device.Device.lut;
            ff = device.Device.ff;
            bram = Resource.bram18_blocks device;
          }
      in
      (* Process sharding (--jobs-mode procs): ladder rungs are dealt to
         worker processes as framed hardware-directive candidates; their
         keyed replies are absorbed into this memo, warming exactly the
         entries the greedy walk will ask for.  Pool spawn failure
         degrades to sequential evaluation. *)
      let pool =
        if
          jobs <= 1
          || Pom_par.Par.mode () <> Pom_par.Par.Procs
          || Pom_par.Pool.in_worker ()
        then None
        else
          match
            Pom_dse.Workpool.borrow ~jobs ~func ~device ~composition
              ~latency_mode ~base ()
          with
          | pool -> Some pool
          | exception _ -> None
      in
      Fun.protect
        ~finally:(fun () -> Option.iter Pom_dse.Workpool.release pool)
      @@ fun () ->
      (* With a worker budget, warm the report memo for all of a unit's
         ladder rungs before its greedy walk: a rung evaluation depends only
         on this unit's degree (the other units' realizations are frozen
         during the walk), so the whole ladder is known up front.  The walk
         itself replays the sequential algorithm against warm cache
         entries — results and counters are unchanged. *)
      let ladder_points u =
        let realize_at par =
          List.map
            (fun (c, order, extents) -> Stage2.realize c order extents par)
            u.members
        in
        let rungs, _ =
          List.fold_left
            (fun (acc, seen) par ->
              if par <= u.par then (acc, seen)
              else
                let r = realize_at par in
                if List.mem r seen then (acc, seen)
                else ((par, r) :: acc, r :: seen))
            ([], [ realize_at u.par ])
            ladder
        in
        let point (_, r) =
          List.map
            (fun v -> if v.id = u.id then r else v.realization)
            units
        in
        List.map point (List.rev rungs)
      in
      (* One unit's ladder is the canonical tile-ladder chunk: every rung
         shares the schedule skeleton (the other units are frozen), so it
         is submitted as one group — shipped in [chunk]-sized frames to
         the worker processes, or handed whole to the work-stealing
         executor, which splits it only when a worker goes idle. *)
      let prefetch_ladder_fn =
        if jobs <= 1 || Pom_par.Pool.in_worker () then None
        else
          match pool with
          | Some pool ->
              Some
                (fun u ->
                  let hws =
                    List.map
                      (List.concat_map (fun rs ->
                           List.concat_map
                             (fun r -> r.Stage2.hw_directives)
                             rs))
                      (ladder_points u)
                  in
                  if hws <> [] then
                    let { Pom_dse.Workpool.evaluated = items; _ } =
                      Pom_dse.Workpool.eval_chunks pool ~chunk hws
                    in
                    List.iter
                      (fun (hw, (it : Pom_dse.Workpool.item)) ->
                        Memo.absorb_report cache ~key:it.Pom_dse.Workpool.r_key
                          ( it.Pom_dse.Workpool.prog,
                            it.Pom_dse.Workpool.report );
                        Memo.absorb_plan cache
                          ~key:(Memo.plan_key ~base ~hw ~bank_cap:None func)
                          {
                            Memo.plan_directives =
                              base @ hw @ it.Pom_dse.Workpool.parts;
                            plan_parts = it.Pom_dse.Workpool.parts;
                            plan_prog_hw = it.Pom_dse.Workpool.prog_hw;
                          })
                      items)
          | None when Pom_par.Par.mode () = Pom_par.Par.Procs -> None
          | None ->
              Some
                (fun u ->
                  let points = Array.of_list (ladder_points u) in
                  if Array.length points > 0 then
                    ignore
                      (Pom_par.Chunks.run ~jobs ~chunk
                         ~f:(fun _ point ->
                           try
                             ignore
                               (evaluate_realized ~cache ~device ~composition
                                  ~latency_mode func base point)
                           with _ -> ())
                         [ points ]))
      in
      (* a pool that exhausts its respawn budget (POM311) retires the
         prefetch; the greedy walk replays sequentially, same design *)
      let prefetch_ladder = ref prefetch_ladder_fn in
      if not huge then
        List.iter
          (fun u ->
            if not !stopped then begin
            (* greedy: push this unit as far as the remaining budget allows *)
            (match !prefetch_ladder with
            | Some warm -> (
                try warm u
                with Pom_resilience.Error.Error { code = "POM311"; _ } ->
                  prefetch_ladder := None)
            | None -> ());
            let continue_ = ref true in
            List.iter
              (fun par ->
                if !continue_ then begin
                  let saved_par = u.par and saved_real = u.realization in
                  u.par <- par;
                  realize_unit u;
                  let cur_prog, _, _ = !current in
                  if
                    not
                      (Pom_analysis.Lint.gains_parallelism
                         ~before:(Pom_analysis.Lint.hw_signature cur_prog)
                         (candidate_prog ()))
                  then begin
                    (* analyzer pre-pruning: factor clamping collapsed this
                       rung onto the incumbent's realization — same outcome
                       as factor saturation, minus the synthesis *)
                    incr pruned;
                    u.par <- saved_par;
                    u.realization <- saved_real
                  end
                  else begin
                  match eval () with
                  | exception (Pom_resilience.Fault.Killed _ as e) ->
                      (* simulated process death: never absorbed *)
                      raise e
                  | exception (Pom_resilience.Budget.Budget_exceeded _ as e) ->
                      u.par <- saved_par;
                      u.realization <- saved_real;
                      if Pom_resilience.Policy.degrading () then begin
                        (* out of time mid-walk: stop the whole greedy
                           sweep at the incumbent *)
                        stopped := true;
                        continue_ := false
                      end
                      else raise e
                  | exception _ when Pom_resilience.Policy.degrading () ->
                      (* failed rung evaluation: backed out like factor
                         saturation, the climb continues (POM304) *)
                      u.par <- saved_par;
                      u.realization <- saved_real
                  | (trial_prog, _, trial_report) as trial ->
                  let usage = unit_usage ~count:evaluations trial_prog u in
                  let _, _, cur_report = !current in
                  if
                    usage_fits !budget usage
                    && trial_report.Report.latency < cur_report.Report.latency
                  then current := trial
                  else if
                    usage_fits !budget usage
                    && trial_report.Report.latency = cur_report.Report.latency
                  then begin
                    (* ladder step changed nothing (factor saturation): back
                       it out but keep climbing *)
                    u.par <- saved_par;
                    u.realization <- saved_real
                  end
                  else begin
                    u.par <- saved_par;
                    u.realization <- saved_real;
                    continue_ := false
                  end
                  end
                end)
              ladder;
            let prog, _, _ = !current in
            budget := usage_sub !budget (unit_usage ~count:evaluations prog u)
            end)
          units;
      let prog, directives, report = !current in
      let tile_vectors =
        List.concat_map
          (fun u ->
            List.map2
              (fun (c, _, _) (r : Stage2.realization) ->
                (c, r.Stage2.tile_vector))
              u.members u.realization)
          units
      in
      let dse_time_s = Unix.gettimeofday () -. wall0 in
      on_result
        {
          directives;
          prog;
          report;
          dse_time_s;
          tile_vectors;
          evaluations = !evaluations;
          pruned = !pruned;
        };
      {
        st with
        State.prog = Some prog;
        report = Some report;
        directives;
        tile_vectors;
        dse_time_s = st.State.dse_time_s +. dse_time_s;
        dse_cpu_s = st.State.dse_cpu_s +. (Sys.time () -. cpu0);
      })

let passes ?cache ?jobs ?chunk ?checkpoint ?on_result () =
  [
    interchange_pass ();
    Passes.structural ();
    greedy_pass ?cache ?jobs ?chunk ?checkpoint ?on_result ();
  ]

let run ?(device = Device.xc7z020) ?(dnn = false) func =
  let result = ref None in
  let latency_mode = if dnn then `Dataflow else `Sequential in
  let _st, _records =
    Pass.run
      (passes ~on_result:(fun r -> result := Some r) ())
      (State.init ~composition:Resource.Dataflow ~latency_mode ~device func)
  in
  match !result with Some r -> r | None -> assert false
