(** The POLSCA comparator: Pluto's schedule driven into an HLS back-end —
    locality tiling plus loop pipelining, but no dependence-aware
    restructuring, no unrolling, and no array partitioning for large
    problem sizes.  Loop-carried dependences left in the Pluto schedule
    dominate the achieved II (the paper's Section VII-B analysis). *)

open Pom_dsl

type result = { directives : Schedule.t list; prog : Pom_polyir.Prog.t; report : Pom_hls.Report.t }

(** The flow's transform passes (tiling, structural fusion, pipelining),
    for embedding in a larger pipeline; {!run} appends schedule application
    and synthesis. *)
val passes : unit -> Pom_pipeline.State.t Pom_pipeline.Pass.t list

val run : ?device:Pom_hls.Device.t -> Func.t -> result
