(** The Pluto comparator: automatic polyhedral locality optimization
    targeting multi-core CPUs — tiles for cache locality and parallelizes
    outer loops, but emits no FPGA-oriented pragmas (no pipelining, no
    unrolling, no array partitioning).  On an FPGA the resulting design
    executes essentially sequentially, which is the Fig. 2 observation. *)

open Pom_dsl

type result = { directives : Schedule.t list; prog : Pom_polyir.Prog.t; report : Pom_hls.Report.t }

(** The flow's transform passes (tiling, structural fusion), for embedding
    in a larger pipeline; {!run} appends schedule application and
    synthesis. *)
val passes : unit -> Pom_pipeline.State.t Pom_pipeline.Pass.t list

val run : ?device:Pom_hls.Device.t -> Func.t -> result
