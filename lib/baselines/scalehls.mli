(** The ScaleHLS comparator: the first MLIR HLS flow, reimplemented at the
    strategy level.  It shares POM's move space (interchange, tiling,
    pipelining, unrolling, partitioning) but differs in exactly the ways
    the paper identifies:

    - single-IR loop transformations only: no loop distribution, no
      skewing, no re-fusion — a fused nest gets one interchange applied to
      every statement, so conflicting dependence requirements (BICG) leave
      one statement tight;
    - greedy program-order design-space exploration instead of
      bottleneck-oriented search, so early loops exhaust the budget
      (the 2MM/3MM allocation of Table III);
    - no operator reuse across loops (dataflow composition): resources sum,
      and its per-loop budget check under-counts global banking overhead,
      which is how its DNN designs exceed 100% utilization (Table V);
    - degraded search at very large problem sizes (>= 8192): only basic
      pipelining is applied (Fig. 12). *)

open Pom_dsl

type result = {
  directives : Schedule.t list;
  prog : Pom_polyir.Prog.t;
  report : Pom_hls.Report.t;
  dse_time_s : float;
  tile_vectors : (string * int list) list;
  evaluations : int;
  pruned : int;
      (** ladder rungs dropped by the analyzer's pre-pruning oracle before
          synthesis (treated like factor saturation: backed out, climb
          continues) *)
}

(** The flow's passes (interchange, structural fusion, greedy DSE — the
    greedy pass fills the state's program/report slots itself and reports
    the full search [result] through [on_result]), for embedding in a
    larger pipeline.  Initialize the state with the dataflow composition
    and the intended latency mode.

    [jobs] (default {!Pom_par.Par.jobs}) sets the worker budget of the
    greedy pass.  With [jobs > 1] each unit's factor ladder — one
    tile-ladder chunk sharing a schedule skeleton — is speculatively
    evaluated concurrently to warm the plan and report memos before the
    sequential greedy walk replays over it: on the chunked work-stealing
    executor in domains mode, or shipped in [chunk]-sized request frames
    (default {!Pom_par.Par.chunk}) to worker processes in procs mode.  The
    chosen design is identical across job counts, chunk sizes and steal
    interleavings, and [jobs = 1] reproduces the sequential walk
    bit-for-bit.

    [checkpoint] names a crash-safe journal: every synthesized ladder rung
    is appended as it is evaluated, and a killed run resumed against the
    same journal replays the intact records into the report memo and
    re-derives the identical final design (see
    {!Pom_pipeline.Memo.with_journal}). *)
val passes :
  ?cache:Pom_pipeline.Memo.t ->
  ?jobs:int ->
  ?chunk:int ->
  ?checkpoint:string ->
  ?on_result:(result -> unit) ->
  unit ->
  Pom_pipeline.State.t Pom_pipeline.Pass.t list

val run : ?device:Pom_hls.Device.t -> ?dnn:bool -> Func.t -> result
