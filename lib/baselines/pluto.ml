open Pom_dsl
open Pom_pipeline

type result = {
  directives : Schedule.t list;
  prog : Pom_polyir.Prog.t;
  report : Pom_hls.Report.t;
}

let passes () =
  [
    Butil.locality_tiling_pass ~exclude_fused:true ();
    Passes.structural ();
  ]

let run ?(device = Pom_hls.Device.xc7z020) func =
  let st, _records =
    Pass.run
      (passes () @ [ Passes.schedule_apply (); Passes.synthesize () ])
      (State.init ~device func)
  in
  let directives, prog, report = Butil.extract st in
  { directives; prog; report }
