open Pom_dsl
open Pom_pipeline

type result = {
  directives : Schedule.t list;
  prog : Pom_polyir.Prog.t;
  report : Pom_hls.Report.t;
}

(* Pipeline the innermost loop of every nest (in the post-tiling order);
   POLSCA adds pragmas on top of the Pluto schedule but no partitioning. *)
let pipeline_pass () =
  Pass.v ~name:"polsca-pipeline"
    ~descr:"pipeline the innermost loop of every tiled nest"
    (fun (st : State.t) ->
      let func = st.State.func in
      let _, orders =
        Butil.locality_tiling ~exclude:(Butil.fused_computes func) func
      in
      let pipelines =
        List.map
          (fun (c : Compute.t) ->
            let name = c.Compute.name in
            let order =
              match List.assoc_opt name orders with
              | Some o when o <> [] -> o
              | _ -> Compute.iter_names c
            in
            Schedule.pipeline name (List.nth order (List.length order - 1)) 1)
          (Func.computes func)
      in
      { st with State.directives = st.State.directives @ pipelines })

let passes () =
  [
    Butil.locality_tiling_pass ~exclude_fused:true ();
    Passes.structural ();
    pipeline_pass ();
  ]

let run ?(device = Pom_hls.Device.xc7z020) func =
  let st, _records =
    Pass.run
      (passes () @ [ Passes.schedule_apply (); Passes.synthesize () ])
      (State.init ~device func)
  in
  let directives, prog, report = Butil.extract st in
  { directives; prog; report }
