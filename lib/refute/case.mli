(** Refutation cases: the self-contained inputs the refuter throws at the
    compiler's trust anchors.  A case carries everything needed to replay
    the check that found it — a bounded integer set for the polyhedral
    oracle, or a whole DSL function (computes plus recorded directives)
    for the semantic and degradation oracles — and serializes through
    {!Pom_wire.Wire} so every counterexample the engine ever shrinks can
    be committed to [test/refute-corpus/] and replayed as a regression
    test. *)

(** A bounded integer set: every dimension boxed into [lo, hi]
    (inclusive), plus arbitrary extra affine constraints.  The box makes
    brute-force point enumeration — the oracle's ground truth — finite
    by construction. *)
type poly = private {
  dims : string list;
  lo : int;
  hi : int;
  extra : Pom_poly.Constr.t list;
}

(** [make_poly ~dims ~lo ~hi extra] validates the case: 1-4 distinct
    dimensions, [lo <= hi], a box no wider than {!max_width} (so corpus
    replay cannot be DoS'd by a huge enumeration), and every extra
    constraint mentioning only listed dimensions.  Raises
    [Invalid_argument] otherwise — including from the wire decoder, where
    it surfaces as typed corrupt data. *)
val make_poly :
  dims:string list -> lo:int -> hi:int -> Pom_poly.Constr.t list -> poly

val max_width : int

(** The basic set a poly case denotes: box constraints plus extras. *)
val set_of_poly : poly -> Pom_poly.Basic_set.t

(** All points of the bounding box, in lexicographic dimension order, as
    assignments aligned with [dims]. *)
val box_points : poly -> int list list

type t =
  | Poly of poly
  | Semantic of Pom_dsl.Func.t
      (** cross-check legality verdicts against observed execution *)
  | Degrade of Pom_dsl.Func.t
      (** replay the legality search under budgets and injected faults *)
  | Qor of Pom_dsl.Func.t
      (** cross-check QoR-model group latencies against
          {!Pom_sim.Cycles} operational lower bounds *)

val family : t -> string

val codec : t Pom_wire.Wire.t

(** Stable identifier for filenames: family plus a CRC-32 of the wire
    encoding, e.g. ["poly-1a2b3c4d"]. *)
val id : t -> string

val pp : Format.formatter -> t -> unit

val to_string : t -> string
