(** The refutation search loop: generate cases, run the family's oracle,
    greedily shrink whatever fails, and report.

    The engine is deterministic given a seed, and cooperative under the
    ambient {!Pom_resilience.Budget}: a deadline or tick cap installed by
    the driver stops the search cleanly mid-stream ([exhausted] is set,
    the statistics cover the cases actually run, and counterexamples found
    before expiry are kept). *)

type family = [ `Poly | `Semantic | `Degrade | `Qor ]

val family_of_string : string -> (family, string) result

val family_name : family -> string

val all_families : family list

type finding = {
  case : Case.t;  (** shrunk to a local minimum *)
  diag : Pom_analysis.Diagnostic.t;  (** from the shrunk case's re-check *)
  shrink_steps : int;
}

type stats = {
  family : family;
  cases : int;  (** cases actually generated and checked *)
  passed : int;
  skipped : int;
  precision_misses : int;
  findings : finding list;
  exhausted : bool;  (** the ambient budget expired mid-search *)
  elapsed_s : float;
}

(** Greedy shrink: repeatedly move to the first strictly-smaller candidate
    that still fails, up to [max_steps] (default 200) moves.  Candidates
    whose check skips or passes are not taken — a lossy rebuild can never
    invent a counterexample.  Returns the final case, its diagnostic, and
    the number of moves taken. *)
val shrink :
  ?max_steps:int ->
  Case.t ->
  Pom_analysis.Diagnostic.t ->
  Case.t * Pom_analysis.Diagnostic.t * int

(** [run ?seed ?cases family] generates and checks [cases] inputs (default
    1000) from [seed] (default 0).  [on_finding] fires with each shrunk
    counterexample as it is found (the driver saves them to the corpus
    immediately, so a later crash loses nothing). *)
val run :
  ?seed:int ->
  ?cases:int ->
  ?on_finding:(finding -> unit) ->
  family ->
  stats

(** Replay every corpus case through its oracle.  Returns
    [(path, case, verdict)] per case; a verdict other than
    [Pass]/[Precision]/[Skip] means a regression resurfaced. *)
val replay : string -> (string * Case.t * Oracle.verdict) list

val pp_stats : Format.formatter -> stats -> unit
