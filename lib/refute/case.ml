open Pom_poly

type poly = {
  dims : string list;
  lo : int;
  hi : int;
  extra : Constr.t list;
}

let max_width = 16

let make_poly ~dims ~lo ~hi extra =
  if dims = [] || List.length dims > 4 then
    invalid_arg "Refute.Case: poly case needs 1-4 dimensions";
  if lo > hi then invalid_arg "Refute.Case: poly case box has lo > hi";
  if hi - lo > max_width then
    invalid_arg
      (Printf.sprintf "Refute.Case: poly case box wider than %d" max_width);
  let p = { dims; lo; hi; extra } in
  (* [Basic_set.make] re-runs the dimension checks: duplicate dims and
     constraints over unknown dims are rejected here, so a decoded case is
     as valid as a generated one *)
  ignore
    (Basic_set.make dims
       (List.concat_map
          (fun d ->
            [
              Constr.ge (Linexpr.var d) (Linexpr.const lo);
              Constr.le (Linexpr.var d) (Linexpr.const hi);
            ])
          dims
       @ extra));
  p

let set_of_poly p =
  Basic_set.make p.dims
    (List.concat_map
       (fun d ->
         [
           Constr.ge (Linexpr.var d) (Linexpr.const p.lo);
           Constr.le (Linexpr.var d) (Linexpr.const p.hi);
         ])
       p.dims
    @ p.extra)

let box_points p =
  let rec go = function
    | 0 -> [ [] ]
    | n ->
        let rest = go (n - 1) in
        List.concat_map
          (fun tail -> List.init (p.hi - p.lo + 1) (fun v -> (p.lo + v) :: tail))
          rest
  in
  (* build innermost-last so the result is lexicographic in dim order *)
  List.sort compare (go (List.length p.dims))

type t =
  | Poly of poly
  | Semantic of Pom_dsl.Func.t
  | Degrade of Pom_dsl.Func.t
  | Qor of Pom_dsl.Func.t

let family = function
  | Poly _ -> "poly"
  | Semantic _ -> "semantic"
  | Degrade _ -> "degrade"
  | Qor _ -> "qor"

module W = Pom_wire.Wire

let poly_codec =
  W.conv "refute-poly"
    (fun p -> ((p.dims, p.lo, p.hi), p.extra))
    (fun ((dims, lo, hi), extra) -> make_poly ~dims ~lo ~hi extra)
    (W.pair
       (W.triple (W.list W.string) W.int W.int)
       (W.list Pom_poly.Wirec.constr))

let codec =
  W.union "refute-case"
    [
      W.case 1 "poly" poly_codec
        (fun p -> Poly p)
        (function Poly p -> Some p | _ -> None);
      W.case 2 "semantic" Pom_dsl.Wirec.func
        (fun f -> Semantic f)
        (function Semantic f -> Some f | _ -> None);
      W.case 3 "degrade" Pom_dsl.Wirec.func
        (fun f -> Degrade f)
        (function Degrade f -> Some f | _ -> None);
      W.case 4 "qor" Pom_dsl.Wirec.func
        (fun f -> Qor f)
        (function Qor f -> Some f | _ -> None);
    ]

let id t =
  Printf.sprintf "%s-%08x" (family t)
    (Pom_wire.Crc32.string (W.to_string codec t))

let pp ppf = function
  | Poly p ->
      Format.fprintf ppf "@[<hv 2>poly %a@ (box [%d, %d])@]" Basic_set.pp
        (set_of_poly p) p.lo p.hi
  | Semantic f -> Format.fprintf ppf "@[<hv 2>semantic@ %a@]" Pom_dsl.Func.pp f
  | Degrade f -> Format.fprintf ppf "@[<hv 2>degrade@ %a@]" Pom_dsl.Func.pp f
  | Qor f -> Format.fprintf ppf "@[<hv 2>qor@ %a@]" Pom_dsl.Func.pp f

let to_string t = Format.asprintf "%a" pp t
