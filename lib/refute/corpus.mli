(** The counterexample corpus: every shrunk counterexample the engine ever
    found, persisted as one [<family>-<crc>.case] file per case under a
    corpus directory (the repo commits [test/refute-corpus/]).

    A [.case] file is a {!Pom_wire.Frame} stream of kind ["pom-refute-case"]:
    a header plus a single tag-1 record holding the {!Case.codec} encoding.
    Unknown record tags are skipped on read (a newer writer may attach
    metadata records), and torn or bit-flipped files surface as
    {!Pom_wire.Wire.Corrupt} — never a crash. *)

val kind : string

val version : int

(** [save dir case] writes [dir/<Case.id case>.case] (creating [dir] if
    missing) and returns the path written. *)
val save : string -> Case.t -> string

(** [load path] reads one case. Raises {!Pom_wire.Wire.Corrupt} on damage,
    {!Pom_wire.Wire.Version_mismatch} on a future schema. *)
val load : string -> Case.t

(** All cases of [dir] ([*.case], sorted by filename for determinism), as
    [(path, case)] pairs. A missing directory is an empty corpus. *)
val load_all : string -> (string * Case.t) list
