module Budget = Pom_resilience.Budget

type family = [ `Poly | `Semantic | `Degrade | `Qor ]

let family_name = function
  | `Poly -> "poly"
  | `Semantic -> "semantic"
  | `Degrade -> "degrade"
  | `Qor -> "qor"

let family_of_string = function
  | "poly" -> Ok `Poly
  | "semantic" -> Ok `Semantic
  | "degrade" -> Ok `Degrade
  | "qor" -> Ok `Qor
  | s ->
      Error (Printf.sprintf "unknown family %S (poly|semantic|degrade|qor)" s)

let all_families = [ `Poly; `Semantic; `Degrade; `Qor ]

type finding = {
  case : Case.t;
  diag : Pom_analysis.Diagnostic.t;
  shrink_steps : int;
}

type stats = {
  family : family;
  cases : int;
  passed : int;
  skipped : int;
  precision_misses : int;
  findings : finding list;
  exhausted : bool;
  elapsed_s : float;
}

(* a budget expiry inside a check is not a verdict on the case *)
let check_budgeted case =
  try Oracle.check case
  with Budget.Budget_exceeded { site; _ } ->
    Oracle.Skip (Printf.sprintf "budget expired at %s" site)

let shrink ?(max_steps = 200) case diag =
  let rec go case diag steps =
    if steps >= max_steps then (case, diag, steps)
    else
      let next =
        List.find_map
          (fun candidate ->
            match check_budgeted candidate with
            | Oracle.Fail d -> Some (candidate, d)
            | _ -> None)
          (Gen.shrink_case case)
      in
      match next with
      | Some (candidate, d) -> go candidate d (steps + 1)
      | None -> (case, diag, steps)
  in
  go case diag 0

let generator = function
  | `Poly -> QCheck.Gen.map (fun p -> Case.Poly p) (Gen.poly ())
  | `Semantic -> QCheck.Gen.map (fun f -> Case.Semantic f) (Gen.func ())
  | `Degrade ->
      (* degradation cases want schedules that actually apply, so keep the
         directive surface identical to the semantic family *)
      QCheck.Gen.map (fun f -> Case.Degrade f) (Gen.func ())
  | `Qor ->
      (* the QoR bounds want schedules that actually synthesize, which is
         the same surface the semantic family explores *)
      QCheck.Gen.map (fun f -> Case.Qor f) (Gen.func ())

let run ?(seed = 0) ?(cases = 1000) ?(on_finding = fun _ -> ()) family =
  let t0 = Unix.gettimeofday () in
  let rand = Random.State.make [| seed; 0x7e57 |] in
  let gen = generator family in
  let passed = ref 0
  and skipped = ref 0
  and precision = ref 0
  and findings = ref []
  and ran = ref 0
  and exhausted = ref false in
  (try
     for _ = 1 to cases do
       (* stop promptly once a deadline passes: every later case would
          only skip on the same expired budget *)
       Budget.check "refute:engine";
       let case = QCheck.Gen.generate1 ~rand gen in
       incr ran;
       match check_budgeted case with
       | Oracle.Pass -> incr passed
       | Oracle.Skip _ -> incr skipped
       | Oracle.Precision _ -> incr precision
       | Oracle.Fail diag ->
           let case, diag, shrink_steps = shrink case diag in
           let f = { case; diag; shrink_steps } in
           findings := f :: !findings;
           on_finding f
     done
   with Budget.Budget_exceeded _ -> exhausted := true);
  {
    family;
    cases = !ran;
    passed = !passed;
    skipped = !skipped;
    precision_misses = !precision;
    findings = List.rev !findings;
    exhausted = !exhausted;
    elapsed_s = Unix.gettimeofday () -. t0;
  }

let replay dir =
  List.map
    (fun (path, case) -> (path, case, check_budgeted case))
    (Corpus.load_all dir)

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>%s: %d cases in %.2fs (%.0f/s)%s@,\
     \  %d passed, %d skipped, %d precision misses, %d counterexamples@]"
    (family_name s.family) s.cases s.elapsed_s
    (if s.elapsed_s > 0. then float_of_int s.cases /. s.elapsed_s else 0.)
    (if s.exhausted then " [budget exhausted]" else "")
    s.passed s.skipped s.precision_misses
    (List.length s.findings)
