(** Differential oracles: decide whether a generated case refutes one of
    the compiler's trust anchors.

    Each family cross-checks an optimized implementation against an
    independent ground truth:
    - {b poly}: {!Pom_poly.Basic_set} projection and {!Pom_poly.Feasible}
      emptiness/enumeration/sampling against brute-force enumeration of
      the case's bounding box;
    - {b semantic}: the {!Pom_polyir.Legality} verdict against observed
      execution ({!Pom_sim.Interp.divergence}) — an accepted schedule that
      diverges is a soundness counterexample, a rejected schedule that
      does not diverge is only a precision miss;
    - {b degrade}: the POM30x degradation contract — faults injected at
      analysis-only sites must never change the produced design, only the
      diagnostics;
    - {b qor}: the QoR model's group latencies against
      {!Pom_sim.Cycles} operational lower bounds (distinct serial steps,
      bank port pressure) — a model latency below a bound no schedule can
      beat is optimistic fiction, and synthesis must be deterministic. *)

type verdict =
  | Pass
  | Skip of string
      (** case not applicable (schedule rejected by the transform engine,
          budget expired mid-check, ...) — neither evidence nor failure *)
  | Precision of string
      (** legality said no but execution agrees: imprecision statistic,
          not a soundness bug *)
  | Fail of Pom_analysis.Diagnostic.t
      (** a genuine counterexample, carrying the POM4xx diagnostic *)

val is_fail : verdict -> bool

(** Diagnostic codes emitted on failure: [POM401] polyhedral oracle
    mismatch, [POM402] legality soundness counterexample, [POM403]
    accepted schedule crashed the simulator, [POM404] degradation contract
    violated, [POM406] QoR model below an operational lower bound (or
    nondeterministic). [POM405] is the hint code used by reports for
    precision misses. *)

val check_poly : Case.poly -> verdict

val check_semantic : Pom_dsl.Func.t -> verdict

val check_degrade : Pom_dsl.Func.t -> verdict

val check_qor : Pom_dsl.Func.t -> verdict

(** Dispatch on the case family. *)
val check : Case.t -> verdict

val pp_verdict : Format.formatter -> verdict -> unit
