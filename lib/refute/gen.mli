(** Random case generators and shrinkers for the refutation engine.

    One shared home for the ad-hoc random-set generators that used to be
    duplicated across [test/test_basic_set.ml] and [test/test_feasible.ml],
    plus generators for whole DSL loop nests with random directive sets.
    Generators are plain [QCheck.Gen.t] values (deterministic given a
    [Random.State.t]); shrinkers return strictly-smaller candidate lists
    the engine greedily descends while a case keeps failing. *)

(** Bounded random integer sets.  [max_dims] caps the dimension count
    (default 3); [extra] caps the number of non-box constraints (default
    4); [coeff]/[konst] bound the constraint coefficients and constants
    (defaults 3 and 6).  Roughly one in five extra constraints is an
    equality, exercising the GCD/divisibility paths. *)
val poly :
  ?max_dims:int ->
  ?extra:int ->
  ?coeff:int ->
  ?konst:int ->
  unit ->
  Case.poly QCheck.Gen.t

(** Shrink candidates: drop an extra constraint, shrink a coefficient or
    constant toward zero, narrow the box, drop the last dimension. *)
val shrink_poly : Case.poly -> Case.poly list

(** [poly] packaged with printer and shrinker for [QCheck.Test.make]. *)
val arb_poly :
  ?max_dims:int ->
  ?extra:int ->
  ?coeff:int ->
  ?konst:int ->
  unit ->
  Case.poly QCheck.arbitrary

(** Random small loop nests: 1-3 computes over rank-2 arrays [A]/[B]/[C]
    (shape {!shape_n} x {!shape_n}), 1-3 iterators each (extents 2-4),
    affine accesses [iter + offset], occasional triangular guards and
    accumulation bodies, plus 0-3 random directives (interchange, split,
    tile, skew, reverse, pipeline, unroll, partition, level-1 after/fuse)
    whose dimension names track the renames earlier directives introduce,
    so most generated schedules actually apply. *)
val func : unit -> Pom_dsl.Func.t QCheck.Gen.t

val shape_n : int

(** Shrink candidates: drop a directive, drop a compute, shrink an
    iterator extent, replace the body by one of its operands. *)
val shrink_func : Pom_dsl.Func.t -> Pom_dsl.Func.t list

(** Shrinker dispatching on the case family. *)
val shrink_case : Case.t -> Case.t list
