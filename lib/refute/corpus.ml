module W = Pom_wire.Wire
module Frame = Pom_wire.Frame

let kind = "pom-refute-case"

let version = 1

let tag_case = 1

let save dir case =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let path = Filename.concat dir (Case.id case ^ ".case") in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Frame.output_header oc { Frame.kind; version };
      Frame.output_record oc ~tag:tag_case (W.to_string Case.codec case));
  path

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let h = Frame.input_header ~what:path ic in
      if h.Frame.kind <> kind then
        raise (W.Corrupt { what = path; detail = "not a refute case file" });
      if h.Frame.version > version then
        raise
          (W.Version_mismatch
             { what = path; expected = version; got = h.Frame.version });
      let rec find () =
        match Frame.input_record ~what:path ic with
        | None -> raise (W.Corrupt { what = path; detail = "no case record" })
        | Some (tag, payload) when tag = tag_case ->
            W.of_string_exn Case.codec payload
        | Some _ -> find () (* a newer writer's metadata record: skip *)
      in
      find ())

let load_all dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".case")
    |> List.sort compare
    |> List.map (fun f ->
           let path = Filename.concat dir f in
           (path, load path))
