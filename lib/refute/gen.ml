open Pom_poly
open Pom_dsl

let gi lo hi st = QCheck.Gen.int_range lo hi st

let pick xs st = QCheck.Gen.oneofl xs st

(* ---------- polyhedral cases ---------- *)

(* rebuild an expression from explicit (dim, coeff) terms and a constant:
   the shrinker works on this representation *)
let expr_of_terms terms konst =
  List.fold_left
    (fun acc (d, c) -> Linexpr.add acc (Linexpr.term c d))
    (Linexpr.const konst) terms

let constr_of is_eq terms konst =
  let e = expr_of_terms terms konst in
  if is_eq then Constr.Eq e else Constr.Ge e

let random_constr dims ~coeff ~konst st =
  let terms = List.map (fun d -> (d, gi (-coeff) coeff st)) dims in
  let k = gi (-konst) konst st in
  (* one in five is an equality: exercises the GCD/divisibility and
     unit-equality-substitution paths of projection and emptiness *)
  constr_of (gi 0 4 st = 0) terms k

let poly ?(max_dims = 3) ?(extra = 4) ?(coeff = 3) ?(konst = 6) () st =
  let nd = gi 1 max_dims st in
  let dims = List.filteri (fun i _ -> i < nd) [ "i"; "j"; "k"; "l" ] in
  (* narrower boxes as dimensionality grows keeps brute force cheap *)
  let width = match nd with 1 -> 8 | 2 -> 6 | _ -> 4 in
  let lo = gi (-4) 2 st in
  let hi = lo + gi 0 width st in
  let n = gi 0 extra st in
  let extra = List.init n (fun _ -> random_constr dims ~coeff ~konst st) in
  Case.make_poly ~dims ~lo ~hi extra

let constr_terms c =
  let e = Constr.expr c in
  ( Constr.is_eq c,
    List.map (fun d -> (d, Linexpr.coeff e d)) (Linexpr.dims e),
    Linexpr.const_of e )

(* halve one coefficient (or the constant) toward zero per candidate *)
let shrink_constr c =
  let is_eq, terms, k = constr_terms c in
  let halve v = v / 2 in
  let coeff_candidates =
    List.mapi
      (fun i (_, ci) ->
        if ci = 0 then None
        else
          Some
            (constr_of is_eq
               (List.mapi
                  (fun j (d, cj) -> (d, if i = j then halve cj else cj))
                  terms)
               k))
      terms
    |> List.filter_map Fun.id
  in
  if k <> 0 then constr_of is_eq terms (halve k) :: coeff_candidates
  else coeff_candidates

let shrink_poly (p : Case.poly) =
  let with_extra extra =
    try Some (Case.make_poly ~dims:p.Case.dims ~lo:p.Case.lo ~hi:p.Case.hi extra)
    with Invalid_argument _ -> None
  in
  let drop_one =
    List.mapi
      (fun i _ -> with_extra (List.filteri (fun j _ -> j <> i) p.Case.extra))
      p.Case.extra
  in
  let shrink_one =
    List.concat
      (List.mapi
         (fun i c ->
           List.map
             (fun c' ->
               with_extra
                 (List.mapi (fun j cj -> if i = j then c' else cj) p.Case.extra))
             (shrink_constr c))
         p.Case.extra)
  in
  let narrow =
    if p.Case.lo < p.Case.hi then
      [
        (try
           Some
             (Case.make_poly ~dims:p.Case.dims ~lo:(p.Case.lo + 1)
                ~hi:p.Case.hi p.Case.extra)
         with Invalid_argument _ -> None);
        (try
           Some
             (Case.make_poly ~dims:p.Case.dims ~lo:p.Case.lo
                ~hi:(p.Case.hi - 1) p.Case.extra)
         with Invalid_argument _ -> None);
      ]
    else []
  in
  let drop_dim =
    if List.length p.Case.dims > 1 then
      let d = List.nth p.Case.dims (List.length p.Case.dims - 1) in
      let dims = List.filter (( <> ) d) p.Case.dims in
      let extra =
        List.filter (fun c -> not (List.mem d (Constr.dims c))) p.Case.extra
      in
      [
        (try Some (Case.make_poly ~dims ~lo:p.Case.lo ~hi:p.Case.hi extra)
         with Invalid_argument _ -> None);
      ]
    else []
  in
  List.filter_map Fun.id (drop_one @ shrink_one @ narrow @ drop_dim)

let arb_poly ?max_dims ?extra ?coeff ?konst () =
  QCheck.make
    ~print:(fun p -> Case.to_string (Case.Poly p))
    ~shrink:(fun p -> QCheck.Iter.of_list (shrink_poly p))
    (poly ?max_dims ?extra ?coeff ?konst ())

(* ---------- semantic cases: random loop nests + directives ---------- *)

let shape_n = 8

let arrays =
  List.map
    (fun n -> Placeholder.make n [ shape_n; shape_n ] Dtype.p_float32)
    [ "A"; "B"; "C" ]

let random_index iters st =
  match gi 0 6 st with
  | 0 -> Expr.ixc (gi 0 3 st)
  | 1 | 2 -> Expr.( +! ) (Expr.ix (pick iters st)) (Expr.ixc (gi 0 2 st))
  | _ -> Expr.ix (pick iters st)

let random_binop st =
  pick [ Expr.Add; Expr.Sub; Expr.Mul; Expr.Min; Expr.Max ] st

let func () st =
  let n_computes = gi 1 3 st in
  let func = Func.create "refute" in
  (* current dimension names per compute, in loop order, threaded through
     the directive generation so later directives reference the names
     earlier splits/skews/reverses introduced *)
  let live = Hashtbl.create 4 in
  for m = 0 to n_computes - 1 do
    let cname = Printf.sprintf "s%d" m in
    let n_iters = gi 1 3 st in
    let iters =
      List.filteri (fun i _ -> i < n_iters) [ "i"; "j"; "k" ]
      |> List.map (fun d -> Var.make d 0 (gi 2 4 st))
    in
    let dest_arr = pick arrays st in
    let dest_ixs = [ random_index iters st; random_index iters st ] in
    let accum = gi 0 2 st = 0 in
    let base =
      if accum then Expr.access dest_arr dest_ixs
      else
        Expr.access (pick arrays st)
          [ random_index iters st; random_index iters st ]
    in
    let n_loads = gi 1 2 st in
    let body =
      List.fold_left
        (fun acc _ ->
          let rhs =
            if gi 0 5 st = 0 then Expr.fconst (float_of_int (gi 1 3 st))
            else
              Expr.access (pick arrays st)
                [ random_index iters st; random_index iters st ]
          in
          Expr.Bin (random_binop st, acc, rhs))
        base
        (List.init n_loads Fun.id)
    in
    let where =
      match iters with
      | (a : Var.t) :: (b : Var.t) :: _ when gi 0 5 st = 0 ->
          [ Expr.Cle (Expr.ix_name a.Var.name, Expr.ix_name b.Var.name) ]
      | _ -> []
    in
    ignore
      (Func.compute func cname ~iters ~where ~body ~dest:(dest_arr, dest_ixs) ());
    Hashtbl.replace live cname (List.map (fun (v : Var.t) -> v.Var.name) iters)
  done;
  let fresh = ref 0 in
  let freshname base =
    incr fresh;
    Printf.sprintf "%s%d" base !fresh
  in
  let replace1 d news dims =
    List.concat_map (fun x -> if x = d then news else [ x ]) dims
  in
  let n_dirs = gi 0 3 st in
  for _ = 1 to n_dirs do
    let cname = Printf.sprintf "s%d" (gi 0 (n_computes - 1) st) in
    let dims = Hashtbl.find live cname in
    let nd = List.length dims in
    let kind =
      QCheck.Gen.frequencyl
        [
          (3, `Interchange);
          (3, `Split);
          (2, `Tile);
          (2, `Skew);
          (2, `Reverse);
          (3, `Pipeline);
          (3, `Unroll);
          (2, `Partition);
          (1, `After);
          (1, `Fuse);
        ]
        st
    in
    match kind with
    | `Interchange when nd >= 2 ->
        let p = gi 0 (nd - 2) st in
        let q = gi (p + 1) (nd - 1) st in
        let d1 = List.nth dims p and d2 = List.nth dims q in
        Func.schedule func (Schedule.interchange cname d1 d2);
        Hashtbl.replace live cname
          (List.map
             (fun x -> if x = d1 then d2 else if x = d2 then d1 else x)
             dims)
    | `Split ->
        let d = pick dims st in
        let f = gi 2 3 st in
        let o = freshname (d ^ "o") and i = freshname (d ^ "i") in
        Func.schedule func (Schedule.split cname d f o i);
        Hashtbl.replace live cname (replace1 d [ o; i ] dims)
    | `Tile when nd >= 2 ->
        let p = gi 0 (nd - 2) st in
        let d1 = List.nth dims p and d2 = List.nth dims (p + 1) in
        let f1 = gi 2 3 st and f2 = gi 2 3 st in
        let o1 = freshname (d1 ^ "o")
        and o2 = freshname (d2 ^ "o")
        and i1 = freshname (d1 ^ "i")
        and i2 = freshname (d2 ^ "i") in
        Func.schedule func (Schedule.tile cname d1 d2 f1 f2 o1 o2 i1 i2);
        Hashtbl.replace live cname
          (replace1 d1 [ o1; o2; i1; i2 ] (replace1 d2 [] dims))
    | `Skew when nd >= 2 ->
        let p = gi 0 (nd - 2) st in
        let q = gi (p + 1) (nd - 1) st in
        let d1 = List.nth dims p and d2 = List.nth dims q in
        let f1 = gi 1 2 st in
        let n1 = freshname (d1 ^ "n") and n2 = freshname (d2 ^ "n") in
        Func.schedule func (Schedule.skew cname d1 d2 f1 1 n1 n2);
        Hashtbl.replace live cname
          (replace1 d1 [ n1 ] (replace1 d2 [ n2 ] dims))
    | `Reverse ->
        let d = pick dims st in
        let n = freshname (d ^ "r") in
        Func.schedule func (Schedule.reverse cname d n);
        Hashtbl.replace live cname (replace1 d [ n ] dims)
    | `Pipeline ->
        Func.schedule func (Schedule.pipeline cname (pick dims st) (gi 1 2 st))
    | `Unroll ->
        Func.schedule func (Schedule.unroll cname (pick dims st) (gi 2 4 st))
    | `Partition ->
        let arr = pick arrays st in
        Func.schedule func
          (Schedule.partition arr.Placeholder.name
             [ pick [ 1; 2; 4 ] st; pick [ 1; 2 ] st ]
             (pick [ Schedule.Cyclic; Schedule.Block ] st))
    | `After when n_computes >= 2 ->
        let a = gi 0 (n_computes - 1) st in
        let b = (a + 1 + gi 0 (n_computes - 2) st) mod n_computes in
        let sa = Printf.sprintf "s%d" a and sb = Printf.sprintf "s%d" b in
        (* level >= 1 only: level-0 [after] reorders the reference the
           interpreter uses but not the one the legality check uses, which
           would make the two oracles disagree by construction.  Sharing a
           loop also requires equal nest depths — the AST builder rejects
           statements fused over unequal depths. *)
        if List.length (Hashtbl.find live sa)
           = List.length (Hashtbl.find live sb)
        then Func.schedule func (Schedule.after sa ~anchor:sb ~level:1)
    | `Fuse when n_computes >= 2 ->
        let a = gi 0 (n_computes - 2) st in
        let sa = Printf.sprintf "s%d" a
        and sb = Printf.sprintf "s%d" (a + 1) in
        if List.length (Hashtbl.find live sa)
           = List.length (Hashtbl.find live sb)
        then Func.schedule func (Schedule.fuse sa sb ~level:1)
    | _ -> ()
  done;
  func

(* ---------- semantic shrinking ---------- *)

(* rebuild a function from a compute/directive subset; directives that no
   longer validate (their compute was dropped) are silently discarded —
   the candidate is only kept if it still fails, so a lossy rebuild can
   never invent a spurious counterexample *)
let rebuild computes directives =
  let f = Func.create "refute" in
  List.iter (Func.add_compute f) computes;
  List.iter
    (fun d -> try Func.schedule f d with Invalid_argument _ -> ())
    directives;
  f

let shrink_func f =
  let computes = Func.computes f and directives = Func.directives f in
  let guard mk = try Some (mk ()) with Invalid_argument _ -> None in
  let drop_directive =
    List.mapi
      (fun i _ ->
        guard (fun () ->
            rebuild computes (List.filteri (fun j _ -> j <> i) directives)))
      directives
  in
  let drop_compute =
    if List.length computes > 1 then
      List.mapi
        (fun i _ ->
          guard (fun () ->
              rebuild (List.filteri (fun j _ -> j <> i) computes) directives))
        computes
    else []
  in
  let with_compute i c' =
    guard (fun () ->
        rebuild (List.mapi (fun j c -> if i = j then c' else c) computes)
          directives)
  in
  let shrink_extent =
    List.concat
      (List.mapi
         (fun i (c : Compute.t) ->
           List.filter_map
             (fun (v : Var.t) ->
               if Var.extent v > 1 then
                 let iters =
                   List.map
                     (fun (w : Var.t) ->
                       if w.Var.name = v.Var.name then
                         Var.make w.Var.name w.Var.lb (w.Var.ub - 1)
                       else w)
                     c.Compute.iters
                 in
                 with_compute i
                   (Compute.make c.Compute.name ~iters ~where:c.Compute.where
                      ~body:c.Compute.body ~dest:c.Compute.dest ())
               else None)
             c.Compute.iters)
         computes)
  in
  let shrink_body =
    List.concat
      (List.mapi
         (fun i (c : Compute.t) ->
           match c.Compute.body with
           | Expr.Bin (_, a, b) ->
               List.filter_map
                 (fun body ->
                   with_compute i
                     (Compute.make c.Compute.name ~iters:c.Compute.iters
                        ~where:c.Compute.where ~body ~dest:c.Compute.dest ()))
                 [ a; b ]
           | _ -> [])
         computes)
  in
  List.filter_map Fun.id (drop_directive @ drop_compute)
  @ shrink_extent @ shrink_body

let shrink_case = function
  | Case.Poly p -> List.map (fun p -> Case.Poly p) (shrink_poly p)
  | Case.Semantic f -> List.map (fun f -> Case.Semantic f) (shrink_func f)
  | Case.Degrade f -> List.map (fun f -> Case.Degrade f) (shrink_func f)
  | Case.Qor f -> List.map (fun f -> Case.Qor f) (shrink_func f)
