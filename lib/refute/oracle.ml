open Pom_poly
module Diagnostic = Pom_analysis.Diagnostic

type verdict =
  | Pass
  | Skip of string
  | Precision of string
  | Fail of Diagnostic.t

let is_fail = function Fail _ -> true | _ -> false

let pp_verdict ppf = function
  | Pass -> Format.pp_print_string ppf "pass"
  | Skip r -> Format.fprintf ppf "skip (%s)" r
  | Precision r -> Format.fprintf ppf "precision (%s)" r
  | Fail d -> Format.fprintf ppf "FAIL %s: %s" d.Diagnostic.code d.message

let fail ~code ~loc ?note msg = Fail (Diagnostic.error ~code ~loc ?note msg)

(* ---------- polyhedral oracle ---------- *)

let env_of dims point =
  let tbl = List.combine dims point in
  fun d -> List.assoc d tbl

(* ground truth: the integer points of the case, by brute force over the
   bounding box, lexicographic *)
let brute_points (p : Case.poly) s =
  List.filter
    (fun pt -> Basic_set.mem (env_of p.Case.dims pt) s)
    (Case.box_points p)

(* FM is exact over the rationals; over the integers it can overapproximate
   a projection unless the eliminated dimension has coefficient 0/±1 in
   every constraint mentioning it (then each elimination step is exact).
   Exactness checks are gated on this; soundness checks never are. *)
let unit_coeff d s =
  List.for_all
    (fun c -> abs (Linexpr.coeff (Constr.expr c) d) <= 1)
    (Basic_set.constraints s)

(* an elimination step is exact over the integers when a unit equality on
   [d] exists (substitution path) or [d] has unit coefficient everywhere *)
let step_exact d t =
  List.exists
    (fun c ->
      Constr.is_eq c && abs (Linexpr.coeff (Constr.expr c) d) = 1)
    (Basic_set.constraints t)
  || unit_coeff d t

(* project out [order], tracking whether every step stayed exact *)
let chain_project s order =
  List.fold_left
    (fun (t, exact) d ->
      (Basic_set.project_out d t, exact && step_exact d t))
    (s, true) order

let check_order_invariance (p : Case.poly) s pts =
  let loc = [ "refute"; "poly" ] in
  let fl ?note msg = fail ~code:"POM401" ~loc ?note msg in
  match p.Case.dims with
  | [] | [ _ ] -> Pass
  | keep :: elim ->
      (* Invariance under elimination order is NOT unconditional: each FM
         step tightens inequalities over the integers (Constr.normalize),
         so different orders can produce different sound
         over-approximations when a step is inexact.  The refuter itself
         found the counterexample {3i + j - 3k + 1 >= 0, -i + 3k >= 0}
         over the [-1,1] box (committed to test/refute-corpus).  What does
         hold: soundness always (no shadow point is ever lost), and full
         agreement with the ground truth when every step is exact. *)
      let p1, exact1 = chain_project s elim
      and p2, exact2 = chain_project s (List.rev elim) in
      let onto = Basic_set.project_onto [ keep ] s in
      (* dims are sorted into the points in [dims] order and [keep] is the
         first dimension, so [List.hd] reads its coordinate *)
      let shadow = List.sort_uniq compare (List.map List.hd pts) in
      let bad =
        List.filter_map
          (fun v ->
            let env _ = v in
            let m1 = Basic_set.mem env p1
            and m2 = Basic_set.mem env p2
            and mo = Basic_set.mem env onto
            and truth = List.mem v shadow in
            if truth && not m1 then
              Some
                (Printf.sprintf "%s=%d: projection chain lost a shadow point"
                   keep v)
            else if truth && not m2 then
              Some
                (Printf.sprintf
                   "%s=%d: reversed projection chain lost a shadow point" keep
                   v)
            else if mo <> m1 then
              (* project_onto eliminates in the same dimension order as p1:
                 the two computations must agree unconditionally *)
              Some
                (Printf.sprintf
                   "%s=%d: project_onto disagrees with chained project_out"
                   keep v)
            else if exact1 && m1 <> truth then
              Some
                (Printf.sprintf
                   "%s=%d: exact projection chain disagrees with brute force"
                   keep v)
            else if exact2 && m2 <> truth then
              Some
                (Printf.sprintf
                   "%s=%d: exact reversed chain disagrees with brute force"
                   keep v)
            else None)
          (List.init (p.Case.hi - p.Case.lo + 1) (fun i -> p.Case.lo + i))
      in
      (match bad with
      | [] -> Pass
      | msg :: _ ->
          fl "elimination-order / project_onto invariance violated" ~note:msg)

let check_projections (p : Case.poly) s pts =
  let loc = [ "refute"; "poly" ] in
  let fl ?note msg = fail ~code:"POM401" ~loc ?note msg in
  let dims = p.Case.dims in
  let shadow_of d =
    (* drop dimension [d] from every ground-truth point *)
    let keep = List.filter (( <> ) d) dims in
    let sh =
      List.sort_uniq compare
        (List.map
           (fun pt ->
             List.filter_map
               (fun (dim, v) -> if dim = d then None else Some v)
               (List.combine dims pt))
           pts)
    in
    (keep, sh)
  in
  let rec per_dim = function
    | [] -> check_order_invariance p s pts
    | d :: rest -> (
        let proj = Basic_set.project_out d s in
        let keep, shadow = shadow_of d in
        (* soundness: every shadow point survives the projection (FM never
           loses rational — hence integer — points) *)
        match
          List.find_opt
            (fun pt -> not (Basic_set.mem (env_of keep pt) proj))
            shadow
        with
        | Some pt ->
            fl
              (Printf.sprintf "project_out %s dropped a shadow point" d)
              ~note:
                (Printf.sprintf
                   "point (%s) is in the shadow but not the projection"
                   (String.concat ", " (List.map string_of_int pt)))
        | None ->
            (* exactness: gated on unit coefficients of the eliminated dim *)
            if unit_coeff d s then
              let spurious =
                List.filter
                  (fun boxpt ->
                    let kept =
                      List.filter_map
                        (fun (dim, v) -> if dim = d then None else Some v)
                        (List.combine dims boxpt)
                    in
                    Basic_set.mem (env_of keep kept) proj
                    && not (List.mem kept shadow))
                  (Case.box_points p)
              in
              if spurious <> [] then
                fl
                  (Printf.sprintf
                     "project_out %s kept a point outside the shadow despite \
                      unit coefficients"
                     d)
                  ~note:
                    (Printf.sprintf "%d spurious box points"
                       (List.length spurious))
              else per_dim rest
            else per_dim rest)
  in
  per_dim dims

let check_poly (p : Case.poly) =
  let loc = [ "refute"; "poly" ] in
  let fl ?note msg = fail ~code:"POM401" ~loc ?note msg in
  let s = Case.set_of_poly p in
  let pts = brute_points p s in
  let empty = pts = [] in
  (* 1. emptiness, exact both ways *)
  if Basic_set.is_obviously_empty s && not empty then
    fl "is_obviously_empty claims a non-empty set is empty"
      ~note:(Printf.sprintf "%d points exist" (List.length pts))
  else if Feasible.is_empty s <> empty then
    fl
      (Printf.sprintf "Feasible.is_empty = %b but brute force found %d points"
         (Feasible.is_empty s) (List.length pts))
  else
    (* 2. enumeration: same points, same lexicographic order *)
    let enum = Feasible.enumerate s in
    if enum <> pts then
      fl "Feasible.enumerate disagrees with brute force"
        ~note:
          (Printf.sprintf "enumerate: %d points, brute force: %d points"
             (List.length enum) (List.length pts))
    else
      (* 3. sampling: present iff non-empty, and a member when present *)
      match (Feasible.sample s, empty) with
      | None, false -> fl "Feasible.sample found nothing in a non-empty set"
      | Some _, true -> fl "Feasible.sample produced a point of an empty set"
      | Some pt, false when not (Basic_set.mem (env_of p.Case.dims pt) s) ->
          fl "Feasible.sample produced a non-member point"
      | _ -> check_projections p s pts

(* ---------- semantic oracle ---------- *)

let structural_program f =
  Pom_polyir.Prog.apply_all
    (Pom_polyir.Prog.of_func_unscheduled f)
    (Pom_pipeline.State.structural_directives f)

let check_semantic f =
  let loc = [ "refute"; "semantic" ] in
  match
    let original = structural_program f in
    let transformed = Pom_polyir.Prog.of_func f in
    `Built (original, transformed)
  with
  | exception Pom_polyir.Transform.Transform_error msg ->
      (* the schedule does not apply (split of a dim consumed by an earlier
         rename, non-adjacent tile, ...): not a counterexample *)
      Skip (Printf.sprintf "transform rejected: %s" msg)
  | exception Invalid_argument msg ->
      Skip (Printf.sprintf "invalid case: %s" msg)
  | `Built (original, transformed) -> (
      let violations = Pom_polyir.Legality.violations ~original ~transformed in
      match Pom_sim.Interp.divergence f transformed with
      | exception Pom_poly.Ast_build.Schedule_error msg ->
          (* the AST builder refused the schedule (e.g. statements fused
             over unequal depths): the compile aborts with a typed error
             before any design exists, so there is nothing to refute *)
          Skip (Printf.sprintf "lowering rejected: %s" msg)
      | exception Invalid_argument msg when violations <> [] ->
          (* an illegal schedule may well read out of bounds; rejection
             already protected the user *)
          Skip
            (Printf.sprintf "rejected schedule crashed the simulator: %s" msg)
      | exception Invalid_argument msg ->
          fail ~code:"POM403" ~loc
            (Printf.sprintf
               "schedule accepted by the legality engine crashed the \
                simulator: %s"
               msg)
      | divergence -> (
          match (violations, divergence = 0.0) with
          | [], true -> Pass
          | [], false ->
              fail ~code:"POM402" ~loc
                "legality engine accepted a semantics-changing schedule"
                ~note:
                  (Printf.sprintf "observed divergence %g on %d directive(s)"
                     divergence
                     (List.length (Pom_dsl.Func.directives f)))
          | _ :: _, false -> Pass (* correctly rejected *)
          | v :: _, true ->
              Precision
                (Format.asprintf "rejected but convergent: %a"
                   Pom_polyir.Legality.pp_violation v)))

(* ---------- degradation oracle ---------- *)

(* the analysis-only fault sites: a fault here may cost us a diagnostic but
   must never change the produced design *)
let analysis_sites = [ "legality:pair"; "poly:fm-projection" ]

let manual_pipeline () =
  let open Pom_pipeline in
  let required =
    [
      "schedule-apply"; "hls-synthesize"; "affine-lower"; "affine-simplify";
      "emit-hls-c";
    ]
  in
  List.map
    (fun (p : State.t Pass.t) ->
      Passes.guard ~required:(List.mem p.Pass.info.Pass.name required) p)
    ([
       Passes.user_schedule ();
       Passes.schedule_apply ();
       Passes.legality_check ();
       Passes.lint_pragmas ();
     ]
    @ Passes.tail ())

let run_degrade_compile f =
  let open Pom_pipeline in
  Pom_resilience.Policy.with_policy Pom_resilience.Policy.Degrade @@ fun () ->
  let st, _ =
    Pass.run (manual_pipeline ()) (State.init ~device:Pom_hls.Device.xc7z020 f)
  in
  st

let check_degrade f =
  let loc = [ "refute"; "degrade" ] in
  match run_degrade_compile f with
  | exception Pom_polyir.Transform.Transform_error msg ->
      Skip (Printf.sprintf "transform rejected: %s" msg)
  | exception Pom_resilience.Error.Error e ->
      Skip
        (Printf.sprintf "clean run aborted: %s"
           (Pom_resilience.Error.to_string e))
  | exception Invalid_argument msg ->
      Skip (Printf.sprintf "invalid case: %s" msg)
  | clean ->
      let clean_design = clean.Pom_pipeline.State.hls_c in
      let check_one acc (site, kind) =
        match acc with
        | Fail _ -> acc
        | _ -> (
            Pom_resilience.Fault.configure (Printf.sprintf "%s=%s@1" site kind);
            let result =
              Fun.protect ~finally:Pom_resilience.Fault.reset (fun () ->
                  match run_degrade_compile f with
                  | st -> `Done st
                  | exception Pom_resilience.Error.Error _ -> `Abort
                  | exception Pom_resilience.Fault.Injected _ -> `Abort
                  | exception Pom_resilience.Budget.Budget_exceeded _ -> `Abort)
            in
            match result with
            | `Abort ->
                (* the fault landed in a required pass: aborting IS the
                   contract (no partial design escapes) *)
                acc
            | `Done st ->
                if st.Pom_pipeline.State.hls_c <> clean_design then
                  fail ~code:"POM404" ~loc
                    (Printf.sprintf
                       "degraded run (fault %s at %s) produced a different \
                        design"
                       kind site)
                    ~note:
                      "analysis-only faults must affect diagnostics, never \
                       the artifact"
                else acc)
      in
      let combos =
        List.concat_map
          (fun site -> [ (site, "fail"); (site, "timeout") ])
          analysis_sites
      in
      List.fold_left check_one Pass combos

(* ---------- QoR oracle ---------- *)

(* The QoR model is a predictor, so it cannot be differenced against an
   exact truth — but it can be refuted against operational lower bounds:
   no schedule the backend could emit finishes a group in fewer cycles
   than its distinct serial steps, or than its busiest memory bank can
   move the group's data through two ports.  A model latency below either
   bound is optimistic fiction (POM406).  The dependence-chain bound
   additionally assumes the model doesn't re-associate reductions, so a
   violation there is only a precision signal. *)
let check_qor f =
  let loc = [ "refute"; "qor" ] in
  let device = Pom_hls.Device.xc7z020 in
  match
    let prog = Pom_polyir.Prog.of_func f in
    let report = Pom_hls.Report.synthesize ~device prog in
    let report' = Pom_hls.Report.synthesize ~device prog in
    `Built (prog, report, report')
  with
  | exception Pom_polyir.Transform.Transform_error msg ->
      Skip (Printf.sprintf "transform rejected: %s" msg)
  | exception Pom_poly.Ast_build.Schedule_error msg ->
      Skip (Printf.sprintf "lowering rejected: %s" msg)
  | exception Invalid_argument msg ->
      Skip (Printf.sprintf "invalid case: %s" msg)
  | `Built (prog, report, report') ->
      if report <> report' then
        fail ~code:"POM406" ~loc
          "synthesizing the same program twice gave different reports"
          ~note:"the QoR model must be a pure function of the program"
      else (
        match Pom_sim.Cycles.of_prog prog with
        | None -> Skip "iteration domain too large to enumerate"
        | Some bounds ->
            let latency_of g =
              List.assoc_opt g report.Pom_hls.Report.group_latencies
            in
            let check_group acc (b : Pom_sim.Cycles.bounds) =
              match (acc, latency_of b.Pom_sim.Cycles.group) with
              | Fail _, _ | _, None -> acc
              | _, Some cycles ->
                  if cycles < b.Pom_sim.Cycles.serial_bound then
                    fail ~code:"POM406" ~loc
                      (Printf.sprintf
                         "group %d: model latency %d below the serial bound \
                          %d"
                         b.Pom_sim.Cycles.group cycles
                         b.Pom_sim.Cycles.serial_bound)
                      ~note:
                        (Format.asprintf "%a" Pom_sim.Cycles.pp b)
                  else if cycles < b.Pom_sim.Cycles.port_bound then
                    fail ~code:"POM406" ~loc
                      (Printf.sprintf
                         "group %d: model latency %d below the port bound %d"
                         b.Pom_sim.Cycles.group cycles
                         b.Pom_sim.Cycles.port_bound)
                      ~note:
                        (Format.asprintf "%a" Pom_sim.Cycles.pp b)
                  else if cycles < b.Pom_sim.Cycles.chain_bound then
                    Precision
                      (Printf.sprintf
                         "group %d: model latency %d below the dependence \
                          chain bound %d"
                         b.Pom_sim.Cycles.group cycles
                         b.Pom_sim.Cycles.chain_bound)
                  else acc
            in
            List.fold_left check_group Pass bounds)

let check = function
  | Case.Poly p -> check_poly p
  | Case.Semantic f -> check_semantic f
  | Case.Degrade f -> check_degrade f
  | Case.Qor f -> check_qor f
