(** The two-stage DSE driver (the [f.auto_DSE()] primitive), reified as an
    instrumented pass pipeline: dependence-aware transformation
    ([stage1-transform]) then bottleneck-oriented optimization
    ([stage2-search]), each a registered pass with its own timing record.
    The search time that Table III reports as the toolchain's runtime is
    wall clock; CPU time is accounted separately. *)

type outcome = {
  stage1 : Stage1.t;
  result : Stage2.result;
  dse_time_s : float;  (** wall-clock search time ([Unix.gettimeofday]) *)
  dse_cpu_s : float;  (** CPU search time ([Sys.time]) *)
  records : Pom_pipeline.Pass.record list;  (** per-pass instrumentation *)
}

(** Stage 1's output, threaded through {!Pom_pipeline.State.t}[.ext] from
    the stage1-transform pass to the stage2-search pass.  When the stage 2
    pass finds no such extension in the state (the caller assembled a
    pipeline without stage 1), it recomputes — loudly, with a trace line and
    an [on_stage1] notification. *)
type Pom_pipeline.State.ext += Stage1_output of Stage1.t

(** The engine's two passes over the shared compile state, for embedding in
    a larger pipeline (the [`Pom_auto] compile flow).  The device and
    composition are read from the state; [on_stage1]/[on_result] observe the
    intermediate results. *)
val passes :
  ?par_cap:int ->
  ?bank_cap:int ->
  ?steps:(int -> int list) ->
  ?cache:Pom_pipeline.Memo.t ->
  ?jobs:int ->
  ?chunk:int ->
  ?checkpoint:string ->
  ?on_stage1:(Stage1.t -> unit) ->
  ?on_result:(Stage2.result -> unit) ->
  unit ->
  Pom_pipeline.State.t Pom_pipeline.Pass.t list

(** [jobs], [chunk] and [checkpoint] are forwarded to {!Stage2.run}; the
    chosen design is identical across job counts, chunk sizes, and across a
    kill-and-resume of a checkpointed search (see {!Stage2.run}). *)
val run :
  ?device:Pom_hls.Device.t ->
  ?composition:Pom_hls.Resource.composition ->
  ?par_cap:int ->
  ?bank_cap:int ->
  ?steps:(int -> int list) ->
  ?cache:Pom_pipeline.Memo.t ->
  ?jobs:int ->
  ?chunk:int ->
  ?checkpoint:string ->
  Pom_dsl.Func.t ->
  outcome
