(** The worker side of [pom_compile --worker]: serve framed DSE
    evaluation requests on stdin/stdout until the parent closes the
    pipe.  Returns the process exit code. *)

val main : unit -> int
