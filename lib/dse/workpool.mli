(** Process-sharded DSE evaluation: the client side of the
    [pom_compile --worker] protocol.

    A pool is bound to one search (one function, device, composition,
    latency mode and base-directive prefix, broadcast once as a hello
    record); {!eval_chunks} then ships *chunks* of candidate
    hardware-directive lists to the workers — one framed request per
    chunk, so the per-request overhead amortizes over the chunk — and
    returns the evaluated design points.  Each reply carries the full
    realization plan (partition directives, pre-partition program) next
    to the report, so the caller merges both memo levels
    ({!Pom_pipeline.Memo.absorb_plan}, {!Pom_pipeline.Memo.absorb_report})
    and replays its exact sequential search against the warm cache —
    which is what keeps procs-mode results bit-identical to [--jobs 1].

    The protocol is a {!Pom_wire.Frame} stream (kind
    ["pom-dse-worker"]): record tag 1 is the hello, tag 2 a
    single-candidate evaluate request/reply (kept for mixed-version
    pairs), tag 3 a chunk request/reply.  Workers that die or answer
    garbage just cost their share of the speculative work. *)

open Pom_dsl
open Pom_hls

type t

(** Stream header the parent and workers must agree on. *)
val header : Pom_wire.Frame.header

(** The worker executable: [POM_WORKER_EXE] when set and non-empty,
    else this executable when it already is [pom_compile], else
    [../bin/pom_compile.exe] next to this executable when that exists
    (tests and benches running inside [_build]), else
    [Sys.executable_name]. *)
val default_exe : unit -> string

(** Spawn [jobs] workers ([exe --worker]) and broadcast the search
    description.  Raises when the workers cannot be spawned or greet
    with a mismatched protocol — callers degrade to sequential
    evaluation. *)
val create :
  ?exe:string ->
  jobs:int ->
  func:Func.t ->
  device:Device.t ->
  composition:Resource.composition ->
  latency_mode:Report.latency_mode ->
  base:Schedule.t list ->
  ?bank_cap:int ->
  unit ->
  t

(** As {!create}, but reuse an idle pool of the same executable and size
    from the process-wide registry when one exists (rebound to this
    search by a fresh hello) — worker spawns and their warm caches then
    amortize over successive searches.  Pair with {!release}. *)
val borrow :
  ?exe:string ->
  jobs:int ->
  func:Func.t ->
  device:Device.t ->
  composition:Resource.composition ->
  latency_mode:Report.latency_mode ->
  base:Schedule.t list ->
  ?bank_cap:int ->
  unit ->
  t

(** Return a borrowed pool to the registry for the next search (pools
    with no live workers, or a registry slot already occupied, are shut
    down instead).  Registry pools are shut down at process exit. *)
val release : t -> unit

(** Number of live workers. *)
val alive : t -> int

(** The underlying pool's lifetime supervision counters (spawns,
    respawns, deaths, forfeited items).  Callers snapshot before/after a
    search and report the delta — a borrowed registry pool accumulates
    across searches. *)
val stats : t -> Pom_par.Procs.stats

(** [eval t candidates]: each candidate is the hardware-directive list
    of one design point (relative to the broadcast base), shipped as its
    own request.  Returns the successfully evaluated points —
    [(memo key, (prog, report))] — in no guaranteed order; candidates
    whose evaluation failed (infeasible schedule, dead worker) are
    simply absent. *)
val eval :
  t ->
  Schedule.t list list ->
  (string * (Pom_polyir.Prog.t * Report.t)) list

(** One evaluated design point of a chunk reply: the report-memo key,
    the derived partition directives, the scheduled pre-partition
    program (the plan), and the final program with its report. *)
type item = {
  r_key : string;
  parts : Schedule.t list;
  prog_hw : Pom_polyir.Prog.t;
  prog : Pom_polyir.Prog.t;
  report : Report.t;
}

(** What one {!eval_chunks} sweep did: chunks shipped, candidates
    forfeited to transport failures (dead worker, corrupt or short
    reply — infeasible candidates a worker evaluated are {e not}
    counted), and the evaluated points paired with their candidate. *)
type chunk_result = {
  n_chunks : int;
  forfeited : int;
  evaluated : (Schedule.t list * item) list;
}

(** [eval_chunks t ~chunk candidates] re-chunks the candidates to at
    most [chunk] per request frame, deals the chunks round-robin over
    the live workers (re-dispatched once by supervision when a worker
    dies), and returns the sweep's {!chunk_result}.  Failed candidates
    are absent from [evaluated]. *)
val eval_chunks : t -> chunk:int -> Schedule.t list list -> chunk_result

val shutdown : t -> unit

(** {1 Protocol internals (shared with {!Worker})} *)

type hello = {
  func : Func.t;
  device : Device.t;
  composition : Resource.composition;
  latency_mode : Report.latency_mode;
  base : Schedule.t list;
  bank_cap : int option;
}

val tag_hello : int
val tag_eval : int
val tag_eval_chunk : int
val hello_codec : hello Pom_wire.Wire.t
val request_codec : Schedule.t list Pom_wire.Wire.t

val reply_codec :
  (string * Pom_polyir.Prog.t * Report.t) option Pom_wire.Wire.t

val chunk_request_codec : Schedule.t list list Pom_wire.Wire.t
val chunk_reply_codec : item option list Pom_wire.Wire.t
