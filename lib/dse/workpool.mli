(** Process-sharded DSE evaluation: the client side of the
    [pom_compile --worker] protocol.

    A pool is bound to one search (one function, device, composition,
    latency mode and base-directive prefix, broadcast once as a hello
    record); {!eval} then deals candidate hardware-directive lists to
    the workers and returns the evaluated design points, each already
    keyed with the report-memo key — the caller merges them with
    {!Pom_pipeline.Memo.absorb_report} and replays its exact sequential
    search against the warm cache, which is what keeps procs-mode
    results bit-identical to [--jobs 1].

    The protocol is a {!Pom_wire.Frame} stream (kind
    ["pom-dse-worker"]): record tag 1 is the hello, tag 2 an evaluate
    request/reply.  Workers that die or answer garbage just cost their
    share of the speculative work. *)

open Pom_dsl
open Pom_hls

type t

(** Stream header the parent and workers must agree on. *)
val header : Pom_wire.Frame.header

(** The worker executable: [POM_WORKER_EXE] when set and non-empty,
    else this executable when it already is [pom_compile], else
    [../bin/pom_compile.exe] next to this executable when that exists
    (tests and benches running inside [_build]), else
    [Sys.executable_name]. *)
val default_exe : unit -> string

(** Spawn [jobs] workers ([exe --worker]) and broadcast the search
    description.  Raises when the workers cannot be spawned or greet
    with a mismatched protocol — callers degrade to sequential
    evaluation. *)
val create :
  ?exe:string ->
  jobs:int ->
  func:Func.t ->
  device:Device.t ->
  composition:Resource.composition ->
  latency_mode:Report.latency_mode ->
  base:Schedule.t list ->
  ?bank_cap:int ->
  unit ->
  t

(** [eval t candidates]: each candidate is the hardware-directive list
    of one design point (relative to the broadcast base).  Returns the
    successfully evaluated points — [(memo key, (prog, report))] — in
    no guaranteed order; candidates whose evaluation failed (infeasible
    schedule, dead worker) are simply absent. *)
val eval :
  t ->
  Schedule.t list list ->
  (string * (Pom_polyir.Prog.t * Report.t)) list

val shutdown : t -> unit

(** {1 Protocol internals (shared with {!Worker})} *)

type hello = {
  func : Func.t;
  device : Device.t;
  composition : Resource.composition;
  latency_mode : Report.latency_mode;
  base : Schedule.t list;
  bank_cap : int option;
}

val tag_hello : int
val tag_eval : int
val hello_codec : hello Pom_wire.Wire.t
val request_codec : Schedule.t list Pom_wire.Wire.t

val reply_codec :
  (string * Pom_polyir.Prog.t * Report.t) option Pom_wire.Wire.t
