open Pom_dsl
open Pom_hls
module W = Pom_wire.Wire
module Procs = Pom_par.Procs

let header = { Pom_wire.Frame.kind = "pom-dse-worker"; version = 1 }
let tag_hello = 1
let tag_eval = 2
let tag_eval_chunk = 3

type hello = {
  func : Func.t;
  device : Device.t;
  composition : Resource.composition;
  latency_mode : Report.latency_mode;
  base : Schedule.t list;
  bank_cap : int option;
}

let hello_codec =
  W.record6 "hello"
    (W.field "func" Pom_dsl.Wirec.func (fun h -> h.func))
    (W.field "device" Pom_hls.Wirec.device (fun h -> h.device))
    (W.field "composition" Pom_hls.Wirec.composition (fun h -> h.composition))
    (W.field "latency_mode" Pom_hls.Wirec.latency_mode (fun h ->
         h.latency_mode))
    (W.field "base" (W.list Pom_dsl.Wirec.schedule) (fun h -> h.base))
    (W.field "bank_cap" (W.option W.int) (fun h -> h.bank_cap))
    (fun func device composition latency_mode base bank_cap ->
      { func; device; composition; latency_mode; base; bank_cap })

let request_codec = W.list Pom_dsl.Wirec.schedule

let reply_codec =
  W.option (W.triple W.string Pom_polyir.Wirec.prog Pom_hls.Wirec.report)

(* A chunk reply carries the full realization plan alongside the report, so
   the parent can absorb both memo levels: the plan makes the sequential
   replay's key recovery a lookup, the report makes its synthesis one. *)
type item = {
  r_key : string;
  parts : Schedule.t list;
  prog_hw : Pom_polyir.Prog.t;
  prog : Pom_polyir.Prog.t;
  report : Report.t;
}

let item_codec =
  W.record5 "eval-item"
    (W.field "key" W.string (fun i -> i.r_key))
    (W.field "parts" (W.list Pom_dsl.Wirec.schedule) (fun i -> i.parts))
    (W.field "prog_hw" Pom_polyir.Wirec.prog (fun i -> i.prog_hw))
    (W.field "prog" Pom_polyir.Wirec.prog (fun i -> i.prog))
    (W.field "report" Pom_hls.Wirec.report (fun i -> i.report))
    (fun r_key parts prog_hw prog report ->
      { r_key; parts; prog_hw; prog; report })

let chunk_request_codec = W.list request_codec
let chunk_reply_codec = W.list (W.option item_codec)

type t = { procs : Procs.t; exe : string; jobs : int }

let default_exe () =
  match Sys.getenv_opt "POM_WORKER_EXE" with
  | Some exe when exe <> "" -> exe
  | _ ->
      let self = Sys.executable_name in
      let base = Filename.basename self in
      if base = "pom_compile.exe" || base = "pom_compile" then self
      else
        (* tests and benches run from inside _build with the compiled
           driver one directory over *)
        let sibling =
          Filename.concat (Filename.dirname self)
            (Filename.concat Filename.parent_dir_name
               (Filename.concat "bin" "pom_compile.exe"))
        in
        if Sys.file_exists sibling then sibling else self

let create ?exe ~jobs ~func ~device ~composition ~latency_mode ~base ?bank_cap
    () =
  let exe = match exe with Some e -> e | None -> default_exe () in
  let procs = Procs.create ~exe ~args:[ "--worker" ] ~header ~jobs () in
  Procs.broadcast procs ~tag:tag_hello
    (W.to_string hello_codec
       { func; device; composition; latency_mode; base; bank_cap });
  { procs; exe; jobs }

let alive t = Procs.alive t.procs
let stats t = Procs.stats t.procs

(* Spawning a worker costs an exec plus a protocol handshake, and a fresh
   worker starts with cold caches; a DSE sweep (bench repeats, a
   ScaleHLS pass after a Stage 2 search) would otherwise pay it per run.
   The registry keeps one idle pool per (exe, jobs) alive between
   {!borrow}/{!release} pairs — a borrow rebinds the pooled workers to the
   new search with a fresh hello, and their memo caches (keyed
   structurally, never by search identity) carry over. *)
let registry : (string * int, t) Hashtbl.t = Hashtbl.create 4

let registry_lock = Mutex.create ()

let shutdown t = Procs.shutdown t.procs

let () =
  at_exit (fun () ->
      Mutex.lock registry_lock;
      let pools = Hashtbl.fold (fun _ t acc -> t :: acc) registry [] in
      Hashtbl.reset registry;
      Mutex.unlock registry_lock;
      List.iter (fun t -> try shutdown t with _ -> ()) pools)

let borrow ?exe ~jobs ~func ~device ~composition ~latency_mode ~base ?bank_cap
    () =
  let exe = match exe with Some e -> e | None -> default_exe () in
  Mutex.lock registry_lock;
  let pooled = Hashtbl.find_opt registry (exe, jobs) in
  Hashtbl.remove registry (exe, jobs);
  Mutex.unlock registry_lock;
  match pooled with
  | Some t when Procs.alive t.procs = jobs ->
      Procs.broadcast t.procs ~tag:tag_hello
        (W.to_string hello_codec
           { func; device; composition; latency_mode; base; bank_cap });
      t
  | Some t ->
      (* workers died since the last run: replace the depleted pool *)
      shutdown t;
      create ~exe ~jobs ~func ~device ~composition ~latency_mode ~base
        ?bank_cap ()
  | None ->
      create ~exe ~jobs ~func ~device ~composition ~latency_mode ~base
        ?bank_cap ()

let release t =
  if Procs.alive t.procs = 0 then shutdown t
  else begin
    Mutex.lock registry_lock;
    let keep = not (Hashtbl.mem registry (t.exe, t.jobs)) in
    if keep then Hashtbl.add registry (t.exe, t.jobs) t;
    Mutex.unlock registry_lock;
    if not keep then shutdown t
  end

let eval t candidates =
  let payloads = List.map (W.to_string request_codec) candidates in
  let replies = Procs.rpc t.procs ~tag:tag_eval payloads in
  List.filter_map
    (fun reply ->
      match reply with
      | None -> None
      | Some payload -> (
          (* a corrupt reply loses one speculative point, nothing more *)
          match W.of_string reply_codec payload with
          | Ok (Some (key, prog, report)) -> Some (key, (prog, report))
          | Ok None | Error _ -> None))
    replies

type chunk_result = {
  n_chunks : int;
  forfeited : int;
  evaluated : (Schedule.t list * item) list;
}

let rec split_chunks n = function
  | [] -> []
  | l ->
      let rec take k acc rest =
        match rest with
        | x :: tl when k > 0 -> take (k - 1) (x :: acc) tl
        | _ -> (List.rev acc, rest)
      in
      let c, rest = take n [] l in
      c :: split_chunks n rest

let eval_chunks t ~chunk candidates =
  let chunk = max 1 chunk in
  let chunks = split_chunks chunk candidates in
  let payloads = List.map (W.to_string chunk_request_codec) chunks in
  let replies = Procs.rpc t.procs ~tag:tag_eval_chunk payloads in
  (* candidates forfeited for transport reasons (dead worker, corrupt or
     short reply) — as opposed to candidates a worker evaluated and found
     infeasible, which come back as per-item [None]s inside an intact
     reply and are not losses *)
  let forfeited = ref 0 in
  let items =
    List.concat
      (List.map2
         (fun chunk reply ->
           let forfeit () =
             forfeited := !forfeited + List.length chunk;
             []
           in
           match reply with
           | None -> forfeit () (* a dead worker forfeits only its chunk *)
           | Some payload -> (
               match W.of_string chunk_reply_codec payload with
               | Error _ -> forfeit ()
               | Ok items when List.length items <> List.length chunk ->
                   forfeit ()
               | Ok items ->
                   List.concat
                     (List.map2
                        (fun hw item ->
                          match item with
                          | Some it -> [ (hw, it) ]
                          | None -> [])
                        chunk items)))
         chunks replies)
  in
  { n_chunks = List.length chunks; forfeited = !forfeited; evaluated = items }
