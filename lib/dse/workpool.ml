open Pom_dsl
open Pom_hls
module W = Pom_wire.Wire
module Procs = Pom_par.Procs

let header = { Pom_wire.Frame.kind = "pom-dse-worker"; version = 1 }
let tag_hello = 1
let tag_eval = 2

type hello = {
  func : Func.t;
  device : Device.t;
  composition : Resource.composition;
  latency_mode : Report.latency_mode;
  base : Schedule.t list;
  bank_cap : int option;
}

let hello_codec =
  W.record6 "hello"
    (W.field "func" Pom_dsl.Wirec.func (fun h -> h.func))
    (W.field "device" Pom_hls.Wirec.device (fun h -> h.device))
    (W.field "composition" Pom_hls.Wirec.composition (fun h -> h.composition))
    (W.field "latency_mode" Pom_hls.Wirec.latency_mode (fun h ->
         h.latency_mode))
    (W.field "base" (W.list Pom_dsl.Wirec.schedule) (fun h -> h.base))
    (W.field "bank_cap" (W.option W.int) (fun h -> h.bank_cap))
    (fun func device composition latency_mode base bank_cap ->
      { func; device; composition; latency_mode; base; bank_cap })

let request_codec = W.list Pom_dsl.Wirec.schedule

let reply_codec =
  W.option (W.triple W.string Pom_polyir.Wirec.prog Pom_hls.Wirec.report)

type t = { procs : Procs.t }

let default_exe () =
  match Sys.getenv_opt "POM_WORKER_EXE" with
  | Some exe when exe <> "" -> exe
  | _ ->
      let self = Sys.executable_name in
      let base = Filename.basename self in
      if base = "pom_compile.exe" || base = "pom_compile" then self
      else
        (* tests and benches run from inside _build with the compiled
           driver one directory over *)
        let sibling =
          Filename.concat (Filename.dirname self)
            (Filename.concat Filename.parent_dir_name
               (Filename.concat "bin" "pom_compile.exe"))
        in
        if Sys.file_exists sibling then sibling else self

let create ?exe ~jobs ~func ~device ~composition ~latency_mode ~base ?bank_cap
    () =
  let exe = match exe with Some e -> e | None -> default_exe () in
  let procs = Procs.create ~exe ~args:[ "--worker" ] ~header ~jobs in
  Procs.broadcast procs ~tag:tag_hello
    (W.to_string hello_codec
       { func; device; composition; latency_mode; base; bank_cap });
  { procs }

let eval t candidates =
  let payloads = List.map (W.to_string request_codec) candidates in
  let replies = Procs.rpc t.procs ~tag:tag_eval payloads in
  List.filter_map
    (fun reply ->
      match reply with
      | None -> None
      | Some payload -> (
          (* a corrupt reply loses one speculative point, nothing more *)
          match W.of_string reply_codec payload with
          | Ok (Some (key, prog, report)) -> Some (key, (prog, report))
          | Ok None | Error _ -> None))
    replies

let shutdown t = Procs.shutdown t.procs
