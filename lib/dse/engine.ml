open Pom_pipeline

type outcome = {
  stage1 : Stage1.t;
  result : Stage2.result;
  dse_time_s : float;
  dse_cpu_s : float;
  records : Pass.record list;
}

(* Stage 1's output travels from the stage1-transform pass to the
   stage2-search pass inside the shared compile state, so the handoff works
   however the caller assembles or reorders the pipeline — no hidden mutable
   coupling between the two pass closures. *)
type State.ext += Stage1_output of Stage1.t

let passes ?par_cap ?bank_cap ?steps ?cache ?jobs ?chunk ?checkpoint ?(on_stage1 = fun _ -> ())
    ?(on_result = fun _ -> ()) () =
  [
    Pass.v ~name:"stage1-transform"
      ~descr:"dependence-aware code transformation (DSE stage 1)"
      (fun (st : State.t) ->
        let wall0 = Unix.gettimeofday () and cpu0 = Sys.time () in
        let s1 = Stage1.run st.State.func in
        on_stage1 s1;
        {
          (State.add_ext (Stage1_output s1) st) with
          State.directives = st.State.directives @ s1.Stage1.directives;
          dse_time_s = st.State.dse_time_s +. (Unix.gettimeofday () -. wall0);
          dse_cpu_s = st.State.dse_cpu_s +. (Sys.time () -. cpu0);
        });
    Pass.v ~name:"stage2-search"
      ~descr:"bottleneck-oriented optimization (DSE stage 2, memoized QoR)"
      (fun (st : State.t) ->
        let wall0 = Unix.gettimeofday () and cpu0 = Sys.time () in
        let s1, st =
          match
            State.find_ext
              (function Stage1_output s1 -> Some s1 | _ -> None)
              st
          with
          | Some s1 -> (s1, st)
          | None ->
              (* running stage 2 without stage 1 in the pipeline is legal
                 (the searches compose over the unscheduled program), but
                 recomputing must be observable, not silent *)
              let s1 = Stage1.run st.State.func in
              on_stage1 s1;
              ( s1,
                {
                  st with
                  State.trace =
                    st.State.trace
                    @ [
                        "stage2: no stage-1 output in the pipeline state; \
                         recomputed";
                      ];
                } )
        in
        let r =
          Stage2.run ~device:st.State.device
            ~composition:st.State.composition ?par_cap ?bank_cap ?steps ?cache
            ?jobs ?chunk ?checkpoint st.State.func s1
        in
        on_result r;
        {
          st with
          State.prog = Some r.Stage2.prog;
          report = Some r.Stage2.report;
          directives = r.Stage2.directives;
          tile_vectors = r.Stage2.tile_vectors;
          trace = st.State.trace @ r.Stage2.trace;
          dse_time_s = st.State.dse_time_s +. (Unix.gettimeofday () -. wall0);
          dse_cpu_s = st.State.dse_cpu_s +. (Sys.time () -. cpu0);
        });
  ]

let run ?(device = Pom_hls.Device.xc7z020) ?composition ?par_cap ?bank_cap
    ?steps ?cache ?jobs ?chunk ?checkpoint func =
  (* Sys.time is CPU time; the Table III "DSE time" column is wall clock,
     so measure both and report them separately. *)
  let wall0 = Unix.gettimeofday () and cpu0 = Sys.time () in
  let stage1 = ref None and result = ref None in
  let pipeline =
    passes ?par_cap ?bank_cap ?steps ?cache ?jobs ?chunk ?checkpoint
      ~on_stage1:(fun s1 -> stage1 := Some s1)
      ~on_result:(fun r -> result := Some r)
      ()
  in
  let _st, records =
    Pass.run pipeline (State.init ?composition ~device func)
  in
  match (!stage1, !result) with
  | Some stage1, Some result ->
      {
        stage1;
        result;
        dse_time_s = Unix.gettimeofday () -. wall0;
        dse_cpu_s = Sys.time () -. cpu0;
        records;
      }
  | _ -> assert false
