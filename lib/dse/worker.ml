module W = Pom_wire.Wire
module Memo = Pom_pipeline.Memo

(* One candidate, evaluated exactly as {!Stage2.evaluate_realized} would:
   the shared {!Stage2.realization_plan} recipe (memoized base-prefix
   application, hardware application, partition plan) followed by the same
   directive-keyed synthesis — so the memo keys, the plan, and the report
   are the ones the parent's sequential replay will ask for. *)
let evaluate ~cache (h : Workpool.hello) hw =
  let plan =
    Stage2.realization_plan ?bank_cap:h.Workpool.bank_cap ~cache
      h.Workpool.func h.Workpool.base hw
  in
  let prog, report =
    Memo.synthesize cache ~composition:h.Workpool.composition
      ~latency_mode:h.Workpool.latency_mode ~device:h.Workpool.device
      ~directives:plan.Memo.plan_directives h.Workpool.func (fun () ->
        List.fold_left Pom_polyir.Prog.apply plan.Memo.plan_prog_hw
          plan.Memo.plan_parts)
  in
  let key =
    Memo.report_key ~composition:h.Workpool.composition
      ~latency_mode:h.Workpool.latency_mode ~device:h.Workpool.device
      ~directives:plan.Memo.plan_directives h.Workpool.func
  in
  {
    Workpool.r_key = key;
    parts = plan.Memo.plan_parts;
    prog_hw = plan.Memo.plan_prog_hw;
    prog;
    report;
  }

let main () =
  (* a worker is one shard: everything inside it runs sequentially *)
  Pom_par.Par.set_jobs 1;
  let hello = ref None in
  let cache = Memo.create () in
  Pom_par.Procs.serve ~header:Workpool.header (fun ~tag payload ->
      if tag = Workpool.tag_hello then begin
        (match W.of_string Workpool.hello_codec payload with
        | Ok h -> hello := Some h
        | Error _ ->
            (* an undecodable hello leaves every evaluation unanswerable;
               replies stay [None] and the parent degrades *)
            hello := None);
        None
      end
      else if tag = Workpool.tag_eval then begin
        let result =
          match !hello with
          | None -> None
          | Some h -> (
              match W.of_string Workpool.request_codec payload with
              | Error _ -> None
              | Ok hw -> (
                  try
                    let it = evaluate ~cache h hw in
                    Some (it.Workpool.r_key, it.Workpool.prog, it.Workpool.report)
                  with _ -> None))
        in
        Some (Workpool.tag_eval, W.to_string Workpool.reply_codec result)
      end
      else if tag = Workpool.tag_eval_chunk then begin
        (* deterministic chaos site: die mid-chunk like a real OOM-kill
           would — after the request was read, before any reply.  Armed
           per worker process through the inherited POM_FAULTS (each
           worker owns its visit counter), so the supervision tests and
           [bench chaos] pick exactly which chunk murders which worker. *)
        if Pom_resilience.Fault.poll "dse:worker-kill" then exit 137;
        let items =
          match !hello with
          | None -> []
          | Some h -> (
              match W.of_string Workpool.chunk_request_codec payload with
              | Error _ -> []
              | Ok chunk ->
                  (* one reply slot per candidate: a failed one costs its
                     slot, never the chunk *)
                  List.map
                    (fun hw ->
                      try Some (evaluate ~cache h hw) with _ -> None)
                    chunk)
        in
        Some
          (Workpool.tag_eval_chunk, W.to_string Workpool.chunk_reply_codec items)
      end
      else
        (* unknown request tag from a newer parent: answer with an empty
           eval reply to keep the request/reply lockstep *)
        Some (Workpool.tag_eval, W.to_string Workpool.reply_codec None))
