module W = Pom_wire.Wire
module Memo = Pom_pipeline.Memo

(* One candidate, evaluated exactly as {!Stage2.evaluate_realized} would:
   same memoized base-prefix application, same partition plan, same
   directive concatenation order — so the memo key and the report are the
   ones the parent's sequential replay will ask for. *)
let evaluate ~cache (h : Workpool.hello) hw =
  let prog0 = Memo.schedule cache h.Workpool.func h.Workpool.base in
  let prog0 = List.fold_left Pom_polyir.Prog.apply prog0 hw in
  let parts = Stage2.partition_plan ?bank_cap:h.Workpool.bank_cap prog0 in
  let directives = h.Workpool.base @ hw @ parts in
  let prog, report =
    Memo.synthesize cache ~composition:h.Workpool.composition
      ~latency_mode:h.Workpool.latency_mode ~device:h.Workpool.device
      ~directives h.Workpool.func (fun () ->
        List.fold_left Pom_polyir.Prog.apply prog0 parts)
  in
  let key =
    Memo.report_key ~composition:h.Workpool.composition
      ~latency_mode:h.Workpool.latency_mode ~device:h.Workpool.device
      ~directives h.Workpool.func
  in
  (key, prog, report)

let main () =
  (* a worker is one shard: everything inside it runs sequentially *)
  Pom_par.Par.set_jobs 1;
  let hello = ref None in
  let cache = Memo.create () in
  Pom_par.Procs.serve ~header:Workpool.header (fun ~tag payload ->
      if tag = Workpool.tag_hello then begin
        (match W.of_string Workpool.hello_codec payload with
        | Ok h -> hello := Some h
        | Error _ ->
            (* an undecodable hello leaves every evaluation unanswerable;
               replies stay [None] and the parent degrades *)
            hello := None);
        None
      end
      else if tag = Workpool.tag_eval then begin
        let result =
          match !hello with
          | None -> None
          | Some h -> (
              match W.of_string Workpool.request_codec payload with
              | Error _ -> None
              | Ok hw -> (
                  try Some (evaluate ~cache h hw) with _ -> None))
        in
        Some (Workpool.tag_eval, W.to_string Workpool.reply_codec result)
      end
      else
        (* unknown request tag from a newer parent: answer with an empty
           eval reply to keep the request/reply lockstep *)
        Some (Workpool.tag_eval, W.to_string Workpool.reply_codec None))
