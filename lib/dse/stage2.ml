open Pom_dsl
open Pom_polyir
open Pom_hls
module Memo = Pom_pipeline.Memo
module Chunks = Pom_par.Chunks

type result = {
  directives : Schedule.t list;
  prog : Prog.t;
  report : Report.t;
  iterations : int;
  tile_vectors : (string * int list) list;
  trace : string list;
  evaluations : int;
  report_cache_hits : int;
  cold_syntheses : int;
  pruned : int;
  sched : Chunks.stats;
}

(* ---- parallelism realization for one compute ---- *)

(* Split [par] parallel copies over the two innermost levels: prefer a
   balanced [.., f_prev, f_last] spread (the paper's [1, 2, 16]-style
   vectors) over a single wide unroll when the nest is deep enough. *)
let factor_split ~depth ~e_prev ~e_last par =
  let inner_cap = if depth >= 3 then 16 else 32 in
  let f_last = min (min par e_last) inner_cap in
  let f_prev = if depth >= 2 then min (min (par / f_last) e_prev) 16 else 1 in
  (f_prev, f_last)

type realization = {
  hw_directives : Schedule.t list;
  tile_vector : int list;  (* factor per (post-stage-1) loop level *)
}

let realize cname order extents par =
  let d = List.length order in
  let nth = List.nth in
  let e_last = nth extents (d - 1) in
  let e_prev = if d >= 2 then nth extents (d - 2) else 1 in
  let l_last = nth order (d - 1) in
  let l_prev = if d >= 2 then nth order (d - 2) else l_last in
  let f_prev, f_last = factor_split ~depth:d ~e_prev ~e_last par in
  let vector =
    List.mapi
      (fun i _ ->
        if i = d - 1 then f_last else if i = d - 2 then f_prev else 1)
      order
  in
  let pipe dim = Schedule.pipeline cname dim 1 in
  let dirs =
    match (f_prev, f_last) with
    | 1, 1 -> [ pipe l_last ]
    | 1, f when f < e_last ->
        [
          Schedule.split cname l_last f (l_last ^ "_o") (l_last ^ "_i");
          pipe (l_last ^ "_o");
          Schedule.unroll cname (l_last ^ "_i") f;
        ]
    | 1, _ ->
        (* full unroll of the innermost level *)
        Schedule.unroll cname l_last e_last
        :: (if d >= 2 then [ pipe l_prev ] else [])
    | fp, fl when fl < e_last ->
        [
          Schedule.tile cname l_prev l_last fp fl (l_prev ^ "_o")
            (l_last ^ "_o") (l_prev ^ "_i") (l_last ^ "_i");
          pipe (l_last ^ "_o");
          Schedule.unroll cname (l_prev ^ "_i") fp;
          Schedule.unroll cname (l_last ^ "_i") fl;
        ]
    | fp, _ when fp < e_prev ->
        [
          Schedule.split cname l_prev fp (l_prev ^ "_o") (l_prev ^ "_i");
          pipe (l_prev ^ "_o");
          Schedule.unroll cname (l_prev ^ "_i") fp;
          Schedule.unroll cname l_last e_last;
        ]
    | _, _ ->
        (* both innermost levels fully unrolled *)
        [ Schedule.unroll cname l_prev e_prev; Schedule.unroll cname l_last e_last ]
        @ (if d >= 3 then [ pipe (nth order (d - 3)) ] else [])
  in
  { hw_directives = dirs; tile_vector = vector }

(* ---- array partitioning matched to the unrolled dimensions ---- *)

let partition_plan ?(bank_cap = 64) (prog : Prog.t) =
  let demand : (string, int array) Hashtbl.t = Hashtbl.create 8 in
  let placeholders = Func.placeholders prog.Prog.func in
  List.iter
    (fun (p : Placeholder.t) ->
      Hashtbl.replace demand p.Placeholder.name
        (Array.make (Placeholder.rank p) 1))
    placeholders;
  List.iter
    (fun (s : Stmt_poly.t) ->
      let unrolls = s.Stmt_poly.hw.Stmt_poly.unrolls in
      if unrolls <> [] then begin
        let write, reads = Summary.transformed_accesses s in
        List.iter
          (fun (a : Pom_poly.Dep.access) ->
            match Hashtbl.find_opt demand a.Pom_poly.Dep.array with
            | None -> ()
            | Some factors ->
                List.iteri
                  (fun k idx ->
                    let dims = Pom_poly.Linexpr.dims idx in
                    List.iter
                      (fun (dim, f) ->
                        if List.mem dim dims && f > factors.(k) then
                          factors.(k) <- f)
                      unrolls)
                  a.Pom_poly.Dep.indices)
          (write :: reads)
      end)
    prog.Prog.stmts;
  (* Bank budget: beyond ~64 banks per array the crossbar cost outweighs
     the port gain; shed factors by halving the widest dimension, trading a
     slightly larger II for feasible muxing (the paper's BICG lands at II=2
     through exactly this trade). *)
  let cap_banks factors =
    let fs = Array.of_list factors in
    let product () = Array.fold_left ( * ) 1 fs in
    while product () > bank_cap do
      let widest = ref 0 in
      Array.iteri (fun k f -> if f > fs.(!widest) then widest := k) fs;
      fs.(!widest) <- max 1 (fs.(!widest) / 2)
    done;
    Array.to_list fs
  in
  List.filter_map
    (fun (p : Placeholder.t) ->
      let factors = Array.to_list (Hashtbl.find demand p.Placeholder.name) in
      let factors =
        List.map2 (fun f extent -> min f (min extent 64)) factors
          p.Placeholder.shape
      in
      let factors = cap_banks factors in
      if List.exists (fun f -> f > 1) factors then
        Some (Schedule.partition p.Placeholder.name factors Schedule.Cyclic)
      else None)
    placeholders

(* ---- optimization units (fusion groups) ---- *)

type unit_state = {
  id : int;  (* leading schedule constant *)
  members : (string * string list * int list) list;
      (* compute, loop order, extents after stage 1 *)
  mutable par : int;
  max_par : int;
  mutable active : bool;
  mutable realization : realization list;  (* one per member *)
}

let member_info (s : Stmt_poly.t) =
  let order = Stmt_poly.loop_order s in
  let extents =
    List.map
      (fun dim ->
        match Pom_poly.Basic_set.const_range dim s.Stmt_poly.domain with
        | Some lb, Some ub -> ub - lb + 1
        | _ -> invalid_arg "Stage2: unbounded loop")
      order
  in
  (Stmt_poly.name s, order, extents)

let units_of (prog : Prog.t) ~par_cap =
  let ids =
    List.sort_uniq Int.compare
      (List.map
         (fun (s : Stmt_poly.t) -> Pom_poly.Sched.const_at s.Stmt_poly.sched 0)
         prog.Prog.stmts)
  in
  List.map
    (fun id ->
      let members =
        List.filter_map
          (fun (s : Stmt_poly.t) ->
            if Pom_poly.Sched.const_at s.Stmt_poly.sched 0 = id then
              Some (member_info s)
            else None)
          prog.Prog.stmts
      in
      let max_par =
        List.fold_left
          (fun acc (_, order, extents) ->
            let d = List.length order in
            let e_last = List.nth extents (d - 1) in
            let e_prev = if d >= 2 then List.nth extents (d - 2) else 1 in
            min acc (min par_cap (e_last * e_prev)))
          par_cap members
      in
      {
        id;
        members;
        par = 1;
        max_par;
        active = true;
        realization =
          List.map
            (fun (c, order, extents) -> realize c order extents 1)
            members;
      })
    ids

let realize_unit u =
  u.realization <-
    List.map (fun (c, order, extents) -> realize c order extents u.par) u.members

(* ---- full-program evaluation ---- *)

(* The shared work of a candidate is memoized at two levels: the
   base-directive prefix application (the schedule memo, one entry for the
   whole search) and the candidate's realization plan — hardware-directive
   application plus the derived partition plan (the plan memo, one entry
   per design point).  A speculatively warmed design point is thereby a
   guaranteed O(lookup) hit for the sequential replay: recovering the
   report key costs a plan lookup, never a re-application of the hardware
   directives. *)
let realization_plan ?bank_cap ~cache func base hw =
  Memo.plan cache
    ~key:(Memo.plan_key ~base ~hw ~bank_cap func)
    (fun () ->
      let prog0 = Memo.schedule cache func base in
      let prog_hw = List.fold_left Prog.apply prog0 hw in
      let parts = partition_plan ?bank_cap prog_hw in
      {
        Memo.plan_directives = base @ hw @ parts;
        plan_parts = parts;
        plan_prog_hw = prog_hw;
      })

let evaluate_realized ?bank_cap ~cache ~device ~composition func
    base_directives realizations =
  let hw =
    List.concat_map
      (fun rs -> List.concat_map (fun r -> r.hw_directives) rs)
      realizations
  in
  let plan = realization_plan ?bank_cap ~cache func base_directives hw in
  let prog, report =
    Memo.synthesize cache ~composition ~device
      ~directives:plan.Memo.plan_directives func (fun () ->
        List.fold_left Prog.apply plan.Memo.plan_prog_hw plan.Memo.plan_parts)
  in
  (prog, plan.Memo.plan_directives, report)

let evaluate ?bank_cap ~cache ~device ~composition func base_directives units =
  evaluate_realized ?bank_cap ~cache ~device ~composition func base_directives
    (List.map (fun u -> u.realization) units)

(* ---- speculative evaluation of the search frontier ---- *)

let unit_realizes u par =
  List.map (fun (c, order, extents) -> realize c order extents par) u.members

(* Whether stepping [u] from [from_par] to [to_par] produces different
   hardware at all: factor clamping can collapse a larger request onto the
   same realization, which the search prunes without synthesizing — so the
   frontier skips it too. *)
let realization_changes u ~from_par ~to_par =
  unit_realizes u to_par <> unit_realizes u from_par

(* The speculative frontier: parallelism vectors reachable from the
   incumbent within [depth] accepted steps, in deterministic DFS order,
   capped at [cap] points.  Evaluating the frontier concurrently warms the
   report memo; the search itself then replays the exact sequential
   algorithm against warm entries, which is what keeps --jobs N results
   identical to --jobs 1. *)
let frontier ~steps ~depth ~cap units =
  let ua = Array.of_list units in
  let base = Array.map (fun u -> u.par) ua in
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let n_out = ref 0 in
  let rec expand d pars =
    if d < depth then
      Array.iteri
        (fun i u ->
          if u.active && !n_out < cap then
            List.iter
              (fun p ->
                if
                  p > pars.(i)
                  && p <= u.max_par
                  && !n_out < cap
                  && realization_changes u ~from_par:pars.(i) ~to_par:p
                then begin
                  let next = Array.copy pars in
                  next.(i) <- p;
                  let key = Array.to_list next in
                  if not (Hashtbl.mem seen key) then begin
                    Hashtbl.add seen key ();
                    out := next :: !out;
                    incr n_out;
                    expand (d + 1) next
                  end
                end)
              (steps pars.(i)))
        ua
  in
  expand 0 base;
  List.rev !out

let realizations_of units pars =
  List.mapi (fun i u -> unit_realizes u pars.(i)) units

(* ---- the bottleneck-oriented search ---- *)

let unit_latency (report : Report.t) u =
  Option.value ~default:0 (List.assoc_opt u.id report.Report.group_latencies)

let critical_bottleneck ~report ~paths units =
  let unit_of_compute name =
    List.find_opt
      (fun u -> List.exists (fun (c, _, _) -> c = name) u.members)
      units
  in
  let unit_paths =
    List.map
      (fun path ->
        let us = List.filter_map unit_of_compute path in
        let seen = Hashtbl.create 4 in
        List.filter
          (fun u ->
            if Hashtbl.mem seen u.id then false
            else begin
              Hashtbl.add seen u.id ();
              true
            end)
          us)
      paths
  in
  let weight us =
    List.fold_left (fun acc u -> acc + unit_latency report u) 0 us
  in
  let sorted =
    List.sort (fun a b -> Int.compare (weight b) (weight a)) unit_paths
  in
  List.find_map
    (fun us ->
      let actives = List.filter (fun u -> u.active) us in
      match
        List.sort
          (fun a b -> Int.compare (unit_latency report b) (unit_latency report a))
          actives
      with
      | u :: _ -> Some u
      | [] -> None)
    sorted

let default_steps par = [ par * 2; par * 3 / 2 ]

let run ?(device = Device.xc7z020) ?(composition = Resource.Reuse)
    ?(par_cap = 64) ?bank_cap ?(steps = default_steps)
    ?(cache = Pom_pipeline.Memo.global) ?(jobs = Pom_par.Par.jobs ())
    ?(chunk = Pom_par.Par.chunk ()) ?checkpoint func (stage1 : Stage1.t) =
  let jobs = max 1 jobs in
  let chunk = max 1 chunk in
  (* Journal every genuinely synthesized design point; on resume the intact
     records are replayed into the report memo first, so the sequential
     replay below re-derives the exact decision sequence of the
     uninterrupted search from warm cache entries. *)
  Pom_pipeline.Memo.with_journal cache checkpoint @@ fun journal_notes ->
  let memo0 = Pom_pipeline.Memo.snapshot cache in
  let base = stage1.Stage1.directives in
  let prog_base = Pom_pipeline.Memo.schedule cache func base in
  let units = units_of prog_base ~par_cap in
  let paths = Pom_depgraph.Graph.data_paths (Pom_depgraph.Graph.build func) in
  let evaluations = ref 0 in
  (* Hit/miss accounting is per sequential evaluation (the speculative warm
     below is synchronous, so these deltas are exclusively the search's
     own): at jobs > 1 the raw memo counters also carry speculative
     traffic, which must not inflate the "served from cache" headline. *)
  let search_hits = ref 0 and search_misses = ref 0 in
  let counted thunk =
    incr evaluations;
    (* the per-evaluation fault site: [kill] here simulates the process
       dying on the Nth sequential evaluation (the kill-and-resume test);
       the speculative prefetch below never passes through it *)
    Pom_resilience.Fault.point "dse:evaluate";
    let before = Pom_pipeline.Memo.snapshot cache in
    let r = thunk () in
    let after = Pom_pipeline.Memo.snapshot cache in
    search_hits :=
      !search_hits
      + (after.Pom_pipeline.Memo.report_hits
        - before.Pom_pipeline.Memo.report_hits);
    search_misses :=
      !search_misses
      + (after.Pom_pipeline.Memo.report_misses
        - before.Pom_pipeline.Memo.report_misses);
    r
  in
  let evaluate_counted () =
    counted (fun () ->
        evaluate ?bank_cap ~cache ~device ~composition func base units)
  in
  let current = ref (evaluate_counted ()) in
  let trace = ref [] in
  let log fmt = Format.kasprintf (fun m -> trace := m :: !trace) fmt in
  List.iter (fun m -> log "%s" m) journal_notes;
  List.iter
    (fun u ->
      log "unit g%d {%s}: max parallelism %d" u.id
        (String.concat ", " (List.map (fun (c, _, _) -> c) u.members))
        u.max_par)
    units;
  (* Speculation: before each sequential decision, evaluate the candidate
     frontier concurrently purely to warm the report memo.  Failures are
     swallowed — a speculative point the sequential search would never reach
     must not be able to abort the search — and nothing below mutates the
     search state, so the replayed decisions (and every counter the replay
     increments) are exactly those of the sequential algorithm. *)
  (* Process sharding (--jobs-mode procs): the same speculative frontier,
     dealt to worker processes over framed pipes instead of pool domains.
     Workers compute design points with the exact evaluate_realized
     recipe and reply keyed for this memo, so absorbing them is
     indistinguishable from having computed them here — and the
     sequential replay stays bit-identical.  A pool that cannot be
     spawned degrades to sequential evaluation (never a failed search). *)
  let pool =
    if
      jobs <= 1
      || Pom_par.Par.mode () <> Pom_par.Par.Procs
      || Pom_par.Pool.in_worker ()
    then None
    else
      match
        Workpool.borrow ~jobs ~func ~device ~composition
          ~latency_mode:`Sequential ~base ?bank_cap ()
      with
      | pool -> Some pool
      | exception e ->
          log
            "parallel: worker pool unavailable (%s); evaluating sequentially"
            (Printexc.to_string e);
          None
  in
  Fun.protect ~finally:(fun () -> Option.iter Workpool.release pool)
  @@ fun () ->
  let depth = min 2 (max 1 (jobs - 1)) in
  let cap = 4 * jobs in
  let sched = ref (Chunks.zero_stats ~jobs ~chunk_size:chunk) in
  (* Candidates already dealt in an earlier iteration are warm (or in that
     iteration's absorb path); don't re-warm them.  The table is keyed by
     the printed hardware-directive list — the same identity the plan memo
     uses — so dedup is shared by both jobs modes. *)
  let dispatched = Hashtbl.create 64 in
  (* The fresh slice of the speculative frontier, grouped per varied unit:
     each group is a tile ladder — candidates stepping one unit's
     parallelism off the shared incumbent skeleton — which is the
     contiguity the chunked executor preserves (a chunk's candidates share
     their schedule prefix, so the plan memo's shared work amortizes). *)
  let fresh_frontier () =
    let base_pars = Array.of_list (List.map (fun u -> u.par) units) in
    let varied pars =
      let n = Array.length pars in
      let rec first i = if i >= n then 0 else if pars.(i) <> base_pars.(i) then i else first (i + 1) in
      first 0
    in
    let fresh =
      List.filter_map
        (fun pars ->
          let rzs = realizations_of units pars in
          let hw =
            List.concat_map
              (fun rs -> List.concat_map (fun r -> r.hw_directives) rs)
              rzs
          in
          let k =
            String.concat ";" (List.map (Format.asprintf "%a" Schedule.pp) hw)
          in
          if Hashtbl.mem dispatched k then None
          else begin
            Hashtbl.add dispatched k ();
            Some (varied pars, rzs, hw)
          end)
        (frontier ~steps ~depth ~cap units)
    in
    let groups =
      List.sort_uniq Int.compare (List.map (fun (g, _, _) -> g) fresh)
    in
    List.map
      (fun g -> List.filter (fun (g', _, _) -> g' = g) fresh)
      groups
  in
  let prefetch_fn =
    if jobs <= 1 || Pom_par.Pool.in_worker () then None
    else
      match pool with
      | Some pool ->
          log
            "parallel: %d-way process-sharded speculative evaluation \
             (frontier depth %d, cap %d, chunk %d)"
            jobs depth cap chunk;
          Some
            (fun () ->
              let hws =
                List.concat_map
                  (List.map (fun (_, _, hw) -> hw))
                  (fresh_frontier ())
              in
              if hws <> [] then begin
                let before = Workpool.stats pool in
                let { Workpool.n_chunks; forfeited; evaluated = items } =
                  Workpool.eval_chunks pool ~chunk hws
                in
                let after = Workpool.stats pool in
                List.iter
                  (fun (hw, (it : Workpool.item)) ->
                    Memo.absorb_report cache ~key:it.Workpool.r_key
                      (it.Workpool.prog, it.Workpool.report);
                    Memo.absorb_plan cache
                      ~key:(Memo.plan_key ~base ~hw ~bank_cap func)
                      {
                        Memo.plan_directives = base @ hw @ it.Workpool.parts;
                        plan_parts = it.Workpool.parts;
                        plan_prog_hw = it.Workpool.prog_hw;
                      })
                  items;
                (* chunks are dealt round-robin over the live workers; no
                   stealing happens across processes *)
                let alive = max 1 (Workpool.alive pool) in
                let worker_items = Array.make jobs 0 in
                List.iteri
                  (fun c (_ : Schedule.t list) ->
                    let w = c / chunk mod alive in
                    worker_items.(w) <- worker_items.(w) + 1)
                  hws;
                sched :=
                  Chunks.merge !sched
                    {
                      Chunks.jobs;
                      chunk_size = chunk;
                      chunks = n_chunks;
                      items = List.length hws;
                      steals = 0;
                      splits = 0;
                      forfeited;
                      respawns =
                        after.Pom_par.Procs.respawned
                        - before.Pom_par.Procs.respawned;
                      worker_items;
                    }
              end)
      | None when Pom_par.Par.mode () = Pom_par.Par.Procs ->
          (* procs requested but no pool: Par.map is sequential in this
             mode, so a domain-style warm would only repeat the replay *)
          None
      | None ->
          log
            "parallel: %d-way chunked work-stealing speculative evaluation \
             (frontier depth %d, cap %d, chunk %d)"
            jobs depth cap chunk;
          Some
            (fun () ->
              let groups =
                List.map
                  (fun g ->
                    Array.of_list (List.map (fun (_, rzs, _) -> rzs) g))
                  (fresh_frontier ())
              in
              if groups <> [] then
                sched :=
                  Chunks.merge !sched
                    (Chunks.run ~jobs ~chunk
                       ~f:(fun _ rzs ->
                         try
                           ignore
                             (evaluate_realized ?bank_cap ~cache ~device
                                ~composition func base rzs)
                         with _ -> ())
                       groups))
  in
  (* a ref so a pool that burns through its respawn budget (POM311) can
     retire the prefetch for the rest of the search instead of aborting
     it — the sequential replay below evaluates everything the warm
     would have, so the design is unchanged, just slower *)
  let prefetch = ref prefetch_fn in
  let iterations = ref 0 in
  let pruned = ref 0 in
  (* the analyzer's pre-pruning oracle sees the candidate's scheduled
     program (cheap: memoized base + directive application) but never its
     synthesis *)
  let candidate_prog () =
    let hw =
      List.concat_map
        (fun u -> List.concat_map (fun r -> r.hw_directives) u.realization)
        units
    in
    (realization_plan ?bank_cap ~cache func base hw).Memo.plan_prog_hw
  in
  let continue_ = ref true in
  while !continue_ && !iterations < 60 do
    incr iterations;
    (match !prefetch with
    | Some warm -> (
        try warm ()
        with Pom_resilience.Error.Error { code = "POM311"; message; _ } ->
          log "parallel: %s; continuing without speculative prefetch" message;
          prefetch := None)
    | None -> ());
    let _, _, report = !current in
    match critical_bottleneck ~report ~paths units with
    | None -> continue_ := false
    | Some u ->
        (* escalate by doubling; when the doubled design no longer fits or
           helps, retry once with a 1.5x step before giving up on the
           node (the exit mechanism) *)
        let try_par par =
          if par <= u.par || par > u.max_par then false
          else begin
            let saved_par = u.par and saved_real = u.realization in
            u.par <- par;
            realize_unit u;
            let cur_prog, _, _ = !current in
            if
              not
                (Pom_analysis.Lint.gains_parallelism
                   ~before:(Pom_analysis.Lint.hw_signature cur_prog)
                   (candidate_prog ()))
            then begin
              (* factor clamping collapsed the request onto the incumbent's
                 realization: identical hardware, identical QoR — skip the
                 synthesis entirely *)
              incr pruned;
              log
                "iter %d: bottleneck g%d par %d -> %d pruned by the analyzer \
                 (hardware signature unchanged, synthesis skipped)"
                !iterations u.id saved_par par;
              u.par <- saved_par;
              u.realization <- saved_real;
              false
            end
            else begin
            match evaluate_counted () with
            | exception (Pom_resilience.Fault.Killed _ as e) ->
                (* simulated process death: never absorbed *)
                raise e
            | exception (Pom_resilience.Budget.Budget_exceeded { reason; _ }
                         as e) ->
                u.par <- saved_par;
                u.realization <- saved_real;
                if Pom_resilience.Policy.degrading () then begin
                  (* Degradation policy: out of time mid-search means keep
                     the incumbent — a complete, legal design point — rather
                     than losing the whole compile. *)
                  log
                    "iter %d: budget exhausted (%s); search stopped at the \
                     incumbent"
                    !iterations reason;
                  continue_ := false;
                  false
                end
                else raise e
            | exception e when Pom_resilience.Policy.degrading () ->
                (* Degradation policy: one broken candidate must not sink
                   the search — skip it and keep exploring (POM304). *)
                u.par <- saved_par;
                u.realization <- saved_real;
                log
                  "iter %d: candidate g%d par %d -> %d evaluation failed \
                   (%s); candidate skipped (POM304)"
                  !iterations u.id saved_par par (Printexc.to_string e);
                false
            | trial ->
            let _, _, trial_report = trial in
            let _, _, cur_report = !current in
            if
              trial_report.Report.feasible
              && trial_report.Report.latency < cur_report.Report.latency
            then begin
              log "iter %d: bottleneck g%d par %d -> %d accepted (%d -> %d cycles)"
                !iterations u.id saved_par par cur_report.Report.latency
                trial_report.Report.latency;
              current := trial;
              true
            end
            else begin
              log "iter %d: bottleneck g%d par %d -> %d rejected (%s)"
                !iterations u.id saved_par par
                (if not trial_report.Report.feasible then "exceeds budget"
                 else "no latency gain");
              u.par <- saved_par;
              u.realization <- saved_real;
              false
            end
            end
          end
        in
        if not (List.exists try_par (steps u.par)) then begin
          log "iter %d: g%d removed from the optimization list (exit mechanism)"
            !iterations u.id;
          u.active <- false
        end
  done;
  let prog0, directives, _ = !current in
  (* Re-request the winning design point through the memo: the search just
     evaluated it, so this final QoR query is served from cache — the same
     mechanism that makes any later re-synthesis of this point (the compile
     pipeline's hls-synthesize pass, a --trace re-run) free. *)
  let prog, report =
    counted (fun () ->
        Pom_pipeline.Memo.synthesize cache ~composition ~device ~directives
          func (fun () -> prog0))
  in
  let memo1 = Pom_pipeline.Memo.snapshot cache in
  let report_cache_hits = !search_hits in
  let cold_syntheses = !search_misses in
  log
    "memo: %d of %d QoR evaluations served from cache (%d cold syntheses, %d \
     schedule-prefix hits)"
    report_cache_hits !evaluations cold_syntheses
    (memo1.Pom_pipeline.Memo.schedule_hits
    - memo0.Pom_pipeline.Memo.schedule_hits);
  if !pruned > 0 then
    log "analyzer: %d design points pruned before synthesis" !pruned;
  if !sched.Chunks.items > 0 then log "scheduler: %a" Chunks.pp !sched;
  let tile_vectors =
    List.concat_map
      (fun u ->
        List.map2
          (fun (c, _, _) r -> (c, r.tile_vector))
          u.members u.realization)
      units
  in
  {
    directives;
    prog;
    report;
    iterations = !iterations;
    tile_vectors;
    trace = List.rev !trace;
    evaluations = !evaluations;
    report_cache_hits;
    cold_syntheses;
    pruned = !pruned;
    sched = !sched;
  }
