(** Stage 2 of the DSE engine (Section VI-B): bottleneck-oriented code
    optimization.  Node latencies are estimated with the QoR model, data
    paths are ordered by latency, and the bottleneck node of the critical
    path has its parallelism escalated (tiling + pipelining + unrolling +
    matching array partitioning) until it stops being the bottleneck, the
    design leaves the resource budget, or its maximum parallelism is
    reached — the exit mechanism that removes it from the optimization
    list. *)

open Pom_dsl

(** The hardware directives realizing one parallelism degree on one
    compute, plus the tile-factor vector they correspond to. *)
type realization = {
  hw_directives : Schedule.t list;
  tile_vector : int list;
}

(** [realize compute loop_order extents par] produces the
    tile/pipeline/unroll directives giving [par] parallel copies on the
    innermost levels (shared with the ScaleHLS baseline, which explores the
    same move space with a different search policy). *)
val realize : string -> string list -> int list -> int -> realization

(** Array-partition directives matched to the unroll factors present in a
    scheduled program, with the per-array bank-count cap ([bank_cap],
    default 64: beyond it the crossbar cost outweighs the port gain and
    factors are shed by halving, trading a slightly larger II). *)
val partition_plan : ?bank_cap:int -> Pom_polyir.Prog.t -> Schedule.t list

(** [realization_plan ~cache func base hw] is the memoized work between a
    candidate's hardware directives and its report synthesis: apply the
    (schedule-memoized) base prefix, apply [hw], derive the partition plan
    ({!partition_plan} under [bank_cap]).  One plan-memo entry per design
    point; shared verbatim by the search, the analyzer's pre-pruning
    oracle, the ScaleHLS baseline, and the process workers — which is what
    makes a speculatively warmed design point a guaranteed lookup for the
    sequential replay. *)
val realization_plan :
  ?bank_cap:int ->
  cache:Pom_pipeline.Memo.t ->
  Func.t ->
  Schedule.t list ->
  Schedule.t list ->
  Pom_pipeline.Memo.plan

type result = {
  directives : Schedule.t list;
      (** the full plan: stage-1 directives + hardware directives *)
  prog : Pom_polyir.Prog.t;
  report : Pom_hls.Report.t;
  iterations : int;
  tile_vectors : (string * int list) list;
      (** per compute: achieved tile/unroll factor per loop level *)
  trace : string list;
      (** human-readable decision log of the bottleneck search *)
  evaluations : int;
      (** QoR-model evaluations requested by the search, including the
          final re-request of the winning point (the deterministic
          counterpart of the DSE-time column) *)
  report_cache_hits : int;
      (** evaluations served by the report memo instead of a synthesis *)
  cold_syntheses : int;  (** evaluations that ran a full synthesis *)
  pruned : int;
      (** candidate design points dropped by the analyzer's pre-pruning
          oracle ({!Pom_analysis.Lint.parallelism_gain}) without any
          synthesis: every copy the candidate adds would serialize on a
          loop-carried dependence, so under the QoR model it cannot beat
          the incumbent *)
  sched : Pom_par.Chunks.stats;
      (** the speculative warm's scheduler counters, accumulated over the
          search: chunks/items dealt, steals and splits (domains mode;
          zero in procs mode, where chunks are shipped whole), per-worker
          item counts.  All zero at [jobs = 1]. *)
}

(** [run func stage1] performs the bottleneck-oriented search.
    [par_cap] bounds the parallelism degree per node; [bank_cap] bounds
    partition banks per array; [steps] is the user-specifiable strategy
    group of Section VI-B — given a node's current parallelism it returns
    the candidate degrees to try, first hit wins (default: double, then
    1.5x as a fallback).  Every QoR evaluation goes through [cache]
    (default {!Pom_pipeline.Memo.global}): the base-directive prefix is
    applied once, and re-requested design points skip synthesis.

    [checkpoint], when given, is a crash-safe journal path: every
    genuinely synthesized design point is appended as it is evaluated, and
    on restart the intact records are replayed into the report memo before
    the search begins — the sequential replay then re-derives the exact
    decision sequence of the uninterrupted search, so a killed-and-resumed
    run produces identical directives, tile vectors, and report.

    [jobs] (default {!Pom_par.Par.jobs}) sets the worker budget.  With
    [jobs > 1] the search speculatively evaluates the fresh slice of the
    candidate frontier (the design points reachable within a few accepted
    steps, minus the already-dispatched ones) concurrently to warm the
    plan and report memos, then replays the exact sequential decision
    sequence against the warm cache — so the chosen directives, tile
    vectors, and report are identical across job counts, chunk sizes, and
    steal interleavings, and [jobs = 1] reproduces the sequential search
    bit-for-bit.  The warm runs on the chunked work-stealing executor
    ({!Pom_par.Chunks}) in domains mode, or ships chunks to worker
    processes in procs mode; [chunk] (default {!Pom_par.Par.chunk}) is the
    target chunk granularity in both. *)
val run :
  ?device:Pom_hls.Device.t ->
  ?composition:Pom_hls.Resource.composition ->
  ?par_cap:int ->
  ?bank_cap:int ->
  ?steps:(int -> int list) ->
  ?cache:Pom_pipeline.Memo.t ->
  ?jobs:int ->
  ?chunk:int ->
  ?checkpoint:string ->
  Func.t ->
  Stage1.t ->
  result
