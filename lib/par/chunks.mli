(** The chunked work-stealing executor.

    Callers submit {e chunks} — contiguous runs of items sharing setup cost
    (e.g. DSE candidates sharing a schedule skeleton) — instead of one task
    per item.  Each worker owns a {!Deque}; it pops its own chunks LIFO and
    processes them whole, and only an idle worker steals: FIFO from a
    victim, splitting the stolen chunk in half (one half processed, the
    other pushed onto the thief's deque, stealable again).  Granularity is
    self-balancing — balanced runs never split; imbalance fissions chunks
    down to single items exactly where the idleness is.

    The item body must be commutative in its effects (warming a memo is;
    the steal interleaving is scheduler-dependent).  Every item runs
    exactly once; if items raise, the exception of the lowest-index item is
    re-raised after the whole run settles — the {!Pool.parallel_map}
    contract.  Each chunk passes the [par:chunk] budget/fault site; the
    [par:steal-miss] fault site deterministically fails steal attempts so
    tests can force adversarial interleavings. *)

type stats = {
  jobs : int;
  chunk_size : int;
  chunks : int;  (** work units after initial re-chunking *)
  items : int;
  steals : int;
  splits : int;
  forfeited : int;
      (** items lost to dead workers, never evaluated (process-sharded
          runs; always 0 for in-process domains) *)
  respawns : int;  (** worker processes respawned by supervision *)
  worker_items : int array;  (** items processed per worker *)
}

val zero_stats : jobs:int -> chunk_size:int -> stats

(** Mean over workers of items processed relative to the busiest worker:
    1.0 is a perfectly even spread, 1/jobs is one worker doing everything. *)
val occupancy : stats -> float

(** Accumulate two runs' stats (worker arrays added element-wise). *)
val merge : stats -> stats -> stats

val pp : Format.formatter -> stats -> unit

(** [run ~jobs ~chunk ~f groups] executes every item of every group.
    [f idx item] receives the item's global index (numbered across groups
    in submission order).  Groups are re-chunked to at most [chunk] items
    (defaults: the {!Par_conf} knobs); each group's items stay contiguous.
    Runs sequentially when [jobs <= 1] or when called from inside pool
    work. *)
val run :
  ?jobs:int -> ?chunk:int -> f:(int -> 'a -> unit) -> 'a array list -> stats
