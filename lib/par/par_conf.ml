(* Process-wide knobs shared by the executors ({!Pool}, {!Chunks}) and the
   {!Par} facade — separate from {!Par} so the executors can read them
   without a dependency cycle. *)

let default_jobs = max 1 (Domain.recommended_domain_count ())

let budget = Atomic.make default_jobs

let jobs () = Atomic.get budget

let set_jobs n = Atomic.set budget (max 1 n)

let with_jobs n f =
  let saved = jobs () in
  set_jobs n;
  Fun.protect ~finally:(fun () -> set_jobs saved) f

(* Target work-unit granularity for the chunked executor (--chunk): big
   enough that per-chunk overhead amortizes, small enough that the initial
   deal spreads across workers.  Stealing splits below it on demand. *)
let default_chunk = 8

let chunk_state = Atomic.make default_chunk

let chunk () = Atomic.get chunk_state

let set_chunk n = Atomic.set chunk_state (max 1 n)

let with_chunk n f =
  let saved = chunk () in
  set_chunk n;
  Fun.protect ~finally:(fun () -> set_chunk saved) f
