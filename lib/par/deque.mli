(** A mutex-protected double-ended work queue with work-stealing
    semantics: the owner pushes and pops at the bottom (LIFO), thieves
    steal from the top (FIFO).  Safe from any domain; all operations are
    O(1) amortized. *)

type 'a t

val create : unit -> 'a t

(** Owner side: deposit at the bottom. *)
val push : 'a t -> 'a -> unit

(** Owner side: take the most recently pushed element (LIFO). *)
val pop : 'a t -> 'a option

(** Thief side: take the oldest element (FIFO) — the coarsest work unit,
    the one worth splitting. *)
val steal : 'a t -> 'a option

val length : 'a t -> int

val is_empty : 'a t -> bool
