(** A fixed-size pool of OCaml 5 domains.

    The pool owns [size - 1] worker domains; the domain that submits a batch
    participates in executing it, so a pool of size [n] runs up to [n] tasks
    concurrently while never spawning more than [n - 1] domains.  Domains are
    heavyweight (each carries a minor heap and participates in every GC), so
    pools are meant to be created once and reused — see {!Par} for the
    process-wide instance.

    Batches are synchronous: [parallel_map] returns only once every task of
    its batch has finished, results are delivered in input order, and the
    first (lowest-index) exception is re-raised with its original backtrace.

    Pool tasks must not themselves submit batches: worker domains executing a
    nested batch would deadlock waiting for queue slots their own pool holds.
    Nested submissions are detected and rejected with [Invalid_argument];
    callers that may run on either side use {!in_worker} (as {!Par.map} does)
    to fall back to sequential execution instead. *)

type t

(** [create n] spawns a pool of total size [max 1 n] ([n - 1] worker
    domains).  A pool of size 1 spawns nothing and runs every batch on the
    caller. *)
val create : int -> t

(** Total parallelism of the pool, including the submitting domain. *)
val size : t -> int

(** True inside a pool task (on a worker domain, or on the caller while it
    executes tasks of the batch it submitted). *)
val in_worker : unit -> bool

(** Run [f] flagged as pool work (nested {!Par.map} calls go sequential),
    restoring the previous flag after.  Used by the chunked work-stealing
    executor for its worker bodies. *)
val as_worker : (unit -> 'a) -> 'a

(** [parallel_map pool f xs] applies [f] to every element of [xs] using the
    pool, returning results in input order.  If one or more applications
    raise, the exception of the lowest-index element is re-raised after the
    whole batch has settled.  Raises [Invalid_argument] when called from
    inside a pool task. *)
val parallel_map : t -> ('a -> 'b) -> 'a list -> 'b list

(** [parallel_filter_map pool f xs]: as [parallel_map], keeping the [Some]
    results in input order. *)
val parallel_filter_map : t -> ('a -> 'b option) -> 'a list -> 'b list

(** Stop accepting work, wake the workers, and join them.  Idempotent.
    In-flight batches complete before the workers exit. *)
val shutdown : t -> unit

(** [with_pool n f] runs [f] over a fresh pool and shuts it down afterwards,
    whether [f] returns or raises. *)
val with_pool : int -> (t -> 'a) -> 'a
