module Wire = Pom_wire.Wire
module Frame = Pom_wire.Frame

type worker = {
  pid : int;
  to_w : out_channel;
  from_w : in_channel;
  mutable alive : bool;
}

type stats = { spawned : int; respawned : int; deaths : int; forfeited : int }

type t = {
  workers : worker array;
  mutable open_ : bool;
  (* respawn recipe: everything needed to rebuild a dead worker *)
  exe : string;
  args : string list;
  header : Frame.header;
  (* last broadcast payload per tag, in first-send order, replayed into a
     respawned worker so it rejoins the search mid-flight (the hello that
     bound the pool to its function/device is a broadcast) *)
  mutable broadcasts : (int * string) list;
  supervised : bool;
  mutable respawn_left : int;
  backoff_base_s : float;
  backoff_max_s : float;
  mutable backoff_streak : int;  (* consecutive failed respawns *)
  (* dead-but-unreaped children; reaped opportunistically and at shutdown *)
  mutable dead : worker list;
  mutable spawned : int;
  mutable respawned : int;
  mutable deaths : int;
  mutable forfeited : int;
}

let stats t =
  {
    spawned = t.spawned;
    respawned = t.respawned;
    deaths = t.deaths;
    forfeited = t.forfeited;
  }

(* The parent writes into pipes whose reader can die at any moment; a
   SIGPIPE would kill the whole compile, so writes must fail as
   [Sys_error EPIPE] instead and mark the worker dead. *)
let ignore_sigpipe =
  lazy
    (if Sys.os_type = "Unix" then
       Sys.set_signal Sys.sigpipe Sys.Signal_ignore)

let kill_worker w =
  if w.alive then begin
    w.alive <- false;
    (try close_out w.to_w with Sys_error _ -> ());
    (try close_in w.from_w with Sys_error _ -> ())
  end

(* Reaping must never block the parent on a wedged child: a worker that
   ignores its closed stdin (stuck in a loop, swapped out, masked
   signals) would park a blocking [waitpid] forever.  So shutdown
   escalates: SIGTERM everyone up front, poll with [WNOHANG] over a
   short grace window, then SIGKILL whoever is left and reap that — a
   KILLed process is guaranteed to become reapable promptly. *)
let signal_worker signum w =
  try Unix.kill w.pid signum with Unix.Unix_error _ -> ()

(* true when the child is reaped (or was never ours to reap) *)
let try_reap w =
  match Unix.waitpid [ Unix.WNOHANG ] w.pid with
  | 0, _ -> false
  | _ -> true
  | exception Unix.Unix_error _ -> true

let reap_blocking w =
  match Unix.waitpid [] w.pid with
  | _ -> ()
  | exception Unix.Unix_error _ -> ()

let reap_all ~grace_s workers =
  List.iter (signal_worker Sys.sigterm) workers;
  let deadline = Unix.gettimeofday () +. Float.max 0.0 grace_s in
  let pending = ref workers in
  let prune () = pending := List.filter (fun w -> not (try_reap w)) !pending in
  prune ();
  while !pending <> [] && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01;
    prune ()
  done;
  (* past the grace window: the stragglers are presumed wedged *)
  List.iter (signal_worker Sys.sigkill) !pending;
  List.iter reap_blocking !pending

(* a worker observed dead: close its pipes, count it, and park it for
   reaping (its pid must survive the slot being recycled by a respawn) *)
let worker_died t w =
  if w.alive then begin
    kill_worker w;
    t.deaths <- t.deaths + 1;
    t.dead <- w :: t.dead
  end

let prune_dead t = t.dead <- List.filter (fun w -> not (try_reap w)) t.dead

let spawn exe args =
  let in_read, in_write = Unix.pipe ~cloexec:false () in
  let out_read, out_write = Unix.pipe ~cloexec:false () in
  Unix.set_close_on_exec in_write;
  Unix.set_close_on_exec out_read;
  let pid =
    try
      Unix.create_process exe
        (Array.of_list (exe :: args))
        in_read out_write Unix.stderr
    with e ->
      Unix.close in_read; Unix.close in_write;
      Unix.close out_read; Unix.close out_write;
      raise e
  in
  Unix.close in_read;
  Unix.close out_write;
  let to_w = Unix.out_channel_of_descr in_write in
  let from_w = Unix.in_channel_of_descr out_read in
  set_binary_mode_out to_w true;
  set_binary_mode_in from_w true;
  { pid; to_w; from_w; alive = true }

let default_grace_s = 2.0

let shutdown ?(grace_s = default_grace_s) t =
  if t.open_ then begin
    t.open_ <- false;
    let live = Array.to_list t.workers in
    List.iter kill_worker live;
    reap_all ~grace_s (live @ t.dead);
    t.dead <- []
  end

let check_greeting ~header (h : Frame.header) =
  if h.Frame.kind <> header.Frame.kind then
    raise
      (Wire.Corrupt
         {
           what = "worker greeting";
           detail =
             Printf.sprintf "stream kind %S, expected %S" h.Frame.kind
               header.Frame.kind;
         });
  if h.Frame.version <> header.Frame.version then
    raise
      (Wire.Version_mismatch
         {
           what = "worker greeting";
           expected = header.Frame.version;
           got = h.Frame.version;
         })

let default_respawn ~jobs = 2 * jobs

let create ?respawn ?(backoff_base_s = 0.05) ?(backoff_max_s = 1.0) ~exe ~args
    ~header ~jobs () =
  Lazy.force ignore_sigpipe;
  let jobs = max 1 jobs in
  let respawn =
    match respawn with Some r -> max 0 r | None -> default_respawn ~jobs
  in
  let workers = ref [] in
  let t () =
    {
      workers = Array.of_list (List.rev !workers);
      open_ = true;
      exe;
      args;
      header;
      broadcasts = [];
      supervised = respawn > 0;
      respawn_left = respawn;
      backoff_base_s;
      backoff_max_s;
      backoff_streak = 0;
      dead = [];
      spawned = List.length !workers;
      respawned = 0;
      deaths = 0;
      forfeited = 0;
    }
  in
  try
    for _ = 1 to jobs do
      workers := spawn exe args :: !workers
    done;
    (* handshake: send our header, check each echo.  Done after all spawns
       so a slow exec does not serialize the fan-out. *)
    List.iter
      (fun w ->
        Frame.output_header w.to_w header;
        flush w.to_w)
      !workers;
    List.iter
      (fun w ->
        let h = Frame.input_header ~what:"worker greeting" w.from_w in
        check_greeting ~header h)
      !workers;
    t ()
  with e ->
    shutdown (t ());
    raise e

let alive t =
  Array.fold_left (fun n w -> if w.alive then n + 1 else n) 0 t.workers

(* Supervision: replace the dead worker in slot [wi] with a fresh process,
   under the pool's capped respawn budget and an exponential backoff that
   grows with consecutive failures.  The newcomer is handshaken and fed
   every remembered broadcast, so from the caller's side it is
   indistinguishable from the original.  Returns false when the budget is
   spent or the respawn itself failed (that attempt still consumed
   budget — a flapping executable cannot respawn-loop forever). *)
let try_respawn t wi =
  t.supervised && t.open_ && t.respawn_left > 0
  && begin
       t.respawn_left <- t.respawn_left - 1;
       let delay =
         Float.min t.backoff_max_s
           (t.backoff_base_s *. (2.0 ** float_of_int t.backoff_streak))
       in
       if delay > 0.0 then Unix.sleepf delay;
       match
         let w = spawn t.exe t.args in
         t.spawned <- t.spawned + 1;
         (w,
          ( Frame.output_header w.to_w t.header;
            flush w.to_w;
            check_greeting ~header:t.header
              (Frame.input_header ~what:"worker greeting" w.from_w);
            List.iter
              (fun (tag, payload) ->
                Frame.output_record w.to_w ~tag payload;
                flush w.to_w)
              t.broadcasts ))
       with
       | w, () ->
           t.workers.(wi) <- w;
           t.respawned <- t.respawned + 1;
           t.backoff_streak <- 0;
           prune_dead t;
           true
       | exception _ ->
           t.backoff_streak <- t.backoff_streak + 1;
           false
     end

let remember_broadcast t ~tag payload =
  let rec replace = function
    | [] -> [ (tag, payload) ]
    | (tg, _) :: rest when tg = tag -> (tag, payload) :: rest
    | kv :: rest -> kv :: replace rest
  in
  t.broadcasts <- replace t.broadcasts

let broadcast t ~tag payload =
  remember_broadcast t ~tag payload;
  Array.iteri
    (fun wi w ->
      if w.alive then
        try
          Frame.output_record w.to_w ~tag payload;
          flush w.to_w
        with Sys_error _ ->
          worker_died t w;
          (* the replayed broadcasts include this one, so a successful
             respawn needs no re-send *)
          ignore (try_respawn t wi))
    t.workers

exception Respawn_exhausted

let rpc t ~tag payloads =
  let items = Array.of_list payloads in
  let m = Array.length items in
  let results = Array.make m None in
  (* exactly-once re-dispatch: an in-flight item whose worker died is
     retried on the healed pool once; a second death forfeits it (a
     poison item must not grind through every worker) *)
  let redispatched = Array.make m false in
  let n = Array.length t.workers in
  let queues = Array.make n [] in
  Array.iteri (fun i _ -> queues.(i mod n) <- i :: queues.(i mod n)) items;
  let queues = Array.map List.rev queues in
  let outstanding = Array.make n (-1) in
  let forfeit _i = t.forfeited <- t.forfeited + 1 in
  (* the dead worker's undelivered work: the in-flight item (subject to
     the exactly-once rule) then its queued share *)
  let orphans wi =
    let pending = queues.(wi) in
    queues.(wi) <- [];
    let inflight = outstanding.(wi) in
    outstanding.(wi) <- -1;
    if inflight < 0 then pending
    else if redispatched.(inflight) then begin
      forfeit inflight;
      pending
    end
    else begin
      redispatched.(inflight) <- true;
      inflight :: pending
    end
  in
  let rec send_next wi =
    let w = t.workers.(wi) in
    match queues.(wi) with
    | [] -> ()
    | _ :: _ when not w.alive -> handle_death wi
    | i :: rest -> (
        queues.(wi) <- rest;
        match
          Frame.output_record w.to_w ~tag items.(i);
          flush w.to_w
        with
        | () -> outstanding.(wi) <- i
        | exception Sys_error _ ->
            (* never delivered: not a re-execution, exempt from the
               exactly-once bookkeeping *)
            queues.(wi) <- i :: rest;
            handle_death wi)
  and handle_death wi =
    worker_died t t.workers.(wi);
    let pending = orphans wi in
    if try_respawn t wi then begin
      queues.(wi) <- pending;
      send_next wi
    end
    else if not t.supervised then
      (* unsupervised pools keep the historical contract: a dead worker
         forfeits its share (speculative work only) — but the loss is
         now counted, not silent *)
      List.iter forfeit pending
    else begin
      let live =
        Array.to_list
          (Array.mapi (fun i w -> (i, w)) t.workers)
        |> List.filter_map (fun (i, w) -> if w.alive then Some i else None)
      in
      match live with
      | [] ->
          (* a supervised pool with no workers left and no budget to heal:
             typed failure, the caller degrades loudly (POM311) *)
          List.iter forfeit pending;
          raise Respawn_exhausted
      | live ->
          let nl = List.length live in
          List.iteri
            (fun k i ->
              let v = List.nth live (k mod nl) in
              queues.(v) <- queues.(v) @ [ i ])
            pending;
          List.iter
            (fun v -> if outstanding.(v) < 0 then send_next v)
            live
    end
  in
  let pom311 () =
    Pom_resilience.Error.Error
      (Pom_resilience.Error.make ~code:"POM311"
         ~context:[ Filename.basename t.exe ]
         (Printf.sprintf
            "worker pool lost all %d workers and the respawn budget is \
             exhausted (%d respawns used)"
            n t.respawned))
  in
  (match
     for wi = 0 to n - 1 do
       send_next wi
     done
   with
  | () -> ()
  | exception Respawn_exhausted -> raise (pom311 ()));
  let busy () = Array.exists (fun i -> i >= 0) outstanding in
  (try
     while busy () do
       for wi = 0 to n - 1 do
         if outstanding.(wi) >= 0 then begin
           let w = t.workers.(wi) in
           let i = outstanding.(wi) in
           match Frame.input_record ~what:"worker reply" w.from_w with
           | Some (rtag, payload) when rtag = tag ->
               results.(i) <- Some payload;
               outstanding.(wi) <- -1;
               send_next wi
           | Some _ ->
               (* unrecognized reply tag: item unanswered *)
               outstanding.(wi) <- -1;
               send_next wi
           | None -> handle_death wi
           | exception (Wire.Corrupt _ | Sys_error _ | End_of_file) ->
               handle_death wi
         end
       done
     done
   with Respawn_exhausted -> raise (pom311 ()));
  Array.to_list results

let serve ~header handle =
  set_binary_mode_in stdin true;
  set_binary_mode_out stdout true;
  (* workers inherit the parent's environment, so POM_FAULTS armed there
     arms the same deterministic sites here — how the shutdown tests wedge
     a worker on purpose *)
  Pom_resilience.Fault.configure_from_env ();
  let protocol_error detail =
    prerr_endline ("worker: " ^ detail);
    2
  in
  match Frame.input_header ~what:"worker stdin" stdin with
  | exception Wire.Corrupt { detail; _ } -> protocol_error detail
  | exception Wire.Version_mismatch { expected; got; _ } ->
      protocol_error
        (Printf.sprintf "framing version %d, expected %d (POM309)" got expected)
  | h when h.Frame.kind <> header.Frame.kind ->
      protocol_error
        (Printf.sprintf "stream kind %S, expected %S" h.Frame.kind
           header.Frame.kind)
  | h when h.Frame.version <> header.Frame.version ->
      protocol_error
        (Printf.sprintf "protocol version %d, expected %d (POM309)"
           h.Frame.version header.Frame.version)
  | _ -> (
      (* fault site for the shutdown regression test: a wedged worker that
         ignores both its closed stdin and SIGTERM, the failure mode that
         used to park the parent's blocking [waitpid] forever.  SIGTERM is
         ignored *before* the greeting goes out, so once the parent has
         completed the handshake the worker is provably immune to
         everything but SIGKILL. *)
      if Pom_resilience.Fault.poll "procs:serve-wedge" then begin
        Sys.set_signal Sys.sigterm Sys.Signal_ignore;
        (try
           Frame.output_header stdout header;
           flush stdout
         with Sys_error _ -> ());
        while true do
          Unix.sleepf 3600.0
        done
      end;
      match
        Frame.output_header stdout header;
        flush stdout
      with
      | exception Sys_error _ -> 0 (* parent already gone *)
      | () ->
          let rec loop () =
            match Frame.input_record ~what:"worker request" stdin with
            | None -> 0 (* clean EOF: parent closed our stdin *)
            | Some (tag, payload) -> (
                match handle ~tag payload with
                | None -> loop ()
                | Some (rtag, reply) -> (
                    match
                      Frame.output_record stdout ~tag:rtag reply;
                      flush stdout
                    with
                    | () -> loop ()
                    | exception Sys_error _ -> 0))
            | exception Wire.Corrupt { detail; _ } -> protocol_error detail
          in
          loop ())
