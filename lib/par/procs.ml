module Wire = Pom_wire.Wire
module Frame = Pom_wire.Frame

type worker = {
  pid : int;
  to_w : out_channel;
  from_w : in_channel;
  mutable alive : bool;
}

type t = { workers : worker array; mutable open_ : bool }

(* The parent writes into pipes whose reader can die at any moment; a
   SIGPIPE would kill the whole compile, so writes must fail as
   [Sys_error EPIPE] instead and mark the worker dead. *)
let ignore_sigpipe =
  lazy
    (if Sys.os_type = "Unix" then
       Sys.set_signal Sys.sigpipe Sys.Signal_ignore)

let kill_worker w =
  if w.alive then begin
    w.alive <- false;
    (try close_out w.to_w with Sys_error _ -> ());
    (try close_in w.from_w with Sys_error _ -> ())
  end

(* Reaping must never block the parent on a wedged child: a worker that
   ignores its closed stdin (stuck in a loop, swapped out, masked
   signals) would park a blocking [waitpid] forever.  So shutdown
   escalates: SIGTERM everyone up front, poll with [WNOHANG] over a
   short grace window, then SIGKILL whoever is left and reap that — a
   KILLed process is guaranteed to become reapable promptly. *)
let signal_worker signum w =
  try Unix.kill w.pid signum with Unix.Unix_error _ -> ()

(* true when the child is reaped (or was never ours to reap) *)
let try_reap w =
  match Unix.waitpid [ Unix.WNOHANG ] w.pid with
  | 0, _ -> false
  | _ -> true
  | exception Unix.Unix_error _ -> true

let reap_blocking w =
  match Unix.waitpid [] w.pid with
  | _ -> ()
  | exception Unix.Unix_error _ -> ()

let reap_all ~grace_s workers =
  Array.iter (signal_worker Sys.sigterm) workers;
  let deadline = Unix.gettimeofday () +. Float.max 0.0 grace_s in
  let pending = ref (Array.to_list workers) in
  let prune () = pending := List.filter (fun w -> not (try_reap w)) !pending in
  prune ();
  while !pending <> [] && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01;
    prune ()
  done;
  (* past the grace window: the stragglers are presumed wedged *)
  List.iter (signal_worker Sys.sigkill) !pending;
  List.iter reap_blocking !pending

let spawn exe args =
  let in_read, in_write = Unix.pipe ~cloexec:false () in
  let out_read, out_write = Unix.pipe ~cloexec:false () in
  Unix.set_close_on_exec in_write;
  Unix.set_close_on_exec out_read;
  let pid =
    try
      Unix.create_process exe
        (Array.of_list (exe :: args))
        in_read out_write Unix.stderr
    with e ->
      Unix.close in_read; Unix.close in_write;
      Unix.close out_read; Unix.close out_write;
      raise e
  in
  Unix.close in_read;
  Unix.close out_write;
  let to_w = Unix.out_channel_of_descr in_write in
  let from_w = Unix.in_channel_of_descr out_read in
  set_binary_mode_out to_w true;
  set_binary_mode_in from_w true;
  { pid; to_w; from_w; alive = true }

let default_grace_s = 2.0

let shutdown ?(grace_s = default_grace_s) t =
  if t.open_ then begin
    t.open_ <- false;
    Array.iter kill_worker t.workers;
    reap_all ~grace_s t.workers
  end

let create ~exe ~args ~header ~jobs =
  Lazy.force ignore_sigpipe;
  let jobs = max 1 jobs in
  let workers = ref [] in
  let t () = { workers = Array.of_list (List.rev !workers); open_ = true } in
  try
    for _ = 1 to jobs do
      workers := spawn exe args :: !workers
    done;
    (* handshake: send our header, check each echo.  Done after all spawns
       so a slow exec does not serialize the fan-out. *)
    List.iter
      (fun w ->
        Frame.output_header w.to_w header;
        flush w.to_w)
      !workers;
    List.iter
      (fun w ->
        let h = Frame.input_header ~what:"worker greeting" w.from_w in
        if h.Frame.kind <> header.Frame.kind then
          raise
            (Wire.Corrupt
               {
                 what = "worker greeting";
                 detail =
                   Printf.sprintf "stream kind %S, expected %S" h.Frame.kind
                     header.Frame.kind;
               });
        if h.Frame.version <> header.Frame.version then
          raise
            (Wire.Version_mismatch
               {
                 what = "worker greeting";
                 expected = header.Frame.version;
                 got = h.Frame.version;
               }))
      !workers;
    t ()
  with e ->
    shutdown (t ());
    raise e

let alive t =
  Array.fold_left (fun n w -> if w.alive then n + 1 else n) 0 t.workers

let broadcast t ~tag payload =
  Array.iter
    (fun w ->
      if w.alive then
        try
          Frame.output_record w.to_w ~tag payload;
          flush w.to_w
        with Sys_error _ -> kill_worker w)
    t.workers

let rpc t ~tag payloads =
  let items = Array.of_list payloads in
  let m = Array.length items in
  let results = Array.make m None in
  let n = Array.length t.workers in
  let queues = Array.make n [] in
  Array.iteri (fun i _ -> queues.(i mod n) <- i :: queues.(i mod n)) items;
  let queues = Array.map List.rev queues in
  let outstanding = Array.make n (-1) in
  let rec send_next wi =
    let w = t.workers.(wi) in
    match queues.(wi) with
    | [] -> ()
    | _ :: _ when not w.alive ->
        (* dead worker: its share is lost (speculative work only) *)
        queues.(wi) <- []
    | i :: rest -> (
        queues.(wi) <- rest;
        match
          Frame.output_record w.to_w ~tag items.(i);
          flush w.to_w
        with
        | () -> outstanding.(wi) <- i
        | exception Sys_error _ ->
            kill_worker w;
            send_next wi)
  in
  for wi = 0 to n - 1 do
    send_next wi
  done;
  let busy () = Array.exists (fun i -> i >= 0) outstanding in
  while busy () do
    for wi = 0 to n - 1 do
      if outstanding.(wi) >= 0 then begin
        let w = t.workers.(wi) in
        let i = outstanding.(wi) in
        (match Frame.input_record ~what:"worker reply" w.from_w with
        | Some (rtag, payload) when rtag = tag -> results.(i) <- Some payload
        | Some _ -> () (* unrecognized reply tag: item unanswered *)
        | None -> kill_worker w
        | exception (Wire.Corrupt _ | Sys_error _ | End_of_file) ->
            kill_worker w);
        outstanding.(wi) <- -1;
        send_next wi
      end
    done
  done;
  Array.to_list results

let serve ~header handle =
  set_binary_mode_in stdin true;
  set_binary_mode_out stdout true;
  (* workers inherit the parent's environment, so POM_FAULTS armed there
     arms the same deterministic sites here — how the shutdown tests wedge
     a worker on purpose *)
  Pom_resilience.Fault.configure_from_env ();
  let protocol_error detail =
    prerr_endline ("worker: " ^ detail);
    2
  in
  match Frame.input_header ~what:"worker stdin" stdin with
  | exception Wire.Corrupt { detail; _ } -> protocol_error detail
  | exception Wire.Version_mismatch { expected; got; _ } ->
      protocol_error
        (Printf.sprintf "framing version %d, expected %d (POM309)" got expected)
  | h when h.Frame.kind <> header.Frame.kind ->
      protocol_error
        (Printf.sprintf "stream kind %S, expected %S" h.Frame.kind
           header.Frame.kind)
  | h when h.Frame.version <> header.Frame.version ->
      protocol_error
        (Printf.sprintf "protocol version %d, expected %d (POM309)"
           h.Frame.version header.Frame.version)
  | _ -> (
      (* fault site for the shutdown regression test: a wedged worker that
         ignores both its closed stdin and SIGTERM, the failure mode that
         used to park the parent's blocking [waitpid] forever.  SIGTERM is
         ignored *before* the greeting goes out, so once the parent has
         completed the handshake the worker is provably immune to
         everything but SIGKILL. *)
      if Pom_resilience.Fault.poll "procs:serve-wedge" then begin
        Sys.set_signal Sys.sigterm Sys.Signal_ignore;
        (try
           Frame.output_header stdout header;
           flush stdout
         with Sys_error _ -> ());
        while true do
          Unix.sleepf 3600.0
        done
      end;
      match
        Frame.output_header stdout header;
        flush stdout
      with
      | exception Sys_error _ -> 0 (* parent already gone *)
      | () ->
          let rec loop () =
            match Frame.input_record ~what:"worker request" stdin with
            | None -> 0 (* clean EOF: parent closed our stdin *)
            | Some (tag, payload) -> (
                match handle ~tag payload with
                | None -> loop ()
                | Some (rtag, reply) -> (
                    match
                      Frame.output_record stdout ~tag:rtag reply;
                      flush stdout
                    with
                    | () -> loop ()
                    | exception Sys_error _ -> 0))
            | exception Wire.Corrupt { detail; _ } -> protocol_error detail
          in
          loop ())
