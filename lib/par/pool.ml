type task = unit -> unit

type t = {
  size : int;
  mutable workers : unit Domain.t list;
  queue : task Queue.t;
  lock : Mutex.t;
  wakeup : Condition.t; (* work arrived, or the pool is closing *)
  mutable closed : bool;
}

(* One flag per domain: set permanently on worker domains, and temporarily on
   the submitting domain while it executes tasks of its own batch. *)
let in_worker_key = Domain.DLS.new_key (fun () -> false)

let in_worker () = Domain.DLS.get in_worker_key

(* Run [f] flagged as pool work: nested {!Par.map} calls inside it go
   sequential.  The chunked executor marks its stealing workers with this —
   they are peers of pool workers, not submitters. *)
let as_worker f =
  let was = Domain.DLS.get in_worker_key in
  Domain.DLS.set in_worker_key true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set in_worker_key was) f

let rec worker_loop pool =
  Mutex.lock pool.lock;
  let rec next () =
    match Queue.take_opt pool.queue with
    | Some task -> Some task
    | None ->
        if pool.closed then None
        else begin
          Condition.wait pool.wakeup pool.lock;
          next ()
        end
  in
  let task = next () in
  Mutex.unlock pool.lock;
  match task with
  | None -> ()
  | Some task ->
      (* A task that raises must not tear the worker domain down: every
         batch task already captures its own failures into its result cell,
         so anything escaping here is a bug in the rendezvous bookkeeping —
         swallow it and keep the domain serving, because a silently shrunk
         pool deadlocks the next full-width batch. *)
      (try task () with _ -> ());
      worker_loop pool

let create n =
  let size = max 1 n in
  let pool =
    {
      size;
      workers = [];
      queue = Queue.create ();
      lock = Mutex.create ();
      wakeup = Condition.create ();
      closed = false;
    }
  in
  pool.workers <-
    List.init (size - 1) (fun _ ->
        Domain.spawn (fun () ->
            Domain.DLS.set in_worker_key true;
            worker_loop pool));
  pool

let size pool = pool.size

let shutdown pool =
  Mutex.lock pool.lock;
  let workers = pool.workers in
  pool.workers <- [];
  if not pool.closed then begin
    pool.closed <- true;
    Condition.broadcast pool.wakeup
  end;
  Mutex.unlock pool.lock;
  List.iter Domain.join workers

let with_pool n f =
  let pool = create n in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

type 'b cell = Pending | Value of 'b | Error of exn * Printexc.raw_backtrace

let parallel_map pool f xs =
  if in_worker () then
    invalid_arg "Pool.parallel_map: nested submission from inside a pool task";
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs when pool.size = 1 -> List.map f xs
  | xs ->
      let items = Array.of_list xs in
      let n = Array.length items in
      let results = Array.make n Pending in
      (* Per-batch rendezvous: tasks of this batch count down [remaining];
         the submitter waits on [settled] after helping drain the queue. *)
      let batch_lock = Mutex.create () in
      let settled = Condition.create () in
      let remaining = ref n in
      let run_task i () =
        let was_worker = Domain.DLS.get in_worker_key in
        Domain.DLS.set in_worker_key true;
        (results.(i) <-
          (match
             (* cooperative deadline check on entry, and a fault-injection
                site covering the task body *)
             Pom_resilience.Budget.check "pool:task";
             Pom_resilience.Fault.point "pool:task";
             f items.(i)
           with
          | v -> Value v
          | exception Pom_resilience.Fault.Killed site ->
              (* the executing domain "died" mid-task: the task fails with
                 a typed error, the pool keeps its width *)
              Error
                ( Pom_resilience.Error.Error
                    (Pom_resilience.Error.make ~code:"POM305"
                       ~context:[ site ]
                       "pool worker died executing this task"),
                  Printexc.get_raw_backtrace () )
          | exception e -> Error (e, Printexc.get_raw_backtrace ())));
        Domain.DLS.set in_worker_key was_worker;
        Mutex.lock batch_lock;
        decr remaining;
        if !remaining = 0 then Condition.signal settled;
        Mutex.unlock batch_lock
      in
      Mutex.lock pool.lock;
      for i = 0 to n - 1 do
        Queue.add (run_task i) pool.queue
      done;
      Condition.broadcast pool.wakeup;
      Mutex.unlock pool.lock;
      (* The submitter works too: it drains whatever is still queued (tasks
         of this batch, or of a concurrent one — each counts down its own
         batch), then blocks until its own batch settles. *)
      let rec help () =
        Mutex.lock pool.lock;
        let task = Queue.take_opt pool.queue in
        Mutex.unlock pool.lock;
        match task with
        | Some task ->
            task ();
            help ()
        | None -> ()
      in
      help ();
      Mutex.lock batch_lock;
      while !remaining > 0 do
        Condition.wait settled batch_lock
      done;
      Mutex.unlock batch_lock;
      Array.to_list
        (Array.map
           (function
             | Value v -> v
             | Error (e, bt) -> Printexc.raise_with_backtrace e bt
             | Pending -> assert false)
           results)

let parallel_filter_map pool f xs =
  List.filter_map Fun.id (parallel_map pool f xs)
