(** A pool of worker processes speaking framed wire records over pipes.

    The parent spawns N copies of an executable (normally
    [pom_compile --worker]), exchanges {!Pom_wire.Frame} headers with
    each (both directions, so a version skew is caught before any work
    is dealt), and then drives request/reply record traffic.  Flow
    control is one outstanding request per worker: the parent deals the
    next payload only after reading the previous reply, so neither side
    can fill a pipe while the other is blocked writing — deadlock-free
    without select loops or threads.

    Failure model — supervised (the default): a worker that dies,
    writes garbage, or fails its CRC is detected, counted, and
    respawned under a capped per-pool budget with exponential backoff.
    The replacement is handshaken and replayed every prior broadcast,
    and the dead worker's undelivered items are re-dispatched
    {e exactly once} — an item whose second worker also dies is
    forfeited, so a poison item cannot grind through the whole pool.
    Only when the budget is exhausted {e and} no live worker remains
    does {!rpc} raise a typed [POM311]
    ({!Pom_resilience.Error.Error}); with survivors, orphaned work is
    redistributed and the call completes.

    Unsupervised ([respawn:0]): the historical contract — a dead
    worker's items come back as [None] — but the loss is counted in
    {!stats}, never silent.  The pool is used for speculative cache
    warming, so lost work degrades throughput, never correctness. *)

type t

(** Lifetime health counters of a pool.  [spawned] counts every process
    ever started (initial workers plus respawns), [respawned] the
    successful replacements, [deaths] the workers observed dead, and
    [forfeited] the items lost for good (dead unsupervised worker's
    share, a re-dispatched item's second death, or budget exhaustion). *)
type stats = { spawned : int; respawned : int; deaths : int; forfeited : int }

val stats : t -> stats

(** [create ~exe ~args ~header ~jobs] spawns [jobs] workers running
    [exe args] with piped stdin/stdout (stderr inherited), writes
    [header] to each and checks the header each sends back.  Raises
    [Unix.Unix_error] when the executable cannot be spawned and
    {!Pom_wire.Wire.Corrupt}/{!Pom_wire.Wire.Version_mismatch} when a
    worker's greeting is wrong (the pool is torn down first).

    [respawn] caps the pool's lifetime respawn budget (default
    [2 * jobs]); [0] disables supervision entirely.  A failed respawn
    attempt (spawn error, bad greeting) also consumes budget, and each
    consecutive failure doubles the pre-respawn backoff from
    [backoff_base_s] (default 0.05 s) up to [backoff_max_s] (default
    1 s) — a flapping executable cannot respawn-loop at full speed. *)
val create :
  ?respawn:int ->
  ?backoff_base_s:float ->
  ?backoff_max_s:float ->
  exe:string ->
  args:string list ->
  header:Pom_wire.Frame.header ->
  jobs:int ->
  unit ->
  t

(** Number of live workers. *)
val alive : t -> int

(** Send one fire-and-forget record to every live worker (e.g. a shared
    problem description all later requests refer to).  The latest
    payload per tag is remembered and replayed, in first-send order,
    into every worker respawned later — so a replacement joins with the
    same shared state its predecessor had. *)
val broadcast : t -> tag:int -> string -> unit

(** [rpc t ~tag payloads] deals the payloads round-robin over the live
    workers, one in flight per worker, and returns each item's reply
    payload in input order — [None] for items lost to a dead worker
    (after the supervised re-dispatch described above) or answered with
    a different tag.  Raises [POM311] only when supervision is enabled,
    the respawn budget is spent, and no live worker remains. *)
val rpc : t -> tag:int -> string list -> string option list

(** Close every worker's stdin (the workers see EOF and exit), send
    SIGTERM, and reap without ever blocking on a wedged child: workers
    still unreaped after polling [waitpid WNOHANG] over the [grace_s]
    (default 2 s) grace window are SIGKILLed and then reaped — a killed
    process is guaranteed to become reapable.  Also reaps workers that
    died earlier and were replaced.  Idempotent; always returns within
    roughly the grace window. *)
val shutdown : ?grace_s:float -> t -> unit

(** Worker side: read the parent's header from stdin (checking it
    matches [header]), answer with [header], then serve requests with
    [handle ~tag payload] until EOF.  A [Some (tag', reply)] result is
    written back; [None] sends nothing (fire-and-forget requests).
    Returns the process exit code: 0 on clean EOF or a vanished parent,
    2 on a protocol error. *)
val serve :
  header:Pom_wire.Frame.header ->
  (tag:int -> string -> (int * string) option) ->
  int
