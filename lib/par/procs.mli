(** A pool of worker processes speaking framed wire records over pipes.

    The parent spawns N copies of an executable (normally
    [pom_compile --worker]), exchanges {!Pom_wire.Frame} headers with
    each (both directions, so a version skew is caught before any work
    is dealt), and then drives request/reply record traffic.  Flow
    control is one outstanding request per worker: the parent deals the
    next payload only after reading the previous reply, so neither side
    can fill a pipe while the other is blocked writing — deadlock-free
    without select loops or threads.

    Failure model: a worker that dies, writes garbage, or fails its CRC
    is marked dead and its undelivered items come back as [None].  The
    pool is used for speculative cache warming, so lost work degrades
    throughput, never correctness. *)

type t

(** [create ~exe ~args ~header ~jobs] spawns [jobs] workers running
    [exe args] with piped stdin/stdout (stderr inherited), writes
    [header] to each and checks the header each sends back.  Raises
    [Unix.Unix_error] when the executable cannot be spawned and
    {!Pom_wire.Wire.Corrupt}/{!Pom_wire.Wire.Version_mismatch} when a
    worker's greeting is wrong (the pool is torn down first). *)
val create :
  exe:string -> args:string list -> header:Pom_wire.Frame.header -> jobs:int -> t

(** Number of live workers. *)
val alive : t -> int

(** Send one fire-and-forget record to every live worker (e.g. a shared
    problem description all later requests refer to). *)
val broadcast : t -> tag:int -> string -> unit

(** [rpc t ~tag payloads] deals the payloads round-robin over the live
    workers, one in flight per worker, and returns each item's reply
    payload in input order — [None] for items lost to a dead worker or
    answered with a different tag. *)
val rpc : t -> tag:int -> string list -> string option list

(** Close every worker's stdin (the workers see EOF and exit), send
    SIGTERM, and reap without ever blocking on a wedged child: workers
    still unreaped after polling [waitpid WNOHANG] over the [grace_s]
    (default 2 s) grace window are SIGKILLed and then reaped — a killed
    process is guaranteed to become reapable.  Idempotent; always
    returns within roughly the grace window. *)
val shutdown : ?grace_s:float -> t -> unit

(** Worker side: read the parent's header from stdin (checking it
    matches [header]), answer with [header], then serve requests with
    [handle ~tag payload] until EOF.  A [Some (tag', reply)] result is
    written back; [None] sends nothing (fire-and-forget requests).
    Returns the process exit code: 0 on clean EOF or a vanished parent,
    2 on a protocol error. *)
val serve :
  header:Pom_wire.Frame.header ->
  (tag:int -> string -> (int * string) option) ->
  int
