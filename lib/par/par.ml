module Pool = Pool

let default_jobs = max 1 (Domain.recommended_domain_count ())

let budget = Atomic.make default_jobs

let jobs () = Atomic.get budget

let set_jobs n = Atomic.set budget (max 1 n)

let with_jobs n f =
  let saved = jobs () in
  set_jobs n;
  Fun.protect ~finally:(fun () -> set_jobs saved) f

(* The shared pool, sized to the budget in force when it is first needed.
   A budget change tears the old pool down on next use rather than eagerly:
   [set_jobs] may be called while another batch is in flight elsewhere. *)
let shared : (int * Pool.t) option ref = ref None

let shared_lock = Mutex.create ()

let () =
  at_exit (fun () ->
      Mutex.lock shared_lock;
      let p = !shared in
      shared := None;
      Mutex.unlock shared_lock;
      match p with Some (_, pool) -> Pool.shutdown pool | None -> ())

let pool () =
  let n = jobs () in
  Mutex.lock shared_lock;
  let p =
    match !shared with
    | Some (size, pool) when size = n -> pool
    | previous ->
        (match previous with
        | Some (_, stale) -> Pool.shutdown stale
        | None -> ());
        let pool = Pool.create n in
        shared := Some (n, pool);
        pool
  in
  Mutex.unlock shared_lock;
  p

let map f xs =
  if jobs () <= 1 || Pool.in_worker () then List.map f xs
  else Pool.parallel_map (pool ()) f xs

let filter_map f xs =
  if jobs () <= 1 || Pool.in_worker () then List.filter_map f xs
  else Pool.parallel_filter_map (pool ()) f xs
