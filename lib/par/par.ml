module Pool = Pool
module Procs = Procs
module Deque = Deque
module Chunks = Chunks

type mode = Domains | Procs

let mode_state = Atomic.make Domains
let mode () = Atomic.get mode_state
let set_mode m = Atomic.set mode_state m

let with_mode m f =
  let saved = mode () in
  set_mode m;
  Fun.protect ~finally:(fun () -> set_mode saved) f

let mode_to_string = function Domains -> "domains" | Procs -> "procs"

let mode_of_string = function
  | "domains" -> Ok Domains
  | "procs" -> Ok Procs
  | s -> Error (Printf.sprintf "unknown jobs mode %S (domains|procs)" s)

let default_jobs = Par_conf.default_jobs

let jobs = Par_conf.jobs

let set_jobs = Par_conf.set_jobs

let with_jobs = Par_conf.with_jobs

let default_chunk = Par_conf.default_chunk

let chunk = Par_conf.chunk

let set_chunk = Par_conf.set_chunk

let with_chunk = Par_conf.with_chunk

(* The shared pool, sized to the budget in force when it is first needed.
   A budget change tears the old pool down on next use rather than eagerly:
   [set_jobs] may be called while another batch is in flight elsewhere. *)
let shared : (int * Pool.t) option ref = ref None

let shared_lock = Mutex.create ()

let () =
  at_exit (fun () ->
      Mutex.lock shared_lock;
      let p = !shared in
      shared := None;
      Mutex.unlock shared_lock;
      match p with Some (_, pool) -> Pool.shutdown pool | None -> ())

let pool () =
  let n = jobs () in
  Mutex.lock shared_lock;
  let p =
    match !shared with
    | Some (size, pool) when size = n -> pool
    | previous ->
        (match previous with
        | Some (_, stale) -> Pool.shutdown stale
        | None -> ());
        let pool = Pool.create n in
        shared := Some (n, pool);
        pool
  in
  Mutex.unlock shared_lock;
  p

(* In [Procs] mode domain-level fan-out is off: parallelism comes from
   worker processes driven explicitly (e.g. {!Pom_dse}'s work pool), and
   the wrappers fall back to their sequential identities. *)
let sequential () = jobs () <= 1 || mode () = Procs || Pool.in_worker ()

let map f xs =
  if sequential () then List.map f xs else Pool.parallel_map (pool ()) f xs

let filter_map f xs =
  if sequential () then List.filter_map f xs
  else Pool.parallel_filter_map (pool ()) f xs
