(** Process-wide parallel-execution configuration.

    The compiler's hot layers (DSE candidate evaluation, dependence analysis,
    bounds verification) call {!map}/{!filter_map} instead of [List.map]:
    with [jobs () <= 1], or from inside a pool task (nested parallelism),
    these are exactly [List.map]/[List.filter_map] — same order, same
    exceptions, zero overhead — so [--jobs 1] reproduces the sequential
    compiler bit-for-bit.  With [jobs () > 1] they run on a lazily-created
    shared {!Pool.t}, preserving input order and exception behaviour. *)

module Pool = Pool
module Procs = Procs
module Deque = Deque
module Chunks = Chunks

(** Where parallel work runs: [Domains] (the default) fans
    {!map}/{!filter_map} out over the shared domain pool; [Procs] turns
    those wrappers sequential and leaves parallelism to explicitly-driven
    worker processes ({!Procs}, [pom_compile --worker]), which are immune
    to domain-overhead pathologies and one step from distribution. *)
type mode = Domains | Procs

val mode : unit -> mode
val set_mode : mode -> unit

(** Run [f] under [m], restoring the previous mode afterwards. *)
val with_mode : mode -> (unit -> 'a) -> 'a

val mode_to_string : mode -> string
val mode_of_string : string -> (mode, string) result

(** What [Domain.recommended_domain_count ()] reported at startup; the
    initial value of [jobs ()]. *)
val default_jobs : int

(** Current worker budget for the convenience wrappers. *)
val jobs : unit -> int

(** [set_jobs n] clamps [n] to at least 1 and makes it the budget for
    subsequent {!map}/{!filter_map}/{!pool} calls.  Pools of other sizes are
    torn down lazily on next use. *)
val set_jobs : int -> unit

(** [with_jobs n f] runs [f] with the budget set to [n], restoring the
    previous budget afterwards (also on exceptions). *)
val with_jobs : int -> (unit -> 'a) -> 'a

(** Default target granularity of chunked work units (--chunk). *)
val default_chunk : int

(** Current chunk-size target for {!Chunks.run}. *)
val chunk : unit -> int

(** [set_chunk n] clamps [n] to at least 1 and makes it the target chunk
    size for subsequent chunked runs. *)
val set_chunk : int -> unit

(** [with_chunk n f] runs [f] under chunk size [n], restoring after. *)
val with_chunk : int -> (unit -> 'a) -> 'a

(** The shared pool at the current budget, created (or resized) on demand.
    Do not [Pool.shutdown] it; it is reclaimed at process exit. *)
val pool : unit -> Pool.t

(** Order-preserving parallel map over the shared pool; sequential when the
    budget is 1 or when already inside a pool task. *)
val map : ('a -> 'b) -> 'a list -> 'b list

(** As {!map} for [List.filter_map]. *)
val filter_map : ('a -> 'b option) -> 'a list -> 'b list
