(* A mutex-protected double-ended work queue: the owner treats the bottom
   as a stack (LIFO — the chunk it just deposited is the one with warm
   locality), thieves take from the top (FIFO — the oldest, coarsest work
   unit, which is the one worth splitting).  A plain circular buffer under
   one lock is deliberately boring: chunks are coarse by construction, so
   the deque is touched a few hundred times per search, far below where a
   lock-free Chase–Lev deque would earn its subtlety. *)

type 'a t = {
  mutable buf : 'a option array;
  mutable top : int;  (* index of the oldest element (steal side) *)
  mutable size : int;
  lock : Mutex.t;
}

let create () =
  { buf = Array.make 8 None; top = 0; size = 0; lock = Mutex.create () }

let grow d =
  let n = Array.length d.buf in
  let buf = Array.make (2 * n) None in
  for i = 0 to d.size - 1 do
    buf.(i) <- d.buf.((d.top + i) mod n)
  done;
  d.buf <- buf;
  d.top <- 0

let push d x =
  Mutex.lock d.lock;
  if d.size = Array.length d.buf then grow d;
  d.buf.((d.top + d.size) mod Array.length d.buf) <- Some x;
  d.size <- d.size + 1;
  Mutex.unlock d.lock

let pop d =
  Mutex.lock d.lock;
  let r =
    if d.size = 0 then None
    else begin
      let i = (d.top + d.size - 1) mod Array.length d.buf in
      let x = d.buf.(i) in
      d.buf.(i) <- None;
      d.size <- d.size - 1;
      x
    end
  in
  Mutex.unlock d.lock;
  r

let steal d =
  Mutex.lock d.lock;
  let r =
    if d.size = 0 then None
    else begin
      let x = d.buf.(d.top) in
      d.buf.(d.top) <- None;
      d.top <- (d.top + 1) mod Array.length d.buf;
      d.size <- d.size - 1;
      x
    end
  in
  Mutex.unlock d.lock;
  r

let length d =
  Mutex.lock d.lock;
  let n = d.size in
  Mutex.unlock d.lock;
  n

let is_empty d = length d = 0
