(* The chunked work-stealing executor.

   Callers (Stage2's speculative warm, the ScaleHLS ladder prefetch) submit
   *chunks* — contiguous runs of candidates sharing a schedule skeleton —
   instead of one task per candidate.  Each worker owns a {!Deque}: it pops
   its own chunks LIFO and processes them whole; only an idle worker
   steals, taking the *oldest* (coarsest) chunk from a victim FIFO and
   splitting it in half — one half processed immediately, the other pushed
   onto the thief's own deque where it is again stealable.  Granularity is
   therefore self-balancing: with balanced load nothing is ever split and
   per-chunk overhead is all there is; under imbalance chunks fission down
   to single candidates exactly where the idleness is.

   Determinism: the item body [f] must be commutative in its effects (the
   memo's claim discipline makes concurrent warming commutative), because
   the steal interleaving is scheduler-dependent.  The executor itself
   promises only that every item runs exactly once and that the
   lowest-index exception is re-raised after the run — the same contract as
   {!Pool.parallel_map}.  The [par:steal-miss] fault site deterministically
   forces steal attempts to fail (the test harness uses it to prove design
   identity under adversarial interleavings); [par:chunk] is the
   deadline/fault hook each chunk passes through, like [pool:task]. *)

type stats = {
  jobs : int;
  chunk_size : int;
  chunks : int;  (* work units after initial re-chunking *)
  items : int;
  steals : int;
  splits : int;
  forfeited : int;  (* items lost to dead workers, never evaluated *)
  respawns : int;  (* worker processes respawned by supervision *)
  worker_items : int array;  (* items processed per worker *)
}

let zero_stats ~jobs ~chunk_size =
  {
    jobs;
    chunk_size;
    chunks = 0;
    items = 0;
    steals = 0;
    splits = 0;
    forfeited = 0;
    respawns = 0;
    worker_items = Array.make (max 1 jobs) 0;
  }

(* Occupancy: mean over workers of (items processed / busiest worker's
   items) — 1.0 is a perfectly even spread, 1/jobs is one worker doing
   everything.  Meaningless (1.0) when nothing ran. *)
let occupancy s =
  let busiest = Array.fold_left max 0 s.worker_items in
  if busiest = 0 then 1.0
  else
    let sum = Array.fold_left ( + ) 0 s.worker_items in
    float_of_int sum /. (float_of_int busiest *. float_of_int s.jobs)

let merge a b =
  {
    jobs = max a.jobs b.jobs;
    chunk_size = max a.chunk_size b.chunk_size;
    chunks = a.chunks + b.chunks;
    items = a.items + b.items;
    steals = a.steals + b.steals;
    splits = a.splits + b.splits;
    forfeited = a.forfeited + b.forfeited;
    respawns = a.respawns + b.respawns;
    worker_items =
      (let n = max (Array.length a.worker_items) (Array.length b.worker_items) in
       Array.init n (fun i ->
           let get w = if i < Array.length w then w.(i) else 0 in
           get a.worker_items + get b.worker_items));
  }

let pp ppf s =
  Format.fprintf ppf
    "%d chunks (size %d) / %d items on %d workers: %d steals, %d splits, \
     occupancy %.2f"
    s.chunks s.chunk_size s.items s.jobs s.steals s.splits (occupancy s);
  (* health counters only when something actually went wrong: the happy
     path's line stays stable for log-scraping tests *)
  if s.forfeited > 0 || s.respawns > 0 then
    Format.fprintf ppf ", %d forfeited, %d respawns" s.forfeited s.respawns

(* One work unit: a slice of the caller's item array.  [start] is the
   global item index of [items.(off)] — exception ordering and the
   per-worker accounting key off it. *)
type 'a unit_ = { items : 'a array; off : int; len : int; start : int }

let chunk_site = "par:chunk"
let steal_site = "par:steal-miss"

type 'a ctx = {
  deques : 'a unit_ Deque.t array;
  remaining : int Atomic.t;
  c_steals : int Atomic.t;
  c_splits : int Atomic.t;
  per_worker : int array;
  error : (int * exn * Printexc.raw_backtrace) option ref;
  error_lock : Mutex.t;
  body : int -> 'a -> unit;
}

let record_error ctx idx e bt =
  Mutex.lock ctx.error_lock;
  (match !(ctx.error) with
  | Some (i, _, _) when i <= idx -> ()
  | _ -> ctx.error := Some (idx, e, bt));
  Mutex.unlock ctx.error_lock

let process ctx w u =
  (match
     Pom_resilience.Budget.check chunk_site;
     Pom_resilience.Fault.point chunk_site
   with
  | () ->
      for i = 0 to u.len - 1 do
        let idx = u.start + i in
        (try ctx.body idx u.items.(u.off + i)
         with e -> record_error ctx idx e (Printexc.get_raw_backtrace ()));
        ctx.per_worker.(w) <- ctx.per_worker.(w) + 1;
        Atomic.decr ctx.remaining
      done
  | exception e ->
      (* a budget/fault hit at the chunk boundary fails the whole chunk:
         charge its items as settled so the run terminates, and let the
         lowest-index item carry the exception *)
      record_error ctx u.start e (Printexc.get_raw_backtrace ());
      for _ = 1 to u.len do
        Atomic.decr ctx.remaining
      done;
      ctx.per_worker.(w) <- ctx.per_worker.(w) + u.len)

let split_unit u =
  let keep = (u.len + 1) / 2 in
  ( { u with len = keep },
    { u with off = u.off + keep; len = u.len - keep; start = u.start + keep } )

let try_steal ctx w =
  let jobs = Array.length ctx.deques in
  let rec scan i =
    if i >= jobs then None
    else
      let v = (w + i) mod jobs in
      (* the deterministic interleaving fault: an armed [steal-miss] makes
         this attempt fail as if the thief lost the race *)
      if Pom_resilience.Fault.poll steal_site then scan (i + 1)
      else
        match Deque.steal ctx.deques.(v) with
        | Some u ->
            Atomic.incr ctx.c_steals;
            if u.len > 1 then begin
              Atomic.incr ctx.c_splits;
              let mine, back = split_unit u in
              Deque.push ctx.deques.(w) back;
              Some mine
            end
            else Some u
        | None -> scan (i + 1)
  in
  scan 1

let rec worker_loop ctx w =
  match Deque.pop ctx.deques.(w) with
  | Some u ->
      process ctx w u;
      worker_loop ctx w
  | None ->
      if Atomic.get ctx.remaining > 0 then begin
        (match try_steal ctx w with
        | Some u -> process ctx w u
        | None ->
            (* every deque is empty but items are still in flight: their
               owner may split work back into view, so yield briefly and
               rescan rather than spinning a core *)
            Unix.sleepf 0.0002);
        worker_loop ctx w
      end

(* Re-chunk the caller's groups to at most [chunk_size] items each,
   preserving item order; global indices number items across all groups in
   submission order. *)
let units_of ~chunk_size groups =
  let units = ref [] and total = ref 0 in
  List.iter
    (fun items ->
      let n = Array.length items in
      let off = ref 0 in
      while !off < n do
        let len = min chunk_size (n - !off) in
        units :=
          { items; off = !off; len; start = !total + !off } :: !units;
        off := !off + len
      done;
      total := !total + n)
    groups;
  (List.rev !units, !total)

let run ?(jobs = Par_conf.jobs ()) ?(chunk = Par_conf.chunk ()) ~f groups =
  let jobs = max 1 jobs and chunk_size = max 1 chunk in
  let units, total = units_of ~chunk_size groups in
  if total = 0 then zero_stats ~jobs ~chunk_size
  else begin
    let jobs = if Pool.in_worker () then 1 else jobs in
    let ctx =
      {
        deques = Array.init jobs (fun _ -> Deque.create ());
        remaining = Atomic.make total;
        c_steals = Atomic.make 0;
        c_splits = Atomic.make 0;
        per_worker = Array.make jobs 0;
        error = ref None;
        error_lock = Mutex.create ();
        body = f;
      }
    in
    (* initial deal: round-robin whole chunks across the deques *)
    List.iteri (fun i u -> Deque.push ctx.deques.(i mod jobs) u) units;
    let workers =
      List.init (jobs - 1) (fun i ->
          Domain.spawn (fun () ->
              Pool.as_worker (fun () -> worker_loop ctx (i + 1))))
    in
    Pool.as_worker (fun () -> worker_loop ctx 0);
    List.iter Domain.join workers;
    (match !(ctx.error) with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    {
      jobs;
      chunk_size;
      chunks = List.length units;
      items = total;
      steals = Atomic.get ctx.c_steals;
      splits = Atomic.get ctx.c_splits;
      (* in-process domains cannot die independently; these counters are
         fed by the process-sharded path (Procs supervision) *)
      forfeited = 0;
      respawns = 0;
      worker_items = ctx.per_worker;
    }
  end
