(* pom_compile: compile a built-in workload through a chosen framework and
   print the virtual synthesis report (and optionally the HLS C). *)

open Cmdliner

let workloads () =
  List.map
    (fun (n, f) -> (n, fun size -> f size))
    Pom.Workloads.Polybench.by_name
  @ List.map (fun (n, f) -> (n, fun size -> f size)) Pom.Workloads.Image.by_name
  @ List.map
      (fun (n, f) -> (n, fun _ -> f ()))
      Pom.Workloads.Dnn.by_name

(* --schedule "pipeline s k 1" etc.: whitespace-separated primitive syntax
   mirroring Table II, applied to the workload before compiling.  Lets the
   analyzer be demonstrated on directives no built-in workload ships. *)
let directive_of_string s =
  let int_of what v =
    match int_of_string_opt v with
    | Some i -> i
    | None -> failwith (Printf.sprintf "%s expects an integer, got %s" what v)
  in
  match String.split_on_char ' ' (String.trim s) |> List.filter (( <> ) "") with
  | [ "interchange"; c; d1; d2 ] -> Pom.Dsl.Schedule.interchange c d1 d2
  | [ "split"; c; d; f; o; i ] ->
      Pom.Dsl.Schedule.split c d (int_of "split" f) o i
  | [ "reverse"; c; d; nd ] -> Pom.Dsl.Schedule.reverse c d nd
  | [ "pipeline"; c; d; ii ] -> Pom.Dsl.Schedule.pipeline c d (int_of "pipeline" ii)
  | [ "unroll"; c; d; f ] -> Pom.Dsl.Schedule.unroll c d (int_of "unroll" f)
  | "partition" :: a :: kind :: factors when factors <> [] ->
      let kind =
        match kind with
        | "cyclic" -> Pom.Dsl.Schedule.Cyclic
        | "block" -> Pom.Dsl.Schedule.Block
        | "complete" -> Pom.Dsl.Schedule.Complete
        | k -> failwith ("unknown partition kind " ^ k)
      in
      Pom.Dsl.Schedule.partition a (List.map (int_of "partition") factors) kind
  | _ ->
      failwith
        (Printf.sprintf
           "cannot parse directive %S (try e.g. \"pipeline s k 1\", \"unroll \
            s j 4\", \"split s k 8 ko ki\", \"interchange s i j\", \"reverse \
            s k kr\", \"partition A cyclic 4 4\")"
           s)

(* POM307: print the offending source line with a caret under the column,
   compiler-style, so C front-end errors are actionable. *)
let report_parse_error path ~line ~col ~token message =
  Printf.eprintf "%s:%d:%d: error [POM307]: %s (at %s)\n" path line col
    message token;
  (try
     let ic = open_in path in
     Fun.protect
       ~finally:(fun () -> close_in_noerr ic)
       (fun () ->
         let src = ref "" in
         for _ = 1 to line do
           src := input_line ic
         done;
         Printf.eprintf "  %s\n  %s^\n" !src (String.make (col - 1) ' '))
   with _ -> ());
  exit 1

(* Usage-error contract: a nonsensical numeric option is rejected up
   front with exit code 1, not silently clamped or passed through to
   hang a worker pool or divide by zero deep in a pass. *)
let require_positive_int name v =
  if v <= 0 then begin
    Printf.eprintf "error: %s must be a positive integer (got %d)\n" name v;
    exit 1
  end

let require_positive_float name v =
  if not (v > 0.0) then begin
    Printf.eprintf "error: %s must be positive (got %g)\n" name v;
    exit 1
  end

let pp_served ppf (r : Pom_server.Protocol.response) =
  match r.Pom_server.Protocol.served with
  | Pom_server.Protocol.Cached ->
      Format.fprintf ppf "cached (server wall %.3f s)"
        r.Pom_server.Protocol.wall_s
  | Pom_server.Protocol.Computed ->
      let m = r.Pom_server.Protocol.memo in
      Format.fprintf ppf
        "computed (server wall %.3f s; memo hits: schedule %d/%d, report \
         %d/%d, plan %d/%d)"
        r.Pom_server.Protocol.wall_s m.Pom_server.Protocol.schedule_hits
        (m.Pom_server.Protocol.schedule_hits
        + m.Pom_server.Protocol.schedule_misses)
        m.Pom_server.Protocol.report_hits
        (m.Pom_server.Protocol.report_hits
        + m.Pom_server.Protocol.report_misses)
        m.Pom_server.Protocol.plan_hits
        (m.Pom_server.Protocol.plan_hits + m.Pom_server.Protocol.plan_misses)

(* The one printer both the remote response and the local fallback flow
   through, so a design compiled either way prints character-identical
   report/speedup/tiles/C lines — only the [served:] provenance (and the
   trace, which carries the fallback note) may differ. *)
let print_remote_result ~workload ~size ~framework ~served ~trace ~emit_c
    (r : Pom_server.Protocol.result) =
  Format.printf "workload:    %s (size %d)@." workload size;
  Format.printf "framework:   %s@." framework;
  Format.printf "served:      %s@." served;
  Format.printf "report:      %a@." Pom.Hls.Report.pp
    r.Pom_server.Protocol.report;
  Format.printf "speedup:     %.1fx over unoptimized (%d cycles)@."
    r.Pom_server.Protocol.speedup r.Pom_server.Protocol.baseline_latency;
  if r.Pom_server.Protocol.dse_time_s > 0.0 then
    Format.printf "DSE time:    %.2f s@." r.Pom_server.Protocol.dse_time_s;
  List.iter
    (fun (name, v) ->
      Format.printf "tiles %-10s [%s]@." name
        (String.concat ", " (List.map string_of_int v)))
    r.Pom_server.Protocol.tile_vectors;
  if trace then
    List.iter (Format.printf "trace:       %s@.") r.Pom_server.Protocol.trace;
  if emit_c then begin
    print_newline ();
    print_string r.Pom_server.Protocol.hls_c
  end;
  if r.Pom_server.Protocol.legality_violations > 0 then begin
    Format.eprintf
      "legality:    %d reversed dependences — the schedule is illegal@."
      r.Pom_server.Protocol.legality_violations;
    2
  end
  else 0

(* --connect: ship the scheduled function to a --serve daemon and print
   the wire-returned artifact in the local report shape.  Transport
   failures are retried under the --retries/--retry-backoff policy; when
   the retries are spent the client degrades to a local in-process
   compile of the same request — the design is bit-identical to what the
   server would have produced (same compile entry point, same result
   projection), annotated in the trace as a fallback. *)
let run_remote ~socket ~device ~fw ~dnn ~deadline ~use_cache ~trace ~emit_c
    ~workload ~size ~framework ~retries ~retry_backoff ~jobs func =
  let req =
    Pom_server.Client.request ~device ~framework:fw ~dnn ?deadline_s:deadline
      ~use_cache ~client:"pom_compile" func
  in
  let policy =
    {
      Pom.Resilience.Retry.default with
      Pom.Resilience.Retry.retries;
      base_s = retry_backoff;
    }
  in
  let attempts = ref 1 in
  let on_retry ~attempt ~delay_s e =
    attempts := attempt + 1;
    Printf.eprintf
      "pom_compile: attempt %d failed (%s); retrying in %.2f s\n%!" attempt
      (Printexc.to_string e) delay_s
  in
  let fallback_local e =
    Printf.eprintf
      "pom_compile: server %s unreachable after %d attempt(s) (%s); \
       compiling locally\n\
       %!"
      socket !attempts (Printexc.to_string e);
    match
      Pom.compile ~device ~framework:fw ~dnn ~jobs ?deadline_s:deadline func
    with
    | c ->
        let r = Pom_server.Protocol.result_of_compiled c in
        let r =
          {
            r with
            Pom_server.Protocol.trace =
              r.Pom_server.Protocol.trace
              @ [
                  Printf.sprintf
                    "fallback: server %s unreachable; compiled locally" socket;
                ];
          }
        in
        print_remote_result ~workload ~size ~framework
          ~served:
            (Printf.sprintf "local fallback (server unreachable after %d \
                             attempt(s))"
               !attempts)
          ~trace ~emit_c r
    | exception Pom.Resilience.Fault.Killed site ->
        Format.eprintf "error [POM305]: injected kill at %s@." site;
        3
    | exception
        (( Pom.Resilience.Error.Error _
         | Pom.Resilience.Budget.Budget_exceeded _ ) as e) ->
        let err =
          match e with
          | Pom.Resilience.Error.Error t -> t
          | e -> Pom.Resilience.Error.of_exn ~code:"POM301" e
        in
        Format.eprintf "%s@." (Pom.Resilience.Error.to_string err);
        3
  in
  match
    Pom_server.Client.compile_retry ~policy ~on_retry ~socket req
  with
  | exception Pom_wire.Wire.Version_mismatch { expected; got; _ } ->
      (* a protocol generation gap will not improve on retry, and silently
         compiling locally would mask a deployment skew: fail loudly *)
      Printf.eprintf
        "error [POM309]: server speaks protocol version %d, this client \
         expects %d\n"
        got expected;
      3
  | exception
      (( Unix.Unix_error _ | End_of_file | Sys_error _
       | Pom_wire.Wire.Corrupt _ ) as e) ->
      fallback_local e
  | resp -> (
      match resp.Pom_server.Protocol.outcome with
      | Error e ->
          Format.eprintf "error [%s]: %s%s@." e.Pom_server.Protocol.code
            e.Pom_server.Protocol.message
            (match e.Pom_server.Protocol.context with
            | [] -> ""
            | ctx -> " (" ^ String.concat " < " ctx ^ ")");
          3
      | Ok r ->
          print_remote_result ~workload ~size ~framework
            ~served:(Format.asprintf "%a" pp_served resp)
            ~trace ~emit_c r)

let print_server_stats (s : Pom_server.Protocol.server_stats) =
  Format.printf
    "server:      %d requests (%d ok, %d failed, %d rejected)@.\
     cache:       %d hits / %d misses (%d entries)@.\
     queue:       %d deep@.\
     uptime:      %.1f s@."
    s.Pom_server.Protocol.requests s.Pom_server.Protocol.succeeded
    s.Pom_server.Protocol.failed s.Pom_server.Protocol.rejected
    s.Pom_server.Protocol.cache_hits s.Pom_server.Protocol.cache_misses
    s.Pom_server.Protocol.cache_entries s.Pom_server.Protocol.queue_depth
    s.Pom_server.Protocol.uptime_s

let print_health (h : Pom_server.Protocol.health) =
  Format.printf
    "health:      executor %s (%d respawn(s))@.\
     queue:       %d deep@.\
     cache:       %d entries%s@.\
     uptime:      %.1f s@."
    (if h.Pom_server.Protocol.h_executor_live then "live" else "stopped")
    h.Pom_server.Protocol.h_executor_respawns
    h.Pom_server.Protocol.h_queue_depth h.Pom_server.Protocol.h_cache_entries
    (match h.Pom_server.Protocol.h_journal_lag with
    | None -> ", journal off"
    | Some 0 -> ", journal synced"
    | Some n -> Printf.sprintf ", journal %d behind" n)
    h.Pom_server.Protocol.h_uptime_s

let framework_of_string = function
  | "baseline" -> Ok `Baseline
  | "pluto" -> Ok `Pluto
  | "polsca" -> Ok `Polsca
  | "scalehls" -> Ok `Scalehls
  | "pom-manual" -> Ok `Pom_manual
  | "pom" | "pom-auto" -> Ok `Pom_auto
  | s -> Error (`Msg ("unknown framework " ^ s))

let run workload from_c size framework schedules lint werror emit_c emit_mlir
    emit_testbench validate check_legality timeline trace timing dump_after
    verify_each resource_frac jobs jobs_mode chunk _worker deadline on_error
    checkpoint inject list_workloads serve connect queue no_request_cache
    stop_socket stats_socket retries retry_backoff health_socket cache_journal
    =
  require_positive_int "--jobs" jobs;
  require_positive_int "--chunk" chunk;
  require_positive_int "--size" size;
  require_positive_int "--queue" queue;
  require_positive_int "--retries" retries;
  require_positive_float "--retry-backoff" retry_backoff;
  Option.iter (require_positive_float "--deadline") deadline;
  require_positive_float "--resource-fraction" resource_frac;
  Pom.Par.set_jobs jobs;
  Pom.Par.set_chunk chunk;
  (match Pom.Par.mode_of_string jobs_mode with
  | Ok m -> Pom.Par.set_mode m
  | Error m ->
      prerr_endline m;
      exit 1);
  let on_error =
    match Pom.Resilience.Policy.of_string on_error with
    | Ok p -> p
    | Error m ->
        prerr_endline m;
        exit 1
  in
  (match inject with
  | Some spec -> (
      try Pom.Resilience.Fault.configure spec
      with Invalid_argument m ->
        prerr_endline m;
        exit 1)
  | None -> Pom.Resilience.Fault.configure_from_env ());
  if list_workloads then begin
    List.iter (fun (n, _) -> print_endline n) (workloads ());
    0
  end
  else
    match (serve, stop_socket, stats_socket, health_socket) with
    | Some socket, _, _, _ ->
        Pom_server.Server.run ~max_queue:queue ~jobs ?cache_journal ~socket ()
    | None, Some socket, _, _ -> (
        match Pom_server.Client.shutdown ~socket with
        | s ->
            print_server_stats s;
            0
        | exception Unix.Unix_error (e, _, _) ->
            Printf.eprintf "error: cannot connect to %s: %s\n" socket
              (Unix.error_message e);
            1)
    | None, None, Some socket, _ -> (
        match Pom_server.Client.stats ~socket with
        | s ->
            print_server_stats s;
            0
        | exception Unix.Unix_error (e, _, _) ->
            Printf.eprintf "error: cannot connect to %s: %s\n" socket
              (Unix.error_message e);
            1)
    | None, None, None, Some socket -> (
        match Pom_server.Client.ping ~socket with
        | h ->
            print_health h;
            0
        | exception Unix.Unix_error (e, _, _) ->
            Printf.eprintf "error: cannot connect to %s: %s\n" socket
              (Unix.error_message e);
            1)
    | None, None, None, None ->
    let named_builder =
      match from_c with
      | Some path -> (
          try
            let func = Pom.Cfront.Parse.parse_file path in
            Some (Pom.Dsl.Func.name func, fun _ -> func)
          with
          | Pom.Cfront.Parse.Parse_error { line; col; token; message } ->
              report_parse_error path ~line ~col ~token message
          | Pom.Cfront.Lexer.Lex_error { line; col; message } ->
              report_parse_error path ~line ~col ~token:"<char>" message)
      | None ->
          Option.map (fun b -> (workload, b)) (List.assoc_opt workload (workloads ()))
    in
    match named_builder with
    | None ->
        Printf.eprintf "unknown workload %s (try --list)\n" workload;
        1
    | Some builder_pair -> (
        match framework_of_string framework with
        | Error (`Msg m) ->
            prerr_endline m;
            1
        | Ok fw -> (
          try
            let workload, build = (fst builder_pair, snd builder_pair) in
            let device =
              Pom.Hls.Device.scale resource_frac Pom.Hls.Device.xc7z020
            in
            let dnn = List.mem_assoc workload Pom.Workloads.Dnn.by_name in
            let func = build size in
            (match
               List.iter
                 (fun s -> Pom.Dsl.Func.schedule func (directive_of_string s))
                 schedules
             with
            | () -> ()
            | exception Failure m ->
                prerr_endline m;
                exit 1);
            match connect with
            | Some socket ->
                run_remote ~socket ~device ~fw ~dnn ~deadline
                  ~use_cache:(not no_request_cache) ~trace ~emit_c ~workload
                  ~size ~framework ~retries ~retry_backoff ~jobs func
            | None ->
            let c =
              Pom.compile ~device ~framework:fw ~dnn ~dump_after ~verify_each
                ~jobs ?deadline_s:deadline ~on_error ?checkpoint func
            in
            List.iter
              (fun name ->
                if name <> "all" && not (Pom.Pipeline.Registry.mem name) then
                  Printf.eprintf
                    "warning: --dump-after %s matches no registered pass \
                     (known: %s)\n"
                    name
                    (String.concat ", "
                       (List.map fst (Pom.Pipeline.Registry.all ()))))
              dump_after;
            Format.printf "workload:    %s (size %d)@." workload size;
            Format.printf "framework:   %s@." framework;
            if timing then begin
              List.iter
                (Format.printf "pass:        %a@." Pom.Pipeline.Pass.pp_record)
                c.Pom.passes;
              let ps = Pom.Poly.Projcache.stats () in
              Format.printf
                "cache:       fm-projection exact %d/%d hits, parametric \
                 %d/%d hits (%.0f%% overall)@."
                ps.Pom.Poly.Projcache.exact_hits
                (ps.Pom.Poly.Projcache.exact_hits
                + ps.Pom.Poly.Projcache.exact_misses)
                ps.Pom.Poly.Projcache.param_hits
                (ps.Pom.Poly.Projcache.param_hits
                + ps.Pom.Poly.Projcache.param_misses)
                (100.0 *. Pom.Poly.Projcache.hit_rate ps);
              let dh, dm = Pom.Hls.Summary.dep_cache_stats () in
              Format.printf "cache:       dependence memo %d/%d hits@." dh
                (dh + dm)
            end;
            List.iter
              (fun (r : Pom.Pipeline.Pass.record) ->
                match r.Pom.Pipeline.Pass.dump with
                | Some ir ->
                    Format.printf "---- IR after %s ----@.%s@."
                      r.Pom.Pipeline.Pass.pass ir
                | None -> ())
              c.Pom.passes;
            Format.printf "report:      %a@." Pom.Hls.Report.pp c.Pom.report;
            Format.printf "speedup:     %.1fx over unoptimized (%d cycles)@."
              (Pom.speedup c) c.Pom.baseline_latency;
            if c.Pom.dse_time_s > 0.0 then
              Format.printf "DSE time:    %.2f s@." c.Pom.dse_time_s;
            List.iter
              (fun (name, v) ->
                Format.printf "tiles %-10s [%s]@." name
                  (String.concat ", " (List.map string_of_int v)))
              c.Pom.tile_vectors;
            if validate then begin
              let vsize = if from_c = None then min size 32 else size in
              let small = build vsize in
              let cv = Pom.compile ~device ~framework:fw ~dnn small in
              Format.printf "validation:  max divergence %g (size %d)@."
                (Pom.validate small cv) vsize
            end;
            if check_legality then begin
              match Pom.check_legality func c with
              | [] -> Format.printf "legality:    all dependences preserved@."
              | vs ->
                  List.iter
                    (Format.printf "legality:    %a@."
                       Pom.Polyir.Legality.pp_violation)
                    vs
            end;
            if trace then begin
              match c.Pom.trace with
              | [] -> Format.printf "trace:       (empty)@."
              | lines -> List.iter (Format.printf "trace:       %s@.") lines
            end;
            if timeline then begin
              print_newline ();
              print_string (Pom.Hls.Timeline.render c.Pom.prog)
            end;
            if emit_mlir then begin
              print_newline ();
              print_string (Pom.mlir c)
            end;
            if emit_c then begin
              print_newline ();
              print_string c.Pom.hls_c
            end;
            if emit_testbench then begin
              print_newline ();
              print_string
                (Pom.Emit.Emit.testbench
                   (Pom.Affine.Passes.simplify
                      (Pom.Affine.Lower.lower c.Pom.prog)))
            end;
            let diags =
              if werror then
                Pom.Analysis.Diagnostic.promote_warnings c.Pom.diags
              else c.Pom.diags
            in
            let has_errors = Pom.Analysis.Diagnostic.has_errors diags in
            if lint || has_errors then begin
              if diags <> [] then
                Format.eprintf "%a@." Pom.Analysis.Diagnostic.pp_list diags;
              Format.eprintf "analysis:    %s@."
                (Pom.Analysis.Diagnostic.summary diags)
            end;
            if c.Pom.legality_violations > 0 then begin
              Format.eprintf
                "legality:    %d reversed dependences — the schedule is \
                 illegal@."
                c.Pom.legality_violations;
              2
            end
            else if has_errors then 2
            else 0
          with
          | Pom.Resilience.Fault.Killed site ->
              (* an injected kill simulates the process dying here: no
                 degradation, just the resilience exit code *)
              Format.eprintf "error [POM305]: injected kill at %s@." site;
              3
          | ( Pom.Resilience.Error.Error _
            | Pom.Resilience.Budget.Budget_exceeded _ ) as e ->
              let err =
                match e with
                | Pom.Resilience.Error.Error t -> t
                | e -> Pom.Resilience.Error.of_exn ~code:"POM301" e
              in
              Format.eprintf "%s@." (Pom.Resilience.Error.to_string err);
              3))

let from_c_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "from-c" ]
        ~doc:"Parse the kernel from an HLS C file instead of a built-in workload.")

let workload_arg =
  Arg.(value & opt string "gemm" & info [ "w"; "workload" ] ~doc:"Workload name.")

let size_arg =
  Arg.(value & opt int 1024 & info [ "s"; "size" ] ~doc:"Problem size.")

let framework_arg =
  Arg.(
    value
    & opt string "pom"
    & info [ "f"; "framework" ]
        ~doc:"One of baseline, pluto, polsca, scalehls, pom-manual, pom.")

let schedule_arg =
  Arg.(
    value & opt_all string []
    & info [ "schedule" ] ~docv:"DIRECTIVE"
        ~doc:
          "Apply a scheduling primitive before compiling (repeatable), in \
           the paper's syntax: e.g. 'pipeline s k 1', 'unroll s j 4', \
           'split s k 8 ko ki', 'interchange s i j', 'reverse s k kr', \
           'partition A cyclic 4 4'.  Most useful with -f pom-manual.")

let lint_arg =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:
          "Print analyzer diagnostics (IR verifier + dependence-aware \
           pragma lint); errors always print and fail the compile even \
           without this flag.")

let werror_arg =
  Arg.(
    value & flag
    & info [ "Werror" ]
        ~doc:"Promote analyzer warnings to errors (non-zero exit).")

let emit_c_arg =
  Arg.(value & flag & info [ "emit-c" ] ~doc:"Print the generated HLS C.")

let emit_testbench_arg =
  Arg.(
    value & flag
    & info [ "emit-testbench" ]
        ~doc:"Print a self-contained C testbench (kernel + checksum main).")

let emit_mlir_arg =
  Arg.(
    value & flag
    & info [ "emit-mlir" ]
        ~doc:"Print the annotated affine dialect as textual MLIR.")

let validate_arg =
  Arg.(
    value & flag
    & info [ "validate" ]
        ~doc:"Check schedule correctness with the functional simulator.")

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Print the compile trace: DSE decisions, memo cache summary, \
           legality verdicts.")

let timing_arg =
  Arg.(
    value & flag
    & info [ "timing" ]
        ~doc:
          "Print one line per compiler pass with wall-clock/CPU time and IR \
           statistics.")

let dump_after_arg =
  Arg.(
    value & opt_all string []
    & info [ "dump-after" ] ~docv:"PASS"
        ~doc:
          "Print the IR after the named pass (repeatable; 'all' dumps after \
           every pass).")

let verify_each_arg =
  Arg.(
    value & flag
    & info [ "verify-each" ]
        ~doc:
          "Re-check polyhedral legality after every pass (verdicts shown \
           with --timing).")

let timeline_arg =
  Arg.(
    value & flag
    & info [ "timeline" ]
        ~doc:"Print a Fig. 2-style iteration/cycle schedule timeline.")

let check_legality_arg =
  Arg.(
    value & flag
    & info [ "check-legality" ]
        ~doc:"Prove the schedule preserves every dependence (polyhedral check).")

let frac_arg =
  Arg.(
    value & opt float 1.0
    & info [ "resource-fraction" ]
        ~doc:"Scale the device resource budget (Fig. 11 sweeps).")

let jobs_arg =
  Arg.(
    value
    & opt int Pom.Par.default_jobs
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker-domain budget for the DSE search and polyhedral analyses \
           (default: the machine's recommended domain count).  The compiled \
           design is identical for every N; N=1 runs fully sequentially.")

let jobs_mode_arg =
  Arg.(
    value
    & opt string "domains"
    & info [ "jobs-mode" ] ~docv:"MODE"
        ~doc:
          "How the -j budget is spent: 'domains' (default) shares the \
           evaluation across OCaml domains in this process; 'procs' \
           shards it across N 'pom_compile --worker' child processes \
           speaking the framed wire protocol on their pipes.  Either \
           mode compiles the identical design.")

let chunk_arg =
  Arg.(
    value
    & opt int Pom.Par.default_chunk
    & info [ "chunk" ] ~docv:"N"
        ~doc:
          "Target number of DSE candidates per work-stealing chunk.  \
           Workers take whole chunks and split one in half only when the \
           queue runs dry, so larger chunks amortize scheduling and \
           wire-protocol overhead while smaller ones balance load.  The \
           compiled design is identical for every N.")

(* --worker never reaches Cmdliner (it is intercepted in the entry
   point below, before argv parsing), but declaring it here documents
   the flag in --help. *)
let worker_arg =
  Arg.(
    value & flag
    & info [ "worker" ]
        ~doc:
          "Run as a DSE evaluation worker: serve framed work units on \
           stdin/stdout until the parent closes the pipe.  Spawned \
           automatically by --jobs-mode procs; not intended for \
           interactive use.")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECS"
        ~doc:
          "Wall-clock budget for the whole compile.  The polyhedral \
           kernels, legality proof, and DSE searches check it \
           cooperatively; when it runs out the compile aborts with a \
           POM301 diagnostic (or degrades, under --on-error degrade).")

let on_error_arg =
  Arg.(
    value & opt string "abort"
    & info [ "on-error" ] ~docv:"POLICY"
        ~doc:
          "What a failed or timed-out pass does: 'abort' (default) stops \
           with a typed POM3xx error and exit code 3; 'degrade' records \
           the diagnostic and applies the pass's conservative fallback — \
           assume the dependence, reject the transform, skip the DSE \
           candidate, keep the incumbent design.")

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Journal every evaluated DSE design point to $(docv) (append \
           and flush per record).  Re-running with the same $(docv) \
           replays the journal into the evaluation cache first, so a \
           killed search resumes and reproduces the identical final \
           design.")

let inject_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "inject" ] ~docv:"SPEC"
        ~doc:
          "Deterministic fault injection for resilience testing: \
           comma-separated site=kind@n terms, kind one of fail, timeout, \
           kill (e.g. 'pass:hls-synthesize=fail@1,dse:evaluate=kill@5').  \
           Also read from the POM_FAULTS environment variable.")

let list_arg =
  Arg.(value & flag & info [ "list" ] ~doc:"List available workloads.")

let serve_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "serve" ] ~docv:"SOCKET"
        ~doc:
          "Run as a persistent compile server on the named Unix-domain \
           socket.  The process stays warm across requests — the \
           schedule/report/plan memo tables and a cross-request response \
           cache persist — so repeated compiles of one design point cost \
           a lookup.  Compiles are serialized (each request gets its own \
           --deadline-style budget); admission is bounded by --queue.  \
           Exits 0 on SIGTERM/SIGINT or a client --stop, 1 when the \
           socket cannot be bound.")

let connect_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "connect" ] ~docv:"SOCKET"
        ~doc:
          "Compile on the --serve daemon at $(docv) instead of in this \
           process: the scheduled workload is shipped over the framed \
           wire protocol and the synthesis report, HLS C, and trace come \
           back.  --deadline rides along as the server-side budget.")

let queue_arg =
  Arg.(
    value
    & opt int Pom_server.Server.default_max_queue
    & info [ "queue" ] ~docv:"N"
        ~doc:
          "With --serve: admit at most $(docv) queued requests; further \
           requests are answered immediately with a typed POM310 \
           overload error.")

let no_request_cache_arg =
  Arg.(
    value & flag
    & info [ "no-request-cache" ]
        ~doc:
          "With --connect: bypass the server's cross-request response \
           cache (the memo tables stay warm).  For measurement and \
           bit-identity checks.")

let stop_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stop" ] ~docv:"SOCKET"
        ~doc:
          "Ask the --serve daemon at $(docv) to shut down cleanly and \
           print its final counters.")

let server_stats_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "server-stats" ] ~docv:"SOCKET"
        ~doc:
          "Print the --serve daemon's request/cache/queue counters and \
           exit.")

let retries_arg =
  Arg.(
    value & opt int 3
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "With --connect: retry a failed transport exchange up to $(docv) \
           times (capped exponential backoff with deterministic jitter) \
           before degrading to a local in-process compile of the same \
           request.  Must be positive.")

let retry_backoff_arg =
  Arg.(
    value
    & opt float Pom.Resilience.Retry.default.Pom.Resilience.Retry.base_s
    & info [ "retry-backoff" ] ~docv:"SECS"
        ~doc:
          "With --connect: base delay before the first retry; each further \
           retry doubles it (capped).  Must be positive.")

let health_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "health" ] ~docv:"SOCKET"
        ~doc:
          "Ping the --serve daemon at $(docv) and print its health: \
           executor liveness and respawn count, queue depth, cache size, \
           cache-journal durability lag, uptime.  Answered from the \
           connection thread, never queued behind a compile.")

let cache_journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-journal" ] ~docv:"FILE"
        ~doc:
          "With --serve: journal every response-cache insert to $(docv) \
           (append, flush per record; torn tails truncated on reopen).  A \
           restarted daemon replays the journal and serves previously \
           compiled requests as bit-identical cache hits.")

let cmd =
  let doc = "POM: generate an optimized FPGA accelerator for a workload" in
  let exits =
    [
      Cmd.Exit.info 0
        ~doc:"on success (including a clean --serve daemon shutdown).";
      Cmd.Exit.info 1
        ~doc:
          "on usage errors (bad numeric options, unparsable input — \
           POM307), an unbindable --serve socket, or an unreachable \
           --stop/--server-stats/--health socket.  An unreachable \
           --connect socket is not fatal: after --retries transport \
           retries the client compiles locally and exits by that \
           compile's result.";
      Cmd.Exit.info 2
        ~doc:"on analyzer errors or an illegal schedule (POM1xx/POM2xx).";
      Cmd.Exit.info 3
        ~doc:
          "on a resilience abort: exhausted --deadline, failed required \
           pass, injected kill, or a typed server-side error over \
           --connect (POM3xx, including POM310 overload).";
    ]
  in
  Cmd.v
    (Cmd.info "pom_compile" ~doc ~exits)
    Term.(
      const run $ workload_arg $ from_c_arg $ size_arg $ framework_arg
      $ schedule_arg $ lint_arg $ werror_arg $ emit_c_arg $ emit_mlir_arg
      $ emit_testbench_arg $ validate_arg $ check_legality_arg $ timeline_arg
      $ trace_arg $ timing_arg $ dump_after_arg $ verify_each_arg $ frac_arg
      $ jobs_arg $ jobs_mode_arg $ chunk_arg $ worker_arg $ deadline_arg
      $ on_error_arg
      $ checkpoint_arg $ inject_arg $ list_arg $ serve_arg $ connect_arg
      $ queue_arg $ no_request_cache_arg $ stop_arg $ server_stats_arg
      $ retries_arg $ retry_backoff_arg $ health_arg $ cache_journal_arg)

let () =
  (* --worker must not pay for (or be confused by) Cmdliner parsing: the
     protocol owns stdin/stdout from the first byte. *)
  if Array.exists (String.equal "--worker") Sys.argv then
    exit (Pom.Dse.Worker.main ())
  else exit (Cmd.eval' cmd)
