(* pom_refute: property-based refutation of the compiler's trust anchors.

   Three oracle families (see lib/refute): `poly` cross-checks projection
   and feasibility against brute-force point enumeration, `semantic`
   cross-checks the legality engine against observed execution, and
   `degrade` replays compiles under injected faults asserting the POM30x
   degradation contract.  Counterexamples are shrunk to minimal form and,
   with --corpus, saved as replayable .case files. *)

open Cmdliner
module Refute = Pom.Refute

let seed_arg =
  Arg.(
    value & opt int 0
    & info [ "seed" ] ~docv:"N"
        ~doc:"Random seed.  Two runs with the same seed, case count, and \
              family generate the same cases.")

let cases_arg =
  Arg.(
    value & opt int 1000
    & info [ "cases" ] ~docv:"N" ~doc:"Cases to generate per family.")

let family_arg =
  Arg.(
    value & opt_all string []
    & info [ "family" ] ~docv:"FAM"
        ~doc:
          "Oracle family to run: poly, semantic, degrade, or qor.  Repeatable; \
           default all three.")

let budget_arg =
  Arg.(
    value & opt (some float) None
    & info [ "budget" ] ~docv:"SECONDS"
        ~doc:
          "Wall-clock budget for the whole search.  The engine stops \
           cleanly at a case boundary when it expires; counterexamples \
           found before expiry are kept.")

let corpus_arg =
  Arg.(
    value & opt (some string) None
    & info [ "corpus" ] ~docv:"DIR"
        ~doc:
          "Counterexample corpus directory.  Every case already in it is \
           replayed first (a failing replay is a resurfaced regression), \
           and new shrunk counterexamples are saved into it.")

let replay_only_arg =
  Arg.(
    value & flag
    & info [ "replay-only" ]
        ~doc:"Only replay the --corpus; do not search for new cases.")

let inject_arg =
  Arg.(
    value & opt (some string) None
    & info [ "inject" ] ~docv:"SPEC"
        ~doc:
          "Arm deterministic fault injection (site=kind@n, comma-separated) \
           for the whole run — mostly useful to watch the degrade family \
           catch a seeded contract violation.  Also read from POM_FAULTS.")

let parse_families = function
  | [] -> Ok Refute.Engine.all_families
  | names ->
      List.fold_left
        (fun acc n ->
          match (acc, Refute.Engine.family_of_string n) with
          | Error e, _ -> Error e
          | Ok fs, Ok f -> Ok (fs @ [ f ])
          | Ok _, Error e -> Error e)
        (Ok []) names

let replay_corpus dir =
  let results = Refute.Engine.replay dir in
  let regressions =
    List.filter (fun (_, _, v) -> Refute.Oracle.is_fail v) results
  in
  List.iter
    (fun (path, _, v) ->
      Fmt.pr "replay %s: %a@." (Filename.basename path)
        Refute.Oracle.pp_verdict v)
    results;
  (List.length results, List.length regressions)

let run seed cases families budget corpus replay_only inject =
  match parse_families families with
  | Error e ->
      Fmt.epr "pom_refute: %s@." e;
      1
  | Ok families -> (
      (match inject with
      | Some spec -> Pom.Resilience.Fault.configure spec
      | None -> Pom.Resilience.Fault.configure_from_env ());
      let replayed, regressions =
        match corpus with
        | Some dir when Sys.file_exists dir -> replay_corpus dir
        | _ -> (0, 0)
      in
      if replayed > 0 then
        Fmt.pr "corpus: %d case(s) replayed, %d regression(s)@.@." replayed
          regressions;
      let found = ref 0 in
      let on_finding dir (f : Refute.Engine.finding) =
        incr found;
        Fmt.pr "@.counterexample (%s, shrunk %d step(s)):@.  %s@."
          f.Refute.Engine.diag.Pom.Analysis.Diagnostic.code
          f.Refute.Engine.shrink_steps
          f.Refute.Engine.diag.Pom.Analysis.Diagnostic.message;
        Fmt.pr "  %s@." (Refute.Case.to_string f.Refute.Engine.case);
        match dir with
        | Some dir ->
            let path = Refute.Corpus.save dir f.Refute.Engine.case in
            Fmt.pr "  saved %s@." path
        | None -> ()
      in
      let search () =
        List.iter
          (fun family ->
            let stats =
              Refute.Engine.run ~seed ~cases ~on_finding:(on_finding corpus)
                family
            in
            Fmt.pr "%a@." Refute.Engine.pp_stats stats;
            if stats.Refute.Engine.precision_misses > 0 then
              Fmt.pr
                "hint [POM405]: %d schedule(s) rejected by the legality \
                 engine executed bit-identically anyway — imprecision, not \
                 unsoundness@."
                stats.Refute.Engine.precision_misses)
          families
      in
      if not replay_only then
        Pom.Resilience.Budget.with_budget ?deadline_s:budget search;
      match (regressions, !found) with
      | 0, 0 -> 0
      | _ -> 2)

let cmd =
  let doc = "refute the POM compiler's trust anchors by differential testing" in
  let exits =
    [
      Cmd.Exit.info 0 ~doc:"when every case passed (no counterexamples).";
      Cmd.Exit.info 1 ~doc:"on usage errors.";
      Cmd.Exit.info 2
        ~doc:"when a counterexample was found or a corpus replay regressed.";
    ]
  in
  Cmd.v
    (Cmd.info "pom_refute" ~doc ~exits)
    Term.(
      const run $ seed_arg $ cases_arg $ family_arg $ budget_arg $ corpus_arg
      $ replay_only_arg $ inject_arg)

let () = exit (Cmd.eval' cmd)
