(* The parallel-execution subsystem: the fixed-size domain pool (result
   ordering, exception propagation, nested-use rejection), the domain-safe
   report memo under concurrent requests, and the end-to-end guarantee that
   the DSE engine picks the identical design at every job count. *)

module Par = Pom.Par
module Pool = Pom.Par.Pool
module Memo = Pom.Pipeline.Memo
module Polybench = Pom.Workloads.Polybench

(* -------- the domain pool -------- *)

let test_map_ordering () =
  Pool.with_pool 4 (fun pool ->
      let xs = List.init 100 Fun.id in
      Alcotest.(check (list int))
        "results follow input order" (List.map (fun x -> x * x) xs)
        (Pool.parallel_map pool (fun x -> x * x) xs))

let test_map_empty_and_singleton () =
  Pool.with_pool 4 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.parallel_map pool succ []);
      Alcotest.(check (list int))
        "singleton" [ 8 ]
        (Pool.parallel_map pool succ [ 7 ]))

let test_size_one_pool_is_sequential () =
  Pool.with_pool 1 (fun pool ->
      Alcotest.(check int) "size" 1 (Pool.size pool);
      Alcotest.(check (list int))
        "maps in order" [ 2; 4; 6 ]
        (Pool.parallel_map pool (fun x -> 2 * x) [ 1; 2; 3 ]))

let test_exception_propagation () =
  Pool.with_pool 4 (fun pool ->
      Alcotest.check_raises "the task's exception surfaces"
        (Failure "boom at 37") (fun () ->
          ignore
            (Pool.parallel_map pool
               (fun x -> if x = 37 then failwith "boom at 37" else x)
               (List.init 100 Fun.id))))

let test_nested_use_rejected () =
  Pool.with_pool 4 (fun pool ->
      let saw_rejection =
        Pool.parallel_map pool
          (fun () ->
            match Pool.parallel_map pool succ [ 1 ] with
            | _ -> false
            | exception Invalid_argument _ -> true)
          [ (); (); () ]
      in
      Alcotest.(check (list bool))
        "every nested submission is rejected" [ true; true; true ]
        saw_rejection)

let test_filter_map_ordering () =
  Pool.with_pool 4 (fun pool ->
      Alcotest.(check (list int))
        "kept results follow input order"
        [ 0; 4; 16; 36; 64 ]
        (Pool.parallel_filter_map pool
           (fun x -> if x mod 2 = 0 then Some (x * x) else None)
           (List.init 10 Fun.id)))

let test_par_facade_budget () =
  Par.with_jobs 3 (fun () ->
      Alcotest.(check int) "with_jobs sets the budget" 3 (Par.jobs ());
      Alcotest.(check (list int))
        "Par.map respects ordering" [ 1; 4; 9 ]
        (Par.map (fun x -> x * x) [ 1; 2; 3 ]));
  Par.with_jobs 1 (fun () ->
      Alcotest.(check (list int))
        "sequential path" [ 1; 4; 9 ]
        (Par.map (fun x -> x * x) [ 1; 2; 3 ]))

(* -------- the work-stealing deque -------- *)

let test_deque_semantics () =
  let module Deque = Pom.Par.Deque in
  let d = Deque.create () in
  Alcotest.(check bool) "fresh deque is empty" true (Deque.is_empty d);
  List.iter (Deque.push d) [ 1; 2; 3 ];
  Alcotest.(check int) "length counts pushes" 3 (Deque.length d);
  Alcotest.(check (option int)) "owner pops LIFO" (Some 3) (Deque.pop d);
  Alcotest.(check (option int)) "thief steals FIFO" (Some 1) (Deque.steal d);
  Alcotest.(check (option int))
    "last element reachable from either end" (Some 2) (Deque.steal d);
  Alcotest.(check (option int)) "empty pop" None (Deque.pop d);
  Alcotest.(check (option int)) "empty steal" None (Deque.steal d);
  Alcotest.(check bool) "drained deque is empty" true (Deque.is_empty d)

(* -------- the chunked executor -------- *)

(* Force the split-on-idle path deterministically: worker 0's own deque
   holds (bottom to top) a 4-item chunk and a blocker chunk.  LIFO pop
   hands worker 0 the blocker, which waits until all four items are done —
   and the only way they can run is for the idle worker to steal the
   4-item chunk FIFO, which (len > 1) must split it.  Every interleaving
   of the two workers reaches the same conclusion, so the assertions below
   are race-free. *)
let test_chunks_split_on_idle () =
  let module Chunks = Pom.Par.Chunks in
  let done_w = Atomic.make 0 in
  let f _idx = function
    | `W -> Atomic.incr done_w
    | `Fast -> ()
    | `Block ->
        let t0 = Unix.gettimeofday () in
        while Atomic.get done_w < 4 do
          if Unix.gettimeofday () -. t0 > 10.0 then
            failwith "split-on-idle watchdog expired";
          Unix.sleepf 0.0001
        done
  in
  let stats =
    Chunks.run ~jobs:2 ~chunk:4 ~f
      [ Array.make 4 `W; [| `Fast |]; [| `Block |] ]
  in
  Alcotest.(check int) "every item ran" 6 stats.Chunks.items;
  Alcotest.(check int) "three chunks after re-chunking" 3 stats.Chunks.chunks;
  Alcotest.(check bool) "the idle worker stole" true (stats.Chunks.steals >= 1);
  Alcotest.(check bool)
    "the stolen multi-item chunk split" true
    (stats.Chunks.splits >= 1);
  Alcotest.(check int) "per-worker accounting sums to the total" 6
    (Array.fold_left ( + ) 0 stats.Chunks.worker_items)

let test_chunks_exception_lowest_index () =
  Alcotest.check_raises "the lowest-index item's exception surfaces"
    (Failure "boom 7") (fun () ->
      ignore
        (Pom.Par.Chunks.run ~jobs:4 ~chunk:1
           ~f:(fun idx () ->
             if idx = 7 || idx = 13 then failwith (Printf.sprintf "boom %d" idx))
           [ Array.make 20 () ]))

let test_chunks_exactly_once_when_jobs_one () =
  let seen = ref [] in
  let stats =
    Pom.Par.Chunks.run ~jobs:1 ~chunk:3
      ~f:(fun idx () -> seen := idx :: !seen)
      [ Array.make 7 () ]
  in
  (* chunk order is deque (LIFO) order even at jobs=1 — the contract is
     exactly-once with commutative effects, not submission order *)
  Alcotest.(check (list int))
    "every item runs exactly once"
    (List.init 7 Fun.id)
    (List.sort compare !seen);
  Alcotest.(check int) "no steals" 0 stats.Pom.Par.Chunks.steals;
  Alcotest.(check int) "no splits" 0 stats.Pom.Par.Chunks.splits

(* -------- the memo under concurrent requests -------- *)

let test_memo_single_miss_under_concurrency () =
  (* four domains ask for the same uncached design point at once: the
     in-flight claim must serialize them into one synthesis (one miss) and
     three waiters that count as hits and share the winner's result *)
  let cache = Memo.create () in
  let func = Polybench.gemm 32 in
  let thunk () = Pom.Polyir.Prog.of_func_unscheduled func in
  let device = Pom.Hls.Device.xc7z020 in
  let results =
    Pool.with_pool 4 (fun pool ->
        Pool.parallel_map pool
          (fun () -> Memo.synthesize cache ~device ~directives:[] func thunk)
          [ (); (); (); () ])
  in
  let c = Memo.counters cache in
  Alcotest.(check int) "one miss" 1 c.Memo.report_misses;
  Alcotest.(check int) "three hits" 3 c.Memo.report_hits;
  match results with
  | (p0, r0) :: rest ->
      Alcotest.(check bool) "all share one program" true
        (List.for_all (fun (p, _) -> p == p0) rest);
      Alcotest.(check bool) "all share one report" true
        (List.for_all (fun (_, r) -> r == r0) rest)
  | [] -> Alcotest.fail "no results"

(* -------- cross-jobs determinism of the DSE engine -------- *)

let directive_strings (r : Pom.Dse.Stage2.result) =
  List.map
    (Format.asprintf "%a" Pom.Dsl.Schedule.pp)
    r.Pom.Dse.Stage2.directives

let check_identical_design name build =
  let run jobs =
    (Pom.Dse.Engine.run ~cache:(Memo.create ()) ~jobs build).Pom.Dse.Engine
      .result
  in
  let seq = run 1 and par = run 4 in
  Alcotest.(check (list string))
    (name ^ ": identical directives") (directive_strings seq)
    (directive_strings par);
  Alcotest.(check bool)
    (name ^ ": identical tile vectors") true
    (seq.Pom.Dse.Stage2.tile_vectors = par.Pom.Dse.Stage2.tile_vectors);
  Alcotest.(check bool)
    (name ^ ": identical report") true
    (seq.Pom.Dse.Stage2.report = par.Pom.Dse.Stage2.report);
  Alcotest.(check int)
    (name ^ ": identical evaluation count")
    seq.Pom.Dse.Stage2.evaluations par.Pom.Dse.Stage2.evaluations;
  Alcotest.(check int)
    (name ^ ": identical pruning count")
    seq.Pom.Dse.Stage2.pruned par.Pom.Dse.Stage2.pruned

let test_engine_deterministic_gemm () =
  check_identical_design "gemm 512" (Polybench.gemm 512)

(* The executor promises design identity under *any* steal interleaving.
   The [par:steal-miss] fault site lets us pick adversarial ones
   deterministically: each armed visit makes one steal attempt fail as if
   the thief lost the race, shifting every subsequent interleaving. *)
let test_steal_interleavings_deterministic () =
  let func = Polybench.gemm 512 in
  let baseline =
    (Pom.Dse.Engine.run ~cache:(Memo.create ()) ~jobs:1 func).Pom.Dse.Engine
      .result
  in
  Fun.protect ~finally:Pom.Resilience.Fault.reset @@ fun () ->
  List.iter
    (fun n ->
      Pom.Resilience.Fault.configure
        (Printf.sprintf "par:steal-miss=fail@%d" n);
      let r =
        (Pom.Dse.Engine.run ~cache:(Memo.create ()) ~jobs:4 func).Pom.Dse
          .Engine.result
      in
      let tag = Printf.sprintf "steal-miss@%d" n in
      Alcotest.(check (list string))
        (tag ^ ": identical directives") (directive_strings baseline)
        (directive_strings r);
      Alcotest.(check bool)
        (tag ^ ": identical report") true
        (r.Pom.Dse.Stage2.report = baseline.Pom.Dse.Stage2.report))
    [ 1; 2; 5; 9 ]

(* The speculative warm must make its design points guaranteed hits for
   the sequential replay: a parallel run on a fresh memo therefore shows
   plan and report hits (the replay finding the warm's entries), never a
   silent second synthesis of the same point. *)
let test_warm_populates_memo () =
  let cache = Memo.create () in
  ignore (Pom.Dse.Engine.run ~cache ~jobs:4 (Polybench.gemm 512));
  let c = Memo.counters cache in
  Alcotest.(check bool)
    "the replay hit warmed plans" true (c.Memo.plan_hits > 0);
  Alcotest.(check bool)
    "the replay hit warmed reports" true (c.Memo.report_hits > 0)

(* The projection cache is an optimization, not an approximation: with it
   disabled the engine must pick the bit-identical design. *)
let test_projcache_bit_identity () =
  let func = Polybench.bicg 512 in
  let fast =
    (Pom.Dse.Engine.run ~cache:(Memo.create ()) ~jobs:1 func).Pom.Dse.Engine
      .result
  in
  let slow =
    Pom.Poly.Projcache.with_enabled false (fun () ->
        (Pom.Dse.Engine.run ~cache:(Memo.create ()) ~jobs:1 func).Pom.Dse
          .Engine.result)
  in
  Alcotest.(check (list string))
    "identical directives" (directive_strings slow) (directive_strings fast);
  Alcotest.(check bool)
    "identical tile vectors" true
    (slow.Pom.Dse.Stage2.tile_vectors = fast.Pom.Dse.Stage2.tile_vectors);
  Alcotest.(check bool)
    "identical report" true
    (slow.Pom.Dse.Stage2.report = fast.Pom.Dse.Stage2.report)

let test_engine_deterministic_bicg () =
  check_identical_design "bicg 512" (Polybench.bicg 512)

let test_scalehls_deterministic () =
  let func = Polybench.mm2 256 in
  let run jobs =
    let result = ref None in
    let _st, _records =
      Pom.Pipeline.Pass.run
        (Pom.Baselines.Scalehls.passes ~cache:(Memo.create ()) ~jobs
           ~on_result:(fun r -> result := Some r)
           ())
        (Pom.Pipeline.State.init ~composition:Pom.Hls.Resource.Dataflow
           ~latency_mode:`Sequential ~device:Pom.Hls.Device.xc7z020 func)
    in
    Option.get !result
  in
  let seq = run 1 and par = run 4 in
  Alcotest.(check bool)
    "identical report" true
    (seq.Pom.Baselines.Scalehls.report = par.Pom.Baselines.Scalehls.report);
  Alcotest.(check bool)
    "identical tile vectors" true
    (seq.Pom.Baselines.Scalehls.tile_vectors
    = par.Pom.Baselines.Scalehls.tile_vectors);
  Alcotest.(check int) "identical evaluation count"
    seq.Pom.Baselines.Scalehls.evaluations
    par.Pom.Baselines.Scalehls.evaluations

(* -------- worker-process pool shutdown -------- *)

(* A healthy pool shuts down promptly: the workers exit on EOF/SIGTERM and
   are reaped within (well under) the grace window. *)
let test_procs_shutdown_healthy () =
  let exe = Pom.Dse.Workpool.default_exe () in
  let procs =
    Pom.Par.Procs.create ~exe ~args:[ "--worker" ]
      ~header:Pom.Dse.Workpool.header ~jobs:2 ()
  in
  Alcotest.(check int) "both workers alive" 2 (Pom.Par.Procs.alive procs);
  let t0 = Unix.gettimeofday () in
  Pom.Par.Procs.shutdown procs;
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "healthy shutdown is fast (%.3f s)" dt)
    true (dt < 2.0);
  (* idempotent *)
  Pom.Par.Procs.shutdown procs

(* The bug this guards against: a wedged worker that ignores both its
   closed stdin and SIGTERM used to park [shutdown] forever on a blocking
   [waitpid].  The [procs:serve-wedge] fault site (armed through the
   inherited POM_FAULTS environment) makes the worker exactly that
   hostile; shutdown must escalate to SIGKILL and return within the
   grace window. *)
let test_procs_shutdown_wedged_worker () =
  let exe = Pom.Dse.Workpool.default_exe () in
  Unix.putenv "POM_FAULTS" "procs:serve-wedge=fail@1";
  Fun.protect ~finally:(fun () -> Unix.putenv "POM_FAULTS" "") @@ fun () ->
  let procs =
    Pom.Par.Procs.create ~exe ~args:[ "--worker" ]
      ~header:Pom.Dse.Workpool.header ~jobs:1 ()
  in
  Alcotest.(check int) "worker handshook" 1 (Pom.Par.Procs.alive procs);
  (* the wedged worker ignores SIGTERM before it echoes its greeting, so
     a completed handshake proves the worker is already immune to
     everything but SIGKILL *)
  let t0 = Unix.gettimeofday () in
  Pom.Par.Procs.shutdown ~grace_s:0.5 procs;
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "shutdown waited out the grace window (%.3f s)" dt)
    true (dt >= 0.4);
  Alcotest.(check bool)
    (Printf.sprintf "wedged shutdown completes within the grace window \
                     (%.3f s)"
       dt)
    true
    (dt < 5.0)

(* -------- worker supervision and respawn -------- *)

(* The chunk-eval request the [dse:worker-kill] fault site guards: the
   payload decodes to an empty chunk (the site fires before the decode),
   so a surviving worker answers instantly with an empty reply. *)
let chunk_tag = Pom.Dse.Workpool.tag_eval_chunk

let empty_chunk =
  Pom_wire.Wire.to_string Pom.Dse.Workpool.chunk_request_codec []

let with_faulted_pool ?respawn ~spec ~jobs f =
  let exe = Pom.Dse.Workpool.default_exe () in
  Unix.putenv "POM_FAULTS" spec;
  Fun.protect ~finally:(fun () -> Unix.putenv "POM_FAULTS" "") @@ fun () ->
  let procs =
    Pom.Par.Procs.create ?respawn ~backoff_base_s:0.01 ~exe
      ~args:[ "--worker" ] ~header:Pom.Dse.Workpool.header ~jobs ()
  in
  Fun.protect ~finally:(fun () -> Pom.Par.Procs.shutdown procs) (fun () ->
      f procs)

(* Each worker dies on its second chunk; the supervisor must respawn it
   (replaying the handshake) and re-dispatch the forfeited-in-flight item
   exactly once, so every reply still arrives.  With jobs=2 and six
   items the schedule consumes exactly the default 2*jobs budget. *)
let test_procs_supervised_respawn () =
  with_faulted_pool ~spec:"dse:worker-kill=kill@2" ~jobs:2 @@ fun procs ->
  let replies =
    Pom.Par.Procs.rpc procs ~tag:chunk_tag (List.init 6 (fun _ -> empty_chunk))
  in
  Alcotest.(check int) "every item answered" 6
    (List.length (List.filter Option.is_some replies));
  let s = Pom.Par.Procs.stats procs in
  Alcotest.(check int) "both workers died twice" 4 s.Pom.Par.Procs.deaths;
  Alcotest.(check int) "each death respawned" 4 s.Pom.Par.Procs.respawned;
  Alcotest.(check int) "nothing forfeited" 0 s.Pom.Par.Procs.forfeited;
  Alcotest.(check int) "pool back to full strength" 2
    (Pom.Par.Procs.alive procs)

(* respawn:0 keeps the historical degrade-only contract, but the losses
   are counted — the observability satellite even with supervision off *)
let test_procs_unsupervised_counts_losses () =
  with_faulted_pool ~respawn:0 ~spec:"dse:worker-kill=kill@1" ~jobs:1
  @@ fun procs ->
  let replies =
    Pom.Par.Procs.rpc procs ~tag:chunk_tag (List.init 3 (fun _ -> empty_chunk))
  in
  Alcotest.(check bool) "all items lost" true
    (List.for_all Option.is_none replies);
  let s = Pom.Par.Procs.stats procs in
  Alcotest.(check int) "one death" 1 s.Pom.Par.Procs.deaths;
  Alcotest.(check int) "no respawns without a budget" 0
    s.Pom.Par.Procs.respawned;
  Alcotest.(check int) "every item counted forfeited" 3
    s.Pom.Par.Procs.forfeited;
  Alcotest.(check int) "pool is empty" 0 (Pom.Par.Procs.alive procs)

(* Budget exhausted AND no live worker left: the typed POM311 failure the
   search layers catch to disable speculative prefetch. *)
let test_procs_respawn_exhaustion_is_pom311 () =
  with_faulted_pool ~respawn:1 ~spec:"dse:worker-kill=kill@1" ~jobs:1
  @@ fun procs ->
  match
    Pom.Par.Procs.rpc procs ~tag:chunk_tag (List.init 2 (fun _ -> empty_chunk))
  with
  | _ -> Alcotest.fail "expected POM311 after the respawn budget was spent"
  | exception Pom.Resilience.Error.Error e ->
      Alcotest.(check string) "typed code" "POM311" e.Pom.Resilience.Error.code;
      Alcotest.(check int) "no live workers" 0 (Pom.Par.Procs.alive procs)

(* A broadcast sent before the death must be replayed into the
   replacement: the respawned worker still answers chunk requests that
   depend on nothing (empty chunks), proving the handshake + replay
   completed rather than leaving a half-initialized worker. *)
let test_procs_respawn_replays_broadcast () =
  with_faulted_pool ~spec:"dse:worker-kill=kill@2" ~jobs:1 @@ fun procs ->
  Pom.Par.Procs.broadcast procs ~tag:Pom.Dse.Workpool.tag_hello "not-a-hello";
  let replies =
    Pom.Par.Procs.rpc procs ~tag:chunk_tag [ empty_chunk; empty_chunk ]
  in
  Alcotest.(check int) "items re-dispatched and answered" 2
    (List.length (List.filter Option.is_some replies));
  let s = Pom.Par.Procs.stats procs in
  Alcotest.(check int) "one respawn" 1 s.Pom.Par.Procs.respawned

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "result ordering" `Quick test_map_ordering;
          Alcotest.test_case "empty and singleton" `Quick
            test_map_empty_and_singleton;
          Alcotest.test_case "size-1 pool" `Quick
            test_size_one_pool_is_sequential;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "nested use rejected" `Quick
            test_nested_use_rejected;
          Alcotest.test_case "filter_map ordering" `Quick
            test_filter_map_ordering;
          Alcotest.test_case "Par facade budget" `Quick test_par_facade_budget;
        ] );
      ( "deque",
        [ Alcotest.test_case "LIFO owner, FIFO thief" `Quick test_deque_semantics ] );
      ( "chunks",
        [
          Alcotest.test_case "split on idle" `Quick test_chunks_split_on_idle;
          Alcotest.test_case "lowest-index exception" `Quick
            test_chunks_exception_lowest_index;
          Alcotest.test_case "exactly once at jobs=1" `Quick
            test_chunks_exactly_once_when_jobs_one;
        ] );
      ( "memo",
        [
          Alcotest.test_case "single miss under concurrency" `Quick
            test_memo_single_miss_under_concurrency;
        ] );
      ( "procs-shutdown",
        [
          Alcotest.test_case "healthy pool reaps promptly" `Quick
            test_procs_shutdown_healthy;
          Alcotest.test_case "wedged worker is SIGKILLed within grace" `Quick
            test_procs_shutdown_wedged_worker;
        ] );
      ( "procs-supervision",
        [
          Alcotest.test_case "killed workers respawn, items redelivered"
            `Quick test_procs_supervised_respawn;
          Alcotest.test_case "unsupervised losses are counted" `Quick
            test_procs_unsupervised_counts_losses;
          Alcotest.test_case "budget exhaustion raises POM311" `Quick
            test_procs_respawn_exhaustion_is_pom311;
          Alcotest.test_case "respawn replays broadcasts" `Quick
            test_procs_respawn_replays_broadcast;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "engine gemm 512, jobs 1 = jobs 4" `Slow
            test_engine_deterministic_gemm;
          Alcotest.test_case "engine bicg 512, jobs 1 = jobs 4" `Slow
            test_engine_deterministic_bicg;
          Alcotest.test_case "scalehls 2mm 256, jobs 1 = jobs 4" `Slow
            test_scalehls_deterministic;
          Alcotest.test_case "gemm 512 under forced steal misses" `Slow
            test_steal_interleavings_deterministic;
          Alcotest.test_case "warm populates the memo" `Slow
            test_warm_populates_memo;
          Alcotest.test_case "projection cache is bit-identical" `Slow
            test_projcache_bit_identity;
        ] );
    ]
