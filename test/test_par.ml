(* The parallel-execution subsystem: the fixed-size domain pool (result
   ordering, exception propagation, nested-use rejection), the domain-safe
   report memo under concurrent requests, and the end-to-end guarantee that
   the DSE engine picks the identical design at every job count. *)

module Par = Pom.Par
module Pool = Pom.Par.Pool
module Memo = Pom.Pipeline.Memo
module Polybench = Pom.Workloads.Polybench

(* -------- the domain pool -------- *)

let test_map_ordering () =
  Pool.with_pool 4 (fun pool ->
      let xs = List.init 100 Fun.id in
      Alcotest.(check (list int))
        "results follow input order" (List.map (fun x -> x * x) xs)
        (Pool.parallel_map pool (fun x -> x * x) xs))

let test_map_empty_and_singleton () =
  Pool.with_pool 4 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.parallel_map pool succ []);
      Alcotest.(check (list int))
        "singleton" [ 8 ]
        (Pool.parallel_map pool succ [ 7 ]))

let test_size_one_pool_is_sequential () =
  Pool.with_pool 1 (fun pool ->
      Alcotest.(check int) "size" 1 (Pool.size pool);
      Alcotest.(check (list int))
        "maps in order" [ 2; 4; 6 ]
        (Pool.parallel_map pool (fun x -> 2 * x) [ 1; 2; 3 ]))

let test_exception_propagation () =
  Pool.with_pool 4 (fun pool ->
      Alcotest.check_raises "the task's exception surfaces"
        (Failure "boom at 37") (fun () ->
          ignore
            (Pool.parallel_map pool
               (fun x -> if x = 37 then failwith "boom at 37" else x)
               (List.init 100 Fun.id))))

let test_nested_use_rejected () =
  Pool.with_pool 4 (fun pool ->
      let saw_rejection =
        Pool.parallel_map pool
          (fun () ->
            match Pool.parallel_map pool succ [ 1 ] with
            | _ -> false
            | exception Invalid_argument _ -> true)
          [ (); (); () ]
      in
      Alcotest.(check (list bool))
        "every nested submission is rejected" [ true; true; true ]
        saw_rejection)

let test_filter_map_ordering () =
  Pool.with_pool 4 (fun pool ->
      Alcotest.(check (list int))
        "kept results follow input order"
        [ 0; 4; 16; 36; 64 ]
        (Pool.parallel_filter_map pool
           (fun x -> if x mod 2 = 0 then Some (x * x) else None)
           (List.init 10 Fun.id)))

let test_par_facade_budget () =
  Par.with_jobs 3 (fun () ->
      Alcotest.(check int) "with_jobs sets the budget" 3 (Par.jobs ());
      Alcotest.(check (list int))
        "Par.map respects ordering" [ 1; 4; 9 ]
        (Par.map (fun x -> x * x) [ 1; 2; 3 ]));
  Par.with_jobs 1 (fun () ->
      Alcotest.(check (list int))
        "sequential path" [ 1; 4; 9 ]
        (Par.map (fun x -> x * x) [ 1; 2; 3 ]))

(* -------- the memo under concurrent requests -------- *)

let test_memo_single_miss_under_concurrency () =
  (* four domains ask for the same uncached design point at once: the
     in-flight claim must serialize them into one synthesis (one miss) and
     three waiters that count as hits and share the winner's result *)
  let cache = Memo.create () in
  let func = Polybench.gemm 32 in
  let thunk () = Pom.Polyir.Prog.of_func_unscheduled func in
  let device = Pom.Hls.Device.xc7z020 in
  let results =
    Pool.with_pool 4 (fun pool ->
        Pool.parallel_map pool
          (fun () -> Memo.synthesize cache ~device ~directives:[] func thunk)
          [ (); (); (); () ])
  in
  let c = Memo.counters cache in
  Alcotest.(check int) "one miss" 1 c.Memo.report_misses;
  Alcotest.(check int) "three hits" 3 c.Memo.report_hits;
  match results with
  | (p0, r0) :: rest ->
      Alcotest.(check bool) "all share one program" true
        (List.for_all (fun (p, _) -> p == p0) rest);
      Alcotest.(check bool) "all share one report" true
        (List.for_all (fun (_, r) -> r == r0) rest)
  | [] -> Alcotest.fail "no results"

(* -------- cross-jobs determinism of the DSE engine -------- *)

let directive_strings (r : Pom.Dse.Stage2.result) =
  List.map
    (Format.asprintf "%a" Pom.Dsl.Schedule.pp)
    r.Pom.Dse.Stage2.directives

let check_identical_design name build =
  let run jobs =
    (Pom.Dse.Engine.run ~cache:(Memo.create ()) ~jobs build).Pom.Dse.Engine
      .result
  in
  let seq = run 1 and par = run 4 in
  Alcotest.(check (list string))
    (name ^ ": identical directives") (directive_strings seq)
    (directive_strings par);
  Alcotest.(check bool)
    (name ^ ": identical tile vectors") true
    (seq.Pom.Dse.Stage2.tile_vectors = par.Pom.Dse.Stage2.tile_vectors);
  Alcotest.(check bool)
    (name ^ ": identical report") true
    (seq.Pom.Dse.Stage2.report = par.Pom.Dse.Stage2.report);
  Alcotest.(check int)
    (name ^ ": identical evaluation count")
    seq.Pom.Dse.Stage2.evaluations par.Pom.Dse.Stage2.evaluations;
  Alcotest.(check int)
    (name ^ ": identical pruning count")
    seq.Pom.Dse.Stage2.pruned par.Pom.Dse.Stage2.pruned

let test_engine_deterministic_gemm () =
  check_identical_design "gemm 512" (Polybench.gemm 512)

let test_engine_deterministic_bicg () =
  check_identical_design "bicg 512" (Polybench.bicg 512)

let test_scalehls_deterministic () =
  let func = Polybench.mm2 256 in
  let run jobs =
    let result = ref None in
    let _st, _records =
      Pom.Pipeline.Pass.run
        (Pom.Baselines.Scalehls.passes ~cache:(Memo.create ()) ~jobs
           ~on_result:(fun r -> result := Some r)
           ())
        (Pom.Pipeline.State.init ~composition:Pom.Hls.Resource.Dataflow
           ~latency_mode:`Sequential ~device:Pom.Hls.Device.xc7z020 func)
    in
    Option.get !result
  in
  let seq = run 1 and par = run 4 in
  Alcotest.(check bool)
    "identical report" true
    (seq.Pom.Baselines.Scalehls.report = par.Pom.Baselines.Scalehls.report);
  Alcotest.(check bool)
    "identical tile vectors" true
    (seq.Pom.Baselines.Scalehls.tile_vectors
    = par.Pom.Baselines.Scalehls.tile_vectors);
  Alcotest.(check int) "identical evaluation count"
    seq.Pom.Baselines.Scalehls.evaluations
    par.Pom.Baselines.Scalehls.evaluations

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "result ordering" `Quick test_map_ordering;
          Alcotest.test_case "empty and singleton" `Quick
            test_map_empty_and_singleton;
          Alcotest.test_case "size-1 pool" `Quick
            test_size_one_pool_is_sequential;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "nested use rejected" `Quick
            test_nested_use_rejected;
          Alcotest.test_case "filter_map ordering" `Quick
            test_filter_map_ordering;
          Alcotest.test_case "Par facade budget" `Quick test_par_facade_budget;
        ] );
      ( "memo",
        [
          Alcotest.test_case "single miss under concurrency" `Quick
            test_memo_single_miss_under_concurrency;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "engine gemm 512, jobs 1 = jobs 4" `Slow
            test_engine_deterministic_gemm;
          Alcotest.test_case "engine bicg 512, jobs 1 = jobs 4" `Slow
            test_engine_deterministic_bicg;
          Alcotest.test_case "scalehls 2mm 256, jobs 1 = jobs 4" `Slow
            test_scalehls_deterministic;
        ] );
    ]
