open Pom_poly

let v = Linexpr.var

let c = Linexpr.const

(* the box lo <= d < hi for each (d, lo, hi) *)
let box dims_bounds =
  Basic_set.make
    (List.map (fun (d, _, _) -> d) dims_bounds)
    (List.concat_map
       (fun (d, lo, hi) ->
         [ Constr.ge (v d) (c lo); Constr.le (v d) (c (hi - 1)) ])
       dims_bounds)

let test_make_validation () =
  Alcotest.check_raises "duplicate dims"
    (Invalid_argument "Basic_set: duplicate dimension i") (fun () ->
      ignore (Basic_set.make [ "i"; "i" ] []));
  Alcotest.check_raises "unknown dim in constraint"
    (Invalid_argument "Basic_set: constraint j >= 0 mentions unknown dim j")
    (fun () -> ignore (Basic_set.make [ "i" ] [ Constr.Ge (v "j") ]))

let test_membership () =
  let s = box [ ("i", 0, 4); ("j", 0, 4) ] in
  let env i j = function "i" -> i | "j" -> j | _ -> raise Not_found in
  Alcotest.(check bool) "inside" true (Basic_set.mem (env 2 3) s);
  Alcotest.(check bool) "outside" false (Basic_set.mem (env 4 0) s)

let test_intersect () =
  let a = box [ ("i", 0, 10) ] and b = box [ ("i", 5, 20) ] in
  let both = Basic_set.intersect a b in
  let env x = function "i" -> x | _ -> raise Not_found in
  Alcotest.(check bool) "in both" true (Basic_set.mem (env 7) both);
  Alcotest.(check bool) "only in a" false (Basic_set.mem (env 2) both)

let test_project_out_rectangular () =
  let s = box [ ("i", 0, 4); ("j", 2, 6) ] in
  let p = Basic_set.project_out "j" s in
  Alcotest.(check (list string)) "dims" [ "i" ] (Basic_set.dims p);
  Alcotest.(check (pair (option int) (option int))) "range preserved"
    (Some 0, Some 3)
    (Basic_set.const_range "i" p)

let test_project_out_equality () =
  (* { (i, j) : j = i + 1, 0 <= i <= 5 } projected onto j is 1 <= j <= 6 *)
  let s =
    Basic_set.make [ "i"; "j" ]
      [
        Constr.eq (v "j") (Linexpr.add (v "i") (c 1));
        Constr.ge (v "i") (c 0);
        Constr.le (v "i") (c 5);
      ]
  in
  let p = Basic_set.project_out "i" s in
  Alcotest.(check (pair (option int) (option int))) "j range" (Some 1, Some 6)
    (Basic_set.const_range "j" p)

let test_project_fm_combination () =
  (* { (i, j) : i + j <= 6, i >= j, j >= 1 } projected to j: 1 <= j <= 3 *)
  let s =
    Basic_set.make [ "i"; "j" ]
      [
        Constr.le (Linexpr.add (v "i") (v "j")) (c 6);
        Constr.ge (v "i") (v "j");
        Constr.ge (v "j") (c 1);
      ]
  in
  let p = Basic_set.project_out "i" s in
  Alcotest.(check (pair (option int) (option int))) "j range" (Some 1, Some 3)
    (Basic_set.const_range "j" p)

let test_change_space_strip_mine () =
  (* i = 4*o + r with 0 <= r < 4 over 0 <= i < 10: o in 0..2 *)
  let s = box [ ("i", 0, 10) ] in
  let t =
    Basic_set.change_space ~new_dims:[ "o"; "r" ]
      ~bindings:[ ("i", Linexpr.add (Linexpr.term 4 "o") (v "r")) ]
      ~extra:[ Constr.ge (v "r") (c 0); Constr.le (v "r") (c 3) ]
      s
  in
  Alcotest.(check (pair (option int) (option int))) "o range" (Some 0, Some 2)
    (Basic_set.const_range "o" t);
  Alcotest.(check int) "point count preserved" 10 (Feasible.count t)

let test_rename () =
  let s = box [ ("i", 0, 3) ] in
  let r = Basic_set.rename_dim "i" "x" s in
  Alcotest.(check (list string)) "renamed" [ "x" ] (Basic_set.dims r);
  Alcotest.check_raises "clash"
    (Invalid_argument "Basic_set.rename_dim: i already present") (fun () ->
      ignore (Basic_set.rename_dim "i" "i" (box [ ("i", 0, 3); ("j", 0, 3) ])
              |> Basic_set.rename_dim "j" "i"))

let test_simplify () =
  let s =
    Basic_set.make [ "i" ]
      [ Constr.Ge (c 5); Constr.ge (v "i") (c 0); Constr.ge (v "i") (c 0) ]
  in
  let s' = Basic_set.simplify s in
  Alcotest.(check int) "tautologies and duplicates dropped" 1
    (List.length (Basic_set.constraints s'))

let test_obviously_empty () =
  (* a contradictory constant window on one variable, no elimination needed *)
  let infeasible =
    Basic_set.make [ "i"; "j" ]
      [
        Constr.ge (v "i") (c 5);
        Constr.le (v "i") (c 3);
        Constr.ge (v "j") (c 0);
      ]
  in
  Alcotest.(check bool) "lb 5 > ub 3" true
    (Basic_set.is_obviously_empty infeasible);
  Alcotest.(check bool) "feasible box" false
    (Basic_set.is_obviously_empty (box [ ("i", 0, 4); ("j", 0, 4) ]));
  (* scaled bounds: 2i >= 7 and 3i <= 10 give the empty window 4..3 *)
  let scaled =
    Basic_set.make [ "i" ]
      [
        Constr.ge (Linexpr.term 2 "i") (c 7);
        Constr.le (Linexpr.term 3 "i") (c 10);
      ]
  in
  Alcotest.(check bool) "rounded scaled window" true
    (Basic_set.is_obviously_empty scaled);
  (* symbolic bounds are out of scope for the syntactic check even when the
     set is genuinely empty: that is Feasible's job *)
  let symbolic =
    Basic_set.make [ "i"; "n" ]
      [
        Constr.ge (v "i") (v "n");
        Constr.le (v "i") (c 3);
        Constr.ge (v "n") (c 5);
        Constr.le (v "n") (c 5);
      ]
  in
  Alcotest.(check bool) "symbolic window left to Feasible" false
    (Basic_set.is_obviously_empty symbolic);
  Alcotest.(check bool) "but Feasible proves it empty" true
    (Feasible.is_empty symbolic)

let test_bounds_of () =
  let s = box [ ("i", 2, 7); ("j", 0, 3) ] in
  let lowers, uppers, rest = Basic_set.bounds_of "i" s in
  Alcotest.(check int) "one lower" 1 (List.length lowers);
  Alcotest.(check int) "one upper" 1 (List.length uppers);
  Alcotest.(check int) "j bounds in rest" 2 (List.length rest);
  let cl, el = List.hd lowers in
  Alcotest.(check int) "lower coef" 1 cl;
  Alcotest.(check string) "lower expr" "2" (Linexpr.to_string el)

(* the random bounded sets come from the refutation engine's shared
   generator (Pom.Refute.Gen) — the same distribution the fuzzing driver
   uses, with its shrinker, instead of a private ad-hoc generator *)
module Rcase = Pom_refute.Case

let prop_projection_is_shadow =
  (* every point of the set maps into the projection, whichever dimension
     is eliminated *)
  QCheck.Test.make ~name:"projection contains all shadows" ~count:300
    (Pom_refute.Gen.arb_poly ())
    (fun pc ->
      let s = Rcase.set_of_poly pc in
      List.for_all
        (fun d ->
          let p = Basic_set.project_out d s in
          List.for_all
            (fun pt ->
              let env =
                let tbl = List.combine pc.Rcase.dims pt in
                fun x -> List.assoc x tbl
              in
              Basic_set.mem env p)
            (Feasible.enumerate s))
        pc.Rcase.dims)

let prop_elimination_order_invariant =
  (* Invariance under elimination order is conditional: each FM step
     tightens inequalities over the integers, so when a step eliminates a
     dimension with non-unit coefficients, different orders can produce
     different (both sound) over-approximations — the refutation engine
     found {3i + j - 3k + 1 >= 0, -i + 3k >= 0} over the [-1,1] box as a
     counterexample to the unconditional claim (see test/refute-corpus).
     What is guaranteed: project_onto agrees with the equally-ordered
     project_out chain, no true shadow point is ever lost by either
     order, and when every elimination step is exact (unit coefficient or
     unit-equality substitution) both orders agree exactly. *)
  QCheck.Test.make ~name:"projection invariant under elimination order"
    ~count:300
    (Pom_refute.Gen.arb_poly ())
    (fun pc ->
      match pc.Rcase.dims with
      | [] | [ _ ] -> true
      | keep :: elim ->
          let s = Rcase.set_of_poly pc in
          let step_exact d t =
            List.for_all
              (fun cns ->
                abs (Linexpr.coeff (Constr.expr cns) d) <= 1
                || (Constr.is_eq cns
                   && abs (Linexpr.coeff (Constr.expr cns) d) = 1))
              (Basic_set.constraints t)
            || List.exists
                 (fun cns ->
                   Constr.is_eq cns
                   && abs (Linexpr.coeff (Constr.expr cns) d) = 1)
                 (Basic_set.constraints t)
          in
          let chain order =
            List.fold_left
              (fun (t, exact) d ->
                (Basic_set.project_out d t, exact && step_exact d t))
              (s, true) order
          in
          let p1, exact1 = chain elim and p2, exact2 = chain (List.rev elim) in
          let p3 = Basic_set.project_onto [ keep ] s in
          let shadow =
            List.sort_uniq compare (List.map List.hd (Feasible.enumerate s))
          in
          List.for_all
            (fun x ->
              let env _ = x in
              let m1 = Basic_set.mem env p1
              and m2 = Basic_set.mem env p2
              and m3 = Basic_set.mem env p3
              and truth = List.mem x shadow in
              (* project_onto drops dims in the same order as p1 *)
              m3 = m1
              (* soundness: neither order loses a true shadow point *)
              && ((not truth) || (m1 && m2))
              (* exact chains agree with the ground truth, hence each other *)
              && ((not exact1) || m1 = truth)
              && ((not exact2) || m2 = truth))
            (List.init
               (pc.Rcase.hi - pc.Rcase.lo + 1)
               (fun i -> pc.Rcase.lo + i)))

let test_fix_dim () =
  let s = box [ ("i", 0, 4); ("j", 2, 6) ] in
  let fixed = Basic_set.fix_dim "j" 3 s in
  Alcotest.(check (list string)) "dim gone" [ "i" ] (Basic_set.dims fixed);
  let env x = function "i" -> x | _ -> raise Not_found in
  Alcotest.(check bool) "inside survives" true (Basic_set.mem (env 2) fixed);
  Alcotest.(check bool) "outside still out" false
    (Basic_set.mem (env 4) fixed);
  (* fixing outside the dim's range contradicts its bounds *)
  Alcotest.(check bool) "infeasible value empties the set" true
    (Basic_set.is_obviously_empty (Basic_set.fix_dim "j" 99 s));
  (* absent dimension: nothing to substitute, same set back *)
  Alcotest.(check bool) "absent dim is the identity" true
    (Basic_set.fix_dim "k" 5 s == s)

let test_fm_projection_stays_bounded () =
  (* Fourier–Motzkin is quadratic per elimination when every lower bound
     pairs with every upper bound, and repeated projection compounds it —
     unless the projection compacts its output.  A triangular chain with
     every constraint duplicated (self-intersection) plus slack bounds is
     the classic trigger; the constraint count must stay small and bounded
     after each elimination. *)
  let dims = [ "a"; "b"; "c"; "d"; "e"; "f" ] in
  let chain =
    let rec pairs = function
      | x :: (y :: _ as rest) -> Constr.le (v x) (v y) :: pairs rest
      | [ _ ] | [] -> []
    in
    (Constr.ge (v "a") (c 0) :: pairs dims)
    @ [ Constr.le (v "f") (c 40) ]
    (* slack bounds, strictly weaker than what the chain implies *)
    @ List.map (fun d -> Constr.ge (v d) (c (-5))) dims
    @ List.map (fun d -> Constr.le (v d) (c 100)) dims
  in
  let s = Basic_set.make dims chain in
  let s = Basic_set.intersect s s in
  let budget = 4 * List.length dims in
  let _ =
    List.fold_left
      (fun s d ->
        let p = Basic_set.project_out d s in
        let n = List.length (Basic_set.constraints p) in
        if n > budget then
          Alcotest.failf "projecting %s left %d constraints (budget %d)" d n
            budget;
        p)
      s [ "a"; "b"; "c"; "d"; "e" ]
  in
  ()

let test_fm_projection_cap () =
  (* the library-level cap bounds the constraints a single elimination may
     materialize; an absurdly low cap must trip it as a typed budget
     failure, and the previous cap must be restored afterwards *)
  let dims = [ "a"; "b"; "c"; "d"; "e"; "f" ] in
  let chain =
    let rec pairs = function
      | x :: (y :: _ as rest) -> Constr.le (v x) (v y) :: pairs rest
      | [ _ ] | [] -> []
    in
    (Constr.ge (v "a") (c 0) :: pairs dims)
    @ [ Constr.le (v "f") (c 40) ]
    @ List.map (fun d -> Constr.ge (v d) (c (-5))) dims
    @ List.map (fun d -> Constr.le (v d) (c 100)) dims
  in
  let s = Basic_set.make dims chain in
  let s = Basic_set.intersect s s in
  Alcotest.(check int)
    "default cap" Basic_set.default_projection_cap
    (Basic_set.projection_cap ());
  (match
     Basic_set.with_projection_cap 2 (fun () -> Basic_set.project_out "b" s)
   with
  | exception Pom_resilience.Budget.Budget_exceeded { site; _ } ->
      Alcotest.(check string) "site" "poly:fm-projection" site
  | _ -> Alcotest.fail "expected the projection cap to trip");
  Alcotest.(check int)
    "cap restored" Basic_set.default_projection_cap
    (Basic_set.projection_cap ());
  (* a generous cap admits the same projection untouched *)
  let p = Basic_set.with_projection_cap 10_000 (fun () -> Basic_set.project_out "b" s) in
  Alcotest.(check bool) "dim gone" false (List.mem "b" (Basic_set.dims p))

let () =
  Alcotest.run "basic_set"
    [
      ( "unit",
        [
          Alcotest.test_case "construction validation" `Quick test_make_validation;
          Alcotest.test_case "membership" `Quick test_membership;
          Alcotest.test_case "intersection" `Quick test_intersect;
          Alcotest.test_case "projection (rectangular)" `Quick
            test_project_out_rectangular;
          Alcotest.test_case "projection (via equality)" `Quick
            test_project_out_equality;
          Alcotest.test_case "projection (FM combination)" `Quick
            test_project_fm_combination;
          Alcotest.test_case "change of space (strip-mine)" `Quick
            test_change_space_strip_mine;
          Alcotest.test_case "rename" `Quick test_rename;
          Alcotest.test_case "simplify" `Quick test_simplify;
          Alcotest.test_case "obvious emptiness" `Quick test_obviously_empty;
          Alcotest.test_case "bounds extraction" `Quick test_bounds_of;
          Alcotest.test_case "fix_dim substitution" `Quick test_fix_dim;
          Alcotest.test_case "FM projection stays bounded" `Quick
            test_fm_projection_stays_bounded;
          Alcotest.test_case "FM projection cap" `Quick test_fm_projection_cap;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_projection_is_shadow; prop_elimination_order_invariant ] );
    ]
