open Pom_dsl
open Pom_cfront

let parse = Parse.parse_func

let test_lexer () =
  let toks = Lexer.tokenize "for (int i = 0; i < 32; i++) A[i] += 2.5f;" in
  Alcotest.(check int) "token count" 22 (List.length toks);
  Alcotest.(check bool) "float literal" true
    (List.exists
       (fun (l : Lexer.located) ->
         match l.Lexer.tok with Lexer.Float f -> f = 2.5 | _ -> false)
       toks);
  Alcotest.(check bool) "two-char punct" true
    (List.exists
       (fun (l : Lexer.located) -> l.Lexer.tok = Lexer.Punct "+=")
       toks)

let test_lexer_positions () =
  (* positions are 1-based and survive comments/newlines *)
  let toks = Lexer.tokenize "ab /* c */\n  xy" in
  match toks with
  | [ a; x; eof ] ->
      Alcotest.(check (pair int int)) "first token" (1, 1) (a.Lexer.line, a.Lexer.col);
      Alcotest.(check (pair int int)) "after comment+newline" (2, 3)
        (x.Lexer.line, x.Lexer.col);
      Alcotest.(check bool) "eof last" true (eof.Lexer.tok = Lexer.Eof)
  | _ -> Alcotest.fail "expected 3 tokens"

let test_lexer_comments_and_pragmas () =
  let toks =
    Lexer.tokenize
      "#include <x.h>\n// line\n/* block\n comment */ x #pragma HLS pipeline\n y"
  in
  Alcotest.(check int) "only idents + eof" 3 (List.length toks)

let test_lexer_error () =
  match Lexer.tokenize "a\nb @ c" with
  | exception Lexer.Lex_error { line; col; message } ->
      Alcotest.(check (pair int int)) "position" (2, 3) (line, col);
      Alcotest.(check string) "message" "unexpected character @" message
  | _ -> Alcotest.fail "expected a lex error"

let gemm_src =
  {|
    void gemm(float D[16][16], float A[16][16], float B[16][16]) {
      for (int i = 0; i < 16; i++)
        for (int j = 0; j < 16; j++)
          for (int k = 0; k < 16; k++)
            D[i][j] += A[i][k] * B[k][j];
    }
  |}

let test_parse_gemm () =
  let f = parse gemm_src in
  Alcotest.(check string) "name" "gemm" (Func.name f);
  Alcotest.(check int) "one compute" 1 (List.length (Func.computes f));
  let c = List.hd (Func.computes f) in
  Alcotest.(check (list string)) "iterators" [ "i"; "j"; "k" ]
    (Compute.iter_names c);
  Alcotest.(check string) "dest" "D" (Compute.array_written c);
  Alcotest.(check (list string)) "reads" [ "A"; "B"; "D" ]
    (Compute.arrays_read c);
  Alcotest.(check int) "trip count" 4096 (Compute.trip_count c)

let test_parsed_gemm_matches_builtin () =
  (* the parsed kernel and the DSL-built kernel compute identical values *)
  let from_c = parse gemm_src in
  let mem_c = Pom_sim.Memory.create (Func.placeholders from_c) in
  Pom_sim.Interp.run_reference from_c mem_c;
  let builtin = Pom_workloads.Polybench.gemm 16 in
  let mem_b = Pom_sim.Memory.create (Func.placeholders builtin) in
  Pom_sim.Interp.run_reference builtin mem_b;
  List.iter2
    (fun (_, x) (_, y) ->
      Alcotest.(check (float 1e-9)) "checksum matches" x y)
    (Pom_sim.Memory.checksums mem_c)
    (Pom_sim.Memory.checksums mem_b)

let test_fusion_structure () =
  let src =
    {|
      void two(float A[8][8], float x[8], float y[8]) {
        for (int i = 0; i < 8; i++) {
          for (int j = 0; j < 8; j++) {
            x[i] += A[i][j];
            y[j] += A[i][j];
          }
        }
      }
    |}
  in
  let f = parse src in
  Alcotest.(check int) "two computes" 2 (List.length (Func.computes f));
  let afters =
    List.filter_map
      (fun d ->
        match (d : Schedule.t) with
        | Schedule.After { level; _ } -> Some level
        | _ -> None)
      (Func.directives f)
  in
  Alcotest.(check (list int)) "fused at depth 2" [ 2 ] afters

let test_sequenced_loops_not_fused () =
  let src =
    {|
      void two(float x[8], float y[8]) {
        for (int i = 0; i < 8; i++)
          x[i] = x[i] * 2.0f;
        for (int i = 0; i < 8; i++)
          y[i] = y[i] + x[i];
      }
    |}
  in
  let f = parse src in
  Alcotest.(check int) "no fusion directives" 0
    (List.length (Func.directives f))

let test_triangular_bounds () =
  let src =
    {|
      void tri(float A[8][8]) {
        for (int i = 0; i < 8; i++)
          for (int k = i + 1; k < 8; k++)
            A[i][k] = A[i][k] * 0.5f;
      }
    |}
  in
  let f = parse src in
  let c = List.hd (Func.computes f) in
  Alcotest.(check bool) "where clause" true (c.Compute.where <> []);
  (* 28 strictly-upper-triangular points *)
  Alcotest.(check int) "triangular count" 28 (Compute.trip_count c)

let test_le_bound_and_offsets () =
  let src =
    {|
      void stencil(float A[10], float B[10]) {
        for (int i = 1; i <= 8; i++)
          B[i] = (A[i - 1] + A[i + 1]) / 2.0f;
      }
    |}
  in
  let f = parse src in
  let c = List.hd (Func.computes f) in
  let v = List.hd c.Compute.iters in
  Alcotest.(check (pair int int)) "inclusive bound" (1, 9) (v.Var.lb, v.Var.ub)

let test_int_kernel_dtype () =
  let src =
    {|
      void acc(int16_t A[8], int16_t B[8]) {
        for (int i = 0; i < 8; i++)
          A[i] += B[i];
      }
    |}
  in
  let f = parse src in
  let c = List.hd (Func.computes f) in
  Alcotest.(check bool) "int16 dest" true
    (Dtype.equal (fst c.Compute.dest).Placeholder.dtype Dtype.p_int16)

let expect_parse_error src =
  match parse src with
  | exception Parse.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected a parse error"

let test_parse_error_positions () =
  (* a structured error points into the offending source line *)
  match
    parse
      "void f(float A[8]) {\n\
      \  for (int i = 0; i < 8; i++)\n\
      \    B[i] = 1.0f;\n\
       }"
  with
  | exception Parse.Parse_error { line; col; token; message } ->
      Alcotest.(check int) "line" 3 line;
      Alcotest.(check bool) "column set" true (col >= 1);
      Alcotest.(check bool) "token set" true (token <> "");
      Alcotest.(check bool) "message set" true (message <> "")
  | _ -> Alcotest.fail "expected a parse error"

let test_rejections () =
  (* non-affine index *)
  expect_parse_error
    "void f(float A[8][8]) { for (int i = 0; i < 8; i++) A[i][i*i] = 1.0f; }";
  (* shadowed iterator *)
  expect_parse_error
    "void f(float A[8]) { for (int i = 0; i < 8; i++) for (int i = 0; i < 8; i++) A[i] = 1.0f; }";
  (* non-unit stride *)
  expect_parse_error
    "void f(float A[8]) { for (int i = 0; i < 8; i += 2) A[i] = 1.0f; }";
  (* scalar parameter *)
  expect_parse_error "void f(float a) { a = 1.0f; }";
  (* unknown array *)
  expect_parse_error
    "void f(float A[8]) { for (int i = 0; i < 8; i++) B[i] = 1.0f; }"

let kernel_dir =
  (* resolve against the executable so both `dune exec` (cwd = root) and
     `dune runtest` (cwd = build dir) find the sources *)
  Filename.concat
    (Filename.dirname Sys.executable_name)
    "../../../examples/kernels"

let test_example_files_compile_end_to_end () =
  List.iter
    (fun (path, expect_min_speedup) ->
      let path = Filename.concat kernel_dir path in
      let func = Parse.parse_file path in
      let c = Pom.compile ~framework:`Pom_auto func in
      Alcotest.(check bool)
        (path ^ " speedup")
        true
        (Pom.speedup c > expect_min_speedup);
      Alcotest.(check (float 0.0)) (path ^ " validates") 0.0
        (Pom.validate func c);
      Alcotest.(check (list pass)) (path ^ " legal") [] (Pom.check_legality func c))
    [
      ("gemm.c", 100.0);
      ("bicg.c", 100.0);
      ("trmm.c", 20.0);
      ("seidel.c", 10.0);
    ]

let () =
  Alcotest.run "cfront"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer;
          Alcotest.test_case "positions" `Quick test_lexer_positions;
          Alcotest.test_case "comments and pragmas" `Quick
            test_lexer_comments_and_pragmas;
          Alcotest.test_case "errors" `Quick test_lexer_error;
        ] );
      ( "parser",
        [
          Alcotest.test_case "gemm structure" `Quick test_parse_gemm;
          Alcotest.test_case "parsed = builtin semantics" `Quick
            test_parsed_gemm_matches_builtin;
          Alcotest.test_case "fusion structure" `Quick test_fusion_structure;
          Alcotest.test_case "sequenced loops" `Quick
            test_sequenced_loops_not_fused;
          Alcotest.test_case "triangular bounds" `Quick test_triangular_bounds;
          Alcotest.test_case "inclusive bounds and offsets" `Quick
            test_le_bound_and_offsets;
          Alcotest.test_case "integer kernels" `Quick test_int_kernel_dtype;
          Alcotest.test_case "rejections" `Quick test_rejections;
          Alcotest.test_case "error positions" `Quick
            test_parse_error_positions;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "example kernels through the DSE" `Slow
            test_example_files_compile_end_to_end;
        ] );
    ]
