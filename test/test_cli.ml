(* Exit-code contract of the pom_compile driver: 0 success, 1 usage errors,
   2 analyzer/legality failures.  The driver binary is a declared dune
   dependency, so the tests run against the freshly built executable. *)

(* the driver lives next to this test in the build tree, so resolve it from
   the test binary itself and stay independent of the runner's cwd *)
let exe =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "pom_compile.exe"))

let run args = Sys.command (exe ^ " " ^ args ^ " > /dev/null 2> /dev/null")

let test_success () =
  Alcotest.(check int) "clean manual compile" 0
    (run "-w gemm -s 32 -f pom-manual");
  Alcotest.(check int) "lint warnings alone do not fail the build" 0
    (run "-w gemm -s 32 -f pom-manual --schedule \"pipeline s k 1\" --lint")

let test_usage_errors () =
  Alcotest.(check int) "unknown workload" 1 (run "-w no-such-kernel");
  Alcotest.(check int) "unknown framework" 1 (run "-w gemm -f no-such-flow");
  Alcotest.(check int) "malformed schedule" 1
    (run "-w gemm -f pom-manual --schedule \"pipeline s\"")

(* Numeric options must be rejected up front with a clear usage error,
   never clamped or allowed to wedge a worker pool. *)
let test_bad_numeric_options () =
  Alcotest.(check int) "--jobs 0" 1 (run "-w gemm -j 0");
  Alcotest.(check int) "--jobs negative" 1 (run "-w gemm --jobs=-2");
  Alcotest.(check int) "--chunk 0" 1 (run "-w gemm --chunk=0");
  Alcotest.(check int) "--size negative" 1 (run "-w gemm --size=-5");
  Alcotest.(check int) "--deadline 0" 1 (run "-w gemm --deadline=0");
  Alcotest.(check int) "--deadline negative" 1 (run "-w gemm --deadline=-1.5");
  Alcotest.(check int) "--queue 0" 1 (run "--serve /tmp/unused.sock --queue=0");
  Alcotest.(check int) "--resource-fraction 0" 1
    (run "-w gemm --resource-fraction=0");
  (* retry knobs: zero or negative would mean "never try" / busy-loop *)
  Alcotest.(check int) "--retries 0" 1 (run "-w gemm --retries=0");
  Alcotest.(check int) "--retries negative" 1 (run "-w gemm --retries=-1");
  Alcotest.(check int) "--retry-backoff 0" 1 (run "-w gemm --retry-backoff=0");
  Alcotest.(check int) "--retry-backoff negative" 1
    (run "-w gemm --retry-backoff=-0.5")

let test_analysis_failures () =
  Alcotest.(check int) "--Werror promotes the analyzer warning" 2
    (run "-w gemm -s 32 -f pom-manual --schedule \"pipeline s k 1\" --Werror");
  Alcotest.(check int) "illegal schedule (reversed dependences)" 2
    (run "-w seidel -s 16 -f pom-manual --schedule \"interchange s t j\"")

let () =
  Alcotest.run "cli"
    [
      ( "exit-codes",
        [
          Alcotest.test_case "success" `Quick test_success;
          Alcotest.test_case "usage errors" `Quick test_usage_errors;
          Alcotest.test_case "bad numeric options" `Quick
            test_bad_numeric_options;
          Alcotest.test_case "analysis failures" `Quick test_analysis_failures;
        ] );
    ]
