(* The wire layer: codec round-trips (property-based and on real compiler
   types), golden-file format stability, frame CRC/truncation behaviour,
   journal version bumps, and the process-sharded worker pool — including
   the end-to-end guarantee that --jobs-mode procs compiles the identical
   design, with and without a working worker executable. *)

module W = Pom_wire.Wire
module Frame = Pom_wire.Frame
module Ckpt = Pom.Resilience.Checkpoint
module Sched = Pom.Dsl.Schedule
module Polybench = Pom.Workloads.Polybench

let roundtrip codec v = W.of_string_exn codec (W.to_string codec v)

(* -------- primitive round-trips -------- *)

let test_int_edges () =
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "int %d" n)
        n (roundtrip W.int n))
    [ 0; 1; -1; 63; 64; -64; -65; max_int; min_int; min_int + 1; 0x3fffffff ]

let test_float_edges () =
  List.iter
    (fun f ->
      let f' = roundtrip W.float f in
      Alcotest.(check bool)
        (Printf.sprintf "float %h bits preserved" f)
        true
        (Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float f')))
    [ 0.0; -0.0; 1.5; -3.25e300; infinity; neg_infinity; nan; epsilon_float ]

let prop_int =
  QCheck.Test.make ~name:"any int round-trips" ~count:500 QCheck.int (fun n ->
      roundtrip W.int n = n)

let prop_string =
  QCheck.Test.make ~name:"any string round-trips" ~count:200
    QCheck.(string_gen QCheck.Gen.char)
    (fun s -> roundtrip W.string s = s)

let prop_composite =
  let codec = W.list (W.pair W.string (W.option (W.list W.int))) in
  QCheck.Test.make ~name:"composite round-trips" ~count:200
    QCheck.(small_list (pair small_string (option (small_list int))))
    (fun v -> roundtrip codec v = v)

(* decoding arbitrary bytes must never raise out of [of_string], and on
   success must consume the whole buffer (strictness) *)
let prop_never_raises =
  let codec = W.list (W.pair W.string (W.list W.int)) in
  QCheck.Test.make ~name:"of_string never raises on garbage" ~count:500
    QCheck.(string_gen QCheck.Gen.char)
    (fun s ->
      match W.of_string codec s with
      | Ok v -> W.to_string codec v = s
      | Error (W.Corrupt _) -> true
      | Error _ -> false)

(* -------- real compiler types -------- *)

let sample_directives =
  [
    Sched.interchange "s" "i" "j";
    Sched.split "s" "k" 8 "ko" "ki";
    Sched.pipeline "s" "ki" 1;
    Sched.unroll "s" "j" 4;
    Sched.reverse "s" "k" "kr";
    Sched.partition "A" [ 4; 4 ] Sched.Cyclic;
    Sched.partition "B" [ 2 ] Sched.Block;
    Sched.partition "C" [ 1 ] Sched.Complete;
  ]

let pp_dirs = List.map (Format.asprintf "%a" Sched.pp)

let test_directives_roundtrip () =
  let codec = W.list Pom_dsl.Wirec.schedule in
  Alcotest.(check (list string))
    "directive list survives the wire"
    (pp_dirs sample_directives)
    (pp_dirs (roundtrip codec sample_directives))

let test_report_roundtrip () =
  let func = Polybench.gemm 32 in
  let prog = Pom.Polyir.Prog.of_func func in
  let report =
    Pom.Hls.Report.synthesize ~device:Pom.Hls.Device.xc7z020 prog
  in
  Alcotest.(check bool)
    "synthesis report survives the wire" true
    (roundtrip Pom_hls.Wirec.report report = report)

(* [Basic_set] carries a mutable simplification flag, so decoded progs are
   compared by re-encoding, not by (=) *)
let test_prog_reencode_stable () =
  let prog = Pom.Polyir.Prog.of_func (Polybench.gemm 16) in
  let bytes = W.to_string Pom_polyir.Wirec.prog prog in
  let bytes' =
    W.to_string Pom_polyir.Wirec.prog
      (W.of_string_exn Pom_polyir.Wirec.prog bytes)
  in
  Alcotest.(check string) "decode/encode is byte-stable" bytes bytes'

(* -------- golden files: the format itself is the contract -------- *)

(* Each fixture is the committed encoding of a fixed value.  If a codec
   change breaks one of these, that is a wire-format break: bump the
   relevant stream's schema version and re-bless with POM_WIRE_BLESS=<dir>
   pointing at the source test/golden directory. *)

let golden_ints = List.init 20 (fun i -> (i * 37) - 300) @ [ max_int; min_int ]
let golden_ints_codec = W.list W.int
let golden_dirs_codec = W.list Pom_dsl.Wirec.schedule

let golden_header =
  Frame.header_to_string { Frame.kind = "pom-golden"; version = 7 }

let goldens () =
  [
    ("ints.wire", W.to_string golden_ints_codec golden_ints);
    ("directives.wire", W.to_string golden_dirs_codec sample_directives);
    ("header.wire", golden_header);
  ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_golden () =
  match Sys.getenv_opt "POM_WIRE_BLESS" with
  | Some dir when dir <> "" ->
      List.iter
        (fun (name, bytes) ->
          let oc = open_out_bin (Filename.concat dir name) in
          output_string oc bytes;
          close_out oc;
          Printf.printf "blessed %s (%d bytes)\n" name (String.length bytes))
        (goldens ())
  | _ ->
      List.iter
        (fun (name, bytes) ->
          Alcotest.(check string)
            (name ^ " matches the committed fixture")
            (read_file (Filename.concat "golden" name))
            bytes)
        (goldens ())

(* -------- frame-level corruption -------- *)

let with_temp_bytes bytes f =
  let path = Filename.temp_file "pom_wire" ".bin" in
  let oc = open_out_bin path in
  output_string oc bytes;
  close_out oc;
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_frame_crc_detects_flip () =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (Frame.header_to_string { Frame.kind = "t"; version = 1 });
  let header_len = Buffer.length buf in
  Frame.add_record buf ~tag:1 "payload-bytes";
  let bytes = Bytes.of_string (Buffer.contents buf) in
  (* flip one payload byte, leaving the CRC as written *)
  let i = header_len + 3 in
  Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor 0x40));
  with_temp_bytes (Bytes.to_string bytes) (fun path ->
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let _ = Frame.input_header ~what:"t" ic in
          match Frame.input_record ~what:"t" ic with
          | exception W.Corrupt _ -> ()
          | Some _ -> Alcotest.fail "bit flip not caught by CRC"
          | None -> Alcotest.fail "flipped record read as clean EOF"))

(* a valid journal to corrupt: header + 3 records *)
let journal_bytes () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Frame.header_to_string { Frame.kind = Ckpt.kind; version = Ckpt.version });
  let kv = W.pair W.string W.string in
  List.iter
    (fun (k, v) -> Frame.add_record buf ~tag:1 (W.to_string kv (k, v)))
    [ ("k1", "d1"); ("k2", "d2"); ("k3", "d3") ];
  Buffer.contents buf

let load_records bytes =
  with_temp_bytes bytes (fun path ->
      let j, records, notes = Ckpt.load path in
      Ckpt.close j;
      (records, notes))

let all_records = [ ("k1", "d1"); ("k2", "d2"); ("k3", "d3") ]

let is_prefix records =
  let rec go = function
    | [], _ -> true
    | _, [] -> false
    | r :: rs, a :: alls -> r = a && go (rs, alls)
  in
  go (records, all_records)

let test_journal_truncation_fuzz () =
  let bytes = journal_bytes () in
  for len = 0 to String.length bytes do
    let records, _ = load_records (String.sub bytes 0 len) in
    if not (is_prefix records) then
      Alcotest.fail
        (Printf.sprintf "prefix of %d bytes replayed non-prefix records" len)
  done

let test_journal_bitflip_fuzz () =
  let bytes = journal_bytes () in
  for i = 0 to String.length bytes - 1 do
    let b = Bytes.of_string bytes in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
    let records, _ = load_records (Bytes.to_string b) in
    (* a flip anywhere may cost records (even all of them, when it hits
       the header) but never invents or reorders them *)
    if not (is_prefix records) then
      Alcotest.fail
        (Printf.sprintf "flip at byte %d replayed non-prefix records" i)
  done

let test_journal_version_bump () =
  let buf = Buffer.create 64 in
  Buffer.add_string buf
    (Frame.header_to_string
       { Frame.kind = Ckpt.kind; version = Ckpt.version + 1 });
  Frame.add_record buf ~tag:1
    (W.to_string (W.pair W.string W.string) ("k", "d"));
  let records, notes = load_records (Buffer.contents buf) in
  Alcotest.(check int) "newer journal restarts empty" 0 (List.length records);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "restart carries a POM309 note" true
    (List.exists (fun n -> contains n "POM309") notes)

let test_journal_unknown_tag_skipped () =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Frame.header_to_string { Frame.kind = Ckpt.kind; version = Ckpt.version });
  let kv = W.pair W.string W.string in
  Frame.add_record buf ~tag:1 (W.to_string kv ("k1", "d1"));
  Frame.add_record buf ~tag:99 "from-a-newer-writer";
  Frame.add_record buf ~tag:1 (W.to_string kv ("k2", "d2"));
  with_temp_bytes (Buffer.contents buf) (fun path ->
      let size0 = (Unix.stat path).Unix.st_size in
      let j, records, notes = Ckpt.load path in
      Ckpt.close j;
      Alcotest.(check (list (pair string string)))
        "known records replay around the unknown tag"
        [ ("k1", "d1"); ("k2", "d2") ]
        records;
      Alcotest.(check (list string)) "skipping is not a degradation" [] notes;
      Alcotest.(check int)
        "the unknown record is preserved, not truncated" size0
        (Unix.stat path).Unix.st_size)

(* -------- the worker pool -------- *)

let test_workpool_roundtrip () =
  let func = Polybench.gemm 16 in
  let pool =
    (* default_exe resolves ../bin/pom_compile.exe next to this test
       executable, regardless of the caller's working directory *)
    Pom.Dse.Workpool.create ~exe:(Pom.Dse.Workpool.default_exe ()) ~jobs:2
      ~func
      ~device:Pom.Hls.Device.xc7z020 ~composition:Pom.Hls.Resource.Reuse
      ~latency_mode:`Sequential ~base:[] ()
  in
  Fun.protect
    ~finally:(fun () -> Pom.Dse.Workpool.shutdown pool)
    (fun () ->
      let results =
        Pom.Dse.Workpool.eval pool
          [ []; [ Sched.pipeline "s" "k" 1 ]; [ Sched.unroll "s" "j" 2 ] ]
      in
      Alcotest.(check bool)
        "workers evaluate design points" true
        (List.length results >= 1);
      List.iter
        (fun (key, (_, report)) ->
          Alcotest.(check bool) "memo key is non-empty" true (key <> "");
          Alcotest.(check bool)
            "report has a latency" true
            (report.Pom.Hls.Report.latency > 0))
        results)

let directive_strings (o : Pom.Dse.Engine.outcome) =
  pp_dirs o.Pom.Dse.Engine.result.Pom.Dse.Stage2.directives

let run_dse ~jobs func =
  Pom.Dse.Engine.run ~cache:(Pom.Pipeline.Memo.create ()) ~jobs func

let check_same_design what a b =
  Alcotest.(check (list string))
    (what ^ ": directives") (directive_strings a) (directive_strings b);
  Alcotest.(check bool)
    (what ^ ": report") true
    (a.Pom.Dse.Engine.result.Pom.Dse.Stage2.report
    = b.Pom.Dse.Engine.result.Pom.Dse.Stage2.report)

let test_procs_identical_design () =
  let build () = Polybench.gemm 64 in
  let seq = run_dse ~jobs:1 (build ()) in
  let par =
    Pom.Par.with_mode Pom.Par.Procs (fun () -> run_dse ~jobs:3 (build ()))
  in
  check_same_design "procs vs sequential" seq par

let test_procs_degrades_without_worker_exe () =
  (* a bogus worker executable must cost only the speculative warm-up:
     the search falls back to in-process evaluation, same design *)
  Unix.putenv "POM_WORKER_EXE" "/nonexistent/pom-worker";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "POM_WORKER_EXE" "")
    (fun () ->
      let build () = Polybench.bicg 64 in
      let seq = run_dse ~jobs:1 (build ()) in
      let par =
        Pom.Par.with_mode Pom.Par.Procs (fun () -> run_dse ~jobs:3 (build ()))
      in
      check_same_design "degraded procs vs sequential" seq par)

let () =
  Alcotest.run "wire"
    [
      ( "primitives",
        [
          Alcotest.test_case "int edge cases" `Quick test_int_edges;
          Alcotest.test_case "float edge cases" `Quick test_float_edges;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_int; prop_string; prop_composite; prop_never_raises ] );
      ( "compiler types",
        [
          Alcotest.test_case "directives" `Quick test_directives_roundtrip;
          Alcotest.test_case "report" `Quick test_report_roundtrip;
          Alcotest.test_case "prog re-encode" `Quick test_prog_reencode_stable;
        ] );
      ("golden", [ Alcotest.test_case "fixtures" `Quick test_golden ]);
      ( "corruption",
        [
          Alcotest.test_case "CRC catches bit flips" `Quick
            test_frame_crc_detects_flip;
          Alcotest.test_case "truncation fuzz" `Quick
            test_journal_truncation_fuzz;
          Alcotest.test_case "bit-flip fuzz" `Quick test_journal_bitflip_fuzz;
          Alcotest.test_case "version bump rejected" `Quick
            test_journal_version_bump;
          Alcotest.test_case "unknown tags skipped" `Quick
            test_journal_unknown_tag_skipped;
        ] );
      ( "procs",
        [
          Alcotest.test_case "workpool round-trip" `Quick
            test_workpool_roundtrip;
          Alcotest.test_case "identical design" `Slow
            test_procs_identical_design;
          Alcotest.test_case "degrades without worker exe" `Slow
            test_procs_degrades_without_worker_exe;
        ] );
    ]
