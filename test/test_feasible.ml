open Pom_poly

let v = Linexpr.var

let c = Linexpr.const

let box dims_bounds =
  Basic_set.make
    (List.map (fun (d, _, _) -> d) dims_bounds)
    (List.concat_map
       (fun (d, lo, hi) ->
         [ Constr.ge (v d) (c lo); Constr.le (v d) (c (hi - 1)) ])
       dims_bounds)

let test_emptiness_basic () =
  Alcotest.(check bool) "box non-empty" false (Feasible.is_empty (box [ ("i", 0, 4) ]));
  let empty =
    Basic_set.make [ "i" ] [ Constr.ge (v "i") (c 5); Constr.le (v "i") (c 2) ]
  in
  Alcotest.(check bool) "contradictory bounds" true (Feasible.is_empty empty)

let test_emptiness_gcd () =
  (* 2i = 1 has no integer solution *)
  let s =
    Basic_set.make [ "i" ]
      [ Constr.Eq (Linexpr.add (Linexpr.term 2 "i") (c (-1))) ]
  in
  Alcotest.(check bool) "parity equality empty" true (Feasible.is_empty s)

let test_emptiness_needs_combination () =
  (* i + j >= 5 and i <= 1 and j <= 1: empty only after combining *)
  let s =
    Basic_set.make [ "i"; "j" ]
      [
        Constr.ge (Linexpr.add (v "i") (v "j")) (c 5);
        Constr.le (v "i") (c 1);
        Constr.le (v "j") (c 1);
      ]
  in
  Alcotest.(check bool) "combined emptiness" true (Feasible.is_empty s)

let test_enumerate () =
  let s = box [ ("i", 0, 2); ("j", 0, 3) ] in
  Alcotest.(check (list (list int))) "lexicographic enumeration"
    [ [ 0; 0 ]; [ 0; 1 ]; [ 0; 2 ]; [ 1; 0 ]; [ 1; 1 ]; [ 1; 2 ] ]
    (Feasible.enumerate s);
  Alcotest.(check int) "count" 6 (Feasible.count s)

let test_enumerate_triangle () =
  (* j <= i over 0 <= i < 3 *)
  let s =
    Basic_set.add_constraint (Constr.le (v "j") (v "i")) (box [ ("i", 0, 3); ("j", 0, 3) ])
  in
  Alcotest.(check int) "triangular count" 6 (Feasible.count s)

let test_sample () =
  let s = box [ ("i", 3, 5) ] in
  Alcotest.(check (option (list int))) "first point" (Some [ 3 ]) (Feasible.sample s);
  let e = Basic_set.make [ "i" ] [ Constr.ge (v "i") (c 1); Constr.le (v "i") (c 0) ] in
  Alcotest.(check (option (list int))) "empty sample" None (Feasible.sample e)

let test_min_max () =
  let s = box [ ("i", 2, 7); ("j", 1, 4) ] in
  let obj = Linexpr.add (v "i") (Linexpr.term 2 "j") in
  Alcotest.(check (option int)) "min" (Some 4) (Feasible.min_of obj s);
  Alcotest.(check (option int)) "max" (Some 12) (Feasible.max_of obj s)

let test_min_max_empty () =
  let e = Basic_set.make [ "i" ] [ Constr.ge (v "i") (c 1); Constr.le (v "i") (c 0) ] in
  Alcotest.(check (option int)) "min of empty" None (Feasible.min_of (v "i") e)

(* random small polyhedra come from the refutation engine's shared
   generator — one distribution (and one shrinker) serves this suite,
   test_basic_set, and the pom_refute fuzzing driver *)
module Rcase = Pom_refute.Case

let env_of dims pt =
  let tbl = List.combine dims pt in
  fun x -> List.assoc x tbl

let brute_force_empty pc s =
  not
    (List.exists
       (fun pt -> Basic_set.mem (env_of pc.Rcase.dims pt) s)
       (Rcase.box_points pc))

let prop_emptiness_exact =
  QCheck.Test.make ~name:"is_empty agrees with brute force" ~count:500
    (Pom_refute.Gen.arb_poly ())
    (fun pc ->
      let s = Rcase.set_of_poly pc in
      Feasible.is_empty s = brute_force_empty pc s)

let prop_min_is_attained =
  QCheck.Test.make ~name:"min_of is attained and minimal" ~count:300
    (Pom_refute.Gen.arb_poly ())
    (fun pc ->
      let s = Rcase.set_of_poly pc in
      let obj =
        match pc.Rcase.dims with
        | [ d ] -> v d
        | d :: d' :: _ -> Linexpr.add (v d) (Linexpr.term (-2) d')
        | [] -> assert false
      in
      match Feasible.min_of obj s with
      | None -> Feasible.is_empty s
      | Some m ->
          let values =
            List.map
              (fun pt -> Linexpr.eval (env_of pc.Rcase.dims pt) obj)
              (Feasible.enumerate s)
          in
          (* projection bound is sound (<= all values); exact on this
             unit-coefficient objective *)
          values <> [] && List.for_all (fun x -> m <= x) values)

let () =
  Alcotest.run "feasible"
    [
      ( "unit",
        [
          Alcotest.test_case "basic emptiness" `Quick test_emptiness_basic;
          Alcotest.test_case "GCD emptiness" `Quick test_emptiness_gcd;
          Alcotest.test_case "combined emptiness" `Quick
            test_emptiness_needs_combination;
          Alcotest.test_case "enumeration" `Quick test_enumerate;
          Alcotest.test_case "triangular enumeration" `Quick test_enumerate_triangle;
          Alcotest.test_case "sampling" `Quick test_sample;
          Alcotest.test_case "optimization" `Quick test_min_max;
          Alcotest.test_case "optimization over empty" `Quick test_min_max_empty;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_emptiness_exact; prop_min_is_attained ] );
    ]
