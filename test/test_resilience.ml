(* The resilience layer: cooperative budgets, typed failures and per-pass
   degradation, crash-safe DSE checkpointing, the hardened worker pool, and
   the deterministic fault-injection knob that exercises all of it. *)

module R = Pom_resilience
module Memo = Pom_pipeline.Memo
module Polybench = Pom_workloads.Polybench

let with_faults spec f =
  R.Fault.configure spec;
  Fun.protect ~finally:R.Fault.reset f

(* -------- budgets -------- *)

let test_budget_ticks () =
  Alcotest.(check bool) "no ambient budget" false (R.Budget.active ());
  (match
     R.Budget.with_budget ~max_ticks:10 (fun () ->
         for _ = 1 to 20 do
           R.Budget.tick "test:loop"
         done)
   with
  | exception R.Budget.Budget_exceeded { site; _ } ->
      Alcotest.(check string) "site" "test:loop" site
  | () -> Alcotest.fail "expected the tick cap to trip");
  Alcotest.(check bool) "budget restored" false (R.Budget.active ())

let test_budget_deadline () =
  match
    R.Budget.with_budget ~deadline_s:0.0 (fun () ->
        Unix.sleepf 0.002;
        R.Budget.check "test:deadline")
  with
  | exception R.Budget.Budget_exceeded { site; _ } ->
      Alcotest.(check string) "site" "test:deadline" site
  | () -> Alcotest.fail "expected the deadline to trip"

let test_budget_noop_without_install () =
  (* without a budget every check is free and silent *)
  R.Budget.check "test:none";
  R.Budget.tick ~cost:1_000_000 "test:none"

let test_budget_cancel () =
  (* an external cancel poll trips a checkpoint exactly like a deadline *)
  let cancelled = Atomic.make false in
  (match
     R.Budget.with_budget
       ~cancel:(fun () -> Atomic.get cancelled)
       (fun () ->
         R.Budget.check "test:cancel";
         Atomic.set cancelled true;
         R.Budget.check "test:cancel")
   with
  | exception R.Budget.Budget_exceeded { site; reason } ->
      Alcotest.(check string) "site" "test:cancel" site;
      Alcotest.(check string) "reason" "request cancelled" reason
  | () -> Alcotest.fail "expected cancellation to trip the budget");
  (* a poll that raises is treated as not-cancelled, never as a crash *)
  R.Budget.with_budget
    ~cancel:(fun () -> failwith "poll blew up")
    (fun () -> R.Budget.check "test:cancel-raise")

(* -------- policy -------- *)

let test_policy_parse () =
  Alcotest.(check bool) "abort" true
    (R.Policy.of_string "abort" = Ok R.Policy.Abort);
  Alcotest.(check bool) "degrade" true
    (R.Policy.of_string "degrade" = Ok R.Policy.Degrade);
  Alcotest.(check bool) "junk rejected" true
    (match R.Policy.of_string "explode" with Error _ -> true | Ok _ -> false);
  R.Policy.with_policy R.Policy.Degrade (fun () ->
      Alcotest.(check bool) "degrading inside" true (R.Policy.degrading ()));
  Alcotest.(check bool) "restored outside" false (R.Policy.degrading ())

(* -------- fault injection -------- *)

let test_fault_spec () =
  with_faults "test:site=fail@2" (fun () ->
      R.Fault.point "test:site";
      R.Fault.point "test:other";
      match R.Fault.point "test:site" with
      | exception R.Fault.Injected site ->
          Alcotest.(check string) "second visit fires" "test:site" site
      | () -> Alcotest.fail "expected the injected failure");
  Alcotest.(check bool) "reset disarms" false (R.Fault.enabled ());
  Alcotest.(check bool) "malformed spec rejected" true
    (match R.Fault.configure "nonsense" with
    | exception Invalid_argument _ -> true
    | () ->
        R.Fault.reset ();
        false)

let test_fault_kinds () =
  with_faults "a=timeout@1,b=kill@1" (fun () ->
      (match R.Fault.point "a" with
      | exception R.Budget.Budget_exceeded _ -> ()
      | () -> Alcotest.fail "timeout kind should raise Budget_exceeded");
      match R.Fault.point "b" with
      | exception R.Fault.Killed "b" -> ()
      | _ -> Alcotest.fail "kill kind should raise Killed")

(* -------- checkpoint journal -------- *)

let test_checkpoint_roundtrip () =
  let path = Filename.temp_file "pom_ckpt" ".jrnl" in
  Sys.remove path;
  let j, recs, _ = R.Checkpoint.load path in
  Alcotest.(check int) "fresh journal empty" 0 (List.length recs);
  R.Checkpoint.append j ~key:"k1" ~data:"d1";
  R.Checkpoint.append j ~key:"k2" ~data:"d2";
  R.Checkpoint.close j;
  let j2, recs2, notes2 = R.Checkpoint.load path in
  R.Checkpoint.close j2;
  Alcotest.(check (list (pair string string)))
    "records replay in order"
    [ ("k1", "d1"); ("k2", "d2") ]
    recs2;
  Alcotest.(check (list string)) "clean reload carries no notes" [] notes2;
  (* a crash mid-append leaves a torn tail: it must be truncated away and
     the journal must keep accepting appends afterwards *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "torn";
  close_out oc;
  let j3, recs3, notes3 = R.Checkpoint.load path in
  Alcotest.(check int) "torn tail dropped" 2 (List.length recs3);
  Alcotest.(check bool) "truncation is reported" true (notes3 <> []);
  R.Checkpoint.append j3 ~key:"k3" ~data:"d3";
  R.Checkpoint.close j3;
  let j4, recs4, _ = R.Checkpoint.load path in
  R.Checkpoint.close j4;
  Alcotest.(check int) "extends cleanly after recovery" 3 (List.length recs4);
  (* an unrecognized header is restarted empty, not trusted *)
  let oc = open_out_bin path in
  output_string oc "NOTAJRNL\nwhatever";
  close_out oc;
  let j5, recs5, _ = R.Checkpoint.load path in
  R.Checkpoint.close j5;
  Alcotest.(check int) "bad magic restarts empty" 0 (List.length recs5);
  Sys.remove path

let test_checkpoint_fsync_each () =
  (* fsync_each is a durability knob, not a behaviour change: records
     written under it replay identically *)
  let path = Filename.temp_file "pom_ckpt_sync" ".jrnl" in
  Sys.remove path;
  let j, _, _ = R.Checkpoint.load ~fsync_each:true path in
  R.Checkpoint.append j ~key:"k1" ~data:"d1";
  R.Checkpoint.append j ~key:"k2" ~data:"d2";
  R.Checkpoint.close j;
  let j2, recs2, notes2 = R.Checkpoint.load path in
  R.Checkpoint.close j2;
  Alcotest.(check (list (pair string string)))
    "synced records replay" [ ("k1", "d1"); ("k2", "d2") ] recs2;
  Alcotest.(check (list string)) "no degradation notes" [] notes2;
  Sys.remove path

(* -------- memo in-flight claim reclaim -------- *)

let test_memo_claim_reclaim () =
  let cache = Memo.create ~reclaim_after:0.05 () in
  let func = Polybench.gemm 16 in
  let device = Pom_hls.Device.xc7z020 in
  (* leak an in-flight claim: the compute fails AND the owner "dies" before
     withdrawing (the fault skips the withdrawal, as a killed domain would) *)
  with_faults "memo:withdraw-skip=fail@1" (fun () ->
      match
        Memo.synthesize cache ~device ~directives:[] func (fun () ->
            failwith "boom")
      with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "expected the compute to fail");
  (* after reclaim_after the stale claim is presumed dead and taken over *)
  Unix.sleepf 0.06;
  let _, report =
    Memo.synthesize cache ~device ~directives:[] func (fun () ->
        Pom_polyir.Prog.of_func_unscheduled func)
  in
  Alcotest.(check bool) "stale claim reclaimed, value computed" true
    (report.Pom_hls.Report.latency > 0)

(* -------- hardened worker pool -------- *)

let test_pool_worker_killed () =
  with_faults "pool:task=kill@1" (fun () ->
      Pom_par.Par.with_jobs 2 (fun () ->
          (match Pom_par.Par.map (fun x -> x + 1) [ 1; 2; 3 ] with
          | exception R.Error.Error e ->
              Alcotest.(check string) "typed worker death" "POM305"
                e.R.Error.code
          | _ -> Alcotest.fail "expected a POM305 error");
          (* the pool survives the death: the next map still runs *)
          Alcotest.(check (list int))
            "pool alive afterwards" [ 2; 3; 4 ]
            (Pom_par.Par.map (fun x -> x + 1) [ 1; 2; 3 ])))

(* -------- per-pass degradation matrix -------- *)

(* Inject a failure into each pass of the `Baseline flow in turn.  Under
   --on-error degrade a skippable pass becomes a POM300 warning diagnostic
   and the compile still delivers; a required pass (one that produces the
   artifact) aborts with the typed error under either policy. *)
let skippable_passes =
  [ "structural-directives"; "legality-check"; "lint-pragmas"; "verify-ir" ]

let required_passes =
  [
    "schedule-apply";
    "hls-synthesize";
    "affine-lower";
    "affine-simplify";
    "emit-hls-c";
  ]

let test_fault_matrix_degrade () =
  List.iter
    (fun name ->
      with_faults
        (Printf.sprintf "pass:%s=fail@1" name)
        (fun () ->
          let c =
            Pom.compile ~framework:`Baseline ~on_error:R.Policy.Degrade
              (Polybench.gemm 16)
          in
          Alcotest.(check bool)
            (name ^ " degraded to a POM300 diagnostic")
            true
            (List.exists
               (fun (d : Pom_analysis.Diagnostic.t) ->
                 d.Pom_analysis.Diagnostic.code = "POM300"
                 && (match d.Pom_analysis.Diagnostic.loc with
                    | p :: _ -> p = name
                    | [] -> false))
               c.Pom.diags)))
    skippable_passes;
  List.iter
    (fun name ->
      with_faults
        (Printf.sprintf "pass:%s=fail@1" name)
        (fun () ->
          match
            Pom.compile ~framework:`Baseline ~on_error:R.Policy.Degrade
              (Polybench.gemm 16)
          with
          | exception R.Error.Error e ->
              Alcotest.(check string)
                (name ^ " aborts even when degrading")
                "POM300" e.R.Error.code
          | _ -> Alcotest.failf "required pass %s must not be skipped" name))
    required_passes

let test_fault_matrix_abort_policy () =
  (* the default policy turns any guarded failure into the typed error *)
  with_faults "pass:lint-pragmas=fail@1" (fun () ->
      match Pom.compile ~framework:`Baseline (Polybench.gemm 16) with
      | exception R.Error.Error e ->
          Alcotest.(check string) "POM300 under abort" "POM300" e.R.Error.code;
          Alcotest.(check (option string))
            "failing pass recorded"
            (Some "lint-pragmas") e.R.Error.pass
      | _ -> Alcotest.fail "expected the typed abort")

let test_fault_timeout_degrades_to_pom301 () =
  with_faults "pass:legality-check=timeout@1" (fun () ->
      let c =
        Pom.compile ~framework:`Baseline ~on_error:R.Policy.Degrade
          (Polybench.gemm 16)
      in
      Alcotest.(check bool) "timeout surfaces as POM301" true
        (List.exists
           (fun (d : Pom_analysis.Diagnostic.t) ->
             d.Pom_analysis.Diagnostic.code = "POM301")
           c.Pom.diags))

let test_fault_kill_is_never_absorbed () =
  with_faults "pass:lint-pragmas=kill@1" (fun () ->
      match
        Pom.compile ~framework:`Baseline ~on_error:R.Policy.Degrade
          (Polybench.gemm 16)
      with
      | exception R.Fault.Killed _ -> ()
      | _ -> Alcotest.fail "a kill must unwind even under degrade")

(* -------- deadline acceptance -------- *)

let test_deadline_aborts_cleanly () =
  (* an effectively-zero deadline on a large kernel: the compile must exit
     with the typed budget diagnostic, not hang or crash *)
  match
    Pom.compile ~framework:`Pom_auto ~jobs:1 ~deadline_s:1e-4
      (Polybench.gemm 256)
  with
  | exception R.Error.Error e ->
      Alcotest.(check string) "typed budget abort" "POM301" e.R.Error.code
  | exception R.Budget.Budget_exceeded _ -> ()
  | _ -> Alcotest.fail "expected the deadline to abort the compile"

(* -------- checkpoint kill-and-resume acceptance -------- *)

let test_checkpoint_kill_and_resume () =
  let module Engine = Pom_dse.Engine in
  let func = Polybench.gemm 32 in
  (* ground truth: one uninterrupted search on a cold private cache *)
  let full = (Engine.run ~cache:(Memo.create ()) ~jobs:1 func).Engine.result in
  Alcotest.(check bool) "search long enough to kill mid-way" true
    (full.Pom_dse.Stage2.evaluations > 4);
  let path = Filename.temp_file "pom_dse" ".jrnl" in
  Sys.remove path;
  (* the same search, checkpointed, killed on its 4th sequential
     evaluation — simulating the process dying mid-DSE *)
  R.Fault.configure "dse:evaluate=kill@4";
  (match Engine.run ~cache:(Memo.create ()) ~jobs:1 ~checkpoint:path func with
  | exception R.Fault.Killed site ->
      Alcotest.(check string) "died at the evaluation site" "dse:evaluate"
        site
  | _ -> Alcotest.fail "expected the injected kill to unwind");
  R.Fault.reset ();
  Alcotest.(check bool) "journal survived the kill" true
    (Sys.file_exists path);
  (* resume on a fresh cold cache: the journal replays the evaluated
     points, and the search re-derives the identical final design *)
  let resumed =
    (Engine.run ~cache:(Memo.create ()) ~jobs:1 ~checkpoint:path func)
      .Engine.result
  in
  Alcotest.(check bool) "identical directives" true
    (full.Pom_dse.Stage2.directives = resumed.Pom_dse.Stage2.directives);
  Alcotest.(check bool) "identical tile vectors" true
    (full.Pom_dse.Stage2.tile_vectors = resumed.Pom_dse.Stage2.tile_vectors);
  Alcotest.(check int) "identical latency"
    full.Pom_dse.Stage2.report.Pom_hls.Report.latency
    resumed.Pom_dse.Stage2.report.Pom_hls.Report.latency;
  Alcotest.(check bool) "identical report" true
    (full.Pom_dse.Stage2.report = resumed.Pom_dse.Stage2.report);
  (* the resumed run actually used the journal: some of its evaluations
     were served by replay instead of cold synthesis *)
  Alcotest.(check bool) "resume replayed journaled work" true
    (resumed.Pom_dse.Stage2.cold_syntheses
    < full.Pom_dse.Stage2.cold_syntheses);
  Sys.remove path

(* -------- client retry/backoff -------- *)

module Retry = Pom.Resilience.Retry

exception Transient

exception Fatal

let fast_policy =
  { Retry.retries = 3; base_s = 0.001; factor = 2.0; max_s = 0.01; seed = 7 }

(* The whole point of the seeded jitter: the schedule is a pure function
   of (policy, attempt), so a chaos run replays byte-identical timing. *)
let test_retry_backoff_deterministic () =
  let sched p = List.init 6 (fun i -> Retry.backoff_s p ~attempt:(i + 1)) in
  Alcotest.(check (list (float 1e-12)))
    "same policy, same schedule" (sched Retry.default) (sched Retry.default);
  let reseeded = { Retry.default with Retry.seed = 1 } in
  Alcotest.(check bool) "different seed desynchronizes" true
    (sched Retry.default <> sched reseeded);
  List.iteri
    (fun i d ->
      let attempt = i + 1 in
      let raw =
        Float.min Retry.default.Retry.max_s
          (Retry.default.Retry.base_s
          *. (Retry.default.Retry.factor ** float_of_int i))
      in
      Alcotest.(check bool)
        (Printf.sprintf "attempt %d within the jitter band" attempt)
        true
        (d >= (0.5 *. raw) -. 1e-12 && d <= raw +. 1e-12))
    (sched Retry.default)

let test_retry_succeeds_after_transients () =
  let calls = ref 0 and observed = ref [] in
  let v =
    Retry.run ~policy:fast_policy
      ~on_retry:(fun ~attempt ~delay_s:_ _ -> observed := attempt :: !observed)
      ~retry_on:(function Transient -> true | _ -> false)
      (fun () ->
        incr calls;
        if !calls < 3 then raise Transient;
        !calls * 10)
  in
  Alcotest.(check int) "third attempt succeeded" 30 v;
  Alcotest.(check (list int)) "each scheduled retry observed" [ 2; 1 ]
    !observed

let test_retry_exhaustion_reraises_last () =
  let calls = ref 0 in
  match
    Retry.run ~policy:fast_policy
      ~retry_on:(function Transient -> true | _ -> false)
      (fun () ->
        incr calls;
        raise Transient)
  with
  | _ -> Alcotest.fail "retry loop returned on a permanent failure"
  | exception Transient ->
      Alcotest.(check int) "retries + 1 attempts" (fast_policy.Retry.retries + 1)
        !calls

let test_retry_rejects_non_transient () =
  let calls = ref 0 in
  match
    Retry.run ~policy:fast_policy
      ~retry_on:(function Transient -> true | _ -> false)
      (fun () ->
        incr calls;
        raise Fatal)
  with
  | _ -> Alcotest.fail "fatal exception was swallowed"
  | exception Fatal -> Alcotest.(check int) "no retry on fatal" 1 !calls

(* The backoff must never overshoot the caller's deadline: when the next
   sleep does not fit, the loop gives up immediately. *)
let test_retry_deadline_bounds_sleeps () =
  let slow =
    { Retry.retries = 50; base_s = 0.5; factor = 2.0; max_s = 5.0; seed = 0 }
  in
  let calls = ref 0 in
  let t0 = Unix.gettimeofday () in
  (match
     Retry.run ~policy:slow ~deadline_s:0.2
       ~retry_on:(function Transient -> true | _ -> false)
       (fun () ->
         incr calls;
         raise Transient)
   with
  | _ -> Alcotest.fail "unreachable"
  | exception Transient -> ());
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "gave up inside the deadline (%.3f s)" dt)
    true (dt < 0.5);
  Alcotest.(check bool) "at most a couple of attempts fit" true (!calls <= 2)

let () =
  Alcotest.run "resilience"
    [
      ( "budget",
        [
          Alcotest.test_case "tick cap" `Quick test_budget_ticks;
          Alcotest.test_case "deadline" `Quick test_budget_deadline;
          Alcotest.test_case "no-op without install" `Quick
            test_budget_noop_without_install;
          Alcotest.test_case "external cancel" `Quick test_budget_cancel;
        ] );
      ("policy", [ Alcotest.test_case "parse and scope" `Quick test_policy_parse ]);
      ( "fault injection",
        [
          Alcotest.test_case "spec and arming" `Quick test_fault_spec;
          Alcotest.test_case "kinds" `Quick test_fault_kinds;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip and torn tail" `Quick
            test_checkpoint_roundtrip;
          Alcotest.test_case "fsync_each replay" `Quick
            test_checkpoint_fsync_each;
        ] );
      ( "memo",
        [ Alcotest.test_case "stale claim reclaim" `Quick test_memo_claim_reclaim ] );
      ( "pool",
        [ Alcotest.test_case "worker death is typed" `Quick test_pool_worker_killed ] );
      ( "degradation",
        [
          Alcotest.test_case "fault matrix (degrade)" `Quick
            test_fault_matrix_degrade;
          Alcotest.test_case "fault matrix (abort)" `Quick
            test_fault_matrix_abort_policy;
          Alcotest.test_case "timeout becomes POM301" `Quick
            test_fault_timeout_degrades_to_pom301;
          Alcotest.test_case "kill is never absorbed" `Quick
            test_fault_kill_is_never_absorbed;
        ] );
      ( "retry",
        [
          Alcotest.test_case "seeded backoff is deterministic" `Quick
            test_retry_backoff_deterministic;
          Alcotest.test_case "succeeds after transients" `Quick
            test_retry_succeeds_after_transients;
          Alcotest.test_case "exhaustion re-raises the last failure" `Quick
            test_retry_exhaustion_reraises_last;
          Alcotest.test_case "non-transient propagates immediately" `Quick
            test_retry_rejects_non_transient;
          Alcotest.test_case "deadline bounds the schedule" `Quick
            test_retry_deadline_bounds_sleeps;
        ] );
      ( "acceptance",
        [
          Alcotest.test_case "deadline aborts cleanly" `Slow
            test_deadline_aborts_cleanly;
          Alcotest.test_case "checkpoint kill-and-resume" `Slow
            test_checkpoint_kill_and_resume;
        ] );
    ]
