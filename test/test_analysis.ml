(* The static-analysis layer: diagnostics, the affine-IR verifier, the
   polyhedral out-of-bounds check, the dependence-aware pragma linter, and
   the DSE pre-pruning oracle. *)

open Pom.Dsl
module D = Pom.Analysis.Diagnostic
module Verify = Pom.Analysis.Verify_ir
module Lint = Pom.Analysis.Lint
module Ir = Pom.Affine.Ir
module Prog = Pom.Polyir.Prog

let codes ds = List.sort_uniq compare (List.map (fun d -> d.D.code) ds)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ---- diagnostics ---- *)

let e1 = D.error ~code:"POM103" ~loc:[ "f"; "s" ] "rank mismatch"

let w1 = D.warning ~code:"POM201" ~loc:[ "f" ] ~note:"raise the ii" "low ii"

let h1 = D.hint ~code:"POM204" ~loc:[ "f" ] "dead partition"

let test_diag_ordering () =
  let sorted = D.sort [ h1; w1; e1 ] in
  Alcotest.(check (list string))
    "severity order" [ "POM103"; "POM201"; "POM204" ]
    (List.map (fun d -> d.D.code) sorted)

let test_diag_filters () =
  Alcotest.(check bool) "has_errors" true (D.has_errors [ w1; e1 ]);
  Alcotest.(check int) "errors" 1 (List.length (D.errors [ e1; w1; h1 ]));
  Alcotest.(check int) "min warning" 2
    (List.length (D.filter_severity ~min:D.Warning [ e1; w1; h1 ]));
  let promoted = D.promote_warnings [ w1; h1 ] in
  Alcotest.(check bool) "Werror promotes warnings" true (D.has_errors promoted);
  Alcotest.(check int) "hints untouched" 1 (List.length (D.errors promoted))

let test_diag_rendering () =
  Alcotest.(check string) "summary counts" "1 error, 1 warning, 1 hint"
    (D.summary [ e1; w1; h1 ]);
  Alcotest.(check string) "empty is clean" "clean" (D.summary []);
  Alcotest.(check string) "plural" "2 errors" (D.summary [ e1; e1 ]);
  let s = D.to_string w1 in
  List.iter
    (fun frag ->
      Alcotest.(check bool) ("rendered: " ^ frag) true (contains s frag))
    [ "POM201"; "warning"; "low ii"; "raise the ii" ]

(* ---- structural verification of a handcrafted affine function ---- *)

let b k = { Pom.Poly.Ast.coef = 1; expr = Pom.Poly.Linexpr.const k }

let bad_affine_func () =
  let a = Placeholder.make "A" [ 8; 8 ] Dtype.p_float32 in
  let arrays =
    [
      (* non-positive factor: POM106 *)
      { Ir.placeholder = a; partition = [ 0; 1 ]; partition_kind = Schedule.Cyclic };
      (* duplicate entry (POM105) with a rank-1 vector (POM106) *)
      { Ir.placeholder = a; partition = [ 2 ]; partition_kind = Schedule.Cyclic };
    ]
  in
  let op =
    Ir.Op
      {
        Ir.compute_name = "s";
        (* one index on a rank-2 array: POM103 *)
        dest = (a, [ Expr.Ix_var "i" ]);
        (* "z" is bound by no loop: POM101 *)
        rhs = Expr.access a [ Expr.Ix_var "i"; Expr.Ix_var "z" ];
      }
  in
  let shadowing =
    (* inner loop reuses "i": POM102 *)
    Ir.For
      { iter = "i"; lbs = [ b 0 ]; ubs = [ b 7 ]; attrs = Ir.no_attrs;
        body = [ op ] }
  in
  let degenerate =
    (* lb 5 > ub 3: POM104 *)
    Ir.For
      { iter = "d"; lbs = [ b 5 ]; ubs = [ b 3 ]; attrs = Ir.no_attrs;
        body = [] }
  in
  {
    Ir.name = "bad";
    arrays;
    body =
      [
        Ir.For
          { iter = "i"; lbs = [ b 0 ]; ubs = [ b 7 ]; attrs = Ir.no_attrs;
            body = [ shadowing; degenerate ] };
      ];
  }

let test_verify_func () =
  let ds = Verify.verify_func (bad_affine_func ()) in
  Alcotest.(check (list string))
    "every structural code fires"
    [ "POM101"; "POM102"; "POM103"; "POM104"; "POM105"; "POM106" ]
    (codes ds);
  Alcotest.(check bool) "undefined iterator is an error" true
    (List.exists (fun d -> d.D.code = "POM101" && d.D.severity = D.Error) ds);
  Alcotest.(check bool) "shadowing is a warning" true
    (List.exists (fun d -> d.D.code = "POM102" && d.D.severity = D.Warning) ds)

let test_verify_func_clean () =
  let prog = Prog.of_func_unscheduled (Pom.Workloads.Polybench.gemm 16) in
  Alcotest.(check (list string)) "gemm verifies clean" []
    (codes (Verify.verify prog))

(* ---- polyhedral out-of-bounds analysis ---- *)

let shifted_read () =
  let open Expr in
  let f = Func.create "shifted" in
  let n = 8 in
  let dst = Placeholder.make "dst" [ n ] Dtype.p_float32 in
  let src = Placeholder.make "src" [ n ] Dtype.p_float32 in
  let i = Var.make "i" 0 n in
  let _ =
    Func.compute f "s" ~iters:[ i ]
      ~body:(access src [ ix i +! ixc 1 ])
      ~dest:(dst, [ ix i ]) ()
  in
  f

let test_verify_bounds () =
  let ds = Verify.verify_bounds (Prog.of_func_unscheduled (shifted_read ())) in
  Alcotest.(check (list string)) "escape detected" [ "POM110" ] (codes ds);
  let d = List.hd ds in
  Alcotest.(check bool) "names the array" true
    (contains (String.concat "/" d.D.loc) "array src");
  Alcotest.(check bool) "witness set in the note" true
    (match d.D.note with Some n -> contains n "witness" | None -> false)

(* ---- pragma lint ---- *)

let lint_gemm scheds =
  let f = Pom.Workloads.Polybench.gemm 32 in
  Lint.lint (Prog.apply_all (Prog.of_func_unscheduled f) scheds)

let check_codes name expected scheds =
  Alcotest.(check (list string)) name expected (codes (lint_gemm scheds))

let test_lint_pipeline_ii () =
  (* gemm's reduction carries a dependence at k: II=1 is unachievable *)
  let ds = lint_gemm [ Schedule.pipeline "s" "k" 1 ] in
  Alcotest.(check bool) "POM201 fires" true (List.mem "POM201" (codes ds));
  Alcotest.(check bool) "achievable II is suggested" true
    (List.exists
       (fun d ->
         d.D.code = "POM201"
         && match d.D.note with
            | Some n -> contains n "pipeline_ii >="
            | None -> false)
       ds);
  (* a feasible target is accepted *)
  check_codes "generous II is clean" [] [ Schedule.pipeline "s" "k" 8 ]

let test_lint_serializing_unroll () =
  let ds = lint_gemm [ Schedule.unroll "s" "k" 4 ] in
  Alcotest.(check bool) "POM202 fires on the carried level" true
    (List.mem "POM202" (codes ds))

let test_lint_bank_conflict () =
  (* unrolling j demands 4 ports on D and B, but nothing is partitioned *)
  let ds = lint_gemm [ Schedule.unroll "s" "j" 4 ] in
  Alcotest.(check bool) "POM203 fires" true (List.mem "POM203" (codes ds));
  Alcotest.(check bool) "no serialization claim" false
    (List.mem "POM202" (codes ds));
  (* partitioning the varying dimension of both arrays resolves it *)
  check_codes "partitioned unroll is clean" []
    [
      Schedule.unroll "s" "j" 4;
      Schedule.partition "D" [ 1; 4 ] Schedule.Cyclic;
      Schedule.partition "B" [ 1; 4 ] Schedule.Cyclic;
    ]

let test_lint_non_dividing () =
  check_codes "non-dividing unroll" [ "POM203"; "POM205" ]
    [ Schedule.unroll "s" "j" 3 ];
  check_codes "non-dividing partition" [ "POM205" ]
    [ Schedule.partition "D" [ 5; 1 ] Schedule.Cyclic ]

let test_lint_pipeline_unroll_conflict () =
  let ds =
    lint_gemm [ Schedule.pipeline "s" "j" 1; Schedule.unroll "s" "j" 2 ]
  in
  Alcotest.(check bool) "POM206 fires" true (List.mem "POM206" (codes ds))

let test_lint_dead_partition () =
  let ds = lint_gemm [ Schedule.partition "D" [ 4; 4 ] Schedule.Cyclic ] in
  Alcotest.(check (list string)) "dead partition is a hint" [ "POM204" ]
    (codes ds);
  Alcotest.(check int) "one hint per dead dimension" 2
    (List.length ds);
  Alcotest.(check bool) "hints are not errors" false (D.has_errors ds)

let test_lint_malformed_partition () =
  check_codes "unknown array" [ "POM207" ]
    [ Schedule.partition "Z" [ 2 ] Schedule.Cyclic ];
  check_codes "rank mismatch" [ "POM207" ]
    [ Schedule.partition "D" [ 2 ] Schedule.Cyclic ];
  check_codes "non-positive factor" [ "POM207" ]
    [ Schedule.partition "D" [ 0; 1 ] Schedule.Cyclic ]

(* ---- the DSE pre-pruning oracle ---- *)

let test_oracle () =
  let base = Prog.of_func_unscheduled (Pom.Workloads.Polybench.gemm 32) in
  let before = Lint.hw_signature base in
  Alcotest.(check bool) "identical program gains nothing" false
    (Lint.gains_parallelism ~before base);
  Alcotest.(check bool) "an unroll changes the signature" true
    (Lint.gains_parallelism ~before
       (Prog.apply base (Schedule.unroll "s" "j" 4)));
  Alcotest.(check bool) "a pipeline changes the signature" true
    (Lint.gains_parallelism ~before
       (Prog.apply base (Schedule.pipeline "s" "k" 2)));
  (* partitioning alone does not touch the loop structure the QoR model
     prices, so it is not "more parallelism" *)
  Alcotest.(check bool) "a bare partition does not" false
    (Lint.gains_parallelism ~before
       (Prog.apply base (Schedule.partition "D" [ 1; 4 ] Schedule.Cyclic)))

let test_effective_parallelism () =
  let base = Prog.of_func_unscheduled (Pom.Workloads.Polybench.gemm 32) in
  Alcotest.(check (list (pair string int))) "no directives" [ ("s", 1) ]
    (Lint.effective_parallelism base);
  Alcotest.(check (list (pair string int))) "dependence-free unroll counts"
    [ ("s", 4) ]
    (Lint.effective_parallelism
       (Prog.apply base (Schedule.unroll "s" "j" 4)));
  Alcotest.(check (list (pair string int))) "carried unroll does not"
    [ ("s", 1) ]
    (Lint.effective_parallelism
       (Prog.apply base (Schedule.unroll "s" "k" 4)))

(* The acceptance criterion: Stage 2 drops at least one design point before
   synthesis, every synthesis that does happen is accounted as a cold miss,
   and the trace says why. *)
let test_stage2_pruning () =
  let f = Pom.Workloads.Polybench.bicg 1024 in
  let stage1 = Pom.Dse.Stage1.run f in
  let cache = Pom.Pipeline.Memo.create () in
  let synth0 = Pom.Hls.Report.synth_count () in
  (* jobs=1: with speculative parallel evaluation the process-wide synth
     count would also include warm-up syntheses the search never asked for *)
  let r = Pom.Dse.Stage2.run ~cache ~jobs:1 f stage1 in
  let synths = Pom.Hls.Report.synth_count () - synth0 in
  Alcotest.(check bool) "at least one point pruned" true
    (r.Pom.Dse.Stage2.pruned >= 1);
  Alcotest.(check int) "pruned points never reached Report.synthesize"
    r.Pom.Dse.Stage2.cold_syntheses synths;
  Alcotest.(check bool) "the trace records the pruning" true
    (List.exists
       (fun l -> contains l "pruned by the analyzer")
       r.Pom.Dse.Stage2.trace)

(* ---- every shipped workload must analyze clean ---- *)

let check_clean name (c : Pom.compiled) =
  Alcotest.(check int) (name ^ ": no legality violations") 0
    c.Pom.legality_violations;
  Alcotest.(check (list string)) (name ^ ": no analyzer errors") []
    (List.map D.to_string (D.errors c.Pom.diags))

let test_workloads_clean () =
  let size = 16 in
  List.iter
    (fun (name, mk) ->
      check_clean name (Pom.compile ~framework:`Pom_manual (mk size)))
    (Pom.Workloads.Polybench.by_name @ Pom.Workloads.Image.by_name)

let test_dnn_workloads_clean () =
  List.iter
    (fun (name, mk) ->
      check_clean name (Pom.compile ~framework:`Pom_manual ~dnn:true (mk ())))
    Pom.Workloads.Dnn.by_name

let () =
  Alcotest.run "analysis"
    [
      ( "diagnostic",
        [
          Alcotest.test_case "ordering" `Quick test_diag_ordering;
          Alcotest.test_case "filters and promotion" `Quick test_diag_filters;
          Alcotest.test_case "rendering" `Quick test_diag_rendering;
        ] );
      ( "verify-ir",
        [
          Alcotest.test_case "structural codes" `Quick test_verify_func;
          Alcotest.test_case "clean workload" `Quick test_verify_func_clean;
          Alcotest.test_case "out-of-bounds access" `Quick test_verify_bounds;
        ] );
      ( "lint",
        [
          Alcotest.test_case "infeasible pipeline_ii" `Quick
            test_lint_pipeline_ii;
          Alcotest.test_case "serializing unroll" `Quick
            test_lint_serializing_unroll;
          Alcotest.test_case "bank conflict" `Quick test_lint_bank_conflict;
          Alcotest.test_case "non-dividing factors" `Quick
            test_lint_non_dividing;
          Alcotest.test_case "pipeline+unroll conflict" `Quick
            test_lint_pipeline_unroll_conflict;
          Alcotest.test_case "dead partition" `Quick test_lint_dead_partition;
          Alcotest.test_case "malformed partition" `Quick
            test_lint_malformed_partition;
        ] );
      ( "dse-pruning",
        [
          Alcotest.test_case "hardware-signature oracle" `Quick test_oracle;
          Alcotest.test_case "effective parallelism" `Quick
            test_effective_parallelism;
          Alcotest.test_case "stage2 prunes before synthesis" `Quick
            test_stage2_pruning;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "polybench+image analyze clean" `Quick
            test_workloads_clean;
          Alcotest.test_case "dnn analyze clean" `Quick
            test_dnn_workloads_clean;
        ] );
    ]
