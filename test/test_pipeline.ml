(* The instrumented pass manager: ordering, timing/statistics records,
   dump-after and verify hooks, the registry, and the memoized polyhedral
   evaluation (cache hits must be free and identical to the cold path). *)

open Pom_pipeline
open Pom_workloads

let device = Pom_hls.Device.xc7z020

(* -------- pass manager over a toy state -------- *)

let incr_pass = Pass.v ~name:"test-incr" ~descr:"toy: add one" (fun n -> n + 1)

let double_pass =
  Pass.v ~name:"test-double" ~descr:"toy: double" (fun n -> n * 2)

let test_ordering () =
  let final, records = Pass.run [ incr_pass; double_pass; incr_pass ] 3 in
  Alcotest.(check int) "passes applied in order" 9 final;
  Alcotest.(check (list string))
    "one record per pass, in execution order"
    [ "test-incr"; "test-double"; "test-incr" ]
    (List.map (fun r -> r.Pass.pass) records);
  List.iter
    (fun r ->
      Alcotest.(check bool) "wall-clock non-negative" true (r.Pass.wall_s >= 0.0);
      Alcotest.(check bool) "cpu non-negative" true (r.Pass.cpu_s >= 0.0))
    records

let test_instruments () =
  let stats_calls = ref 0 in
  let instruments =
    {
      Pass.stats =
        Some
          (fun n ->
            incr stats_calls;
            { Stats.zero with Stats.ops = n });
      dump = Some string_of_int;
      dump_after = [ "test-double" ];
      verify = Some (fun n -> if n >= 0 then "ok" else "negative");
      verify_each = true;
    }
  in
  let _, records = Pass.run ~instruments [ incr_pass; double_pass ] 1 in
  Alcotest.(check int) "stats collected after every pass" 2 !stats_calls;
  let r1 = List.nth records 0 and r2 = List.nth records 1 in
  Alcotest.(check (option string))
    "dump fires only for the named pass" None r1.Pass.dump;
  Alcotest.(check (option string))
    "dump captured after test-double" (Some "4") r2.Pass.dump;
  Alcotest.(check (option string)) "verify fired" (Some "ok") r1.Pass.verdict;
  Alcotest.(check bool) "stats recorded" true (r1.Pass.stats <> None);
  (* dump_after = ["all"] captures every pass *)
  let _, records =
    Pass.run
      ~instruments:{ instruments with Pass.dump_after = [ "all" ] }
      [ incr_pass; double_pass ] 1
  in
  Alcotest.(check bool) "all passes dumped" true
    (List.for_all (fun (r : Pass.record) -> r.Pass.dump <> None) records)

let test_registry () =
  ignore (Passes.tail ());
  ignore (Passes.structural ());
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " registered") true (Registry.mem name))
    [
      "structural-directives";
      "hls-synthesize";
      "affine-lower";
      "affine-simplify";
      "emit-hls-c";
      "test-incr";
    ];
  Alcotest.(check bool) "unknown pass not registered" false
    (Registry.mem "no-such-pass");
  let names = List.map fst (Registry.all ()) in
  Alcotest.(check bool) "registry listing sorted" true
    (List.sort compare names = names)

(* -------- memoized polyhedral evaluation -------- *)

let test_schedule_memo () =
  let cache = Memo.create () in
  let func = Polybench.gemm 32 in
  let directives = Pom_dsl.Func.directives func in
  let p1 = Memo.schedule cache func directives in
  let p2 = Memo.schedule cache func directives in
  Alcotest.(check bool) "hit returns the cached program" true (p1 == p2);
  let c = Memo.counters cache in
  Alcotest.(check int) "one miss" 1 c.Memo.schedule_misses;
  Alcotest.(check int) "one hit" 1 c.Memo.schedule_hits

let test_report_memo_hit_is_free_and_identical () =
  let cache = Memo.create () in
  let func = Polybench.gemm 32 in
  let directives = [] in
  let thunk () = Pom_polyir.Prog.of_func_unscheduled func in
  let cold = Memo.synthesize cache ~device ~directives func thunk in
  let synths_after_cold = Pom_hls.Report.synth_count () in
  let hit = Memo.synthesize cache ~device ~directives func thunk in
  Alcotest.(check int)
    "cache hit runs no synthesis" synths_after_cold
    (Pom_hls.Report.synth_count ());
  Alcotest.(check bool) "identical program" true (fst cold == fst hit);
  Alcotest.(check bool) "identical report" true (snd cold == snd hit);
  (* and the hit result equals an independent cold evaluation *)
  let fresh = Memo.synthesize (Memo.create ()) ~device ~directives func thunk in
  Alcotest.(check int) "same latency as a cold path"
    (snd fresh).Pom_hls.Report.latency (snd hit).Pom_hls.Report.latency;
  let c = Memo.counters cache in
  Alcotest.(check int) "one report miss" 1 c.Memo.report_misses;
  Alcotest.(check int) "one report hit" 1 c.Memo.report_hits

let test_memo_distinguishes_sizes_and_devices () =
  let cache = Memo.create () in
  let p32 = Memo.schedule cache (Polybench.gemm 32) [] in
  let p64 = Memo.schedule cache (Polybench.gemm 64) [] in
  Alcotest.(check bool) "same name, different size: distinct" true
    (p32 != p64);
  Alcotest.(check int) "both were misses" 2
    (Memo.counters cache).Memo.schedule_misses;
  let func = Polybench.gemm 32 in
  let thunk () = Pom_polyir.Prog.of_func_unscheduled func in
  let _ = Memo.synthesize cache ~device ~directives:[] func thunk in
  let small = Pom_hls.Device.scale 0.5 device in
  let _ = Memo.synthesize cache ~device:small ~directives:[] func thunk in
  Alcotest.(check int) "different device: distinct report entries" 2
    (Memo.counters cache).Memo.report_misses

let test_memo_capacity_guard () =
  (* the guard drops a table wholesale once an insert would leave it past
     [max_entries]: with a bound of 2 the fourth distinct schedule evicts
     the first three, so re-asking for the first is a miss again *)
  let cache = Memo.create ~max_entries:2 () in
  let sizes = [ 8; 12; 16; 24 ] in
  List.iter (fun n -> ignore (Memo.schedule cache (Polybench.gemm n) [])) sizes;
  Alcotest.(check int) "four distinct points, four misses" 4
    (Memo.counters cache).Memo.schedule_misses;
  ignore (Memo.schedule cache (Polybench.gemm 8) []);
  Alcotest.(check int) "the evicted entry misses again" 5
    (Memo.counters cache).Memo.schedule_misses;
  ignore (Memo.schedule cache (Polybench.gemm 24) []);
  Alcotest.(check int) "the post-reset entry survives and hits" 1
    (Memo.counters cache).Memo.schedule_hits

(* -------- the end-to-end compile flows -------- *)

let test_compile_records () =
  let c = Pom.compile ~framework:`Pom_auto (Polybench.gemm 32) in
  let names = List.map (fun r -> r.Pass.pass) c.Pom.passes in
  Alcotest.(check (list string))
    "the full pom-auto pipeline, in order"
    [
      "stage1-transform";
      "stage2-search";
      "legality-check";
      "lint-pragmas";
      "hls-synthesize";
      "affine-lower";
      "affine-simplify";
      "verify-ir";
      "emit-hls-c";
    ]
    names;
  Alcotest.(check bool) "stats attached" true
    (List.for_all (fun (r : Pass.record) -> r.Pass.stats <> None) c.Pom.passes);
  Alcotest.(check bool) "legality verdict traced" true
    (List.exists
       (fun line -> line = "legality: legal")
       c.Pom.trace)

let test_compile_memo_trace () =
  let c = Pom.compile ~framework:`Pom_auto (Polybench.gemm 32) in
  let memo_line =
    List.find_opt
      (fun line -> String.length line >= 5 && String.sub line 0 5 = "memo:")
      c.Pom.trace
  in
  match memo_line with
  | None -> Alcotest.fail "no memo summary in the DSE trace"
  | Some line ->
      let hits = Scanf.sscanf line "memo: %d of %d" (fun h _ -> h) in
      Alcotest.(check bool) "cache hit count > 0" true (hits > 0)

let test_compile_dump_after () =
  let c =
    Pom.compile ~framework:`Baseline
      ~dump_after:[ "schedule-apply" ]
      (Polybench.gemm 32)
  in
  let r =
    List.find (fun r -> r.Pass.pass = "schedule-apply") c.Pom.passes
  in
  (match r.Pass.dump with
  | Some ir ->
      Alcotest.(check bool) "dump shows the polyhedral program" true
        (String.length ir > 0)
  | None -> Alcotest.fail "no dump captured for schedule-apply");
  Alcotest.(check bool) "other passes not dumped" true
    (List.for_all
       (fun (r : Pass.record) -> r.Pass.pass = "schedule-apply" || r.Pass.dump = None)
       c.Pom.passes)

let test_compile_verify_each () =
  let c =
    Pom.compile ~framework:`Pom_manual ~verify_each:true (Polybench.bicg 32)
  in
  Alcotest.(check bool) "every pass carries a verdict" true
    (List.for_all (fun (r : Pass.record) -> r.Pass.verdict <> None) c.Pom.passes);
  Alcotest.(check bool) "schedule verified legal" true
    (List.exists (fun (r : Pass.record) -> r.Pass.verdict = Some "legal") c.Pom.passes)

let test_compile_warm_equals_cold () =
  (* both compiles go through Memo.global: the second is served from the
     cache and must reproduce the first result exactly *)
  let a = Pom.compile ~framework:`Scalehls (Polybench.gemm 32) in
  let hits0 = (Memo.counters Memo.global).Memo.report_hits in
  let b = Pom.compile ~framework:`Scalehls (Polybench.gemm 32) in
  Alcotest.(check bool) "second compile hit the memo" true
    ((Memo.counters Memo.global).Memo.report_hits > hits0);
  Alcotest.(check int) "same latency" a.Pom.report.Pom_hls.Report.latency
    b.Pom.report.Pom_hls.Report.latency;
  Alcotest.(check string) "same generated HLS C" a.Pom.hls_c b.Pom.hls_c

let () =
  Alcotest.run "pipeline"
    [
      ( "pass-manager",
        [
          Alcotest.test_case "ordering and records" `Quick test_ordering;
          Alcotest.test_case "instrument hooks" `Quick test_instruments;
          Alcotest.test_case "registry" `Quick test_registry;
        ] );
      ( "memo",
        [
          Alcotest.test_case "schedule cache" `Quick test_schedule_memo;
          Alcotest.test_case "report cache hit is free and identical" `Quick
            test_report_memo_hit_is_free_and_identical;
          Alcotest.test_case "keys distinguish sizes and devices" `Quick
            test_memo_distinguishes_sizes_and_devices;
          Alcotest.test_case "capacity guard evicts" `Quick
            test_memo_capacity_guard;
        ] );
      ( "compile",
        [
          Alcotest.test_case "per-pass records" `Quick test_compile_records;
          Alcotest.test_case "memo summary in DSE trace" `Quick
            test_compile_memo_trace;
          Alcotest.test_case "dump-after" `Quick test_compile_dump_after;
          Alcotest.test_case "verify-each" `Quick test_compile_verify_each;
          Alcotest.test_case "warm compile equals cold" `Quick
            test_compile_warm_equals_cold;
        ] );
    ]
