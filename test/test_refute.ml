(* The refutation engine: generators, oracles, shrinking, the corpus
   format, and replay of the committed counterexample corpus.

   The committed corpus under test/refute-corpus/ holds shrunk
   counterexamples the engine once found (plus pinned representative
   cases); every entry must keep PASSING here — a Fail verdict means a
   fixed bug resurfaced.  Re-bless with POM_REFUTE_BLESS=<dir> pointing at
   the source test/refute-corpus directory after an intentional
   wire-format or generator change. *)

open Pom_poly
module Refute = Pom.Refute
module Case = Refute.Case
module Oracle = Refute.Oracle
module Engine = Refute.Engine

let v = Linexpr.var

let c = Linexpr.const

(* the first counterexample the engine ever found: eliminating k (coeff 3)
   is inexact, so different elimination orders give different sound
   over-approximations — the unconditional order-invariance claim is false *)
let historical_inexact =
  Case.make_poly ~dims:[ "i"; "j"; "k" ] ~lo:(-1) ~hi:1
    [
      Constr.Ge
        (Linexpr.add
           (Linexpr.term 3 "i")
           (Linexpr.add (v "j") (Linexpr.add (Linexpr.term (-3) "k") (c 1))));
      Constr.Ge (Linexpr.add (Linexpr.neg (v "i")) (Linexpr.term 3 "k"));
    ]

(* the shape that refuted the first draft of the cycle-bound simulator:
   pipelining the outermost level fully unrolls everything beneath it, so
   a bound that still counts the inner iterations as serial steps sits
   above the (correct) model latency.  Pinned so the concession is never
   lost: the oracle must keep accepting this program. *)
let qor_pipeline_full_unroll =
  let module Dsl = Pom.Dsl in
  let f = Dsl.Func.create "refute" in
  let a = Dsl.Placeholder.make "A" [ 8; 8 ] Dsl.Dtype.p_float32
  and cc = Dsl.Placeholder.make "C" [ 8; 8 ] Dsl.Dtype.p_float32 in
  let iters =
    [ Dsl.Var.make "i" 0 4; Dsl.Var.make "j" 0 4; Dsl.Var.make "k" 0 4 ]
  in
  ignore
    (Dsl.Func.compute f "s0" ~iters
       ~body:(Dsl.Expr.access cc [ Dsl.Expr.ix_name "i"; Dsl.Expr.ix_name "j" ])
       ~dest:(a, [ Dsl.Expr.ix_name "k"; Dsl.Expr.ix_name "i" ])
       ());
  Dsl.Func.schedule f (Dsl.Schedule.pipeline "s0" "i" 1);
  f

(* pinned corpus: the historical counterexample plus deterministic
   generator output, one per family.

   The draws are sequenced with explicit lets because list literals
   evaluate right to left: drawing inside the literal would silently
   reshuffle every earlier pinned case each time a family is appended.
   The let order below reproduces the evaluation order the corpus was
   originally blessed under (last list element first); new families must
   add their draws at the END of the let chain. *)
let pinned_cases () =
  let rand = Random.State.make [| 2024; 0xb1e55 |] in
  let g gen = QCheck.Gen.generate1 ~rand gen in
  let d1 = g (Refute.Gen.func ()) in
  let s2 = g (Refute.Gen.func ()) in
  let s1 = g (Refute.Gen.func ()) in
  let p3 = g (Refute.Gen.poly ()) in
  let p2 = g (Refute.Gen.poly ()) in
  let q1 = g (Refute.Gen.func ()) in
  [
    Case.Poly historical_inexact;
    Case.Poly p2;
    Case.Poly p3;
    Case.Semantic s1;
    Case.Semantic s2;
    Case.Degrade d1;
    Case.Qor qor_pipeline_full_unroll;
    Case.Qor q1;
  ]

let corpus_dir = "refute-corpus"

let test_bless_or_check_corpus () =
  match Sys.getenv_opt "POM_REFUTE_BLESS" with
  | Some dir when dir <> "" ->
      List.iter
        (fun case ->
          let path = Refute.Corpus.save dir case in
          Printf.printf "blessed %s\n" path)
        (pinned_cases ())
  | _ ->
      (* every pinned case must still be present in the committed corpus
         (same id => same file name and same encoding) *)
      let on_disk = List.map fst (Refute.Corpus.load_all corpus_dir) in
      List.iter
        (fun case ->
          let expected =
            Filename.concat corpus_dir (Case.id case ^ ".case")
          in
          Alcotest.(check bool)
            (expected ^ " is committed")
            true
            (List.mem expected on_disk))
        (pinned_cases ())

let test_corpus_replay () =
  let results = Engine.replay corpus_dir in
  Alcotest.(check bool) "corpus is non-empty" true (List.length results >= 8);
  List.iter
    (fun (path, _, verdict) ->
      match verdict with
      | Oracle.Fail d ->
          Alcotest.failf "regression resurfaced on %s: %s %s" path
            d.Pom.Analysis.Diagnostic.code d.Pom.Analysis.Diagnostic.message
      | _ -> ())
    results

let test_corpus_roundtrip () =
  let dir = Filename.temp_file "refute" "" in
  Sys.remove dir;
  let case = Case.Poly historical_inexact in
  let path = Refute.Corpus.save dir case in
  let case' = Refute.Corpus.load path in
  Alcotest.(check string) "id survives the round trip" (Case.id case)
    (Case.id case');
  let module W = Pom_wire.Wire in
  Alcotest.(check string)
    "re-encoding is byte-stable"
    (W.to_string Case.codec case)
    (W.to_string Case.codec case')

let test_corpus_corruption () =
  let dir = Filename.temp_file "refute" "" in
  Sys.remove dir;
  let path = Refute.Corpus.save dir (Case.Poly historical_inexact) in
  let bytes =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (* flip one payload byte: the record CRC must catch it *)
  let broken = Bytes.of_string bytes in
  let i = String.length bytes - 3 in
  Bytes.set broken i (Char.chr (Char.code (Bytes.get broken i) lxor 0xff));
  let oc = open_out_bin path in
  output_bytes oc broken;
  close_out oc;
  match Refute.Corpus.load path with
  | _ -> Alcotest.fail "expected Corrupt on a flipped byte"
  | exception Pom_wire.Wire.Corrupt _ -> ()

let test_historical_case_documents_inexactness () =
  (* the committed counterexample demonstrates genuine order dependence of
     the over-approximation: the two elimination orders disagree on some
     box point — yet the corrected oracle accepts both as sound *)
  let p = historical_inexact in
  let s = Case.set_of_poly p in
  let chain order =
    List.fold_left (fun t d -> Basic_set.project_out d t) s order
  in
  let p1 = chain [ "j"; "k" ] and p2 = chain [ "k"; "j" ] in
  let disagree =
    List.exists
      (fun x ->
        let env _ = x in
        Basic_set.mem env p1 <> Basic_set.mem env p2)
      [ -1; 0; 1 ]
  in
  Alcotest.(check bool) "orders genuinely disagree on this set" true disagree;
  match Oracle.check_poly p with
  | Oracle.Pass -> ()
  | verdict ->
      Alcotest.failf "oracle should accept the gated property: %a"
        Oracle.pp_verdict verdict

let test_engine_deterministic () =
  let run () = Engine.run ~seed:42 ~cases:80 `Poly in
  let a = run () and b = run () in
  Alcotest.(check int) "same cases" a.Engine.cases b.Engine.cases;
  Alcotest.(check int) "same passes" a.Engine.passed b.Engine.passed;
  Alcotest.(check int) "same skips" a.Engine.skipped b.Engine.skipped;
  Alcotest.(check int)
    "same findings"
    (List.length a.Engine.findings)
    (List.length b.Engine.findings)

let test_engine_poly_clean () =
  let s = Engine.run ~seed:7 ~cases:400 `Poly in
  Alcotest.(check int) "all cases ran" 400 s.Engine.cases;
  Alcotest.(check (list string)) "no counterexamples" []
    (List.map
       (fun (f : Engine.finding) -> f.Engine.diag.Pom.Analysis.Diagnostic.code)
       s.Engine.findings)

let test_engine_semantic_clean () =
  let s = Engine.run ~seed:7 ~cases:60 `Semantic in
  Alcotest.(check int) "all cases ran" 60 s.Engine.cases;
  Alcotest.(check (list string)) "no counterexamples" []
    (List.map
       (fun (f : Engine.finding) -> f.Engine.diag.Pom.Analysis.Diagnostic.code)
       s.Engine.findings)

let test_engine_degrade_clean () =
  let s = Engine.run ~seed:7 ~cases:15 `Degrade in
  Alcotest.(check int) "all cases ran" 15 s.Engine.cases;
  Alcotest.(check (list string)) "no counterexamples" []
    (List.map
       (fun (f : Engine.finding) -> f.Engine.diag.Pom.Analysis.Diagnostic.code)
       s.Engine.findings)

let test_engine_qor_clean () =
  let s = Engine.run ~seed:7 ~cases:150 `Qor in
  Alcotest.(check int) "all cases ran" 150 s.Engine.cases;
  Alcotest.(check (list string)) "no counterexamples" []
    (List.map
       (fun (f : Engine.finding) -> f.Engine.diag.Pom.Analysis.Diagnostic.code)
       s.Engine.findings)

let test_qor_bounds_sane () =
  (* a 4x4x4 nest with j unrolled by 2: the serial bound must count
     4 * 2 * 4 = 32 steps, and the synthesized latency must sit on or
     above every bound (the oracle passes) *)
  let module Dsl = Pom.Dsl in
  let f = Dsl.Func.create "refute" in
  let a = Dsl.Placeholder.make "A" [ 8; 8 ] Dsl.Dtype.p_float32
  and b = Dsl.Placeholder.make "B" [ 8; 8 ] Dsl.Dtype.p_float32 in
  let iters =
    [ Dsl.Var.make "i" 0 4; Dsl.Var.make "j" 0 4; Dsl.Var.make "k" 0 4 ]
  in
  ignore
    (Dsl.Func.compute f "s0" ~iters
       ~body:(Dsl.Expr.access b [ Dsl.Expr.ix_name "j"; Dsl.Expr.ix_name "k" ])
       ~dest:(a, [ Dsl.Expr.ix_name "i"; Dsl.Expr.ix_name "j" ])
       ());
  Dsl.Func.schedule f (Dsl.Schedule.unroll "s0" "j" 2);
  let prog = Pom.Polyir.Prog.of_func f in
  (match Pom.Sim.Cycles.of_prog prog with
  | None -> Alcotest.fail "64-instance nest should enumerate"
  | Some [ bounds ] ->
      Alcotest.(check int) "instances" 64 bounds.Pom.Sim.Cycles.instances;
      Alcotest.(check int) "serial bound" 32 bounds.Pom.Sim.Cycles.serial_bound;
      (* busiest bank: 16 distinct elements of unpartitioned A (or B)
         through two ports *)
      Alcotest.(check int) "port bound" 8 bounds.Pom.Sim.Cycles.port_bound
  | Some l -> Alcotest.failf "expected one group, got %d" (List.length l));
  (match Oracle.check_qor f with
  | Oracle.Pass -> ()
  | verdict ->
      Alcotest.failf "model should respect its own bounds: %a"
        Oracle.pp_verdict verdict);
  (* the pinned full-unroll-under-pipeline shape must stay accepted *)
  match Oracle.check_qor qor_pipeline_full_unroll with
  | Oracle.Pass -> ()
  | verdict ->
      Alcotest.failf "pipeline concession regressed: %a" Oracle.pp_verdict
        verdict

let test_engine_budget_stops () =
  (* an already-exhausted budget must stop the engine at the first case
     boundary, cleanly and with the exhausted flag *)
  Pom.Resilience.Budget.with_budget ~max_ticks:1 (fun () ->
      (* spend the only tick *)
      (try Pom.Resilience.Budget.tick "refute:test"
       with Pom.Resilience.Budget.Budget_exceeded _ -> ());
      let s = Engine.run ~seed:1 ~cases:1000 `Poly in
      Alcotest.(check bool) "stopped early" true (s.Engine.cases < 1000);
      Alcotest.(check bool) "flagged exhausted" true s.Engine.exhausted)

let test_shrink_produces_smaller_valid_cases () =
  let rand = Random.State.make [| 5 |] in
  for _ = 1 to 30 do
    let p = QCheck.Gen.generate1 ~rand (Refute.Gen.poly ()) in
    List.iter
      (fun (q : Case.poly) ->
        (* a shrink candidate is structurally no larger and still valid
           (make_poly re-validates) *)
        let size (x : Case.poly) =
          List.length x.Case.dims + List.length x.Case.extra
          + (x.Case.hi - x.Case.lo)
        in
        Alcotest.(check bool) "shrunk candidate not larger" true
          (size q <= size p))
      (Refute.Gen.shrink_poly p)
  done;
  for _ = 1 to 10 do
    let f = QCheck.Gen.generate1 ~rand (Refute.Gen.func ()) in
    List.iter
      (fun g ->
        let size h =
          List.length (Pom.Dsl.Func.computes h)
          + List.length (Pom.Dsl.Func.directives h)
        in
        Alcotest.(check bool) "shrunk func not larger" true (size g <= size f))
      (Refute.Gen.shrink_func f)
  done

let test_verdict_fail_detection () =
  (* the oracle plumbing, not the checked code: a hand-built impossible
     claim must be reported as Fail, proving the engine can see red *)
  let d =
    Pom.Analysis.Diagnostic.error ~code:"POM401" ~loc:[ "refute" ] "synthetic"
  in
  Alcotest.(check bool) "is_fail" true (Oracle.is_fail (Oracle.Fail d));
  Alcotest.(check bool) "pass is not fail" false (Oracle.is_fail Oracle.Pass)

let () =
  Alcotest.run "refute"
    [
      ( "corpus",
        [
          Alcotest.test_case "bless or check pinned cases" `Quick
            test_bless_or_check_corpus;
          Alcotest.test_case "replay committed corpus" `Quick
            test_corpus_replay;
          Alcotest.test_case "save/load round trip" `Quick
            test_corpus_roundtrip;
          Alcotest.test_case "corruption detection" `Quick
            test_corpus_corruption;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "historical inexactness counterexample" `Quick
            test_historical_case_documents_inexactness;
          Alcotest.test_case "verdict plumbing" `Quick
            test_verdict_fail_detection;
        ] );
      ( "engine",
        [
          Alcotest.test_case "deterministic under a seed" `Quick
            test_engine_deterministic;
          Alcotest.test_case "poly family clean" `Quick test_engine_poly_clean;
          Alcotest.test_case "semantic family clean" `Quick
            test_engine_semantic_clean;
          Alcotest.test_case "degrade family clean" `Quick
            test_engine_degrade_clean;
          Alcotest.test_case "qor family clean" `Quick test_engine_qor_clean;
          Alcotest.test_case "qor bounds sane" `Quick test_qor_bounds_sane;
          Alcotest.test_case "budget stops the search" `Quick
            test_engine_budget_stops;
          Alcotest.test_case "shrink candidates are smaller" `Quick
            test_shrink_produces_smaller_valid_cases;
        ] );
    ]
