(* The compile server: protocol round-trips, cold/warm cache behavior with
   bit-identical results, concurrent clients, mid-request disconnect
   cancelling the compile without taking the server down, and malformed
   input answered with typed errors. *)

module Server = Pom_server.Server
module Client = Pom_server.Client
module Protocol = Pom_server.Protocol
module Wire = Pom_wire.Wire
module Frame = Pom_wire.Frame

(* Unix-domain socket paths are capped near 108 bytes: build them in the
   system temp dir, never under the (deep) dune build tree. *)
let fresh_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pom-test-%d-%d.sock" (Unix.getpid ()) !n)

let with_server ?max_queue ?max_payload ?cache_journal f =
  let socket = fresh_socket () in
  let t = Server.start ?max_queue ?max_payload ?cache_journal ~socket () in
  Fun.protect
    ~finally:(fun () ->
      Server.request_stop t;
      Server.join t;
      if Sys.file_exists socket then Sys.remove socket)
    (fun () -> f ~socket t)

let scheduled_gemm size =
  let f = Pom.Workloads.Polybench.gemm size in
  Pom.Dsl.Func.schedule f (Pom.Dsl.Schedule.pipeline "s" "k" 1);
  f

let ok_result (r : Protocol.response) =
  match r.Protocol.outcome with
  | Ok v -> v
  | Error e ->
      Alcotest.failf "expected a successful compile, got %s: %s"
        e.Protocol.code e.Protocol.message

(* -------- protocol round-trips -------- *)

let test_protocol_roundtrip () =
  let req =
    Client.request ~id:42 ~deadline_s:1.5 ~use_cache:false ~client:"test"
      (scheduled_gemm 16)
  in
  let bytes = Wire.to_string Protocol.request_codec req in
  let back = Wire.of_string_exn Protocol.request_codec bytes in
  Alcotest.(check int) "id" 42 back.Protocol.id;
  Alcotest.(check bool) "use_cache" false back.Protocol.use_cache;
  Alcotest.(check (option (float 1e-9))) "deadline" (Some 1.5)
    back.Protocol.deadline_s;
  Alcotest.(check string) "cache key survives the wire"
    (Protocol.cache_key req) (Protocol.cache_key back);
  (* two schedules of one function must not collide in the cache *)
  let plain = Client.request (Pom.Workloads.Polybench.gemm 16) in
  let sched = Client.request (scheduled_gemm 16) in
  Alcotest.(check bool) "directives distinguish cache keys" false
    (Protocol.cache_key plain = Protocol.cache_key sched)

(* -------- cold / warm / bypass -------- *)

let test_cold_warm_bit_identity () =
  with_server @@ fun ~socket _t ->
  let request () = Client.request ~id:1 (scheduled_gemm 32) in
  let cold = Client.compile ~socket (request ()) in
  Alcotest.(check bool) "cold is computed" true
    (cold.Protocol.served = Protocol.Computed);
  let r_cold = ok_result cold in
  (* warm, cache allowed: a pure response-cache hit *)
  let warm = Client.compile ~socket (request ()) in
  Alcotest.(check bool) "warm is cached" true
    (warm.Protocol.served = Protocol.Cached);
  let r_warm = ok_result warm in
  Alcotest.(check string) "warm result is bit-identical"
    (Wire.to_string Protocol.result_codec r_cold)
    (Wire.to_string Protocol.result_codec r_warm);
  (* warm, cache bypassed: recompiles on the warm memo tables *)
  let recompute =
    Client.compile ~socket
      { (request ()) with Protocol.use_cache = false }
  in
  Alcotest.(check bool) "bypass recomputes" true
    (recompute.Protocol.served = Protocol.Computed);
  let m = recompute.Protocol.memo in
  Alcotest.(check bool) "recompute hits the report memo" true
    (m.Protocol.report_hits >= 1);
  Alcotest.(check bool) "recompute misses nothing" true
    (m.Protocol.report_misses = 0 && m.Protocol.schedule_misses = 0);
  let r_re = ok_result recompute in
  Alcotest.(check string) "memo-warm recompile is bit-identical"
    (Wire.to_string Protocol.result_codec r_cold)
    (Wire.to_string Protocol.result_codec r_re)

(* -------- concurrent clients -------- *)

let test_concurrent_clients () =
  with_server @@ fun ~socket t ->
  let sizes = [| 16; 24; 32; 16 |] in
  let results = Array.make (Array.length sizes) None in
  let threads =
    Array.mapi
      (fun i size ->
        Thread.create
          (fun () ->
            let r =
              Client.compile ~socket
                (Client.request ~id:i (scheduled_gemm size))
            in
            results.(i) <- Some r)
          ())
      sizes
  in
  Array.iter Thread.join threads;
  Array.iteri
    (fun i r ->
      match r with
      | None -> Alcotest.failf "client %d got no response" i
      | Some r ->
          Alcotest.(check int) "response id echoes" i r.Protocol.r_id;
          ignore (ok_result r))
    results;
  let s = Server.stats t in
  Alcotest.(check int) "all requests accounted" (Array.length sizes)
    s.Protocol.requests;
  Alcotest.(check int) "all succeeded" (Array.length sizes)
    s.Protocol.succeeded;
  (* two clients asked for the identical design point: one computed it,
     and whichever arrived second was served from cache or computed on a
     fully warm memo — either way nothing failed and the server kept
     exactly one entry per distinct key *)
  Alcotest.(check int) "one cache entry per distinct key" 3
    s.Protocol.cache_entries

(* -------- mid-request disconnect -------- *)

let test_disconnect_cancels () =
  with_server @@ fun ~socket t ->
  (* a client that sends a non-trivial compile and hangs up immediately:
     the budget's cancel poll must abort the work, the server must keep
     serving *)
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  let oc = Unix.out_channel_of_descr fd in
  let f = Pom.Workloads.Polybench.seidel 128 in
  Protocol.write_client_msg oc
    (Protocol.Compile (Client.request ~id:7 ~framework:`Pom_auto f));
  Unix.sleepf 0.1;
  (* the request is decoded and queued/running *)
  Unix.close fd;
  (* the server answers other clients while (and after) the abandoned
     compile is cancelled *)
  let r = Client.compile ~socket (Client.request ~id:8 (scheduled_gemm 16)) in
  ignore (ok_result r);
  (* the abandoned request must eventually be accounted as failed
     (cancelled), not hang the executor *)
  let deadline = Unix.gettimeofday () +. 30.0 in
  let rec wait () =
    let s = Server.stats t in
    if s.Protocol.failed >= 1 then s
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "cancelled compile never settled"
    else begin
      Unix.sleepf 0.05;
      wait ()
    end
  in
  let s = wait () in
  Alcotest.(check int) "both requests seen" 2 s.Protocol.requests;
  Alcotest.(check int) "the live client succeeded" 1 s.Protocol.succeeded

(* -------- malformed input -------- *)

let raw_exchange ~socket bytes =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket);
      let oc = Unix.out_channel_of_descr fd in
      output_string oc bytes;
      flush oc;
      (* half-close so a torn record reads as EOF now, not as a stalled
         stream the server waits out *)
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      Protocol.read_server_msg (Unix.in_channel_of_descr fd))

let expect_error_code ~socket bytes code =
  match raw_exchange ~socket bytes with
  | Protocol.Response { Protocol.outcome = Error e; _ } ->
      Alcotest.(check string) "typed error code" code e.Protocol.code
  | Protocol.Response _ -> Alcotest.fail "expected an error response"
  | Protocol.Server_stats _ | Protocol.Health _ ->
      Alcotest.fail "expected a compile response"

let test_malformed_requests () =
  with_server ~max_payload:4096 @@ fun ~socket _t ->
  (* garbage magic *)
  expect_error_code ~socket "GARBAGE-NOT-A-FRAME" "POM308";
  (* valid header, torn record *)
  let torn =
    let b = Buffer.create 64 in
    Buffer.add_string b
      (Frame.header_to_string
         { Frame.kind = Protocol.request_kind; version = Protocol.version });
    let rec_buf = Buffer.create 64 in
    Frame.add_record rec_buf ~tag:1 (String.make 64 'x');
    Buffer.add_string b
      (String.sub (Buffer.contents rec_buf) 0 (Buffer.length rec_buf - 7));
    Buffer.contents b
  in
  expect_error_code ~socket torn "POM308";
  (* CRC-intact record whose payload is not a request *)
  let undecodable =
    let b = Buffer.create 64 in
    Buffer.add_string b
      (Frame.header_to_string
         { Frame.kind = Protocol.request_kind; version = Protocol.version });
    Frame.add_record b ~tag:1 "not a request record";
    Buffer.contents b
  in
  expect_error_code ~socket undecodable "POM308";
  (* a payload above the server's cap must be rejected, not allocated *)
  let oversized =
    let b = Buffer.create 8192 in
    Buffer.add_string b
      (Frame.header_to_string
         { Frame.kind = Protocol.request_kind; version = Protocol.version });
    Frame.add_record b ~tag:1 (String.make 8000 'y');
    Buffer.contents b
  in
  expect_error_code ~socket oversized "POM308";
  (* schema version gap *)
  let wrong_version =
    Frame.header_to_string
      { Frame.kind = Protocol.request_kind; version = Protocol.version + 1 }
    ^
    let b = Buffer.create 16 in
    Frame.add_record b ~tag:2 (Wire.to_string Wire.unit ());
    Buffer.contents b
  in
  expect_error_code ~socket wrong_version "POM309";
  (* after all that abuse the server still compiles *)
  let r = Client.compile ~socket (Client.request (scheduled_gemm 16)) in
  ignore (ok_result r)

(* -------- admission control -------- *)

let test_admission_overload () =
  with_server ~max_queue:1 @@ fun ~socket _t ->
  (* occupy the executor with a compile that outlives the test window,
     then fill the queue; the next request must bounce with POM310 *)
  let slow_fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect slow_fd (Unix.ADDR_UNIX socket);
  Protocol.write_client_msg
    (Unix.out_channel_of_descr slow_fd)
    (Protocol.Compile
       (Client.request ~id:100 ~framework:`Pom_auto
          (Pom.Workloads.Polybench.seidel 256)));
  Unix.sleepf 0.15;
  (* executor busy: this one parks in the queue *)
  let queued_fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect queued_fd (Unix.ADDR_UNIX socket);
  Protocol.write_client_msg
    (Unix.out_channel_of_descr queued_fd)
    (Protocol.Compile (Client.request ~id:101 (scheduled_gemm 16)));
  Unix.sleepf 0.1;
  (* queue full: rejected immediately with the typed overload error *)
  let r = Client.compile ~socket (Client.request ~id:102 (scheduled_gemm 24)) in
  (match r.Protocol.outcome with
  | Error e -> Alcotest.(check string) "overload code" "POM310" e.Protocol.code
  | Ok _ -> Alcotest.fail "expected POM310 overload");
  (* release everything: the abandoned slow compile cancels via its
     budget, the queued request completes *)
  Unix.close slow_fd;
  let queued = Protocol.read_server_msg (Unix.in_channel_of_descr queued_fd) in
  (match queued with
  | Protocol.Response qr -> ignore (ok_result qr)
  | Protocol.Server_stats _ | Protocol.Health _ ->
      Alcotest.fail "expected a compile response");
  Unix.close queued_fd

(* -------- shutdown over the wire -------- *)

let test_shutdown_request () =
  let socket = fresh_socket () in
  let t = Server.start ~socket () in
  ignore (Client.compile ~socket (Client.request (scheduled_gemm 16)));
  let s = Client.shutdown ~socket in
  Alcotest.(check int) "one request served before shutdown" 1
    s.Protocol.requests;
  (* join must return promptly and release the socket *)
  let t0 = Unix.gettimeofday () in
  Server.join t;
  Alcotest.(check bool) "join is prompt" true (Unix.gettimeofday () -. t0 < 10.0);
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists socket)

(* -------- stale-socket recovery -------- *)

let test_stale_socket_recovered () =
  let socket = fresh_socket () in
  (* a daemon that died without unlinking: the file is a socket, but
     nobody answers on it *)
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX socket);
  Unix.close fd;
  Alcotest.(check bool) "stale socket left behind" true
    (Sys.file_exists socket);
  let t = Server.start ~socket () in
  Fun.protect
    ~finally:(fun () ->
      Server.request_stop t;
      Server.join t;
      if Sys.file_exists socket then Sys.remove socket)
    (fun () ->
      let r = Client.compile ~socket (Client.request (scheduled_gemm 16)) in
      ignore (ok_result r))

let test_live_socket_not_stolen () =
  with_server @@ fun ~socket _t ->
  match Server.start ~socket () with
  | t2 ->
      Server.request_stop t2;
      Server.join t2;
      Alcotest.fail "second daemon bound over a live one"
  | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) -> ()

let test_non_socket_file_untouched () =
  let path = fresh_socket () in
  let oc = open_out path in
  output_string oc "precious bytes";
  close_out oc;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      (match Server.start ~socket:path () with
      | t ->
          Server.request_stop t;
          Server.join t;
          Alcotest.fail "server bound over a regular file"
      | exception Unix.Unix_error _ -> ());
      let ic = open_in path in
      let contents = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check string) "file left untouched" "precious bytes" contents)

(* -------- health probe -------- *)

let test_ping_health () =
  with_server @@ fun ~socket _t ->
  let h = Client.ping ~socket in
  Alcotest.(check bool) "executor live" true h.Protocol.h_executor_live;
  Alcotest.(check int) "no respawns yet" 0 h.Protocol.h_executor_respawns;
  Alcotest.(check int) "queue empty" 0 h.Protocol.h_queue_depth;
  Alcotest.(check int) "cache empty" 0 h.Protocol.h_cache_entries;
  Alcotest.(check (option int)) "journal off" None h.Protocol.h_journal_lag;
  Alcotest.(check bool) "uptime sane" true (h.Protocol.h_uptime_s >= 0.0);
  ignore (Client.compile ~socket (Client.request (scheduled_gemm 16)));
  let h = Client.ping ~socket in
  Alcotest.(check int) "cache grew" 1 h.Protocol.h_cache_entries

(* -------- durable cache journal -------- *)

let test_journal_warm_start () =
  let journal = Filename.temp_file "pom-cache-journal" ".bin" in
  Sys.remove journal;
  (* the server creates it *)
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists journal then Sys.remove journal)
    (fun () ->
      let req () = Client.request ~id:5 (scheduled_gemm 32) in
      let cold_bytes =
        with_server ~cache_journal:journal @@ fun ~socket _t ->
        let r = Client.compile ~socket (req ()) in
        let h = Client.ping ~socket in
        Alcotest.(check (option int)) "insert journaled" (Some 0)
          h.Protocol.h_journal_lag;
        Wire.to_string Protocol.result_codec (ok_result r)
      in
      (* a restarted daemon replays the journal into its cache and serves
         the old request as a hit, bit-identically *)
      with_server ~cache_journal:journal @@ fun ~socket _t ->
      let h = Client.ping ~socket in
      Alcotest.(check int) "entry replayed at startup" 1
        h.Protocol.h_cache_entries;
      Alcotest.(check (option int)) "journal synced after replay" (Some 0)
        h.Protocol.h_journal_lag;
      let warm = Client.compile ~socket (req ()) in
      Alcotest.(check bool) "served from the replayed cache" true
        (warm.Protocol.served = Protocol.Cached);
      Alcotest.(check string) "bit-identical across the restart" cold_bytes
        (Wire.to_string Protocol.result_codec (ok_result warm)))

(* -------- executor supervision -------- *)

let test_executor_crash_respawns () =
  Pom.Resilience.Fault.configure "server:executor=fail@1";
  Fun.protect ~finally:Pom.Resilience.Fault.reset @@ fun () ->
  with_server @@ fun ~socket _t ->
  (* first request rides the crashing executor: typed POM312, charged to
     this request alone *)
  let crashed = Client.compile ~socket (Client.request (scheduled_gemm 16)) in
  (match crashed.Protocol.outcome with
  | Error e ->
      Alcotest.(check string) "typed executor-crash code" "POM312"
        e.Protocol.code
  | Ok _ -> Alcotest.fail "expected the injected executor crash");
  (* the respawned executor serves the next request *)
  let ok = Client.compile ~socket (Client.request (scheduled_gemm 16)) in
  ignore (ok_result ok);
  let h = Client.ping ~socket in
  Alcotest.(check bool) "executor live again" true h.Protocol.h_executor_live;
  Alcotest.(check int) "respawn counted" 1 h.Protocol.h_executor_respawns

(* -------- daemon kill -9: retry, then local fallback -------- *)

(* the design fingerprint both paths must agree on: stopwatch and trace
   legitimately differ, everything else must not *)
let design_bytes (v : Protocol.result) =
  Wire.to_string Protocol.result_codec
    { v with Protocol.dse_time_s = 0.0; trace = [] }

let test_daemon_kill_local_fallback_bit_identical () =
  let req () = Client.request ~id:9 (scheduled_gemm 32) in
  (* golden: what a healthy server serves *)
  let golden =
    with_server @@ fun ~socket _t ->
    design_bytes (ok_result (Client.compile ~socket (req ())))
  in
  (* a real daemon process, kill -9'd: the socket file stays behind with
     nobody listening, so every retry sees a transient connection error *)
  let socket = fresh_socket () in
  let exe = Pom.Dse.Workpool.default_exe () in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid =
    Unix.create_process exe
      [| exe; "--serve"; socket |]
      devnull devnull devnull
  in
  Unix.close devnull;
  let deadline = Unix.gettimeofday () +. 10.0 in
  while (not (Sys.file_exists socket)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.02
  done;
  Alcotest.(check bool) "daemon bound its socket" true (Sys.file_exists socket);
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists socket then Sys.remove socket)
    (fun () ->
      let retried = ref 0 in
      let policy =
        {
          Pom.Resilience.Retry.default with
          Pom.Resilience.Retry.retries = 2;
          base_s = 0.01;
        }
      in
      (match
         Client.compile_retry ~policy
           ~on_retry:(fun ~attempt:_ ~delay_s:_ _ -> incr retried)
           ~socket (req ())
       with
      | _ -> Alcotest.fail "a kill -9'd daemon answered a request"
      | exception (Unix.Unix_error _ | End_of_file | Sys_error _) -> ());
      Alcotest.(check int) "every retry was consumed first" 2 !retried;
      (* the client's degradation: compile the same request locally, with
         the server's own result projection — must be the golden design *)
      let c =
        Pom.compile ~device:Pom.Hls.Device.xc7z020 ~framework:`Pom_manual
          ~dnn:false ~jobs:1 (scheduled_gemm 32)
      in
      Alcotest.(check string) "local fallback is bit-identical" golden
        (design_bytes (Protocol.result_of_compiled c)))

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [ Alcotest.test_case "round-trips" `Quick test_protocol_roundtrip ] );
      ( "cache",
        [
          Alcotest.test_case "cold/warm bit-identity" `Quick
            test_cold_warm_bit_identity;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "concurrent clients" `Quick test_concurrent_clients;
          Alcotest.test_case "mid-request disconnect" `Quick
            test_disconnect_cancels;
          Alcotest.test_case "shutdown request" `Quick test_shutdown_request;
        ] );
      ( "hardening",
        [
          Alcotest.test_case "malformed requests" `Quick test_malformed_requests;
          Alcotest.test_case "admission overload" `Quick test_admission_overload;
        ] );
      ( "self-healing",
        [
          Alcotest.test_case "stale socket recovered" `Quick
            test_stale_socket_recovered;
          Alcotest.test_case "live socket not stolen" `Quick
            test_live_socket_not_stolen;
          Alcotest.test_case "non-socket file untouched" `Quick
            test_non_socket_file_untouched;
          Alcotest.test_case "ping answers health" `Quick test_ping_health;
          Alcotest.test_case "cache journal warm-starts a restart" `Quick
            test_journal_warm_start;
          Alcotest.test_case "executor crash is POM312 + respawn" `Quick
            test_executor_crash_respawns;
          Alcotest.test_case "kill -9'd daemon: retries then local fallback"
            `Quick test_daemon_kill_local_fallback_bit_identical;
        ] );
    ]
