lib/cfront/lexer.ml: Format List String
