lib/cfront/parse.ml: Dtype Expr Format Func Lexer Linexpr List Placeholder Pom_dsl Pom_poly Printf Schedule Var
