lib/cfront/lexer.mli: Format
