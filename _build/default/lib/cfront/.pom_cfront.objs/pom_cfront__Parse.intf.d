lib/cfront/parse.mli: Pom_dsl
