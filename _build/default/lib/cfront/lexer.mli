(** Tokenizer for the HLS C kernel subset accepted by {!Parse}. *)

type token =
  | Ident of string
  | Int of int
  | Float of float
  | Punct of string  (** one of the recognized operators/delimiters *)
  | Eof

exception Lex_error of string

(** Tokenize a whole source string.  Line ([//]) and block ([/* */])
    comments and [#pragma]/[#include] lines are skipped. *)
val tokenize : string -> token list

val pp_token : Format.formatter -> token -> unit
