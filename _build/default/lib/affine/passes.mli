(** Cleanup passes on the annotated affine dialect, run before emission:

    - {!merge_guards} flattens nested [If] nodes into one conjunction;
    - {!hoist_guards} moves guard conjuncts that do not depend on a loop's
      iterator out of that loop, so a guard introduced by fusing statements
      with different domains is tested once per outer iteration instead of
      once per point;
    - {!simplify} composes both and drops statically-true guards. *)

val merge_guards : Ir.node list -> Ir.node list

val hoist_guards : Ir.node list -> Ir.node list

val simplify : Ir.func -> Ir.func
