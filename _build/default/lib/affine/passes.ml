open Pom_poly

let rec merge_node = function
  | Ir.If (g1, [ Ir.If (g2, body) ]) -> merge_node (Ir.If (g1 @ g2, body))
  | Ir.If (g, body) -> Ir.If (g, merge_guards body)
  | Ir.For { iter; lbs; ubs; attrs; body } ->
      Ir.For { iter; lbs; ubs; attrs; body = merge_guards body }
  | Ir.Op _ as op -> op

and merge_guards nodes = List.map merge_node nodes

(* Split one loop's body guards into conjuncts mentioning the iterator and
   conjuncts that can move outside the loop. *)
let rec hoist_node = function
  | Ir.For { iter; lbs; ubs; attrs; body } -> (
      let body = hoist_guards body in
      match body with
      | [ Ir.If (guards, inner) ] ->
          let dependent, invariant =
            List.partition (fun c -> List.mem iter (Constr.dims c)) guards
          in
          let loop_body =
            if dependent = [] then inner else [ Ir.If (dependent, inner) ]
          in
          let loop = Ir.For { iter; lbs; ubs; attrs; body = loop_body } in
          if invariant = [] then loop else Ir.If (invariant, [ loop ])
      | body -> Ir.For { iter; lbs; ubs; attrs; body })
  | Ir.If (g, body) -> Ir.If (g, hoist_guards body)
  | Ir.Op _ as op -> op

and hoist_guards nodes = List.map hoist_node nodes

let rec drop_trivial_node = function
  | Ir.If (guards, body) -> (
      let guards = List.filter (fun c -> not (Constr.is_tautology c)) guards in
      let body = drop_trivial body in
      match guards with [] -> body | _ -> [ Ir.If (guards, body) ])
  | Ir.For { iter; lbs; ubs; attrs; body } ->
      [ Ir.For { iter; lbs; ubs; attrs; body = drop_trivial body } ]
  | Ir.Op _ as op -> [ op ]

and drop_trivial nodes = List.concat_map drop_trivial_node nodes

let simplify (f : Ir.func) =
  { f with Ir.body = drop_trivial (hoist_guards (merge_guards f.Ir.body)) }
