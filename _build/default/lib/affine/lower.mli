(** Lowering from the polyhedral IR to the annotated affine dialect
    (Fig. 9 (d)): the polyhedral AST's for/if/user nodes map to affine
    loops, guards, and statements; the computation statements reserved in
    the DSL are re-indexed through each statement's index map and user
    bindings; hardware-optimization attributes attached at the polyhedral
    level surface as loop attributes. *)

val lower : Pom_polyir.Prog.t -> Ir.func

(** Convert an affine expression to a DSL index expression (used when
    rewriting statement bodies over the AST iterators). *)
val index_of_linexpr : Pom_poly.Linexpr.t -> Pom_dsl.Expr.index
