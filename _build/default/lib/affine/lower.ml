open Pom_poly
open Pom_dsl
open Pom_polyir

let index_of_linexpr e =
  let terms =
    List.map
      (fun d ->
        let c = Linexpr.coeff e d in
        if c = 1 then Expr.Ix_var d else Expr.Ix_mul (c, Expr.Ix_var d))
      (Linexpr.dims e)
  in
  let k = Linexpr.const_of e in
  let init = if k = 0 && terms <> [] then None else Some (Expr.Ix_const k) in
  match
    List.fold_left
      (fun acc t ->
        match acc with None -> Some t | Some a -> Some (Expr.Ix_add (a, t)))
      init terms
  with
  | Some ix -> ix
  | None -> Expr.Ix_const 0

(* Rewrite a statement body over the AST iterators: original iterator ->
   index-map expression (over current dims) -> rename current dims to AST
   iterators. *)
let stmt_of_user prog (user : Ast.user) =
  let s = Prog.stmt prog user.Ast.stmt in
  let to_ast_iters e =
    Linexpr.subst_all
      (List.map (fun (d, iter) -> (d, Linexpr.var iter)) user.Ast.bindings)
      e
  in
  let bindings =
    List.map
      (fun (orig, e) -> (orig, index_of_linexpr (to_ast_iters e)))
      s.Stmt_poly.index_map
  in
  let compute = s.Stmt_poly.compute in
  let dest_p, dest_ixs = compute.Compute.dest in
  let subst_ix ix =
    match Expr.subst_indices bindings (Expr.Load (dest_p, [ ix ])) with
    | Expr.Load (_, [ ix' ]) -> ix'
    | _ -> assert false
  in
  {
    Ir.compute_name = user.Ast.stmt;
    dest = (dest_p, List.map subst_ix dest_ixs);
    rhs = Expr.subst_indices bindings compute.Compute.body;
  }

(* Attributes for a loop: pipeline/unroll requests of any statement whose
   schedule dimension is bound to this AST iterator. *)
let attrs_for prog iter body_users =
  let merge acc (user : Ast.user) =
    let s = Prog.stmt prog user.Ast.stmt in
    let dims_here =
      List.filter_map
        (fun (d, it) -> if it = iter then Some d else None)
        user.Ast.bindings
    in
    let { Stmt_poly.pipeline; unrolls } = s.Stmt_poly.hw in
    let acc =
      match pipeline with
      | Some (d, ii) when List.mem d dims_here ->
          {
            acc with
            Ir.pipeline_ii =
              Some
                (match acc.Ir.pipeline_ii with
                | Some ii' -> min ii ii'
                | None -> ii);
          }
      | _ -> acc
    in
    List.fold_left
      (fun acc (d, f) ->
        if List.mem d dims_here then
          {
            acc with
            Ir.unroll_factor =
              Some
                (match acc.Ir.unroll_factor with
                | Some f' -> max f f'
                | None -> f);
          }
        else acc)
      acc unrolls
  in
  List.fold_left merge Ir.no_attrs body_users

let rec lower_node prog = function
  | Ast.For { iter; lbs; ubs; body } ->
      let attrs = attrs_for prog iter (Ast.users body) in
      Ir.For { iter; lbs; ubs; attrs; body = List.map (lower_node prog) body }
  | Ast.If (guards, body) -> Ir.If (guards, List.map (lower_node prog) body)
  | Ast.User u -> Ir.Op (stmt_of_user prog u)

let lower prog =
  let forest = Prog.to_ast prog in
  let arrays =
    List.map
      (fun p ->
        let partition = Prog.partition_of prog p in
        let kind =
          match List.assoc_opt p.Placeholder.name prog.Prog.partitions with
          | Some (_, kind) -> kind
          | None -> Schedule.Cyclic
        in
        { Ir.placeholder = p; partition; partition_kind = kind })
      (Func.placeholders prog.Prog.func)
  in
  {
    Ir.name = Func.name prog.Prog.func;
    arrays;
    body = List.map (lower_node prog) forest;
  }
