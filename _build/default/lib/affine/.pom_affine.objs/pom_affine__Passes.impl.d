lib/affine/passes.ml: Constr Ir List Pom_poly
