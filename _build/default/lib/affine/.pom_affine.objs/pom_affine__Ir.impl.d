lib/affine/ir.ml: Ast Constr Expr Format Linexpr List Placeholder Pom_dsl Pom_poly Schedule
