lib/affine/lower.ml: Ast Compute Expr Func Ir Linexpr List Placeholder Pom_dsl Pom_poly Pom_polyir Prog Schedule Stmt_poly
