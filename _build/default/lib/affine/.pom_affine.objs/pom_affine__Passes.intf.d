lib/affine/passes.mli: Ir
