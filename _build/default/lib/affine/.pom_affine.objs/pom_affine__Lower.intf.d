lib/affine/lower.mli: Ir Pom_dsl Pom_poly Pom_polyir
