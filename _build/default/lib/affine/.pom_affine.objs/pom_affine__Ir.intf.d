lib/affine/ir.mli: Expr Format Placeholder Pom_dsl Pom_poly Schedule
