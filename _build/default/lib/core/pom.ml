module Poly = Pom_poly
module Dsl = Pom_dsl
module Depgraph = Pom_depgraph
module Polyir = Pom_polyir
module Affine = Pom_affine
module Emit = Pom_emit
module Sim = Pom_sim
module Hls = Pom_hls
module Dse = Pom_dse
module Baselines = Pom_baselines
module Workloads = Pom_workloads
module Cfront = Pom_cfront

type framework =
  [ `Baseline | `Pluto | `Polsca | `Scalehls | `Pom_manual | `Pom_auto ]

type compiled = {
  framework : framework;
  prog : Pom_polyir.Prog.t;
  report : Pom_hls.Report.t;
  hls_c : string;
  dse_time_s : float;
  tile_vectors : (string * int list) list;
  baseline_latency : int;
}

let compile ?(device = Pom_hls.Device.xc7z020) ?(framework = `Pom_auto)
    ?(dnn = false) func =
  let baseline_latency = Pom_hls.Report.baseline_latency func in
  let prog, report, dse_time_s, tile_vectors =
    match framework with
    | `Baseline ->
        let prog =
          List.fold_left Pom_polyir.Prog.apply
            (Pom_polyir.Prog.of_func_unscheduled func)
            (Pom_baselines.Butil.structural_directives func)
        in
        (prog, Pom_hls.Report.synthesize ~device prog, 0.0, [])
    | `Pluto ->
        let r = Pom_baselines.Pluto.run ~device func in
        (r.Pom_baselines.Pluto.prog, r.Pom_baselines.Pluto.report, 0.0, [])
    | `Polsca ->
        let r = Pom_baselines.Polsca.run ~device func in
        (r.Pom_baselines.Polsca.prog, r.Pom_baselines.Polsca.report, 0.0, [])
    | `Scalehls ->
        let r = Pom_baselines.Scalehls.run ~device ~dnn func in
        ( r.Pom_baselines.Scalehls.prog,
          r.Pom_baselines.Scalehls.report,
          r.Pom_baselines.Scalehls.dse_time_s,
          r.Pom_baselines.Scalehls.tile_vectors )
    | `Pom_manual ->
        let prog = Pom_polyir.Prog.of_func func in
        (prog, Pom_hls.Report.synthesize ~device prog, 0.0, [])
    | `Pom_auto ->
        let o = Pom_dse.Engine.run ~device func in
        let r = o.Pom_dse.Engine.result in
        ( r.Pom_dse.Stage2.prog,
          r.Pom_dse.Stage2.report,
          o.Pom_dse.Engine.dse_time_s,
          r.Pom_dse.Stage2.tile_vectors )
  in
  {
    framework;
    prog;
    report;
    hls_c =
      Pom_emit.Emit.hls_c
        (Pom_affine.Passes.simplify (Pom_affine.Lower.lower prog));
    dse_time_s;
    tile_vectors;
    baseline_latency;
  }

let mlir c =
  Pom_emit.Emit_mlir.mlir
    (Pom_affine.Passes.simplify (Pom_affine.Lower.lower c.prog))

let speedup c =
  Pom_hls.Report.speedup ~baseline:c.baseline_latency c.report

let validate func c = Pom_sim.Interp.divergence func c.prog

let check_legality func c =
  let original =
    List.fold_left Pom_polyir.Prog.apply
      (Pom_polyir.Prog.of_func_unscheduled func)
      (Pom_baselines.Butil.structural_directives func)
  in
  Pom_polyir.Legality.violations ~original ~transformed:c.prog
