type bound = { coef : int; expr : Linexpr.t }

type user = { stmt : string; bindings : (string * string) list }

type t =
  | For of { iter : string; lbs : bound list; ubs : bound list; body : t list }
  | If of Constr.t list * t list
  | User of user

let bound coef expr =
  if coef <= 0 then invalid_arg "Ast.bound: coefficient must be positive";
  { coef; expr }

let cdiv a b =
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) = (b < 0) then q + 1 else q

let fdiv a b =
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

let eval_lb env lbs =
  match lbs with
  | [] -> invalid_arg "Ast.eval_lb: no lower bound"
  | _ ->
      List.fold_left
        (fun acc b -> max acc (cdiv (Linexpr.eval env b.expr) b.coef))
        min_int lbs

let eval_ub env ubs =
  match ubs with
  | [] -> invalid_arg "Ast.eval_ub: no upper bound"
  | _ ->
      List.fold_left
        (fun acc b -> min acc (fdiv (Linexpr.eval env b.expr) b.coef))
        max_int ubs

let rec users_of_node = function
  | For { body; _ } -> users body
  | If (_, body) -> users body
  | User u -> [ u ]

and users forest = List.concat_map users_of_node forest

let rec depth_of_node = function
  | For { body; _ } -> 1 + loop_depth body
  | If (_, body) -> loop_depth body
  | User _ -> 0

and loop_depth forest =
  List.fold_left (fun acc n -> max acc (depth_of_node n)) 0 forest

let pp_bound_lb ppf b =
  if b.coef = 1 then Linexpr.pp ppf b.expr
  else Format.fprintf ppf "ceil((%a)/%d)" Linexpr.pp b.expr b.coef

let pp_bound_ub ppf b =
  if b.coef = 1 then Linexpr.pp ppf b.expr
  else Format.fprintf ppf "floor((%a)/%d)" Linexpr.pp b.expr b.coef

let pp_bounds pp_one combiner ppf = function
  | [ b ] -> pp_one ppf b
  | bs ->
      Format.fprintf ppf "%s(%a)" combiner
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           pp_one)
        bs

let rec pp ppf node =
  match node with
  | For { iter; lbs; ubs; body } ->
      Format.fprintf ppf "@[<v 2>for %s = %a to %a {@,%a@]@,}" iter
        (pp_bounds pp_bound_lb "max") lbs
        (pp_bounds pp_bound_ub "min") ubs pp_forest body
  | If (guards, body) ->
      Format.fprintf ppf "@[<v 2>if (%a) {@,%a@]@,}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " and ")
           Constr.pp)
        guards pp_forest body
  | User u ->
      Format.fprintf ppf "%s(%s)" u.stmt
        (String.concat ", " (List.map snd u.bindings))

and pp_forest ppf forest =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp ppf forest
