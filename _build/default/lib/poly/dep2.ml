type side = { domain : Basic_set.t; sched : Sched.t; access : Dep.access }

(* One statement instance's schedule-time vector, with iteration dims
   renamed by [tag]: alternating static constants and affine coordinates. *)
type time_item = C of int | V of Linexpr.t

let rename_expr tag e =
  List.fold_left (fun e d -> Linexpr.rename_dim d (tag ^ d) e) e
    (Linexpr.dims e)

let time_vector tag side =
  List.map
    (function
      | Sched.Const c -> C c
      | Sched.Dim d -> V (Linexpr.var (tag ^ d)))
    (Sched.items side.sched)

(* pad the shorter vector with trailing zero constants so positions align *)
let align a b =
  let la = List.length a and lb = List.length b in
  let pad v n = v @ List.init n (fun _ -> C 0) in
  if la < lb then (pad a (lb - la), b)
  else if lb < la then (a, pad b (la - lb))
  else (a, b)

let src_tag = "s$"

let snk_tag = "t$"

let base_constraints ~source ~sink =
  let dom tag side =
    List.map
      (fun c ->
        let e = rename_expr tag (Constr.expr c) in
        match c with Constr.Eq _ -> Constr.Eq e | Constr.Ge _ -> Constr.Ge e)
      (Basic_set.constraints side.domain)
  in
  if source.access.Dep.array <> sink.access.Dep.array then None
  else if
    List.length source.access.Dep.indices
    <> List.length sink.access.Dep.indices
  then None
  else
    let same_element =
      List.map2
        (fun i j -> Constr.eq (rename_expr src_tag i) (rename_expr snk_tag j))
        source.access.Dep.indices sink.access.Dep.indices
    in
    Some (dom src_tag source @ dom snk_tag sink @ same_element)

let all_dims ~source ~sink =
  List.map (( ^ ) src_tag) (Basic_set.dims source.domain)
  @ List.map (( ^ ) snk_tag) (Basic_set.dims sink.domain)

(* Branch sets of the lexicographic order first ≺ second between the two
   aligned time vectors: one basic-set constraint list per viable branch
   position.  [first]/[second] select which side is required earlier. *)
let order_branches first_vec second_vec =
  let rec go prefix_eq pos = function
    | [], [] -> []
    | a :: rest_a, b :: rest_b ->
        let strict_here =
          match (a, b) with
          | C x, C y -> if x < y then Some [] else None
          | V x, V y -> Some [ Constr.lt x y ]
          | C x, V y -> Some [ Constr.gt y (Linexpr.const x) ]
          | V x, C y -> Some [ Constr.lt x (Linexpr.const y) ]
        in
        let this_branch =
          match strict_here with
          | Some cs -> [ prefix_eq @ cs ]
          | None -> []
        in
        let eq_here =
          match (a, b) with
          | C x, C y -> if x = y then Some [] else None
          | V x, V y -> Some [ Constr.eq x y ]
          | C x, V y -> Some [ Constr.eq (Linexpr.const x) y ]
          | V x, C y -> Some [ Constr.eq x (Linexpr.const y) ]
        in
        let rest =
          match eq_here with
          | Some cs -> go (prefix_eq @ cs) (pos + 1) (rest_a, rest_b)
          | None -> []
        in
        this_branch @ rest
    | _ -> assert false
  in
  go [] 0 (first_vec, second_vec)

let conflict_set ~first ~second ~source ~sink =
  match base_constraints ~source ~sink with
  | None -> Iset.empty (all_dims ~source ~sink)
  | Some base ->
      let dims = all_dims ~source ~sink in
      let branches = order_branches first second in
      Iset.of_list dims
        (List.map (fun order -> Basic_set.make dims (base @ order)) branches)

let forward_set ~source ~sink =
  let sv, tv = align (time_vector src_tag source) (time_vector snk_tag sink) in
  conflict_set ~first:sv ~second:tv ~source ~sink

let backward_set ~source ~sink =
  let sv, tv = align (time_vector src_tag source) (time_vector snk_tag sink) in
  conflict_set ~first:tv ~second:sv ~source ~sink

let exists_forward ~source ~sink = not (Iset.is_empty (forward_set ~source ~sink))

let exists_backward ~source ~sink =
  not (Iset.is_empty (backward_set ~source ~sink))

let time_distance ~source ~sink =
  let set = Iset.coalesce (forward_set ~source ~sink) in
  if Iset.disjuncts set = [] then None
  else
    let sv, tv =
      align (time_vector src_tag source) (time_vector snk_tag sink)
    in
    let levels =
      List.filter_map
        (fun (a, b) ->
          match (a, b) with
          | V x, V y -> Some (Linexpr.sub y x)
          | C x, C y -> Some (Linexpr.const (y - x))
          | C x, V y -> Some (Linexpr.sub y (Linexpr.const x))
          | V x, C y -> Some (Linexpr.sub (Linexpr.const y) x))
        (List.combine sv tv)
    in
    Some (List.map (fun diff -> (Iset.min_of diff set, Iset.max_of diff set)) levels)
