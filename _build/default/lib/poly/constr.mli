(** Affine constraints: equalities [e = 0] and inequalities [e >= 0]. *)

type t =
  | Eq of Linexpr.t  (** [e = 0] *)
  | Ge of Linexpr.t  (** [e >= 0] *)

val expr : t -> Linexpr.t

val is_eq : t -> bool

(** Smart constructors from comparisons between two expressions. *)

val eq : Linexpr.t -> Linexpr.t -> t

(** [ge a b] is the constraint [a >= b]. *)
val ge : Linexpr.t -> Linexpr.t -> t

(** [le a b] is the constraint [a <= b]. *)
val le : Linexpr.t -> Linexpr.t -> t

(** [lt a b] is the integer-strict constraint [a <= b - 1]. *)
val lt : Linexpr.t -> Linexpr.t -> t

val gt : Linexpr.t -> Linexpr.t -> t

(** Dimensions mentioned with non-zero coefficient. *)
val dims : t -> string list

val subst : string -> Linexpr.t -> t -> t

val subst_all : (string * Linexpr.t) list -> t -> t

val rename_dim : string -> string -> t -> t

(** [sat env c] checks the constraint under a total assignment. *)
val sat : (string -> int) -> t -> bool

(** Divide out the GCD of coefficients.  For inequalities the constant is
    tightened with a floor division (sound and exact over the integers); an
    equality whose constant is not divisible by the coefficient GCD is
    unsatisfiable and reported as [None]. *)
val normalize : t -> t option

(** Trivially true ([0 = 0] or [k >= 0] with [k >= 0])? *)
val is_tautology : t -> bool

(** Trivially false (constant expression violating the relation)? *)
val is_contradiction : t -> bool

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string
