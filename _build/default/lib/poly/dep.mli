(** Dependence analysis on polyhedral semantics.

    Given the iteration domain of a statement and two affine accesses to the
    same array, the dependence polyhedron is the set of (source, sink)
    iteration pairs that touch the same element with the source preceding
    the sink in the original lexicographic execution order.  Distances and
    direction vectors (Section II-A of the paper) are extracted by
    optimizing [sink_k - source_k] over that polyhedron, level by level. *)

(** An affine array access: index expressions over the domain dimensions. *)
type access = { array : string; indices : Linexpr.t list }

val access : string -> Linexpr.t list -> access

type direction = Lt | Eq | Gt | Star

(** Distance range for one loop level: min/max of [sink_k - source_k]. *)
type entry = { dmin : int option; dmax : int option }

(** A dependence carried at loop level [level] (1-based, outermost = 1):
    outer levels are equal, and the sink follows the source at [level]. *)
type level_dep = {
  level : int;
  distance : entry list;  (** one entry per loop level *)
}

type t = {
  carried : level_dep list;  (** non-empty; one per carrying level *)
  direction : direction list;  (** summary direction vector, per level *)
}

(** [analyze ~domain ~source ~sink] computes the dependence between the two
    accesses within a single statement's loop nest (source instance writes
    or reads [source], sink instance accesses [sink]; the caller decides
    which pairing — RAW, WAR, WAW — it is probing).  [None] when no pair of
    distinct-ordered instances conflicts.  Accesses to different arrays
    never conflict. *)
val analyze : domain:Basic_set.t -> source:access -> sink:access -> t option

(** First (outermost) level that carries the dependence. *)
val innermost_level : t -> int

val outermost_level : t -> int

(** Minimal distance at a given level across all carrying disjuncts at that
    level; [None] if the level carries nothing. *)
val min_distance_at : t -> int -> int option

(** The distance vector when it is constant (every level's min = max),
    e.g. [(0, 0, 1)] for a GEMM-style reduction. *)
val constant_distance : t -> int list option

(** The minimal-distance vector of the outermost carrying level: per-level
    minimum of [sink_k - source_k].  This is "the" distance vector in the
    paper's Fig. 1/Fig. 8 sense (the closest dependent reuse). *)
val min_distance_vector : t -> int option list

val pp_direction : Format.formatter -> direction -> unit

val pp : Format.formatter -> t -> unit
