lib/poly/constr.mli: Format Linexpr
