lib/poly/feasible.mli: Basic_set Linexpr
