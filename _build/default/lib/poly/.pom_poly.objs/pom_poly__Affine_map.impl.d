lib/poly/affine_map.ml: Basic_set Constr Format Linexpr List String
