lib/poly/dep.mli: Basic_set Format Linexpr
