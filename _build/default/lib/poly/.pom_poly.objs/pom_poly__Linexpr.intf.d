lib/poly/linexpr.mli: Format
