lib/poly/basic_set.mli: Constr Format Linexpr
