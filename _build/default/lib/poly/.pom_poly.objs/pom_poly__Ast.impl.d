lib/poly/ast.ml: Constr Format Linexpr List String
