lib/poly/dep2.mli: Basic_set Constr Dep Linexpr Sched
