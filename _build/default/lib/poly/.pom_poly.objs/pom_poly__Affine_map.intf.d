lib/poly/affine_map.mli: Basic_set Format Linexpr
