lib/poly/iset.mli: Basic_set Constr Format Linexpr
