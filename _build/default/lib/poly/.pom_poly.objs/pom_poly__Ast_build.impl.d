lib/poly/ast_build.ml: Ast Basic_set Constr Feasible Int Linexpr List Printf Sched String
