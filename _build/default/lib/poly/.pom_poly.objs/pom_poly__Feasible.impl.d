lib/poly/feasible.ml: Basic_set Constr Linexpr List Printf
