lib/poly/sched.ml: Format Int List String
