lib/poly/sched.mli: Format
