lib/poly/iset.ml: Basic_set Feasible Format List String
