lib/poly/constr.ml: Format Linexpr
