lib/poly/dep2.ml: Basic_set Constr Dep Iset Linexpr List Sched
