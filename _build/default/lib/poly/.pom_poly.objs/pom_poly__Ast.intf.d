lib/poly/ast.mli: Constr Format Linexpr
