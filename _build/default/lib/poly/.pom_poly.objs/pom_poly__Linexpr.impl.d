lib/poly/linexpr.ml: Format Int List Map String
