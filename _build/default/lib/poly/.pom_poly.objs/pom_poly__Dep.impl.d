lib/poly/dep.ml: Basic_set Constr Feasible Format Linexpr List Option String
