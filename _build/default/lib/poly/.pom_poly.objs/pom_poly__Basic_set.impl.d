lib/poly/basic_set.ml: Constr Format Linexpr List Printf String
