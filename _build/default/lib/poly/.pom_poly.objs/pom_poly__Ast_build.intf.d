lib/poly/ast_build.mli: Ast Basic_set Sched
