type t = Eq of Linexpr.t | Ge of Linexpr.t

let expr = function Eq e | Ge e -> e

let is_eq = function Eq _ -> true | Ge _ -> false

let eq a b = Eq (Linexpr.sub a b)

let ge a b = Ge (Linexpr.sub a b)

let le a b = Ge (Linexpr.sub b a)

let lt a b = Ge (Linexpr.sub (Linexpr.sub b a) (Linexpr.const 1))

let gt a b = lt b a

let dims c = Linexpr.dims (expr c)

let map f = function Eq e -> Eq (f e) | Ge e -> Ge (f e)

let subst d e' = map (Linexpr.subst d e')

let subst_all bindings = map (Linexpr.subst_all bindings)

let rename_dim o n = map (Linexpr.rename_dim o n)

let sat env = function
  | Eq e -> Linexpr.eval env e = 0
  | Ge e -> Linexpr.eval env e >= 0

(* floor division with sign-correct rounding toward negative infinity *)
let fdiv a b =
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

let normalize c =
  let e = expr c in
  let g = Linexpr.content e in
  if g = 0 then
    (* constant constraint *)
    match c with
    | Eq _ when Linexpr.const_of e = 0 -> Some c
    | Eq _ -> None
    | Ge _ when Linexpr.const_of e >= 0 -> Some c
    | Ge _ -> None
  else if g = 1 then Some c
  else
    match c with
    | Eq _ ->
        if Linexpr.const_of e mod g <> 0 then None
        else Some (Eq (Linexpr.div_exact g e))
    | Ge _ ->
        (* sum c_i d_i + k >= 0  <=>  sum (c_i/g) d_i >= ceil(-k/g)
           <=> sum (c_i/g) d_i + floor(k/g) >= 0 *)
        let k = Linexpr.const_of e in
        let scaled = Linexpr.sub e (Linexpr.const k) in
        let scaled = Linexpr.div_exact g scaled in
        Some (Ge (Linexpr.add scaled (Linexpr.const (fdiv k g))))

let is_tautology c =
  let e = expr c in
  Linexpr.is_const e
  &&
  match c with
  | Eq _ -> Linexpr.const_of e = 0
  | Ge _ -> Linexpr.const_of e >= 0

let is_contradiction c =
  let e = expr c in
  Linexpr.is_const e
  &&
  match c with
  | Eq _ -> Linexpr.const_of e <> 0
  | Ge _ -> Linexpr.const_of e < 0

let compare a b =
  match (a, b) with
  | Eq _, Ge _ -> -1
  | Ge _, Eq _ -> 1
  | Eq x, Eq y | Ge x, Ge y -> Linexpr.compare x y

let equal a b = compare a b = 0

let pp ppf = function
  | Eq e -> Format.fprintf ppf "%a = 0" Linexpr.pp e
  | Ge e -> Format.fprintf ppf "%a >= 0" Linexpr.pp e

let to_string c = Format.asprintf "%a" pp c
