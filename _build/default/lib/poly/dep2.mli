(** Cross-statement dependence analysis: conflicts between accesses of two
    different statements, each with its own iteration domain and (2d+1)
    schedule.  This is the general form behind fusion legality and
    whole-program transformation verification — statement instances are
    compared by their *schedule vectors* rather than their iteration
    vectors. *)

(** One statement's side of the query. *)
type side = {
  domain : Basic_set.t;
  sched : Sched.t;  (** its [Dim] items must be exactly the domain dims *)
  access : Dep.access;  (** indices over the domain dims *)
}

(** Does any instance pair conflict (same array element) with the [source]
    instance scheduled strictly before the [sink] instance?  Statements may
    be the same (pass the same side twice for self-dependences under a
    transformed schedule). *)
val exists_forward : source:side -> sink:side -> bool

(** Does any conflicting pair execute in the *reverse* order ([sink]
    scheduled strictly before [source])?  A transformation is illegal when
    a dependence that originally ran source->sink now has a conflicting
    pair scheduled sink-first. *)
val exists_backward : source:side -> sink:side -> bool

(** The schedule-time distance range of the conflict set at each shared
    schedule level: min/max of [time(sink) - time(source)] per level, or
    [None] when no conflict exists. *)
val time_distance :
  source:side -> sink:side -> (int option * int option) list option

(** {1 Low-level building blocks}

    Exposed for clients (such as the legality verifier) that compare
    custom schedule-time vectors — e.g. an original schedule composed
    through a transformation's index map. *)

(** A schedule-time coordinate: a static scalar or an affine coordinate
    over (renamed) iteration dimensions. *)
type time_item = C of int | V of Linexpr.t

(** Pad the shorter vector with trailing zero scalars. *)
val align : time_item list -> time_item list -> time_item list * time_item list

(** [order_branches a b] returns one constraint conjunction per viable
    branch of the lexicographic comparison [a < b]; their disjunction is
    the order relation.  Vectors must be aligned. *)
val order_branches : time_item list -> time_item list -> Constr.t list list
