type item = Const of int | Dim of string

type t = item list

let rec well_formed = function
  | [ Const _ ] -> true
  | Const _ :: Dim _ :: rest -> well_formed rest
  | _ -> false

let of_items items =
  if not (well_formed items) then
    invalid_arg "Sched.of_items: not an alternating (2d+1) sequence";
  items

let initial dims =
  of_items
    (Const 0 :: List.concat_map (fun d -> [ Dim d; Const 0 ]) dims)

let items t = t

let depth t =
  List.length (List.filter (function Dim _ -> true | Const _ -> false) t)

let dims t =
  List.filter_map (function Dim d -> Some d | Const _ -> None) t

let dim_at t k =
  match List.nth_opt (dims t) (k - 1) with
  | Some d -> d
  | None -> invalid_arg "Sched.dim_at: level out of range"

let level_of t d =
  let rec go k = function
    | [] -> None
    | d' :: rest -> if d' = d then Some k else go (k + 1) rest
  in
  go 1 (dims t)

let const_at t k =
  let consts = List.filter_map (function Const c -> Some c | Dim _ -> None) t in
  match List.nth_opt consts k with
  | Some c -> c
  | None -> invalid_arg "Sched.const_at: position out of range"

let set_const t k v =
  let idx = ref (-1) in
  List.map
    (function
      | Const c ->
          incr idx;
          if !idx = k then Const v else Const c
      | Dim d -> Dim d)
    t

let swap_levels t k1 k2 =
  let d1 = dim_at t k1 and d2 = dim_at t k2 in
  List.map
    (function
      | Dim d when d = d1 -> Dim d2
      | Dim d when d = d2 -> Dim d1
      | item -> item)
    t

let replace_dim t d items' =
  let rec go = function
    | [] -> invalid_arg ("Sched.replace_dim: no dimension " ^ d)
    | Dim d' :: rest when d' = d -> items' @ rest
    | item :: rest -> item :: go rest
  in
  of_items (go t)

let rename_dim t old_name new_name =
  List.map
    (function Dim d when d = old_name -> Dim new_name | item -> item)
    t

let lex_compare a b =
  let rec go a b =
    match (a, b) with
    | Const x :: a', Const y :: b' ->
        if x <> y then Int.compare x y else go a' b'
    | Dim _ :: a', Dim _ :: b' -> go a' b'
    | [], [] -> 0
    | _ ->
        (* structures diverge: order by remaining leading constants *)
        let lead = function Const c :: _ -> c | _ -> 0 in
        Int.compare (lead a) (lead b)
  in
  go a b

let pp ppf t =
  Format.fprintf ppf "[%s]"
    (String.concat ", "
       (List.map
          (function Const c -> string_of_int c | Dim d -> d)
          t))

let to_string t = Format.asprintf "%a" pp t
