type stmt = { name : string; domain : Basic_set.t; sched : Sched.t }

exception Schedule_error of string

(* Build state for one statement: domain dims are renamed to the canonical
   AST iterator as each schedule level is entered. *)
type state = {
  name : string;
  work : Basic_set.t;
  remaining : Sched.item list;
  bindings : (string * string) list;  (* original dim -> AST iterator *)
  used : Constr.t list;  (* normalized constraints enforced by loop bounds *)
  unprocessed : string list;  (* domain dims not yet entered *)
}

let normalize_exn c =
  match Constr.normalize c with
  | Some c' -> c'
  | None -> Constr.Ge (Linexpr.const (-1))

let constr_of_lower iter (coef, e) =
  normalize_exn (Constr.Ge (Linexpr.sub (Linexpr.term coef iter) e))

let constr_of_upper iter (coef, e) =
  normalize_exn (Constr.Ge (Linexpr.sub e (Linexpr.term coef iter)))

let sort_bounds bs =
  List.sort
    (fun (c1, e1) (c2, e2) ->
      match Int.compare c1 c2 with 0 -> Linexpr.compare e1 e2 | n -> n)
    bs

(* Drop bounds implied by the remaining constraints: bound [b] of the split
   [(kept_before, b, rest_after)] is redundant when the set with [b] replaced
   by its integer negation is empty. *)
let prune_redundant dims iter ~negate other_constrs bounds =
  let rec go kept = function
    | [] -> List.rev kept
    | b :: rest ->
        let others =
          other_constrs
          @ List.map
              (fun (c, e) ->
                if negate == `Lower then constr_of_lower iter (c, e)
                else constr_of_upper iter (c, e))
              (List.rev_append kept rest)
        in
        let negated =
          let c, e = b in
          if negate == `Lower then
            (* not (c*iter >= e): c*iter <= e - 1 *)
            Constr.Ge
              (Linexpr.sub (Linexpr.sub e (Linexpr.const 1))
                 (Linexpr.term c iter))
          else
            Constr.Ge
              (Linexpr.sub (Linexpr.term c iter)
                 (Linexpr.add e (Linexpr.const 1)))
        in
        let test = Basic_set.make dims (negated :: others) in
        if Feasible.is_empty test then go kept rest else go (b :: kept) rest
  in
  go [] bounds

(* Bounds of [iter] in [st.work] with unprocessed dims projected away. *)
let level_bounds st iter =
  let projected =
    List.fold_left
      (fun s d -> Basic_set.project_out d s)
      st.work st.unprocessed
  in
  (* Outer loop bounds already emitted participate as context so that
     bounds they subsume get pruned. *)
  let projected = Basic_set.add_constraints st.used projected in
  let projected = Basic_set.simplify projected in
  let lowers, uppers, rest = Basic_set.bounds_of iter projected in
  if lowers = [] || uppers = [] then
    raise
      (Schedule_error
         (Printf.sprintf "statement %s: iterator %s is unbounded" st.name iter));
  let dims = Basic_set.dims projected in
  let upper_constrs = List.map (constr_of_upper iter) uppers in
  let lower_constrs = List.map (constr_of_lower iter) lowers in
  let lowers =
    prune_redundant dims iter ~negate:`Lower (rest @ upper_constrs) lowers
  in
  let uppers =
    prune_redundant dims iter ~negate:`Upper (rest @ lower_constrs) uppers
  in
  (sort_bounds lowers, sort_bounds uppers)

let fresh_iter depth states =
  let taken =
    List.concat_map
      (fun st -> Basic_set.dims st.work @ st.unprocessed)
      states
  in
  let rec pick candidate =
    if List.mem candidate taken then pick (candidate ^ "_") else candidate
  in
  pick (Printf.sprintf "c%d" depth)

(* A domain constraint needs a guard only when not entailed by the emitted
   loop bounds: test emptiness of (bounds and not c). *)
let entailed dims used c =
  let negations =
    match c with
    | Constr.Ge e ->
        [ Constr.Ge (Linexpr.sub (Linexpr.const (-1)) e) ]
    | Constr.Eq e ->
        [
          Constr.Ge (Linexpr.sub e (Linexpr.const 1));
          Constr.Ge (Linexpr.sub (Linexpr.neg e) (Linexpr.const 1));
        ]
  in
  List.for_all
    (fun n -> Feasible.is_empty (Basic_set.make dims (n :: used)))
    negations

let emit_user st =
  let dims = Basic_set.dims st.work in
  let guards =
    List.filter
      (fun c ->
        not (List.exists (Constr.equal c) st.used)
        && not (entailed dims st.used c))
      (List.map normalize_exn
         (Basic_set.constraints (Basic_set.simplify st.work)))
  in
  let guards = List.filter (fun c -> not (Constr.is_tautology c)) guards in
  let user = Ast.User { stmt = st.name; bindings = List.rev st.bindings } in
  if guards = [] then user else Ast.If (guards, [ user ])

let take_const st =
  match st.remaining with
  | Sched.Const c :: rest -> (c, { st with remaining = rest })
  | _ -> raise (Schedule_error "expected scalar position in schedule")

(* Group consecutive states by their leading scalar constant, ascending. *)
let group_by_const states =
  let tagged = List.map take_const states in
  let consts = List.sort_uniq Int.compare (List.map fst tagged) in
  List.map
    (fun c -> List.filter_map (fun (c', st) -> if c = c' then Some st else None) tagged)
    consts

let enter_level iter st =
  match st.remaining with
  | Sched.Dim d :: rest ->
      let work = Basic_set.rename_dim d iter st.work in
      {
        st with
        work;
        remaining = rest;
        bindings = (d, iter) :: st.bindings;
        unprocessed = List.filter (fun x -> x <> d) st.unprocessed;
      }
  | _ -> raise (Schedule_error "expected loop dimension in schedule")

let rec build_group depth states =
  List.concat_map (build_subgroup depth) (group_by_const states)

(* A subgroup shares the leading scalar constant.  Statements whose
   schedule is exhausted become user nodes; the rest share a loop. *)
and build_subgroup depth states =
  let finished, continuing =
    List.partition (fun st -> st.remaining = []) states
  in
  let users = List.map emit_user finished in
  match continuing with
  | [] -> users
  | _ ->
      if finished <> [] then
        raise
          (Schedule_error
             "statements with identical scalar prefixes have different depths");
      let iter = fresh_iter depth states in
      let entered = List.map (enter_level iter) continuing in
      let with_bounds =
        List.map (fun st -> (st, level_bounds st iter)) entered
      in
      let all_equal =
        match with_bounds with
        | [] -> true
        | (_, first) :: rest -> List.for_all (fun (_, b) -> b = first) rest
      in
      let lbs, ubs, entered =
        if all_equal then begin
          let _, (lowers, uppers) = List.hd with_bounds in
          let entered =
            List.map
              (fun (st, (lo, up)) ->
                let used =
                  List.map (constr_of_lower iter) lo
                  @ List.map (constr_of_upper iter) up
                  @ st.used
                in
                { st with used })
              with_bounds
          in
          ( List.map (fun (c, e) -> Ast.bound c e) lowers,
            List.map (fun (c, e) -> Ast.bound c e) uppers,
            entered )
        end
        else begin
          (* bounding box over constant ranges; users keep full guards *)
          let const_bound f proj_side st =
            let projected =
              List.fold_left
                (fun s d -> Basic_set.project_out d s)
                st.work st.unprocessed
            in
            let projected =
              Basic_set.project_onto [ iter ] projected
            in
            match proj_side (Basic_set.const_range iter projected) with
            | Some v -> v
            | None ->
                raise
                  (Schedule_error
                     (Printf.sprintf
                        "statement %s: no constant %s bound for fused loop"
                        st.name f))
          in
          let lb =
            List.fold_left
              (fun acc st -> min acc (const_bound "lower" fst st))
              max_int entered
          and ub =
            List.fold_left
              (fun acc st -> max acc (const_bound "upper" snd st))
              min_int entered
          in
          ( [ Ast.bound 1 (Linexpr.const lb) ],
            [ Ast.bound 1 (Linexpr.const ub) ],
            entered )
        end
      in
      let body = build_group (depth + 1) entered in
      users @ [ Ast.For { iter; lbs; ubs; body } ]

let build stmts =
  let states =
    List.map
      (fun s ->
        let sched_dims = List.sort String.compare (Sched.dims s.sched)
        and dom_dims = List.sort String.compare (Basic_set.dims s.domain) in
        if sched_dims <> dom_dims then
          raise
            (Schedule_error
               (Printf.sprintf
                  "statement %s: schedule dims do not match domain dims"
                  s.name));
        {
          name = s.name;
          work = s.domain;
          remaining = Sched.items s.sched;
          bindings = [];
          used = [];
          unprocessed = Basic_set.dims s.domain;
        })
      stmts
  in
  build_group 0 states
