(** Polyhedral code generation: build the {!Ast} forest executing a set of
    statements, each given by an iteration domain and a (2d+1) schedule, in
    lexicographic schedule order — the [ast_build] step of Section V-B.

    Statements whose schedules share a constant prefix share the
    corresponding loops (fusion); scalar constants sequence statements and
    loop nests; non-rectangular domains (skewed or strip-mined) produce
    parametric [max]/[min] loop bounds, and residual domain constraints not
    enforced by any emitted loop bound become [If] guards around the user
    node. *)

type stmt = {
  name : string;
  domain : Basic_set.t;
  sched : Sched.t;  (** its [Dim] items must be exactly the domain dims *)
}

(** Raised when schedules are inconsistent (e.g. two statements ordered by
    identical scalar prefixes of different loop structure). *)
exception Schedule_error of string

val build : stmt list -> Ast.t list
