type t = { dims : string list; disjuncts : Basic_set.t list }

let empty dims = { dims; disjuncts = [] }

let of_basic b = { dims = Basic_set.dims b; disjuncts = [ b ] }

let check_space t b =
  if Basic_set.dims b <> t.dims then
    invalid_arg "Iset: dimension tuples differ"

let of_list dims bs =
  let t = { dims; disjuncts = bs } in
  List.iter (check_space t) bs;
  t

let dims t = t.dims

let disjuncts t = t.disjuncts

let union a b =
  if a.dims <> b.dims then invalid_arg "Iset.union: dimension tuples differ";
  { a with disjuncts = a.disjuncts @ b.disjuncts }

let intersect_basic b t =
  check_space t b;
  { t with disjuncts = List.map (Basic_set.intersect b) t.disjuncts }

let intersect a b =
  if a.dims <> b.dims then
    invalid_arg "Iset.intersect: dimension tuples differ";
  {
    a with
    disjuncts =
      List.concat_map
        (fun x -> List.map (Basic_set.intersect x) b.disjuncts)
        a.disjuncts;
  }

let add_constraint c t =
  { t with disjuncts = List.map (Basic_set.add_constraint c) t.disjuncts }

let project_onto keep t =
  match t.disjuncts with
  | [] -> { t with dims = List.filter (fun d -> List.mem d keep) t.dims }
  | bs ->
      let projected = List.map (Basic_set.project_onto keep) bs in
      { dims = Basic_set.dims (List.hd projected); disjuncts = projected }

let mem env t = List.exists (Basic_set.mem env) t.disjuncts

let is_empty t = List.for_all Feasible.is_empty t.disjuncts

let coalesce t =
  { t with disjuncts = List.filter (fun b -> not (Feasible.is_empty b)) t.disjuncts }

let fold_opt f xs =
  List.fold_left
    (fun acc x ->
      match (acc, x) with
      | None, v -> v
      | v, None -> v
      | Some a, Some b -> Some (f a b))
    None xs

let min_of e t =
  fold_opt min (List.map (Feasible.min_of e) t.disjuncts)

let max_of e t =
  fold_opt max (List.map (Feasible.max_of e) t.disjuncts)

let pp ppf t =
  match t.disjuncts with
  | [] -> Format.fprintf ppf "{ [%s] : false }" (String.concat ", " t.dims)
  | bs ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.fprintf ppf " union ")
        Basic_set.pp ppf bs
