(** Multi-dimensional affine maps [in_dims -> out_dims], the analogue of
    [isl_map] restricted to single-valued affine functions.  Array access
    functions and schedule functions are values of this type. *)

type t = {
  in_dims : string list;
  out_exprs : Linexpr.t list;  (** one per output dimension, over [in_dims] *)
}

val make : in_dims:string list -> out_exprs:Linexpr.t list -> t

(** Identity map over the given dimensions. *)
val identity : string list -> t

val n_out : t -> int

(** [apply m point] evaluates the map at an integer point given in
    [in_dims] order. *)
val apply : t -> int list -> int list

(** [compose g f] is [g . f]; [f]'s outputs feed [g]'s inputs positionally
    (their arity must agree with [g]'s input arity). *)
val compose : t -> t -> t

(** [preimage_set m out_dims s]: given a set [s] over [out_dims] (one per
    output of [m]), the set over [m.in_dims] of points mapped into [s]. *)
val preimage_set : t -> string list -> Basic_set.t -> Basic_set.t

(** [image_set m out_dims s]: the image of a set over [m.in_dims] as a set
    over fresh [out_dims], computed by lifting and projection. *)
val image_set : t -> string list -> Basic_set.t -> Basic_set.t

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
