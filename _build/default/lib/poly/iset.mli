(** Finite unions of basic sets over a common dimension tuple — the analogue
    of [isl_set].  Used for disjunctive objects such as lexicographic
    precedence relations and multi-level dependence polyhedra. *)

type t

(** Empty union over the given dimensions. *)
val empty : string list -> t

val of_basic : Basic_set.t -> t

val of_list : string list -> Basic_set.t list -> t

val dims : t -> string list

val disjuncts : t -> Basic_set.t list

val union : t -> t -> t

(** Distributes over the disjuncts of both arguments. *)
val intersect : t -> t -> t

val intersect_basic : Basic_set.t -> t -> t

val add_constraint : Constr.t -> t -> t

val project_onto : string list -> t -> t

val mem : (string -> int) -> t -> bool

val is_empty : t -> bool

(** Drop disjuncts that are integer-empty. *)
val coalesce : t -> t

(** Minimum / maximum of an affine expression over all disjuncts. *)
val min_of : Linexpr.t -> t -> int option

val max_of : Linexpr.t -> t -> int option

val pp : Format.formatter -> t -> unit
