type t = { in_dims : string list; out_exprs : Linexpr.t list }

let make ~in_dims ~out_exprs =
  List.iter
    (fun e ->
      List.iter
        (fun d ->
          if not (List.mem d in_dims) then
            invalid_arg ("Affine_map: unknown input dim " ^ d))
        (Linexpr.dims e))
    out_exprs;
  { in_dims; out_exprs }

let identity dims = { in_dims = dims; out_exprs = List.map Linexpr.var dims }

let n_out m = List.length m.out_exprs

let apply m point =
  if List.length point <> List.length m.in_dims then
    invalid_arg "Affine_map.apply: arity mismatch";
  let env d =
    let rec find ds vs =
      match (ds, vs) with
      | d' :: _, v :: _ when d' = d -> v
      | _ :: ds, _ :: vs -> find ds vs
      | _ -> raise Not_found
    in
    find m.in_dims point
  in
  List.map (Linexpr.eval env) m.out_exprs

let compose g f =
  if List.length f.out_exprs <> List.length g.in_dims then
    invalid_arg "Affine_map.compose: arity mismatch";
  let bindings = List.combine g.in_dims f.out_exprs in
  {
    in_dims = f.in_dims;
    out_exprs = List.map (Linexpr.subst_all bindings) g.out_exprs;
  }

let preimage_set m out_dims s =
  if Basic_set.dims s <> out_dims then
    invalid_arg "Affine_map.preimage_set: set space mismatch";
  if List.length out_dims <> List.length m.out_exprs then
    invalid_arg "Affine_map.preimage_set: arity mismatch";
  Basic_set.change_space ~new_dims:m.in_dims
    ~bindings:(List.combine out_dims m.out_exprs)
    s

let image_set m out_dims s =
  if Basic_set.dims s <> m.in_dims then
    invalid_arg "Affine_map.image_set: set space mismatch";
  if List.length out_dims <> List.length m.out_exprs then
    invalid_arg "Affine_map.image_set: arity mismatch";
  List.iter
    (fun d ->
      if List.mem d m.in_dims then
        invalid_arg "Affine_map.image_set: output dim clashes with input")
    out_dims;
  let all = m.in_dims @ out_dims in
  let lifted =
    Basic_set.make all
      (List.map2
         (fun d e -> Constr.eq (Linexpr.var d) e)
         out_dims m.out_exprs
      @ Basic_set.constraints s)
  in
  Basic_set.project_onto out_dims lifted

let equal a b =
  a.in_dims = b.in_dims && List.equal Linexpr.equal a.out_exprs b.out_exprs

let pp ppf m =
  Format.fprintf ppf "{ [%s] -> [%a] }"
    (String.concat ", " m.in_dims)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Linexpr.pp)
    m.out_exprs
