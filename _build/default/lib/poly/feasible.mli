(** Integer feasibility and point enumeration for basic sets.

    Emptiness is decided by equality elimination with a GCD divisibility
    test, Fourier–Motzkin elimination for the remaining inequalities, and —
    when the eliminated dimensions kept non-unit coefficients (where FM's
    rational shadow might overapproximate the integer points) — a bounded
    exact search over the set's constant bounding box.  Loop-nest iteration
    domains and their dependence polyhedra always fall in the exact
    fragment. *)

(** [is_empty s] holds iff [s] contains no integer point. *)
val is_empty : Basic_set.t -> bool

(** [sample s] is some integer point of [s] (as an assignment in dimension
    order) or [None] when empty.  The set must be bounded in every
    dimension; unbounded dimensions are searched within a fixed window. *)
val sample : Basic_set.t -> int list option

(** [enumerate ?limit s] lists all integer points of [s] in lexicographic
    order, up to [limit] (default 100_000; raises [Invalid_argument] when
    the limit is exceeded).  Dimensions must be bounded. *)
val enumerate : ?limit:int -> Basic_set.t -> int list list

(** Number of integer points (via {!enumerate}'s strategy but without
    materializing the list). *)
val count : ?limit:int -> Basic_set.t -> int

(** [min_of e s] / [max_of e s] optimize an affine expression over the
    integer points of [s]; [None] when [s] is empty or the expression is
    unbounded in the requested direction. *)
val min_of : Linexpr.t -> Basic_set.t -> int option

val max_of : Linexpr.t -> Basic_set.t -> int option
