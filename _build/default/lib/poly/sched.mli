(** Statement schedules in the classic (2d+1) form: an alternation
    [c0, i1, c1, i2, ..., id, cd] of scalar constants and loop dimensions.
    The constants order statements relative to one another (the
    lexicographic order theory of Section V-B); the dimension items name the
    statement's domain dimensions in loop-nest order. *)

type item = Const of int | Dim of string

type t

(** [initial dims] is [0, d1, 0, d2, ..., dn, 0]. *)
val initial : string list -> t

val items : t -> item list

val of_items : item list -> t

(** Number of loop levels (d). *)
val depth : t -> int

(** Dimension name at a loop level (1-based). *)
val dim_at : t -> int -> string

(** 1-based loop level of a dimension name. *)
val level_of : t -> string -> int option

val dims : t -> string list

(** Scalar constant after level [k] ([k = 0] is the leading constant). *)
val const_at : t -> int -> int

val set_const : t -> int -> int -> t

(** Swap the dimensions at two loop levels (loop interchange). *)
val swap_levels : t -> int -> int -> t

(** [replace_dim sched d items'] splices [items'] in place of the [Dim d]
    item (used by strip-mining, which turns one level into two separated by
    a zero constant). *)
val replace_dim : t -> string -> item list -> t

val rename_dim : t -> string -> string -> t

(** [lex_compare a b] compares the scalar prefixes to order two statements;
    comparison is by the shared constant prefix (positions where both have
    constants before any diverging dimension structure). *)
val lex_compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string
