(** Transformation guidance derived from fine-grained analysis — the
    "Guidance" output of Fig. 8 that steers the DSE's dependence-aware
    stage: keep the loop order, interchange to a better one, or skew when
    no permutation frees the innermost level. *)

type suggestion =
  | Keep  (** innermost level already dependence-free *)
  | Reorder of string list
      (** desired loop order (outermost first); legal and innermost-free *)
  | Skew_hint of { d1 : string; d2 : string; factor : int; order : string list }
      (** skew [d2] by [factor * d1] (new inner dim [d1*factor + d2]), then
          use [order] (over the original dim names; the skewed dim keeps
          [d2]'s position) *)
  | Tight of int
      (** unavoidable loop-carried dependence at the innermost level; the
          payload is the minimal carried distance *)

(** Analyze one node and suggest the transformation that frees the
    innermost loop for unrolling under an outer pipeline. *)
val suggest : Finegrain.t -> suggestion

(** All legal innermost-free loop orders (used to detect the conflicting
    requirements of Fig. 10 between fused computes). *)
val free_orders : Finegrain.t -> string list list

val pp : Format.formatter -> suggestion -> unit
