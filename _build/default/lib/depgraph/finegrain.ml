open Pom_poly
open Pom_dsl

type dep_box = (string * (int option * int option)) list

type t = {
  compute : Compute.t;
  self_deps : dep_box list;
  reduction_dims : string list;
}

let boxes_of_dep dims (dep : Dep.t) =
  List.map
    (fun (ld : Dep.level_dep) ->
      List.map2
        (fun d (e : Dep.entry) -> (d, (e.dmin, e.dmax)))
        dims ld.distance)
    dep.carried

let analyze compute =
  let domain = Compute.domain compute in
  let dims = Compute.iter_names compute in
  let write = Compute.write_access compute in
  let self_deps =
    List.concat_map
      (fun read ->
        match Dep.analyze ~domain ~source:write ~sink:read with
        | Some dep -> boxes_of_dep dims dep
        | None -> [])
      (Compute.read_accesses compute)
  in
  { compute; self_deps; reduction_dims = Compute.reduction_dims compute }

(* Scan a distance box in the given loop order.  [`Carried (dim, dist)]:
   first non-zero component is provably positive at [dim] with minimal
   distance [dist].  [`Illegal]: some instance may have a non-positive
   first component (or the sign is unknown). *)
let scan_box ~order box =
  let rec go = function
    | [] -> `Illegal (* all components zero: not a real dependence *)
    | d :: rest -> (
        match List.assoc_opt d box with
        | None -> invalid_arg ("Finegrain: box missing dimension " ^ d)
        | Some (Some lo, _) when lo > 0 -> `Carried (d, lo)
        | Some (Some 0, Some 0) -> go rest
        | Some _ -> `Illegal)
  in
  go order

let legal_order t ~order =
  List.for_all
    (fun box -> match scan_box ~order box with `Carried _ -> true | `Illegal -> false)
    t.self_deps

let innermost_free t ~order =
  match List.rev order with
  | [] -> true
  | innermost :: _ ->
      List.for_all
        (fun box ->
          match scan_box ~order box with
          | `Carried (d, _) -> d <> innermost
          | `Illegal -> false)
        t.self_deps

let carried_distance_at t ~order d =
  List.fold_left
    (fun acc box ->
      match scan_box ~order box with
      | `Carried (d', dist) when d' = d -> (
          match acc with None -> Some dist | Some a -> Some (min a dist))
      | `Carried _ | `Illegal -> acc)
    None t.self_deps

(* Positional pairing of two iteration spaces for fusion checks. *)
let positional_dims n = List.init n (Printf.sprintf "p%d")

let rename_positional tag dims e =
  let bindings =
    List.mapi (fun k d -> (d, Linexpr.var (tag ^ "p" ^ string_of_int k))) dims
  in
  Linexpr.subst_all bindings e

let fusion_violates c1 c2 =
  let d1 = Compute.iter_names c1 and d2 = Compute.iter_names c2 in
  let n = List.length d1 in
  if List.length d2 <> n then true
  else
    let pos = positional_dims n in
    let all = List.map (( ^ ) "a$") pos @ List.map (( ^ ) "b$") pos in
    let dom_constrs tag dims compute =
      List.map
        (fun c ->
          let e = Constr.expr c in
          let e' = rename_positional tag dims e in
          match c with Constr.Eq _ -> Constr.Eq e' | Constr.Ge _ -> Constr.Ge e')
        (Basic_set.constraints (Compute.domain compute))
    in
    let pairs =
      (* access pairs whose relative order must not flip: c1-write/c2-read
         (RAW), c1-read/c2-write (WAR), c1-write/c2-write (WAW) *)
      let w1 = Compute.write_access c1 and w2 = Compute.write_access c2 in
      let raw =
        List.filter_map
          (fun (r : Dep.access) ->
            if r.array = w1.array then Some (w1, r) else None)
          (Compute.read_accesses c2)
      in
      let war =
        List.filter_map
          (fun (r : Dep.access) ->
            if r.array = w2.array then Some (r, w2) else None)
          (Compute.read_accesses c1)
      in
      let waw = if w1.array = w2.array then [ (w1, w2) ] else [] in
      raw @ war @ waw
    in
    let violated ((a1 : Dep.access), (a2 : Dep.access)) =
      if List.length a1.indices <> List.length a2.indices then true
      else
        let same_element =
          List.map2
            (fun i j ->
              Constr.eq
                (rename_positional "a$" d1 i)
                (rename_positional "b$" d2 j))
            a1.indices a2.indices
        in
        let base =
          dom_constrs "a$" d1 c1 @ dom_constrs "b$" d2 c2 @ same_element
        in
        (* c2's instance strictly precedes c1's in the fused order *)
        List.exists
          (fun level ->
            let order =
              List.concat
                (List.mapi
                   (fun k p ->
                     let a = Linexpr.var ("a$" ^ p)
                     and b = Linexpr.var ("b$" ^ p) in
                     if k < level then [ Constr.eq a b ]
                     else if k = level then [ Constr.lt b a ]
                     else [])
                   pos)
            in
            not (Feasible.is_empty (Basic_set.make all (base @ order))))
          (List.init n Fun.id)
    in
    List.exists violated pairs

let pp_bound ppf = function
  | Some v -> Format.pp_print_int ppf v
  | None -> Format.pp_print_string ppf "inf"

let pp ppf t =
  Format.fprintf ppf "@[<v 2>%s:@,reduction dims: [%s]@,%a@]"
    t.compute.Compute.name
    (String.concat ", " t.reduction_dims)
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf box ->
         Format.fprintf ppf "dep (%s)"
           (String.concat ", "
              (List.map
                 (fun (d, (lo, hi)) ->
                   Format.asprintf "%s:[%a,%a]" d pp_bound lo pp_bound hi)
                 box))))
    t.self_deps
