type suggestion =
  | Keep
  | Reorder of string list
  | Skew_hint of { d1 : string; d2 : string; factor : int; order : string list }
  | Tight of int

let rec permutations = function
  | [] -> [ [] ]
  | xs ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) xs in
          List.map (fun p -> x :: p) (permutations rest))
        xs

let original_order (fine : Finegrain.t) =
  Pom_dsl.Compute.iter_names fine.compute

let free_orders fine =
  let dims = original_order fine in
  List.filter
    (fun order ->
      Finegrain.legal_order fine ~order && Finegrain.innermost_free fine ~order)
    (permutations dims)

(* Interval arithmetic on optional bounds for the skewed component
   f*d1 + d2 (f > 0). *)
let skew_box f d1 d2 box =
  let lo1, hi1 = List.assoc d1 box and lo2, hi2 = List.assoc d2 box in
  let add a b = match (a, b) with Some x, Some y -> Some (x + y) | _ -> None in
  let scale k = Option.map (fun x -> k * x) in
  let lo' = add (scale f lo1) lo2 and hi' = add (scale f hi1) hi2 in
  List.map (fun (d, r) -> if d = d2 then (d, (lo', hi')) else (d, r)) box

let skewed_fine (fine : Finegrain.t) f d1 d2 =
  { fine with Finegrain.self_deps = List.map (skew_box f d1 d2) fine.self_deps }

(* Prefer orders close to the original: the original itself first, then
   permutations in a stable order. *)
let candidate_orders dims = permutations dims

let suggest (fine : Finegrain.t) =
  let dims = original_order fine in
  if Finegrain.innermost_free fine ~order:dims then Keep
  else
    let candidates = candidate_orders dims in
    match
      List.find_opt
        (fun order ->
          Finegrain.legal_order fine ~order
          && Finegrain.innermost_free fine ~order)
        candidates
    with
    | Some order -> Reorder order
    | None -> (
        (* try skewing a pair of dimensions, smallest factor first *)
        let pairs =
          List.concat_map
            (fun d1 ->
              List.filter_map
                (fun d2 -> if d1 <> d2 then Some (d1, d2) else None)
                dims)
            dims
        in
        let attempts =
          List.concat_map
            (fun factor -> List.map (fun (d1, d2) -> (factor, d1, d2)) pairs)
            [ 1; 2; 3; 4 ]
        in
        let found =
          List.find_map
            (fun (factor, d1, d2) ->
              let fine' = skewed_fine fine factor d1 d2 in
              List.find_map
                (fun order ->
                  if
                    Finegrain.legal_order fine' ~order
                    && Finegrain.innermost_free fine' ~order
                  then Some (Skew_hint { d1; d2; factor; order })
                  else None)
                candidates)
            attempts
        in
        match found with
        | Some s -> s
        | None ->
            let innermost = List.nth dims (List.length dims - 1) in
            let dist =
              match Finegrain.carried_distance_at fine ~order:dims innermost with
              | Some d -> d
              | None -> 1
            in
            Tight dist)

let pp ppf = function
  | Keep -> Format.pp_print_string ppf "keep current order"
  | Reorder order ->
      Format.fprintf ppf "interchange to (%s)" (String.concat ", " order)
  | Skew_hint { d1; d2; factor; order } ->
      Format.fprintf ppf "skew %s by %d*%s, then order (%s)" d2 factor d1
        (String.concat ", " order)
  | Tight d ->
      Format.fprintf ppf "tight loop-carried dependence (min distance %d)" d
