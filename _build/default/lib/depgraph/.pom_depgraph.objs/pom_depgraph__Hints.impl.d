lib/depgraph/hints.ml: Finegrain Format List Option Pom_dsl String
