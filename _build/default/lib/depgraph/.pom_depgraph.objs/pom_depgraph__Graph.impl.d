lib/depgraph/graph.ml: Compute Finegrain Format Func List Pom_dsl String
