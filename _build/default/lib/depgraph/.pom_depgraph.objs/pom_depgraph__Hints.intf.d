lib/depgraph/hints.mli: Finegrain Format
