lib/depgraph/graph.mli: Compute Finegrain Format Func Pom_dsl
