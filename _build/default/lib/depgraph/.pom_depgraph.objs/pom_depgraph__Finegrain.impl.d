lib/depgraph/finegrain.ml: Basic_set Compute Constr Dep Feasible Format Fun Linexpr List Pom_dsl Pom_poly Printf String
