lib/depgraph/finegrain.mli: Compute Format Pom_dsl
