(** The dependence graph IR (Section V-A): one node per compute, one edge
    per coarse-grained producer→consumer relation, with fine-grained
    analysis results stored as node attributes, plus DFS data-path
    collection for the DSE engine. *)

open Pom_dsl

type edge_kind = Raw | War | Waw

type edge = { src : string; dst : string; array : string; kind : edge_kind }

type node = { compute : Compute.t; fine : Finegrain.t }

type t

(** Build the graph from a function's computes (program order defines edge
    direction: an edge runs from the earlier to the later compute). *)
val build : Func.t -> t

val nodes : t -> node list

val node : t -> string -> node

val edges : t -> edge list

(** Successors by RAW edges only (the data paths of Fig. 8). *)
val successors : t -> string -> string list

val predecessors : t -> string -> string list

(** All maximal RAW paths from source nodes (no RAW predecessor) to sinks,
    via depth-first search; isolated nodes yield singleton paths. *)
val data_paths : t -> string list list

(** Nodes in program order. *)
val order : t -> string list

val pp : Format.formatter -> t -> unit
