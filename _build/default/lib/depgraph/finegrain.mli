(** Fine-grained (intra-node) dependence analysis of Section V-A: distance
    and direction vectors for the loop-carried dependences of one compute,
    summarized as per-dimension distance boxes that downstream layers use to
    decide loop orders, skewing, and achievable initiation intervals. *)

open Pom_dsl

(** Distance box of one carried dependence: for each iterator of the
    compute (in its declared loop order), the [min, max] range of
    [sink - source]; [None] = unbounded on that side. *)
type dep_box = (string * (int option * int option)) list

type t = {
  compute : Compute.t;
  self_deps : dep_box list;
      (** one per (conflicting read access, carried level) of the
          destination array *)
  reduction_dims : string list;
}

(** Analyze the loop-carried self-dependences of a compute: its store
    against every load of the same array (the accumulation/stencil pattern
    of Fig. 8). *)
val analyze : Compute.t -> t

(** Minimal positive distance carried by dimension [d] across all deps
    whose first non-zero (in the order given) sits at [d]; [None] when no
    dependence is carried at [d] under that order. *)
val carried_distance_at : t -> order:string list -> string -> int option

(** Under loop order [order] (outermost first), is every dependence carried
    strictly before the innermost level (so the innermost loop can be
    unrolled and the enclosing pipeline reaches II = 1)?  Also requires
    legality: every dependence's first non-zero component must be
    positive. *)
val innermost_free : t -> order:string list -> bool

(** Is [order] a legal execution order (all dependences lexicographically
    positive)? *)
val legal_order : t -> order:string list -> bool

(** Cross-compute check used for fusion legality: does executing the two
    computes fused position-wise (iteration [v] of [c2] right after
    iteration [v] of [c1] for each shared point) violate a producer →
    consumer dependence from [c1] to [c2]?  Conservative: [true] means a
    violation may exist. *)
val fusion_violates : Compute.t -> Compute.t -> bool

val pp : Format.formatter -> t -> unit
