(** Textual MLIR (affine + arith + memref dialects) for the annotated
    affine-dialect IR — the paper's Fig. 9 (d) artifact, with HLS pragma
    information carried as discardable [hls.*] attributes.

    The printer targets readability and dialect fidelity (SSA values,
    [affine.for]/[affine.load]/[affine.store], [arith] ops typed by the
    statement's element type); max/min loop bounds are emitted with inline
    affine maps. *)

val mlir : Pom_affine.Ir.func -> string
