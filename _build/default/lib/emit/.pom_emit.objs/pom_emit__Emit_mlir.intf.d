lib/emit/emit_mlir.mli: Pom_affine
