lib/emit/emit_mlir.ml: Ast Buffer Constr Dtype Expr Ir Linexpr List Placeholder Pom_affine Pom_dsl Pom_poly Printf Schedule String
