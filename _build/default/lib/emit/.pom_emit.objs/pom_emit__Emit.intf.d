lib/emit/emit.mli: Pom_affine
