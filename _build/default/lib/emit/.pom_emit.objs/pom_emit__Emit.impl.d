lib/emit/emit.ml: Ast Buffer Constr Dtype Expr Float Ir Linexpr List Option Placeholder Pom_affine Pom_dsl Pom_poly Printf Schedule String
