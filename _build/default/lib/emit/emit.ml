open Pom_poly
open Pom_dsl
open Pom_affine

let linexpr_to_c e =
  let terms =
    List.map
      (fun d ->
        let c = Linexpr.coeff e d in
        if c = 1 then d
        else if c = -1 then "-" ^ d
        else Printf.sprintf "%d*%s" c d)
      (Linexpr.dims e)
  in
  let k = Linexpr.const_of e in
  let parts = terms @ (if k <> 0 || terms = [] then [ string_of_int k ] else []) in
  let joined =
    List.fold_left
      (fun acc p ->
        if acc = "" then p
        else if String.length p > 0 && p.[0] = '-' then acc ^ " - " ^ String.sub p 1 (String.length p - 1)
        else acc ^ " + " ^ p)
      "" parts
  in
  joined

(* C's / truncates toward zero; strip-mined and skewed bounds need true
   floor/ceil semantics, supplied by prelude helpers *)
let lb_to_c (b : Ast.bound) =
  if b.coef = 1 then linexpr_to_c b.expr
  else Printf.sprintf "pom_ceil_div(%s, %d)" (linexpr_to_c b.expr) b.coef

let ub_to_c (b : Ast.bound) =
  if b.coef = 1 then linexpr_to_c b.expr
  else Printf.sprintf "pom_floor_div(%s, %d)" (linexpr_to_c b.expr) b.coef

let bounds_to_c to_c combiner = function
  | [ b ] -> to_c b
  | bs ->
      List.fold_left
        (fun acc b ->
          match acc with
          | None -> Some (to_c b)
          | Some a -> Some (Printf.sprintf "%s(%s, %s)" combiner a (to_c b)))
        None bs
      |> Option.get

let rec index_to_c = function
  | Expr.Ix_var d -> d
  | Expr.Ix_const k -> string_of_int k
  | Expr.Ix_add (a, b) -> Printf.sprintf "%s + %s" (index_to_c a) (index_to_c b)
  | Expr.Ix_sub (a, b) -> Printf.sprintf "%s - (%s)" (index_to_c a) (index_to_c b)
  | Expr.Ix_mul (k, a) -> Printf.sprintf "%d*(%s)" k (index_to_c a)

let access_to_c (p : Placeholder.t) ixs =
  p.name
  ^ String.concat ""
      (List.map (fun ix -> Printf.sprintf "[%s]" (index_to_c ix)) ixs)

let rec expr_to_c = function
  | Expr.Load (p, ixs) -> access_to_c p ixs
  | Expr.Fconst f ->
      if Float.is_integer f then Printf.sprintf "%.1ff" f
      else Printf.sprintf "%gf" f
  | Expr.Neg a -> Printf.sprintf "-(%s)" (expr_to_c a)
  | Expr.Bin (Expr.Min, a, b) ->
      Printf.sprintf "fminf(%s, %s)" (expr_to_c a) (expr_to_c b)
  | Expr.Bin (Expr.Max, a, b) ->
      Printf.sprintf "fmaxf(%s, %s)" (expr_to_c a) (expr_to_c b)
  | Expr.Bin (op, a, b) ->
      let sym =
        match op with
        | Expr.Add -> "+"
        | Expr.Sub -> "-"
        | Expr.Mul -> "*"
        | Expr.Div -> "/"
        | Expr.Min | Expr.Max -> assert false
      in
      Printf.sprintf "(%s %s %s)" (expr_to_c a) sym (expr_to_c b)

let constr_to_c c =
  match c with
  | Constr.Eq e -> Printf.sprintf "%s == 0" (linexpr_to_c e)
  | Constr.Ge e -> Printf.sprintf "%s >= 0" (linexpr_to_c e)

let buffer_add_line buf indent line =
  Buffer.add_string buf (String.make indent ' ');
  Buffer.add_string buf line;
  Buffer.add_char buf '\n'

let rec emit_node buf indent = function
  | Ir.For { iter; lbs; ubs; attrs; body } ->
      buffer_add_line buf indent
        (Printf.sprintf "for (int %s = %s; %s <= %s; %s++) {" iter
           (bounds_to_c lb_to_c "imax" lbs)
           iter
           (bounds_to_c ub_to_c "imin" ubs)
           iter);
      (match attrs.Ir.pipeline_ii with
      | Some ii ->
          buffer_add_line buf indent (Printf.sprintf "#pragma HLS pipeline II=%d" ii)
      | None -> ());
      (match attrs.Ir.unroll_factor with
      | Some f ->
          buffer_add_line buf indent (Printf.sprintf "#pragma HLS unroll factor=%d" f)
      | None -> ());
      List.iter (emit_node buf (indent + 2)) body;
      buffer_add_line buf indent "}"
  | Ir.If (guards, body) ->
      buffer_add_line buf indent
        (Printf.sprintf "if (%s) {"
           (String.concat " && " (List.map constr_to_c guards)));
      List.iter (emit_node buf (indent + 2)) body;
      buffer_add_line buf indent "}"
  | Ir.Op s ->
      let p, ixs = s.Ir.dest in
      buffer_add_line buf indent
        (Printf.sprintf "%s = %s;" (access_to_c p ixs) (expr_to_c s.Ir.rhs))

let array_param (info : Ir.array_info) =
  let p = info.Ir.placeholder in
  Printf.sprintf "%s %s%s"
    (Dtype.c_name p.Placeholder.dtype)
    p.name
    (String.concat ""
       (List.map (fun d -> Printf.sprintf "[%d]" d) p.Placeholder.shape))

let kind_to_c = function
  | Schedule.Cyclic -> "cyclic"
  | Schedule.Block -> "block"
  | Schedule.Complete -> "complete"

let partition_pragmas (info : Ir.array_info) =
  let p = info.Ir.placeholder in
  List.concat
    (List.mapi
       (fun dim factor ->
         if factor > 1 then
           [
             Printf.sprintf
               "#pragma HLS array_partition variable=%s %s factor=%d dim=%d"
               p.Placeholder.name
               (kind_to_c info.Ir.partition_kind)
               factor (dim + 1);
           ]
         else [])
       info.Ir.partition)

(* Does the loop tree use bound lists (imax/imin) or non-unit coefficients
   (floor/ceil division)? *)
let rec needs_helpers = function
  | Ir.For { lbs; ubs; body; _ } ->
      List.length lbs > 1
      || List.length ubs > 1
      || List.exists (fun (b : Ast.bound) -> b.Ast.coef <> 1) (lbs @ ubs)
      || List.exists needs_helpers body
  | Ir.If (_, body) -> List.exists needs_helpers body
  | Ir.Op _ -> false

let hls_c (f : Ir.func) =
  let buf = Buffer.create 4096 in
  buffer_add_line buf 0 "// Generated by POM";
  buffer_add_line buf 0 "#include <math.h>";
  buffer_add_line buf 0 "#include <stdint.h>";
  buffer_add_line buf 0 "";
  if List.exists needs_helpers f.Ir.body then begin
    buffer_add_line buf 0
      "static inline int imax(int a, int b) { return a > b ? a : b; }";
    buffer_add_line buf 0
      "static inline int imin(int a, int b) { return a < b ? a : b; }";
    buffer_add_line buf 0
      "static inline int pom_floor_div(int a, int b) { int q = a / b, r = a % b; return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q; }";
    buffer_add_line buf 0
      "static inline int pom_ceil_div(int a, int b) { return -pom_floor_div(-a, b); }";
    buffer_add_line buf 0 ""
  end;
  buffer_add_line buf 0
    (Printf.sprintf "void %s(%s) {" f.Ir.name
       (String.concat ", " (List.map array_param f.Ir.arrays)));
  List.iter
    (fun info -> List.iter (buffer_add_line buf 0) (partition_pragmas info))
    f.Ir.arrays;
  List.iter (emit_node buf 2) f.Ir.body;
  buffer_add_line buf 0 "}";
  Buffer.contents buf

let loc s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length

let testbench (f : Ir.func) =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf (hls_c f);
  buffer_add_line buf 0 "";
  buffer_add_line buf 0 "#include <stdio.h>";
  buffer_add_line buf 0 "";
  (* the simulator's deterministic initializer, bit-for-bit *)
  buffer_add_line buf 0 "static unsigned int init_mix(const char *name, unsigned int flat) {";
  buffer_add_line buf 0 "  unsigned int h = 2166136261u;";
  buffer_add_line buf 0 "  for (const char *p = name; *p; p++) h = (h ^ (unsigned char)*p) * 16777619u;";
  buffer_add_line buf 0 "  h = h + flat * 2654435761u;";
  buffer_add_line buf 0 "  h ^= h >> 13;";
  buffer_add_line buf 0 "  h *= 2654435761u;";
  buffer_add_line buf 0 "  h ^= h >> 16;";
  buffer_add_line buf 0 "  return h & 0xFFFFu;";
  buffer_add_line buf 0 "}";
  buffer_add_line buf 0 "";
  List.iter
    (fun (info : Ir.array_info) ->
      let p = info.Ir.placeholder in
      buffer_add_line buf 0
        (Printf.sprintf "static %s %s%s;"
           (Dtype.c_name p.Placeholder.dtype)
           p.name
           (String.concat ""
              (List.map (Printf.sprintf "[%d]") p.Placeholder.shape))))
    f.Ir.arrays;
  buffer_add_line buf 0 "";
  buffer_add_line buf 0 "int main(void) {";
  List.iter
    (fun (info : Ir.array_info) ->
      let p = info.Ir.placeholder in
      let size = Placeholder.size p in
      let cty = Dtype.c_name p.Placeholder.dtype in
      buffer_add_line buf 2
        (Printf.sprintf
           "for (unsigned int pom_k = 0; pom_k < %du; pom_k++) ((%s *)%s)[pom_k] = (%s)(0.5 + init_mix(\"%s\", pom_k) / 65536.0);"
           size cty p.name cty p.name))
    f.Ir.arrays;
  buffer_add_line buf 2
    (Printf.sprintf "%s(%s);" f.Ir.name
       (String.concat ", "
          (List.map
             (fun (info : Ir.array_info) ->
               info.Ir.placeholder.Placeholder.name)
             f.Ir.arrays)));
  List.iter
    (fun (info : Ir.array_info) ->
      let p = info.Ir.placeholder in
      let size = Placeholder.size p in
      let cty = Dtype.c_name p.Placeholder.dtype in
      buffer_add_line buf 2
        (Printf.sprintf
           "{ double pom_sum = 0.0; for (unsigned int pom_k = 0; pom_k < %du; pom_k++) pom_sum += ((%s *)%s)[pom_k]; printf(\"%s %%.10e\\n\", pom_sum); }"
           size cty p.name p.name))
    f.Ir.arrays;
  buffer_add_line buf 2 "return 0;";
  buffer_add_line buf 0 "}";
  Buffer.contents buf
