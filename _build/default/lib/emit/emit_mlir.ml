open Pom_poly
open Pom_dsl
open Pom_affine

let mlir_type dt =
  match (dt : Dtype.t) with
  | Dtype.F32 -> "f32"
  | Dtype.F64 -> "f64"
  | t -> Printf.sprintf "%c%d" (if Dtype.is_signed t then 'i' else 'u') (Dtype.bits t)

let memref_type (p : Placeholder.t) =
  Printf.sprintf "memref<%sx%s>"
    (String.concat "x" (List.map string_of_int p.Placeholder.shape))
    (mlir_type p.Placeholder.dtype)

(* affine expressions over loop SSA values: %i * 4 + %j + 1 *)
let linexpr_to_mlir e =
  let terms =
    List.map
      (fun d ->
        let c = Linexpr.coeff e d in
        if c = 1 then "%" ^ d else Printf.sprintf "%%%s * %d" d c)
      (Linexpr.dims e)
  in
  let k = Linexpr.const_of e in
  let parts = terms @ (if k <> 0 || terms = [] then [ string_of_int k ] else []) in
  String.concat " + " parts

let index_to_mlir ix = linexpr_to_mlir (Expr.index_to_linexpr ix)

let bound_to_mlir ~upper (b : Ast.bound) =
  (* affine.for upper bounds are exclusive *)
  let e = if upper then Linexpr.add b.Ast.expr (Linexpr.const b.Ast.coef) else b.Ast.expr in
  if b.Ast.coef = 1 then linexpr_to_mlir e
  else Printf.sprintf "(%s) floordiv %d" (linexpr_to_mlir e) b.Ast.coef

let bounds_to_mlir ~upper bs =
  match bs with
  | [ b ] -> bound_to_mlir ~upper b
  | bs ->
      Printf.sprintf "%s(%s)"
        (if upper then "min" else "max")
        (String.concat ", " (List.map (bound_to_mlir ~upper) bs))

type ctx = { buf : Buffer.t; mutable next : int }

let fresh ctx =
  let v = Printf.sprintf "%%%d" ctx.next in
  ctx.next <- ctx.next + 1;
  v

let line ctx indent s =
  Buffer.add_string ctx.buf (String.make indent ' ');
  Buffer.add_string ctx.buf s;
  Buffer.add_char ctx.buf '\n'

let rec emit_expr ctx indent dt = function
  | Expr.Load (p, ixs) ->
      let v = fresh ctx in
      line ctx indent
        (Printf.sprintf "%s = affine.load %%%s[%s] : %s" v p.Placeholder.name
           (String.concat ", " (List.map index_to_mlir ixs))
           (memref_type p));
      v
  | Expr.Fconst f ->
      let v = fresh ctx in
      line ctx indent
        (Printf.sprintf "%s = arith.constant %g : %s" v f (mlir_type dt));
      v
  | Expr.Neg a ->
      let va = emit_expr ctx indent dt a in
      let v = fresh ctx in
      line ctx indent (Printf.sprintf "%s = arith.negf %s : %s" v va (mlir_type dt));
      v
  | Expr.Bin (op, a, b) ->
      let va = emit_expr ctx indent dt a in
      let vb = emit_expr ctx indent dt b in
      let v = fresh ctx in
      let is_float = Dtype.is_float dt in
      let name =
        match (op, is_float) with
        | Expr.Add, true -> "arith.addf"
        | Expr.Add, false -> "arith.addi"
        | Expr.Sub, true -> "arith.subf"
        | Expr.Sub, false -> "arith.subi"
        | Expr.Mul, true -> "arith.mulf"
        | Expr.Mul, false -> "arith.muli"
        | Expr.Div, true -> "arith.divf"
        | Expr.Div, false -> "arith.divsi"
        | Expr.Min, true -> "arith.minimumf"
        | Expr.Min, false -> "arith.minsi"
        | Expr.Max, true -> "arith.maximumf"
        | Expr.Max, false -> "arith.maxsi"
      in
      line ctx indent
        (Printf.sprintf "%s = %s %s, %s : %s" v name va vb (mlir_type dt));
      v

let attrs_to_mlir (a : Ir.attrs) =
  let parts =
    (match a.Ir.pipeline_ii with
    | Some ii -> [ Printf.sprintf "hls.pipeline_ii = %d : i32" ii ]
    | None -> [])
    @
    match a.Ir.unroll_factor with
    | Some f -> [ Printf.sprintf "hls.unroll = %d : i32" f ]
    | None -> []
  in
  if parts = [] then "" else Printf.sprintf " {%s}" (String.concat ", " parts)

let constr_to_mlir c =
  match (c : Constr.t) with
  | Constr.Eq e -> linexpr_to_mlir e ^ " == 0"
  | Constr.Ge e -> linexpr_to_mlir e ^ " >= 0"

let rec emit_node ctx indent = function
  | Ir.For { iter; lbs; ubs; attrs; body } ->
      line ctx indent
        (Printf.sprintf "affine.for %%%s = %s to %s {" iter
           (bounds_to_mlir ~upper:false lbs)
           (bounds_to_mlir ~upper:true ubs));
      List.iter (emit_node ctx (indent + 2)) body;
      line ctx indent (Printf.sprintf "}%s" (attrs_to_mlir attrs))
  | Ir.If (guards, body) ->
      line ctx indent
        (Printf.sprintf "affine.if affine_set<: %s> {"
           (String.concat ", " (List.map constr_to_mlir guards)));
      List.iter (emit_node ctx (indent + 2)) body;
      line ctx indent "}"
  | Ir.Op s ->
      let p, ixs = s.Ir.dest in
      let dt = p.Placeholder.dtype in
      let v = emit_expr ctx indent dt s.Ir.rhs in
      line ctx indent
        (Printf.sprintf "affine.store %s, %%%s[%s] : %s" v p.Placeholder.name
           (String.concat ", " (List.map index_to_mlir ixs))
           (memref_type p))

let partition_attrs (info : Ir.array_info) =
  let factors = info.Ir.partition in
  if List.exists (fun f -> f > 1) factors then
    Printf.sprintf " {hls.partition = [%s], hls.partition_kind = \"%s\"}"
      (String.concat ", " (List.map string_of_int factors))
      (match info.Ir.partition_kind with
      | Schedule.Cyclic -> "cyclic"
      | Schedule.Block -> "block"
      | Schedule.Complete -> "complete")
  else ""

let mlir (f : Ir.func) =
  let ctx = { buf = Buffer.create 4096; next = 0 } in
  line ctx 0 "module {";
  let params =
    String.concat ", "
      (List.map
         (fun (info : Ir.array_info) ->
           Printf.sprintf "%%%s: %s%s" info.Ir.placeholder.Placeholder.name
             (memref_type info.Ir.placeholder)
             (partition_attrs info))
         f.Ir.arrays)
  in
  line ctx 2 (Printf.sprintf "func.func @%s(%s) {" f.Ir.name params);
  List.iter (emit_node ctx 4) f.Ir.body;
  line ctx 4 "return";
  line ctx 2 "}";
  line ctx 0 "}";
  Buffer.contents ctx.buf
