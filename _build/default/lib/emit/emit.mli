(** Synthesizable HLS C back-end: translate the annotated affine dialect to
    C with [#pragma HLS] directives (the final step of Fig. 7).  All loop
    attributes become [pipeline]/[unroll] pragmas and array partition
    information becomes [array_partition] pragmas at function entry. *)

(** Render a full HLS C translation unit (function definition with array
    arguments). *)
val hls_c : Pom_affine.Ir.func -> string

(** Non-empty source lines of a rendered program — the LoC metric of
    Fig. 15. *)
val loc : string -> int

(** A self-contained C program: the generated kernel plus a [main] that
    initializes every array with the exact recipe of the OCaml simulator's
    {!Pom_sim.Memory.create} and prints one per-array element-sum checksum
    per line ("<name> <sum>").  Compiling and running it cross-checks the
    generated code against the simulator. *)
val testbench : Pom_affine.Ir.func -> string
