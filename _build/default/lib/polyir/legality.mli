(** Polyhedral legality verification: prove that a transformed program
    preserves every data dependence of the specification.

    For each ordered statement pair and each conflicting access pair
    (RAW, WAR, WAW), the checker builds the set of instance pairs that
    touch the same array element, executed source-first under the
    *original* (structural) schedule but sink-first under the
    *transformed* schedule.  The transformation is legal iff every such
    flip set is integer-empty.  This is the "ensuring the correctness of
    the code" guarantee of Section V-B, made effective. *)

type violation = {
  src_stmt : string;
  dst_stmt : string;
  array : string;
  kind : [ `Raw | `War | `Waw ];
}

(** [violations ~original ~transformed] lists the dependences whose
    direction some instance pair reverses; [[]] means the transformation
    is legal.  The two programs must contain the same statements (by
    name), and [original] is normally the structural program
    ({!Prog.of_func_unscheduled} plus the specification's fusion
    directives). *)
val violations : original:Prog.t -> transformed:Prog.t -> violation list

val is_legal : original:Prog.t -> transformed:Prog.t -> bool

val pp_violation : Format.formatter -> violation -> unit
