(** FPGA-oriented loop transformations implemented as manipulations on
    integer sets and maps (Section V-B): iteration domains are re-indexed
    with affine substitutions, schedules are permuted/extended, and array
    index maps are rewritten to match — never touching a syntactic loop
    structure. *)

exception Transform_error of string

(** Swap two loop levels (by current dimension name). *)
val interchange : Stmt_poly.t -> string -> string -> Stmt_poly.t

(** [split s dim factor ~outer ~inner] strip-mines [dim]:
    [dim = factor*outer + inner], [0 <= inner < factor].  The new levels
    take [dim]'s place in the schedule, separated by a zero constant. *)
val split :
  Stmt_poly.t -> string -> int -> outer:string -> inner:string -> Stmt_poly.t

(** [tile s d1 d2 f1 f2 ~o1 ~o2 ~i1 ~i2]: strip-mine both levels and
    interchange so the schedule reads [... o1 o2 i1 i2 ...].  [d1] and [d2]
    must be adjacent loop levels with [d1] outside [d2]. *)
val tile :
  Stmt_poly.t ->
  string -> string -> int -> int ->
  o1:string -> o2:string -> i1:string -> i2:string ->
  Stmt_poly.t

(** [skew s d1 d2 f1 f2 ~n1 ~n2]: re-index [(d1, d2)] to
    [(n1, n2) = (d1, f1*d1 + f2*d2)].  Requires [|f2| = 1] so the transform
    stays unimodular. *)
val skew :
  Stmt_poly.t -> string -> string -> int -> int -> n1:string -> n2:string ->
  Stmt_poly.t

(** [sequence_after stmt ~anchor ~level] rewrites [stmt]'s scalar schedule
    so that it shares loops 1..[level] with [anchor] and executes after it
    at scalar position [level].  Deeper scalar positions are reset to 0. *)
val sequence_after :
  Stmt_poly.t -> anchor:Stmt_poly.t -> level:int -> Stmt_poly.t

(** [reverse s dim ~new_dim] flips the iteration direction of a loop level
    ([new_dim = lb + ub - dim], so the range is preserved).  An example of
    the "customized transformations" Section V-B says the set/map
    representation makes easy to add; {!Legality} decides where it is
    safe. *)
val reverse : Stmt_poly.t -> string -> new_dim:string -> Stmt_poly.t

(** Mark a pipeline attribute on a loop level. *)
val pipeline : Stmt_poly.t -> string -> int -> Stmt_poly.t

(** Mark an unroll attribute on a loop level. *)
val unroll : Stmt_poly.t -> string -> int -> Stmt_poly.t

(** Rename a current dimension everywhere (domain, schedule, index map). *)
val rename_dim : Stmt_poly.t -> string -> string -> Stmt_poly.t

(** Apply a DSL schedule directive to the matching statement of a list
    (hardware directives update attributes; [Auto_dse] and [Partition] are
    ignored here — they are consumed by the DSE engine and the emitter). *)
val apply_directive : Stmt_poly.t list -> Pom_dsl.Schedule.t -> Stmt_poly.t list

(** Validity check used by property tests: the set of executed original
    iteration vectors (index map applied to domain points) is invariant
    under all transformations. *)
val original_points : Stmt_poly.t -> int list list
