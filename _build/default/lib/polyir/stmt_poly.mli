(** The polyhedral IR (Section V-B): each compute carried as an iteration
    domain (integer set), a (2d+1) schedule, an index map tracking how the
    original iterators read the current (possibly re-indexed) dimensions,
    and the hardware-optimization attributes accumulated for the next IR
    level. *)

open Pom_dsl

(** Hardware optimization attributes attached to schedule dimensions. *)
type hw = {
  pipeline : (string * int) option;  (** (dimension, target II) *)
  unrolls : (string * int) list;  (** dimension -> unroll factor *)
}

val no_hw : hw

type t = {
  compute : Compute.t;
  domain : Pom_poly.Basic_set.t;  (** over the current dimensions *)
  index_map : (string * Pom_poly.Linexpr.t) list;
      (** original iterator -> expression over current dimensions *)
  sched : Pom_poly.Sched.t;  (** over the current dimensions *)
  hw : hw;
}

(** Initial polyhedral statement for a compute, sequenced at program
    position [position] (leading scalar constant). *)
val of_compute : position:int -> Compute.t -> t

(** Current dimension names in schedule (loop-nest) order. *)
val loop_order : t -> string list

(** The original-iterator loop order (loop_order mapped back through the
    index map when the dims are still 1-1 renames); used for reporting. *)
val name : t -> string

val pp : Format.formatter -> t -> unit
