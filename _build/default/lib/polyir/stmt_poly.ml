open Pom_poly
open Pom_dsl

type hw = {
  pipeline : (string * int) option;
  unrolls : (string * int) list;
}

let no_hw = { pipeline = None; unrolls = [] }

type t = {
  compute : Compute.t;
  domain : Basic_set.t;
  index_map : (string * Linexpr.t) list;
  sched : Sched.t;
  hw : hw;
}

let of_compute ~position compute =
  let dims = Compute.iter_names compute in
  {
    compute;
    domain = Compute.domain compute;
    index_map = List.map (fun d -> (d, Linexpr.var d)) dims;
    sched = Sched.set_const (Sched.initial dims) 0 position;
    hw = no_hw;
  }

let loop_order t = Sched.dims t.sched

let name t = t.compute.Compute.name

let pp ppf t =
  Format.fprintf ppf "@[<v 2>%s:@,domain %a@,sched %a@,index map: %s@]"
    (name t) Basic_set.pp t.domain Sched.pp t.sched
    (String.concat ", "
       (List.map
          (fun (d, e) -> Printf.sprintf "%s := %s" d (Linexpr.to_string e))
          t.index_map))
