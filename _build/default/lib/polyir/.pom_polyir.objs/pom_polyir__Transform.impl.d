lib/polyir/transform.ml: Basic_set Compute Constr Feasible Format Linexpr List Option Pom_dsl Pom_poly Sched Schedule Stmt_poly
