lib/polyir/transform.mli: Pom_dsl Stmt_poly
