lib/polyir/legality.mli: Format Prog
