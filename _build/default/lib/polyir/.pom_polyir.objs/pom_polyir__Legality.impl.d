lib/polyir/legality.ml: Basic_set Compute Constr Dep Dep2 Feasible Format Linexpr List Pom_dsl Pom_poly Prog Sched Stmt_poly
