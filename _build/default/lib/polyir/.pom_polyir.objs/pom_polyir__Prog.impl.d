lib/polyir/prog.ml: Ast_build Format Func List Placeholder Pom_dsl Pom_poly Printf Schedule Stmt_poly Transform
