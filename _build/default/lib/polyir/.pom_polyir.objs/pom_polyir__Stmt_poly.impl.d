lib/polyir/stmt_poly.ml: Basic_set Compute Format Linexpr List Pom_dsl Pom_poly Printf Sched String
