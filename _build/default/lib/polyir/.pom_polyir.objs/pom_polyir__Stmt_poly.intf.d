lib/polyir/stmt_poly.mli: Compute Format Pom_dsl Pom_poly
