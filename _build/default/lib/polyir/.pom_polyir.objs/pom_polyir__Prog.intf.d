lib/polyir/prog.mli: Format Func Placeholder Pom_dsl Pom_poly Schedule Stmt_poly
