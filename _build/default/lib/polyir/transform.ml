open Pom_poly
open Pom_dsl

exception Transform_error of string

let err fmt = Format.kasprintf (fun s -> raise (Transform_error s)) fmt

let check_dim (s : Stmt_poly.t) d =
  if not (List.mem d (Basic_set.dims s.domain)) then
    err "%s: no dimension %s" (Stmt_poly.name s) d

let check_fresh (s : Stmt_poly.t) d =
  if List.mem d (Basic_set.dims s.domain) then
    err "%s: dimension %s already exists" (Stmt_poly.name s) d

let check_hw_free (s : Stmt_poly.t) d =
  let { Stmt_poly.pipeline; unrolls } = s.hw in
  let mentioned =
    (match pipeline with Some (p, _) -> [ p ] | None -> []) @ List.map fst unrolls
  in
  if List.mem d mentioned then
    err "%s: dimension %s already carries hardware attributes"
      (Stmt_poly.name s) d

let level_of_exn (s : Stmt_poly.t) d =
  match Sched.level_of s.sched d with
  | Some l -> l
  | None -> err "%s: dimension %s not in schedule" (Stmt_poly.name s) d


let interchange (s : Stmt_poly.t) d1 d2 =
  check_dim s d1;
  check_dim s d2;
  let l1 = level_of_exn s d1 and l2 = level_of_exn s d2 in
  { s with sched = Sched.swap_levels s.sched l1 l2 }

let split (s : Stmt_poly.t) dim factor ~outer ~inner =
  check_dim s dim;
  check_fresh s outer;
  check_fresh s inner;
  check_hw_free s dim;
  if factor <= 1 then err "%s: split factor must exceed 1" (Stmt_poly.name s);
  let old_dims = Basic_set.dims s.domain in
  let new_dims =
    List.concat_map (fun d -> if d = dim then [ outer; inner ] else [ d ]) old_dims
  in
  let repl =
    Linexpr.add (Linexpr.term factor outer) (Linexpr.var inner)
  in
  let bindings =
    List.map
      (fun d -> if d = dim then (d, repl) else (d, Linexpr.var d))
      old_dims
  in
  let extra =
    [
      Constr.ge (Linexpr.var inner) (Linexpr.const 0);
      Constr.le (Linexpr.var inner) (Linexpr.const (factor - 1));
    ]
  in
  {
    s with
    domain = Basic_set.change_space ~new_dims ~bindings ~extra s.domain;
    index_map =
      List.map (fun (o, e) -> (o, Linexpr.subst dim repl e)) s.index_map;
    sched =
      Sched.replace_dim s.sched dim
        [ Sched.Dim outer; Sched.Const 0; Sched.Dim inner ];
  }

let tile (s : Stmt_poly.t) d1 d2 f1 f2 ~o1 ~o2 ~i1 ~i2 =
  let l1 = level_of_exn s d1 and l2 = level_of_exn s d2 in
  if l2 <> l1 + 1 then
    err "%s: tile requires adjacent levels (%s at %d, %s at %d)"
      (Stmt_poly.name s) d1 l1 d2 l2;
  let s = split s d1 f1 ~outer:o1 ~inner:i1 in
  let s = split s d2 f2 ~outer:o2 ~inner:i2 in
  interchange s i1 o2

let skew (s : Stmt_poly.t) d1 d2 f1 f2 ~n1 ~n2 =
  check_dim s d1;
  check_dim s d2;
  check_fresh s n1;
  check_fresh s n2;
  check_hw_free s d1;
  check_hw_free s d2;
  if abs f2 <> 1 then err "%s: skew inner factor must be +-1" (Stmt_poly.name s);
  let old_dims = Basic_set.dims s.domain in
  (* (n1, n2) = (d1, f1*d1 + f2*d2), so d1 = n1 and
     d2 = f2*n2 - f2*f1*n1 (using f2 = 1/f2 for f2 = +-1). *)
  let d1_repl = Linexpr.var n1 in
  let d2_repl =
    Linexpr.add (Linexpr.term f2 n2) (Linexpr.term (-f2 * f1) n1)
  in
  let new_dims =
    List.map (fun d -> if d = d1 then n1 else if d = d2 then n2 else d) old_dims
  in
  let bindings =
    List.map
      (fun d ->
        if d = d1 then (d, d1_repl)
        else if d = d2 then (d, d2_repl)
        else (d, Linexpr.var d))
      old_dims
  in
  {
    s with
    domain = Basic_set.change_space ~new_dims ~bindings s.domain;
    index_map =
      List.map
        (fun (o, e) -> (o, Linexpr.subst_all [ (d1, d1_repl); (d2, d2_repl) ] e))
        s.index_map;
    sched = Sched.rename_dim (Sched.rename_dim s.sched d1 n1) d2 n2;
  }

let reverse (s : Stmt_poly.t) dim ~new_dim =
  check_dim s dim;
  check_fresh s new_dim;
  check_hw_free s dim;
  let lb, ub =
    match Basic_set.const_range dim s.Stmt_poly.domain with
    | Some lb, Some ub -> (lb, ub)
    | _ -> err "%s: cannot reverse unbounded dimension %s" (Stmt_poly.name s) dim
  in
  (* dim = (lb + ub) - new_dim keeps the same integer range *)
  let repl = Linexpr.sub (Linexpr.const (lb + ub)) (Linexpr.var new_dim) in
  let old_dims = Basic_set.dims s.Stmt_poly.domain in
  let new_dims = List.map (fun d -> if d = dim then new_dim else d) old_dims in
  let bindings =
    List.map
      (fun d -> if d = dim then (d, repl) else (d, Linexpr.var d))
      old_dims
  in
  {
    s with
    Stmt_poly.domain = Basic_set.change_space ~new_dims ~bindings s.Stmt_poly.domain;
    index_map =
      List.map (fun (o, e) -> (o, Linexpr.subst dim repl e)) s.Stmt_poly.index_map;
    sched = Sched.rename_dim s.Stmt_poly.sched dim new_dim;
  }

let sequence_after (s : Stmt_poly.t) ~anchor ~level =
  let depth = Sched.depth s.sched in
  if level < 0 || level > depth then
    err "%s: sequence level %d out of range" (Stmt_poly.name s) level;
  if level > Sched.depth anchor.Stmt_poly.sched then
    err "%s: anchor %s is shallower than level %d" (Stmt_poly.name s)
      (Stmt_poly.name anchor) level;
  let sched = ref s.sched in
  for k = 0 to level - 1 do
    sched := Sched.set_const !sched k (Sched.const_at anchor.Stmt_poly.sched k)
  done;
  sched :=
    Sched.set_const !sched level (Sched.const_at anchor.Stmt_poly.sched level + 1);
  for k = level + 1 to depth do
    sched := Sched.set_const !sched k 0
  done;
  { s with sched = !sched }

let pipeline (s : Stmt_poly.t) dim ii =
  ignore (level_of_exn s dim);
  if ii < 1 then err "%s: pipeline II must be positive" (Stmt_poly.name s);
  { s with hw = { s.hw with Stmt_poly.pipeline = Some (dim, ii) } }

let unroll (s : Stmt_poly.t) dim factor =
  ignore (level_of_exn s dim);
  if factor < 1 then err "%s: unroll factor must be positive" (Stmt_poly.name s);
  {
    s with
    hw =
      {
        s.hw with
        Stmt_poly.unrolls = (dim, factor) :: List.remove_assoc dim s.hw.unrolls;
      };
  }

let rename_dim (s : Stmt_poly.t) old_name new_name =
  check_dim s old_name;
  check_fresh s new_name;
  {
    s with
    domain = Basic_set.rename_dim old_name new_name s.domain;
    index_map =
      List.map
        (fun (o, e) -> (o, Linexpr.rename_dim old_name new_name e))
        s.index_map;
    sched = Sched.rename_dim s.sched old_name new_name;
    hw =
      {
        Stmt_poly.pipeline =
          Option.map
            (fun (d, ii) -> ((if d = old_name then new_name else d), ii))
            s.hw.Stmt_poly.pipeline;
        unrolls =
          List.map
            (fun (d, f) -> ((if d = old_name then new_name else d), f))
            s.hw.Stmt_poly.unrolls;
      };
  }

let on_stmt stmts cname f =
  let found = ref false in
  let stmts =
    List.map
      (fun (s : Stmt_poly.t) ->
        if Stmt_poly.name s = cname then begin
          found := true;
          f s
        end
        else s)
      stmts
  in
  if not !found then err "no statement named %s" cname;
  stmts

let find_stmt stmts cname =
  match
    List.find_opt (fun s -> Stmt_poly.name s = cname) stmts
  with
  | Some s -> s
  | None -> err "no statement named %s" cname

let apply_directive stmts directive =
  match (directive : Schedule.t) with
  | Schedule.Interchange { compute; d1; d2 } ->
      on_stmt stmts compute (fun s -> interchange s d1 d2)
  | Schedule.Split { compute; dim; factor; outer; inner } ->
      on_stmt stmts compute (fun s -> split s dim factor ~outer ~inner)
  | Schedule.Tile { compute; d1; d2; f1; f2; o1; o2; i1; i2 } ->
      on_stmt stmts compute (fun s -> tile s d1 d2 f1 f2 ~o1 ~o2 ~i1 ~i2)
  | Schedule.Skew { compute; d1; d2; f1; f2; n1; n2 } ->
      on_stmt stmts compute (fun s -> skew s d1 d2 f1 f2 ~n1 ~n2)
  | Schedule.Reverse { compute; dim; new_dim } ->
      on_stmt stmts compute (fun s -> reverse s dim ~new_dim)
  | Schedule.After { compute; anchor; level } ->
      let anchor = find_stmt stmts anchor in
      on_stmt stmts compute (fun s -> sequence_after s ~anchor ~level)
  | Schedule.Fuse { c1; c2; level } ->
      let anchor = find_stmt stmts c1 in
      on_stmt stmts c2 (fun s -> sequence_after s ~anchor ~level)
  | Schedule.Pipeline { compute; dim; ii } ->
      on_stmt stmts compute (fun s -> pipeline s dim ii)
  | Schedule.Unroll { compute; dim; factor } ->
      on_stmt stmts compute (fun s -> unroll s dim factor)
  | Schedule.Partition _ | Schedule.Auto_dse -> stmts

let original_points (s : Stmt_poly.t) =
  let dims = Basic_set.dims s.domain in
  let orig_order = Compute.iter_names s.compute in
  let points = Feasible.enumerate s.domain in
  let project point =
    let env d =
      let rec find ds vs =
        match (ds, vs) with
        | d' :: _, v :: _ when d' = d -> v
        | _ :: ds, _ :: vs -> find ds vs
        | _ -> raise Not_found
      in
      find dims point
    in
    List.map
      (fun o -> Linexpr.eval env (List.assoc o s.index_map))
      orig_order
  in
  List.sort compare (List.map project points)
