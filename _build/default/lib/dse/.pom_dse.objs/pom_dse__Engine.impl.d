lib/dse/engine.ml: Stage1 Stage2 Sys
