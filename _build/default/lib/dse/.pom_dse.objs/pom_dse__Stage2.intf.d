lib/dse/stage2.mli: Func Pom_dsl Pom_hls Pom_polyir Schedule Stage1
