lib/dse/engine.mli: Pom_dsl Pom_hls Stage1 Stage2
