lib/dse/stage2.ml: Array Device Format Func Hashtbl Int List Option Placeholder Pom_depgraph Pom_dsl Pom_hls Pom_poly Pom_polyir Prog Report Resource Schedule Stage1 Stmt_poly String Summary
