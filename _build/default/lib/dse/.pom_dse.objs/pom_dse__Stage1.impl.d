lib/dse/stage1.ml: Array Compute Func Graph Hints List Pom_depgraph Pom_dsl Schedule Var
