lib/dse/stage1.mli: Func Pom_dsl Schedule
