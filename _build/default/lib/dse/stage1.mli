(** Stage 1 of the DSE engine (Section VI-A): dependence-aware code
    transformation.  The dependence graph is traversed, loop-carried
    dependences are checked per node, and loop interchange / splitting
    (distribution) / skewing / re-fusion are applied iteratively until no
    node keeps a tight innermost dependence or the iteration bound is hit.

    The output is a transformation plan: a list of DSL scheduling
    directives that, applied to the unscheduled program, realize the
    dependence-alleviated loop structure. *)

open Pom_dsl

type node_plan = {
  compute : string;
  final_order : string list;
      (** loop order after the plan, over (possibly skewed) dim names *)
  skewed : bool;
  tight : bool;  (** dependence could not be alleviated *)
}

type t = {
  directives : Schedule.t list;
  nodes : node_plan list;
  iterations : int;  (** analyze/transform rounds used *)
}

(** [run func] plans dependence-aware transformations for every compute of
    [func].  User-provided fusion ([After]/[Fuse] directives at level >= 1)
    defines the initial fusion groups; conflicting per-node requirements
    split the group (Fig. 10) and compatible transformed nodes are
    conservatively re-fused. *)
val run : ?max_iterations:int -> Func.t -> t
