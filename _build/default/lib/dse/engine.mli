(** The two-stage DSE driver (the [f.auto_DSE()] primitive): run
    dependence-aware transformation, then bottleneck-oriented optimization,
    and account the search time that Table III reports as the toolchain's
    runtime. *)

type outcome = {
  stage1 : Stage1.t;
  result : Stage2.result;
  dse_time_s : float;  (** wall-clock search time *)
}

val run :
  ?device:Pom_hls.Device.t ->
  ?composition:Pom_hls.Resource.composition ->
  ?par_cap:int ->
  ?bank_cap:int ->
  ?steps:(int -> int list) ->
  Pom_dsl.Func.t ->
  outcome
