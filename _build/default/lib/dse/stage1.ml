open Pom_dsl
open Pom_depgraph

type node_plan = {
  compute : string;
  final_order : string list;
  skewed : bool;
  tight : bool;
}

type t = {
  directives : Schedule.t list;
  nodes : node_plan list;
  iterations : int;
}

(* Emit the interchanges realizing [desired] starting from [current]. *)
let realize_order compute current desired =
  let cur = Array.of_list current in
  let swaps = ref [] in
  List.iteri
    (fun i want ->
      if cur.(i) <> want then begin
        let j = ref i in
        Array.iteri (fun k d -> if d = want then j := k) cur;
        swaps := Schedule.interchange compute cur.(i) want :: !swaps;
        let tmp = cur.(i) in
        cur.(i) <- cur.(!j);
        cur.(!j) <- tmp
      end)
    desired;
  List.rev !swaps

(* Per-node plan from the fine-grained hints. *)
let plan_node (node : Graph.node) =
  let cname = node.Graph.compute.Compute.name in
  let original = Compute.iter_names node.Graph.compute in
  match Hints.suggest node.Graph.fine with
  | Hints.Keep ->
      ([], { compute = cname; final_order = original; skewed = false; tight = false })
  | Hints.Reorder order ->
      ( realize_order cname original order,
        { compute = cname; final_order = order; skewed = false; tight = false } )
  | Hints.Skew_hint { d1; d2; factor; order } ->
      let n1 = d1 ^ "s" and n2 = d2 ^ "s" in
      let rename d = if d = d1 then n1 else if d = d2 then n2 else d in
      let start = List.map rename original in
      let desired = List.map rename order in
      ( Schedule.skew cname d1 d2 factor 1 n1 n2
        :: realize_order cname start desired,
        { compute = cname; final_order = desired; skewed = true; tight = false }
      )
  | Hints.Tight _ ->
      ([], { compute = cname; final_order = original; skewed = false; tight = true })

(* Fusion groups declared by the user ([After]/[Fuse] at level >= 1),
   as lists of compute names in program order. *)
let user_fusion_groups func =
  let pairs =
    List.filter_map
      (fun d ->
        match (d : Schedule.t) with
        | Schedule.After { compute; anchor; level } when level >= 1 ->
            Some (anchor, compute)
        | Schedule.Fuse { c1; c2; level } when level >= 1 -> Some (c1, c2)
        | _ -> None)
      (Func.directives func)
  in
  let rec group_of groups name =
    match groups with
    | [] -> None
    | g :: rest -> if List.mem name !g then Some g else group_of rest name
  in
  let groups = ref [] in
  List.iter
    (fun (a, b) ->
      match (group_of !groups a, group_of !groups b) with
      | Some g, None -> g := !g @ [ b ]
      | None, Some g -> g := a :: !g
      | Some g1, Some g2 when g1 != g2 ->
          g1 := !g1 @ !g2;
          groups := List.filter (fun g -> g != g2) !groups
      | Some _, Some _ -> ()
      | None, None -> groups := ref [ a; b ] :: !groups)
    pairs;
  let order = List.map (fun (c : Compute.t) -> c.name) (Func.computes func) in
  List.map
    (fun g ->
      List.filter (fun n -> List.mem n !g) order)
    (List.rev !groups)

(* Fusion directives declared by the user (the [after]/[fuse] calls of the
   algorithm specification, Fig. 16), restricted to one group. *)
let user_fusion_directives func g =
  List.filter
    (fun d ->
      match (d : Schedule.t) with
      | Schedule.After { compute; anchor; level } when level >= 1 ->
          List.mem compute g && List.mem anchor g
      | Schedule.Fuse { c1; c2; level } when level >= 1 ->
          List.mem c1 g && List.mem c2 g
      | _ -> false)
    (Func.directives func)

(* Any data edge between two members means distributing them would change
   the specified interleaved semantics — the group must stay fused. *)
let has_cross_edges graph g =
  List.exists
    (fun (e : Graph.edge) -> List.mem e.Graph.src g && List.mem e.Graph.dst g)
    (Graph.edges graph)

let plan_of plans name = List.find (fun p -> p.compute = name) plans

(* Decide what to do with one user fusion group after the per-node plans
   are known: keep as specified, or distribute + transform + re-fuse
   (Fig. 10's split-interchange-merge). *)
let fuse_group func graph plans g =
  let member_plans = List.map (plan_of plans) g in
  let untouched =
    List.for_all (fun p -> p.final_order = Compute.iter_names (Func.find_compute func p.compute)) member_plans
  in
  if untouched then (user_fusion_directives func g, false)
  else if has_cross_edges graph g then
    (* cannot distribute; drop the per-node transforms for this group and
       keep the user's structure *)
    (user_fusion_directives func g, false)
  else
    (* independent members: distribute, transform, then re-fuse
       position-wise at full depth when depths and extents line up *)
    let extents name =
      let c = Func.find_compute func name in
      let p = plan_of plans name in
      List.map
        (fun d ->
          Var.extent (List.find (fun (v : Var.t) -> v.Var.name = d || v.Var.name ^ "s" = d) c.Compute.iters))
        p.final_order
    in
    match g with
    | first :: rest ->
        let skew_free = List.for_all (fun p -> not p.skewed) member_plans in
        let e0 = extents first in
        if
          skew_free
          && List.for_all (fun n -> extents n = e0) rest
        then
          ( List.map
              (fun c -> Schedule.fuse first c ~level:(List.length e0))
              rest,
            true )
        else ([], true)
    | [] -> ([], false)

let run ?(max_iterations = 8) func =
  ignore max_iterations;
  let graph = Graph.build func in
  let planned = List.map plan_node (Graph.nodes graph) in
  let plans = List.map snd planned in
  let groups = user_fusion_groups func in
  (* Nodes in groups that cannot be distributed keep their original order:
     filter their transform directives out. *)
  let grouped_decisions = List.map (fuse_group func graph plans) groups in
  let frozen =
    List.concat
      (List.map2
         (fun g (_, distributed) ->
           if (not distributed) && has_cross_edges graph g then g else [])
         groups grouped_decisions)
  in
  let node_directives =
    List.concat_map
      (fun (ds, p) -> if List.mem p.compute frozen then [] else ds)
      planned
  in
  let fusion_directives = List.concat_map fst grouped_decisions in
  let transformed = node_directives <> [] in
  let refused = List.exists snd grouped_decisions in
  let iterations =
    1 + (if transformed then 1 else 0) + if refused then 1 else 0
  in
  {
    directives = node_directives @ fusion_directives;
    nodes =
      List.map
        (fun p ->
          if List.mem p.compute frozen then
            {
              p with
              final_order = Compute.iter_names (Func.find_compute func p.compute);
              skewed = false;
            }
          else p)
        plans;
    iterations;
  }
