type outcome = {
  stage1 : Stage1.t;
  result : Stage2.result;
  dse_time_s : float;
}

let run ?device ?composition ?par_cap ?bank_cap ?steps func =
  let t0 = Sys.time () in
  let stage1 = Stage1.run func in
  let result =
    Stage2.run ?device ?composition ?par_cap ?bank_cap ?steps func stage1
  in
  { stage1; result; dse_time_s = Sys.time () -. t0 }
