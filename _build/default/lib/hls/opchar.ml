open Pom_dsl

type cost = { latency : int; dsp : int; lut : int; ff : int }

let fadd = { latency = 4; dsp = 2; lut = 195; ff = 205 }

let fmul = { latency = 3; dsp = 3; lut = 130; ff = 143 }

let fdiv = { latency = 14; dsp = 0; lut = 800; ff = 950 }

let fminmax = { latency = 1; dsp = 0; lut = 100; ff = 64 }

let dadd = { latency = 6; dsp = 3; lut = 420; ff = 450 }

let dmul = { latency = 5; dsp = 11; lut = 300; ff = 320 }

let ddiv = { latency = 28; dsp = 0; lut = 3200; ff = 3600 }

let dminmax = { latency = 1; dsp = 0; lut = 180; ff = 128 }

(* integer arithmetic: adds/compares are carry chains; multiplies use a
   DSP48 once operands pass ~16 bits, pure LUT logic below *)
let int_add bits = { latency = 1; dsp = 0; lut = bits; ff = bits }

let int_mul bits =
  if bits >= 32 then { latency = 2; dsp = 3; lut = 50; ff = 60 }
  else if bits >= 16 then { latency = 1; dsp = 1; lut = 30; ff = 35 }
  else { latency = 1; dsp = 0; lut = 45; ff = 30 }

let int_div bits = { latency = bits; dsp = 0; lut = 30 * bits; ff = 32 * bits }

let int_minmax bits = { latency = 1; dsp = 0; lut = bits; ff = bits / 2 }

let add_cost dt =
  match (dt : Dtype.t) with
  | Dtype.F32 -> fadd
  | Dtype.F64 -> dadd
  | _ -> int_add (Dtype.bits dt)

let mul_cost dt =
  match (dt : Dtype.t) with
  | Dtype.F32 -> fmul
  | Dtype.F64 -> dmul
  | _ -> int_mul (Dtype.bits dt)

let div_cost dt =
  match (dt : Dtype.t) with
  | Dtype.F32 -> fdiv
  | Dtype.F64 -> ddiv
  | _ -> int_div (Dtype.bits dt)

let minmax_cost dt =
  match (dt : Dtype.t) with
  | Dtype.F32 -> fminmax
  | Dtype.F64 -> dminmax
  | _ -> int_minmax (Dtype.bits dt)

let load = { latency = 2; dsp = 0; lut = 20; ff = 10 }

let store = { latency = 1; dsp = 0; lut = 15; ff = 8 }

type body = {
  dtype : Dtype.t;
  crit_path : int;
  n_fadd : int;
  n_fmul : int;
  n_fdiv : int;
  n_fminmax : int;
  accesses : (string * int) list;
}

let rec depth dt = function
  | Expr.Load _ -> load.latency
  | Expr.Fconst _ -> 0
  | Expr.Neg a -> depth dt a
  | Expr.Bin (op, a, b) ->
      let d = max (depth dt a) (depth dt b) in
      let l =
        match op with
        | Expr.Add | Expr.Sub -> (add_cost dt).latency
        | Expr.Mul -> (mul_cost dt).latency
        | Expr.Div -> (div_cost dt).latency
        | Expr.Min | Expr.Max -> (minmax_cost dt).latency
      in
      d + l

let analyze_body (c : Compute.t) =
  let dtype = (fst c.Compute.dest).Placeholder.dtype in
  let adds, subs, muls, divs, minmaxes = Expr.op_counts c.Compute.body in
  let tally = Hashtbl.create 8 in
  let bump name =
    Hashtbl.replace tally name (1 + Option.value ~default:0 (Hashtbl.find_opt tally name))
  in
  List.iter
    (fun ((p : Placeholder.t), _) -> bump p.name)
    (Expr.loads c.Compute.body);
  bump (Compute.array_written c);
  {
    dtype;
    crit_path = depth dtype c.Compute.body + store.latency;
    n_fadd = adds + subs;
    n_fmul = muls;
    n_fdiv = divs;
    n_fminmax = minmaxes;
    accesses =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
  }

let body_resources b ~copies =
  let mul_cost_k k (c : cost) = (k * c.dsp, k * c.lut, k * c.ff) in
  let parts =
    [
      mul_cost_k (b.n_fadd * copies) (add_cost b.dtype);
      mul_cost_k (b.n_fmul * copies) (mul_cost b.dtype);
      mul_cost_k (b.n_fdiv * copies) (div_cost b.dtype);
      mul_cost_k (b.n_fminmax * copies) (minmax_cost b.dtype);
    ]
  in
  let dsp, lut, ff =
    List.fold_left
      (fun (d, l, f) (d', l', f') -> (d + d', l + l', f + f'))
      (0, 0, 0) parts
  in
  { latency = 0; dsp; lut; ff }

let chain_arith_latency b =
  if b.n_fdiv > 0 then (div_cost b.dtype).latency
  else if b.n_fadd > 0 then (add_cost b.dtype).latency
  else if b.n_fmul > 0 then (mul_cost b.dtype).latency
  else 1

(* The recurrence cycle runs load -> one arithmetic stage -> store. *)
let chain_latency b = load.latency + chain_arith_latency b + store.latency
