(** FPGA device descriptions.  The evaluation targets the Xilinx XC7Z020
    (Zynq-7020) at a 100 MHz target clock, with the resource counts quoted
    in Section VII-A. *)

type t = {
  name : string;
  dsp : int;
  lut : int;
  ff : int;
  bram_bits : int;
  clock_mhz : float;
}

val xc7z020 : t

(** A mid-range UltraScale+ part (ZCU102's XCZU9EG), for device-scaling
    studies beyond the paper's single board. *)
val xczu9eg : t

(** [scale frac d] shrinks every resource budget to [frac] of [d] (used by
    the Fig. 11 resource-constraint sweep). *)
val scale : float -> t -> t

val pp : Format.formatter -> t -> unit
