type usage = { dsp : int; lut : int; ff : int; bram : int }

let zero = { dsp = 0; lut = 0; ff = 0; bram = 0 }

let add a b =
  {
    dsp = a.dsp + b.dsp;
    lut = a.lut + b.lut;
    ff = a.ff + b.ff;
    bram = a.bram + b.bram;
  }

let max_usage a b =
  {
    dsp = max a.dsp b.dsp;
    lut = max a.lut b.lut;
    ff = max a.ff b.ff;
    bram = max a.bram b.bram;
  }

type composition = Reuse | Dataflow

(* Per-access address/mux logic and per-bank steering logic, dominated by
   the crossbars that wide unrolling requires. *)
let access_lut = 60

let access_ff = 25

let bank_lut = 220

let bank_ff = 50

let base_lut = 1200

let base_ff = 900

let bram18_bits = 18432

let bram18_blocks (d : Device.t) = d.Device.bram_bits / bram18_bits

let group_usage profiles (eval : Latency.group_eval) =
  List.fold_left
    (fun acc (p : Summary.t) ->
      let name = Pom_polyir.Stmt_poly.name p.Summary.stmt in
      let copies =
        Option.value ~default:1 (List.assoc_opt name eval.Latency.phys_copies)
      in
      let ops = Opchar.body_resources p.Summary.body ~copies in
      let n_accesses =
        List.fold_left (fun a (_, n) -> a + n) 0 p.Summary.body.Opchar.accesses
      in
      let pipeline_regs =
        if eval.Latency.pipelined then
          copies * p.Summary.body.Opchar.crit_path * 16
        else 0
      in
      add acc
        {
          dsp = ops.Opchar.dsp;
          lut = ops.Opchar.lut + (n_accesses * copies * access_lut);
          ff = ops.Opchar.ff + (n_accesses * copies * access_ff) + pipeline_regs;
          bram = 0;
        })
    zero profiles

(* On-chip storage: an array is buffered in BRAM when it fits in a quarter
   of the device's memory (so several arrays can coexist); each partition
   bank takes at least one BRAM18.  Bigger arrays stay external. *)
let bram_of_array (device : Device.t) banks bits =
  if bits > device.Device.bram_bits / 4 then 0
  else
    let banks = max 1 banks in
    let per_bank = (bits / banks / bram18_bits) + 1 in
    banks * per_bank

(* arrays touched by a set of profiles, with bit sizes, deduplicated *)
let arrays_of profiles =
  let arrays = Hashtbl.create 8 in
  List.iter
    (fun (p : Summary.t) ->
      let compute = p.Summary.stmt.Pom_polyir.Stmt_poly.compute in
      List.iter
        (fun (ph : Pom_dsl.Placeholder.t) ->
          Hashtbl.replace arrays ph.Pom_dsl.Placeholder.name
            (Pom_dsl.Placeholder.bits ph))
        (Pom_dsl.Compute.placeholders compute))
    profiles;
  arrays

let of_program ~device ~composition ~partitions profiles evals =
  (* on-chip buffers follow the composition: under reuse only the active
     group's working set is resident (others stream from external memory),
     under dataflow every stage's buffers coexist *)
  let group_bram profs =
    Hashtbl.fold
      (fun a bits acc ->
        let banks = max 1 (List.fold_left ( * ) 1 (partitions a)) in
        acc + bram_of_array device banks bits)
      (arrays_of profs) 0
  in
  let per_group =
    List.map
      (fun (e : Latency.group_eval) ->
        let profs =
          List.filter (fun p -> p.Summary.group = e.Latency.group) profiles
        in
        let u = group_usage profs e in
        { u with bram = group_bram profs })
      evals
  in
  let operators =
    match composition with
    | Reuse -> List.fold_left max_usage zero per_group
    | Dataflow -> List.fold_left add zero per_group
  in
  (* partition steering logic exists once per physical array *)
  let banking =
    Hashtbl.fold
      (fun a _bits acc ->
        let banks = max 1 (List.fold_left ( * ) 1 (partitions a)) in
        add acc { dsp = 0; lut = banks * bank_lut; ff = banks * bank_ff; bram = 0 })
      (arrays_of profiles) zero
  in
  add operators (add banking { dsp = 0; lut = base_lut; ff = base_ff; bram = 0 })

let power u =
  0.08
  +. (0.0012 *. float_of_int u.dsp)
  +. (3.0e-6 *. float_of_int u.ff)
  +. (4.0e-6 *. float_of_int u.lut)
  +. (0.0004 *. float_of_int u.bram)

let fits (d : Device.t) u =
  u.dsp <= d.Device.dsp && u.lut <= d.Device.lut && u.ff <= d.Device.ff
  && u.bram <= bram18_blocks d

let pp ppf u =
  Format.fprintf ppf "DSP %d, LUT %d, FF %d, BRAM18 %d" u.dsp u.lut u.ff u.bram
