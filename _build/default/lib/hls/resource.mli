(** The area half of the virtual HLS synthesizer: DSP/LUT/FF accumulation
    from physical operator copies, memory-access logic, and array-partition
    banking overhead. *)

type usage = { dsp : int; lut : int; ff : int; bram : int (** BRAM18 blocks *) }

val zero : usage

val add : usage -> usage -> usage

val max_usage : usage -> usage -> usage

(** How sequential groups compose: [Reuse] shares operators across groups
    (POM's resource reuse; area = max over groups), [Dataflow] instantiates
    each group separately (ScaleHLS's dataflow mode; area = sum). *)
type composition = Reuse | Dataflow

(** Operator/register area of one group (no banking or base overhead) —
    what a per-loop resource estimate sees. *)
val group_usage : Summary.t list -> Latency.group_eval -> usage

(** [of_program ~device ~composition ~partitions profiles evals] combines
    per-group operator area with the program-wide banking and control
    overhead.  Arrays small enough for on-chip storage are mapped to BRAM18
    blocks (at least one per partition bank); larger arrays live in
    external memory and consume no BRAM, as the evaluation's 4096x4096
    matrices must. *)
val of_program :
  device:Device.t ->
  composition:composition ->
  partitions:(string -> int list) ->
  Summary.t list ->
  Latency.group_eval list ->
  usage

(** BRAM18 blocks available on a device. *)
val bram18_blocks : Device.t -> int

(** Dynamic + static power (Watts) as an affine function of utilization. *)
val power : usage -> float

val fits : Device.t -> usage -> bool

val pp : Format.formatter -> usage -> unit
