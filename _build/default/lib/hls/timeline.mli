(** ASCII schedule timelines in the style of Fig. 2 (c)(d)(e): execution
    order of loop iterations (rows) against clock cycles (columns), with
    each statement instance occupying [depth] cycles starting at its issue
    slot (consecutive instances of a pipelined loop issue [II] cycles
    apart).  Intended for small problem sizes — it renders the first
    [max_instances] statement instances. *)

val render :
  ?max_instances:int -> ?max_width:int -> Pom_polyir.Prog.t -> string
