open Pom_poly
open Pom_polyir

(* Execute the polyhedral AST, collecting statement instances in order. *)
let instances ~cap prog =
  let forest = Prog.to_ast prog in
  let env_tbl : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let env d =
    match Hashtbl.find_opt env_tbl d with Some v -> v | None -> raise Not_found
  in
  let acc = ref [] in
  let count = ref 0 in
  let exception Done in
  let rec go = function
    | Ast.For { iter; lbs; ubs; body } ->
        let lb = Ast.eval_lb env lbs and ub = Ast.eval_ub env ubs in
        for x = lb to ub do
          Hashtbl.replace env_tbl iter x;
          List.iter go body
        done
    | Ast.If (guards, body) ->
        if List.for_all (Constr.sat env) guards then List.iter go body
    | Ast.User u ->
        incr count;
        if !count > cap then raise Done;
        acc :=
          (u.Ast.stmt, List.map (fun (_, it) -> env it) u.Ast.bindings) :: !acc
  in
  (try List.iter go forest with Done -> ());
  List.rev !acc

let render ?(max_instances = 16) ?(max_width = 72) prog =
  let profiles = Summary.profile_all prog in
  let partitions = Report.partition_fn prog in
  let evals, _ = Latency.eval_program ~partitions profiles in
  let group_of name =
    let p =
      List.find
        (fun (p : Summary.t) -> Stmt_poly.name p.Summary.stmt = name)
        profiles
    in
    p.Summary.group
  in
  let eval_of g =
    List.find (fun (e : Latency.group_eval) -> e.Latency.group = g) evals
  in
  let insts = instances ~cap:max_instances prog in
  (* issue slot: per-statement instance counter times its group's II, plus
     the accumulated latency of earlier groups *)
  let group_start = Hashtbl.create 4 in
  let _ =
    List.fold_left
      (fun t (e : Latency.group_eval) ->
        Hashtbl.replace group_start e.Latency.group t;
        t + e.Latency.latency)
      0 evals
  in
  let counters = Hashtbl.create 8 in
  let rows =
    List.map
      (fun (name, point) ->
        let g = group_of name in
        let e = eval_of g in
        let k = Option.value ~default:0 (Hashtbl.find_opt counters name) in
        Hashtbl.replace counters name (k + 1);
        let depth = max 1 (if e.Latency.pipelined then e.Latency.depth else 4) in
        let step =
          if e.Latency.pipelined then e.Latency.achieved_ii else depth
        in
        let start =
          Option.value ~default:0 (Hashtbl.find_opt group_start g) + (k * step)
        in
        (name, point, start, depth))
      insts
  in
  let horizon =
    List.fold_left (fun acc (_, _, s, d) -> max acc (s + d)) 1 rows
  in
  let scale = max 1 ((horizon + max_width - 1) / max_width) in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "cycles 0..%d (one column = %d cycle%s)\n" horizon scale
       (if scale = 1 then "" else "s"));
  List.iter
    (fun (name, point, start, depth) ->
      let label =
        Printf.sprintf "%-6s(%s)" name
          (String.concat "," (List.map string_of_int point))
      in
      let label =
        if String.length label > 14 then String.sub label 0 14 else label
      in
      let pre = start / scale and len = max 1 (depth / scale) in
      Buffer.add_string buf
        (Printf.sprintf "%-14s |%s%s\n" label (String.make pre ' ')
           (String.make len '#')))
    rows;
  Buffer.contents buf
