(** Operator characterization at the 100 MHz target clock — per-operation
    latency and resource costs in the style of the COMBA / ScaleHLS QoR
    models the paper uses for estimation ([35], [38]).  Costs depend on the
    data type (Table I's "ability of data type customization"): flops
    approximate Vitis HLS floating-point cores on 7-series fabric, narrow
    integer arithmetic maps to LUT/carry logic, and 16+-bit multiplies to
    DSP48 slices. *)

type cost = { latency : int; dsp : int; lut : int; ff : int }

(** Arithmetic costs for a given operand type. *)
val add_cost : Pom_dsl.Dtype.t -> cost

val mul_cost : Pom_dsl.Dtype.t -> cost

val div_cost : Pom_dsl.Dtype.t -> cost

val minmax_cost : Pom_dsl.Dtype.t -> cost

(** 32-bit floating-point shorthands (the evaluation's default type). *)

val fadd : cost

val fmul : cost

val fdiv : cost

val fminmax : cost

(** BRAM/interface read; writes complete in [store.latency]. *)
val load : cost

val store : cost

(** Static analysis of a statement body (a DSL expression plus its store):
    dataflow-critical-path latency, per-kind operation counts, and memory
    accesses per array per execution.  Costs are taken for the statement's
    destination data type. *)
type body = {
  dtype : Pom_dsl.Dtype.t;
  crit_path : int;  (** cycles from first load to store completion *)
  n_fadd : int;  (** adds + subs (same core) *)
  n_fmul : int;
  n_fdiv : int;
  n_fminmax : int;
  accesses : (string * int) list;  (** array -> loads+stores per execution *)
}

val analyze_body : Pom_dsl.Compute.t -> body

(** Resource cost of [copies] parallel instances of a body's operators. *)
val body_resources : body -> copies:int -> cost

(** Latency of the serial dependence chain through one body execution
    (load -> arithmetic on the cycle -> store), used for RecMII. *)
val chain_latency : body -> int

(** Latency of the dominant arithmetic stage alone (per chained link). *)
val chain_arith_latency : body -> int
