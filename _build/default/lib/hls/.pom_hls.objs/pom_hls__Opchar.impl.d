lib/hls/opchar.ml: Compute Dtype Expr Hashtbl List Option Placeholder Pom_dsl String
