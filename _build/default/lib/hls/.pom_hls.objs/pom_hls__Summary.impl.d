lib/hls/summary.ml: Basic_set Compute Dep Format Hashtbl Linexpr List Opchar Pom_dsl Pom_poly Pom_polyir Printf Prog Sched Stmt_poly String
