lib/hls/device.mli: Format
