lib/hls/device.ml: Format
