lib/hls/timeline.ml: Ast Buffer Constr Hashtbl Latency List Option Pom_poly Pom_polyir Printf Prog Report Stmt_poly String Summary
