lib/hls/timeline.mli: Pom_polyir
