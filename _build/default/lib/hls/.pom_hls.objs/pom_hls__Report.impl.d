lib/hls/report.ml: Device Float Format Latency List Pom_polyir Printf Prog Resource Stmt_poly String Summary
