lib/hls/latency.mli: Summary
