lib/hls/summary.mli: Format Opchar Pom_poly Pom_polyir Prog Stmt_poly
