lib/hls/resource.mli: Device Format Latency Summary
