lib/hls/resource.ml: Device Format Hashtbl Latency List Opchar Option Pom_dsl Pom_polyir Summary
