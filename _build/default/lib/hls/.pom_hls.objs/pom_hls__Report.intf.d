lib/hls/report.mli: Device Format Pom_dsl Pom_polyir Resource
