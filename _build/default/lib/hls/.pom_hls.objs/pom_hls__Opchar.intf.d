lib/hls/opchar.mli: Pom_dsl
