lib/hls/latency.ml: Float Hashtbl Int List Opchar Option Pom_poly Pom_polyir String Summary
