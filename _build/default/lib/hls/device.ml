type t = {
  name : string;
  dsp : int;
  lut : int;
  ff : int;
  bram_bits : int;
  clock_mhz : float;
}

let xc7z020 =
  {
    name = "xc7z020";
    dsp = 220;
    lut = 53_200;
    ff = 106_400;
    bram_bits = 4_900_000;
    clock_mhz = 100.0;
  }

let xczu9eg =
  {
    name = "xczu9eg";
    dsp = 2520;
    lut = 274_080;
    ff = 548_160;
    bram_bits = 32_100_000;
    clock_mhz = 100.0;
  }

let scale frac d =
  if frac <= 0.0 || frac > 1.0 then invalid_arg "Device.scale: bad fraction";
  let s x = int_of_float (frac *. float_of_int x) in
  {
    d with
    dsp = s d.dsp;
    lut = s d.lut;
    ff = s d.ff;
    bram_bits = s d.bram_bits;
  }

let pp ppf d =
  Format.fprintf ppf "%s: %d DSP, %d LUT, %d FF, %.1f Mb BRAM @ %.0f MHz"
    d.name d.dsp d.lut d.ff
    (float_of_int d.bram_bits /. 1.0e6)
    d.clock_mhz
