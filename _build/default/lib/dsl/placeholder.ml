type t = { name : string; shape : int list; dtype : Dtype.t }

let make name shape dtype =
  if shape = [] then invalid_arg "Placeholder.make: empty shape";
  List.iter
    (fun d ->
      if d <= 0 then invalid_arg "Placeholder.make: non-positive extent")
    shape;
  { name; shape; dtype }

let rank p = List.length p.shape

let size p = List.fold_left ( * ) 1 p.shape

let bits p = size p * Dtype.bits p.dtype

let pp ppf p =
  Format.fprintf ppf "%s[%s] : %a" p.name
    (String.concat "][" (List.map string_of_int p.shape))
    Dtype.pp p.dtype
