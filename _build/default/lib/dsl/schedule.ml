type partition_kind = Cyclic | Block | Complete

type t =
  | Interchange of { compute : string; d1 : string; d2 : string }
  | Split of {
      compute : string;
      dim : string;
      factor : int;
      outer : string;
      inner : string;
    }
  | Tile of {
      compute : string;
      d1 : string;
      d2 : string;
      f1 : int;
      f2 : int;
      o1 : string;
      o2 : string;
      i1 : string;
      i2 : string;
    }
  | Skew of {
      compute : string;
      d1 : string;
      d2 : string;
      f1 : int;
      f2 : int;
      n1 : string;
      n2 : string;
    }
  | After of { compute : string; anchor : string; level : int }
  | Fuse of { c1 : string; c2 : string; level : int }
  | Reverse of { compute : string; dim : string; new_dim : string }
  | Pipeline of { compute : string; dim : string; ii : int }
  | Unroll of { compute : string; dim : string; factor : int }
  | Partition of { array : string; factors : int list; kind : partition_kind }
  | Auto_dse

let interchange compute d1 d2 = Interchange { compute; d1; d2 }

let split compute dim factor outer inner =
  if factor <= 1 then invalid_arg "Schedule.split: factor must exceed 1";
  Split { compute; dim; factor; outer; inner }

let tile compute d1 d2 f1 f2 o1 o2 i1 i2 =
  if f1 <= 0 || f2 <= 0 then invalid_arg "Schedule.tile: factors must be positive";
  Tile { compute; d1; d2; f1; f2; o1; o2; i1; i2 }

let skew compute d1 d2 f1 f2 n1 n2 =
  if abs f2 <> 1 then
    invalid_arg "Schedule.skew: inner factor must be 1 or -1 (unimodular)";
  Skew { compute; d1; d2; f1; f2; n1; n2 }

let after compute ~anchor ~level = After { compute; anchor; level }

let fuse c1 c2 ~level = Fuse { c1; c2; level }

let reverse compute dim new_dim = Reverse { compute; dim; new_dim }

let pipeline compute dim ii =
  if ii < 1 then invalid_arg "Schedule.pipeline: II must be at least 1";
  Pipeline { compute; dim; ii }

let unroll compute dim factor =
  if factor < 1 then invalid_arg "Schedule.unroll: factor must be positive";
  Unroll { compute; dim; factor }

let partition array factors kind = Partition { array; factors; kind }

let auto_dse = Auto_dse

let is_hardware = function
  | Pipeline _ | Unroll _ | Partition _ -> true
  | Interchange _ | Split _ | Tile _ | Skew _ | After _ | Fuse _ | Reverse _
  | Auto_dse ->
      false

let pp_kind ppf = function
  | Cyclic -> Format.pp_print_string ppf "cyclic"
  | Block -> Format.pp_print_string ppf "block"
  | Complete -> Format.pp_print_string ppf "complete"

let pp ppf = function
  | Interchange { compute; d1; d2 } ->
      Format.fprintf ppf "%s.interchange(%s, %s)" compute d1 d2
  | Split { compute; dim; factor; outer; inner } ->
      Format.fprintf ppf "%s.split(%s, %d, %s, %s)" compute dim factor outer
        inner
  | Tile { compute; d1; d2; f1; f2; o1; o2; i1; i2 } ->
      Format.fprintf ppf "%s.tile(%s, %s, %d, %d, %s, %s, %s, %s)" compute d1
        d2 f1 f2 o1 o2 i1 i2
  | Skew { compute; d1; d2; f1; f2; n1; n2 } ->
      Format.fprintf ppf "%s.skew(%s, %s, %d, %d, %s, %s)" compute d1 d2 f1 f2
        n1 n2
  | After { compute; anchor; level } ->
      Format.fprintf ppf "%s.after(%s, %d)" compute anchor level
  | Reverse { compute; dim; new_dim } ->
      Format.fprintf ppf "%s.reverse(%s, %s)" compute dim new_dim
  | Fuse { c1; c2; level } -> Format.fprintf ppf "fuse(%s, %s, %d)" c1 c2 level
  | Pipeline { compute; dim; ii } ->
      Format.fprintf ppf "%s.pipeline(%s, %d)" compute dim ii
  | Unroll { compute; dim; factor } ->
      Format.fprintf ppf "%s.unroll(%s, %d)" compute dim factor
  | Partition { array; factors; kind } ->
      Format.fprintf ppf "%s.partition({%s}, %a)" array
        (String.concat ", " (List.map string_of_int factors))
        pp_kind kind
  | Auto_dse -> Format.pp_print_string ppf "f.auto_DSE()"
