(** Data types supported by the POM DSL (Section IV-A): signed and unsigned
    integers of 8/16/32/64 bits and IEEE single/double floats. *)

type t = I8 | I16 | I32 | I64 | U8 | U16 | U32 | U64 | F32 | F64

val bits : t -> int

val is_float : t -> bool

val is_signed : t -> bool

(** C type name used in generated HLS code ([float], [int32_t], ...). *)
val c_name : t -> string

val p_int8 : t
val p_int16 : t
val p_int32 : t
val p_int64 : t
val p_uint8 : t
val p_uint16 : t
val p_uint32 : t
val p_uint64 : t
val p_float32 : t
val p_float64 : t

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
