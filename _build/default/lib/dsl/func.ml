type t = {
  name : string;
  mutable computes : Compute.t list;  (* reverse program order *)
  mutable directives : Schedule.t list;  (* reverse application order *)
}

let create name = { name; computes = []; directives = [] }

let name t = t.name

let computes t = List.rev t.computes

let directives t = List.rev t.directives

let find_compute t cname =
  match List.find_opt (fun (c : Compute.t) -> c.name = cname) t.computes with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Func %s: no compute %s" t.name cname)

let add_compute t (c : Compute.t) =
  if List.exists (fun (c' : Compute.t) -> c'.name = c.name) t.computes then
    invalid_arg (Printf.sprintf "Func %s: duplicate compute %s" t.name c.name);
  t.computes <- c :: t.computes

let compute t cname ~iters ?where ~body ~dest () =
  let c = Compute.make cname ~iters ?where ~body ~dest () in
  add_compute t c;
  c

let check_ref t cname = ignore (find_compute t cname)

let schedule t d =
  (match d with
  | Schedule.Interchange { compute; _ }
  | Schedule.Split { compute; _ }
  | Schedule.Tile { compute; _ }
  | Schedule.Skew { compute; _ }
  | Schedule.Reverse { compute; _ }
  | Schedule.Pipeline { compute; _ }
  | Schedule.Unroll { compute; _ } ->
      check_ref t compute
  | Schedule.After { compute; anchor; _ } ->
      check_ref t compute;
      check_ref t anchor
  | Schedule.Fuse { c1; c2; _ } ->
      check_ref t c1;
      check_ref t c2
  | Schedule.Partition _ | Schedule.Auto_dse -> ());
  t.directives <- d :: t.directives

let placeholders t =
  List.sort_uniq
    (fun (a : Placeholder.t) b -> String.compare a.name b.name)
    (List.concat_map Compute.placeholders t.computes)

let wants_auto_dse t =
  List.exists (function Schedule.Auto_dse -> true | _ -> false) t.directives

let decl_loc t =
  let iters =
    List.sort_uniq String.compare
      (List.concat_map Compute.iter_names t.computes)
  in
  List.length (placeholders t) + List.length iters + List.length t.computes + 1

let loc t = decl_loc t + List.length t.directives

let loc_auto t = decl_loc t + 1

let pp ppf t =
  Format.fprintf ppf "@[<v 2>func %s {@,%a@,%a@]@,}" t.name
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Compute.pp)
    (computes t)
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Schedule.pp)
    (directives t)
