open Pom_poly

type t = {
  name : string;
  iters : Var.t list;
  where : Expr.cond list;
  body : Expr.t;
  dest : Placeholder.t * Expr.index list;
}

let iter_names t = List.map (fun (v : Var.t) -> v.name) t.iters

let make name ~iters ?(where = []) ~body ~dest () =
  let t = { name; iters; where; body; dest } in
  let dest_p, dest_ix = dest in
  if List.length dest_ix <> Placeholder.rank dest_p then
    invalid_arg
      (Printf.sprintf "Compute.make %s: destination rank mismatch" name);
  let names = iter_names t in
  let check_known used =
    List.iter
      (fun d ->
        if not (List.mem d names) then
          invalid_arg
            (Printf.sprintf "Compute.make %s: unknown iterator %s" name d))
      used
  in
  check_known (Expr.free_iters body);
  check_known
    (List.concat_map
       (fun i -> Linexpr.dims (Expr.index_to_linexpr i))
       dest_ix);
  check_known
    (List.concat_map
       (fun c -> Constr.dims (Expr.cond_to_constr c))
       where);
  t

let domain t =
  Basic_set.make (iter_names t)
    (List.concat_map Var.constraints t.iters
    @ List.map Expr.cond_to_constr t.where)

let write_access t =
  let p, ixs = t.dest in
  Dep.access p.Placeholder.name (List.map Expr.index_to_linexpr ixs)

let read_accesses t =
  List.map
    (fun ((p : Placeholder.t), ixs) ->
      Dep.access p.name (List.map Expr.index_to_linexpr ixs))
    (Expr.loads t.body)

let arrays_read t =
  List.sort_uniq String.compare
    (List.map (fun ((p : Placeholder.t), _) -> p.name) (Expr.loads t.body))

let array_written t = (fst t.dest).Placeholder.name

let placeholders t =
  let all = fst t.dest :: List.map fst (Expr.loads t.body) in
  List.sort_uniq
    (fun (a : Placeholder.t) b -> String.compare a.name b.name)
    all

let reduction_dims t =
  let dest_dims =
    List.concat_map
      (fun i -> Linexpr.dims (Expr.index_to_linexpr i))
      (snd t.dest)
  in
  List.filter (fun d -> not (List.mem d dest_dims)) (iter_names t)

let is_reduction t =
  reduction_dims t <> []
  || List.exists
       (fun ((p : Placeholder.t), _) -> p.name = array_written t)
       (Expr.loads t.body)

let trip_count t =
  let box = List.fold_left (fun acc v -> acc * Var.extent v) 1 t.iters in
  if t.where = [] then box
  else if box <= 100_000 then Feasible.count (domain t)
  else
    (* magnitude estimate for the QoR model: each affine half-space cut
       roughly halves the box *)
    max 1 (box lsr List.length t.where)

let pp ppf t =
  let p, ixs = t.dest in
  Format.fprintf ppf "%s: {%s} %s(%a) = %a" t.name
    (String.concat ", " (iter_names t))
    p.Placeholder.name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Expr.pp_index)
    ixs Expr.pp t.body
