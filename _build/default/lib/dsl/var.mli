(** Loop iterators with half-open integer ranges, as declared by
    [var i("i", 0, 32)] in the paper's DSL (Fig. 4). *)

type t = { name : string; lb : int; ub : int (** exclusive *) }

(** [make name lb ub]: requires [lb < ub] and a name free of the characters
    reserved by the polyhedral layer ([$]). *)
val make : string -> int -> int -> t

(** Number of iterations, [ub - lb]. *)
val extent : t -> int

(** The two domain constraints [lb <= name < ub]. *)
val constraints : t -> Pom_poly.Constr.t list

val pp : Format.formatter -> t -> unit
