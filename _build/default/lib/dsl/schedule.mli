(** The scheduling primitives of Table II, recorded as first-class
    directives.  Directives are applied to the polyhedral IR by
    [Pom_polyir.Build]; keeping them as data decouples the algorithm
    specification from the schedule, exactly as in Halide-style DSLs. *)

type partition_kind = Cyclic | Block | Complete

type t =
  | Interchange of { compute : string; d1 : string; d2 : string }
  | Split of {
      compute : string;
      dim : string;
      factor : int;
      outer : string;
      inner : string;
    }
  | Tile of {
      compute : string;
      d1 : string;
      d2 : string;
      f1 : int;
      f2 : int;
      o1 : string;
      o2 : string;
      i1 : string;
      i2 : string;
    }
  | Skew of {
      compute : string;
      d1 : string;
      d2 : string;
      f1 : int;
      f2 : int;  (** must be [1] or [-1] to keep the transform unimodular *)
      n1 : string;
      n2 : string;
    }
  | After of { compute : string; anchor : string; level : int }
      (** [compute] executes after [anchor], sharing loops up to [level]
          (0 = fully sequenced, no shared loops). *)
  | Fuse of { c1 : string; c2 : string; level : int }
      (** Fuse the loop nests of [c1] and [c2] at levels 1..[level]. *)
  | Reverse of { compute : string; dim : string; new_dim : string }
      (** Flip a loop level's iteration direction (an "easily added
          customized transformation" in the Section V-B sense; the
          legality checker decides where it is safe). *)
  | Pipeline of { compute : string; dim : string; ii : int }
  | Unroll of { compute : string; dim : string; factor : int }
  | Partition of { array : string; factors : int list; kind : partition_kind }
  | Auto_dse

(** Constructors mirroring the paper's primitive syntax. *)

val interchange : string -> string -> string -> t

val split : string -> string -> int -> string -> string -> t

val tile :
  string -> string -> string -> int -> int -> string -> string -> string -> string -> t

val skew : string -> string -> string -> int -> int -> string -> string -> t

val after : string -> anchor:string -> level:int -> t

val fuse : string -> string -> level:int -> t

val reverse : string -> string -> string -> t

val pipeline : string -> string -> int -> t

val unroll : string -> string -> int -> t

val partition : string -> int list -> partition_kind -> t

val auto_dse : t

(** Is this a hardware-optimization directive (vs a loop transformation)? *)
val is_hardware : t -> bool

val pp : Format.formatter -> t -> unit
