(** The [compute] operation (Fig. 4): an iteration domain (ordered loop
    iterators), a right-hand-side expression, and a destination access.
    [compute s("s", [k; i; j], A(i,j) + B(i,k)*C(k,j), A(i,j))] describes a
    matrix-multiply statement without writing the loop nest. *)

type t = {
  name : string;
  iters : Var.t list;  (** loop order: outermost first *)
  where : Expr.cond list;
      (** extra affine conditions restricting the iteration domain
          (triangular loops etc.); empty = full box *)
  body : Expr.t;
  dest : Placeholder.t * Expr.index list;
}

val make :
  string ->
  iters:Var.t list ->
  ?where:Expr.cond list ->
  body:Expr.t ->
  dest:Placeholder.t * Expr.index list ->
  unit ->
  t

(** Iterator names, outermost first. *)
val iter_names : t -> string list

(** Iteration domain as a basic set over the iterator names. *)
val domain : t -> Pom_poly.Basic_set.t

(** The store access. *)
val write_access : t -> Pom_poly.Dep.access

(** All load accesses in the body. *)
val read_accesses : t -> Pom_poly.Dep.access list

(** Names of arrays read / written. *)
val arrays_read : t -> string list

val array_written : t -> string

(** All placeholders touched. *)
val placeholders : t -> Placeholder.t list

(** Iterators that do not appear in the destination access pattern — the
    reduction dimensions of Fig. 8 (e.g. [k] for GEMM). *)
val reduction_dims : t -> string list

(** A compute is a reduction when its destination is also loaded in the
    body (accumulation) or it has reduction dimensions. *)
val is_reduction : t -> bool

(** Number of iteration-domain points.  Exact for rectangular domains and
    for restricted domains small enough to count; estimated (box divided by
    2 per condition) for large non-rectangular domains — the QoR model only
    needs the magnitude, and the simulator is always exact. *)
val trip_count : t -> int

val pp : Format.formatter -> t -> unit
