type t = I8 | I16 | I32 | I64 | U8 | U16 | U32 | U64 | F32 | F64

let bits = function
  | I8 | U8 -> 8
  | I16 | U16 -> 16
  | I32 | U32 | F32 -> 32
  | I64 | U64 | F64 -> 64

let is_float = function F32 | F64 -> true | _ -> false

let is_signed = function
  | I8 | I16 | I32 | I64 | F32 | F64 -> true
  | U8 | U16 | U32 | U64 -> false

let c_name = function
  | I8 -> "int8_t"
  | I16 -> "int16_t"
  | I32 -> "int32_t"
  | I64 -> "int64_t"
  | U8 -> "uint8_t"
  | U16 -> "uint16_t"
  | U32 -> "uint32_t"
  | U64 -> "uint64_t"
  | F32 -> "float"
  | F64 -> "double"

let p_int8 = I8
let p_int16 = I16
let p_int32 = I32
let p_int64 = I64
let p_uint8 = U8
let p_uint16 = U16
let p_uint32 = U32
let p_uint64 = U64
let p_float32 = F32
let p_float64 = F64

let pp ppf t = Format.pp_print_string ppf (c_name t)

let equal (a : t) b = a = b
