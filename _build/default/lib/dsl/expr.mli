(** Expressions of the POM DSL: affine index arithmetic and the arithmetic
    body of a [compute] (loads from placeholders combined with scalar
    operations). *)

(** Affine index expressions over loop iterators. *)
type index =
  | Ix_var of string
  | Ix_const of int
  | Ix_add of index * index
  | Ix_sub of index * index
  | Ix_mul of int * index

val ix : Var.t -> index

val ix_name : string -> index

val ixc : int -> index

val ( +! ) : index -> index -> index

val ( -! ) : index -> index -> index

(** [k *! ix]: scaling by a constant only (affine restriction). *)
val ( *! ) : int -> index -> index

val index_to_linexpr : index -> Pom_poly.Linexpr.t

(** Affine conditions over iterators, for non-rectangular iteration domains
    (triangular loops etc.). *)
type cond =
  | Cge of index * index  (** a >= b *)
  | Cle of index * index
  | Cgt of index * index
  | Clt of index * index
  | Ceq of index * index

val cond_to_constr : cond -> Pom_poly.Constr.t

(** Evaluate a condition under an iterator assignment. *)
val cond_sat : (string -> int) -> cond -> bool

type binop = Add | Sub | Mul | Div | Min | Max

type t =
  | Load of Placeholder.t * index list
  | Fconst of float
  | Bin of binop * t * t
  | Neg of t

(** [access a [i; j]] is the load [a(i, j)]; rank-checked. *)
val access : Placeholder.t -> index list -> t

val fconst : float -> t

val ( +: ) : t -> t -> t

val ( -: ) : t -> t -> t

val ( *: ) : t -> t -> t

val ( /: ) : t -> t -> t

val min_ : t -> t -> t

val max_ : t -> t -> t

val neg : t -> t

(** All loads, left-to-right. *)
val loads : t -> (Placeholder.t * index list) list

(** Counts of each operation kind in the expression tree, for the QoR
    model: [(adds, subs, muls, divs, minmaxes)]. *)
val op_counts : t -> int * int * int * int * int

(** Iterator names used in the index expressions. *)
val free_iters : t -> string list

val subst_indices : (string * index) list -> t -> t

val pp_index : Format.formatter -> index -> unit

val pp : Format.formatter -> t -> unit
