open Pom_poly

type t = { name : string; lb : int; ub : int }

let make name lb ub =
  if lb >= ub then
    invalid_arg (Printf.sprintf "Var.make %s: empty range [%d, %d)" name lb ub);
  if String.contains name '$' then
    invalid_arg ("Var.make: reserved character in name " ^ name);
  { name; lb; ub }

let extent v = v.ub - v.lb

let constraints v =
  [
    Constr.ge (Linexpr.var v.name) (Linexpr.const v.lb);
    Constr.le (Linexpr.var v.name) (Linexpr.const (v.ub - 1));
  ]

let pp ppf v = Format.fprintf ppf "%s in [%d, %d)" v.name v.lb v.ub
