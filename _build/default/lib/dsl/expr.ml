open Pom_poly

type index =
  | Ix_var of string
  | Ix_const of int
  | Ix_add of index * index
  | Ix_sub of index * index
  | Ix_mul of int * index

let ix (v : Var.t) = Ix_var v.name

let ix_name n = Ix_var n

let ixc k = Ix_const k

let ( +! ) a b = Ix_add (a, b)

let ( -! ) a b = Ix_sub (a, b)

let ( *! ) k a = Ix_mul (k, a)

let rec index_to_linexpr = function
  | Ix_var d -> Linexpr.var d
  | Ix_const k -> Linexpr.const k
  | Ix_add (a, b) -> Linexpr.add (index_to_linexpr a) (index_to_linexpr b)
  | Ix_sub (a, b) -> Linexpr.sub (index_to_linexpr a) (index_to_linexpr b)
  | Ix_mul (k, a) -> Linexpr.scale k (index_to_linexpr a)

type cond =
  | Cge of index * index
  | Cle of index * index
  | Cgt of index * index
  | Clt of index * index
  | Ceq of index * index

let cond_to_constr c =
  let t = index_to_linexpr in
  match c with
  | Cge (a, b) -> Constr.ge (t a) (t b)
  | Cle (a, b) -> Constr.le (t a) (t b)
  | Cgt (a, b) -> Constr.gt (t a) (t b)
  | Clt (a, b) -> Constr.lt (t a) (t b)
  | Ceq (a, b) -> Constr.eq (t a) (t b)

let cond_sat env c = Constr.sat env (cond_to_constr c)

type binop = Add | Sub | Mul | Div | Min | Max

type t =
  | Load of Placeholder.t * index list
  | Fconst of float
  | Bin of binop * t * t
  | Neg of t

let access p indices =
  if List.length indices <> Placeholder.rank p then
    invalid_arg
      (Printf.sprintf "Expr.access: %s has rank %d, got %d indices"
         p.Placeholder.name (Placeholder.rank p) (List.length indices));
  Load (p, indices)

let fconst f = Fconst f

let ( +: ) a b = Bin (Add, a, b)

let ( -: ) a b = Bin (Sub, a, b)

let ( *: ) a b = Bin (Mul, a, b)

let ( /: ) a b = Bin (Div, a, b)

let min_ a b = Bin (Min, a, b)

let max_ a b = Bin (Max, a, b)

let neg a = Neg a

let rec loads = function
  | Load (p, ixs) -> [ (p, ixs) ]
  | Fconst _ -> []
  | Bin (_, a, b) -> loads a @ loads b
  | Neg a -> loads a

let op_counts e =
  let rec go (a, s, m, d, mm) = function
    | Load _ | Fconst _ -> (a, s, m, d, mm)
    | Neg x -> go (a, s + 1, m, d, mm) x
    | Bin (op, x, y) ->
        let acc =
          match op with
          | Add -> (a + 1, s, m, d, mm)
          | Sub -> (a, s + 1, m, d, mm)
          | Mul -> (a, s, m + 1, d, mm)
          | Div -> (a, s, m, d + 1, mm)
          | Min | Max -> (a, s, m, d, mm + 1)
        in
        go (go acc x) y
  in
  go (0, 0, 0, 0, 0) e

let rec index_iters = function
  | Ix_var d -> [ d ]
  | Ix_const _ -> []
  | Ix_add (a, b) | Ix_sub (a, b) -> index_iters a @ index_iters b
  | Ix_mul (_, a) -> index_iters a

let free_iters e =
  List.sort_uniq String.compare
    (List.concat_map
       (fun (_, ixs) -> List.concat_map index_iters ixs)
       (loads e))

let rec subst_index bindings = function
  | Ix_var d -> (
      match List.assoc_opt d bindings with Some i -> i | None -> Ix_var d)
  | Ix_const k -> Ix_const k
  | Ix_add (a, b) -> Ix_add (subst_index bindings a, subst_index bindings b)
  | Ix_sub (a, b) -> Ix_sub (subst_index bindings a, subst_index bindings b)
  | Ix_mul (k, a) -> Ix_mul (k, subst_index bindings a)

let rec subst_indices bindings = function
  | Load (p, ixs) -> Load (p, List.map (subst_index bindings) ixs)
  | Fconst f -> Fconst f
  | Bin (op, a, b) -> Bin (op, subst_indices bindings a, subst_indices bindings b)
  | Neg a -> Neg (subst_indices bindings a)

let rec pp_index ppf = function
  | Ix_var d -> Format.pp_print_string ppf d
  | Ix_const k -> Format.pp_print_int ppf k
  | Ix_add (a, b) -> Format.fprintf ppf "%a + %a" pp_index a pp_index b
  | Ix_sub (a, b) -> Format.fprintf ppf "%a - %a" pp_index a pp_index b
  | Ix_mul (k, a) -> Format.fprintf ppf "%d*(%a)" k pp_index a

let binop_symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Min -> "min"
  | Max -> "max"

let rec pp ppf = function
  | Load (p, ixs) ->
      Format.fprintf ppf "%s(%a)" p.Placeholder.name
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           pp_index)
        ixs
  | Fconst f -> Format.fprintf ppf "%g" f
  | Neg a -> Format.fprintf ppf "-(%a)" pp a
  | Bin ((Min | Max) as op, a, b) ->
      Format.fprintf ppf "%s(%a, %a)" (binop_symbol op) pp a pp b
  | Bin (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp a (binop_symbol op) pp b
