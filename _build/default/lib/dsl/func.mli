(** A function groups computes (in program order) with the schedule
    directives applied to them — the unit that [codegen()] compiles.

    The builder API mirrors the paper's embedded-DSL style: declare
    iterators and placeholders, add computes, then call scheduling
    primitives on the function value. *)

type t

val create : string -> t

val name : t -> string

(** Program order, first-declared first. *)
val computes : t -> Compute.t list

val directives : t -> Schedule.t list

val find_compute : t -> string -> Compute.t

(** [add_compute f c] registers [c]; names must be unique within [f]. *)
val add_compute : t -> Compute.t -> unit

(** Declare-and-register in one step, returning the compute. *)
val compute :
  t ->
  string ->
  iters:Var.t list ->
  ?where:Expr.cond list ->
  body:Expr.t ->
  dest:Placeholder.t * Expr.index list ->
  unit ->
  Compute.t

(** Append a schedule directive (also checks referenced computes exist). *)
val schedule : t -> Schedule.t -> unit

(** All placeholders referenced by any compute, deduplicated by name. *)
val placeholders : t -> Placeholder.t list

(** True when [Auto_dse] was requested. *)
val wants_auto_dse : t -> bool

(** Number of "lines" of this DSL description, for the Fig. 15 LoC
    comparison: one per compute, one per distinct placeholder and iterator,
    one per directive, plus the codegen call. *)
val loc : t -> int

(** Same, counting only the [Auto_dse] directive (the autoDSE variant of
    Fig. 15). *)
val loc_auto : t -> int

val pp : Format.formatter -> t -> unit
