lib/dsl/compute.ml: Basic_set Constr Dep Expr Feasible Format Linexpr List Placeholder Pom_poly Printf String Var
