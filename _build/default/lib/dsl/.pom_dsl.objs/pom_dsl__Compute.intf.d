lib/dsl/compute.mli: Expr Format Placeholder Pom_poly Var
