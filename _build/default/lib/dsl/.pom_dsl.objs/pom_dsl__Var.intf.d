lib/dsl/var.mli: Format Pom_poly
