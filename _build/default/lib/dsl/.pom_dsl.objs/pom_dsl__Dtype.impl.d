lib/dsl/dtype.ml: Format
