lib/dsl/expr.ml: Constr Format Linexpr List Placeholder Pom_poly Printf String Var
