lib/dsl/var.ml: Constr Format Linexpr Pom_poly Printf String
