lib/dsl/dtype.mli: Format
