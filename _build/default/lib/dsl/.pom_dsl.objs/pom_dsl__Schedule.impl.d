lib/dsl/schedule.ml: Format List String
