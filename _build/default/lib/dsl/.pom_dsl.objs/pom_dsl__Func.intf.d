lib/dsl/func.mli: Compute Expr Format Placeholder Schedule Var
