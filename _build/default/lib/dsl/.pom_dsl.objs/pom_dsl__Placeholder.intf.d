lib/dsl/placeholder.mli: Dtype Format
