lib/dsl/placeholder.ml: Dtype Format List String
