lib/dsl/schedule.mli: Format
