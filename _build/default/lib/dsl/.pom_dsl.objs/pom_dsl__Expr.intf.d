lib/dsl/expr.mli: Format Placeholder Pom_poly Var
