lib/dsl/func.ml: Compute Format List Placeholder Printf Schedule String
