(** Multi-dimensional array placeholders, as declared by
    [placeholder A("A", {32, 32}, p_float32)] (Fig. 4). *)

type t = { name : string; shape : int list; dtype : Dtype.t }

val make : string -> int list -> Dtype.t -> t

val rank : t -> int

(** Total number of elements. *)
val size : t -> int

(** On-chip storage footprint in bits. *)
val bits : t -> int

val pp : Format.formatter -> t -> unit
