(** Functional execution of POM programs, used to prove that schedules are
    semantics-preserving: run the original DSL specification and the
    transformed affine IR on identically-initialized memory and compare.

    Pipelining/unroll/partition attributes do not change functional
    semantics and are ignored here. *)

(** Execute a DSL function directly: computes in program order, each as a
    nested loop over its iterators in declared order. *)
val run_reference : Pom_dsl.Func.t -> Memory.t -> unit

(** Execute a lowered affine-dialect function. *)
val run_affine : Pom_affine.Ir.func -> Memory.t -> unit

(** Execute the *specified* semantics of a function: computes plus the
    structural [After]/[Fuse] directives of the algorithm description
    (which, for ping-pong stencils, interleave computes inside a shared
    time loop), with all purely performance-oriented directives ignored.
    This is the semantic reference for any further scheduling. *)
val run_structural : Pom_dsl.Func.t -> Memory.t -> unit

(** Convenience: lower [func]'s computes through the full polyhedral
    pipeline with the given directives already applied (a [Prog.t]),
    execute both on fresh identical memories, and return the max
    elementwise difference.  The reference is {!run_structural}. *)
val divergence : Pom_dsl.Func.t -> Pom_polyir.Prog.t -> float
