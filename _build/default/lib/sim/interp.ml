open Pom_dsl
open Pom_affine

let eval_index env ix =
  Pom_poly.Linexpr.eval env (Expr.index_to_linexpr ix)

let rec eval_expr env mem = function
  | Expr.Load (p, ixs) ->
      Memory.get mem p.Placeholder.name (List.map (eval_index env) ixs)
  | Expr.Fconst f -> f
  | Expr.Neg a -> -.eval_expr env mem a
  | Expr.Bin (op, a, b) -> (
      let x = eval_expr env mem a and y = eval_expr env mem b in
      match op with
      | Expr.Add -> x +. y
      | Expr.Sub -> x -. y
      | Expr.Mul -> x *. y
      | Expr.Div -> x /. y
      | Expr.Min -> Float.min x y
      | Expr.Max -> Float.max x y)

let run_reference func mem =
  List.iter
    (fun (c : Compute.t) ->
      let env_tbl : (string, int) Hashtbl.t = Hashtbl.create 8 in
      let env d =
        match Hashtbl.find_opt env_tbl d with
        | Some v -> v
        | None -> raise Not_found
      in
      let p, dest_ixs = c.Compute.dest in
      let rec loop = function
        | [] ->
            if List.for_all (Expr.cond_sat env) c.Compute.where then begin
              let v = eval_expr env mem c.Compute.body in
              Memory.set mem p.Placeholder.name
                (List.map (eval_index env) dest_ixs)
                v
            end
        | (it : Var.t) :: rest ->
            for v = it.Var.lb to it.Var.ub - 1 do
              Hashtbl.replace env_tbl it.Var.name v;
              loop rest
            done
      in
      loop c.Compute.iters)
    (Func.computes func)

let run_affine (f : Ir.func) mem =
  let env_tbl : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let env d =
    match Hashtbl.find_opt env_tbl d with
    | Some v -> v
    | None -> raise Not_found
  in
  let rec exec = function
    | Ir.For { iter; lbs; ubs; body; _ } ->
        let lb = Pom_poly.Ast.eval_lb env lbs
        and ub = Pom_poly.Ast.eval_ub env ubs in
        for v = lb to ub do
          Hashtbl.replace env_tbl iter v;
          List.iter exec body
        done
    | Ir.If (guards, body) ->
        if List.for_all (Pom_poly.Constr.sat env) guards then
          List.iter exec body
    | Ir.Op s ->
        let p, dest_ixs = s.Ir.dest in
        let v = eval_expr env mem s.Ir.rhs in
        Memory.set mem p.Placeholder.name
          (List.map (eval_index env) dest_ixs)
          v
  in
  List.iter exec f.Ir.body

let run_structural func mem =
  let structural =
    List.filter
      (fun d ->
        match (d : Schedule.t) with
        | Schedule.After _ | Schedule.Fuse _ -> true
        | _ -> false)
      (Func.directives func)
  in
  let prog =
    List.fold_left Pom_polyir.Prog.apply
      (Pom_polyir.Prog.of_func_unscheduled func)
      structural
  in
  run_affine (Lower.lower prog) mem

let divergence func prog =
  let ps = Func.placeholders func in
  let ref_mem = Memory.create ps in
  let opt_mem = Memory.copy ref_mem in
  run_structural func ref_mem;
  run_affine (Lower.lower prog) opt_mem;
  Memory.max_diff ref_mem opt_mem
