lib/sim/interp.mli: Memory Pom_affine Pom_dsl Pom_polyir
