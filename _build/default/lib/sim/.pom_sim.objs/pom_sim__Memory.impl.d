lib/sim/memory.ml: Array Char Float Hashtbl List Placeholder Pom_dsl Printf String
