lib/sim/memory.mli: Pom_dsl
