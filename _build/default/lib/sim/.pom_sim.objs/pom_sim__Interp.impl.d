lib/sim/interp.ml: Compute Expr Float Func Hashtbl Ir List Lower Memory Placeholder Pom_affine Pom_dsl Pom_poly Pom_polyir Schedule Var
