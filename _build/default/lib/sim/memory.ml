open Pom_dsl

type store = { shape : int list; data : float array }

type t = (string, store) Hashtbl.t

(* Deterministic per-element initial value from an FNV-1a-style mix of name
   and flat index: small magnitudes in [0.5, 1.5) keep long reductions
   well-conditioned, the 16-bit mantissa keeps every value exactly
   representable in binary32, and the recipe is reproduced verbatim by the
   generated C testbench (Emit.testbench) so simulator and compiled-C runs
   see identical inputs. *)
let mask = 0xFFFFFFFF

let init_mix name flat =
  let h = ref 2166136261 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 16777619 land mask)
    name;
  h := (!h + (flat * 2654435761)) land mask;
  h := !h lxor (!h lsr 13);
  h := !h * 2654435761 land mask;
  h := !h lxor (!h lsr 16);
  !h land 0xFFFF

let init_value name flat =
  0.5 +. (float_of_int (init_mix name flat) /. 65536.0)

let alloc init ps =
  let t = Hashtbl.create 16 in
  List.iter
    (fun (p : Placeholder.t) ->
      if not (Hashtbl.mem t p.name) then
        Hashtbl.add t p.name
          {
            shape = p.shape;
            data = Array.init (Placeholder.size p) (init p.name);
          })
    ps;
  t

let create ps = alloc init_value ps

let create_filled v ps = alloc (fun _ _ -> v) ps

let store t name =
  match Hashtbl.find_opt t name with
  | Some s -> s
  | None -> invalid_arg ("Memory: unknown array " ^ name)

let flatten shape idx =
  let rec go acc shape idx =
    match (shape, idx) with
    | [], [] -> acc
    | d :: shape, i :: idx ->
        if i < 0 || i >= d then
          invalid_arg
            (Printf.sprintf "Memory: index %d out of bounds [0, %d)" i d);
        go ((acc * d) + i) shape idx
    | _ -> invalid_arg "Memory: rank mismatch"
  in
  go 0 shape idx

let get t name idx =
  let s = store t name in
  s.data.(flatten s.shape idx)

let set t name idx v =
  let s = store t name in
  s.data.(flatten s.shape idx) <- v

let copy t =
  let t' = Hashtbl.create (Hashtbl.length t) in
  Hashtbl.iter
    (fun name s -> Hashtbl.add t' name { s with data = Array.copy s.data })
    t;
  t'

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t []
  |> List.sort String.compare

let max_diff a b =
  if names a <> names b then invalid_arg "Memory.max_diff: different arrays";
  List.fold_left
    (fun acc name ->
      let sa = store a name and sb = store b name in
      if sa.shape <> sb.shape then
        invalid_arg "Memory.max_diff: shape mismatch";
      let m = ref acc in
      Array.iteri
        (fun i v -> m := Float.max !m (Float.abs (v -. sb.data.(i))))
        sa.data;
      !m)
    0.0 (names a)

let equal ~eps a b = max_diff a b <= eps

let checksums t =
  List.map
    (fun name ->
      let s = store t name in
      (name, Array.fold_left ( +. ) 0.0 s.data))
    (names t)
