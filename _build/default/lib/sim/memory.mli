(** Array storage for the functional simulator: named multi-dimensional
    float arrays with deterministic pseudo-random initialization, so that a
    reference execution and a transformed execution can be compared
    bit-for-bit (modulo floating-point reassociation tolerance). *)

type t

(** Allocate and deterministically initialize the arrays of the given
    placeholders (values depend only on array name and index). *)
val create : Pom_dsl.Placeholder.t list -> t

(** Allocate with every element set to a constant. *)
val create_filled : float -> Pom_dsl.Placeholder.t list -> t

val get : t -> string -> int list -> float

val set : t -> string -> int list -> float -> unit

val copy : t -> t

(** Arrays present, sorted by name. *)
val names : t -> string list

(** Max absolute elementwise difference across all arrays; the two stores
    must have the same arrays and shapes. *)
val max_diff : t -> t -> float

(** [equal ~eps a b] holds when {!max_diff} is at most [eps]. *)
val equal : eps:float -> t -> t -> bool

(** Per-array element sums (for checksum comparison against compiled-C
    runs), sorted by array name. *)
val checksums : t -> (string * float) list
