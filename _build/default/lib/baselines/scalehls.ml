open Pom_dsl
open Pom_polyir
open Pom_hls
open Pom_dse

type result = {
  directives : Schedule.t list;
  prog : Prog.t;
  report : Report.t;
  dse_time_s : float;
  tile_vectors : (string * int list) list;
  evaluations : int;
}

(* Interchange-only transformation stage: fused nests receive a single
   permutation (the first statement that asks for one wins), so the other
   statements may be left with tight dependences. *)
let interchange_stage func =
  let graph = Pom_depgraph.Graph.build func in
  let reorder_of (node : Pom_depgraph.Graph.node) =
    match Pom_depgraph.Hints.suggest node.Pom_depgraph.Graph.fine with
    | Pom_depgraph.Hints.Reorder order -> Some order
    | Pom_depgraph.Hints.Keep | Pom_depgraph.Hints.Skew_hint _
    | Pom_depgraph.Hints.Tight _ ->
        None
  in
  let fused = Butil.fused_computes func in
  let fused_order =
    List.find_map
      (fun n ->
        if List.mem n.Pom_depgraph.Graph.compute.Compute.name fused then
          reorder_of n
        else None)
      (Pom_depgraph.Graph.nodes graph)
  in
  List.concat_map
    (fun (node : Pom_depgraph.Graph.node) ->
      let c = node.Pom_depgraph.Graph.compute in
      let current = Compute.iter_names c in
      let desired =
        if List.mem c.Compute.name fused then fused_order
        else reorder_of node
      in
      match desired with
      | Some order when List.sort compare order = List.sort compare current ->
          Butil.realize_order c.Compute.name current order
      | Some _ | None -> [])
    (Pom_depgraph.Graph.nodes graph)

(* Denser factor ladder than POM's doubling: more trials, longer DSE. *)
let ladder = [ 2; 3; 4; 6; 8; 12; 16; 24; 32; 48; 64 ]

type unit_state = {
  id : int;
  members : (string * string list * int list) list;
  mutable par : int;
  mutable realization : Stage2.realization list;
}

let member_info (s : Stmt_poly.t) =
  let order = Stmt_poly.loop_order s in
  let extents =
    List.map
      (fun dim ->
        match Pom_poly.Basic_set.const_range dim s.Stmt_poly.domain with
        | Some lb, Some ub -> ub - lb + 1
        | _ -> invalid_arg "Scalehls: unbounded loop")
      order
  in
  (Stmt_poly.name s, order, extents)

let realize_unit u =
  u.realization <-
    List.map
      (fun (c, order, extents) -> Stage2.realize c order extents u.par)
      u.members

let evaluate ~device ~latency_mode func base units =
  let hw =
    List.concat_map
      (fun u ->
        List.concat_map (fun r -> r.Stage2.hw_directives) u.realization)
      units
  in
  let prog0 = Butil.schedule func (base @ hw) in
  let parts = Stage2.partition_plan prog0 in
  let prog = List.fold_left Prog.apply prog0 parts in
  let report =
    Report.synthesize ~composition:Resource.Dataflow ~latency_mode ~device prog
  in
  (prog, base @ hw @ parts, report)

(* Per-unit operator usage — the quantity ScaleHLS's per-loop budget check
   sees (global banking overhead is not in it).  Each check re-profiles the
   program, so it counts as a QoR evaluation. *)
let unit_usage ?count prog u =
  (match count with Some c -> incr c | None -> ());
  let profiles = Summary.profile_all prog in
  let mine =
    List.filter (fun p -> p.Summary.group = u.id) profiles
  in
  let partitions = Report.partition_fn prog in
  let eval = Latency.eval_group ~partitions mine in
  Resource.group_usage mine eval

let usage_fits (budget : Resource.usage) (u : Resource.usage) =
  u.Resource.dsp <= budget.Resource.dsp
  && u.Resource.lut <= budget.Resource.lut
  && u.Resource.ff <= budget.Resource.ff

let usage_sub (a : Resource.usage) (b : Resource.usage) =
  {
    Resource.dsp = a.Resource.dsp - b.Resource.dsp;
    lut = a.Resource.lut - b.Resource.lut;
    ff = a.Resource.ff - b.Resource.ff;
    bram = a.Resource.bram - b.Resource.bram;
  }

let run ?(device = Device.xc7z020) ?(dnn = false) func =
  let t0 = Sys.time () in
  let latency_mode = if dnn then `Dataflow else `Sequential in
  let base = interchange_stage func @ Butil.structural_directives func in
  let prog_base = Butil.schedule func base in
  let huge =
    List.exists
      (fun (c : Compute.t) ->
        List.exists (fun (v : Var.t) -> Var.extent v >= 8192) c.Compute.iters)
      (Func.computes func)
  in
  let units =
    let ids =
      List.sort_uniq Int.compare
        (List.map
           (fun (s : Stmt_poly.t) ->
             Pom_poly.Sched.const_at s.Stmt_poly.sched 0)
           prog_base.Prog.stmts)
    in
    List.map
      (fun id ->
        let members =
          List.filter_map
            (fun (s : Stmt_poly.t) ->
              if Pom_poly.Sched.const_at s.Stmt_poly.sched 0 = id then
                Some (member_info s)
              else None)
            prog_base.Prog.stmts
        in
        let u = { id; members; par = 1; realization = [] } in
        realize_unit u;
        u)
      ids
  in
  let evaluations = ref 0 in
  let eval () =
    incr evaluations;
    evaluate ~device ~latency_mode func base units
  in
  let current = ref (eval ()) in
  let budget =
    ref
      {
        Resource.dsp = device.Device.dsp;
        lut = device.Device.lut;
        ff = device.Device.ff;
        bram = Resource.bram18_blocks device;
      }
  in
  if not huge then
    List.iter
      (fun u ->
        (* greedy: push this unit as far as the remaining budget allows *)
        let continue_ = ref true in
        List.iter
          (fun par ->
            if !continue_ then begin
              let saved_par = u.par and saved_real = u.realization in
              u.par <- par;
              realize_unit u;
              let ((trial_prog, _, trial_report) as trial) = eval () in
              let usage = unit_usage ~count:evaluations trial_prog u in
              let _, _, cur_report = !current in
              if
                usage_fits !budget usage
                && trial_report.Report.latency < cur_report.Report.latency
              then current := trial
              else if
                usage_fits !budget usage
                && trial_report.Report.latency = cur_report.Report.latency
              then begin
                (* ladder step changed nothing (factor saturation): back it
                   out but keep climbing *)
                u.par <- saved_par;
                u.realization <- saved_real
              end
              else begin
                u.par <- saved_par;
                u.realization <- saved_real;
                continue_ := false
              end
            end)
          ladder;
        let prog, _, _ = !current in
        budget := usage_sub !budget (unit_usage ~count:evaluations prog u))
      units;
  let prog, directives, report = !current in
  let tile_vectors =
    List.concat_map
      (fun u ->
        List.map2
          (fun (c, _, _) (r : Stage2.realization) -> (c, r.Stage2.tile_vector))
          u.members u.realization)
      units
  in
  {
    directives;
    prog;
    report;
    dse_time_s = Sys.time () -. t0;
    tile_vectors;
    evaluations = !evaluations;
  }
