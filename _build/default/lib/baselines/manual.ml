open Pom_dsl

type result = {
  directives : Schedule.t list;
  prog : Pom_polyir.Prog.t;
  report : Pom_hls.Report.t;
}

let bicg ?(device = Pom_hls.Device.xc7z020) n =
  let func = Pom_workloads.Polybench.bicg n in
  let u = 24 in
  let directives =
    [
      (* distribute: drop the fused nest, keep the two loops sequential *)
      (* interchange the q statement so its reduction moves outward *)
      Schedule.interchange "s_q" "i" "j";
      (* each loop: strip-mine the parallel dimension, pipeline, unroll *)
      Schedule.split "s_s" "j" u "j_o" "j_i";
      Schedule.pipeline "s_s" "j_o" 1;
      Schedule.unroll "s_s" "j_i" u;
      Schedule.split "s_q" "i" u "i_o" "i_i";
      Schedule.pipeline "s_q" "i_o" 1;
      Schedule.unroll "s_q" "i_i" u;
      (* the expert under-partitions the shared matrix (banks are costly),
         accepting II = 2 on each loop *)
      Schedule.partition "A" [ 8; 8 ] Schedule.Cyclic;
      Schedule.partition "s" [ 8 ] Schedule.Cyclic;
      Schedule.partition "q" [ 8 ] Schedule.Cyclic;
    ]
  in
  let prog = Butil.schedule func directives in
  { directives; prog; report = Pom_hls.Report.synthesize ~device prog }
