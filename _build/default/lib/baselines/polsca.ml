open Pom_dsl

type result = {
  directives : Schedule.t list;
  prog : Pom_polyir.Prog.t;
  report : Pom_hls.Report.t;
}

let run ?(device = Pom_hls.Device.xc7z020) func =
  let tiling, orders =
    Butil.locality_tiling ~exclude:(Butil.fused_computes func) func
  in
  let pipelines =
    List.map
      (fun (c : Compute.t) ->
        let name = c.Compute.name in
        let order =
          match List.assoc_opt name orders with
          | Some o when o <> [] -> o
          | _ -> Compute.iter_names c
        in
        Schedule.pipeline name (List.nth order (List.length order - 1)) 1)
      (Func.computes func)
  in
  let directives = tiling @ Butil.structural_directives func @ pipelines in
  let prog = Butil.schedule func directives in
  { directives; prog; report = Pom_hls.Report.synthesize ~device prog }
