open Pom_dsl

type result = {
  directives : Schedule.t list;
  prog : Pom_polyir.Prog.t;
  report : Pom_hls.Report.t;
}

let run ?(device = Pom_hls.Device.xc7z020) func =
  let tiling, _ =
    Butil.locality_tiling ~exclude:(Butil.fused_computes func) func
  in
  let directives = tiling @ Butil.structural_directives func in
  let prog = Butil.schedule func directives in
  { directives; prog; report = Pom_hls.Report.synthesize ~device prog }
