lib/baselines/manual.mli: Pom_dsl Pom_hls Pom_polyir Schedule
