lib/baselines/butil.mli: Func Pom_dsl Pom_polyir Schedule
