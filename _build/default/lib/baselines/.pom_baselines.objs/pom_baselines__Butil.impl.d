lib/baselines/butil.ml: Array Compute Func List Pom_dsl Pom_polyir Schedule String Var
