lib/baselines/polsca.mli: Func Pom_dsl Pom_hls Pom_polyir Schedule
