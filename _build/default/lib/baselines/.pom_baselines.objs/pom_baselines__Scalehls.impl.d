lib/baselines/scalehls.ml: Butil Compute Device Func Int Latency List Pom_depgraph Pom_dse Pom_dsl Pom_hls Pom_poly Pom_polyir Prog Report Resource Schedule Stage2 Stmt_poly Summary Sys Var
