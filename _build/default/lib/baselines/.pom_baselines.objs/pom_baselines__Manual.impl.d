lib/baselines/manual.ml: Butil Pom_dsl Pom_hls Pom_polyir Pom_workloads Schedule
