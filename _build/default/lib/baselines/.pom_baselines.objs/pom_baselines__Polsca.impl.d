lib/baselines/polsca.ml: Butil Compute Func List Pom_dsl Pom_hls Pom_polyir Schedule
