lib/baselines/pluto.ml: Butil Pom_dsl Pom_hls Pom_polyir Schedule
