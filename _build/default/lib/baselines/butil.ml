open Pom_dsl

let realize_order compute current desired =
  let cur = Array.of_list current in
  let swaps = ref [] in
  List.iteri
    (fun i want ->
      if cur.(i) <> want then begin
        let j = ref i in
        Array.iteri (fun k d -> if d = want then j := k) cur;
        swaps := Schedule.interchange compute cur.(i) want :: !swaps;
        let tmp = cur.(i) in
        cur.(i) <- cur.(!j);
        cur.(!j) <- tmp
      end)
    desired;
  List.rev !swaps

let locality_tiling ?(tile = 32) ?(exclude = []) func =
  let per_compute =
    List.map
      (fun (c : Compute.t) ->
        let name = c.Compute.name in
        let tiled =
          if List.mem name exclude then []
          else
            List.filter
              (fun (v : Var.t) -> Var.extent v >= 2 * tile)
              c.Compute.iters
        in
        let splits =
          List.map
            (fun (v : Var.t) ->
              Schedule.split name v.Var.name tile (v.Var.name ^ "_T")
                (v.Var.name ^ "_t"))
            tiled
        in
        (* order after splits: each tiled dim becomes (d_T, d_t) in place *)
        let after_splits =
          List.concat_map
            (fun (v : Var.t) ->
              if List.memq v tiled then [ v.Var.name ^ "_T"; v.Var.name ^ "_t" ]
              else [ v.Var.name ])
            c.Compute.iters
        in
        let desired =
          List.filter_map
            (fun (v : Var.t) ->
              if List.memq v tiled then Some (v.Var.name ^ "_T") else None)
            c.Compute.iters
          @ List.map
              (fun (v : Var.t) ->
                if List.memq v tiled then v.Var.name ^ "_t" else v.Var.name)
              c.Compute.iters
        in
        (splits @ realize_order name after_splits desired, (name, desired)))
      (Func.computes func)
  in
  (List.concat_map fst per_compute, List.map snd per_compute)

let fused_computes func =
  List.sort_uniq String.compare
    (List.concat_map
       (fun d ->
         match (d : Schedule.t) with
         | Schedule.After { compute; anchor; level } when level >= 1 ->
             [ compute; anchor ]
         | Schedule.Fuse { c1; c2; level } when level >= 1 -> [ c1; c2 ]
         | _ -> [])
       (Func.directives func))

let structural_directives func =
  List.filter
    (fun d ->
      match (d : Schedule.t) with
      | Schedule.After { level; _ } | Schedule.Fuse { level; _ } -> level >= 1
      | _ -> false)
    (Func.directives func)

let schedule func directives =
  List.fold_left Pom_polyir.Prog.apply
    (Pom_polyir.Prog.of_func_unscheduled func)
    directives
