open Pom_dsl
open Expr

let f32 = Dtype.p_float32

type conv_spec = {
  label : string;
  in_channels : int;
  out_channels : int;
  spatial : int;
  kernel : int;
}

(* Feature maps carry a one-pixel halo so 3x3 convolutions keep the
   spatial size ("same" padding). *)
let feature_map name channels spatial =
  Placeholder.make name [ channels; spatial + 2; spatial + 2 ] f32

let conv_layer ?(stride = 1) func ~(input : Placeholder.t) spec =
  let out_spatial = spec.spatial / stride in
  let weights =
    Placeholder.make (spec.label ^ "_w")
      [ spec.out_channels; spec.in_channels; spec.kernel; spec.kernel ]
      f32
  in
  let out = feature_map (spec.label ^ "_out") spec.out_channels out_spatial in
  let oc = Var.make "oc" 0 spec.out_channels in
  let oh = Var.make "oh" 0 out_spatial and ow = Var.make "ow" 0 out_spatial in
  let ic = Var.make "ic" 0 spec.in_channels in
  let kh = Var.make "kh" 0 spec.kernel and kw = Var.make "kw" 0 spec.kernel in
  let in_h = (stride *! ix oh) +! ix kh in
  let in_w = (stride *! ix ow) +! ix kw in
  let _ =
    Func.compute func spec.label
      ~iters:[ oc; oh; ow; ic; kh; kw ]
      ~body:
        (access out [ ix oc; ix oh +! ixc 1; ix ow +! ixc 1 ]
        +: (access weights [ ix oc; ix ic; ix kh; ix kw ]
           *: access input [ ix ic; in_h; in_w ]))
      ~dest:(out, [ ix oc; ix oh +! ixc 1; ix ow +! ixc 1 ]) ()
  in
  out

let maxpool func ~label ~(input : Placeholder.t) ~channels ~spatial =
  let out_spatial = spatial / 2 in
  let out = feature_map (label ^ "_out") channels out_spatial in
  let c = Var.make "c" 0 channels in
  let i = Var.make "i" 0 out_spatial and j = Var.make "j" 0 out_spatial in
  let at di dj =
    access input [ ix c; (2 *! ix i) +! ixc (1 + di); (2 *! ix j) +! ixc (1 + dj) ]
  in
  let _ =
    Func.compute func label ~iters:[ c; i; j ]
      ~body:(max_ (max_ (at 0 0) (at 0 1)) (max_ (at 1 0) (at 1 1)))
      ~dest:(out, [ ix c; ix i +! ixc 1; ix j +! ixc 1 ]) ()
  in
  out

let residual_add func ~label ~(a : Placeholder.t) ~(b : Placeholder.t) ~channels
    ~spatial =
  let out = feature_map (label ^ "_out") channels spatial in
  let c = Var.make "c" 0 channels in
  let i = Var.make "i" 0 spatial and j = Var.make "j" 0 spatial in
  let at (p : Placeholder.t) =
    access p [ ix c; ix i +! ixc 1; ix j +! ixc 1 ]
  in
  let _ =
    Func.compute func label ~iters:[ c; i; j ]
      ~body:(at a +: at b)
      ~dest:(out, [ ix c; ix i +! ixc 1; ix j +! ixc 1 ]) ()
  in
  out

(* VGG-16: thirteen 3x3 convolutions in five blocks with max-pooling
   between blocks; spatial resolution scaled to 32. *)
let vgg16 () =
  let f = Func.create "vgg16" in
  let input = feature_map "img" 3 32 in
  let conv n i o s x =
    conv_layer f ~input:x
      { label = Printf.sprintf "conv%d" n; in_channels = i; out_channels = o;
        spatial = s; kernel = 3 }
  in
  let pool n c s x = maxpool f ~label:(Printf.sprintf "pool%d" n) ~input:x ~channels:c ~spatial:s in
  let x = conv 1 3 64 32 input in
  let x = conv 2 64 64 32 x in
  let x = pool 1 64 32 x in
  let x = conv 3 64 128 16 x in
  let x = conv 4 128 128 16 x in
  let x = pool 2 128 16 x in
  let x = conv 5 128 256 8 x in
  let x = conv 6 256 256 8 x in
  let x = conv 7 256 256 8 x in
  let x = pool 3 256 8 x in
  let x = conv 8 256 512 4 x in
  let x = conv 9 512 512 4 x in
  let x = conv 10 512 512 4 x in
  let x = pool 4 512 4 x in
  let x = conv 11 512 512 2 x in
  let x = conv 12 512 512 2 x in
  let x = conv 13 512 512 2 x in
  ignore (pool 5 512 2 x);
  f

(* ResNet-18: initial convolution, four stages of two basic blocks (two
   3x3 convolutions plus a residual add each), with a strided 1x1
   projection at each stage boundary; spatial resolution scaled to 32. *)
let resnet18 () =
  let f = Func.create "resnet18" in
  let input = feature_map "img" 3 32 in
  let counter = ref 0 in
  let conv ?(stride = 1) ?(kernel = 3) i o s x =
    incr counter;
    conv_layer f ~stride ~input:x
      { label = Printf.sprintf "conv%d" !counter; in_channels = i;
        out_channels = o; spatial = s; kernel }
  in
  let block ~stage ~idx channels spatial x =
    let y = conv channels channels spatial x in
    let y = conv channels channels spatial y in
    residual_add f ~label:(Printf.sprintf "res%d_%d" stage idx) ~a:x ~b:y
      ~channels ~spatial
  in
  let x = conv 3 64 32 input in
  let x = block ~stage:1 ~idx:1 64 32 x in
  let x = block ~stage:1 ~idx:2 64 32 x in
  let stage n cin cout spatial x =
    (* strided 1x1 projection, then two basic blocks at the new size *)
    let proj = conv ~stride:2 ~kernel:1 cin cout spatial x in
    let x = block ~stage:n ~idx:1 cout (spatial / 2) proj in
    block ~stage:n ~idx:2 cout (spatial / 2) x
  in
  let x = stage 2 64 128 32 x in
  let x = stage 3 128 256 16 x in
  ignore (stage 4 256 512 8 x);
  f

let critical_loops func =
  List.length
    (List.filter
       (fun (c : Compute.t) -> List.length c.Compute.iters >= 5)
       (Func.computes func))

let by_name = [ ("vgg16", vgg16); ("resnet18", resnet18) ]
