open Pom_dsl
open Expr

let f32 = Dtype.p_float32

let edge_detect ?(channels = 3) n =
  let f = Func.create "edge_detect" in
  let mk () =
    ( Var.make "c" 0 channels,
      Var.make "y" 1 (n - 1),
      Var.make "x" 1 (n - 1) )
  in
  let img = Placeholder.make "I" [ channels; n; n ] f32 in
  let gx = Placeholder.make "Gx" [ channels; n; n ] f32 in
  let gy = Placeholder.make "Gy" [ channels; n; n ] f32 in
  let out = Placeholder.make "Out" [ channels; n; n ] f32 in
  let c, y, x = mk () in
  let _ =
    Func.compute f "s_gx" ~iters:[ c; y; x ]
      ~body:
        (access img [ ix c; ix y; ix x +! ixc 1 ]
        -: access img [ ix c; ix y; ix x -! ixc 1 ])
      ~dest:(gx, [ ix c; ix y; ix x ]) ()
  in
  let c, y, x = mk () in
  let _ =
    Func.compute f "s_gy" ~iters:[ c; y; x ]
      ~body:
        (access img [ ix c; ix y +! ixc 1; ix x ]
        -: access img [ ix c; ix y -! ixc 1; ix x ])
      ~dest:(gy, [ ix c; ix y; ix x ]) ()
  in
  let c, y, x = mk () in
  let _ =
    Func.compute f "s_mag" ~iters:[ c; y; x ]
      ~body:
        (max_ (access gx [ ix c; ix y; ix x ]) (neg (access gx [ ix c; ix y; ix x ]))
        +: max_ (access gy [ ix c; ix y; ix x ]) (neg (access gy [ ix c; ix y; ix x ])))
      ~dest:(out, [ ix c; ix y; ix x ]) ()
  in
  f

let gaussian ?(channels = 3) n =
  let f = Func.create "gaussian" in
  let c = Var.make "c" 0 channels in
  let y = Var.make "y" 1 (n - 1) and x = Var.make "x" 1 (n - 1) in
  let img = Placeholder.make "I" [ channels; n; n ] f32 in
  let out = Placeholder.make "Out" [ channels; n; n ] f32 in
  let at w dy dx =
    fconst w *: access img [ ix c; ix y +! ixc dy; ix x +! ixc dx ]
  in
  let body =
    at 0.0625 (-1) (-1) +: at 0.125 (-1) 0 +: at 0.0625 (-1) 1
    +: at 0.125 0 (-1) +: at 0.25 0 0 +: at 0.125 0 1
    +: at 0.0625 1 (-1) +: at 0.125 1 0 +: at 0.0625 1 1
  in
  let _ =
    Func.compute f "s_gauss" ~iters:[ c; y; x ] ~body
      ~dest:(out, [ ix c; ix y; ix x ]) ()
  in
  f

let blur ?(channels = 3) n =
  let f = Func.create "blur" in
  let img = Placeholder.make "I" [ channels; n; n ] f32 in
  let bx = Placeholder.make "Bx" [ channels; n; n ] f32 in
  let out = Placeholder.make "Out" [ channels; n; n ] f32 in
  let c = Var.make "c" 0 channels in
  let y = Var.make "y" 0 n and x = Var.make "x" 0 (n - 2) in
  let _ =
    Func.compute f "s_bx" ~iters:[ c; y; x ]
      ~body:
        (fconst 0.33333
        *: (access img [ ix c; ix y; ix x ]
           +: access img [ ix c; ix y; ix x +! ixc 1 ]
           +: access img [ ix c; ix y; ix x +! ixc 2 ]))
      ~dest:(bx, [ ix c; ix y; ix x ]) ()
  in
  let c = Var.make "c" 0 channels in
  let y = Var.make "y" 0 (n - 2) and x = Var.make "x" 0 (n - 2) in
  let _ =
    Func.compute f "s_by" ~iters:[ c; y; x ]
      ~body:
        (fconst 0.33333
        *: (access bx [ ix c; ix y; ix x ]
           +: access bx [ ix c; ix y +! ixc 1; ix x ]
           +: access bx [ ix c; ix y +! ixc 2; ix x ]))
      ~dest:(out, [ ix c; ix y; ix x ]) ()
  in
  f

let by_name =
  [
    ("edge-detect", fun n -> edge_detect n);
    ("gaussian", fun n -> gaussian n);
    ("blur", fun n -> blur n);
  ]
