open Pom_dsl
open Expr

let f32 = Dtype.p_float32

let gemm_typed dt n =
  let f = Func.create "gemm" in
  let i = Var.make "i" 0 n and j = Var.make "j" 0 n and k = Var.make "k" 0 n in
  let d = Placeholder.make "D" [ n; n ] dt in
  let a = Placeholder.make "A" [ n; n ] dt in
  let b = Placeholder.make "B" [ n; n ] dt in
  let _ =
    Func.compute f "s" ~iters:[ i; j; k ]
      ~body:(access d [ ix i; ix j ] +: (access a [ ix i; ix k ] *: access b [ ix k; ix j ]))
      ~dest:(d, [ ix i; ix j ]) ()
  in
  f

let gemm n = gemm_typed f32 n

let atax n =
  let f = Func.create "atax" in
  let a = Placeholder.make "A" [ n; n ] f32 in
  let x = Placeholder.make "x" [ n ] f32 in
  let y = Placeholder.make "y" [ n ] f32 in
  let tmp = Placeholder.make "tmp" [ n ] f32 in
  let i = Var.make "i" 0 n and j = Var.make "j" 0 n in
  let _ =
    Func.compute f "s_tmp" ~iters:[ i; j ]
      ~body:(access tmp [ ix i ] +: (access a [ ix i; ix j ] *: access x [ ix j ]))
      ~dest:(tmp, [ ix i ]) ()
  in
  let i = Var.make "i" 0 n and j = Var.make "j" 0 n in
  let _ =
    Func.compute f "s_y" ~iters:[ i; j ]
      ~body:(access y [ ix j ] +: (access a [ ix i; ix j ] *: access tmp [ ix i ]))
      ~dest:(y, [ ix j ]) ()
  in
  f

let mvt n =
  let f = Func.create "mvt" in
  let a = Placeholder.make "A" [ n; n ] f32 in
  let x1 = Placeholder.make "x1" [ n ] f32 in
  let x2 = Placeholder.make "x2" [ n ] f32 in
  let y1 = Placeholder.make "y1" [ n ] f32 in
  let y2 = Placeholder.make "y2" [ n ] f32 in
  let i = Var.make "i" 0 n and j = Var.make "j" 0 n in
  let _ =
    Func.compute f "s_x1" ~iters:[ i; j ]
      ~body:(access x1 [ ix i ] +: (access a [ ix i; ix j ] *: access y1 [ ix j ]))
      ~dest:(x1, [ ix i ]) ()
  in
  let i = Var.make "i" 0 n and j = Var.make "j" 0 n in
  let _ =
    Func.compute f "s_x2" ~iters:[ i; j ]
      ~body:(access x2 [ ix i ] +: (access a [ ix j; ix i ] *: access y2 [ ix j ]))
      ~dest:(x2, [ ix i ]) ()
  in
  Func.schedule f (Schedule.fuse "s_x1" "s_x2" ~level:2);
  f

let syrk n =
  let f = Func.create "syrk" in
  let c = Placeholder.make "C" [ n; n ] f32 in
  let a = Placeholder.make "A" [ n; n ] f32 in
  let i = Var.make "i" 0 n and j = Var.make "j" 0 n and k = Var.make "k" 0 n in
  let _ =
    Func.compute f "s" ~iters:[ i; j; k ]
      ~body:(access c [ ix i; ix j ] +: (access a [ ix i; ix k ] *: access a [ ix j; ix k ]))
      ~dest:(c, [ ix i; ix j ]) ()
  in
  f

let trmm n =
  (* triangular update: B(i,j) += A(k,i) * B(k,j) for k > i *)
  let f = Func.create "trmm" in
  let a = Placeholder.make "A" [ n; n ] f32 in
  let b = Placeholder.make "B" [ n; n ] f32 in
  let i = Var.make "i" 0 n and j = Var.make "j" 0 n and k = Var.make "k" 0 n in
  let _ =
    Func.compute f "s" ~iters:[ i; j; k ]
      ~where:[ Cgt (ix k, ix i) ]
      ~body:(access b [ ix i; ix j ] +: (access a [ ix k; ix i ] *: access b [ ix k; ix j ]))
      ~dest:(b, [ ix i; ix j ]) ()
  in
  f

let doitgen ?(np = 32) n =
  let f = Func.create "doitgen" in
  let a = Placeholder.make "A" [ n; n; np ] f32 in
  let c4 = Placeholder.make "C4" [ np; np ] f32 in
  let sum = Placeholder.make "sum" [ n; n; np ] f32 in
  let r = Var.make "r" 0 n and q = Var.make "q" 0 n in
  let p = Var.make "p" 0 np and s = Var.make "s" 0 np in
  let _ =
    Func.compute f "s_sum" ~iters:[ r; q; p; s ]
      ~body:
        (access sum [ ix r; ix q; ix p ]
        +: (access a [ ix r; ix q; ix s ] *: access c4 [ ix s; ix p ]))
      ~dest:(sum, [ ix r; ix q; ix p ]) ()
  in
  let r = Var.make "r" 0 n and q = Var.make "q" 0 n and p = Var.make "p" 0 np in
  let _ =
    Func.compute f "s_copy" ~iters:[ r; q; p ]
      ~body:(access sum [ ix r; ix q; ix p ])
      ~dest:(a, [ ix r; ix q; ix p ]) ()
  in
  f

let bicg n =
  let f = Func.create "bicg" in
  let i = Var.make "i" 0 n and j = Var.make "j" 0 n in
  let a = Placeholder.make "A" [ n; n ] f32 in
  let s = Placeholder.make "s" [ n ] f32 in
  let q = Placeholder.make "q" [ n ] f32 in
  let p = Placeholder.make "p" [ n ] f32 in
  let r = Placeholder.make "r" [ n ] f32 in
  let _ =
    Func.compute f "s_s" ~iters:[ i; j ]
      ~body:(access s [ ix j ] +: (access r [ ix i ] *: access a [ ix i; ix j ]))
      ~dest:(s, [ ix j ]) ()
  in
  let _ =
    Func.compute f "s_q" ~iters:[ i; j ]
      ~body:(access q [ ix i ] +: (access a [ ix i; ix j ] *: access p [ ix j ]))
      ~dest:(q, [ ix i ]) ()
  in
  Func.schedule f (Schedule.fuse "s_s" "s_q" ~level:2);
  f

let gesummv n =
  let f = Func.create "gesummv" in
  let i = Var.make "i" 0 n and j = Var.make "j" 0 n in
  let i2 = Var.make "i" 0 n in
  let a = Placeholder.make "A" [ n; n ] f32 in
  let b = Placeholder.make "B" [ n; n ] f32 in
  let x = Placeholder.make "x" [ n ] f32 in
  let tmp = Placeholder.make "tmp" [ n ] f32 in
  let y = Placeholder.make "y" [ n ] f32 in
  let _ =
    Func.compute f "s_tmp" ~iters:[ i; j ]
      ~body:(access tmp [ ix i ] +: (access a [ ix i; ix j ] *: access x [ ix j ]))
      ~dest:(tmp, [ ix i ]) ()
  in
  let _ =
    Func.compute f "s_y" ~iters:[ i; j ]
      ~body:(access y [ ix i ] +: (access b [ ix i; ix j ] *: access x [ ix j ]))
      ~dest:(y, [ ix i ]) ()
  in
  let _ =
    Func.compute f "s_sum" ~iters:[ i2 ]
      ~body:((fconst 1.5 *: access tmp [ ix i2 ]) +: (fconst 1.2 *: access y [ ix i2 ]))
      ~dest:(y, [ ix i2 ]) ()
  in
  Func.schedule f (Schedule.fuse "s_tmp" "s_y" ~level:2);
  f

let matmul f name dst lhs rhs i j k =
  ignore
    (Func.compute f name ~iters:[ i; j; k ]
       ~body:
         (access dst [ ix i; ix j ]
         +: (access lhs [ ix i; ix k ] *: access rhs [ ix k; ix j ]))
       ~dest:(dst, [ ix i; ix j ]) ())

let mm2 n =
  let f = Func.create "mm2" in
  let mk s = Var.make s 0 n in
  let a = Placeholder.make "A" [ n; n ] f32 in
  let b = Placeholder.make "B" [ n; n ] f32 in
  let c = Placeholder.make "C" [ n; n ] f32 in
  let tmp = Placeholder.make "tmp" [ n; n ] f32 in
  let d = Placeholder.make "Dm" [ n; n ] f32 in
  matmul f "mm_tmp" tmp a b (mk "i") (mk "j") (mk "k");
  matmul f "mm_d" d tmp c (mk "i") (mk "j") (mk "k");
  f

let mm3 n =
  let f = Func.create "mm3" in
  let mk s = Var.make s 0 n in
  let a = Placeholder.make "A" [ n; n ] f32 in
  let b = Placeholder.make "B" [ n; n ] f32 in
  let c = Placeholder.make "C" [ n; n ] f32 in
  let d = Placeholder.make "Dm" [ n; n ] f32 in
  let e = Placeholder.make "E" [ n; n ] f32 in
  let ff = Placeholder.make "F" [ n; n ] f32 in
  let g = Placeholder.make "G" [ n; n ] f32 in
  matmul f "mm_e" e a b (mk "i") (mk "j") (mk "k");
  matmul f "mm_f" ff c d (mk "i") (mk "j") (mk "k");
  matmul f "mm_g" g e ff (mk "i") (mk "j") (mk "k");
  f

let stencil_pair fname ~tsteps ~lo ~hi body_of a b =
  let f = Func.create fname in
  let t = Var.make "t" 0 tsteps and i = Var.make "i" lo hi in
  let _ =
    Func.compute f "s0" ~iters:[ t; i ] ~body:(body_of a i) ~dest:(b, [ ix i ]) ()
  in
  let _ =
    Func.compute f "s1" ~iters:[ t; i ] ~body:(body_of b i) ~dest:(a, [ ix i ]) ()
  in
  Func.schedule f (Schedule.after "s1" ~anchor:"s0" ~level:1);
  f

let jacobi1d ?(tsteps = 100) n =
  let a = Placeholder.make "A" [ n ] f32 in
  let b = Placeholder.make "B" [ n ] f32 in
  let body arr (i : Var.t) =
    fconst 0.33333
    *: (access arr [ ix i -! ixc 1 ] +: access arr [ ix i ] +: access arr [ ix i +! ixc 1 ])
  in
  stencil_pair "jacobi1d" ~tsteps ~lo:1 ~hi:(n - 1) body a b

let heat1d ?(tsteps = 100) n =
  let a = Placeholder.make "A" [ n ] f32 in
  let b = Placeholder.make "B" [ n ] f32 in
  let body arr (i : Var.t) =
    access arr [ ix i ]
    +: (fconst 0.125
       *: (access arr [ ix i +! ixc 1 ]
          -: (fconst 2.0 *: access arr [ ix i ])
          +: access arr [ ix i -! ixc 1 ]))
  in
  stencil_pair "heat1d" ~tsteps ~lo:1 ~hi:(n - 1) body a b

let jacobi2d ?(tsteps = 50) n =
  let f = Func.create "jacobi2d" in
  let t = Var.make "t" 0 tsteps in
  let i = Var.make "i" 1 (n - 1) and j = Var.make "j" 1 (n - 1) in
  let a = Placeholder.make "A" [ n; n ] f32 in
  let b = Placeholder.make "B" [ n; n ] f32 in
  let five arr =
    fconst 0.2
    *: (access arr [ ix i; ix j ]
       +: access arr [ ix i; ix j -! ixc 1 ]
       +: access arr [ ix i; ix j +! ixc 1 ]
       +: access arr [ ix i -! ixc 1; ix j ]
       +: access arr [ ix i +! ixc 1; ix j ])
  in
  let _ =
    Func.compute f "s0" ~iters:[ t; i; j ] ~body:(five a) ~dest:(b, [ ix i; ix j ]) ()
  in
  let _ =
    Func.compute f "s1" ~iters:[ t; i; j ] ~body:(five b) ~dest:(a, [ ix i; ix j ]) ()
  in
  Func.schedule f (Schedule.after "s1" ~anchor:"s0" ~level:1);
  f

let seidel ?(tsteps = 20) n =
  let f = Func.create "seidel" in
  let t = Var.make "t" 0 tsteps in
  let i = Var.make "i" 1 (n - 1) and j = Var.make "j" 1 (n - 1) in
  let a = Placeholder.make "A" [ n; n ] f32 in
  let at di dj =
    access a [ ix i +! ixc di; ix j +! ixc dj ]
  in
  let sum =
    at (-1) (-1) +: at (-1) 0 +: at (-1) 1 +: at 0 (-1) +: at 0 0 +: at 0 1
    +: at 1 (-1) +: at 1 0 +: at 1 1
  in
  let _ =
    Func.compute f "s" ~iters:[ t; i; j ]
      ~body:(sum /: fconst 9.0)
      ~dest:(a, [ ix i; ix j ]) ()
  in
  f

let by_name =
  [
    ("gemm", gemm);
    ("bicg", bicg);
    ("gesummv", gesummv);
    ("2mm", mm2);
    ("3mm", mm3);
    ("atax", atax);
    ("mvt", mvt);
    ("syrk", syrk);
    ("trmm", trmm);
    ("doitgen", fun n -> doitgen n);
    ("jacobi-1d", fun n -> jacobi1d n);
    ("jacobi-2d", fun n -> jacobi2d n);
    ("heat-1d", fun n -> heat1d n);
    ("seidel", fun n -> seidel n);
  ]
