(** The image-processing applications of Table V / Table VI: EdgeDetect,
    Gaussian, and Blur, over [channels x n x n] images. *)

open Pom_dsl

(** Horizontal+vertical gradient and magnitude (three chained computes). *)
val edge_detect : ?channels:int -> int -> Func.t

(** 3x3 Gaussian convolution with fixed weights (single compute). *)
val gaussian : ?channels:int -> int -> Func.t

(** Separable two-stage box blur (two chained computes). *)
val blur : ?channels:int -> int -> Func.t

val by_name : (string * (int -> Func.t)) list
