lib/workloads/image.ml: Dtype Expr Func Placeholder Pom_dsl Var
