lib/workloads/dnn.mli: Func Placeholder Pom_dsl
