lib/workloads/image.mli: Func Pom_dsl
