lib/workloads/dnn.ml: Compute Dtype Expr Func List Placeholder Pom_dsl Printf Var
