lib/workloads/polybench.ml: Dtype Expr Func Placeholder Pom_dsl Schedule Var
