lib/workloads/polybench.mli: Dtype Func Pom_dsl
