(** The PolyBench kernels of the paper's evaluation (Sections VII-B and
    VII-F), written in the POM DSL.  Initialization loops are omitted, as
    in the paper's own listings (Fig. 4).

    Linear-algebra kernels take the problem size [n] (the paper evaluates
    32..8192); stencils take the spatial size and optionally the number of
    time steps. *)

open Pom_dsl

(** [D(i,j) += A(i,k) * B(k,j)] — a tight reduction on the innermost
    loop. *)
val gemm : int -> Func.t

(** GEMM with a custom element type (the Table I data-type customization
    feature; the QoR model prices each type differently). *)
val gemm_typed : Dtype.t -> int -> Func.t

(** [y = A^T (A x)] — two dependent matrix-vector products. *)
val atax : int -> Func.t

(** [x1 += A y1; x2 += A^T y2] — two independent fused products. *)
val mvt : int -> Func.t

(** [C = C + A A^T] over the full square (rank-k update). *)
val syrk : int -> Func.t

(** In-place triangular matrix multiply (non-rectangular domain). *)
val trmm : int -> Func.t

(** [sum(r,q,p) += A(r,q,s) * C4(s,p)] — the PolyBench 3-D kernel. *)
val doitgen : ?np:int -> int -> Func.t

(** Two statements fused in one (i,j) nest with conflicting dependence
    requirements — the paper's motivating example (Fig. 2). *)
val bicg : int -> Func.t

(** [tmp = A*x; y = B*x; y = alpha*tmp + beta*y] — two fused
    matrix-vector products and an epilogue. *)
val gesummv : int -> Func.t

(** Two chained matrix multiplies. *)
val mm2 : int -> Func.t

(** Three matrix multiplies in two parallel paths joined at the end. *)
val mm3 : int -> Func.t

(** Ping-pong three-point stencil: two computes alternating inside the
    shared time loop. *)
val jacobi1d : ?tsteps:int -> int -> Func.t

(** Ping-pong five-point 2-D stencil. *)
val jacobi2d : ?tsteps:int -> int -> Func.t

(** Ping-pong heat-equation stencil. *)
val heat1d : ?tsteps:int -> int -> Func.t

(** In-place Gauss–Seidel nine-point 2-D stencil — the tight-dependence
    workload that defeats interchange and requires skewing. *)
val seidel : ?tsteps:int -> int -> Func.t

(** All kernels by name (for the CLI): name -> constructor from size. *)
val by_name : (string * (int -> Func.t)) list
