(** DNN workloads of Table V / Fig. 13: VGG-16 and ResNet-18 expressed as
    chains of convolution loop nests (the "critical loops" — nests deeper
    than four levels), max-pooling, and residual-addition computes.

    The layer-shape tables follow the published architectures with the
    spatial resolution scaled to fit an embedded-class accelerator, which
    preserves the property the experiment measures: many deep loop nests
    competing for one device's resources. *)

open Pom_dsl

type conv_spec = {
  label : string;
  in_channels : int;
  out_channels : int;
  spatial : int;  (** input height = width *)
  kernel : int;
}

(** One convolution compute appended to a function; returns the output
    placeholder.  [stride] downsamples spatially (projection shortcuts). *)
val conv_layer :
  ?stride:int -> Func.t -> input:Placeholder.t -> conv_spec -> Placeholder.t

val vgg16 : unit -> Func.t

val resnet18 : unit -> Func.t

(** Number of critical loops (nests deeper than four levels) in a
    function. *)
val critical_loops : Func.t -> int

val by_name : (string * (unit -> Func.t)) list
