(* A tour of the features beyond the quickstart: non-rectangular iteration
   domains (`where` clauses), custom data types, the loop-reversal
   extension, the polyhedral legality checker, MLIR emission, and the
   compilable C testbench.

   Run with: dune exec examples/advanced_features.exe *)

open Pom.Dsl

let () =
  (* -- a triangular kernel: trmm updates B(i,j) from rows k > i -------- *)
  let n = 16 in
  let f = Func.create "trmm" in
  let a = Placeholder.make "A" [ n; n ] Dtype.p_float32 in
  let b = Placeholder.make "B" [ n; n ] Dtype.p_float32 in
  let i = Var.make "i" 0 n and j = Var.make "j" 0 n and k = Var.make "k" 0 n in
  let open Expr in
  ignore
    (Func.compute f "s" ~iters:[ i; j; k ]
       ~where:[ Cgt (ix k, ix i) ] (* triangular: k > i *)
       ~body:
         (access b [ ix i; ix j ]
         +: (access a [ ix k; ix i ] *: access b [ ix k; ix j ]))
       ~dest:(b, [ ix i; ix j ]) ());

  let c = Pom.compile ~framework:`Pom_auto f in
  Format.printf "triangular trmm: %a@.  speedup %.1fx, divergence %g@.@."
    Pom.Hls.Report.pp c.Pom.report (Pom.speedup c) (Pom.validate f c);

  (* -- the legality checker accepts the DSE plan and rejects a bad one - *)
  (match Pom.check_legality f c with
  | [] -> print_endline "DSE schedule: all dependences preserved"
  | vs ->
      List.iter (Format.printf "%a@." Pom.Polyir.Legality.pp_violation) vs);
  let bad = Func.create "trmm_bad" in
  let i = Var.make "i" 0 n and j = Var.make "j" 0 n and k = Var.make "k" 0 n in
  ignore
    (Func.compute bad "s" ~iters:[ i; j; k ]
       ~where:[ Cgt (ix k, ix i) ]
       ~body:
         (access b [ ix i; ix j ]
         +: (access a [ ix k; ix i ] *: access b [ ix k; ix j ]))
       ~dest:(b, [ ix i; ix j ]) ());
  (* reversing i flips the triangular producer/consumer order *)
  Func.schedule bad (Schedule.reverse "s" "i" "ir");
  let cbad = Pom.compile ~framework:`Pom_manual bad in
  (match Pom.check_legality bad cbad with
  | [] -> print_endline "unexpected: reversal accepted"
  | v :: _ ->
      Format.printf "illegal reversal caught: %a@.@."
        Pom.Polyir.Legality.pp_violation v);

  (* -- data-type customization: the same GEMM at int8 ------------------ *)
  let gi8 = Pom.Workloads.Polybench.gemm_typed Dtype.p_int8 256 in
  let ci8 = Pom.compile ~framework:`Pom_auto gi8 in
  Format.printf "int8 GEMM: %a@.  (all-LUT MACs: zero DSP blocks)@.@."
    Pom.Hls.Report.pp ci8.Pom.report;

  (* -- the MLIR affine-dialect artifact (Fig. 9 (d)) ------------------- *)
  let tiny = Pom.Workloads.Polybench.gemm 8 in
  let ct = Pom.compile ~framework:`Pom_auto tiny in
  print_endline "annotated affine dialect as MLIR:";
  print_string (Pom.mlir ct);

  (* -- the compilable C testbench -------------------------------------- *)
  print_endline "\nC testbench head (compile with `cc tb.c -lm`):";
  let tb =
    Pom.Emit.Emit.testbench
      (Pom.Affine.Passes.simplify (Pom.Affine.Lower.lower ct.Pom.prog))
  in
  String.split_on_char '\n' tb
  |> List.filteri (fun k _ -> k < 12)
  |> List.iter print_endline
