/* BICG: two statements fused in one nest, the paper's motivating example. */
void bicg(float A[256][256], float s[256], float q[256], float p[256], float r[256]) {
  for (int i = 0; i < 256; i++) {
    for (int j = 0; j < 256; j++) {
      s[j] = s[j] + r[i] * A[i][j];
      q[i] = q[i] + A[i][j] * p[j];
    }
  }
}
