// PolyBench GEMM in the HLS C subset the front-end accepts.
void gemm(float D[256][256], float A[256][256], float B[256][256]) {
  for (int i = 0; i < 256; i++)
    for (int j = 0; j < 256; j++)
      for (int k = 0; k < 256; k++)
        D[i][j] += A[i][k] * B[k][j];
}
