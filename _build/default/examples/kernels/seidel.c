// In-place Gauss-Seidel sweep: tight dependences that need loop skewing.
void seidel(float A[66][66]) {
  for (int t = 0; t < 8; t++)
    for (int i = 1; i <= 64; i++)
      for (int j = 1; j <= 64; j++)
        A[i][j] = (A[i-1][j-1] + A[i-1][j] + A[i-1][j+1]
                 + A[i][j-1] + A[i][j] + A[i][j+1]
                 + A[i+1][j-1] + A[i+1][j] + A[i+1][j+1]) / 9.0f;
}
