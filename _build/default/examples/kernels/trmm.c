// Triangular matrix multiply: a non-rectangular (where-clause) domain.
void trmm(float B[64][64], float A[64][64]) {
  for (int i = 0; i < 64; i++)
    for (int j = 0; j < 64; j++)
      for (int k = i + 1; k < 64; k++)
        B[i][j] += A[k][i] * B[k][j];
}
