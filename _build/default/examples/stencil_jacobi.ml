(* The Fig. 16 case study: Jacobi-1d described with the POM DSL.

   The ping-pong stencil is two computes alternating inside a shared time
   loop (expressed with the `after` primitive).  Users with FPGA expertise
   can schedule it by hand; everyone else calls auto-DSE, which finds an
   equivalent design.  The in-place Gauss-Seidel variant additionally
   demonstrates the skewing transformation on a tight dependence.

   Run with: dune exec examples/stencil_jacobi.exe *)

open Pom.Dsl

let jacobi n tsteps =
  let f = Func.create "jacobi1d" in
  let t = Var.make "t" 0 tsteps and i = Var.make "i" 1 (n - 1) in
  let a = Placeholder.make "A" [ n ] Dtype.p_float32 in
  let b = Placeholder.make "B" [ n ] Dtype.p_float32 in
  let open Expr in
  let stencil src (i : Var.t) =
    fconst 0.33333
    *: (access src [ ix i -! ixc 1 ] +: access src [ ix i ]
       +: access src [ ix i +! ixc 1 ])
  in
  let _s0 =
    Func.compute f "s0" ~iters:[ t; i ] ~body:(stencil a i) ~dest:(b, [ ix i ]) ()
  in
  let _s1 =
    Func.compute f "s1" ~iters:[ t; i ] ~body:(stencil b i) ~dest:(a, [ ix i ]) ()
  in
  (* s1 executes after s0 inside each time step (Fig. 16 (2)). *)
  Func.schedule f (Schedule.after "s1" ~anchor:"s0" ~level:1);
  f

let () =
  let n = 256 and tsteps = 16 in

  (* -- expert path: explicit primitives (Fig. 16 (3)) ----------------- *)
  let f = jacobi n tsteps in
  List.iter (Func.schedule f)
    [
      Schedule.split "s0" "i" 16 "i_o" "i_i";
      Schedule.pipeline "s0" "i_o" 1;
      Schedule.unroll "s0" "i_i" 16;
      Schedule.split "s1" "i" 16 "i_o" "i_i";
      Schedule.pipeline "s1" "i_o" 1;
      Schedule.unroll "s1" "i_i" 16;
      Schedule.partition "A" [ 16 ] Schedule.Cyclic;
      Schedule.partition "B" [ 16 ] Schedule.Cyclic;
    ];
  let manual = Pom.compile ~framework:`Pom_manual f in
  Format.printf "manual:   %a@." Pom.Hls.Report.pp manual.Pom.report;
  Format.printf "          speedup %.1fx, divergence %g@.@."
    (Pom.speedup manual)
    (Pom.validate f manual);

  (* -- novice path: auto-DSE (Fig. 16 (4)) ---------------------------- *)
  let g = jacobi n tsteps in
  let auto = Pom.compile ~framework:`Pom_auto g in
  Format.printf "auto-DSE: %a@." Pom.Hls.Report.pp auto.Pom.report;
  Format.printf "          speedup %.1fx, divergence %g@.@."
    (Pom.speedup auto)
    (Pom.validate g auto);

  (* -- tight dependence: Gauss-Seidel needs skewing ------------------- *)
  let seidel = Pom.Workloads.Polybench.seidel ~tsteps:4 34 in
  let s = Pom.compile ~framework:`Pom_auto seidel in
  Format.printf "seidel:   %a@." Pom.Hls.Report.pp s.Pom.report;
  Format.printf "          speedup %.1fx, divergence %g@."
    (Pom.speedup s)
    (Pom.validate seidel s);
  (* show the skewed loop nest POM generated *)
  print_newline ();
  print_string s.Pom.hls_c
