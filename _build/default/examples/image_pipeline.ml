(* A multi-stage image pipeline: separable blur feeding edge detection —
   the producer/consumer graph the dependence-graph IR is built for.  The
   example prints the coarse-grained dependence graph and its data paths
   (Fig. 8), then compiles the pipeline with POM and with the ScaleHLS
   baseline for comparison (Table V's image-processing rows, in miniature).

   Run with: dune exec examples/image_pipeline.exe *)

open Pom.Dsl

let pipeline n =
  let f = Func.create "image_pipeline" in
  let channels = 3 in
  let img = Placeholder.make "I" [ channels; n; n ] Dtype.p_float32 in
  let bx = Placeholder.make "Bx" [ channels; n; n ] Dtype.p_float32 in
  let blurred = Placeholder.make "Bl" [ channels; n; n ] Dtype.p_float32 in
  let out = Placeholder.make "Out" [ channels; n; n ] Dtype.p_float32 in
  let open Expr in
  let c = Var.make "c" 0 channels in
  let y = Var.make "y" 0 n and x = Var.make "x" 0 (n - 2) in
  let _ =
    Func.compute f "blur_x" ~iters:[ c; y; x ]
      ~body:
        (fconst 0.33333
        *: (access img [ ix c; ix y; ix x ]
           +: access img [ ix c; ix y; ix x +! ixc 1 ]
           +: access img [ ix c; ix y; ix x +! ixc 2 ]))
      ~dest:(bx, [ ix c; ix y; ix x ]) ()
  in
  let c = Var.make "c" 0 channels in
  let y = Var.make "y" 0 (n - 2) and x = Var.make "x" 0 (n - 2) in
  let _ =
    Func.compute f "blur_y" ~iters:[ c; y; x ]
      ~body:
        (fconst 0.33333
        *: (access bx [ ix c; ix y; ix x ]
           +: access bx [ ix c; ix y +! ixc 1; ix x ]
           +: access bx [ ix c; ix y +! ixc 2; ix x ]))
      ~dest:(blurred, [ ix c; ix y; ix x ]) ()
  in
  let c = Var.make "c" 0 channels in
  let y = Var.make "y" 1 (n - 3) and x = Var.make "x" 1 (n - 3) in
  let _ =
    Func.compute f "grad" ~iters:[ c; y; x ]
      ~body:
        (max_
           (access blurred [ ix c; ix y; ix x +! ixc 1 ]
           -: access blurred [ ix c; ix y; ix x -! ixc 1 ])
           (access blurred [ ix c; ix y +! ixc 1; ix x ]
           -: access blurred [ ix c; ix y -! ixc 1; ix x ]))
      ~dest:(out, [ ix c; ix y; ix x ]) ()
  in
  f

let () =
  let f = pipeline 512 in

  (* the dependence graph IR: nodes, edges, DFS data paths *)
  let graph = Pom.Depgraph.Graph.build f in
  Format.printf "dependence graph:@.%a@." Pom.Depgraph.Graph.pp graph;
  List.iter
    (fun path -> Format.printf "data path: %s@." (String.concat " -> " path))
    (Pom.Depgraph.Graph.data_paths graph);
  print_newline ();

  let pom = Pom.compile ~framework:`Pom_auto f in
  let shls = Pom.compile ~framework:`Scalehls (pipeline 512) in
  Format.printf "POM:      %a@.          speedup %.1fx@." Pom.Hls.Report.pp
    pom.Pom.report (Pom.speedup pom);
  Format.printf "ScaleHLS: %a@.          speedup %.1fx@." Pom.Hls.Report.pp
    shls.Pom.report (Pom.speedup shls);

  (* correctness of the whole multi-stage schedule on a small image *)
  let small = pipeline 24 in
  let csmall = Pom.compile ~framework:`Pom_auto small in
  Format.printf "divergence on 24x24 image: %g@." (Pom.validate small csmall)
