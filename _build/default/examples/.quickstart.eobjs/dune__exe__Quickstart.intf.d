examples/quickstart.mli:
