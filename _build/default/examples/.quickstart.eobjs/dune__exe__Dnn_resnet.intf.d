examples/dnn_resnet.mli:
