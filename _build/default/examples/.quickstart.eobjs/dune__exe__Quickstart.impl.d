examples/quickstart.ml: Dtype Expr Format Func Placeholder Pom Schedule Var
