examples/stencil_jacobi.ml: Dtype Expr Format Func List Placeholder Pom Schedule Var
