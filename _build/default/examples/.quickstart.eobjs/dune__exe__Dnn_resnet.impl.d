examples/dnn_resnet.ml: Format List Pom
