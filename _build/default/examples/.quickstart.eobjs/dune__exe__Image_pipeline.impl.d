examples/image_pipeline.ml: Dtype Expr Format Func List Placeholder Pom String Var
