examples/advanced_features.ml: Dtype Expr Format Func List Placeholder Pom Schedule String Var
