(* ResNet-18 on one embedded FPGA: the Fig. 13 experiment in miniature.

   POM executes DNN layers sequentially and reuses operators between
   layers, so every layer sees the whole device; ScaleHLS composes layers
   as a dataflow pipeline without sharing, so each layer gets a slice and
   the design can exceed the device (the infeasible Table V entries).

   Run with: dune exec examples/dnn_resnet.exe *)

let () =
  let device = Pom.Hls.Device.xc7z020 in
  let func = Pom.Workloads.Dnn.resnet18 () in
  Format.printf "ResNet-18: %d computes, %d critical loops (> 4 levels)@."
    (List.length (Pom.Dsl.Func.computes func))
    (Pom.Workloads.Dnn.critical_loops func);

  let pom = Pom.compile ~device ~framework:`Pom_auto ~dnn:true func in
  Format.printf "@.POM (sequential, resource reuse):@.  %a@.  speedup %.1fx@."
    Pom.Hls.Report.pp pom.Pom.report (Pom.speedup pom);

  let shls =
    Pom.compile ~device ~framework:`Scalehls ~dnn:true
      (Pom.Workloads.Dnn.resnet18 ())
  in
  Format.printf "@.ScaleHLS (dataflow, no reuse):@.  %a@.  speedup %.1fx@."
    Pom.Hls.Report.pp shls.Pom.report (Pom.speedup shls);
  Format.printf "@.P/S speedup ratio: %.2f;  DSP ratio: %.2f;  LUT ratio: %.2f@."
    (Pom.speedup pom /. Pom.speedup shls)
    (float_of_int pom.Pom.report.Pom.Hls.Report.usage.Pom.Hls.Resource.dsp
    /. float_of_int shls.Pom.report.Pom.Hls.Report.usage.Pom.Hls.Resource.dsp)
    (float_of_int pom.Pom.report.Pom.Hls.Report.usage.Pom.Hls.Resource.lut
    /. float_of_int shls.Pom.report.Pom.Hls.Report.usage.Pom.Hls.Resource.lut);
  if not shls.Pom.report.Pom.Hls.Report.feasible then
    Format.printf
      "ScaleHLS design exceeds the device (as in Table V: its utilization \
       passes 100%%)@."
