(* Quickstart: write a matrix multiply in the POM DSL (the paper's Fig. 4),
   schedule it by hand with the primitives of Table II (Figs. 5-6), compile
   it to HLS C, and compare against the automatic DSE.

   Run with: dune exec examples/quickstart.exe *)

open Pom.Dsl

let () =
  let n = 32 in

  (* -- Algorithm specification (Fig. 4) ------------------------------ *)
  (* Declare the iterators. *)
  let i = Var.make "i" 0 n and j = Var.make "j" 0 n and k = Var.make "k" 0 n in
  (* Declare the placeholders. *)
  let a = Placeholder.make "A" [ n; n ] Dtype.p_float32 in
  let b = Placeholder.make "B" [ n; n ] Dtype.p_float32 in
  let c = Placeholder.make "C" [ n; n ] Dtype.p_float32 in
  (* Define the algorithm: A[i][j] += B[i][k] * C[k][j]. *)
  let f = Func.create "gemm" in
  let open Expr in
  let _s =
    Func.compute f "s" ~iters:[ k; i; j ]
      ~body:
        (access a [ ix i; ix j ]
        +: (access b [ ix i; ix k ] *: access c [ ix k; ix j ]))
      ~dest:(a, [ ix i; ix j ]) ()
  in

  (* -- Manual schedule (Figs. 5-6) ------------------------------------ *)
  Func.schedule f (Schedule.tile "s" "i" "j" 4 4 "i0" "j0" "i1" "j1");
  Func.schedule f (Schedule.pipeline "s" "j0" 1);
  Func.schedule f (Schedule.unroll "s" "i1" 4);
  Func.schedule f (Schedule.unroll "s" "j1" 4);
  Func.schedule f (Schedule.partition "A" [ 4; 4 ] Schedule.Cyclic);

  let manual = Pom.compile ~framework:`Pom_manual f in
  Format.printf "== manual schedule ==@.";
  Format.printf "%a@." Pom.Hls.Report.pp manual.Pom.report;
  Format.printf "speedup %.1fx@.@." (Pom.speedup manual);

  (* The generated HLS C (equivalent to the paper's Fig. 6 listing). *)
  print_string manual.Pom.hls_c;

  (* The schedule is semantics-preserving: the functional simulator runs
     the specification and the scheduled loop nest on the same inputs. *)
  Format.printf "@.max divergence vs specification: %g@.@."
    (Pom.validate f manual);

  (* -- Automatic DSE (the f.auto_DSE() primitive) --------------------- *)
  let auto = Pom.compile ~framework:`Pom_auto f in
  Format.printf "== auto-DSE ==@.";
  Format.printf "%a@." Pom.Hls.Report.pp auto.Pom.report;
  Format.printf "speedup %.1fx (DSE %.2f s)@." (Pom.speedup auto)
    auto.Pom.dse_time_s
