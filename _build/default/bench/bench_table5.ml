(* Table V: image-processing and DNN applications — ScaleHLS vs POM with
   the P/S ratios the paper reports. *)

let apps =
  [
    ("EdgeDetect", `Image, fun () -> Pom.Workloads.Image.edge_detect 4096);
    ("Gaussian", `Image, fun () -> Pom.Workloads.Image.gaussian 4096);
    ("Blur", `Image, fun () -> Pom.Workloads.Image.blur 4096);
    ("VGG-16", `Dnn, fun () -> Pom.Workloads.Dnn.vgg16 ());
    ("ResNet-18", `Dnn, fun () -> Pom.Workloads.Dnn.resnet18 ());
  ]

let ratio a b = Printf.sprintf "%.1f" (a /. b)

let run () =
  Util.section
    "Table V | Image processing and DNN applications (ScaleHLS vs POM)";
  let rows =
    List.map
      (fun (name, kind, build) ->
        let dnn = kind = `Dnn in
        let s = Util.compile ~dnn `Scalehls (build ()) in
        let p = Util.compile ~dnn `Pom_auto (build ()) in
        let us = Util.usage s and up = Util.usage p in
        [
          name;
          Util.speedup_s s ^ Util.feasible_s s;
          Util.speedup_s p ^ Util.feasible_s p;
          ratio (Pom.speedup p) (Pom.speedup s);
          Util.dsp_s s;
          Util.dsp_s p;
          ratio (float_of_int up.Pom.Hls.Resource.dsp)
            (float_of_int (max 1 us.Pom.Hls.Resource.dsp));
          Util.lut_s s;
          Util.lut_s p;
          ratio (float_of_int up.Pom.Hls.Resource.lut)
            (float_of_int (max 1 us.Pom.Hls.Resource.lut));
        ])
      apps
  in
  Util.print_table
    [
      "Application"; "ScaleHLS"; "POM"; "P/S"; "S-DSP"; "P-DSP"; "P/S";
      "S-LUT"; "P-LUT"; "P/S";
    ]
    rows;
  print_endline
    "([!] marks designs exceeding the device, as ScaleHLS's DNN dataflow";
  print_endline " designs do in the paper's Table V)"
