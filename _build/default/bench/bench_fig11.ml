(* Fig. 11: speedup and resource utilization of 2MM under scaled resource
   budgets (25/50/75/100% of the XC7Z020). *)

let run () =
  Util.section "Fig. 11 | 2MM under resource constraints (ScaleHLS vs POM)";
  let n = 4096 in
  let rows =
    List.concat_map
      (fun frac ->
        let device = Pom.Hls.Device.scale frac Util.device in
        List.map
          (fun fw ->
            let c = Util.compile ~device fw (Pom.Workloads.Polybench.mm2 n) in
            [
              Printf.sprintf "%.0f%%" (100.0 *. frac);
              Util.framework_name fw;
              Util.speedup_s c ^ Util.feasible_s c;
              Util.dsp_s ~device c;
              Util.lut_s ~device c;
            ])
          [ `Scalehls; `Pom_auto ])
      [ 0.25; 0.5; 0.75; 1.0 ]
  in
  Util.print_table
    [ "Budget"; "Framework"; "Speedup"; "DSP (util)"; "LUT (util)" ]
    rows;
  print_endline "(paper shape: POM ahead at every budget, Fig. 11)"
