(* Table III: the main comparison on typical HLS benchmarks at problem
   size 4096 — POLSCA / ScaleHLS / POM per kernel. *)

let kernels =
  [
    ("GEMM", fun n -> Pom.Workloads.Polybench.gemm n);
    ("BICG", fun n -> Pom.Workloads.Polybench.bicg n);
    ("GESUMMV", fun n -> Pom.Workloads.Polybench.gesummv n);
    ("2MM", fun n -> Pom.Workloads.Polybench.mm2 n);
    ("3MM", fun n -> Pom.Workloads.Polybench.mm3 n);
  ]

let run () =
  Util.section
    "Table III | Typical HLS benchmarks (N = 4096): POLSCA / ScaleHLS / POM";
  let n = 4096 in
  let rows =
    List.concat_map
      (fun (name, build) ->
        List.map
          (fun fw ->
            let c = Util.compile fw (build n) in
            [
              name;
              Util.framework_name fw;
              Util.speedup_s c ^ Util.feasible_s c;
              Util.dsp_s c;
              Util.ff_s c;
              Util.lut_s c;
              Util.power_s c;
              Util.ii_s c;
              Util.tiles_s c;
              Util.parallelism_s c;
              Util.dse_time_s c;
            ])
          [ `Polsca; `Scalehls; `Pom_auto ])
      kernels
  in
  Util.print_table
    [
      "Benchmark"; "Framework"; "Speedup"; "DSP (util)"; "FF (util)";
      "LUT (util)"; "Power(W)"; "II"; "Tile sizes"; "Parallel."; "DSE(s)";
    ]
    rows
