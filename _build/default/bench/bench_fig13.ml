(* Fig. 13: accumulated resource usage across DNN critical loops — POM's
   sequential execution reuses operators between layers (flat accumulation)
   while ScaleHLS's dataflow instantiates every stage (rising accumulation
   that overshoots the device). *)

let accumulate groups =
  let acc = ref Pom.Hls.Resource.zero in
  List.map
    (fun (names, usage) ->
      acc := Pom.Hls.Resource.add !acc usage;
      (String.concat "+" names, !acc))
    groups

let reused groups =
  (* under operator reuse the running footprint is the max so far *)
  let acc = ref Pom.Hls.Resource.zero in
  List.map
    (fun (names, usage) ->
      acc := Pom.Hls.Resource.max_usage !acc usage;
      (String.concat "+" names, !acc))
    groups

let print_series title series =
  Printf.printf "\n%s (accumulated DSP | LUT after each loop):\n" title;
  List.iteri
    (fun k (name, (u : Pom.Hls.Resource.usage)) ->
      if k < 6 || k mod 4 = 0 || k = List.length series - 1 then
        Printf.printf "  %2d %-24s %4d | %6d\n" (k + 1)
          (if String.length name > 24 then String.sub name 0 24 else name)
          u.Pom.Hls.Resource.dsp u.Pom.Hls.Resource.lut)
    series

let run () =
  Util.section "Fig. 13 | Accumulated resources across DNN critical loops";
  List.iter
    (fun (name, build) ->
      Printf.printf "\n--- %s ---\n" name;
      let p = Util.compile ~dnn:true `Pom_auto (build ()) in
      let s = Util.compile ~dnn:true `Scalehls (build ()) in
      print_series "POM (sequential, operators reused)"
        (reused (Util.per_group_usage p));
      print_series "ScaleHLS (dataflow, no reuse)"
        (accumulate (Util.per_group_usage s));
      Printf.printf "\ndevice: %d DSP, %d LUT\n" Util.device.Pom.Hls.Device.dsp
        Util.device.Pom.Hls.Device.lut)
    [
      ("VGG-16", Pom.Workloads.Dnn.vgg16);
      ("ResNet-18", Pom.Workloads.Dnn.resnet18);
    ]
