(* Fig. 2: the BICG motivating example — latency and speedup of the five
   frameworks, plus the achieved II that explains them. *)

let run () =
  Util.section
    "Fig. 2 | Motivating example: BICG (N = 4096) across frameworks";
  let n = 4096 in
  let rows =
    List.map
      (fun fw ->
        let c = Util.compile fw (Pom.Workloads.Polybench.bicg n) in
        [
          Util.framework_name fw;
          string_of_int c.Pom.report.Pom.Hls.Report.latency;
          Printf.sprintf "%.2f"
            (Pom.Hls.Report.latency_ms Util.device c.Pom.report);
          Util.speedup_s c;
          Util.ii_s c;
        ])
      [ `Baseline; `Pluto; `Polsca; `Scalehls; `Pom_auto ]
  in
  Util.print_table
    [ "Framework"; "Latency (cycles)"; "Latency (ms)"; "Speedup"; "Achieved II" ]
    rows;
  print_endline
    "(paper shape: Pluto ~ baseline; POLSCA ~2x with II in the hundreds;";
  print_endline
    " ScaleHLS limited by the tight dependence it cannot distribute;";
  print_endline " POM's split-interchange-merge reaches a small II)";
  (* Fig. 2 (c)/(e): iteration-vs-cycle schedules at a tiny size *)
  let tiny fw = Util.compile fw (Pom.Workloads.Polybench.bicg 8) in
  Printf.printf "\nFig. 2(c)-style baseline schedule (N = 8):\n%s"
    (Pom.Hls.Timeline.render ~max_instances:8 (tiny `Baseline).Pom.prog);
  Printf.printf "\nFig. 2(e)-style POM schedule (N = 8):\n%s"
    (Pom.Hls.Timeline.render ~max_instances:8 (tiny `Pom_auto).Pom.prog)
