(* Fig. 15: lines-of-code comparison — DSL with autoDSE vs DSL with
   manually specified primitives vs the generated (equivalent) HLS C.

   The "manual" variant counts one DSL line per scheduling primitive of the
   plan the DSE produced (the user would write exactly those calls to get
   the same design); the autoDSE variant replaces them with one
   [f.auto_DSE()] line. *)

let benchmarks =
  [
    ("GEMM", fun () -> Pom.Workloads.Polybench.gemm 1024);
    ("BICG", fun () -> Pom.Workloads.Polybench.bicg 1024);
    ("3MM", fun () -> Pom.Workloads.Polybench.mm3 1024);
    ("Jacobi-1d", fun () -> Pom.Workloads.Polybench.jacobi1d 1024);
    ("Gaussian", fun () -> Pom.Workloads.Image.gaussian 1024);
  ]

let run () =
  Util.section "Fig. 15 | Lines of code: DSL-autoDSE / DSL-manual / HLS C";
  let rows =
    List.map
      (fun (name, build) ->
        let func = build () in
        let o = Pom.Dse.Engine.run func in
        let result = o.Pom.Dse.Engine.result in
        let auto_loc = Pom.Dsl.Func.loc_auto func in
        let manual_loc =
          Pom.Dsl.Func.loc_auto func - 1
          + List.length result.Pom.Dse.Stage2.directives
        in
        let hls_c =
          Pom.Emit.Emit.hls_c
            (Pom.Affine.Lower.lower result.Pom.Dse.Stage2.prog)
        in
        let hls_loc = Pom.Emit.Emit.loc hls_c in
        [
          name;
          string_of_int auto_loc;
          string_of_int manual_loc;
          string_of_int hls_loc;
          Printf.sprintf "%.1fx" (float_of_int hls_loc /. float_of_int auto_loc);
        ])
      benchmarks
  in
  Util.print_table
    [ "Benchmark"; "DSL+autoDSE"; "DSL+manual"; "HLS C"; "C/autoDSE" ]
    rows;
  print_endline
    "(paper shape: the DSL is several times more concise than HLS C, and";
  print_endline " the autoDSE variant needs a single scheduling line)"
