bench/bench_table7.ml: List Pom Util
