bench/bench_fig11.ml: List Pom Printf Util
