bench/bench_fig14.ml: Func List Pom Schedule Util
