bench/bench_fig12.ml: Bench_table3 List Pom Printf Util
