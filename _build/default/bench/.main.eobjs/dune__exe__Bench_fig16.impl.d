bench/bench_fig16.ml: Format Func List Pom Schedule Util
