bench/bench_table5.ml: List Pom Printf Util
