bench/bench_table3.ml: List Pom Util
