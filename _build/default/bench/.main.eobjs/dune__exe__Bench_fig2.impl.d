bench/bench_fig2.ml: List Pom Printf Util
