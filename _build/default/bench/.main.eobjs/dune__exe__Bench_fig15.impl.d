bench/bench_fig15.ml: List Pom Printf Util
