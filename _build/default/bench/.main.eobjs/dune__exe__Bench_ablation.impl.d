bench/bench_ablation.ml: List Pom Printf String Util
