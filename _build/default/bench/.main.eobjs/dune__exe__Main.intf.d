bench/main.mli:
