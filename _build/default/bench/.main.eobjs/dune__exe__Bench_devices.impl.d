bench/bench_devices.ml: List Pom Util
