bench/bench_table4.ml: Pom Util
