bench/bench_table6.ml: List Pom Util
