bench/util.ml: List Pom Printf String
