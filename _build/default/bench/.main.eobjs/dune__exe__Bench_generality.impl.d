bench/bench_generality.ml: List Pom Util
