bench/bench_fig13.ml: List Pom Printf String Util
