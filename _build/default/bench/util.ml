(* Shared helpers for the experiment harness: framework runners and
   paper-style table formatting. *)

let device = Pom.Hls.Device.xc7z020

let framework_name = function
  | `Baseline -> "Baseline"
  | `Pluto -> "Pluto"
  | `Polsca -> "POLSCA"
  | `Scalehls -> "ScaleHLS"
  | `Pom_manual -> "POM-manual"
  | `Pom_auto -> "POM"

let compile ?(device = device) ?(dnn = false) fw func =
  Pom.compile ~device ~framework:fw ~dnn func

let report (c : Pom.compiled) = c.Pom.report

let usage c = (report c).Pom.Hls.Report.usage

let pct part total = 100.0 *. float_of_int part /. float_of_int total

let dsp_s ?(device = device) c =
  Printf.sprintf "%d (%.0f%%)" (usage c).Pom.Hls.Resource.dsp
    (pct (usage c).Pom.Hls.Resource.dsp device.Pom.Hls.Device.dsp)

let ff_s ?(device = device) c =
  Printf.sprintf "%d (%.0f%%)" (usage c).Pom.Hls.Resource.ff
    (pct (usage c).Pom.Hls.Resource.ff device.Pom.Hls.Device.ff)

let lut_s ?(device = device) c =
  Printf.sprintf "%d (%.0f%%)" (usage c).Pom.Hls.Resource.lut
    (pct (usage c).Pom.Hls.Resource.lut device.Pom.Hls.Device.lut)

let speedup_s c = Printf.sprintf "%.1fx" (Pom.speedup c)

let ii_s c =
  match (report c).Pom.Hls.Report.iis with
  | [] -> "-"
  | iis -> String.concat ", " (List.map (fun (_, ii) -> string_of_int ii) iis)

let tiles_s c =
  match c.Pom.tile_vectors with
  | [] -> "-"
  | vs ->
      String.concat ", "
        (List.map
           (fun (_, v) ->
             "[" ^ String.concat "," (List.map string_of_int v) ^ "]")
           vs)

let parallelism_s c =
  Printf.sprintf "%.1f" (report c).Pom.Hls.Report.parallelism

let power_s c = Printf.sprintf "%.3f" (report c).Pom.Hls.Report.power

let dse_time_s c =
  if c.Pom.dse_time_s > 0.0 then Printf.sprintf "%.2f" c.Pom.dse_time_s else "-"

let feasible_s c = if (report c).Pom.Hls.Report.feasible then "" else " [!]"

(* fixed-width table printing *)
let print_table header rows =
  let all = header :: rows in
  let n = List.length header in
  let widths =
    List.init n (fun k ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row k)))
          0 all)
  in
  let line row =
    String.concat "  "
      (List.mapi
         (fun k cell -> cell ^ String.make (List.nth widths k - String.length cell) ' ')
         row)
  in
  print_endline (line header);
  print_endline (String.make (String.length (line header)) '-');
  List.iter (fun row -> print_endline (line row)) rows

let section title =
  Printf.printf "\n==========================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==========================================================\n"

(* per-group (per-loop) resource usage of a compiled design, for Fig. 13's
   accumulated-resource plot *)
let per_group_usage (c : Pom.compiled) =
  let prog = c.Pom.prog in
  let profiles = Pom.Hls.Summary.profile_all prog in
  let partitions = Pom.Hls.Report.partition_fn prog in
  let evals, _ = Pom.Hls.Latency.eval_program ~partitions profiles in
  List.map
    (fun (e : Pom.Hls.Latency.group_eval) ->
      let mine =
        List.filter
          (fun (p : Pom.Hls.Summary.t) ->
            p.Pom.Hls.Summary.group = e.Pom.Hls.Latency.group)
          profiles
      in
      let names =
        List.map
          (fun (p : Pom.Hls.Summary.t) ->
            Pom.Polyir.Stmt_poly.name p.Pom.Hls.Summary.stmt)
          mine
      in
      (names, Pom.Hls.Resource.group_usage mine e))
    evals
