(* Design-choice ablations called out in DESIGN.md (beyond the paper's own
   figures):

   1. data-type customization (Table I): the same GEMM specification at
      different element types — the QoR model prices each type's operators
      differently, so the DSE lands on different designs;
   2. the partition bank cap: the II-vs-crossbar trade the DSE makes when
      shedding partition factors (BICG's II=2 design comes from it). *)

let dtype_row dt label =
  let func = Pom.Workloads.Polybench.gemm_typed dt 1024 in
  let c = Util.compile `Pom_auto func in
  [
    label;
    Util.speedup_s c;
    Util.ii_s c;
    Util.dsp_s c;
    Util.lut_s c;
    Util.parallelism_s c;
  ]

let run_dtype () =
  Util.section "Ablation A | data-type customization on GEMM (N = 1024)";
  Util.print_table
    [ "Type"; "Speedup"; "II"; "DSP (util)"; "LUT (util)"; "Parallelism" ]
    [
      dtype_row Pom.Dsl.Dtype.p_float64 "double";
      dtype_row Pom.Dsl.Dtype.p_float32 "float";
      dtype_row Pom.Dsl.Dtype.p_int32 "int32";
      dtype_row Pom.Dsl.Dtype.p_int16 "int16";
      dtype_row Pom.Dsl.Dtype.p_int8 "int8";
    ];
  print_endline
    "(narrow integer MACs cost a fraction of a floating MAC, so the DSE";
  print_endline " buys more parallel copies within the same device)"

let run_bank_cap () =
  Util.section "Ablation B | partition bank cap on BICG (N = 4096)";
  let rows =
    List.map
      (fun cap ->
        let o =
          Pom.Dse.Engine.run ~bank_cap:cap (Pom.Workloads.Polybench.bicg 4096)
        in
        let r = o.Pom.Dse.Engine.result in
        let rep = r.Pom.Dse.Stage2.report in
        let baseline =
          Pom.Hls.Report.baseline_latency (Pom.Workloads.Polybench.bicg 4096)
        in
        [
          string_of_int cap;
          Printf.sprintf "%.1fx" (Pom.Hls.Report.speedup ~baseline rep);
          String.concat ","
            (List.map (fun (_, ii) -> string_of_int ii) rep.Pom.Hls.Report.iis);
          string_of_int rep.Pom.Hls.Report.usage.Pom.Hls.Resource.lut;
          string_of_int rep.Pom.Hls.Report.usage.Pom.Hls.Resource.dsp;
        ])
      [ 8; 16; 32; 64; 128; 256 ]
  in
  Util.print_table [ "Bank cap"; "Speedup"; "II"; "LUT"; "DSP" ] rows;
  print_endline
    "(small caps strangle ports and inflate II; huge caps burn LUT on";
  print_endline
    " crossbars; in between the cap interacts with the DSE's doubling";
  print_endline
    " ladder, so the response is not monotone -- the default of 64 is the";
  print_endline " point where the paper-reported BICG design (II 2-4) appears)"

let run () =
  run_dtype ();
  run_bank_cap ()
