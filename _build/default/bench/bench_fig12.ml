(* Fig. 12: scalability of ScaleHLS and POM across problem sizes 32..8192
   on the five typical kernels. *)

let sizes = [ 32; 128; 512; 1024; 2048; 4096; 8192 ]

let run () =
  Util.section "Fig. 12 | Speedup across problem sizes (ScaleHLS | POM)";
  let rows =
    List.map
      (fun (name, build) ->
        name
        :: List.map
             (fun n ->
               let s = Util.compile `Scalehls (build n) in
               let p = Util.compile `Pom_auto (build n) in
               Printf.sprintf "%.0f | %.0f" (Pom.speedup s) (Pom.speedup p))
             sizes)
      Bench_table3.kernels
  in
  Util.print_table
    ("Benchmark" :: List.map string_of_int sizes)
    rows;
  print_endline
    "(paper shape: comparable up to ~2048; ScaleHLS declines at 4096 and";
  print_endline
    " falls to pipeline-only at 8192, while POM keeps scaling; POM may be";
  print_endline " slightly behind on very small sizes)"
