(* Table VI: per-critical-loop tile sizes, achieved II, and parallelism on
   the image kernels. *)

let run () =
  Util.section "Table VI | Critical-loop optimization on image kernels";
  let rows =
    List.concat_map
      (fun (name, build) ->
        List.map
          (fun fw ->
            let c = Util.compile fw (build ()) in
            [
              name;
              Util.framework_name fw;
              Util.tiles_s c;
              Util.ii_s c;
              Util.parallelism_s c;
            ])
          [ `Scalehls; `Pom_auto ])
      [
        ("EdgeDetect", fun () -> Pom.Workloads.Image.edge_detect 4096);
        ("Gaussian", fun () -> Pom.Workloads.Image.gaussian 4096);
        ("Blur", fun () -> Pom.Workloads.Image.blur 4096);
      ]
  in
  Util.print_table
    [ "Benchmark"; "Framework"; "Tile sizes"; "Achieved II"; "Parallelism" ]
    rows
