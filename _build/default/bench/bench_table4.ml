(* Table IV: automatically explored BICG design vs expert manual
   optimization vs the unoptimized kernel. *)

let run () =
  Util.section "Table IV | BICG: unoptimized / manual / DSE (N = 4096)";
  let n = 4096 in
  let unopt = Util.compile `Baseline (Pom.Workloads.Polybench.bicg n) in
  let manual = Pom.Baselines.Manual.bicg n in
  let dse = Util.compile `Pom_auto (Pom.Workloads.Polybench.bicg n) in
  let manual_c =
    {
      unopt with
      Pom.report = manual.Pom.Baselines.Manual.report;
      prog = manual.Pom.Baselines.Manual.prog;
    }
  in
  let row name (c : Pom.compiled) =
    [
      name;
      string_of_int c.Pom.report.Pom.Hls.Report.latency;
      Util.speedup_s c;
      Util.dsp_s c;
      Util.ff_s c;
      Util.lut_s c;
    ]
  in
  Util.print_table
    [ "Design"; "Cycles"; "Speedup"; "DSP (util)"; "FF (util)"; "LUT (util)" ]
    [ row "Unoptimized" unopt; row "Manual opt." manual_c; row "DSE opt." dse ]
