(* Table VII: complicated data-access patterns — the skewing-dependent
   stencils.  ScaleHLS and POLSCA cannot improve them; POM can. *)

let stencils =
  [
    ("Jacobi-1d", fun () -> Pom.Workloads.Polybench.jacobi1d 4096);
    ("Jacobi-2d", fun () -> Pom.Workloads.Polybench.jacobi2d 1024);
    ("Heat-1d", fun () -> Pom.Workloads.Polybench.heat1d 4096);
    ("Seidel", fun () -> Pom.Workloads.Polybench.seidel 1024);
  ]

let run () =
  Util.section "Table VII | Complicated code patterns (POM)";
  let rows =
    List.map
      (fun (name, build) ->
        let c = Util.compile `Pom_auto (build ()) in
        [
          name;
          Util.speedup_s c;
          Util.dsp_s c;
          Util.ff_s c;
          Util.lut_s c;
          Util.ii_s c;
        ])
      stencils
  in
  Util.print_table
    [ "Benchmark"; "Speedup"; "DSP (util)"; "FF (util)"; "LUT (util)"; "II" ]
    rows;
  Util.section "Table VII (context) | same kernels under ScaleHLS";
  let rows =
    List.map
      (fun (name, build) ->
        let c = Util.compile `Scalehls (build ()) in
        [ name; Util.speedup_s c; Util.ii_s c ])
      stencils
  in
  Util.print_table [ "Benchmark"; "Speedup"; "II" ] rows;
  print_endline
    "(paper shape: POM 22.9x-136x while ScaleHLS/POLSCA fail to improve;";
  print_endline
    " utilization stays low because the residual dependence bounds the";
  print_endline " parallelism, Section VII-F)"
