(* Generality check (Table I's "apply to multiple domains" row): the five
   additional PolyBench kernels — including the triangular trmm, whose
   non-rectangular domain exercises the integer-set machinery end-to-end —
   compiled by ScaleHLS and POM. *)

let kernels =
  [
    ("ATAX", fun () -> Pom.Workloads.Polybench.atax 4096);
    ("MVT", fun () -> Pom.Workloads.Polybench.mvt 4096);
    ("SYRK", fun () -> Pom.Workloads.Polybench.syrk 1024);
    ("TRMM", fun () -> Pom.Workloads.Polybench.trmm 1024);
    ("DOITGEN", fun () -> Pom.Workloads.Polybench.doitgen ~np:64 256);
  ]

let run () =
  Util.section "Generality | additional PolyBench kernels (ScaleHLS vs POM)";
  let rows =
    List.concat_map
      (fun (name, build) ->
        List.map
          (fun fw ->
            let c = Util.compile fw (build ()) in
            [
              name;
              Util.framework_name fw;
              Util.speedup_s c ^ Util.feasible_s c;
              Util.ii_s c;
              Util.dsp_s c;
              Util.tiles_s c;
            ])
          [ `Scalehls; `Pom_auto ])
      kernels
  in
  Util.print_table
    [ "Benchmark"; "Framework"; "Speedup"; "II"; "DSP (util)"; "Tile sizes" ]
    rows
