(* Device-scaling extension: the same kernels and DSE on the paper's
   XC7Z020 and on a mid-range UltraScale+ part -- the bottleneck search
   converts the larger budget directly into parallelism. *)

let kernels =
  [
    ("GEMM", fun () -> Pom.Workloads.Polybench.gemm 4096);
    ("BICG", fun () -> Pom.Workloads.Polybench.bicg 4096);
    ("Seidel", fun () -> Pom.Workloads.Polybench.seidel 1024);
  ]

let run () =
  Util.section "Devices | POM on XC7Z020 vs XCZU9EG (extension)";
  let rows =
    List.concat_map
      (fun (name, build) ->
        List.map
          (fun device ->
            let c =
              Pom.compile ~device ~framework:`Pom_auto (build ())
            in
            [
              name;
              device.Pom.Hls.Device.name;
              Util.speedup_s c;
              Util.ii_s c;
              Util.dsp_s ~device c;
              Util.lut_s ~device c;
              Util.parallelism_s c;
            ])
          [ Pom.Hls.Device.xc7z020; Pom.Hls.Device.xczu9eg ])
      kernels
  in
  Util.print_table
    [ "Benchmark"; "Device"; "Speedup"; "II"; "DSP (util)"; "LUT (util)";
      "Parallelism" ]
    rows
